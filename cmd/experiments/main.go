// Command experiments regenerates the tables and figures of the paper's
// evaluation section.
//
// Usage:
//
//	experiments -exp table3 [-runs 5] [-seed 1] [-datasets Vot.,Bal.]
//	experiments -exp table4 [-runs 5]
//	experiments -exp fig4   [-runs 5]
//	experiments -exp fig5
//	experiments -exp fig6   [-quick]
//	experiments -exp linkage [-quick]
//	experiments -exp all
//
// See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured comparisons.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp      = flag.String("exp", "all", "experiment: table3, table4, fig4, fig5, fig6, linkage, sensitivity, all")
		runs     = flag.Int("runs", 5, "runs per method per data set (paper: 50)")
		seed     = flag.Int64("seed", 1, "base random seed")
		dsFlag   = flag.String("datasets", "", "comma-separated subset of data sets (default: all eight)")
		quick    = flag.Bool("quick", false, "shrink the fig6 sweeps for a fast smoke run")
		progress = flag.Bool("progress", true, "print progress to stderr")
		par      = flag.Int("par", 0, "dataset-level parallelism for the table/figure harnesses (<= 0 all cores, 1 sequential); results are identical at any level. fig6 times methods and always runs sequentially")
	)
	flag.Parse()

	var names []string
	if *dsFlag != "" {
		names = strings.Split(*dsFlag, ",")
	}
	start := time.Now()
	var prog func(ds, m string)
	if *progress {
		prog = func(ds, m string) {
			fmt.Fprintf(os.Stderr, "[%7.1fs] %-5s %s\n", time.Since(start).Seconds(), ds, m)
		}
	}

	switch *exp {
	case "table3":
		return runTables(*runs, *seed, names, prog, false, *par)
	case "table4":
		return runTables(*runs, *seed, names, prog, true, *par)
	case "fig4":
		return runFig4(*runs, *seed, names, *par)
	case "fig5":
		return runFig5(*seed, names, *par)
	case "fig6":
		return runFig6(*seed, *quick)
	case "linkage":
		return runLinkageScale(*seed, *quick, *par)
	case "sensitivity":
		return runSensitivity(*runs, *seed, names, *par)
	case "all":
		// Every experiment the -exp flag advertises, in its listed order.
		if err := runTables(*runs, *seed, names, prog, true, *par); err != nil {
			return err
		}
		if err := runFig4(*runs, *seed, names, *par); err != nil {
			return err
		}
		if err := runFig5(*seed, names, *par); err != nil {
			return err
		}
		if err := runFig6(*seed, *quick); err != nil {
			return err
		}
		if err := runLinkageScale(*seed, *quick, *par); err != nil {
			return err
		}
		return runSensitivity(*runs, *seed, names, *par)
	default:
		return fmt.Errorf("unknown experiment %q", *exp)
	}
}
