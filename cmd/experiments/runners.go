package main

import (
	"fmt"
	"os"

	"mcdc/internal/experiments"
)

func runTables(runs int, seed int64, names []string, prog func(ds, m string), withTable4 bool, workers int) error {
	t3, err := experiments.RunTable3(experiments.Table3Config{
		Runs:     runs,
		Seed:     seed,
		Datasets: names,
		Progress: prog,
		Workers:  workers,
	})
	if err != nil {
		return err
	}
	fmt.Println("=== Table III: clustering performance (mean±std over", runs, "runs) ===")
	t3.Write(os.Stdout)
	if !withTable4 {
		return nil
	}
	t4, err := experiments.RunTable4(t3)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Println("=== Table IV: significance test ===")
	t4.Write(os.Stdout)
	return nil
}

func runFig4(runs int, seed int64, names []string, workers int) error {
	f4, err := experiments.RunFig4(runs, seed, names, workers)
	if err != nil {
		return err
	}
	fmt.Println("=== Fig. 4: ablation study (mean ARI) ===")
	f4.Write(os.Stdout)
	return nil
}

func runFig5(seed int64, names []string, workers int) error {
	f5, err := experiments.RunFig5(seed, names, workers)
	if err != nil {
		return err
	}
	fmt.Println("=== Fig. 5: numbers of clusters learned by MGCPL ===")
	f5.Write(os.Stdout)
	return nil
}

func runFig6(seed int64, quick bool) error {
	ns := []int{20000, 60000, 100000, 140000, 200000}
	ks := []int{500, 1000, 2000}
	dims := []int{100, 300, 500, 1000}
	fixedN := 20000
	if quick {
		ns = []int{5000, 10000, 20000}
		ks = []int{50, 100, 200}
		dims = []int{50, 100, 200}
		fixedN = 5000
	}
	fmt.Println("=== Fig. 6a: execution time vs n (Syn_n) ===")
	fa, err := experiments.RunFig6N(ns, seed)
	if err != nil {
		return err
	}
	fa.Write(os.Stdout)

	fmt.Println("=== Fig. 6b: execution time vs sought k (Syn_n) ===")
	fb, err := experiments.RunFig6K(fixedN, ks, seed)
	if err != nil {
		return err
	}
	fb.Write(os.Stdout)

	fmt.Println("=== Fig. 6c: execution time vs d (Syn_d) ===")
	fc, err := experiments.RunFig6D(dims, seed)
	if err != nil {
		return err
	}
	fc.Write(os.Stdout)
	return nil
}

func runLinkageScale(seed int64, quick bool, workers int) error {
	cfg := experiments.LinkageScaleConfig{Seed: seed, Workers: workers}
	if quick {
		cfg.Ns = []int{200, 500, 1000}
		cfg.ScanCap = 1000
	}
	ls, err := experiments.RunLinkageScale(cfg)
	if err != nil {
		return err
	}
	fmt.Println("=== Linkage scaling: O(n³) scan vs O(n²) nearest-neighbour chain ===")
	ls.Write(os.Stdout)
	return nil
}

func runSensitivity(runs int, seed int64, names []string, workers int) error {
	sw, err := experiments.RunSensitivity(runs, seed, names, nil, workers)
	if err != nil {
		return err
	}
	fmt.Println("=== Design sensitivity: rival-penalty redundancy threshold ===")
	sw.Write(os.Stdout)
	return nil
}
