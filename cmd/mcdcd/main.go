// Command mcdcd is the MCDC model-serving daemon: it hosts a registry of
// frozen model snapshots (trained with `mcdc -save`) plus a pool of
// streaming sessions, and answers cluster-assignment queries over HTTP/JSON.
//
// Usage:
//
//	mcdcd -model nodes=nodes.bin [-model other=other.bin] [-addr 127.0.0.1:8080]
//	      [-relearn 10m] [-relearn-min 64] [-buffer 4096]
//	      [-seed 1] [-parallel 0] [-shards 16] [-addr-file path]
//	      [-state-dir dir] [-checkpoint 30s] [-session-ttl 1h]
//	      [-max-inflight 0] [-queue-depth 0] [-retry-after 1s]
//	      [-replicate -peers 127.0.0.1:8081,127.0.0.1:8082 [-self addr] [-fleet-secret s]]
//
// Gateway mode — a consistent-hash front end over a fleet of backends:
//
//	mcdcd -backends 127.0.0.1:8081,127.0.0.1:8082 [-ring-replicas 128]
//	      [-health 5s] [-addr :8080] [-addr-file path]
//	      [-retries 2] [-retry-backoff 25ms] [-hedge 0] [-fleet-secret s]
//
// Drain mode — migrate a backend's sessions away and drop it from the ring
// (run against the gateway; the drained process can then be stopped safely):
//
//	mcdcd -drain 127.0.0.1:8082 -gateway 127.0.0.1:8080
//
// Endpoints are versioned under /v1, with the unversioned spellings kept as
// aliases (see internal/server for the full contract, including the binary
// frame protocol on the assign routes):
//
//	curl localhost:8080/v1/healthz
//	curl localhost:8080/v1/metrics
//	curl -X POST localhost:8080/v1/assign -d '{"model":"nodes","row":[0,1,2]}'
//	curl -X POST localhost:8080/v1/assign/batch -d '{"model":"nodes","rows":[[0,1,2],[1,1,0]]}'
//	curl -X POST localhost:8080/v1/models -d '{"name":"fresh","path":"fresh.bin"}'
//
// With -max-inflight > 0 the assignment routes sit behind admission control:
// at most -max-inflight requests execute at once, -queue-depth more wait,
// and anything beyond that is shed with 429 + Retry-After (-retry-after).
//
// -addr supports port 0 (pick a free port); the resolved address is printed
// on stdout and, with -addr-file, written to a file so scripts can wait for
// the daemon deterministically (the file is removed again on shutdown, so a
// stale address from a dead daemon never fools a wait loop). With -relearn
// > 0 a background worker periodically re-trains every model on its recent
// traffic window and hot-swaps it under a bumped epoch. With -state-dir the
// daemon checkpoints every streaming session (periodically, on shutdown, and
// on POST /checkpoint) and a restart resumes each one bit-for-bit.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"mcdc/internal/server"
)

func main() {
	if err := run(); err != nil {
		//lint:mcdcvet-ignore sloglint fatal startup error; the slog logger is built inside run and may not exist yet
		fmt.Fprintln(os.Stderr, "mcdcd:", err)
		os.Exit(1)
	}
}

// modelFlags collects repeated -model name=path arguments.
type modelFlags []struct{ name, path string }

func (m *modelFlags) String() string { return fmt.Sprintf("%d models", len(*m)) }

func (m *modelFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*m = append(*m, struct{ name, path string }{name, path})
	return nil
}

func run() error {
	var models modelFlags
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 = pick a free port)")
		addrFile   = flag.String("addr-file", "", "write the resolved listen address to this file (removed on shutdown)")
		relearn    = flag.Duration("relearn", 0, "background re-learn interval (0 = disabled)")
		relearnMin = flag.Int("relearn-min", 64, "minimum buffered traffic rows before a re-learn")
		buffer     = flag.Int("buffer", 4096, "per-model traffic window capacity")
		seed       = flag.Int64("seed", 1, "base random seed for re-learning and sessions")
		par        = flag.Int("parallel", 0, "worker goroutines per request fan-out (0 = all cores)")
		shards     = flag.Int("shards", 16, "lock shards of the streaming-session pool")
		window     = flag.Int("session-window", 0, "default window size of new sessions (0 = stream default)")
		stateDir   = flag.String("state-dir", "", "persist session checkpoints under this directory and resume them on startup")
		checkpoint = flag.Duration("checkpoint", 30*time.Second, "periodic session-checkpoint interval with -state-dir (0 = only on shutdown and POST /checkpoint)")
		sessionTTL = flag.Duration("session-ttl", 0, "evict streaming sessions idle this long (0 = never; with -state-dir eviction spills to disk)")
		maxInfl    = flag.Int("max-inflight", 0, "max concurrently executing assignment requests (0 = no admission control)")
		queueDepth = flag.Int("queue-depth", 0, "assignment requests allowed to wait for a slot before shedding with 429")
		retryAfter = flag.Duration("retry-after", time.Second, "Retry-After delay advertised on shed (429) responses")
		backends   = flag.String("backends", "", "comma-separated backend addresses: run as a consistent-hash gateway instead of serving models")
		replicas   = flag.Int("ring-replicas", 128, "virtual nodes per backend on the gateway hash ring")
		health     = flag.Duration("health", 5*time.Second, "gateway per-backend health-check interval (0 = disabled)")
		replicate  = flag.Bool("replicate", false, "checkpoint every session assignment and ship it to the ring successor (requires -state-dir; pair with -peers)")
		peers      = flag.String("peers", "", "comma-separated fleet member addresses (including this daemon) for checkpoint replication")
		selfAddr   = flag.String("self", "", "this daemon's address as peers see it (default: the resolved listen address)")
		fleetKey   = flag.String("fleet-secret", "", "shared secret authenticating intra-fleet endpoints (replica shipping, promotion, membership)")
		retries    = flag.Int("retries", 0, "gateway: retries per transiently failed backend request (0 = default of 2, negative = none)")
		retryWait  = flag.Duration("retry-backoff", 0, "gateway: initial delay between retries, doubling per attempt (0 = default 25ms)")
		hedge      = flag.Duration("hedge", 0, "gateway: hedge stateless assigns against a second backend after this delay (0 = disabled)")
		drain      = flag.String("drain", "", "client mode: drain this backend via the gateway at -gateway (migrates its sessions, removes it from the ring) and exit")
		gwAddr     = flag.String("gateway", "", "gateway address for -drain")
		logFormat  = flag.String("log-format", "text", "log output format: text or json")
		logLevel   = flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
		logSlow    = flag.Duration("log-slow", 0, "warn-log any request slower than this, with its request id (0 = disabled)")
		pprofAddr  = flag.String("pprof-addr", "", "serve net/http/pprof on this address (never on the serving mux; empty = disabled)")
		version    = flag.Bool("version", false, "print the version and exit")
	)
	flag.Var(&models, "model", "serve a model snapshot as name=path (repeatable)")
	flag.Parse()

	if *version {
		fmt.Printf("mcdcd %s %s\n", server.Version, runtime.Version())
		return nil
	}
	if *drain != "" {
		return drainBackend(*gwAddr, *drain)
	}
	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		return err
	}

	if *pprofAddr != "" {
		// A dedicated mux on a dedicated listener: the profiling endpoints
		// must never ride the serving mux, where they would be one routing
		// mistake away from the public API.
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		defer pln.Close()
		logger.Info("pprof listening", "addr", pln.Addr().String())
		go func() {
			psrv := &http.Server{Handler: pmux, ReadHeaderTimeout: 10 * time.Second}
			if err := psrv.Serve(pln); err != nil && !errors.Is(err, net.ErrClosed) {
				logger.Warn("pprof server stopped", "err", err)
			}
		}()
	}

	var handler http.Handler
	var backendSrv *server.Server
	if *backends != "" {
		if len(models) > 0 || *stateDir != "" || *relearn > 0 {
			return errors.New("-backends (gateway mode) is incompatible with -model, -state-dir, and -relearn — those belong on the backends")
		}
		if *replicate || *peers != "" {
			return errors.New("-replicate and -peers belong on the backends, not the gateway")
		}
		gw, err := server.NewGateway(server.GatewayConfig{
			Backends:     strings.Split(*backends, ","),
			Replicas:     *replicas,
			HealthEvery:  *health,
			Retries:      *retries,
			RetryBackoff: *retryWait,
			HedgeAfter:   *hedge,
			FleetSecret:  *fleetKey,
			Logger:       logger,
			LogSlow:      *logSlow,
		})
		if err != nil {
			return err
		}
		defer gw.Close()
		logger.Info("gateway mode", "backends", strings.Join(gw.Backends(), ","), "count", len(gw.Backends()))
		handler = gw.Handler()
	} else {
		if *peers != "" && !*replicate {
			return errors.New("-peers needs -replicate (checkpoint-per-assignment is what makes failover byte-identical)")
		}
		srv, err := server.New(server.Config{
			Replicate:            *replicate,
			Seed:                 *seed,
			Workers:              *par,
			SessionShards:        *shards,
			RelearnEvery:         *relearn,
			RelearnMin:           *relearnMin,
			BufferSize:           *buffer,
			DefaultSessionWindow: *window,
			StateDir:             *stateDir,
			CheckpointEvery:      *checkpoint,
			SessionTTL:           *sessionTTL,
			MaxInFlight:          *maxInfl,
			QueueDepth:           *queueDepth,
			RetryAfter:           *retryAfter,
			Logger:               logger,
			LogSlow:              *logSlow,
		})
		if err != nil {
			return err
		}
		// Runs after the HTTP server has drained: with -state-dir this is the
		// final checkpoint flush, so a SIGTERM loses no session state.
		defer srv.Close()
		for _, m := range models {
			if _, _, err := srv.LoadModelFile(m.name, m.path); err != nil {
				return err
			}
		}
		if len(models) == 0 {
			logger.Info("no -model given; starting empty (load models via POST /models)")
		}
		handler = srv.Handler()
		backendSrv = srv
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	resolved := ln.Addr().String()
	fmt.Printf("mcdcd listening on %s\n", resolved)
	if backendSrv != nil && (*peers != "" || *fleetKey != "") {
		// The fleet is wired only now that the listen address is resolved, so
		// -self can default to it (covering -addr with port 0). Peers may name
		// this daemon too; the replicator skips self when picking a successor.
		self := *selfAddr
		if self == "" {
			self = resolved
		}
		var fleet []string
		if *peers != "" {
			fleet = strings.Split(*peers, ",")
		}
		backendSrv.ConfigureReplication(self, fleet, *fleetKey)
		logger.Info("replication configured", "self", self, "peers", strings.Join(fleet, ","))
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(resolved), 0o644); err != nil {
			ln.Close()
			return err
		}
		// A dead daemon must not leave its address behind: wait-for-ready
		// scripts treat the file's existence as liveness.
		defer os.Remove(*addrFile)
	}

	httpSrv := &http.Server{Handler: handler, ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		logger.Info("shutting down", "signal", sig.String())
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return httpSrv.Shutdown(ctx)
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

// drainBackend is the client side of `mcdcd -drain`: it asks the gateway to
// migrate every session off the named backend and drop it from the ring, then
// reports what moved. The backend process itself is left running — stopping
// it afterwards is safe precisely because it no longer owns anything.
func drainBackend(gateway, backend string) error {
	if gateway == "" {
		return errors.New("-drain needs -gateway <addr>")
	}
	if !strings.Contains(gateway, "://") {
		gateway = "http://" + gateway
	}
	body, _ := json.Marshal(map[string]string{"backend": backend})
	resp, err := http.Post(gateway+"/v1/ring/leave", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("drain: gateway answered %s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	var out struct {
		Backend  string   `json:"backend"`
		Migrated []string `json:"migrated"`
		Members  []string `json:"members"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		return fmt.Errorf("drain: parsing gateway response: %w", err)
	}
	fmt.Printf("drained %s: %d sessions migrated, ring now [%s]\n", out.Backend, len(out.Migrated), strings.Join(out.Members, " "))
	return nil
}

// buildLogger constructs the daemon's slog.Logger from -log-format and
// -log-level. Logs go to stderr so stdout stays reserved for the resolved
// listen address, which wait-for-ready scripts parse.
func buildLogger(format, level string) (*slog.Logger, error) {
	var l slog.Level
	if err := l.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("-log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: l}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("-log-format %q: want text or json", format)
	}
}
