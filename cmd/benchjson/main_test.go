package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: mcdc
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkSimilarityParallel/dense/workers=1-8         	       6	 192744578 ns/op	48816576 B/op	    2019 allocs/op
BenchmarkSimilarityParallel/condensed/workers=1-8     	       7	 161572921 ns/op	15999232 B/op	      10 allocs/op
BenchmarkTable4_Wilcoxon   	  505371	      2363 ns/op
--- BENCH: some stray output
PASS
ok  	mcdc	0.708s
`

func TestParseSample(t *testing.T) {
	report, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if report.Goos != "linux" || report.Goarch != "amd64" || !strings.Contains(report.CPU, "Xeon") {
		t.Errorf("context: %+v", report)
	}
	if len(report.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(report.Benchmarks))
	}
	b0 := report.Benchmarks[0]
	if b0.Name != "BenchmarkSimilarityParallel/dense/workers=1" || b0.Procs != 8 {
		t.Errorf("first benchmark: %+v", b0)
	}
	if b0.Pkg != "mcdc" || b0.Iterations != 6 || b0.NsPerOp != 192744578 ||
		b0.BytesPerOp != 48816576 || b0.AllocsPerOp != 2019 || !b0.HaveMem {
		t.Errorf("first benchmark fields: %+v", b0)
	}
	if b0.SecPerOp != 0.192744578 {
		t.Errorf("sec/op = %v, want 0.192744578", b0.SecPerOp)
	}
	b2 := report.Benchmarks[2]
	if b2.Name != "BenchmarkTable4_Wilcoxon" || b2.Procs != 0 || b2.NsPerOp != 2363 || b2.BytesPerOp != 0 {
		t.Errorf("time-only benchmark: %+v", b2)
	}
	if b2.SecPerOp != 2363e-9 || b2.HaveMem {
		t.Errorf("time-only benchmark sec/op fields: %+v", b2)
	}
	// An explicit zero-alloc measurement must be distinguishable from a run
	// without -benchmem: HaveMem marks the difference.
	zero, ok := parseBenchLine("BenchmarkServerAssign/inprocess/assigner-8 	 1000000 	 1034 ns/op 	 0 B/op 	 0 allocs/op")
	if !ok || !zero.HaveMem || zero.AllocsPerOp != 0 || zero.BytesPerOp != 0 {
		t.Errorf("zero-alloc line: %+v (ok=%v)", zero, ok)
	}
}

func TestParseBenchLineMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkBroken-8",
		"BenchmarkBroken-8 notanumber 12 ns/op",
		"BenchmarkBroken-8 10 notafloat ns/op",
	} {
		if r, ok := parseBenchLine(line); ok {
			t.Errorf("parseBenchLine(%q) = %+v, want reject", line, r)
		}
	}
}
