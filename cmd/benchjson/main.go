// Command benchjson converts the text output of `go test -bench` into a
// machine-readable JSON document, so CI can archive benchmark runs as
// artifacts (BENCH_pr<N>.json) and tooling can diff them without re-parsing
// the bench text format.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson > BENCH.json
//
// The parser understands the standard line shape
//
//	BenchmarkName-8   125   9123456 ns/op   4096 B/op   12 allocs/op
//
// plus the goos/goarch/pkg/cpu context lines; anything else is ignored.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark measurement. SecPerOp mirrors NsPerOp in
// benchstat's sec/op unit so downstream tooling can diff either scale
// without re-deriving it. BytesPerOp/AllocsPerOp are emitted whenever the
// run carried -benchmem (HaveMem) — including explicit zeros, which are a
// real measurement (the allocation-free serving probe is gated on exactly
// 0 allocs/op), not an absence.
type Result struct {
	Name        string  `json:"name"`
	Pkg         string  `json:"pkg,omitempty"`
	Procs       int     `json:"procs,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	SecPerOp    float64 `json:"sec_per_op"`
	HaveMem     bool    `json:"have_mem"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is the full JSON document.
type Report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	report, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*Report, error) {
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	report := &Report{Benchmarks: []Result{}}
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			report.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			report.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			report.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBenchLine(line); ok {
				r.Pkg = pkg
				report.Benchmarks = append(report.Benchmarks, r)
			}
		}
	}
	return report, sc.Err()
}

// parseBenchLine parses one `BenchmarkX-P  N  V ns/op [V B/op] [V allocs/op]`
// line; malformed lines report !ok and are skipped by the caller.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	r := Result{Name: fields[0]}
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Name, r.Procs = r.Name[:i], procs
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Iterations = iters
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
			r.SecPerOp = v / 1e9
		case "B/op":
			r.BytesPerOp = int64(v)
			r.HaveMem = true
		case "allocs/op":
			r.AllocsPerOp = int64(v)
			r.HaveMem = true
		}
	}
	if r.NsPerOp == 0 && !strings.Contains(line, "ns/op") {
		return Result{}, false
	}
	return r, true
}
