package main

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"mcdc"
	"mcdc/internal/server"
)

// serveModel boots a daemon core with one trained model and returns a
// httptest server wrapping handler (which may decorate the daemon handler).
func serveModel(t *testing.T, wrap func(http.Handler) http.Handler) string {
	t.Helper()
	ds := mcdc.SyntheticDataset("nodes", 300, 6, 3, 1)
	res, err := mcdc.Cluster(ds, 3, mcdc.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	m, err := res.Model()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "nodes.bin")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.LoadModelFile("nodes", path); err != nil {
		t.Fatal(err)
	}
	var h http.Handler = srv.Handler()
	if wrap != nil {
		h = wrap(h)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return ts.URL
}

// TestRunModes drives all three traffic shapes against a live daemon and
// sanity-checks the report arithmetic.
func TestRunModes(t *testing.T) {
	addr := serveModel(t, nil)
	cases := []struct {
		name  string
		proto string
		batch int
	}{
		{"json singles", "json", 0},
		{"binary pipelined", "binary", 0},
		{"json batch", "json", 10},
		{"binary batch", "binary", 10},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := run(addr, "nodes", tc.proto, 97, tc.batch, 3, 42)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Errors != 0 || rep.Sheds != 0 {
				t.Fatalf("clean run reported errors=%d sheds=%d", rep.Errors, rep.Sheds)
			}
			if rep.Rows != 97 {
				t.Fatalf("assigned %d rows, want 97", rep.Rows)
			}
			if rep.Requests == 0 || rep.RowsPerSec <= 0 {
				t.Fatalf("implausible report: %+v", rep)
			}
			q := rep.Latency
			if q.P50 <= 0 || q.P50 > q.P99 || q.P99 > q.P999 || q.P999 > q.Max {
				t.Fatalf("quantiles out of order: %+v", q)
			}
			if n := len(rep.Histogram); n == 0 || rep.Histogram[n-1].Count != int(rep.Requests) {
				t.Fatalf("histogram does not cover all requests: %+v", rep.Histogram)
			}
		})
	}
}

// TestRunDeterministic pins the replay property: the same seed produces the
// same request stream, byte for byte (single worker keeps ordering fixed).
func TestRunDeterministic(t *testing.T) {
	var mu sync.Mutex
	var streams [][]string
	var current []string
	addr := serveModel(t, func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost {
				body, _ := io.ReadAll(r.Body)
				r.Body.Close()
				mu.Lock()
				current = append(current, string(body))
				mu.Unlock()
				r.Body = io.NopCloser(bytes.NewReader(body))
			}
			next.ServeHTTP(w, r)
		})
	})

	for i := 0; i < 2; i++ {
		mu.Lock()
		current = nil
		mu.Unlock()
		if _, err := run(addr, "nodes", "json", 40, 0, 1, 7); err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		streams = append(streams, current)
		mu.Unlock()
	}
	if len(streams[0]) != 40 {
		t.Fatalf("recorded %d requests, want 40", len(streams[0]))
	}
	if !reflect.DeepEqual(streams[0], streams[1]) {
		t.Fatal("two runs with the same seed sent different request streams")
	}

	// A different seed really changes the traffic.
	mu.Lock()
	current = nil
	mu.Unlock()
	if _, err := run(addr, "nodes", "json", 40, 0, 1, 8); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	other := current
	mu.Unlock()
	if reflect.DeepEqual(streams[0], other) {
		t.Fatal("different seeds replayed identical traffic")
	}
}

// TestRunErrorsByCode checks the per-code error breakdown: enveloped API
// failures count under their stable code, severed connections under
// "transport", and the buckets sum to the error total.
func TestRunErrorsByCode(t *testing.T) {
	var n int
	var mu sync.Mutex
	addr := serveModel(t, func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost {
				mu.Lock()
				n++
				i := n
				mu.Unlock()
				switch {
				case i%3 == 0:
					w.Header().Set("Content-Type", "application/json")
					w.WriteHeader(http.StatusBadGateway)
					io.WriteString(w, `{"error":"injected","code":"bad_gateway"}`)
					return
				case i%5 == 0:
					conn, _, err := w.(http.Hijacker).Hijack()
					if err == nil {
						conn.Close() // the caller sees a severed connection
						return
					}
				}
			}
			next.ServeHTTP(w, r)
		})
	})
	rep, err := run(addr, "nodes", "json", 60, 0, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors == 0 {
		t.Fatal("fault wrapper injected no errors")
	}
	if rep.ErrorsByCode["bad_gateway"] == 0 || rep.ErrorsByCode["transport"] == 0 {
		t.Fatalf("expected both bad_gateway and transport buckets, got %v", rep.ErrorsByCode)
	}
	var sum int64
	for _, c := range rep.ErrorsByCode {
		sum += c
	}
	if sum != rep.Errors {
		t.Fatalf("errors_by_code sums to %d, want %d (%v)", sum, rep.Errors, rep.ErrorsByCode)
	}
}

// TestRunErrors covers the gate-relevant failure shapes.
func TestRunErrors(t *testing.T) {
	addr := serveModel(t, nil)
	if _, err := run(addr, "", "json", 10, 0, 1, 1); err == nil {
		t.Fatal("missing -model must fail")
	}
	if _, err := run(addr, "nodes", "carrier-pigeon", 10, 0, 1, 1); err == nil {
		t.Fatal("unknown -proto must fail")
	}
	if _, err := run(addr, "ghost", "json", 10, 0, 1, 1); err == nil {
		t.Fatal("unserved model must fail before sending traffic")
	}
}
