// Command mcdcload is a deterministic load generator for mcdcd: it drives a
// single backend or a gateway fleet with synthetic assignment traffic and
// reports latency quantiles (p50/p99/p999), throughput, and error rates —
// the serving-side counterpart of the sec/op benchmarks, and the tool the
// CI SLO smoke runs against a seeded fleet.
//
// Usage:
//
//	mcdcload -addr 127.0.0.1:8080 -model nodes -n 2000 [-batch 0]
//	         [-concurrency 4] [-seed 1] [-proto json|binary]
//	         [-json out.json] [-max-p99 0] [-fail-on-errors]
//	         [-report-errors-by-code]
//
// The row stream is a pure function of -seed, -concurrency, and the model's
// cardinality schema (fetched from GET /v1/models), so two runs against the
// same fleet replay identical traffic. With -batch > 0 each request is an
// assign-batch of that many rows; otherwise single assigns (pipelined in
// chunks when -proto binary). -max-p99 and -fail-on-errors turn the run
// into a gate: exit 1 when the SLO is missed or any request fails.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"mcdc/client"
)

// pipelineChunk bounds how many single assigns ride one binary request.
const pipelineChunk = 64

// Report is the JSON artifact: enough to trend latency like sec/op.
type Report struct {
	Addr        string `json:"addr"`
	Model       string `json:"model"`
	Proto       string `json:"proto"`
	Seed        int64  `json:"seed"`
	Concurrency int    `json:"concurrency"`
	BatchSize   int    `json:"batch_size"`
	Requests    int64  `json:"requests"`
	Rows        int64  `json:"rows"`
	Errors      int64  `json:"errors"`
	Sheds       int64  `json:"sheds"` // overloaded (429) verdicts, a subset of errors
	// ErrorsByCode splits Errors by the stable API error code (transport-level
	// failures, which never carried an envelope, count under "transport").
	// Populated only with -report-errors-by-code.
	ErrorsByCode map[string]int64 `json:"errors_by_code,omitempty"`
	Seconds      float64          `json:"seconds"`
	RowsPerSec   float64          `json:"rows_per_sec"`
	Latency      Quants           `json:"latency"`
	Histogram    []Bin            `json:"histogram"`
	// Slowest lists the worst requests by latency with the request ids the
	// run stamped on them (X-MCDC-Request-Id), so a bad tail quantile can be
	// chased straight into the daemon's slow-request log.
	Slowest []SlowRequest `json:"slowest,omitempty"`
}

// SlowRequest pairs a request id with its observed latency.
type SlowRequest struct {
	RequestID string  `json:"request_id"`
	Ms        float64 `json:"ms"`
}

// slowestN bounds how many worst-case requests the report names.
const slowestN = 5

// Quants are request-latency quantiles in milliseconds.
type Quants struct {
	P50  float64 `json:"p50_ms"`
	P99  float64 `json:"p99_ms"`
	P999 float64 `json:"p999_ms"`
	Max  float64 `json:"max_ms"`
}

// Bin is one bucket of the log-scaled latency histogram.
type Bin struct {
	LeMs  float64 `json:"le_ms"`
	Count int     `json:"count"`
}

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8080", "daemon or gateway address")
		modelN  = flag.String("model", "", "served model to drive (required)")
		n       = flag.Int("n", 1000, "total rows to assign")
		batch   = flag.Int("batch", 0, "rows per assign-batch request (0 = single assigns)")
		conc    = flag.Int("concurrency", 4, "concurrent workers")
		seed    = flag.Int64("seed", 1, "row-stream seed (the traffic is a pure function of it)")
		proto   = flag.String("proto", "json", "protocol: json or binary")
		jsonOut = flag.String("json", "", "write the report JSON to this file (default stdout only)")
		maxP99  = flag.Duration("max-p99", 0, "fail (exit 1) when p99 latency exceeds this (0 = no gate)")
		failErr = flag.Bool("fail-on-errors", false, "fail (exit 1) when any request errors")
		byCode  = flag.Bool("report-errors-by-code", false, "break the error count down by stable API error code in the report")
	)
	flag.Parse()
	rep, err := run(*addr, *modelN, *proto, *n, *batch, *conc, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcdcload:", err)
		os.Exit(1)
	}
	if !*byCode {
		rep.ErrorsByCode = nil
	}
	out, _ := json.MarshalIndent(rep, "", "  ")
	fmt.Println(string(out))
	if *jsonOut != "" {
		if err := os.WriteFile(*jsonOut, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "mcdcload:", err)
			os.Exit(1)
		}
	}
	if *failErr && rep.Errors > 0 {
		fmt.Fprintf(os.Stderr, "mcdcload: %d/%d requests failed\n", rep.Errors, rep.Requests)
		os.Exit(1)
	}
	if *maxP99 > 0 && rep.Latency.P99 > float64(*maxP99)/float64(time.Millisecond) {
		fmt.Fprintf(os.Stderr, "mcdcload: p99 %.2fms exceeds the %.0fms SLO\n",
			rep.Latency.P99, float64(*maxP99)/float64(time.Millisecond))
		os.Exit(1)
	}
}

// run executes the load and builds the report. Exposed to tests.
func run(addr, modelName, proto string, n, batch, conc int, seed int64) (*Report, error) {
	if modelName == "" {
		return nil, fmt.Errorf("-model is required")
	}
	if proto != "json" && proto != "binary" {
		return nil, fmt.Errorf("-proto must be json or binary, got %q", proto)
	}
	if conc < 1 {
		conc = 1
	}
	opts := []client.Option{}
	if proto == "binary" {
		opts = append(opts, client.WithBinary())
	}
	c := client.New(addr, opts...)
	ctx := context.Background()

	// The schema the synthetic rows must respect.
	models, err := c.Models(ctx)
	if err != nil {
		return nil, fmt.Errorf("fetch models: %w", err)
	}
	var cards []int
	for _, m := range models {
		if m.Name == modelName {
			cards = m.Cardinalities
		}
	}
	if len(cards) == 0 {
		return nil, fmt.Errorf("model %q not served (or predates the cardinalities schema)", modelName)
	}

	// Static work split: worker w serves rows [starts[w], starts[w+1]) of
	// the global stream, each from its own rng — deterministic regardless
	// of scheduling.
	per := n / conc
	extra := n % conc
	type workerOut struct {
		lats   []time.Duration
		ids    []string // aligned with lats: the request id sent with each request
		rows   int64
		reqs   int64
		errs   int64
		sheds  int64
		codes  map[string]int64
		hadErr error
	}
	outs := make([]workerOut, conc)
	var wg sync.WaitGroup
	started := time.Now()
	for w := 0; w < conc; w++ {
		quota := per
		if w < extra {
			quota++
		}
		wg.Add(1)
		go func(w, quota int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*1_000_003))
			o := &outs[w]
			newRow := func() []int {
				row := make([]int, len(cards))
				for i, card := range cards {
					row[i] = rng.Intn(card)
				}
				return row
			}
			// Each request carries a deterministic id (worker × request
			// ordinal) via X-MCDC-Request-Id, so the Slowest entries of the
			// report line up with the daemon's slow-request log.
			nextID := func() (string, context.Context) {
				id := fmt.Sprintf("load-%d-w%d-r%d", seed, w, o.reqs)
				return id, client.WithRequestID(ctx, id)
			}
			record := func(id string, nRows int, d time.Duration, err error) {
				o.reqs++
				o.lats = append(o.lats, d)
				o.ids = append(o.ids, id)
				if err != nil {
					o.errs++
					if client.IsCode(err, "overloaded") {
						o.sheds++
					}
					if o.codes == nil {
						o.codes = make(map[string]int64)
					}
					o.codes[errCode(err)]++
					if o.hadErr == nil {
						o.hadErr = err
					}
					return
				}
				o.rows += int64(nRows)
			}
			switch {
			case batch > 0:
				for done := 0; done < quota; done += batch {
					size := batch
					if done+size > quota {
						size = quota - done
					}
					rows := make([][]int, size)
					for i := range rows {
						rows[i] = newRow()
					}
					id, rctx := nextID()
					t0 := time.Now()
					_, err := c.AssignBatch(rctx, modelName, rows)
					record(id, size, time.Since(t0), err)
				}
			case proto == "binary":
				// Pipeline singles in chunks, the persistent-connection
				// fast path.
				for done := 0; done < quota; done += pipelineChunk {
					size := pipelineChunk
					if done+size > quota {
						size = quota - done
					}
					rows := make([][]int, size)
					for i := range rows {
						rows[i] = newRow()
					}
					id, rctx := nextID()
					t0 := time.Now()
					_, err := c.AssignMany(rctx, modelName, rows)
					record(id, size, time.Since(t0), err)
				}
			default:
				for done := 0; done < quota; done++ {
					row := newRow()
					id, rctx := nextID()
					t0 := time.Now()
					_, err := c.Assign(rctx, modelName, row)
					record(id, 1, time.Since(t0), err)
				}
			}
		}(w, quota)
	}
	wg.Wait()
	elapsed := time.Since(started)

	rep := &Report{
		Addr: addr, Model: modelName, Proto: proto, Seed: seed,
		Concurrency: conc, BatchSize: batch, Seconds: elapsed.Seconds(),
	}
	var lats []time.Duration
	var slow []SlowRequest
	for w := range outs {
		rep.Requests += outs[w].reqs
		rep.Rows += outs[w].rows
		rep.Errors += outs[w].errs
		rep.Sheds += outs[w].sheds
		for code, count := range outs[w].codes {
			if rep.ErrorsByCode == nil {
				rep.ErrorsByCode = make(map[string]int64)
			}
			rep.ErrorsByCode[code] += count
		}
		lats = append(lats, outs[w].lats...)
		for i, d := range outs[w].lats {
			slow = append(slow, SlowRequest{RequestID: outs[w].ids[i], Ms: float64(d) / float64(time.Millisecond)})
		}
	}
	if rep.Seconds > 0 {
		rep.RowsPerSec = float64(rep.Rows) / rep.Seconds
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	rep.Latency = quantiles(lats)
	rep.Histogram = histogram(lats)
	// Worst requests first; ties break on id so the report is stable for a
	// fixed latency profile.
	sort.Slice(slow, func(i, j int) bool {
		if slow[i].Ms != slow[j].Ms {
			return slow[i].Ms > slow[j].Ms
		}
		return slow[i].RequestID < slow[j].RequestID
	})
	if len(slow) > slowestN {
		slow = slow[:slowestN]
	}
	rep.Slowest = slow
	return rep, nil
}

// errCode maps a request failure to its stable API code; failures that never
// produced an error envelope (refused, reset, timed out) count as "transport".
func errCode(err error) string {
	var ae *client.APIError
	if errors.As(err, &ae) && ae.Code != "" {
		return ae.Code
	}
	return "transport"
}

// quantiles reads p50/p99/p999 off the sorted latencies (nearest-rank).
func quantiles(sorted []time.Duration) Quants {
	if len(sorted) == 0 {
		return Quants{}
	}
	at := func(q float64) float64 {
		i := int(q * float64(len(sorted)-1))
		return float64(sorted[i]) / float64(time.Millisecond)
	}
	return Quants{
		P50:  at(0.50),
		P99:  at(0.99),
		P999: at(0.999),
		Max:  float64(sorted[len(sorted)-1]) / float64(time.Millisecond),
	}
}

// histogram buckets latencies into doubling bounds from 0.1ms to ~102s —
// compact, and stable across runs for diffing.
func histogram(sorted []time.Duration) []Bin {
	bounds := []float64{}
	for ms := 0.1; ms < 120_000; ms *= 2 {
		bounds = append(bounds, ms)
	}
	bins := make([]Bin, 0, len(bounds))
	i := 0
	for _, le := range bounds {
		for i < len(sorted) && float64(sorted[i])/float64(time.Millisecond) <= le {
			i++
		}
		bins = append(bins, Bin{LeMs: le, Count: i}) // cumulative, like Prometheus le
		if i == len(sorted) {
			break
		}
	}
	return bins
}
