// Command mcdcvet is the repo's multichecker: it bundles the custom
// analyzers under internal/analysis/passes that mechanize the standing
// constraints in ROADMAP.md and runs them over Go package patterns.
//
// Usage:
//
//	mcdcvet [flags] [packages]
//
//	mcdcvet ./...                 # analyze the whole module (the CI job)
//	mcdcvet ./internal/server     # one package
//	mcdcvet -list                 # print the registered analyzers
//	mcdcvet -run detrand,sloglint ./...
//
// mcdcvet is a standalone driver, not a `go vet -vettool` plugin: the
// vettool protocol is implemented by x/tools' unitchecker, and this module
// deliberately carries no external dependencies (see internal/analysis).
// The trade is small — the driver loads and type-checks packages itself,
// entirely from source — and the CI job builds the tool from the module, so
// analyzer and tree can never version-skew.
//
// Diagnostics print as file:line:col: message (analyzer); the exit status is
// 1 when any diagnostic survives //lint:mcdcvet-ignore suppression, 2 on
// operational errors.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"mcdc/internal/analysis"
	"mcdc/internal/analysis/registry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("mcdcvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "print the registered analyzers and exit")
	only := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: mcdcvet [-list] [-run names] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := registry.All()
	if *list {
		for _, a := range analyzers {
			doc := a.Doc
			if i := strings.IndexByte(doc, '\n'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, doc)
		}
		return 0
	}
	if *only != "" {
		keep := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var filtered []*analysis.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				filtered = append(filtered, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fmt.Fprintf(stderr, "mcdcvet: unknown analyzer %q (see -list)\n", name)
			return 2
		}
		analyzers = filtered
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(patterns)
	if err != nil {
		fmt.Fprintf(stderr, "mcdcvet: %v\n", err)
		return 2
	}
	if len(pkgs) == 0 {
		fmt.Fprintln(stderr, "mcdcvet: no packages matched")
		return 2
	}

	loader, err := analysis.NewLoader(pkgs[0].dir)
	if err != nil {
		fmt.Fprintf(stderr, "mcdcvet: %v\n", err)
		return 2
	}

	exit := 0
	for _, p := range pkgs {
		pkg, err := loader.LoadDir(p.dir, p.path)
		if err != nil {
			fmt.Fprintf(stderr, "mcdcvet: %v\n", err)
			return 2
		}
		findings, err := analysis.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(stderr, "mcdcvet: %v\n", err)
			return 2
		}
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
			exit = 1
		}
	}
	return exit
}

type listedPkg struct {
	dir, path string
}

// goList expands package patterns with the go tool — the one component the
// driver borrows from the toolchain, so pattern semantics (./..., build
// constraints, testdata exclusion) match go vet exactly.
func goList(patterns []string) ([]listedPkg, error) {
	args := append([]string{"list", "-f", "{{.Dir}}\t{{.ImportPath}}"}, patterns...)
	cmd := exec.Command("go", args...)
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	var pkgs []listedPkg
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if line == "" {
			continue
		}
		dir, path, ok := strings.Cut(line, "\t")
		if !ok {
			return nil, fmt.Errorf("unexpected go list line %q", line)
		}
		pkgs = append(pkgs, listedPkg{dir: dir, path: path})
	}
	return pkgs, nil
}
