package main

import (
	"os"
	"testing"

	"mcdc/internal/analysis/registry"
)

// TestRegistersAllAnalyzers pins the suite's roster: the six analyzers that
// mechanize the ROADMAP standing constraints must all be registered, so a
// refactor that drops one out of the binary fails here, not in review.
func TestRegistersAllAnalyzers(t *testing.T) {
	want := []string{
		"bodydrain",
		"densematrix",
		"detrand",
		"errenvelope",
		"lockorder",
		"sloglint",
	}
	got := make(map[string]bool)
	for _, a := range registry.All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q is missing a name, doc, or run function", a.Name)
		}
		if got[a.Name] {
			t.Errorf("analyzer %q registered twice", a.Name)
		}
		got[a.Name] = true
	}
	for _, name := range want {
		if !got[name] {
			t.Errorf("analyzer %q is not registered in registry.All", name)
		}
	}
	if len(got) != len(want) {
		t.Errorf("registry has %d analyzers, want %d (update this test when the suite grows)", len(got), len(want))
	}
}

// TestRunList smokes the -list path through the real main entry.
func TestRunList(t *testing.T) {
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Skipf("no %s: %v", os.DevNull, err)
	}
	defer null.Close()
	if code := run([]string{"-list"}, null, null); code != 0 {
		t.Fatalf("mcdcvet -list exited %d, want 0", code)
	}
	if code := run([]string{"-run", "nosuch", "-list"}, null, null); code != 0 {
		t.Fatalf("mcdcvet -run nosuch -list exited %d, want 0 (-list short-circuits)", code)
	}
}
