// Command mcdc clusters a categorical CSV file with the MCDC pipeline and
// prints the per-object cluster assignments together with the discovered
// multi-granular structure.
//
// Usage:
//
//	mcdc -in data.csv [-k 3] [-seed 1] [-header] [-class -1] [-out labels.csv]
//	mcdc -in data.csv -save model.bin      # train, then freeze a serving model
//	mcdc -in data.csv -model model.bin     # assign without re-learning
//
// When -k is omitted (or 0), the number of clusters estimated by MGCPL
// (k_σ) is used. -save writes a versioned model snapshot the mcdcd daemon
// (or a later -model run) serves; -model is the fast path: it loads such a
// snapshot and assigns the input rows against the frozen model, skipping
// training entirely.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"mcdc"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mcdc:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in       = flag.String("in", "", "input CSV file (required)")
		k        = flag.Int("k", 0, "sought number of clusters (0 = use MGCPL's estimate)")
		seed     = flag.Int64("seed", 1, "random seed")
		header   = flag.Bool("header", false, "first CSV row is a header")
		classCol = flag.Int("class", -1, "ground-truth column index (evaluated, not clustered); -1 = none")
		out      = flag.String("out", "", "write per-object labels to this CSV (default: stdout summary only)")
		eta      = flag.Float64("eta", 0, "learning rate η (0 = paper default 0.03)")
		k0       = flag.Int("k0", 0, "initial number of clusters k0 (0 = paper default √n)")
		par      = flag.Int("parallel", 0, "worker goroutines (0 = all cores, 1 = sequential; results are identical at any setting)")
		save     = flag.String("save", "", "after training, freeze the model into this snapshot file (for mcdcd / -model)")
		modelIn  = flag.String("model", "", "assign against this frozen model snapshot instead of training")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		return fmt.Errorf("missing -in")
	}
	if *modelIn != "" && *save != "" {
		return fmt.Errorf("-model skips training, so there is nothing to -save")
	}
	ds, err := mcdc.ReadCSVFile(*in, *header, *classCol)
	if err != nil {
		return err
	}
	fmt.Printf("loaded %s\n", ds)

	if *modelIn != "" {
		return assignWithModel(ds, *modelIn, *par, *out)
	}

	opts := []mcdc.Option{mcdc.WithSeed(*seed), mcdc.WithParallelism(*par)}
	if *eta > 0 {
		opts = append(opts, mcdc.WithLearningRate(*eta))
	}
	if *k0 > 0 {
		opts = append(opts, mcdc.WithInitialK(*k0))
	}

	mg, err := mcdc.Explore(ds, opts...)
	if err != nil {
		return err
	}
	fmt.Printf("multi-granular structure: kappa = %v (sigma = %d levels)\n", mg.Kappa, len(mg.Kappa))

	sought := *k
	if sought <= 0 {
		sought = mg.EstimatedK()
		fmt.Printf("no -k given; using MGCPL's estimate k = %d\n", sought)
	}
	res, err := mcdc.Cluster(ds, sought, opts...)
	if err != nil {
		return err
	}
	sizes := make(map[int]int)
	for _, l := range res.Labels {
		sizes[l]++
	}
	fmt.Printf("clustered into %d clusters; sizes: %v\n", len(sizes), sizes)
	if res.Theta != nil {
		fmt.Printf("granularity importances theta = %v\n", formatFloats(res.Theta))
	}
	if ds.Labels != nil {
		sc, err := mcdc.Evaluate(ds.Labels, res.Labels)
		if err != nil {
			return err
		}
		fmt.Printf("vs ground truth: ACC=%.3f ARI=%.3f AMI=%.3f FM=%.3f\n", sc.ACC, sc.ARI, sc.AMI, sc.FM)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := writeLabels(f, res.Labels); err != nil {
			return err
		}
		fmt.Printf("labels written to %s\n", *out)
	}
	if *save != "" {
		m, err := res.Model()
		if err != nil {
			return err
		}
		if err := m.Save(*save); err != nil {
			return err
		}
		fmt.Printf("model snapshot written to %s (k=%d, %d features)\n", *save, m.K(), m.Features())
	}
	return nil
}

// assignWithModel is the -model fast path: load a frozen snapshot and assign
// the input rows against it, with no learning pass.
func assignWithModel(ds *mcdc.Dataset, path string, par int, out string) error {
	m, err := mcdc.LoadModel(path)
	if err != nil {
		return err
	}
	fmt.Printf("loaded model %q: k=%d, kappa=%v, epoch=%d\n", m.Name(), m.K(), m.Kappa(), m.Epoch())
	// AssignDataset re-codes the input's value labels onto the model's
	// training dictionary, so a CSV whose values appear in a different
	// order (and hence got different integer codes) still scores correctly.
	assignments, err := m.AssignDataset(ds, par)
	if err != nil {
		return err
	}
	labels := make([]int, len(assignments))
	sizes := make(map[int]int)
	var meanSim float64
	for i, a := range assignments {
		labels[i] = a.Cluster
		sizes[a.Cluster]++
		meanSim += a.Similarity
	}
	meanSim /= float64(len(assignments))
	fmt.Printf("assigned %d objects into %d clusters; sizes: %v; mean similarity %.3f\n",
		len(labels), len(sizes), sizes, meanSim)
	if ds.Labels != nil {
		sc, err := mcdc.Evaluate(ds.Labels, labels)
		if err != nil {
			return err
		}
		fmt.Printf("vs ground truth: ACC=%.3f ARI=%.3f AMI=%.3f FM=%.3f\n", sc.ACC, sc.ARI, sc.AMI, sc.FM)
	}
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := writeLabels(f, labels); err != nil {
			return err
		}
		fmt.Printf("labels written to %s\n", out)
	}
	return nil
}

func writeLabels(w io.Writer, labels []int) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"object", "cluster"}); err != nil {
		return err
	}
	for i, l := range labels {
		if err := cw.Write([]string{strconv.Itoa(i), strconv.Itoa(l)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatFloats(xs []float64) string {
	s := "["
	for i, x := range xs {
		if i > 0 {
			s += " "
		}
		s += strconv.FormatFloat(x, 'f', 3, 64)
	}
	return s + "]"
}
