package main

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// resetFlags replaces the global FlagSet so run() can parse fresh arguments
// in each test.
func resetFlags(t *testing.T) {
	t.Helper()
	flag.CommandLine = flag.NewFlagSet(os.Args[0], flag.ContinueOnError)
	flag.CommandLine.SetOutput(io.Discard)
}

func TestWriteLabels(t *testing.T) {
	var buf bytes.Buffer
	if err := writeLabels(&buf, []int{2, 0, 1}); err != nil {
		t.Fatal(err)
	}
	want := "object,cluster\n0,2\n1,0\n2,1\n"
	if buf.String() != want {
		t.Errorf("got %q, want %q", buf.String(), want)
	}
}

func TestFormatFloats(t *testing.T) {
	if got := formatFloats([]float64{0.25, 0.75}); got != "[0.250 0.750]" {
		t.Errorf("formatFloats = %q", got)
	}
}

// TestRunEndToEnd drives the CLI's run() against a real CSV on disk.
func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.csv")
	var rows strings.Builder
	rows.WriteString("a,b,c,class\n")
	for i := 0; i < 90; i++ {
		switch i % 3 {
		case 0:
			rows.WriteString("x,1,p,c0\n")
		case 1:
			rows.WriteString("y,2,q,c1\n")
		default:
			rows.WriteString("z,3,r,c2\n")
		}
	}
	if err := os.WriteFile(in, []byte(rows.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "labels.csv")

	oldArgs := os.Args
	defer func() { os.Args = oldArgs }()
	os.Args = []string{"mcdc", "-in", in, "-header", "-class", "3", "-k", "3", "-out", out}
	resetFlags(t)
	if err := run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("labels file: %v", err)
	}
	lines := strings.Count(string(data), "\n")
	if lines != 91 { // header + 90 objects
		t.Errorf("labels file has %d lines, want 91", lines)
	}
}

// TestRunSaveThenModelFastPath trains with -save, re-runs with -model, and
// checks the fast path reproduces the training run's labels file.
func TestRunSaveThenModelFastPath(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.csv")
	var rows strings.Builder
	rows.WriteString("a,b,c\n")
	for i := 0; i < 90; i++ {
		switch i % 3 {
		case 0:
			rows.WriteString("x,1,p\n")
		case 1:
			rows.WriteString("y,2,q\n")
		default:
			rows.WriteString("z,3,r\n")
		}
	}
	if err := os.WriteFile(in, []byte(rows.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	model := filepath.Join(dir, "model.bin")
	trained := filepath.Join(dir, "trained.csv")
	served := filepath.Join(dir, "served.csv")

	oldArgs := os.Args
	defer func() { os.Args = oldArgs }()

	os.Args = []string{"mcdc", "-in", in, "-header", "-k", "3", "-save", model, "-out", trained}
	resetFlags(t)
	if err := run(); err != nil {
		t.Fatalf("train+save: %v", err)
	}
	os.Args = []string{"mcdc", "-in", in, "-header", "-model", model, "-out", served}
	resetFlags(t)
	if err := run(); err != nil {
		t.Fatalf("model fast path: %v", err)
	}

	want, err := os.ReadFile(trained)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(served)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Errorf("fast-path labels differ from training labels:\n%s\nvs\n%s", got, want)
	}

	// -model and -save together is a contradiction.
	os.Args = []string{"mcdc", "-in", in, "-header", "-model", model, "-save", model}
	resetFlags(t)
	if err := run(); err == nil {
		t.Error("-model with -save: want error")
	}
}

func TestRunMissingInput(t *testing.T) {
	oldArgs := os.Args
	defer func() { os.Args = oldArgs }()
	os.Args = []string{"mcdc"}
	resetFlags(t)
	if err := run(); err == nil {
		t.Error("missing -in: want error")
	}
}
