package main

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func resetFlags(t *testing.T) {
	t.Helper()
	flag.CommandLine = flag.NewFlagSet(os.Args[0], flag.ContinueOnError)
	flag.CommandLine.SetOutput(io.Discard)
}

func TestDatagenWritesSelectedSets(t *testing.T) {
	dir := t.TempDir()
	oldArgs := os.Args
	defer func() { os.Args = oldArgs }()
	os.Args = []string{"datagen", "-out", dir, "-datasets", "Bal.,Tic."}
	resetFlags(t)
	if err := run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, name := range []string{"bal.csv", "tic.csv"} {
		info, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", name)
		}
	}
	// Unselected sets must not appear.
	if _, err := os.Stat(filepath.Join(dir, "car.csv")); err == nil {
		t.Error("car.csv written although not selected")
	}
}

func TestDatagenList(t *testing.T) {
	oldArgs := os.Args
	defer func() { os.Args = oldArgs }()
	os.Args = []string{"datagen", "-list"}
	resetFlags(t)
	if err := run(); err != nil {
		t.Fatalf("run: %v", err)
	}
}
