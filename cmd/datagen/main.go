// Command datagen materializes the built-in benchmark data sets (Table II of
// the paper) as CSV files, for inspection or for use with other tools.
//
// Usage:
//
//	datagen -out ./data [-seed 1] [-datasets Car.,Bal.]
//	datagen -list
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mcdc/internal/categorical"
	"mcdc/internal/datasets"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out    = flag.String("out", "data", "output directory")
		seed   = flag.Int64("seed", 1, "random seed for the generative data sets")
		dsFlag = flag.String("datasets", "", "comma-separated subset (default: all)")
		list   = flag.Bool("list", false, "list available data sets and exit")
	)
	flag.Parse()

	infos := datasets.Table2()
	if *list {
		fmt.Println("Available data sets (Table II of the paper):")
		for _, info := range infos {
			kind := "generative stand-in"
			if info.Exact {
				kind = "exact reconstruction"
			}
			fmt.Printf("  %-5s %-16s d=%-4d n=%-6d k*=%d  (%s)\n", info.Name, info.Full, info.D, info.N, info.KStar, kind)
		}
		return nil
	}

	want := map[string]bool{}
	if *dsFlag != "" {
		for _, name := range strings.Split(*dsFlag, ",") {
			want[name] = true
		}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	for _, info := range infos {
		if len(want) > 0 && !want[info.Name] {
			continue
		}
		ds, err := datasets.Load(info.Name, *seed)
		if err != nil {
			return err
		}
		path := filepath.Join(*out, strings.TrimSuffix(strings.ToLower(info.Name), ".")+".csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := categorical.WriteCSV(f, ds); err != nil {
			f.Close()
			return fmt.Errorf("write %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %-28s (%s)\n", path, ds)
	}
	return nil
}
