package mcdc

import "mcdc/internal/metrics"

// Scores bundles the four external validity indices of the paper's Table III.
type Scores = metrics.Scores

// Evaluate computes ACC, ARI, AMI and FM between a ground-truth labeling and
// a predicted partition.
func Evaluate(truth, pred []int) (Scores, error) { return metrics.Evaluate(truth, pred) }

// Accuracy computes Clustering Accuracy under the optimal cluster-to-class
// matching (Hungarian assignment). Range [0,1].
func Accuracy(truth, pred []int) (float64, error) { return metrics.Accuracy(truth, pred) }

// ARI computes the Adjusted Rand Index. Range [-1,1].
func ARI(truth, pred []int) (float64, error) { return metrics.AdjustedRandIndex(truth, pred) }

// AMI computes the Adjusted Mutual Information (arithmetic normalization,
// exact expected-MI). Range ≈[-1,1].
func AMI(truth, pred []int) (float64, error) { return metrics.AdjustedMutualInformation(truth, pred) }

// NMI computes the Normalized Mutual Information (arithmetic normalization).
// Range [0,1].
func NMI(truth, pred []int) (float64, error) { return metrics.NormalizedMutualInformation(truth, pred) }

// FowlkesMallows computes the FM score, the geometric mean of pairwise
// precision and recall. Range [0,1].
func FowlkesMallows(truth, pred []int) (float64, error) { return metrics.FowlkesMallows(truth, pred) }
