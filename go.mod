module mcdc

go 1.22
