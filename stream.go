package mcdc

import (
	"io"
	"math/rand"

	"mcdc/internal/core"
	"mcdc/internal/model"
	"mcdc/internal/stream"
)

// StreamAssignment reports where a streamed object landed: its cluster under
// the current model, the similarity of that assignment, and the model epoch
// (which increments whenever the model is re-learned).
type StreamAssignment = stream.Assignment

// StreamClusterer clusters an unbounded stream of categorical objects: each
// Add returns an online assignment against the current multi-granular model,
// and the model is re-learned from the recent window when the stream drifts
// or a refresh interval passes. It extends MCDC to dynamic data, the paper's
// second future-work direction. Not safe for concurrent use.
type StreamClusterer struct {
	inner *stream.Clusterer
}

// StreamConfig configures NewStreamClusterer.
type StreamConfig struct {
	// Cardinalities fixes the per-feature domain sizes of the stream.
	Cardinalities []int
	// WindowSize is the number of recent objects kept for re-learning
	// (default 1000); RefreshEvery forces a periodic re-learning (default
	// WindowSize).
	WindowSize   int
	RefreshEvery int
	// Seed drives the underlying MGCPL analyses.
	Seed int64
	// Parallelism bounds the goroutines used by window re-learning
	// (≤ 0 → GOMAXPROCS, 1 → sequential); see WithParallelism for the
	// determinism contract.
	Parallelism int
}

// NewStreamClusterer builds a streaming multi-granular clusterer.
func NewStreamClusterer(cfg StreamConfig) (*StreamClusterer, error) {
	inner, err := stream.NewClusterer(stream.Config{
		Cardinalities: cfg.Cardinalities,
		WindowSize:    cfg.WindowSize,
		RefreshEvery:  cfg.RefreshEvery,
		MGCPL:         core.MGCPLConfig{Workers: cfg.Parallelism, Rand: rand.New(rand.NewSource(cfg.Seed))},
	})
	if err != nil {
		return nil, err
	}
	return &StreamClusterer{inner: inner}, nil
}

// Add ingests one integer-coded object and returns its assignment.
func (s *StreamClusterer) Add(row []int) (StreamAssignment, error) { return s.inner.Add(row) }

// K returns the number of clusters in the current model (0 before the first
// model is learned).
func (s *StreamClusterer) K() int { return s.inner.K() }

// Kappa returns the granularity series of the current model.
func (s *StreamClusterer) Kappa() []int { return s.inner.Kappa() }

// ModelEpoch returns how many times the model has been re-learned.
func (s *StreamClusterer) ModelEpoch() int { return s.inner.ModelEpoch() }

// Save checkpoints the clusterer to w as a versioned snapshot: the recent
// window, drift counters, and current model survive a restart. Saving
// rotates the clusterer's random stream onto a recorded sub-seed, so this
// clusterer and any ResumeStreamClusterer of the checkpoint continue with
// bit-for-bit identical behavior.
func (s *StreamClusterer) Save(w io.Writer) error { return s.inner.Snapshot().Save(w) }

// ResumeStreamClusterer restores a streaming clusterer from a checkpoint
// written by Save, resuming exactly where the saved clusterer left off.
func ResumeStreamClusterer(r io.Reader) (*StreamClusterer, error) {
	st, err := model.LoadStream(r)
	if err != nil {
		return nil, err
	}
	inner, err := stream.Restore(st)
	if err != nil {
		return nil, err
	}
	return &StreamClusterer{inner: inner}, nil
}
