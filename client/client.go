// Package client is the typed Go client for mcdcd, the MCDC model-serving
// daemon. It speaks the v1 HTTP API — either JSON or the binary frame
// protocol (internal/model wire codec) behind the same method set — against
// a single daemon or a gateway fleet interchangeably:
//
//	c := client.New("127.0.0.1:8080", client.WithBinary())
//	a, err := c.Assign(ctx, "nodes", []int{0, 1, 2})
//	as, err := c.AssignBatch(ctx, "nodes", rows) // streamed in binary mode
//
// Every server-side error surfaces as *APIError carrying the stable code
// from the v1 error envelope (bad_request, unknown_model, unknown_session,
// conflict, version_mismatch, overloaded, bad_gateway). Overload (429) is
// retried transparently, honoring the server's Retry-After delay, up to the
// configured attempt budget; all waiting respects the context.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"mcdc/internal/model"
)

// wireContentType mirrors server.WireContentType; redeclared so the client
// package's public surface depends only on internal/model.
const wireContentType = "application/x-mcdc-frame"

// RequestIDHeader is the correlation header the serving stack mints, accepts,
// and echoes on every response (mirrors server.RequestIDHeader).
const RequestIDHeader = "X-MCDC-Request-Id"

// ctxKeyRequestID keys a caller-chosen request id inside a context.
type ctxKeyRequestID struct{}

// WithRequestID returns a context that makes every request issued under it
// carry id in the X-MCDC-Request-Id header, so a caller can correlate its own
// identifiers with server-side logs and traces. An empty id is ignored and
// the server mints one instead.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKeyRequestID{}, id)
}

// requestIDFrom extracts the id planted by WithRequestID, if any.
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyRequestID{}).(string)
	return id
}

// batchChunk is the row count per 'R' frame in binary batch streaming —
// large enough to amortize framing, small enough to bound both sides'
// memory per chunk.
const batchChunk = 1024

// Assignment is one cluster-assignment result.
type Assignment struct {
	Cluster    int     `json:"cluster"`
	Similarity float64 `json:"similarity"`
	Epoch      int     `json:"epoch"`
	Encoding   []int   `json:"encoding,omitempty"`
}

// ModelInfo describes one served model, including the per-feature
// cardinalities a caller needs to synthesize valid rows.
type ModelInfo struct {
	Name          string `json:"name"`
	K             int    `json:"k"`
	Epoch         int    `json:"epoch"`
	Features      int    `json:"features"`
	Cardinalities []int  `json:"cardinalities,omitempty"`
	Kappa         []int  `json:"kappa,omitempty"`
	TrainN        int    `json:"train_n"`
	Buffered      int    `json:"buffered"`
}

// SessionConfig tunes CreateSession; the zero value takes server defaults.
type SessionConfig struct {
	Window int   `json:"window,omitempty"`
	Seed   int64 `json:"seed,omitempty"`
}

// APIError is a server-side failure: the HTTP status, the stable machine
// code from the v1 error envelope, the human message, and — for overloaded
// (429) responses — the parsed Retry-After delay.
type APIError struct {
	Status     int
	Code       string
	Message    string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("mcdcd: %s (%s, status %d)", e.Message, e.Code, e.Status)
}

// Option configures a Client.
type Option func(*Client)

// WithBinary selects the binary frame protocol for the assignment paths
// (management endpoints stay JSON — they are not hot).
func WithBinary() Option { return func(c *Client) { c.binary = true } }

// WithJSON selects JSON for everything (the default).
func WithJSON() Option { return func(c *Client) { c.binary = false } }

// WithHTTPClient substitutes the transport (timeouts, connection pooling).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithMaxRetries bounds the transparent retries of overloaded (429)
// responses; 0 disables retrying. The default is 3.
func WithMaxRetries(n int) Option { return func(c *Client) { c.maxRetries = n } }

// Client is a typed mcdcd client. It is safe for concurrent use; the
// underlying http.Client pools keep-alive connections, so pipelined binary
// streams ride persistent connections without extra setup.
type Client struct {
	base       string // http://host:port
	hc         *http.Client
	binary     bool
	maxRetries int
}

// New builds a client for a daemon or gateway address ("host:port" or a
// full http:// base URL).
func New(addr string, opts ...Option) *Client {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	c := &Client{
		base:       strings.TrimRight(base, "/"),
		hc:         &http.Client{Timeout: 30 * time.Second},
		maxRetries: 3,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// ---- request plumbing ----

// doRetry performs a request built fresh per attempt (a consumed body
// cannot be resent), transparently retrying 429s after the advertised
// Retry-After delay. Any non-429 response returns to the caller, who owns
// resp.Body.
func (c *Client) doRetry(ctx context.Context, build func() (*http.Request, error)) (*http.Response, error) {
	reqID := requestIDFrom(ctx)
	for attempt := 0; ; attempt++ {
		req, err := build()
		if err != nil {
			return nil, err
		}
		if reqID != "" {
			req.Header.Set(RequestIDHeader, reqID)
		}
		resp, err := c.hc.Do(req.WithContext(ctx))
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusTooManyRequests || attempt >= c.maxRetries {
			return resp, nil
		}
		apiErr := decodeAPIError(resp) // drains and closes the body
		select {
		case <-time.After(apiErr.RetryAfter):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// decodeAPIError consumes a failure response into an *APIError.
func decodeAPIError(resp *http.Response) *APIError {
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	e := &APIError{Status: resp.StatusCode, Message: strings.TrimSpace(string(data))}
	var env struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if json.Unmarshal(data, &env) == nil && env.Code != "" {
		e.Code, e.Message = env.Code, env.Error
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		e.RetryAfter = time.Duration(secs) * time.Second
	} else {
		e.RetryAfter = time.Second
	}
	return e
}

// postJSON round-trips one JSON request; out may be nil.
func (c *Client) postJSON(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return err
		}
	}
	resp, err := c.doRetry(ctx, func() (*http.Request, error) {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, c.base+path, rd)
		if err != nil {
			return nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		return req, nil
	})
	if err != nil {
		return err
	}
	if resp.StatusCode >= http.StatusBadRequest {
		return decodeAPIError(resp)
	}
	defer resp.Body.Close()
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// ---- assignment ----

// Assign assigns one row against a served model.
func (c *Client) Assign(ctx context.Context, modelName string, row []int) (Assignment, error) {
	return c.assign(ctx, modelName, "", row)
}

// AssignSession assigns one row against a streaming session (stateful: the
// session learns from the row).
func (c *Client) AssignSession(ctx context.Context, session string, row []int) (Assignment, error) {
	return c.assign(ctx, "", session, row)
}

func (c *Client) assign(ctx context.Context, modelName, session string, row []int) (Assignment, error) {
	if c.binary {
		as, err := c.assignWire(ctx, []wireAssignReq{{modelName, session, row}})
		if err != nil {
			return Assignment{}, err
		}
		return as[0], nil
	}
	var out Assignment
	in := map[string]any{"row": row}
	if modelName != "" {
		in["model"] = modelName
	}
	if session != "" {
		in["session"] = session
	}
	err := c.postJSON(ctx, http.MethodPost, "/v1/assign", in, &out)
	return out, err
}

// AssignMany assigns many independent rows in one round trip. In binary
// mode the rows pipeline as frames over one request; in JSON mode it
// degrades to sequential Assign calls. Per-row failures surface as the
// first row's error (rows before it are already assigned server-side,
// matching per-request semantics).
func (c *Client) AssignMany(ctx context.Context, modelName string, rows [][]int) ([]Assignment, error) {
	if c.binary {
		reqs := make([]wireAssignReq, len(rows))
		for i, row := range rows {
			reqs[i] = wireAssignReq{modelName, "", row}
		}
		return c.assignWire(ctx, reqs)
	}
	out := make([]Assignment, len(rows))
	for i, row := range rows {
		a, err := c.Assign(ctx, modelName, row)
		if err != nil {
			return out[:i], err
		}
		out[i] = a
	}
	return out, nil
}

type wireAssignReq struct {
	model, session string
	row            []int
}

// assignWire pipelines assign frames over one POST and decodes the
// in-order responses.
func (c *Client) assignWire(ctx context.Context, reqs []wireAssignReq) ([]Assignment, error) {
	var body bytes.Buffer
	_ = model.WriteWireHeader(&body)
	var payload []byte
	for _, r := range reqs {
		payload = model.AppendAssignRequest(payload[:0], r.model, r.session, r.row)
		_ = model.WriteFrame(&body, model.FrameAssign, payload)
	}
	raw := body.Bytes()
	resp, err := c.doRetry(ctx, func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPost, c.base+"/v1/assign", bytes.NewReader(raw))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", wireContentType)
		return req, nil
	})
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= http.StatusBadRequest {
		return nil, decodeAPIError(resp)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	if err := model.ReadWireHeader(br); err != nil {
		return nil, err
	}
	out := make([]Assignment, 0, len(reqs))
	for {
		kind, payload, err := model.ReadFrame(br)
		if err == io.EOF {
			if len(out) != len(reqs) {
				return out, io.ErrUnexpectedEOF
			}
			return out, nil
		}
		if err != nil {
			return out, err
		}
		switch kind {
		case model.FrameResult:
			a, epoch, err := model.DecodeResult(payload)
			if err != nil {
				return out, err
			}
			out = append(out, Assignment{Cluster: a.Cluster, Similarity: a.Similarity, Epoch: epoch, Encoding: a.Encoding})
		case model.FrameError:
			code, msg, derr := model.DecodeError(payload)
			if derr != nil {
				return out, derr
			}
			return out, &APIError{Status: http.StatusOK, Code: code, Message: msg}
		default:
			return out, fmt.Errorf("client: unexpected frame kind %q", kind)
		}
	}
}

// AssignBatch assigns a batch of rows against one model. In binary mode the
// request streams as row chunks and results decode as they arrive, so a
// huge batch never buffers whole on either side; in JSON mode it posts the
// standard batch request. All returned assignments carry the snapshot epoch
// that served the batch.
func (c *Client) AssignBatch(ctx context.Context, modelName string, rows [][]int) ([]Assignment, error) {
	if c.binary {
		return c.assignBatchWire(ctx, modelName, rows)
	}
	var out struct {
		Model       string       `json:"model"`
		Epoch       int          `json:"epoch"`
		Assignments []Assignment `json:"assignments"`
	}
	in := map[string]any{"model": modelName, "rows": rows}
	if err := c.postJSON(ctx, http.MethodPost, "/v1/assign/batch", in, &out); err != nil {
		return nil, err
	}
	return out.Assignments, nil
}

func (c *Client) assignBatchWire(ctx context.Context, modelName string, rows [][]int) ([]Assignment, error) {
	// The body is regenerated per attempt via an io.Pipe so a shed-and-retry
	// still streams instead of buffering the whole batch.
	build := func() (*http.Request, error) {
		pr, pw := io.Pipe()
		go func() {
			var buf []byte
			bw := bufio.NewWriter(pw)
			_ = model.WriteWireHeader(bw)
			_ = model.WriteFrame(bw, model.FrameBatchStart, model.AppendBatchStart(nil, modelName))
			for off := 0; off < len(rows); off += batchChunk {
				end := off + batchChunk
				if end > len(rows) {
					end = len(rows)
				}
				buf = model.AppendRows(buf[:0], rows[off:end])
				if err := model.WriteFrame(bw, model.FrameRows, buf); err != nil {
					pw.CloseWithError(err)
					return
				}
			}
			_ = model.WriteFrame(bw, model.FrameEnd, nil)
			pw.CloseWithError(bw.Flush())
		}()
		req, err := http.NewRequest(http.MethodPost, c.base+"/v1/assign/batch", pr)
		if err != nil {
			pr.Close()
			return nil, err
		}
		req.Header.Set("Content-Type", wireContentType)
		return req, nil
	}
	resp, err := c.doRetry(ctx, build)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= http.StatusBadRequest {
		return nil, decodeAPIError(resp)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	if err := model.ReadWireHeader(br); err != nil {
		return nil, err
	}
	epoch := 0
	var results []model.Assignment
	sawEnd := false
	for !sawEnd {
		kind, payload, err := model.ReadFrame(br)
		if err != nil {
			return nil, fmt.Errorf("client: batch stream: %w", err)
		}
		switch kind {
		case model.FrameBatchInfo:
			if _, epoch, err = model.DecodeBatchInfo(payload); err != nil {
				return nil, err
			}
		case model.FrameResults:
			if results, err = model.DecodeResults(payload, results); err != nil {
				return nil, err
			}
		case model.FrameEnd:
			sawEnd = true
		case model.FrameError:
			code, msg, derr := model.DecodeError(payload)
			if derr != nil {
				return nil, derr
			}
			return nil, &APIError{Status: http.StatusOK, Code: code, Message: msg}
		default:
			return nil, fmt.Errorf("client: unexpected frame kind %q in batch stream", kind)
		}
	}
	out := make([]Assignment, len(results))
	for i, a := range results {
		out[i] = Assignment{Cluster: a.Cluster, Similarity: a.Similarity, Epoch: epoch, Encoding: a.Encoding}
	}
	return out, nil
}

// ---- sessions, models, operations ----

// CreateSession creates a streaming session whose schema comes from a
// served model.
func (c *Client) CreateSession(ctx context.Context, id, modelName string, cfg SessionConfig) error {
	in := map[string]any{"session": id, "model": modelName}
	if cfg.Window > 0 {
		in["window"] = cfg.Window
	}
	if cfg.Seed != 0 {
		in["seed"] = cfg.Seed
	}
	return c.postJSON(ctx, http.MethodPost, "/v1/sessions", in, nil)
}

// DeleteSession removes a streaming session.
func (c *Client) DeleteSession(ctx context.Context, id string) error {
	return c.postJSON(ctx, http.MethodDelete, "/v1/sessions/"+id, nil, nil)
}

// LoadModel loads (or hot-swaps) a snapshot file server-side under name.
func (c *Client) LoadModel(ctx context.Context, name, path string) (ModelInfo, error) {
	var out ModelInfo
	err := c.postJSON(ctx, http.MethodPost, "/v1/models", map[string]string{"name": name, "path": path}, &out)
	return out, err
}

// DeleteModel unloads a served model.
func (c *Client) DeleteModel(ctx context.Context, name string) error {
	return c.postJSON(ctx, http.MethodDelete, "/v1/models/"+name, nil, nil)
}

// Models lists the served models.
func (c *Client) Models(ctx context.Context) ([]ModelInfo, error) {
	var out struct {
		Models []ModelInfo `json:"models"`
	}
	err := c.postJSON(ctx, http.MethodGet, "/v1/models", nil, &out)
	return out.Models, err
}

// Checkpoint flushes every session checkpoint on demand and reports how
// many were written.
func (c *Client) Checkpoint(ctx context.Context) (int, error) {
	var out map[string]int
	if err := c.postJSON(ctx, http.MethodPost, "/v1/checkpoint", nil, &out); err != nil {
		return 0, err
	}
	return out["checkpointed"], nil
}

// Health probes /v1/healthz; a degraded gateway (503) reports as *APIError.
func (c *Client) Health(ctx context.Context) error {
	return c.postJSON(ctx, http.MethodGet, "/v1/healthz", nil, nil)
}

// IsCode reports whether err is an *APIError carrying the given stable code.
func IsCode(err error, code string) bool {
	var e *APIError
	return errors.As(err, &e) && e.Code == code
}
