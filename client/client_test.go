package client_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"mcdc"
	"mcdc/client"
	"mcdc/internal/server"
)

// serveModel trains a small model, loads it into a fresh daemon core, and
// returns its address plus the training rows.
func serveModel(t *testing.T) (addr string, rows [][]int) {
	t.Helper()
	ds := mcdc.SyntheticDataset("nodes", 400, 6, 3, 1)
	res, err := mcdc.Cluster(ds, 3, mcdc.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	m, err := res.Model()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "nodes.bin")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Seed: 1, StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.LoadModelFile("nodes", path); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return ts.URL, ds.Rows
}

// TestClientProtocols drives the same queries over JSON and binary and pins
// their parity; the typed surface must not leak which wire format ran.
func TestClientProtocols(t *testing.T) {
	addr, rows := serveModel(t)
	ctx := context.Background()
	cj := client.New(addr)
	cb := client.New(addr, client.WithBinary())

	if err := cj.Health(ctx); err != nil {
		t.Fatal(err)
	}
	models, err := cj.Models(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 1 || models[0].Name != "nodes" || models[0].K != 3 || len(models[0].Cardinalities) != 6 {
		t.Fatalf("models = %+v", models)
	}

	aj, err := cj.Assign(ctx, "nodes", rows[0])
	if err != nil {
		t.Fatal(err)
	}
	ab, err := cb.Assign(ctx, "nodes", rows[0])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(aj, ab) {
		t.Fatalf("JSON assign %+v != binary assign %+v", aj, ab)
	}
	if aj.Cluster < 0 || aj.Cluster >= 3 || aj.Epoch != models[0].Epoch {
		t.Fatalf("implausible assignment %+v", aj)
	}

	batch, err := cj.AssignBatch(ctx, "nodes", rows[:25])
	if err != nil {
		t.Fatal(err)
	}
	batchB, err := cb.AssignBatch(ctx, "nodes", rows[:25])
	if err != nil {
		t.Fatal(err)
	}
	many, err := cb.AssignMany(ctx, "nodes", rows[:25])
	if err != nil {
		t.Fatal(err)
	}
	manyJ, err := cj.AssignMany(ctx, "nodes", rows[:25])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batch, batchB) || !reflect.DeepEqual(batch, many) || !reflect.DeepEqual(batch, manyJ) {
		t.Fatal("batch/pipelined answers diverge across protocols")
	}
	if !reflect.DeepEqual(batch[0], aj) {
		t.Fatalf("batch row 0 %+v != single assign %+v", batch[0], aj)
	}
}

// TestClientSessions exercises the session lifecycle and the stable error
// codes around it, over both protocols.
func TestClientSessions(t *testing.T) {
	addr, rows := serveModel(t)
	ctx := context.Background()
	for _, proto := range []struct {
		name string
		c    *client.Client
	}{
		{"json", client.New(addr)},
		{"binary", client.New(addr, client.WithBinary())},
	} {
		t.Run(proto.name, func(t *testing.T) {
			c := proto.c
			id := "sess-" + proto.name
			if err := c.CreateSession(ctx, id, "nodes", client.SessionConfig{}); err != nil {
				t.Fatal(err)
			}
			if err := c.CreateSession(ctx, id, "nodes", client.SessionConfig{}); !client.IsCode(err, "conflict") {
				t.Fatalf("duplicate create: %v, want conflict", err)
			}
			for _, row := range rows[:10] {
				if _, err := c.AssignSession(ctx, id, row); err != nil {
					t.Fatal(err)
				}
			}
			if err := c.DeleteSession(ctx, id); err != nil {
				t.Fatal(err)
			}
			if err := c.DeleteSession(ctx, id); !client.IsCode(err, "unknown_session") {
				t.Fatalf("double delete: %v, want unknown_session", err)
			}
			if _, err := c.AssignSession(ctx, id, rows[0]); !client.IsCode(err, "unknown_session") {
				t.Fatalf("assign to deleted session: %v, want unknown_session", err)
			}
		})
	}
}

// TestClientErrors pins the typed error surface: *APIError with status,
// code, and message, recognized by errors.As and IsCode.
func TestClientErrors(t *testing.T) {
	addr, rows := serveModel(t)
	ctx := context.Background()
	c := client.New(addr)

	_, err := c.Assign(ctx, "ghost", rows[0])
	var ae *client.APIError
	if !errors.As(err, &ae) {
		t.Fatalf("want *APIError, got %T: %v", err, err)
	}
	if ae.Status != http.StatusNotFound || ae.Code != "unknown_model" || ae.Message == "" {
		t.Fatalf("APIError = %+v", ae)
	}
	if !client.IsCode(err, "unknown_model") || client.IsCode(err, "overloaded") || client.IsCode(nil, "x") {
		t.Fatal("IsCode misclassifies")
	}

	// Binary in-band errors surface through the same type.
	cb := client.New(addr, client.WithBinary())
	if _, err := cb.Assign(ctx, "ghost", rows[0]); !client.IsCode(err, "unknown_model") {
		t.Fatalf("binary in-band error: %v, want unknown_model", err)
	}

	if _, err := c.LoadModel(ctx, "x", filepath.Join(t.TempDir(), "missing.bin")); !client.IsCode(err, "bad_request") {
		t.Fatalf("load missing snapshot: %v, want bad_request", err)
	}
}

// TestClientRetriesOverload pins the backpressure contract on the client
// side: a 429 with Retry-After is retried transparently after the indicated
// delay, and gives up with the overloaded error once retries are spent.
func TestClientRetriesOverload(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprintln(w, `{"error":"server at capacity","code":"overloaded"}`)
			return
		}
		fmt.Fprintln(w, `{"cluster":1,"similarity":0.5,"epoch":1}`)
	}))
	defer ts.Close()

	c := client.New(ts.URL)
	t0 := time.Now()
	a, err := c.Assign(context.Background(), "m", []int{1})
	if err != nil {
		t.Fatalf("assign should survive two sheds: %v", err)
	}
	if a.Cluster != 1 || hits.Load() != 3 {
		t.Fatalf("assignment %+v after %d hits", a, hits.Load())
	}
	if waited := time.Since(t0); waited < 2*time.Second {
		t.Fatalf("client ignored Retry-After: waited only %v", waited)
	}

	// With retries exhausted the overload surfaces as a typed error.
	hits.Store(0)
	c0 := client.New(ts.URL, client.WithMaxRetries(1))
	if _, err := c0.Assign(context.Background(), "m", []int{1}); !client.IsCode(err, "overloaded") {
		t.Fatalf("exhausted retries: %v, want overloaded", err)
	}

	// A canceled context cuts the retry wait short.
	hits.Store(0)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	t0 = time.Now()
	if _, err := c.Assign(ctx, "m", []int{1}); err == nil {
		t.Fatal("assign should fail when the context dies mid-retry")
	}
	if time.Since(t0) > time.Second {
		t.Fatal("retry wait ignored context cancellation")
	}
}

// TestClientModelManagement loads, lists, checkpoints, and deletes through
// the typed surface.
func TestClientModelManagement(t *testing.T) {
	addr, _ := serveModel(t)
	ctx := context.Background()
	c := client.New(addr)

	ds := mcdc.SyntheticDataset("extra", 200, 5, 2, 9)
	res, err := mcdc.Cluster(ds, 2, mcdc.WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	m, err := res.Model()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "extra.bin")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	info, err := c.LoadModel(ctx, "extra", path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "extra" || info.K != 2 || info.Features != 5 {
		t.Fatalf("loaded info %+v", info)
	}
	models, err := c.Models(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 2 {
		t.Fatalf("serving %d models, want 2", len(models))
	}
	if _, err := c.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteModel(ctx, "extra"); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteModel(ctx, "extra"); !client.IsCode(err, "unknown_model") {
		t.Fatalf("double delete: %v, want unknown_model", err)
	}
}
