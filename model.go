package mcdc

import (
	"errors"
	"fmt"
	"io"

	"mcdc/internal/model"
)

// Model is a frozen, persistable MCDC model: everything needed to assign
// fresh objects to the learned clusters without re-running the pipeline. A
// Model is produced by Result.Model after training, survives its process via
// Save/LoadModel (a versioned snapshot file), and is what the mcdcd serving
// daemon hosts. It is immutable and safe for concurrent use.
type Model struct {
	snap *model.Snapshot
}

// ModelAssignment reports where a row lands under a frozen model: the final
// cluster (comparable to Result.Labels), a [0,1] similarity of the match,
// and the row's reconstructed multi-granular encoding.
type ModelAssignment = model.Assignment

// Model freezes the trained state of this result into a persistable Model.
// On the standard CAME pipeline the model replays the learned two-stage
// assignment (per-granularity frequency tables, then θ-weighted nearest
// mode); with a custom final clusterer it freezes the flat partition and
// assigns by frequency similarity against the final clusters.
func (r *Result) Model() (*Model, error) {
	if r.modelSrc == nil {
		return nil, errors.New("mcdc: result carries no model state")
	}
	src := r.modelSrc
	var (
		snap *model.Snapshot
		err  error
	)
	if src.flat {
		snap, err = model.FromLabels(src.rows, src.card, src.labels, src.k, src.kappa)
	} else {
		snap, err = model.Build(src.rows, src.card, src.encoding, src.modes, src.theta, src.kappa, src.k)
	}
	if err != nil {
		return nil, err
	}
	snap.Name = src.name
	snap.Values = src.values
	return &Model{snap: snap}, nil
}

// LoadModel reads a model snapshot file written by Model.Save. Snapshots are
// format-versioned: a file written by an incompatible build is rejected with
// a clear version error instead of being mis-decoded.
func LoadModel(path string) (*Model, error) {
	snap, err := model.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return &Model{snap: snap}, nil
}

// ReadModel reads a model snapshot from a stream (see LoadModel).
func ReadModel(r io.Reader) (*Model, error) {
	snap, err := model.Load(r)
	if err != nil {
		return nil, err
	}
	return &Model{snap: snap}, nil
}

// Save writes the model to path as an atomic, versioned snapshot file.
func (m *Model) Save(path string) error { return m.snap.SaveFile(path) }

// Write writes the model snapshot to w.
func (m *Model) Write(w io.Writer) error { return m.snap.Save(w) }

// Assign places one integer-coded row under the model. Safe for concurrent
// use. Each call allocates the assignment's Encoding; a serving hot path
// should prefer NewAssigner, whose scratch-reusing Assign is allocation-free.
func (m *Model) Assign(row []int) (ModelAssignment, error) { return m.snap.Assign(row) }

// ModelAssigner is a reusable assignment scratch for one model: same answers
// as Model.Assign with zero allocations per call at steady state. The
// returned assignment's Encoding aliases the scratch (valid until the next
// Assign), and a ModelAssigner must not be shared across goroutines — pool
// one per worker, as the mcdcd daemon does.
type ModelAssigner = model.Assigner

// NewAssigner returns an assignment scratch bound to this model.
func (m *Model) NewAssigner() *ModelAssigner { return m.snap.NewAssigner() }

// AssignBatch assigns every row, fanning out over at most `workers`
// goroutines (≤ 0 → GOMAXPROCS) with the repository's bit-for-bit
// parallelism contract: results are identical at any worker count.
//
// Rows must already be coded on the model's training dictionary; when
// scoring a Dataset loaded from a different file, use AssignDataset, which
// re-codes by value label first.
func (m *Model) AssignBatch(rows [][]int, workers int) ([]ModelAssignment, error) {
	return m.snap.AssignBatch(rows, workers)
}

// AssignDataset assigns every row of ds, first re-coding its values onto the
// model's training dictionary. Integer codes are a per-file artifact of CSV
// loading (first-appearance order), so the same value label can carry a
// different code in a different file; AssignDataset matches features by
// position and values by label, mapping labels the model never saw to
// Missing (they contribute zero similarity). Models frozen without a
// dictionary assume the codes already align.
func (m *Model) AssignDataset(ds *Dataset, workers int) ([]ModelAssignment, error) {
	if ds == nil || ds.N() == 0 {
		return nil, errors.New("mcdc: empty dataset")
	}
	if got, want := ds.D(), m.snap.D(); got != want {
		return nil, fmt.Errorf("mcdc: dataset has %d features, model has %d", got, want)
	}
	rows := ds.Rows
	if remap, needed := m.valueRemap(ds); needed {
		rows = make([][]int, ds.N())
		for i, row := range ds.Rows {
			rows[i] = make([]int, len(row))
			for r, v := range row {
				if v == Missing {
					rows[i][r] = Missing
					continue
				}
				rows[i][r] = remap[r][v]
			}
		}
	}
	return m.snap.AssignBatch(rows, workers)
}

// valueRemap builds the per-feature code translation from ds's dictionary
// to the model's, and reports whether any code actually changes.
func (m *Model) valueRemap(ds *Dataset) ([][]int, bool) {
	vals := m.snap.Values
	if vals == nil {
		return nil, false
	}
	needed := false
	remap := make([][]int, len(ds.Features))
	for r, f := range ds.Features {
		dict := make(map[string]int, len(vals[r]))
		for code, label := range vals[r] {
			dict[label] = code
		}
		remap[r] = make([]int, len(f.Values))
		for v, label := range f.Values {
			code, ok := dict[label]
			if !ok {
				code = Missing
			}
			remap[r][v] = code
			if code != v {
				needed = true
			}
		}
	}
	return remap, needed
}

// Name returns the model's label (the training data set's name by default).
func (m *Model) Name() string { return m.snap.Name }

// K returns the number of final clusters.
func (m *Model) K() int { return m.snap.K }

// Kappa returns the κ granularity series of the underlying analysis.
func (m *Model) Kappa() []int { return append([]int(nil), m.snap.Kappa...) }

// Epoch returns the model's re-learning epoch (0 for a fresh training).
func (m *Model) Epoch() int { return m.snap.Epoch }

// Features returns the number of raw features rows must have.
func (m *Model) Features() int { return m.snap.D() }
