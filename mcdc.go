// Package mcdc is a pure-Go implementation of MCDC — Multi-Granular
// Competitive-learning-guided Categorical Data Clustering (Cai et al.,
// ICDCS 2024). It clusters data sets whose features are qualitative
// (categorical), with two cooperating components:
//
//   - MGCPL (Multi-Granular Competitive Penalization Learning) explores the
//     nested cluster structure of the data, converging in stages at a
//     decreasing series of naturally compact cluster counts κ = {k₁…k_σ}
//     without knowing the true number of clusters.
//   - CAME (Cluster Aggregation based on MGCPL Encoding) turns the
//     multi-granular partitions into an embedding Γ and produces a final
//     partition into a sought number of clusters k by feature-weighted
//     k-modes on Γ.
//
// Quick start:
//
//	ds, _ := mcdc.ReadCSVFile("nodes.csv", true, -1)
//	res, err := mcdc.Cluster(ds, 3, mcdc.WithSeed(1))
//	// res.Labels holds the partition; res.Kappa the discovered granularities.
//
// The multi-granular analysis alone (no sought k needed):
//
//	mg, err := mcdc.Explore(ds, mcdc.WithSeed(1))
//	fmt.Println(mg.Kappa) // e.g. [41 17 6 3]
//
// Both entry points run in O(d·n·k₀) time and are deterministic for a fixed
// seed.
package mcdc

import (
	"errors"
	"fmt"
	"math/rand"
	"os"

	"mcdc/internal/categorical"
	"mcdc/internal/core"
)

// Dataset is the categorical data container consumed by the library: objects
// over integer-coded qualitative features. Build one with ReadCSV/
// ReadCSVFile, FromStrings, NewDataset, or a generator from the builtin
// corpus (Builtin).
type Dataset = categorical.Dataset

// Feature describes one categorical feature (name + value labels).
type Feature = categorical.Feature

// Missing is the sentinel value code for a missing (NULL) entry.
const Missing = categorical.Missing

// MultiGranular is the result of the MGCPL analysis: partitions of the data
// at each discovered granularity, coarsest last.
type MultiGranular struct {
	// Kappa is κ: the number of clusters at each granularity level,
	// strictly decreasing; Kappa[len(Kappa)-1] is MGCPL's estimate of the
	// natural number of clusters.
	Kappa []int
	// Levels[j] is the label vector Y_j (length n) of granularity level j.
	Levels [][]int

	inner *core.MGCPLResult
}

// Encoding returns Γ, the n×σ multi-granular embedding: row i concatenates
// object i's cluster label at every granularity. Any categorical clustering
// algorithm can run on it (see Result for the built-in aggregation).
func (m *MultiGranular) Encoding() [][]int { return m.inner.Encoding() }

// EstimatedK returns MGCPL's estimate of the natural number of clusters
// (the final, coarsest k_σ).
func (m *MultiGranular) EstimatedK() int { return m.Kappa[len(m.Kappa)-1] }

// Result is the output of the full MCDC pipeline.
type Result struct {
	// Labels is the final partition into the sought number of clusters.
	Labels []int
	// MultiGranular is the underlying MGCPL analysis.
	MultiGranular *MultiGranular
	// Theta holds CAME's learned importance of each granularity level
	// (summing to 1); nil when a custom final clusterer was used.
	Theta []float64

	// modelSrc carries the learned state Model() freezes into a snapshot.
	modelSrc *modelSource
}

// modelSource is everything needed to persist the trained model: the
// training rows and schema, the pooled Γ encoding, and CAME's converged
// modes/θ — or, on the custom-final-clusterer path, just the flat labels.
type modelSource struct {
	name     string
	rows     [][]int
	card     []int
	values   [][]string // per-feature value labels (the code dictionary)
	encoding [][]int
	modes    [][]int
	theta    []float64
	kappa    []int
	k        int
	flat     bool // custom final clusterer: freeze the flat partition only
	labels   []int
}

// featureValues extracts the per-feature value-label dictionary of a data
// set, so a frozen model can re-code differently-loaded inputs later.
func featureValues(d *Dataset) [][]string {
	vals := make([][]string, len(d.Features))
	for r, f := range d.Features {
		vals[r] = append([]string(nil), f.Values...)
	}
	return vals
}

// Explore runs MGCPL on the data set and returns the multi-granular cluster
// analysis. It requires no sought number of clusters.
func Explore(d *Dataset, opts ...Option) (*MultiGranular, error) {
	rows, card, err := prepare(d)
	if err != nil {
		return nil, err
	}
	o := buildOptions(opts)
	res, err := core.RunMGCPL(rows, card, core.MGCPLConfig{
		LearningRate: o.learningRate,
		InitialK:     o.initialK,
		Workers:      o.workers,
		Rand:         rand.New(rand.NewSource(o.seed)),
	})
	if err != nil {
		return nil, err
	}
	return wrapMG(res), nil
}

// Cluster runs the full MCDC pipeline: MGCPL exploration followed by CAME
// aggregation into k clusters. Use WithFinalClusterer to substitute another
// algorithm (e.g. the GUDMM or FKMAWCW enhancers) for CAME on the Γ
// embedding.
func Cluster(d *Dataset, k int, opts ...Option) (*Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("mcdc: sought number of clusters must be positive, got %d", k)
	}
	rows, card, err := prepare(d)
	if err != nil {
		return nil, err
	}
	o := buildOptions(opts)
	rng := rand.New(rand.NewSource(o.seed))
	mgCfg := core.MGCPLConfig{
		LearningRate: o.learningRate,
		InitialK:     o.initialK,
		Workers:      o.workers,
		Rand:         rng,
	}
	if o.finalClusterer != nil {
		repeats := o.ensemble
		if repeats == 0 {
			// Enhancers default to the single-run encoding of Algorithm 1;
			// set WithEnsemble explicitly to pool several analyses.
			repeats = 1
		}
		enc, first, err := core.PooledEncoding(rows, card, mgCfg, repeats)
		if err != nil {
			return nil, err
		}
		labels, err := o.finalClusterer(enc, encodingCardinalities(enc), k, rng)
		if err != nil {
			return nil, fmt.Errorf("mcdc: final clusterer: %w", err)
		}
		return &Result{Labels: labels, MultiGranular: wrapMG(first), modelSrc: &modelSource{
			name:   d.Name,
			rows:   rows,
			card:   card,
			values: featureValues(d),
			kappa:  first.Kappa(),
			k:      k,
			flat:   true,
			labels: labels,
		}}, nil
	}
	res, err := core.RunMCDC(rows, card, core.MCDCConfig{
		MGCPL:   mgCfg,
		CAME:    core.CAMEConfig{K: k, Workers: o.workers},
		Repeats: o.ensemble,
	})
	if err != nil {
		return nil, err
	}
	return &Result{Labels: res.Labels, MultiGranular: wrapMG(res.MGCPL), Theta: res.CAME.Theta, modelSrc: &modelSource{
		name:     d.Name,
		rows:     rows,
		card:     card,
		values:   featureValues(d),
		encoding: res.Encoding,
		modes:    res.CAME.Modes,
		theta:    res.CAME.Theta,
		kappa:    res.MGCPL.Kappa(),
		k:        len(res.CAME.Modes),
	}}, nil
}

// NewDataset builds a data set directly from integer-coded rows. Feature
// cardinalities are inferred from the maximum code per column.
func NewDataset(name string, rows [][]int) (*Dataset, error) {
	if len(rows) == 0 {
		return nil, categorical.ErrEmptyDataset
	}
	d := len(rows[0])
	card := make([]int, d)
	for _, row := range rows {
		if len(row) != d {
			return nil, errors.New("mcdc: ragged rows")
		}
		for r, v := range row {
			if v+1 > card[r] {
				card[r] = v + 1
			}
		}
	}
	ds := &Dataset{Name: name}
	for r := 0; r < d; r++ {
		f := Feature{Name: fmt.Sprintf("f%d", r)}
		for v := 0; v < card[r]; v++ {
			f.Values = append(f.Values, fmt.Sprintf("v%d", v))
		}
		ds.Features = append(ds.Features, f)
	}
	ds.Rows = make([][]int, len(rows))
	for i, row := range rows {
		ds.Rows[i] = append([]int(nil), row...)
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// ReadCSVFile loads a categorical data set from a CSV file. classCol is the
// ground-truth column index (-1 for none); "?" cells are treated as missing.
func ReadCSVFile(path string, hasHeader bool, classCol int) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("mcdc: %w", err)
	}
	defer f.Close()
	return categorical.ReadCSV(f, path, hasHeader, classCol, "?")
}

func prepare(d *Dataset) ([][]int, []int, error) {
	if d == nil || d.N() == 0 {
		return nil, nil, categorical.ErrEmptyDataset
	}
	if err := d.Validate(); err != nil {
		return nil, nil, fmt.Errorf("mcdc: %w", err)
	}
	return d.Rows, d.Cardinalities(), nil
}

func wrapMG(res *core.MGCPLResult) *MultiGranular {
	mg := &MultiGranular{Kappa: res.Kappa(), inner: res}
	for _, lv := range res.Levels {
		mg.Levels = append(mg.Levels, lv.Labels)
	}
	return mg
}

func encodingCardinalities(enc [][]int) []int {
	if len(enc) == 0 {
		return nil
	}
	card := make([]int, len(enc[0]))
	for _, row := range enc {
		for r, v := range row {
			if v+1 > card[r] {
				card[r] = v + 1
			}
		}
	}
	return card
}

// Hierarchy returns the nested-cluster tree implied by the multi-granular
// analysis: each fine cluster hangs under the coarse cluster absorbing the
// majority of its objects. Render() draws it as indented text — the
// multi-granular counterpart of a dendrogram.
func (m *MultiGranular) Hierarchy() *core.Hierarchy { return m.inner.BuildHierarchy() }
