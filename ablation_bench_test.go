package mcdc_test

// Design-choice ablation benchmarks for the mechanisms DESIGN.md §2 calls
// out. These are not paper figures; they quantify the cost of the specific
// engineering decisions of this implementation so that future changes can be
// evaluated against a baseline:
//
//   - BenchmarkAblation_RivalThreshold — the redundancy gate of the rival
//     penalty (lower = more aggressive elimination = fewer, coarser levels).
//   - BenchmarkAblation_Ensemble — the pooled-encoding ensemble that gives
//     MCDC its run-to-run stability, at proportional cost.
//   - BenchmarkAblation_InitialK — the k₀ = √n default versus smaller and
//     larger launches.

import (
	"fmt"
	"math/rand"
	"testing"

	"mcdc/internal/core"
	"mcdc/internal/datasets"
)

func ablationData(b *testing.B) ([][]int, []int) {
	b.Helper()
	ds := datasets.Synthetic("bench", 1500, 10, 4, 0.85, rand.New(rand.NewSource(1)))
	return ds.Rows, ds.Cardinalities()
}

func BenchmarkAblation_RivalThreshold(b *testing.B) {
	rows, card := ablationData(b)
	for _, tau := range []float64{0.75, 0.85, 0.95} {
		b.Run(fmt.Sprintf("tau=%.2f", tau), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := core.RunMGCPL(rows, card, core.MGCPLConfig{
					RivalThreshold: tau,
					Rand:           rand.New(rand.NewSource(int64(i))),
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblation_Ensemble(b *testing.B) {
	rows, card := ablationData(b)
	for _, repeats := range []int{1, 3, 5} {
		b.Run(fmt.Sprintf("repeats=%d", repeats), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := core.RunMCDC(rows, card, core.MCDCConfig{
					MGCPL:   core.MGCPLConfig{Rand: rand.New(rand.NewSource(int64(i)))},
					CAME:    core.CAMEConfig{K: 4},
					Repeats: repeats,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblation_InitialK(b *testing.B) {
	rows, card := ablationData(b)
	for _, k0 := range []int{10, 39 /* ≈√1500 */, 120} {
		b.Run(fmt.Sprintf("k0=%d", k0), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := core.RunMGCPL(rows, card, core.MGCPLConfig{
					InitialK: k0,
					Rand:     rand.New(rand.NewSource(int64(i))),
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
