package mcdc_test

import (
	"os"
	"path/filepath"
	"testing"

	"mcdc"
)

func TestNewDataset(t *testing.T) {
	ds, err := mcdc.NewDataset("x", [][]int{{0, 1}, {1, 0}, {2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 3 || ds.D() != 2 || ds.Features[0].Cardinality() != 3 {
		t.Fatalf("shape wrong: %s", ds)
	}
	if _, err := mcdc.NewDataset("x", nil); err == nil {
		t.Error("empty rows: want error")
	}
	if _, err := mcdc.NewDataset("x", [][]int{{0}, {0, 1}}); err == nil {
		t.Error("ragged rows: want error")
	}
}

func TestClusterInputValidation(t *testing.T) {
	ds := mcdc.SyntheticDataset("t", 50, 4, 2, 1)
	if _, err := mcdc.Cluster(ds, 0); err == nil {
		t.Error("k=0: want error")
	}
	if _, err := mcdc.Cluster(nil, 2); err == nil {
		t.Error("nil dataset: want error")
	}
	if _, err := mcdc.Explore(nil); err == nil {
		t.Error("nil dataset: want error")
	}
}

func TestBuiltinRegistry(t *testing.T) {
	names := mcdc.BuiltinNames()
	if len(names) != 8 {
		t.Fatalf("want 8 builtin data sets, got %v", names)
	}
	ds, err := mcdc.Builtin("Bal.", 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 625 {
		t.Errorf("Bal. n = %d, want 625", ds.N())
	}
	if _, err := mcdc.Builtin("nope", 1); err == nil {
		t.Error("unknown builtin: want error")
	}
}

func TestEnhancerVariants(t *testing.T) {
	ds := mcdc.SyntheticDataset("t", 300, 8, 3, 2)
	for name, fc := range map[string]mcdc.FinalClusterer{
		"GUDMM":   mcdc.EnhanceGUDMM,
		"FKMAWCW": mcdc.EnhanceFKMAWCW,
	} {
		// GUDMM's own initialization is run-to-run unstable (the instability
		// MCDC's ensemble is designed to paper over), so instead of pinning
		// one lucky seed this asserts robustness: most of several seeds must
		// recover the separated structure.
		good := 0
		for seed := int64(1); seed <= 5; seed++ {
			res, err := mcdc.Cluster(ds, 3, mcdc.WithSeed(seed), mcdc.WithFinalClusterer(fc))
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(res.Labels) != ds.N() {
				t.Fatalf("%s: %d labels", name, len(res.Labels))
			}
			if res.Theta != nil {
				t.Errorf("%s: Theta must be nil for custom final clusterers", name)
			}
			acc, err := mcdc.Accuracy(ds.Labels, res.Labels)
			if err != nil {
				t.Fatal(err)
			}
			if acc >= 0.8 {
				good++
			}
		}
		// 4/5 is the tightest floor the current pipeline meets: GUDMM's own
		// initialization loses the structure on roughly one seed in ten
		// regardless of the encoding fed to it.
		if good < 4 {
			t.Errorf("%s: only %d/5 seeds reached ACC ≥ 0.8 on separated data", name, good)
		}
	}
}

func TestReadCSVFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "d.csv")
	content := "a,b,class\nx,1,p\ny,2,q\nx,2,p\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	ds, err := mcdc.ReadCSVFile(path, true, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 3 || ds.D() != 2 || ds.NumClasses() != 2 {
		t.Fatalf("shape: %s", ds)
	}
	if _, err := mcdc.ReadCSVFile(filepath.Join(dir, "missing.csv"), true, -1); err == nil {
		t.Error("missing file: want error")
	}
}

func TestPublicStreamWrapper(t *testing.T) {
	ds := mcdc.SyntheticDataset("t", 400, 6, 2, 4)
	sc, err := mcdc.NewStreamClusterer(mcdc.StreamConfig{
		Cardinalities: ds.Cardinalities(),
		WindowSize:    150,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range ds.Rows {
		if _, err := sc.Add(row); err != nil {
			t.Fatal(err)
		}
	}
	if sc.ModelEpoch() == 0 {
		t.Error("stream never learned a model")
	}
	if sc.K() < 1 {
		t.Error("no clusters in the model")
	}
	if len(sc.Kappa()) == 0 {
		t.Error("no granularity series")
	}
}

func TestPublicActiveWrappers(t *testing.T) {
	ds := mcdc.SyntheticDataset("t", 500, 8, 3, 6)
	mg, err := mcdc.Explore(ds, mcdc.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	queries, err := mcdc.SelectQueries(ds, mg, mg.EstimatedK()+2)
	if err != nil {
		t.Fatal(err)
	}
	if len(queries) == 0 {
		t.Fatal("no queries")
	}
	answers := map[int]int{}
	for _, q := range queries {
		answers[q.Index] = ds.Labels[q.Index]
	}
	pred, err := mcdc.PropagateLabels(ds, mg, answers)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := mcdc.Accuracy(ds.Labels, pred)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.7 {
		t.Errorf("active-learning accuracy = %v with %d labels, want ≥ 0.7", acc, len(answers))
	}
}

func TestEnsembleOption(t *testing.T) {
	ds := mcdc.SyntheticDataset("t", 200, 6, 2, 8)
	// Ensemble of 1 must still work (bare Algorithm 1 + 2).
	res, err := mcdc.Cluster(ds, 2, mcdc.WithSeed(1), mcdc.WithEnsemble(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) != ds.N() {
		t.Fatalf("labels = %d", len(res.Labels))
	}
}
