package mcdc

import "mcdc/internal/active"

// LabelQuery is one active-learning request: show object Index to a human
// expert. FineCluster identifies the micro-cluster the object represents and
// Weight is that cluster's size.
type LabelQuery = active.Query

// SelectQueries picks at most budget objects whose labels, once provided,
// cover the data set's multi-granular structure: the coarsest granularity
// splits the budget, and queries land on the medoids of the largest
// fine-grained clusters. This is the paper's third future-work direction —
// using MGCPL to cut expert labeling effort.
func SelectQueries(d *Dataset, mg *MultiGranular, budget int) ([]LabelQuery, error) {
	rows, _, err := prepare(d)
	if err != nil {
		return nil, err
	}
	return active.SelectQueries(rows, mg.inner, budget)
}

// PropagateLabels spreads expert answers (answers[objectIndex] = class) over
// the whole data set along the granularity hierarchy: fine clusters adopt
// their queried object's label, unlabeled fine clusters adopt their coarse
// parent's weighted majority. Returns a complete per-object labeling.
func PropagateLabels(d *Dataset, mg *MultiGranular, answers map[int]int) ([]int, error) {
	rows, _, err := prepare(d)
	if err != nil {
		return nil, err
	}
	return active.Propagate(rows, mg.inner, answers)
}
