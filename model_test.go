package mcdc_test

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"mcdc"
	"mcdc/internal/categorical"
	"mcdc/internal/datasets"
)

// TestModelRoundTripMatchesCluster pins the serving acceptance contract: a
// model frozen from Cluster(), saved to disk, and loaded back assigns the
// training rows to exactly the labels Cluster() produced. (Exactness holds
// on well-separated data; rows sitting on a cluster boundary may flip — the
// frozen probe replays the learned assignment rule, not the training run's
// transient state.)
func TestModelRoundTripMatchesCluster(t *testing.T) {
	ds := datasets.Synthetic("serve", 400, 8, 3, 0.9, rand.New(rand.NewSource(42)))
	res, err := mcdc.Cluster(ds, 3, mcdc.WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	m, err := res.Model()
	if err != nil {
		t.Fatal(err)
	}
	if m.K() != 3 || m.Features() != 8 || m.Name() != "serve" || m.Epoch() != 0 {
		t.Fatalf("model metadata: k=%d d=%d name=%q epoch=%d", m.K(), m.Features(), m.Name(), m.Epoch())
	}

	path := filepath.Join(t.TempDir(), "serve.bin")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := mcdc.LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded.Kappa(), m.Kappa()) {
		t.Fatal("kappa changed across save/load")
	}
	for i, row := range ds.Rows {
		a, err := loaded.Assign(row)
		if err != nil {
			t.Fatal(err)
		}
		if a.Cluster != res.Labels[i] {
			t.Fatalf("row %d: loaded model assigned %d, Cluster labeled %d", i, a.Cluster, res.Labels[i])
		}
	}
	// Batch path agrees with the one-by-one path at any parallelism.
	batch, err := loaded.AssignBatch(ds.Rows, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		if batch[i].Cluster != res.Labels[i] {
			t.Fatalf("batch row %d: %d vs %d", i, batch[i].Cluster, res.Labels[i])
		}
	}
}

// TestModelFromEnhancerResult covers the custom-final-clusterer path: the
// frozen flat partition still serves assignments.
func TestModelFromEnhancerResult(t *testing.T) {
	ds := mcdc.SyntheticDataset("enh", 240, 6, 3, 7)
	res, err := mcdc.Cluster(ds, 3, mcdc.WithSeed(7), mcdc.WithFinalClusterer(mcdc.EnhanceFKMAWCW))
	if err != nil {
		t.Fatal(err)
	}
	m, err := res.Model()
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for i, row := range ds.Rows {
		a, err := m.Assign(row)
		if err != nil {
			t.Fatal(err)
		}
		if a.Cluster == res.Labels[i] {
			agree++
		}
	}
	if frac := float64(agree) / float64(ds.N()); frac < 0.9 {
		t.Fatalf("flat model agreement %v with enhancer labels, want ≥ 0.9", frac)
	}
}

// TestAssignDatasetRecodesValueLabels covers scoring a file whose values
// were loaded in a different first-appearance order than the training file:
// integer codes differ, but AssignDataset matches by value label and must
// return the same assignments as on the training encoding.
func TestAssignDatasetRecodesValueLabels(t *testing.T) {
	mk := func(name string, rows [][]string) *mcdc.Dataset {
		t.Helper()
		ds, err := categorical.FromStrings(name, []string{"color", "shape"}, rows, -1, "?")
		if err != nil {
			t.Fatal(err)
		}
		return ds
	}
	// Training file: "red" and "circle" appear first → codes 0.
	var trainRows [][]string
	for i := 0; i < 120; i++ {
		if i%2 == 0 {
			trainRows = append(trainRows, []string{"red", "circle"})
		} else {
			trainRows = append(trainRows, []string{"blue", "square"})
		}
	}
	train := mk("train", trainRows)
	res, err := mcdc.Cluster(train, 2, mcdc.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	m, err := res.Model()
	if err != nil {
		t.Fatal(err)
	}

	// Scoring file: same logical objects, but "blue"/"square" appear first,
	// so every code is flipped relative to the model's dictionary.
	score := mk("score", [][]string{
		{"blue", "square"},
		{"red", "circle"},
		{"green", "circle"}, // label the model never saw → Missing
	})
	got, err := m.AssignDataset(score, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantBlue, err := m.Assign(train.Rows[1]) // blue,square under training codes
	if err != nil {
		t.Fatal(err)
	}
	wantRed, err := m.Assign(train.Rows[0])
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Cluster != wantBlue.Cluster || got[1].Cluster != wantRed.Cluster {
		t.Fatalf("re-coded assignments %v/%v, want %v/%v",
			got[0].Cluster, got[1].Cluster, wantBlue.Cluster, wantRed.Cluster)
	}
	if wantBlue.Cluster == wantRed.Cluster {
		t.Fatal("test lost its teeth: both training rows in one cluster")
	}
	// The raw (un-re-coded) batch disagrees — the dictionary matters.
	raw, err := m.AssignBatch(score.Rows[:2], 0)
	if err != nil {
		t.Fatal(err)
	}
	if raw[0].Cluster == got[0].Cluster && raw[1].Cluster == got[1].Cluster {
		t.Fatal("raw codes coincidentally matched; pick a sharper fixture")
	}
	// The unseen-label row still assigns somewhere without error.
	if got[2].Cluster < 0 || got[2].Cluster >= m.K() {
		t.Fatalf("unseen-label row landed in cluster %d", got[2].Cluster)
	}
	// Width mismatch is rejected.
	bad, err := categorical.FromStrings("bad", []string{"color"}, [][]string{{"red"}}, -1, "?")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AssignDataset(bad, 0); err == nil {
		t.Fatal("feature-width mismatch accepted")
	}
}

// TestStreamClustererSaveResume exercises the public checkpoint wrappers:
// a resumed clusterer continues bit-for-bit with the saved one.
func TestStreamClustererSaveResume(t *testing.T) {
	ds := mcdc.SyntheticDataset("stream", 800, 8, 3, 5)
	sc, err := mcdc.NewStreamClusterer(mcdc.StreamConfig{
		Cardinalities: ds.Cardinalities(),
		WindowSize:    200,
		Seed:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range ds.Rows[:500] {
		if _, err := sc.Add(row); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := sc.Save(&buf); err != nil {
		t.Fatal(err)
	}
	resumed, err := mcdc.ResumeStreamClusterer(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range ds.Rows[500:] {
		ao, err := sc.Add(row)
		if err != nil {
			t.Fatal(err)
		}
		ar, err := resumed.Add(row)
		if err != nil {
			t.Fatal(err)
		}
		if ao != ar {
			t.Fatalf("row %d: original %+v, resumed %+v", i, ao, ar)
		}
	}
}
