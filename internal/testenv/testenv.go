// Package testenv centralizes environment switches for the test suite, so
// "is this the nightly deep run?" is one function instead of a per-package
// os.Getenv convention drifting apart.
package testenv

import "os"

// Nightly reports whether the deep nightly suite is requested (MCDC_NIGHTLY
// set to any non-empty value). PR-time CI leaves it unset and runs cut-down
// variants of the expensive tests; the scheduled nightly workflow—and anyone
// reproducing it locally with MCDC_NIGHTLY=1—gets the full versions.
func Nightly() bool { return os.Getenv("MCDC_NIGHTLY") != "" }
