package testenv

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Fault injection for chaos tests. FaultRoundTripper wraps an HTTP transport
// and applies per-host rules — kill (connection refused), hang (stall until
// the client times out), blackhole (accept, say nothing, sever) — so a test
// can make a specific backend misbehave mid-traffic without owning its
// process. It plugs into server.GatewayConfig.Transport; FlakyListener does
// the same on the accept side for tests that want the real listener to
// misbehave instead.

// FaultKind selects how a matched request fails.
type FaultKind int

const (
	// FaultKill refuses instantly, as a SIGKILLed process's OS does:
	// connection refused before any byte is written.
	FaultKill FaultKind = iota
	// FaultHang accepts the request and then stalls without answering until
	// the client's timeout fires — the pathological GC pause / stuck disk.
	FaultHang
	// FaultBlackhole accepts, reads nothing, and severs the connection
	// mid-exchange: the caller sees an unexpected EOF after committing the
	// request bytes — the ambiguous "did it apply?" failure.
	FaultBlackhole
)

func (k FaultKind) String() string {
	switch k {
	case FaultKill:
		return "kill"
	case FaultHang:
		return "hang"
	case FaultBlackhole:
		return "blackhole"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// FaultRule matches requests and fails them. A rule with Count > 0 expires
// after that many matches (then traffic flows normally); Count == 0 matches
// forever until the rule is removed.
type FaultRule struct {
	// Host matches the request URL's host exactly ("" matches every host).
	Host string
	// PathPrefix, when non-empty, restricts the rule to matching paths.
	PathPrefix string
	// Kind is how the matched request fails.
	Kind FaultKind
	// Count limits how many requests the rule consumes (0 = unlimited).
	Count int

	hits atomic.Int64
}

// FaultRoundTripper injects faults into an http.RoundTripper. Zero value is
// not usable; build with NewFaultRoundTripper.
type FaultRoundTripper struct {
	next http.RoundTripper

	mu    sync.Mutex
	rules []*FaultRule

	// Injected counts faults actually delivered, by kind — assertions use it
	// to prove the chaos really happened.
	injected [3]atomic.Int64
	// HangDelay bounds a FaultHang stall (default 5s) so a test that forgot
	// a client timeout fails rather than deadlocks.
	HangDelay time.Duration
}

// NewFaultRoundTripper wraps next (nil = http.DefaultTransport).
func NewFaultRoundTripper(next http.RoundTripper) *FaultRoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	return &FaultRoundTripper{next: next}
}

// Add installs a rule and returns it (for later Remove).
func (f *FaultRoundTripper) Add(rule *FaultRule) *FaultRule {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = append(f.rules, rule)
	return rule
}

// Remove deletes a rule installed by Add.
func (f *FaultRoundTripper) Remove(rule *FaultRule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	kept := f.rules[:0]
	for _, r := range f.rules {
		if r != rule {
			kept = append(kept, r)
		}
	}
	f.rules = kept
}

// Clear removes every rule.
func (f *FaultRoundTripper) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = nil
}

// Injected reports how many faults of the kind were actually delivered.
func (f *FaultRoundTripper) Injected(kind FaultKind) int64 {
	return f.injected[kind].Load()
}

// match finds the first live rule for the request and consumes one hit.
func (f *FaultRoundTripper) match(req *http.Request) *FaultRule {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range f.rules {
		if r.Host != "" && r.Host != req.URL.Host {
			continue
		}
		if r.PathPrefix != "" && !strings.HasPrefix(req.URL.Path, r.PathPrefix) {
			continue
		}
		if r.Count > 0 && r.hits.Load() >= int64(r.Count) {
			continue
		}
		r.hits.Add(1)
		return r
	}
	return nil
}

// RoundTrip implements http.RoundTripper.
func (f *FaultRoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	rule := f.match(req)
	if rule == nil {
		return f.next.RoundTrip(req)
	}
	f.injected[rule.Kind].Add(1)
	switch rule.Kind {
	case FaultKill:
		return nil, &net.OpError{Op: "dial", Net: "tcp", Err: errors.New("connect: connection refused (injected)")}
	case FaultHang:
		delay := f.HangDelay
		if delay <= 0 {
			delay = 5 * time.Second
		}
		timer := time.NewTimer(delay)
		defer timer.Stop()
		if req.Body != nil {
			defer req.Body.Close()
		}
		ctx := req.Context()
		select {
		case <-ctx.Done():
			return nil, &hangTimeoutError{ctx.Err()}
		case <-timer.C:
			return nil, &hangTimeoutError{errors.New("injected hang expired")}
		}
	default: // FaultBlackhole
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, &net.OpError{Op: "read", Net: "tcp", Err: errors.New("connection reset by peer (injected)")}
	}
}

// hangTimeoutError reports itself as a timeout, like a transport deadline.
type hangTimeoutError struct{ err error }

func (e *hangTimeoutError) Error() string   { return "injected hang: " + e.err.Error() }
func (e *hangTimeoutError) Timeout() bool   { return true }
func (e *hangTimeoutError) Temporary() bool { return true }
func (e *hangTimeoutError) Unwrap() error   { return e.err }

// FlakyListener wraps a net.Listener and, while tripped, kills every newly
// accepted connection immediately — the accept-side complement to
// FaultRoundTripper for tests driving a real server socket.
type FlakyListener struct {
	net.Listener
	dropping atomic.Bool
	dropped  atomic.Int64
}

// NewFlakyListener wraps l.
func NewFlakyListener(l net.Listener) *FlakyListener { return &FlakyListener{Listener: l} }

// SetDropping toggles connection dropping.
func (l *FlakyListener) SetDropping(v bool) { l.dropping.Store(v) }

// Dropped reports how many connections were severed at accept time.
func (l *FlakyListener) Dropped() int64 { return l.dropped.Load() }

// Accept implements net.Listener.
func (l *FlakyListener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if !l.dropping.Load() {
			return c, nil
		}
		l.dropped.Add(1)
		_ = c.Close()
	}
}
