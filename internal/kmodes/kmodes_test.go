package kmodes

import (
	"math/rand"
	"testing"

	"mcdc/internal/categorical"
	"mcdc/internal/datasets"
	"mcdc/internal/metrics"
)

func TestHamming(t *testing.T) {
	tests := []struct {
		a, b []int
		want int
	}{
		{[]int{1, 2, 3}, []int{1, 2, 3}, 0},
		{[]int{1, 2, 3}, []int{1, 0, 3}, 1},
		{[]int{0, 0}, []int{1, 1}, 2},
		{[]int{categorical.Missing, 1}, []int{categorical.Missing, 1}, 1}, // missing never matches
	}
	for _, tc := range tests {
		if got := Hamming(tc.a, tc.b); got != tc.want {
			t.Errorf("Hamming(%v,%v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestKModesRecoversSeparatedClusters(t *testing.T) {
	ds := datasets.Synthetic("t", 500, 8, 3, 0.92, rand.New(rand.NewSource(4)))
	best := 0.0
	// k-modes is init-sensitive; take the best of a few seeds as the paper
	// protocol does with repeated runs.
	for seed := int64(0); seed < 5; seed++ {
		res, err := Run(ds.Rows, ds.Cardinalities(), Config{K: 3, Rand: rand.New(rand.NewSource(seed))})
		if err != nil {
			t.Fatal(err)
		}
		acc, err := metrics.Accuracy(ds.Labels, res.Labels)
		if err != nil {
			t.Fatal(err)
		}
		if acc > best {
			best = acc
		}
	}
	if best < 0.9 {
		t.Errorf("best-of-5 ACC = %v, want ≥ 0.9 on well-separated data", best)
	}
}

func TestKModesCostConsistent(t *testing.T) {
	ds := datasets.Synthetic("t", 200, 6, 3, 0.9, rand.New(rand.NewSource(5)))
	res, err := Run(ds.Rows, ds.Cardinalities(), Config{K: 3, Rand: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	// Reported cost must equal the recomputed assignment cost.
	var want float64
	for i, l := range res.Labels {
		want += float64(Hamming(ds.Rows[i], res.Modes[l]))
	}
	if res.Cost != want {
		t.Errorf("Cost = %v, recomputed %v", res.Cost, want)
	}
	// And each object must sit with its nearest mode.
	for i, l := range res.Labels {
		own := Hamming(ds.Rows[i], res.Modes[l])
		for m := range res.Modes {
			if d := Hamming(ds.Rows[i], res.Modes[m]); d < own {
				t.Fatalf("object %d: mode %d at distance %d beats assigned %d at %d", i, m, d, l, own)
			}
		}
	}
}

func TestKModesErrors(t *testing.T) {
	if _, err := Run(nil, nil, Config{K: 2, Rand: rand.New(rand.NewSource(1))}); err == nil {
		t.Error("empty data: want error")
	}
	if _, err := Run([][]int{{0}}, []int{1}, Config{K: 0, Rand: rand.New(rand.NewSource(1))}); err == nil {
		t.Error("k=0: want error")
	}
	if _, err := Run([][]int{{0}}, []int{1}, Config{K: 1}); err == nil {
		t.Error("nil rand: want error")
	}
}

func TestKModesKGreaterThanN(t *testing.T) {
	rows := [][]int{{0, 1}, {1, 0}}
	res, err := Run(rows, []int{2, 2}, Config{K: 5, Rand: rand.New(rand.NewSource(2))})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) != 2 {
		t.Fatalf("labels = %v", res.Labels)
	}
}
