// Package kmodes implements Huang's (1997) k-modes algorithm, the standard
// partitional baseline for categorical data: k cluster modes, simple-matching
// (Hamming) dissimilarity, alternating assignment and per-feature majority
// mode updates.
package kmodes

import (
	"errors"
	"fmt"
	"math/rand"

	"mcdc/internal/categorical"
	"mcdc/internal/seeding"
)

// Config parameterizes a k-modes run.
type Config struct {
	K        int
	MaxIters int
	Rand     *rand.Rand
}

// Result is the converged k-modes partition.
type Result struct {
	Labels []int
	Modes  [][]int
	Cost   float64 // total Hamming dissimilarity to assigned modes
	Iters  int
}

// Hamming returns the simple-matching dissimilarity between two value rows:
// the number of positions where they differ (missing counts as a mismatch).
func Hamming(a, b []int) int {
	d := 0
	for r := range a {
		if a[r] != b[r] || a[r] == categorical.Missing {
			d++
		}
	}
	return d
}

// Run clusters integer-coded rows into cfg.K clusters.
func Run(rows [][]int, cardinalities []int, cfg Config) (*Result, error) {
	n := len(rows)
	if n == 0 {
		return nil, errors.New("kmodes: empty data")
	}
	if cfg.Rand == nil {
		return nil, errors.New("kmodes: nil random source")
	}
	k := cfg.K
	if k <= 0 {
		return nil, fmt.Errorf("kmodes: k must be positive, got %d", k)
	}
	if k > n {
		k = n
	}
	maxIters := cfg.MaxIters
	if maxIters <= 0 {
		maxIters = 100
	}
	d := len(cardinalities)

	modes := make([][]int, k)
	for l, i := range seeding.DistinctRows(rows, k, cfg.Rand) {
		modes[l] = append([]int(nil), rows[i]...)
	}
	labels := make([]int, n)
	counts := make([][][]int, k)
	sizes := make([]int, k)
	for l := range counts {
		counts[l] = make([][]int, d)
		for r := range counts[l] {
			counts[l][r] = make([]int, cardinalities[r])
		}
	}

	assign := func() bool {
		changed := false
		for i, row := range rows {
			best, bestD := 0, Hamming(row, modes[0])
			for l := 1; l < k; l++ {
				if dist := Hamming(row, modes[l]); dist < bestD {
					best, bestD = l, dist
				}
			}
			if labels[i] != best {
				labels[i] = best
				changed = true
			}
		}
		return changed
	}

	updateModes := func() {
		for l := range counts {
			sizes[l] = 0
			for r := range counts[l] {
				for v := range counts[l][r] {
					counts[l][r][v] = 0
				}
			}
		}
		for i, l := range labels {
			sizes[l]++
			for r, v := range rows[i] {
				if v != categorical.Missing {
					counts[l][r][v]++
				}
			}
		}
		for l := 0; l < k; l++ {
			if sizes[l] == 0 {
				// Re-seed empty cluster with a random object.
				modes[l] = append(modes[l][:0], rows[cfg.Rand.Intn(n)]...)
				continue
			}
			for r := 0; r < d; r++ {
				best, bestC := 0, -1
				for v, c := range counts[l][r] {
					if c > bestC {
						best, bestC = v, c
					}
				}
				modes[l][r] = best
			}
		}
	}

	// First assignment against the random seeds, then alternate.
	for i := range labels {
		labels[i] = -1
	}
	assign()
	iters := 0
	for ; iters < maxIters; iters++ {
		updateModes()
		if !assign() {
			break
		}
	}
	var cost float64
	for i, l := range labels {
		cost += float64(Hamming(rows[i], modes[l]))
	}
	return &Result{Labels: labels, Modes: modes, Cost: cost, Iters: iters + 1}, nil
}
