package linkage

// Nearest-neighbour-chain agglomeration: the O(n²) replacement for the
// per-step nearest-pair scans of BuildCondensedWorkers. The classic
// observation (Benzécri/Juan; see Müllner's survey of modern agglomerative
// algorithms) is that for a *reducible* linkage — single, complete and
// average all are — merging a reciprocal nearest-neighbour pair is always
// safe: no later merge can produce a closer pair involving either side. The
// algorithm therefore walks a chain c₀ → nn(c₀) → nn(nn(c₀)) → … of strictly
// decreasing dissimilarities until it hits a reciprocal pair, merges it, and
// resumes from the surviving chain tail. Every iteration either grows the
// chain (≤ 2n−2 pushes in total) or merges (exactly n−1 times), and each
// iteration costs at most one O(n) nearest-neighbour scan, giving O(n²)
// total time against the scan's O(n³) — with no approximation: under the
// package's total merge order (mergeLess) both algorithms produce the same
// dendrogram, which the equivalence suite pins via Canonical.

import (
	"errors"
	"fmt"

	"mcdc/internal/parallel"
	"mcdc/internal/similarity"
)

// BuildChain is BuildChainWorkers with GOMAXPROCS workers.
func BuildChain(dist *similarity.Condensed, method Method) (*Dendrogram, error) {
	return BuildChainWorkers(dist, method, 0)
}

// BuildChainWorkers runs nearest-neighbour-chain agglomerative clustering
// over a condensed dissimilarity matrix in O(n²) time and O(n²/2) working
// memory — one condensed clone updated in place, with merged clusters
// recycling the lower of their two slots, so no step ever reallocates
// matrix-sized state. A per-cluster nearest-neighbour cache (filled once in
// parallel, invalidated only for clusters whose cached neighbour was touched
// by a merge) keeps repeat visits O(1).
//
// The result is returned in canonical form (see Dendrogram.Canonical) and is
// identical to BuildCondensedWorkers' dendrogram — same merges, same heights,
// same Cut partitions — because both algorithms select merges under the same
// total order, whose size tie-break makes the linkage reducible even on
// tie-heavy inputs. For single and complete linkage that identity is exact on
// every input (min/max arithmetic is order-independent); for average linkage
// it is exact whenever the input values share a binary grid — integers,
// dyadic rationals, normalized Hamming distances over a power-of-two feature
// count — because the sum-form working matrix (see lanceWilliams) then
// evaluates bit-identical selection values in any merge order. Off-grid
// inputs can in principle resolve a derived exact tie differently on the two
// paths (both results are valid dendrograms of the data); the equivalence
// suite pins the exact domain. The chain walk is inherently sequential (each
// step depends on the last), so `workers` bounds only the initial cache fill
// (≤ 0 → GOMAXPROCS); the output is bit-for-bit identical at any parallelism
// level.
func BuildChainWorkers(dist *similarity.Condensed, method Method, workers int) (*Dendrogram, error) {
	n := dist.N()
	if n == 0 {
		return nil, errors.New("linkage: empty dissimilarity matrix")
	}
	if method != Single && method != Complete && method != Average {
		return nil, fmt.Errorf("linkage: unknown method %v", method)
	}
	if err := validateCondensed(dist); err != nil {
		return nil, err
	}

	// Working state, all allocated once. Slot i is the cluster whose smallest
	// original leaf is i (merges recycle the lower slot), so slot ids double
	// as the min-leaf component of the merge order.
	d := dist.Clone()
	alive := make([]bool, n)
	size := make([]int, n)
	node := make([]int, n) // dendrogram node id of working slot i
	for i := 0; i < n; i++ {
		alive[i] = true
		size[i] = 1
		node[i] = i
	}

	// Nearest-neighbour cache: nn[c] is the alive slot minimizing the merge
	// key against c, valid only while valid[c]. rescan recomputes it in one
	// O(n) pass that streams c's contiguous UpperRow for slots above c and
	// strides the column below it.
	nn := make([]int, n)
	valid := make([]bool, n)
	rescan := func(c int) {
		row := d.UpperRow(c)
		best, bestD, bestSum, bestProd := -1, 0.0, 0, 0
		for m := 0; m < n; m++ {
			if !alive[m] || m == c {
				continue
			}
			var v float64
			if m > c {
				v = row[m-c-1]
			} else {
				v = d.At(m, c)
			}
			lo, hi := c, m
			if hi < lo {
				lo, hi = hi, lo
			}
			if best < 0 || mergeLess(method, v, size[c]*size[m], size[c]+size[m], lo, hi,
				bestD, bestProd, bestSum, min(c, best), max(c, best)) {
				best, bestD, bestSum, bestProd = m, v, size[c]+size[m], size[c]*size[m]
			}
		}
		nn[c] = best
		valid[c] = best >= 0
	}
	// Initial fill: each slot's scan is independent and writes only its own
	// cache entry, so the fan-out is deterministic at any worker count.
	parallel.Must(parallel.ForEachChunk(parallel.Gate(workers, n*n), n, func(lo, hi int) error {
		for c := lo; c < hi; c++ {
			rescan(c)
		}
		return nil
	}))

	den := &Dendrogram{N: n, Merges: make([]Merge, 0, n-1)}
	nextID := n
	chain := make([]int, 0, n)
	for len(den.Merges) < n-1 {
		if len(chain) == 0 {
			// Slot 0 hosts the cluster containing leaf 0 and never dies, so
			// it (re)starts every chain deterministically.
			chain = append(chain, 0)
		}
		c := chain[len(chain)-1]
		if !valid[c] {
			rescan(c)
		}
		b := nn[c]
		if len(chain) >= 2 && chain[len(chain)-2] == b {
			// Reciprocal nearest neighbours under a total order — merge.
			chain = chain[:len(chain)-2]
			lo, hi := c, b
			if hi < lo {
				lo, hi = hi, lo
			}
			den.Merges = append(den.Merges, Merge{A: node[lo], B: node[hi], Parent: nextID, Height: mergeHeight(method, d.At(lo, hi), size[lo], size[hi])})
			lanceWilliams(d, method, alive, lo, hi)
			size[lo] += size[hi]
			alive[hi] = false
			node[lo] = nextID
			nextID++
			// Invalidate exactly the cache entries a Lance–Williams update
			// can have touched: the merged slot itself and any cluster whose
			// cached nearest neighbour was one of the two merge sides.
			// Reducibility guarantees every other cached answer stays correct.
			valid[lo] = false
			for m := 0; m < n; m++ {
				if alive[m] && valid[m] && (nn[m] == lo || nn[m] == hi) {
					valid[m] = false
				}
			}
		} else {
			chain = append(chain, b)
		}
	}
	if method == Average {
		exactAverageHeights(dist, den)
	}
	return den.Canonical(), nil
}
