package linkage

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"mcdc/internal/datasets"
	"mcdc/internal/metrics"
)

// chainMatrix: four points on a line at 0, 1, 3, 7.
func chainMatrix() [][]float64 {
	pos := []float64{0, 1, 3, 7}
	n := len(pos)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if pos[i] > pos[j] {
				d[i][j] = pos[i] - pos[j]
			} else {
				d[i][j] = pos[j] - pos[i]
			}
		}
	}
	return d
}

func TestSingleLinkageMergeOrder(t *testing.T) {
	den, err := Build(chainMatrix(), Single)
	if err != nil {
		t.Fatal(err)
	}
	heights := den.Heights()
	want := []float64{1, 2, 4} // 0-1 at 1, {01}-2 at 2, {012}-3 at 4
	if !reflect.DeepEqual(heights, want) {
		t.Errorf("single-linkage heights = %v, want %v", heights, want)
	}
}

func TestCompleteLinkageMergeOrder(t *testing.T) {
	den, err := Build(chainMatrix(), Complete)
	if err != nil {
		t.Fatal(err)
	}
	heights := den.Heights()
	want := []float64{1, 3, 7} // farthest-pair heights
	if !reflect.DeepEqual(heights, want) {
		t.Errorf("complete-linkage heights = %v, want %v", heights, want)
	}
}

func TestAverageLinkageBetweenSingleAndComplete(t *testing.T) {
	m := chainMatrix()
	s, _ := Build(m, Single)
	a, _ := Build(m, Average)
	c, _ := Build(m, Complete)
	hs, ha, hc := s.Heights(), a.Heights(), c.Heights()
	for i := range ha {
		if ha[i] < hs[i]-1e-12 || ha[i] > hc[i]+1e-12 {
			t.Errorf("average height %d = %v outside [single %v, complete %v]", i, ha[i], hs[i], hc[i])
		}
	}
}

func TestMonotonicHeights(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	n := 30
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := rng.Float64()
			d[i][j], d[j][i] = v, v
		}
	}
	// Single, complete, and average linkage are all monotone (no Lance-
	// Williams inversions).
	for _, method := range []Method{Single, Complete, Average} {
		den, err := Build(d, method)
		if err != nil {
			t.Fatal(err)
		}
		h := den.Heights()
		if !sort.Float64sAreSorted(h) {
			t.Errorf("%v linkage heights not monotone: %v", method, h)
		}
	}
}

func TestCutProducesRequestedClusters(t *testing.T) {
	den, err := Build(chainMatrix(), Single)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 4; k++ {
		labels := den.Cut(k)
		distinct := map[int]bool{}
		for _, l := range labels {
			distinct[l] = true
		}
		if len(distinct) != k {
			t.Errorf("Cut(%d) produced %d clusters: %v", k, len(distinct), labels)
		}
	}
	// Cut(2) must separate {0,1,2} from {3}.
	labels := den.Cut(2)
	if labels[0] != labels[1] || labels[1] != labels[2] || labels[2] == labels[3] {
		t.Errorf("Cut(2) = %v, want {0,1,2} vs {3}", labels)
	}
}

func TestHierarchicalOnCategoricalData(t *testing.T) {
	ds := datasets.Synthetic("t", 150, 8, 3, 0.92, rand.New(rand.NewSource(51)))
	den, err := Build(HammingMatrix(ds.Rows), Average)
	if err != nil {
		t.Fatal(err)
	}
	labels := den.Cut(3)
	acc, err := metrics.Accuracy(ds.Labels, labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.85 {
		t.Errorf("average-linkage ACC = %v, want ≥ 0.85 on separated data", acc)
	}
	if k := den.NaturalCut(10); k < 2 || k > 10 {
		t.Errorf("NaturalCut = %d, want within [2,10]", k)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, Single); err == nil {
		t.Error("empty matrix: want error")
	}
	if _, err := Build([][]float64{{0, 1}}, Single); err == nil {
		t.Error("non-square: want error")
	}
	if _, err := Build(chainMatrix(), Method(99)); err == nil {
		t.Error("unknown method: want error")
	}
}

func TestMethodString(t *testing.T) {
	if Single.String() != "single" || Complete.String() != "complete" || Average.String() != "average" {
		t.Error("Method.String broken")
	}
}
