package linkage

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"mcdc/internal/datasets"
	"mcdc/internal/metrics"
	"mcdc/internal/similarity"
)

// chainMatrix: four points on a line at 0, 1, 3, 7.
func chainMatrix() [][]float64 {
	pos := []float64{0, 1, 3, 7}
	n := len(pos)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if pos[i] > pos[j] {
				d[i][j] = pos[i] - pos[j]
			} else {
				d[i][j] = pos[j] - pos[i]
			}
		}
	}
	return d
}

func TestSingleLinkageMergeOrder(t *testing.T) {
	den, err := Build(chainMatrix(), Single)
	if err != nil {
		t.Fatal(err)
	}
	heights := den.Heights()
	want := []float64{1, 2, 4} // 0-1 at 1, {01}-2 at 2, {012}-3 at 4
	if !reflect.DeepEqual(heights, want) {
		t.Errorf("single-linkage heights = %v, want %v", heights, want)
	}
}

func TestCompleteLinkageMergeOrder(t *testing.T) {
	den, err := Build(chainMatrix(), Complete)
	if err != nil {
		t.Fatal(err)
	}
	heights := den.Heights()
	want := []float64{1, 3, 7} // farthest-pair heights
	if !reflect.DeepEqual(heights, want) {
		t.Errorf("complete-linkage heights = %v, want %v", heights, want)
	}
}

func TestAverageLinkageBetweenSingleAndComplete(t *testing.T) {
	m := chainMatrix()
	s, _ := Build(m, Single)
	a, _ := Build(m, Average)
	c, _ := Build(m, Complete)
	hs, ha, hc := s.Heights(), a.Heights(), c.Heights()
	for i := range ha {
		if ha[i] < hs[i]-1e-12 || ha[i] > hc[i]+1e-12 {
			t.Errorf("average height %d = %v outside [single %v, complete %v]", i, ha[i], hs[i], hc[i])
		}
	}
}

func TestMonotonicHeights(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	n := 30
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := rng.Float64()
			d[i][j], d[j][i] = v, v
		}
	}
	// Single, complete, and average linkage are all monotone (no Lance-
	// Williams inversions).
	for _, method := range []Method{Single, Complete, Average} {
		den, err := Build(d, method)
		if err != nil {
			t.Fatal(err)
		}
		h := den.Heights()
		if !sort.Float64sAreSorted(h) {
			t.Errorf("%v linkage heights not monotone: %v", method, h)
		}
	}
}

func TestCutProducesRequestedClusters(t *testing.T) {
	den, err := Build(chainMatrix(), Single)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 4; k++ {
		labels := den.Cut(k)
		distinct := map[int]bool{}
		for _, l := range labels {
			distinct[l] = true
		}
		if len(distinct) != k {
			t.Errorf("Cut(%d) produced %d clusters: %v", k, len(distinct), labels)
		}
	}
	// Cut(2) must separate {0,1,2} from {3}.
	labels := den.Cut(2)
	if labels[0] != labels[1] || labels[1] != labels[2] || labels[2] == labels[3] {
		t.Errorf("Cut(2) = %v, want {0,1,2} vs {3}", labels)
	}
}

func TestHierarchicalOnCategoricalData(t *testing.T) {
	ds := datasets.Synthetic("t", 150, 8, 3, 0.92, rand.New(rand.NewSource(51)))
	den, err := Build(HammingMatrix(ds.Rows), Average)
	if err != nil {
		t.Fatal(err)
	}
	labels := den.Cut(3)
	acc, err := metrics.Accuracy(ds.Labels, labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.85 {
		t.Errorf("average-linkage ACC = %v, want ≥ 0.85 on separated data", acc)
	}
	if k := den.NaturalCut(10); k < 2 || k > 10 {
		t.Errorf("NaturalCut = %d, want within [2,10]", k)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, Single); err == nil {
		t.Error("empty matrix: want error")
	}
	if _, err := Build([][]float64{{0, 1}}, Single); err == nil {
		t.Error("non-square: want error")
	}
	if _, err := Build(chainMatrix(), Method(99)); err == nil {
		t.Error("unknown method: want error")
	}
}

func TestMethodString(t *testing.T) {
	if Single.String() != "single" || Complete.String() != "complete" || Average.String() != "average" {
		t.Error("Method.String broken")
	}
}

// sameDendrogram asserts two dendrograms are bit-for-bit identical: same
// merge pairs, parents, and (exact float) heights.
func sameDendrogram(t *testing.T, a, b *Dendrogram, context string) {
	t.Helper()
	if a.N != b.N || len(a.Merges) != len(b.Merges) {
		t.Fatalf("%s: shape differs: N %d vs %d, %d vs %d merges", context, a.N, b.N, len(a.Merges), len(b.Merges))
	}
	for s := range a.Merges {
		if a.Merges[s] != b.Merges[s] {
			t.Fatalf("%s: merge %d differs: %+v vs %+v", context, s, a.Merges[s], b.Merges[s])
		}
	}
}

// TestBuildCondensedMatchesDense pins the tentpole equivalence: on random
// categorical data, the condensed build must produce a dendrogram identical
// to the dense path for every linkage method — same merges, same exact
// heights, same cuts.
func TestBuildCondensedMatchesDense(t *testing.T) {
	for seedOffset, n := range []int{60, 150} {
		ds := datasets.Synthetic("t", n, 7, 4, 0.8, rand.New(rand.NewSource(int64(52+seedOffset))))
		dense := HammingMatrix(ds.Rows)
		cond := HammingCondensed(ds.Rows)
		for _, method := range []Method{Single, Complete, Average} {
			dd, err := Build(dense, method)
			if err != nil {
				t.Fatal(err)
			}
			cd, err := BuildCondensed(cond, method)
			if err != nil {
				t.Fatal(err)
			}
			sameDendrogram(t, dd, cd, method.String())
			for _, k := range []int{2, 4} {
				if !reflect.DeepEqual(dd.Cut(k), cd.Cut(k)) {
					t.Fatalf("%v: Cut(%d) differs between dense and condensed", method, k)
				}
			}
		}
	}
}

// TestBuildCondensedParallelEquivalence pins the parallelized nearest-pair
// scan: the dendrogram must be identical at parallelism 1, 2, and GOMAXPROCS.
func TestBuildCondensedParallelEquivalence(t *testing.T) {
	ds := datasets.Synthetic("t", 180, 6, 3, 0.75, rand.New(rand.NewSource(53)))
	cond := HammingCondensedWorkers(ds.Rows, 1)
	for _, method := range []Method{Single, Complete, Average} {
		seq, err := BuildCondensedWorkers(cond, method, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 0} {
			par, err := BuildCondensedWorkers(cond, method, workers)
			if err != nil {
				t.Fatal(err)
			}
			sameDendrogram(t, seq, par, method.String())
		}
	}
}

// TestBuildCondensedErrors mirrors the dense error cases on the condensed
// entry point.
func TestBuildCondensedErrors(t *testing.T) {
	if _, err := BuildCondensed(similarity.NewCondensed(0, 0), Single); err == nil {
		t.Error("empty condensed matrix: want error")
	}
	if _, err := BuildCondensed(similarity.NewCondensed(3, 0), Method(99)); err == nil {
		t.Error("unknown method: want error")
	}
}
