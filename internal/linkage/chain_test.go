package linkage

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"mcdc/internal/datasets"
	"mcdc/internal/similarity"
	"mcdc/internal/testenv"
)

// tieHeavyCondensed generates a random condensed dissimilarity matrix whose
// entries are drawn from a handful of dyadic levels (multiples of 1/8), so
// duplicated heights — the adversarial case for merge-order equivalence —
// occur in masses rather than by accident. The fill streams each source row
// through one scratch buffer via UpperRowInto, so the sweep allocates no
// per-row garbage even when called hundreds of times by the property test.
func tieHeavyCondensed(n int, rng *rand.Rand) *similarity.Condensed {
	src := similarity.NewCondensed(n, 0)
	levels := 1 + rng.Intn(6)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			src.Set(i, j, float64(1+rng.Intn(levels))/8)
		}
	}
	// Round-trip through UpperRowInto: a copy built row by row from one
	// reusable scratch must reproduce the source exactly.
	dst := similarity.NewCondensed(n, 0)
	scratch := make([]float64, n-1)
	for i := 0; i < n-1; i++ {
		row := src.UpperRowInto(i, scratch)
		for jj, v := range row {
			dst.Set(i, i+1+jj, v)
		}
	}
	return dst
}

// chainMethods are the linkage rules the chain agglomerator supports.
var chainMethods = []Method{Single, Complete, Average}

// TestChainMatchesScanTieHeavy is the tentpole equivalence property test:
// across 100 seeded random tie-heavy matrices, the O(n²) chain agglomerator
// must produce the canonical dendrogram of the O(n³) scan oracle — identical
// merges, identical (exact) heights, identical Cut partitions — for every
// method, at parallelism 1, 2 and GOMAXPROCS.
func TestChainMatchesScanTieHeavy(t *testing.T) {
	workersList := []int{1, 2, runtime.GOMAXPROCS(0)}
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(41)
		c := tieHeavyCondensed(n, rng)
		for _, method := range chainMethods {
			oracle, err := BuildCondensedWorkers(c, method, 1)
			if err != nil {
				t.Fatal(err)
			}
			canon := oracle.Canonical()
			for _, workers := range workersList {
				chain, err := BuildChainWorkers(c, method, workers)
				if err != nil {
					t.Fatal(err)
				}
				ctx := fmt.Sprintf("seed %d n %d %v workers %d", seed, n, method, workers)
				sameDendrogram(t, canon, chain, ctx)
				for _, k := range []int{2, 3, 5} {
					if !reflect.DeepEqual(canon.Cut(k), chain.Cut(k)) {
						t.Fatalf("%s: Cut(%d) differs between scan oracle and chain", ctx, k)
					}
				}
			}
		}
	}
}

// TestChainMatchesScanOnData pins scan/chain equivalence on categorical
// benchmark-style data, whose normalized Hamming distances are naturally
// tie-heavy.
func TestChainMatchesScanOnData(t *testing.T) {
	ds := datasets.Synthetic("t", 220, 8, 3, 0.85, rand.New(rand.NewSource(77)))
	cond := HammingCondensed(ds.Rows)
	for _, method := range chainMethods {
		scan, err := BuildCondensed(cond, method)
		if err != nil {
			t.Fatal(err)
		}
		chain, err := BuildChain(cond, method)
		if err != nil {
			t.Fatal(err)
		}
		sameDendrogram(t, scan.Canonical(), chain, method.String())
		for _, k := range []int{2, 3, 7} {
			if !reflect.DeepEqual(scan.Canonical().Cut(k), chain.Cut(k)) {
				t.Fatalf("%v: Cut(%d) differs between scan and chain", method, k)
			}
		}
	}
}

// TestScanOutputIsCanonical pins that the greedy scan emits merges already in
// canonical order — Canonical must be the identity on it (and idempotent on
// any dendrogram).
func TestScanOutputIsCanonical(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		c := tieHeavyCondensed(30, rng)
		for _, method := range chainMethods {
			den, err := BuildCondensedWorkers(c, method, 1)
			if err != nil {
				t.Fatal(err)
			}
			canon := den.Canonical()
			sameDendrogram(t, den, canon, fmt.Sprintf("seed %d %v", seed, method))
			sameDendrogram(t, canon, canon.Canonical(), "idempotence")
		}
	}
}

// TestCanonicalReordersPermutedMerges checks the relabelling directly: a
// hand-permuted emission of the same merge tree must canonicalize back to the
// scan's order.
func TestCanonicalReordersPermutedMerges(t *testing.T) {
	// Heights force the merge order (0,1)@1 then (2,3)@2 then joins@4; emit
	// the first two in swapped order with correspondingly swapped parent ids.
	scrambled := &Dendrogram{N: 4, Merges: []Merge{
		{A: 2, B: 3, Parent: 4, Height: 2},
		{A: 1, B: 0, Parent: 5, Height: 1}, // children deliberately reversed
		{A: 5, B: 4, Parent: 6, Height: 4},
	}}
	want := &Dendrogram{N: 4, Merges: []Merge{
		{A: 0, B: 1, Parent: 4, Height: 1},
		{A: 2, B: 3, Parent: 5, Height: 2},
		{A: 4, B: 5, Parent: 6, Height: 4},
	}}
	got := scrambled.Canonical()
	sameDendrogram(t, want, got, "permuted emission")
	if !reflect.DeepEqual(got.Cut(2), []int{0, 0, 1, 1}) {
		t.Fatalf("canonical Cut(2) = %v", got.Cut(2))
	}
}

// TestChainSmallFixtures pins the chain path on the hand-computable line
// matrix used by the scan's unit tests.
func TestChainSmallFixtures(t *testing.T) {
	c, err := similarity.CondensedFromDense(chainMatrix(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		method Method
		want   []float64
	}{
		{Single, []float64{1, 2, 4}},
		{Complete, []float64{1, 3, 7}},
	} {
		den, err := BuildChain(c, tc.method)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(den.Heights(), tc.want) {
			t.Errorf("%v chain heights = %v, want %v", tc.method, den.Heights(), tc.want)
		}
	}
	den, err := BuildChain(c, Single)
	if err != nil {
		t.Fatal(err)
	}
	if labels := den.Cut(2); labels[0] != labels[1] || labels[1] != labels[2] || labels[2] == labels[3] {
		t.Errorf("chain Cut(2) = %v, want {0,1,2} vs {3}", labels)
	}
}

// TestChainErrors mirrors the scan's error cases on the chain entry point.
func TestChainErrors(t *testing.T) {
	if _, err := BuildChain(similarity.NewCondensed(0, 0), Single); err == nil {
		t.Error("empty condensed matrix: want error")
	}
	if _, err := BuildChain(similarity.NewCondensed(3, 0), Method(99)); err == nil {
		t.Error("unknown method: want error")
	}
	bad := similarity.NewCondensed(3, 0)
	bad.Set(0, 2, math.NaN())
	if _, err := BuildChain(bad, Single); err == nil {
		t.Error("NaN entry: want error")
	}
}

// TestBuildRejectsInvalidEntries pins the input-validation contract on every
// entry point: NaN and negative dissimilarities (and asymmetric dense input)
// are rejected with descriptive errors instead of being silently packed.
func TestBuildRejectsInvalidEntries(t *testing.T) {
	mk := func() [][]float64 { return chainMatrix() }

	nan := mk()
	nan[1][2], nan[2][1] = math.NaN(), math.NaN()
	// A symmetrically-placed NaN pair must be reported as a NaN, not as
	// asymmetry (NaN != NaN would otherwise trip the symmetry check first).
	if err := func() error { _, err := Build(nan, Single); return err }(); err == nil {
		t.Error("NaN entry: want error from Build")
	} else if !strings.Contains(err.Error(), "NaN") {
		t.Errorf("NaN entry: error %q does not name the NaN", err)
	}

	neg := mk()
	neg[0][3], neg[3][0] = -0.5, -0.5
	if _, err := Build(neg, Single); err == nil {
		t.Error("negative entry: want error from Build")
	}

	asym := mk()
	asym[0][1] = 9 // upper half only
	if _, err := Build(asym, Single); err == nil {
		t.Error("asymmetric matrix: want error from Build")
	}

	cneg := similarity.NewCondensed(4, 0)
	cneg.Set(1, 3, -1)
	if _, err := BuildCondensed(cneg, Average); err == nil {
		t.Error("negative entry: want error from BuildCondensed")
	}
	if _, err := BuildChain(cneg, Average); err == nil {
		t.Error("negative entry: want error from BuildChain")
	}
}

// validDendrogram asserts structural well-formedness: sequential parent ids,
// children created before their parents, each node a child exactly once, and
// Cut(k) yielding exactly min(k, n) clusters.
func validDendrogram(t *testing.T, den *Dendrogram, context string) {
	t.Helper()
	used := make([]bool, den.N+len(den.Merges))
	for s, m := range den.Merges {
		if m.Parent != den.N+s {
			t.Fatalf("%s: merge %d has parent %d, want %d", context, s, m.Parent, den.N+s)
		}
		if m.A >= m.Parent || m.B >= m.Parent {
			t.Fatalf("%s: merge %d children (%d, %d) not created before parent %d", context, s, m.A, m.B, m.Parent)
		}
		for _, c := range []int{m.A, m.B} {
			if used[c] {
				t.Fatalf("%s: node %d merged twice", context, c)
			}
			used[c] = true
		}
	}
	for _, k := range []int{1, 2, 3, den.N} {
		labels := den.Cut(k)
		distinct := map[int]bool{}
		for _, l := range labels {
			distinct[l] = true
		}
		want := min(k, den.N)
		if len(distinct) != want {
			t.Fatalf("%s: Cut(%d) produced %d clusters, want %d", context, k, len(distinct), want)
		}
	}
}

// TestChainOffGridStructurallyValid pins the floating-point worst case: on
// inputs OFF the binary grid (multiples of 0.1), derived average-linkage
// ties can round a parent's canonical height an ulp below its child's, and
// chain/scan may legitimately resolve a derived tie differently — but both
// engines must still emit structurally valid dendrograms (the canonical
// priority-topological pass repairs ulp-inverted parent/child pairs), with
// monotone-or-ulp-close heights and well-formed cuts.
func TestChainOffGridStructurallyValid(t *testing.T) {
	// 60 seeds is the PR-time smoke; the nightly deep suite sweeps all 300
	// (the historical off-grid failures clustered in no particular prefix,
	// so the smoke keeps a uniform slice, not a curated one).
	seeds := int64(60)
	if testenv.Nightly() {
		seeds = 300
	}
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(4000 + seed))
		n := 5 + rng.Intn(31)
		c := similarity.NewCondensed(n, 0)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				c.Set(i, j, float64(1+rng.Intn(3))/10) // {0.1, 0.2, 0.3}: off-grid
			}
		}
		for _, method := range chainMethods {
			chain, err := BuildChainWorkers(c, method, 1)
			if err != nil {
				t.Fatal(err)
			}
			ctx := fmt.Sprintf("chain seed %d n %d %v", seed, n, method)
			validDendrogram(t, chain, ctx)
			scan, err := BuildCondensedWorkers(c, method, 1)
			if err != nil {
				t.Fatal(err)
			}
			validDendrogram(t, scan.Canonical(), "scan canonical "+ctx)
		}
	}
}

// TestChainMatchesScanLarge is the nightly-only scale cross-check: at
// n = 5000 the O(n³) scan oracle takes minutes, far past the PR-time budget,
// but it is the only independent witness that the chain engine stays exact
// at the sizes the paper's experiments actually run. Rows are binary, so
// every average-linkage height is an exact dyadic rational and the
// chain/scan identity holds with no ulp caveats (the same trick
// TestChainLinkageEquivalence uses with the Vot. data set at small n).
// Run it locally with MCDC_NIGHTLY=1 (and without -race: the oracle is the
// slow part, not the memory model).
func TestChainMatchesScanLarge(t *testing.T) {
	if !testenv.Nightly() {
		t.Skip("n=5000 scan oracle runs only in the nightly deep suite (set MCDC_NIGHTLY=1)")
	}
	const n = 5000
	rng := rand.New(rand.NewSource(77))
	rows := make([][]int, n)
	for i := range rows {
		row := make([]int, 16)
		for r := range row {
			row[r] = rng.Intn(2)
		}
		rows[i] = row
	}
	c := HammingCondensedWorkers(rows, 0)
	scan, err := BuildCondensedWorkers(c, Average, 0)
	if err != nil {
		t.Fatal(err)
	}
	oracle := scan.Canonical()
	chain, err := BuildChainWorkers(c, Average, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(oracle.Merges, chain.Merges) {
		t.Fatal("n=5000: chain dendrogram differs from the scan oracle")
	}
	for _, k := range []int{2, 5, 16} {
		if !reflect.DeepEqual(oracle.Cut(k), chain.Cut(k)) {
			t.Fatalf("n=5000: Cut(%d) differs between chain and scan", k)
		}
	}
}
