// Package linkage implements the agglomerative hierarchical-clustering
// substrate discussed in the paper's related-work stream: single, complete
// and average linkage over an arbitrary dissimilarity matrix, producing a
// dendrogram that can be cut at any number of clusters. MGCPL is positioned
// as the efficient alternative to this substrate; the package exists so the
// comparison (and ROCK-style analyses) can be made concrete.
package linkage

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"mcdc/internal/similarity"
)

// Method selects the Lance–Williams update rule.
type Method int

const (
	// Single links clusters by their closest member pair.
	Single Method = iota + 1
	// Complete links clusters by their farthest member pair.
	Complete
	// Average links clusters by the mean pairwise dissimilarity (UPGMA).
	Average
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case Single:
		return "single"
	case Complete:
		return "complete"
	case Average:
		return "average"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Merge records one agglomeration step: clusters A and B (node ids) joined at
// the given dissimilarity height into node id Parent.
type Merge struct {
	A, B   int
	Parent int
	Height float64
}

// Dendrogram is the full merge tree over n leaves. Leaves are nodes 0..n-1;
// internal nodes are n..2n-2 in merge order.
type Dendrogram struct {
	N      int
	Merges []Merge
}

// Build runs agglomerative clustering over a symmetric n×n dissimilarity
// matrix with the given linkage method. O(n²) memory, O(n² log n) time via
// nearest-neighbour arrays.
func Build(dist [][]float64, method Method) (*Dendrogram, error) {
	n := len(dist)
	if n == 0 {
		return nil, errors.New("linkage: empty dissimilarity matrix")
	}
	for i, row := range dist {
		if len(row) != n {
			return nil, fmt.Errorf("linkage: matrix not square at row %d", i)
		}
	}
	if method != Single && method != Complete && method != Average {
		return nil, fmt.Errorf("linkage: unknown method %v", method)
	}

	// Working copy; d[i][j] valid only for alive clusters.
	d := make([][]float64, n)
	for i := range d {
		d[i] = append([]float64(nil), dist[i]...)
	}
	alive := make([]bool, n)
	size := make([]int, n)
	node := make([]int, n) // dendrogram node id of working slot i
	for i := 0; i < n; i++ {
		alive[i] = true
		size[i] = 1
		node[i] = i
	}

	den := &Dendrogram{N: n}
	nextID := n
	for step := 0; step < n-1; step++ {
		// Find the closest alive pair (simple O(n²) scan per step).
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !alive[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if alive[j] && d[i][j] < best {
					bi, bj, best = i, j, d[i][j]
				}
			}
		}
		if bi < 0 {
			break
		}
		den.Merges = append(den.Merges, Merge{A: node[bi], B: node[bj], Parent: nextID, Height: best})
		// Lance–Williams update into slot bi.
		for m := 0; m < n; m++ {
			if !alive[m] || m == bi || m == bj {
				continue
			}
			switch method {
			case Single:
				d[bi][m] = math.Min(d[bi][m], d[bj][m])
			case Complete:
				d[bi][m] = math.Max(d[bi][m], d[bj][m])
			case Average:
				wi, wj := float64(size[bi]), float64(size[bj])
				d[bi][m] = (wi*d[bi][m] + wj*d[bj][m]) / (wi + wj)
			}
			d[m][bi] = d[bi][m]
		}
		size[bi] += size[bj]
		alive[bj] = false
		node[bi] = nextID
		nextID++
	}
	return den, nil
}

// Cut returns flat cluster labels for the partition into k clusters: the
// state after n−k merges. Labels are dense 0..k'-1 (k' < k if the tree has
// fewer merges than needed).
func (den *Dendrogram) Cut(k int) []int {
	if k < 1 {
		k = 1
	}
	parent := make([]int, den.N+len(den.Merges))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	steps := den.N - k
	if steps > len(den.Merges) {
		steps = len(den.Merges)
	}
	for s := 0; s < steps; s++ {
		m := den.Merges[s]
		parent[find(m.A)] = m.Parent
		parent[find(m.B)] = m.Parent
	}
	remap := make(map[int]int)
	labels := make([]int, den.N)
	for i := 0; i < den.N; i++ {
		root := find(i)
		l, ok := remap[root]
		if !ok {
			l = len(remap)
			remap[root] = l
		}
		labels[i] = l
	}
	return labels
}

// Heights returns the merge heights in order, useful for monotonicity checks
// and for locating "natural" cuts (large height gaps).
func (den *Dendrogram) Heights() []float64 {
	out := make([]float64, len(den.Merges))
	for i, m := range den.Merges {
		out[i] = m.Height
	}
	return out
}

// HammingMatrix builds the normalized Hamming dissimilarity matrix of a
// categorical data set, the default input for hierarchical clustering of
// qualitative features. The O(n²) computation is row-chunked across all
// available cores; use HammingMatrixWorkers to bound the parallelism.
func HammingMatrix(rows [][]int) [][]float64 {
	return similarity.DissimilarityMatrix(rows, 0)
}

// HammingMatrixWorkers is HammingMatrix with an explicit worker bound
// (≤ 0 → GOMAXPROCS, 1 → sequential). The result is identical at any
// parallelism level.
func HammingMatrixWorkers(rows [][]int, workers int) [][]float64 {
	return similarity.DissimilarityMatrix(rows, workers)
}

// NaturalCut inspects the dendrogram's height sequence and returns the k
// whose cut sits just below the largest height jump — a simple heuristic for
// the "natural" number of clusters, bounded to [2, maxK].
func (den *Dendrogram) NaturalCut(maxK int) int {
	h := den.Heights()
	if len(h) < 2 {
		return 1
	}
	type gap struct {
		idx  int
		size float64
	}
	gaps := make([]gap, 0, len(h)-1)
	for i := 1; i < len(h); i++ {
		gaps = append(gaps, gap{idx: i, size: h[i] - h[i-1]})
	}
	sort.Slice(gaps, func(a, b int) bool { return gaps[a].size > gaps[b].size })
	k := den.N - gaps[0].idx
	if k < 2 {
		k = 2
	}
	if maxK >= 2 && k > maxK {
		k = maxK
	}
	return k
}
