// Package linkage implements the agglomerative hierarchical-clustering
// substrate discussed in the paper's related-work stream: single, complete
// and average linkage over an arbitrary dissimilarity matrix, producing a
// dendrogram that can be cut at any number of clusters. MGCPL is positioned
// as the efficient alternative to this substrate; the package exists so the
// comparison (and ROCK-style analyses) can be made concrete.
package linkage

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"mcdc/internal/parallel"
	"mcdc/internal/similarity"
)

// Method selects the Lance–Williams update rule.
type Method int

const (
	// Single links clusters by their closest member pair.
	Single Method = iota + 1
	// Complete links clusters by their farthest member pair.
	Complete
	// Average links clusters by the mean pairwise dissimilarity (UPGMA).
	Average
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case Single:
		return "single"
	case Complete:
		return "complete"
	case Average:
		return "average"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Merge records one agglomeration step: clusters A and B (node ids) joined at
// the given dissimilarity height into node id Parent.
type Merge struct {
	A, B   int
	Parent int
	Height float64
}

// Dendrogram is the full merge tree over n leaves. Leaves are nodes 0..n-1;
// internal nodes are n..2n-2 in merge order.
type Dendrogram struct {
	N      int
	Merges []Merge
}

// Build runs agglomerative clustering over a symmetric n×n dissimilarity
// matrix with the given linkage method. It is the dense-accepting shim over
// BuildCondensed: the matrix is packed into condensed triangular form first
// (halving the working-copy memory), so prefer BuildCondensed when the
// caller already has a condensed matrix. The input is validated before
// packing: non-square, asymmetric, NaN, or negative dissimilarities are
// rejected with a descriptive error instead of silently producing a
// meaningless dendrogram.
func Build(dist [][]float64, method Method) (*Dendrogram, error) {
	n := len(dist)
	if n == 0 {
		return nil, errors.New("linkage: empty dissimilarity matrix")
	}
	for i, row := range dist {
		if len(row) != n {
			return nil, fmt.Errorf("linkage: matrix not square at row %d", i)
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			// The packing below reads only the upper triangle, which would
			// silently mask an asymmetric lower half. A symmetrically-placed
			// NaN pair is NOT asymmetry (NaN != NaN notwithstanding) — it
			// falls through to validateCondensed, which names the real defect.
			if dist[i][j] != dist[j][i] && !(math.IsNaN(dist[i][j]) && math.IsNaN(dist[j][i])) {
				return nil, fmt.Errorf("linkage: matrix asymmetric at (%d, %d): %v vs %v", i, j, dist[i][j], dist[j][i])
			}
		}
	}
	c, err := similarity.CondensedFromDense(dist, 0)
	if err != nil {
		return nil, fmt.Errorf("linkage: %w", err)
	}
	return BuildCondensedWorkers(c, method, 0)
}

// validateCondensed rejects NaN and negative entries in a packed
// dissimilarity matrix — both would silently corrupt the merge selection
// (NaN fails every comparison; negative distances break the reducibility the
// chain algorithm relies on), so every build entry point refuses them with
// an error naming the offending pair.
func validateCondensed(d *similarity.Condensed) error {
	n := d.N()
	for i := 0; i < n; i++ {
		for jj, v := range d.UpperRow(i) {
			if math.IsNaN(v) {
				return fmt.Errorf("linkage: dissimilarity at (%d, %d) is NaN", i, i+1+jj)
			}
			if v < 0 {
				return fmt.Errorf("linkage: negative dissimilarity %v at (%d, %d)", v, i, i+1+jj)
			}
		}
	}
	return nil
}

// mergeLess orders two candidate merges under the package's total order on
// cluster pairs: the linkage dissimilarity first, then the size of the
// cluster the merge would create, then the slot pair (slots are min-leaf
// indices — every merge recycles the lower slot, so a slot id is the
// smallest original leaf in the cluster). For single and complete linkage
// the working entries v are the linkage dissimilarities themselves; for
// average linkage they are inter-cluster dissimilarity *sums* (see
// lanceWilliams) and p carries the pair's size product |A|·|B|, so the means
// v1/p1 vs v2/p2 are compared division-free by cross-multiplication.
//
// The size component is what keeps the order reducible under ties: a freshly
// merged cluster is strictly larger than either parent, so a Lance–Williams
// update can never produce a key below the merge that created it, which is
// exactly the property that makes the greedy scan and the nearest-neighbour
// chain resolve every tie identically and agree on one dendrogram. The slot
// pair makes the order total (distinct coexisting clusters have distinct min
// leaves), so argmins are unique and independent of scan order.
//
// Exactness bound: the cross-products are exact only while sum×product stays
// within float64's 2^53 exact-integer range — comfortable for the supported
// sweeps (n = 5000 with unit-scale grids peaks around 2·10¹⁵), but at
// n ≳ 2·10⁴ the products can round and the on-grid identity guarantee
// degrades to floating-point tie equivalence, like off-grid inputs.
func mergeLess(method Method, v1 float64, p1, s1, lo1, hi1 int, v2 float64, p2, s2, lo2, hi2 int) bool {
	a, b := v1, v2
	if method == Average {
		a, b = v1*float64(p2), v2*float64(p1)
	}
	if a != b {
		return a < b
	}
	if s1 != s2 {
		return s1 < s2
	}
	if lo1 != lo2 {
		return lo1 < lo2
	}
	return hi1 < hi2
}

// lanceWilliams folds cluster hi into cluster lo on the working matrix:
// d(lo, m) becomes the method's combination of d(lo, m) and d(hi, m) for
// every other alive cluster m. Both the scan and the chain agglomerator call
// this with lo < hi, so the floating-point expression evaluated for a given
// merge is identical on either path.
//
// For average linkage the working matrix holds inter-cluster dissimilarity
// SUMS rather than means: the update is then a pure addition, T(lo∪hi, m) =
// T(lo, m) + T(hi, m). Additions commute where the incremental weighted-mean
// recurrence does not — on inputs whose values share an exact binary grid
// (integers, dyadic rationals, normalized Hamming with a power-of-two
// feature count) every sum is exact no matter which merge order produced it,
// so the scan and the chain see bit-identical selection values and cannot
// diverge on derived ties. Means are recovered only at comparison time
// (mergeLess cross-multiplies) and at merge time (the recorded height),
// never stored.
func lanceWilliams(d *similarity.Condensed, method Method, alive []bool, lo, hi int) {
	n := d.N()
	for m := 0; m < n; m++ {
		if !alive[m] || m == lo || m == hi {
			continue
		}
		switch method {
		case Single:
			d.Set(lo, m, math.Min(d.At(lo, m), d.At(hi, m)))
		case Complete:
			d.Set(lo, m, math.Max(d.At(lo, m), d.At(hi, m)))
		case Average:
			d.Set(lo, m, d.At(lo, m)+d.At(hi, m))
		}
	}
}

// mergeHeight converts a working-matrix entry for a selected merge into the
// linkage height: the entry itself for single/complete, the mean T/(|A|·|B|)
// for average (whose working entries are sums).
func mergeHeight(method Method, v float64, sizeA, sizeB int) float64 {
	if method == Average {
		return v / float64(sizeA*sizeB)
	}
	return v
}

// BuildCondensed is BuildCondensedWorkers with GOMAXPROCS workers.
func BuildCondensed(dist *similarity.Condensed, method Method) (*Dendrogram, error) {
	return BuildCondensedWorkers(dist, method, 0)
}

// BuildCondensedWorkers runs agglomerative clustering over a condensed
// dissimilarity matrix: O(n²/2) working memory (a condensed clone) and
// O(n³/2) time via per-step nearest-pair scans. Each scan is row-chunked
// across at most `workers` goroutines (≤ 0 → GOMAXPROCS, 1 → sequential)
// with per-chunk minima folded in chunk order under the package's total
// order on candidate merges (mergeLess) — the argmin is unique, so the
// dendrogram is bit-for-bit identical at any parallelism level, to the dense
// path, and (after Canonical reordering) to the O(n²) chain path in
// BuildChainWorkers, for which this scan is the cross-check oracle.
func BuildCondensedWorkers(dist *similarity.Condensed, method Method, workers int) (*Dendrogram, error) {
	n := dist.N()
	if n == 0 {
		return nil, errors.New("linkage: empty dissimilarity matrix")
	}
	if method != Single && method != Complete && method != Average {
		return nil, fmt.Errorf("linkage: unknown method %v", method)
	}
	if err := validateCondensed(dist); err != nil {
		return nil, err
	}

	// Working copy; entries valid only for alive clusters.
	d := dist.Clone()
	alive := make([]bool, n)
	size := make([]int, n)
	node := make([]int, n) // dendrogram node id of working slot i
	for i := 0; i < n; i++ {
		alive[i] = true
		size[i] = 1
		node[i] = i
	}

	den := &Dendrogram{N: n}
	nextID := n
	for step := 0; step < n-1; step++ {
		bi, bj, best := nearestAlivePair(d, method, alive, size, workers)
		if bi < 0 {
			break
		}
		den.Merges = append(den.Merges, Merge{A: node[bi], B: node[bj], Parent: nextID, Height: mergeHeight(method, best, size[bi], size[bj])})
		lanceWilliams(d, method, alive, bi, bj)
		size[bi] += size[bj]
		alive[bj] = false
		node[bi] = nextID
		nextID++
	}
	if method == Average {
		exactAverageHeights(dist, den)
	}
	return den, nil
}

// pairCand is one candidate merge of the nearest-pair scan: the working
// entry d for slot pair (i, j), the merged size sum, and the size product
// prod (the mean denominator under average linkage).
type pairCand struct {
	i, j, sum, prod int
	d               float64
}

// nearestAlivePair finds the alive pair (i, j>i) minimizing the package's
// total merge order (mergeLess): smallest linkage dissimilarity, ties broken
// by merged size then slot pair. The order is total, so the argmin is unique
// and the chunk-ordered fold returns it at any parallelism level. Each row
// streams its contiguous UpperRow slice, which is what makes the O(n²/2)
// scan cache-friendly.
func nearestAlivePair(d *similarity.Condensed, method Method, alive []bool, size []int, workers int) (int, int, float64) {
	n := d.N()
	none := pairCand{i: -1, j: -1, d: math.Inf(1)}
	best, err := parallel.MapReduce(parallel.Gate(workers, n*n/2), n, none,
		func(lo, hi int) (pairCand, error) {
			b := none
			for i := lo; i < hi; i++ {
				if !alive[i] {
					continue
				}
				row := d.UpperRow(i)
				for jj, v := range row {
					j := i + 1 + jj
					if !alive[j] || (method != Average && v > b.d) {
						continue
					}
					if b.i < 0 || mergeLess(method, v, size[i]*size[j], size[i]+size[j], i, j, b.d, b.prod, b.sum, b.i, b.j) {
						b = pairCand{i: i, j: j, sum: size[i] + size[j], prod: size[i] * size[j], d: v}
					}
				}
			}
			return b, nil
		},
		func(acc, next pairCand) pairCand {
			if next.i >= 0 && (acc.i < 0 || mergeLess(method, next.d, next.prod, next.sum, next.i, next.j, acc.d, acc.prod, acc.sum, acc.i, acc.j)) {
				return next
			}
			return acc
		})
	parallel.Must(err)
	return best.i, best.j, best.d
}

// Cut returns flat cluster labels for the partition into k clusters: the
// state after n−k merges. Labels are dense 0..k'-1 (k' < k if the tree has
// fewer merges than needed).
func (den *Dendrogram) Cut(k int) []int {
	if k < 1 {
		k = 1
	}
	parent := make([]int, den.N+len(den.Merges))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	steps := den.N - k
	if steps > len(den.Merges) {
		steps = len(den.Merges)
	}
	for s := 0; s < steps; s++ {
		m := den.Merges[s]
		parent[find(m.A)] = m.Parent
		parent[find(m.B)] = m.Parent
	}
	remap := make(map[int]int)
	labels := make([]int, den.N)
	for i := 0; i < den.N; i++ {
		root := find(i)
		l, ok := remap[root]
		if !ok {
			l = len(remap)
			remap[root] = l
		}
		labels[i] = l
	}
	return labels
}

// Heights returns the merge heights in order, useful for monotonicity checks
// and for locating "natural" cuts (large height gaps).
func (den *Dendrogram) Heights() []float64 {
	out := make([]float64, len(den.Merges))
	for i, m := range den.Merges {
		out[i] = m.Height
	}
	return out
}

// exactAverageHeights replaces the incrementally maintained average-linkage
// heights with their canonical evaluation: for each merge A∪B, the flat sum
// of the original dissimilarities over A×B (children ordered min-leaf first,
// members in ascending leaf order) divided by |A|·|B|. The incremental
// Lance–Williams recurrence computes the same rational value but associates
// its floating-point additions by merge *time*, which differs between the
// scan and the chain — leaving the two paths' heights apart by an ulp. The
// canonical evaluation depends only on the tree, so both builders run it and
// their heights become bit-for-bit identical (single and complete linkage
// need no such pass: min/max arithmetic is order-independent). Each leaf
// pair is summed exactly once across all merges, so the pass is O(n²) —
// free next to either builder.
func exactAverageHeights(orig *similarity.Condensed, den *Dendrogram) {
	members := make([][]int, den.N+len(den.Merges))
	for i := 0; i < den.N; i++ {
		members[i] = []int{i}
	}
	for s, m := range den.Merges {
		a, b := members[m.A], members[m.B]
		if b[0] < a[0] {
			a, b = b, a
		}
		var t float64
		for _, x := range a {
			for _, y := range b {
				t += orig.At(x, y)
			}
		}
		den.Merges[s].Height = t / (float64(len(a)) * float64(len(b)))
		merged := make([]int, 0, len(a)+len(b))
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			if a[i] < b[j] {
				merged = append(merged, a[i])
				i++
			} else {
				merged = append(merged, b[j])
				j++
			}
		}
		merged = append(append(merged, a[i:]...), b[j:]...)
		members[m.Parent] = merged
		members[m.A], members[m.B] = nil, nil // each node is a child once
	}
}

// Canonical returns the dendrogram in canonical form: merges sorted by
// (height, merged size, min-leaf pair) — the same total order the greedy
// scan selects merges under — with each merge's children ordered min-leaf
// first and parent ids relabelled n..2n-2 in sorted order. Two equivalent
// dendrograms over the same merge set canonicalize to identical Merges
// slices even when they were emitted in different orders, which is how the
// chain agglomerator (local, reciprocal-nearest-neighbour merge order) is
// proven against the scan (global, height-sorted merge order). The scan's
// output is already canonical, so Canonical is idempotent on it; Cut and
// NaturalCut require the canonical (height-sorted) order to be meaningful,
// which is why BuildChain canonicalizes before returning.
//
// The sort key is intrinsic to the tree: each cluster's size and minimum
// leaf are recomputed from the merges, and within one dendrogram the key is
// strictly totally ordered (every merge retires a distinct min-leaf, and a
// parent's merged size strictly exceeds its childrens'), so the result is
// unique. Children precede parents in the key order on every
// exact-arithmetic input; the one floating-point exception (off-grid
// average heights rounding a parent an ulp below its child) is repaired by
// a deterministic priority-topological pass, keeping the output a
// structurally valid dendrogram in all cases.
func (den *Dendrogram) Canonical() *Dendrogram {
	n := den.N
	total := n + len(den.Merges)
	size := make([]int, total)
	leaf := make([]int, total) // smallest original leaf in the node's cluster
	for i := 0; i < n; i++ {
		size[i] = 1
		leaf[i] = i
	}
	type rec struct {
		m      Merge
		sum    int // size of the merged cluster
		lo, hi int // sorted min leaves of the two children
	}
	recs := make([]rec, len(den.Merges))
	for s, m := range den.Merges {
		size[m.Parent] = size[m.A] + size[m.B]
		a, b := m.A, m.B
		if leaf[b] < leaf[a] {
			a, b = b, a
		}
		leaf[m.Parent] = leaf[a]
		recs[s] = rec{
			m:   Merge{A: a, B: b, Parent: m.Parent, Height: m.Height},
			sum: size[m.Parent], lo: leaf[a], hi: leaf[b],
		}
	}
	sort.Slice(recs, func(x, y int) bool {
		rx, ry := &recs[x], &recs[y]
		if rx.m.Height != ry.m.Height {
			return rx.m.Height < ry.m.Height
		}
		if rx.sum != ry.sum {
			return rx.sum < ry.sum
		}
		if rx.lo != ry.lo {
			return rx.lo < ry.lo
		}
		return rx.hi < ry.hi
	})
	// The sorted order almost always has children before parents already (a
	// parent's height is ≥ its children's and its merged size is strictly
	// larger). The one exception: off-grid average-linkage inputs, where
	// exactAverageHeights can round a parent's height one ulp *below* a
	// child's. A priority-topological pass repairs that deterministically —
	// each merge is emitted at the earliest sorted position at which both its
	// children exist — and is the identity whenever the sorted order is
	// already consistent, i.e. on every exact-arithmetic input. Each node is
	// the child of exactly one merge, so a blocked merge waits on a single
	// releasing node and the pass is O(n).
	placed := make([]bool, total)
	for i := 0; i < n; i++ {
		placed[i] = true
	}
	waiter := make(map[int]int) // node id → sorted index of the merge waiting on it
	order := make([]int, 0, len(recs))
	blockedOn := func(ri int) (int, bool) {
		if !placed[recs[ri].m.A] {
			return recs[ri].m.A, true
		}
		if !placed[recs[ri].m.B] {
			return recs[ri].m.B, true
		}
		return 0, false
	}
	var emit func(ri int)
	emit = func(ri int) {
		if blk, blocked := blockedOn(ri); blocked {
			waiter[blk] = ri
			return
		}
		order = append(order, ri)
		parent := recs[ri].m.Parent
		placed[parent] = true
		if next, ok := waiter[parent]; ok {
			delete(waiter, parent)
			emit(next)
		}
	}
	for ri := range recs {
		emit(ri)
	}
	remap := make([]int, total)
	for i := 0; i < n; i++ {
		remap[i] = i
	}
	for s, ri := range order {
		remap[recs[ri].m.Parent] = n + s
	}
	out := &Dendrogram{N: n, Merges: make([]Merge, len(order))}
	for s, ri := range order {
		out.Merges[s] = Merge{
			A: remap[recs[ri].m.A], B: remap[recs[ri].m.B],
			Parent: n + s, Height: recs[ri].m.Height,
		}
	}
	return out
}

// HammingCondensed builds the normalized Hamming dissimilarity matrix of a
// categorical data set in condensed triangular form — the preferred input for
// BuildCondensed (half the memory of the dense matrix). The O(n²·d) fill is
// tiled across all available cores; use HammingCondensedWorkers to bound the
// parallelism.
func HammingCondensed(rows [][]int) *similarity.Condensed {
	return similarity.DissimilarityCondensed(rows, 0)
}

// HammingCondensedWorkers is HammingCondensed with an explicit worker bound
// (≤ 0 → GOMAXPROCS, 1 → sequential). The result is identical at any
// parallelism level.
func HammingCondensedWorkers(rows [][]int, workers int) *similarity.Condensed {
	return similarity.DissimilarityCondensed(rows, workers)
}

// HammingMatrix is the dense shim over HammingCondensed, kept for callers
// that need the classic [][]float64 form.
func HammingMatrix(rows [][]int) [][]float64 {
	return similarity.DissimilarityMatrix(rows, 0)
}

// HammingMatrixWorkers is the dense shim HammingMatrix with an explicit worker bound
// (≤ 0 → GOMAXPROCS, 1 → sequential). The result is identical at any
// parallelism level.
func HammingMatrixWorkers(rows [][]int, workers int) [][]float64 {
	return similarity.DissimilarityMatrix(rows, workers)
}

// NaturalCut inspects the dendrogram's height sequence and returns the k
// whose cut sits just below the largest height jump — a simple heuristic for
// the "natural" number of clusters, bounded to [2, maxK].
func (den *Dendrogram) NaturalCut(maxK int) int {
	h := den.Heights()
	if len(h) < 2 {
		return 1
	}
	type gap struct {
		idx  int
		size float64
	}
	gaps := make([]gap, 0, len(h)-1)
	for i := 1; i < len(h); i++ {
		gaps = append(gaps, gap{idx: i, size: h[i] - h[i-1]})
	}
	sort.Slice(gaps, func(a, b int) bool { return gaps[a].size > gaps[b].size })
	k := den.N - gaps[0].idx
	if k < 2 {
		k = 2
	}
	if maxK >= 2 && k > maxK {
		k = maxK
	}
	return k
}
