// Package linkage implements the agglomerative hierarchical-clustering
// substrate discussed in the paper's related-work stream: single, complete
// and average linkage over an arbitrary dissimilarity matrix, producing a
// dendrogram that can be cut at any number of clusters. MGCPL is positioned
// as the efficient alternative to this substrate; the package exists so the
// comparison (and ROCK-style analyses) can be made concrete.
package linkage

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"mcdc/internal/parallel"
	"mcdc/internal/similarity"
)

// Method selects the Lance–Williams update rule.
type Method int

const (
	// Single links clusters by their closest member pair.
	Single Method = iota + 1
	// Complete links clusters by their farthest member pair.
	Complete
	// Average links clusters by the mean pairwise dissimilarity (UPGMA).
	Average
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case Single:
		return "single"
	case Complete:
		return "complete"
	case Average:
		return "average"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Merge records one agglomeration step: clusters A and B (node ids) joined at
// the given dissimilarity height into node id Parent.
type Merge struct {
	A, B   int
	Parent int
	Height float64
}

// Dendrogram is the full merge tree over n leaves. Leaves are nodes 0..n-1;
// internal nodes are n..2n-2 in merge order.
type Dendrogram struct {
	N      int
	Merges []Merge
}

// Build runs agglomerative clustering over a symmetric n×n dissimilarity
// matrix with the given linkage method. It is the dense-accepting shim over
// BuildCondensed: the matrix is packed into condensed triangular form first
// (halving the working-copy memory), so prefer BuildCondensed when the
// caller already has a condensed matrix.
func Build(dist [][]float64, method Method) (*Dendrogram, error) {
	n := len(dist)
	if n == 0 {
		return nil, errors.New("linkage: empty dissimilarity matrix")
	}
	for i, row := range dist {
		if len(row) != n {
			return nil, fmt.Errorf("linkage: matrix not square at row %d", i)
		}
	}
	c, err := similarity.CondensedFromDense(dist, 0)
	if err != nil {
		return nil, fmt.Errorf("linkage: %w", err)
	}
	return BuildCondensedWorkers(c, method, 0)
}

// BuildCondensed is BuildCondensedWorkers with GOMAXPROCS workers.
func BuildCondensed(dist *similarity.Condensed, method Method) (*Dendrogram, error) {
	return BuildCondensedWorkers(dist, method, 0)
}

// BuildCondensedWorkers runs agglomerative clustering over a condensed
// dissimilarity matrix: O(n²/2) working memory (a condensed clone) and
// O(n³/2) time via per-step nearest-pair scans. Each scan is row-chunked
// across at most `workers` goroutines (≤ 0 → GOMAXPROCS, 1 → sequential)
// with per-chunk minima folded in chunk order under a strict < comparison,
// which reproduces the sequential scan's first-minimum tie-break exactly —
// the dendrogram is bit-for-bit identical at any parallelism level, and to
// the dense path (the Lance–Williams arithmetic is unchanged).
func BuildCondensedWorkers(dist *similarity.Condensed, method Method, workers int) (*Dendrogram, error) {
	n := dist.N()
	if n == 0 {
		return nil, errors.New("linkage: empty dissimilarity matrix")
	}
	if method != Single && method != Complete && method != Average {
		return nil, fmt.Errorf("linkage: unknown method %v", method)
	}

	// Working copy; entries valid only for alive clusters.
	d := dist.Clone()
	alive := make([]bool, n)
	size := make([]int, n)
	node := make([]int, n) // dendrogram node id of working slot i
	for i := 0; i < n; i++ {
		alive[i] = true
		size[i] = 1
		node[i] = i
	}

	den := &Dendrogram{N: n}
	nextID := n
	for step := 0; step < n-1; step++ {
		bi, bj, best := nearestAlivePair(d, alive, workers)
		if bi < 0 {
			break
		}
		den.Merges = append(den.Merges, Merge{A: node[bi], B: node[bj], Parent: nextID, Height: best})
		// Lance–Williams update into slot bi.
		for m := 0; m < n; m++ {
			if !alive[m] || m == bi || m == bj {
				continue
			}
			switch method {
			case Single:
				d.Set(bi, m, math.Min(d.At(bi, m), d.At(bj, m)))
			case Complete:
				d.Set(bi, m, math.Max(d.At(bi, m), d.At(bj, m)))
			case Average:
				wi, wj := float64(size[bi]), float64(size[bj])
				d.Set(bi, m, (wi*d.At(bi, m)+wj*d.At(bj, m))/(wi+wj))
			}
		}
		size[bi] += size[bj]
		alive[bj] = false
		node[bi] = nextID
		nextID++
	}
	return den, nil
}

// pairCand is one candidate merge of the nearest-pair scan.
type pairCand struct {
	i, j int
	d    float64
}

// nearestAlivePair finds the alive pair (i, j>i) with the smallest
// dissimilarity, ties broken by lowest (i, j) — the same pair a sequential
// scan with strict < selects. Rows are chunked with workers-independent
// boundaries; per-chunk minima merge in chunk (hence ascending-i) order under
// strict <, so the selection is identical at any parallelism level. Each row
// streams its contiguous UpperRow slice, which is what makes the O(n²/2)
// scan cache-friendly.
func nearestAlivePair(d *similarity.Condensed, alive []bool, workers int) (int, int, float64) {
	n := d.N()
	none := pairCand{i: -1, j: -1, d: math.Inf(1)}
	best, err := parallel.MapReduce(parallel.Gate(workers, n*n/2), n, none,
		func(lo, hi int) (pairCand, error) {
			b := none
			for i := lo; i < hi; i++ {
				if !alive[i] {
					continue
				}
				row := d.UpperRow(i)
				for jj, v := range row {
					if j := i + 1 + jj; alive[j] && v < b.d {
						b = pairCand{i: i, j: j, d: v}
					}
				}
			}
			return b, nil
		},
		func(acc, next pairCand) pairCand {
			if next.d < acc.d {
				return next
			}
			return acc
		})
	parallel.Must(err)
	return best.i, best.j, best.d
}

// Cut returns flat cluster labels for the partition into k clusters: the
// state after n−k merges. Labels are dense 0..k'-1 (k' < k if the tree has
// fewer merges than needed).
func (den *Dendrogram) Cut(k int) []int {
	if k < 1 {
		k = 1
	}
	parent := make([]int, den.N+len(den.Merges))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	steps := den.N - k
	if steps > len(den.Merges) {
		steps = len(den.Merges)
	}
	for s := 0; s < steps; s++ {
		m := den.Merges[s]
		parent[find(m.A)] = m.Parent
		parent[find(m.B)] = m.Parent
	}
	remap := make(map[int]int)
	labels := make([]int, den.N)
	for i := 0; i < den.N; i++ {
		root := find(i)
		l, ok := remap[root]
		if !ok {
			l = len(remap)
			remap[root] = l
		}
		labels[i] = l
	}
	return labels
}

// Heights returns the merge heights in order, useful for monotonicity checks
// and for locating "natural" cuts (large height gaps).
func (den *Dendrogram) Heights() []float64 {
	out := make([]float64, len(den.Merges))
	for i, m := range den.Merges {
		out[i] = m.Height
	}
	return out
}

// HammingCondensed builds the normalized Hamming dissimilarity matrix of a
// categorical data set in condensed triangular form — the preferred input for
// BuildCondensed (half the memory of the dense matrix). The O(n²·d) fill is
// tiled across all available cores; use HammingCondensedWorkers to bound the
// parallelism.
func HammingCondensed(rows [][]int) *similarity.Condensed {
	return similarity.DissimilarityCondensed(rows, 0)
}

// HammingCondensedWorkers is HammingCondensed with an explicit worker bound
// (≤ 0 → GOMAXPROCS, 1 → sequential). The result is identical at any
// parallelism level.
func HammingCondensedWorkers(rows [][]int, workers int) *similarity.Condensed {
	return similarity.DissimilarityCondensed(rows, workers)
}

// HammingMatrix is the dense shim over HammingCondensed, kept for callers
// that need the classic [][]float64 form.
func HammingMatrix(rows [][]int) [][]float64 {
	return similarity.DissimilarityMatrix(rows, 0)
}

// HammingMatrixWorkers is HammingMatrix with an explicit worker bound
// (≤ 0 → GOMAXPROCS, 1 → sequential). The result is identical at any
// parallelism level.
func HammingMatrixWorkers(rows [][]int, workers int) [][]float64 {
	return similarity.DissimilarityMatrix(rows, workers)
}

// NaturalCut inspects the dendrogram's height sequence and returns the k
// whose cut sits just below the largest height jump — a simple heuristic for
// the "natural" number of clusters, bounded to [2, maxK].
func (den *Dendrogram) NaturalCut(maxK int) int {
	h := den.Heights()
	if len(h) < 2 {
		return 1
	}
	type gap struct {
		idx  int
		size float64
	}
	gaps := make([]gap, 0, len(h)-1)
	for i := 1; i < len(h); i++ {
		gaps = append(gaps, gap{idx: i, size: h[i] - h[i-1]})
	}
	sort.Slice(gaps, func(a, b int) bool { return gaps[a].size > gaps[b].size })
	k := den.N - gaps[0].idx
	if k < 2 {
		k = 2
	}
	if maxK >= 2 && k > maxK {
		k = maxK
	}
	return k
}
