// Package metrics implements the external cluster-validity indices used in
// the paper's evaluation — Clustering Accuracy (ACC), Adjusted Rand Index
// (ARI), Adjusted Mutual Information (AMI), Normalized Mutual Information
// (NMI) and the Fowlkes–Mallows score (FM) — together with the Hungarian
// assignment solver needed to compute ACC under the optimal label matching.
package metrics

import (
	"fmt"
	"math"
)

// Hungarian solves the square assignment problem: given an n×n cost matrix it
// returns an assignment rowToCol minimizing total cost, and that cost. It
// implements the O(n³) shortest-augmenting-path formulation (Jonker–Volgenant
// style potentials).
func Hungarian(cost [][]float64) ([]int, float64, error) {
	n := len(cost)
	if n == 0 {
		return nil, 0, fmt.Errorf("metrics: empty cost matrix")
	}
	for i, row := range cost {
		if len(row) != n {
			return nil, 0, fmt.Errorf("metrics: cost matrix not square at row %d", i)
		}
	}
	const inf = math.MaxFloat64
	// 1-based potentials, as in the classical formulation.
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1)   // p[j]: row assigned to column j (0 = none)
	way := make([]int, n+1) // back-pointers along the alternating path
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := range minv {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0, j1 := p[j0], 0
			delta := inf
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	rowToCol := make([]int, n)
	var total float64
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			rowToCol[p[j]-1] = j - 1
			total += cost[p[j]-1][j-1]
		}
	}
	return rowToCol, total, nil
}
