package metrics

import "fmt"

// contingency is the confusion table between two labelings together with its
// marginals: cell[i][j] counts objects with true class i and predicted
// cluster j.
type contingency struct {
	cell [][]int
	a    []int // row sums (true-class sizes)
	b    []int // column sums (cluster sizes)
	n    int
}

// newContingency builds the contingency table of two equal-length labelings.
// Labels must be dense non-negative integers (as produced by the clustering
// algorithms in this repository).
func newContingency(truth, pred []int) (*contingency, error) {
	if len(truth) != len(pred) {
		return nil, fmt.Errorf("metrics: labelings differ in length: %d vs %d", len(truth), len(pred))
	}
	if len(truth) == 0 {
		return nil, fmt.Errorf("metrics: empty labelings")
	}
	maxOf := func(xs []int) int {
		m := 0
		for _, x := range xs {
			if x < 0 {
				return -1
			}
			if x > m {
				m = x
			}
		}
		return m
	}
	kt, kp := maxOf(truth), maxOf(pred)
	if kt < 0 || kp < 0 {
		return nil, fmt.Errorf("metrics: labels must be non-negative")
	}
	c := &contingency{
		cell: make([][]int, kt+1),
		a:    make([]int, kt+1),
		b:    make([]int, kp+1),
		n:    len(truth),
	}
	for i := range c.cell {
		c.cell[i] = make([]int, kp+1)
	}
	for idx := range truth {
		c.cell[truth[idx]][pred[idx]]++
		c.a[truth[idx]]++
		c.b[pred[idx]]++
	}
	return c, nil
}
