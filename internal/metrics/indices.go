package metrics

import (
	"math"
)

// Accuracy computes Clustering Accuracy (ACC): the fraction of objects whose
// cluster label matches their true class under the optimal one-to-one mapping
// between clusters and classes (found with the Hungarian solver). Range [0,1].
func Accuracy(truth, pred []int) (float64, error) {
	c, err := newContingency(truth, pred)
	if err != nil {
		return 0, err
	}
	k := len(c.a)
	if len(c.b) > k {
		k = len(c.b)
	}
	// Maximize matched counts = minimize (maxCell - count) over a padded
	// square matrix.
	var maxCell float64
	for _, row := range c.cell {
		for _, v := range row {
			if f := float64(v); f > maxCell {
				maxCell = f
			}
		}
	}
	cost := make([][]float64, k)
	for i := range cost {
		cost[i] = make([]float64, k)
		for j := range cost[i] {
			var cnt float64
			if i < len(c.cell) && j < len(c.cell[i]) {
				cnt = float64(c.cell[i][j])
			}
			cost[i][j] = maxCell - cnt
		}
	}
	assign, _, err := Hungarian(cost)
	if err != nil {
		return 0, err
	}
	var matched float64
	for i, j := range assign {
		if i < len(c.cell) && j < len(c.cell[i]) {
			matched += float64(c.cell[i][j])
		}
	}
	return matched / float64(c.n), nil
}

// comb2 returns C(x,2) as float64.
func comb2(x int) float64 {
	return float64(x) * float64(x-1) / 2
}

// AdjustedRandIndex computes ARI: pairwise agreement between the two
// labelings corrected for chance. Range [-1, 1]; 1 for identical partitions,
// ~0 for independent ones.
func AdjustedRandIndex(truth, pred []int) (float64, error) {
	c, err := newContingency(truth, pred)
	if err != nil {
		return 0, err
	}
	var sumCells, sumA, sumB float64
	for i, row := range c.cell {
		sumA += comb2(c.a[i])
		for _, v := range row {
			sumCells += comb2(v)
		}
	}
	for _, v := range c.b {
		sumB += comb2(v)
	}
	total := comb2(c.n)
	expected := sumA * sumB / total
	maxIndex := (sumA + sumB) / 2
	if maxIndex == expected {
		// Both partitions are trivial (single cluster or all singletons).
		return 1, nil
	}
	return (sumCells - expected) / (maxIndex - expected), nil
}

// FowlkesMallows computes the FM score: the geometric mean of pairwise
// precision and recall. Range [0,1].
func FowlkesMallows(truth, pred []int) (float64, error) {
	c, err := newContingency(truth, pred)
	if err != nil {
		return 0, err
	}
	var tp, sumA, sumB float64
	for i, row := range c.cell {
		sumA += comb2(c.a[i])
		for _, v := range row {
			tp += comb2(v)
		}
	}
	for _, v := range c.b {
		sumB += comb2(v)
	}
	if sumA == 0 || sumB == 0 {
		return 0, nil
	}
	return tp / math.Sqrt(sumA*sumB), nil
}

// entropy returns the Shannon entropy (nats) of cluster sizes.
func entropy(sizes []int, n int) float64 {
	var h float64
	for _, s := range sizes {
		if s == 0 {
			continue
		}
		p := float64(s) / float64(n)
		h -= p * math.Log(p)
	}
	return h
}

// mutualInformation returns MI (nats) of the contingency table.
func mutualInformation(c *contingency) float64 {
	var mi float64
	n := float64(c.n)
	for i, row := range c.cell {
		for j, v := range row {
			if v == 0 {
				continue
			}
			pij := float64(v) / n
			mi += pij * math.Log(n*float64(v)/(float64(c.a[i])*float64(c.b[j])))
		}
	}
	if mi < 0 {
		mi = 0 // guard against rounding
	}
	return mi
}

// NormalizedMutualInformation computes NMI with the arithmetic-mean
// normalization: MI / ((H(U)+H(V))/2). Range [0,1].
func NormalizedMutualInformation(truth, pred []int) (float64, error) {
	c, err := newContingency(truth, pred)
	if err != nil {
		return 0, err
	}
	hu, hv := entropy(c.a, c.n), entropy(c.b, c.n)
	if hu == 0 && hv == 0 {
		return 1, nil
	}
	denom := (hu + hv) / 2
	if denom == 0 {
		return 0, nil
	}
	return mutualInformation(c) / denom, nil
}

// expectedMutualInformation computes E[MI] under the permutation
// (hypergeometric) model, the exact formula used by the AMI definition.
func expectedMutualInformation(c *contingency) float64 {
	n := c.n
	fn := float64(n)
	lg := func(x int) float64 { v, _ := math.Lgamma(float64(x + 1)); return v }
	lgN := lg(n)
	var emi float64
	for i := range c.a {
		ai := c.a[i]
		if ai == 0 {
			continue
		}
		for j := range c.b {
			bj := c.b[j]
			if bj == 0 {
				continue
			}
			lo := ai + bj - n
			if lo < 1 {
				lo = 1
			}
			hi := ai
			if bj < hi {
				hi = bj
			}
			for nij := lo; nij <= hi; nij++ {
				term := float64(nij) / fn * math.Log(fn*float64(nij)/(float64(ai)*float64(bj)))
				// P(nij) from the hypergeometric distribution.
				logP := lg(ai) + lg(bj) + lg(n-ai) + lg(n-bj) -
					lgN - lg(nij) - lg(ai-nij) - lg(bj-nij) - lg(n-ai-bj+nij)
				emi += term * math.Exp(logP)
			}
		}
	}
	return emi
}

// AdjustedMutualInformation computes AMI with the arithmetic-mean
// normalization: (MI − E[MI]) / (mean(H(U),H(V)) − E[MI]). Range ≈ [-1, 1];
// 1 for identical partitions, ~0 for independent ones.
//
// The exact E[MI] computation is O(k_true·k_pred·n) in the worst case, which
// is fine for the cluster counts in this repository's experiments.
func AdjustedMutualInformation(truth, pred []int) (float64, error) {
	c, err := newContingency(truth, pred)
	if err != nil {
		return 0, err
	}
	hu, hv := entropy(c.a, c.n), entropy(c.b, c.n)
	if hu == 0 && hv == 0 {
		return 1, nil
	}
	mi := mutualInformation(c)
	emi := expectedMutualInformation(c)
	denom := (hu+hv)/2 - emi
	if math.Abs(denom) < 1e-15 {
		return 0, nil
	}
	return (mi - emi) / denom, nil
}

// Scores bundles the four indices reported in Table III of the paper.
type Scores struct {
	ACC float64
	ARI float64
	AMI float64
	FM  float64
}

// Evaluate computes all four Table-III indices for one labeling pair.
func Evaluate(truth, pred []int) (Scores, error) {
	var s Scores
	var err error
	if s.ACC, err = Accuracy(truth, pred); err != nil {
		return s, err
	}
	if s.ARI, err = AdjustedRandIndex(truth, pred); err != nil {
		return s, err
	}
	if s.AMI, err = AdjustedMutualInformation(truth, pred); err != nil {
		return s, err
	}
	if s.FM, err = FowlkesMallows(truth, pred); err != nil {
		return s, err
	}
	return s, nil
}
