package metrics

import (
	"math"
	"math/rand"
	"testing"
)

func TestHungarianKnownCases(t *testing.T) {
	tests := []struct {
		name string
		cost [][]float64
		want float64
	}{
		{
			name: "identity optimal",
			cost: [][]float64{
				{0, 5, 5},
				{5, 0, 5},
				{5, 5, 0},
			},
			want: 0,
		},
		{
			name: "anti-diagonal optimal",
			cost: [][]float64{
				{9, 9, 1},
				{9, 1, 9},
				{1, 9, 9},
			},
			want: 3,
		},
		{
			name: "classic 3x3",
			cost: [][]float64{
				{1, 2, 3},
				{2, 4, 6},
				{3, 6, 9},
			},
			want: 10, // 3 + 4 + 3
		},
		{
			name: "single cell",
			cost: [][]float64{{7}},
			want: 7,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			assign, total, err := Hungarian(tc.cost)
			if err != nil {
				t.Fatalf("Hungarian: %v", err)
			}
			if math.Abs(total-tc.want) > 1e-9 {
				t.Errorf("total = %v, want %v (assign %v)", total, tc.want, assign)
			}
			seen := make(map[int]bool)
			for _, j := range assign {
				if seen[j] {
					t.Errorf("assignment not a permutation: %v", assign)
				}
				seen[j] = true
			}
		})
	}
}

func TestHungarianRejectsBadInput(t *testing.T) {
	if _, _, err := Hungarian(nil); err == nil {
		t.Error("empty matrix: want error")
	}
	if _, _, err := Hungarian([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged matrix: want error")
	}
}

// bruteForceAssignment finds the optimal assignment by enumerating all
// permutations (n ≤ 7).
func bruteForceAssignment(cost [][]float64) float64 {
	n := len(cost)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(1)
	var recurse func(k int)
	recurse = func(k int) {
		if k == n {
			var total float64
			for i, j := range perm {
				total += cost[i][j]
			}
			if total < best {
				best = total
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			recurse(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	recurse(0)
	return best
}

// TestHungarianMatchesBruteForce is a randomized property test: the solver
// must find the same optimum as exhaustive permutation search.
func TestHungarianMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = math.Floor(rng.Float64()*100) / 10
			}
		}
		_, got, err := Hungarian(cost)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := bruteForceAssignment(cost)
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("trial %d (n=%d): Hungarian = %v, brute force = %v\ncost=%v", trial, n, got, want, cost)
		}
	}
}
