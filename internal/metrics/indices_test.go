package metrics

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPerfectPartitionScoresOne(t *testing.T) {
	truth := []int{0, 0, 1, 1, 2, 2, 2}
	// Same partition under a different labeling.
	pred := []int{2, 2, 0, 0, 1, 1, 1}
	for name, fn := range map[string]func([]int, []int) (float64, error){
		"ACC": Accuracy,
		"ARI": AdjustedRandIndex,
		"AMI": AdjustedMutualInformation,
		"NMI": NormalizedMutualInformation,
		"FM":  FowlkesMallows,
	} {
		got, err := fn(truth, pred)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !almostEqual(got, 1, 1e-9) {
			t.Errorf("%s(perfect) = %v, want 1", name, got)
		}
	}
}

func TestKnownContingencyValues(t *testing.T) {
	// 6 objects: truth {0,0,0,1,1,1}, pred groups one object wrongly.
	truth := []int{0, 0, 0, 1, 1, 1}
	pred := []int{0, 0, 1, 1, 1, 1}
	acc, err := Accuracy(truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(acc, 5.0/6, 1e-9) {
		t.Errorf("ACC = %v, want 5/6", acc)
	}
	// ARI by hand: contingency [[2,1],[0,3]]; a=[3,3], b=[2,4].
	// sumCells = C(2,2)+C(1,2)+C(3,2) = 1+0+3 = 4; sumA = 3+3 = 6;
	// sumB = 1+6 = 7; total = C(6,2)=15; E = 42/15 = 2.8;
	// max = 6.5; ARI = (4-2.8)/(6.5-2.8) = 1.2/3.7.
	ari, err := AdjustedRandIndex(truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(ari, 1.2/3.7, 1e-9) {
		t.Errorf("ARI = %v, want %v", ari, 1.2/3.7)
	}
	// FM = tp/sqrt(sumA*sumB) = 4/sqrt(42).
	fm, err := FowlkesMallows(truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fm, 4/math.Sqrt(42), 1e-9) {
		t.Errorf("FM = %v, want %v", fm, 4/math.Sqrt(42))
	}
}

func TestIndependentPartitionsScoreNearZero(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 2000
	truth := make([]int, n)
	pred := make([]int, n)
	for i := range truth {
		truth[i] = rng.Intn(4)
		pred[i] = rng.Intn(4)
	}
	ari, err := AdjustedRandIndex(truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ari) > 0.05 {
		t.Errorf("ARI(independent) = %v, want ≈ 0", ari)
	}
	ami, err := AdjustedMutualInformation(truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ami) > 0.05 {
		t.Errorf("AMI(independent) = %v, want ≈ 0", ami)
	}
}

func TestMetricErrors(t *testing.T) {
	if _, err := Accuracy([]int{0, 1}, []int{0}); err == nil {
		t.Error("length mismatch: want error")
	}
	if _, err := Accuracy(nil, nil); err == nil {
		t.Error("empty labelings: want error")
	}
	if _, err := AdjustedRandIndex([]int{-1, 0}, []int{0, 0}); err == nil {
		t.Error("negative labels: want error")
	}
}

// randomLabeling is the generator shared by the quick properties below.
type labelingPair struct {
	truth, pred []int
}

func genPair(rng *rand.Rand) labelingPair {
	n := 2 + rng.Intn(60)
	kt, kp := 1+rng.Intn(5), 1+rng.Intn(5)
	p := labelingPair{truth: make([]int, n), pred: make([]int, n)}
	for i := 0; i < n; i++ {
		p.truth[i] = rng.Intn(kt)
		p.pred[i] = rng.Intn(kp)
	}
	return p
}

func TestQuickProperties(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(values []reflect.Value, rng *rand.Rand) {
			values[0] = reflect.ValueOf(genPair(rng))
		},
	}
	t.Run("ranges", func(t *testing.T) {
		prop := func(p labelingPair) bool {
			acc, err := Accuracy(p.truth, p.pred)
			if err != nil || acc < 0 || acc > 1 {
				return false
			}
			ari, err := AdjustedRandIndex(p.truth, p.pred)
			if err != nil || ari < -1-1e-9 || ari > 1+1e-9 {
				return false
			}
			nmi, err := NormalizedMutualInformation(p.truth, p.pred)
			if err != nil || nmi < -1e-9 || nmi > 1+1e-9 {
				return false
			}
			fm, err := FowlkesMallows(p.truth, p.pred)
			return err == nil && fm >= 0 && fm <= 1+1e-9
		}
		if err := quick.Check(prop, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("pair-symmetry", func(t *testing.T) {
		// ARI, NMI, AMI and FM are symmetric in their arguments.
		prop := func(p labelingPair) bool {
			for _, fn := range []func([]int, []int) (float64, error){
				AdjustedRandIndex, NormalizedMutualInformation,
				AdjustedMutualInformation, FowlkesMallows,
			} {
				ab, err1 := fn(p.truth, p.pred)
				ba, err2 := fn(p.pred, p.truth)
				if err1 != nil || err2 != nil || !almostEqual(ab, ba, 1e-9) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(prop, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("relabel-invariance", func(t *testing.T) {
		// Permuting the prediction's label names must not change any index.
		prop := func(p labelingPair) bool {
			maxL := 0
			for _, l := range p.pred {
				if l > maxL {
					maxL = l
				}
			}
			perm := rand.New(rand.NewSource(int64(len(p.pred)))).Perm(maxL + 1)
			relabeled := make([]int, len(p.pred))
			for i, l := range p.pred {
				relabeled[i] = perm[l]
			}
			for _, fn := range []func([]int, []int) (float64, error){
				Accuracy, AdjustedRandIndex, AdjustedMutualInformation, FowlkesMallows,
			} {
				a, err1 := fn(p.truth, p.pred)
				b, err2 := fn(p.truth, relabeled)
				if err1 != nil || err2 != nil || !almostEqual(a, b, 1e-9) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(prop, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("acc-at-least-majority", func(t *testing.T) {
		// ACC under optimal matching is at least the largest class share
		// when predictions form a single cluster.
		prop := func(p labelingPair) bool {
			single := make([]int, len(p.truth))
			acc, err := Accuracy(p.truth, single)
			if err != nil {
				return false
			}
			counts := map[int]int{}
			best := 0
			for _, l := range p.truth {
				counts[l]++
				if counts[l] > best {
					best = counts[l]
				}
			}
			return almostEqual(acc, float64(best)/float64(len(p.truth)), 1e-9)
		}
		if err := quick.Check(prop, cfg); err != nil {
			t.Error(err)
		}
	})
}

func TestEvaluateBundlesAllIndices(t *testing.T) {
	truth := []int{0, 0, 1, 1}
	pred := []int{1, 1, 0, 0}
	sc, err := Evaluate(truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	if sc.ACC != 1 || !almostEqual(sc.ARI, 1, 1e-9) || !almostEqual(sc.AMI, 1, 1e-9) || !almostEqual(sc.FM, 1, 1e-9) {
		t.Errorf("Evaluate(perfect) = %+v, want all 1", sc)
	}
}

func TestAMIKnownSmall(t *testing.T) {
	// AMI of a partition against itself is 1; against its complement split
	// it should be strictly less than NMI-adjusted raw MI.
	truth := []int{0, 0, 1, 1, 0, 1, 0, 1}
	pred := []int{0, 1, 0, 1, 0, 1, 0, 1}
	ami, err := AdjustedMutualInformation(truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	nmi, err := NormalizedMutualInformation(truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	if ami > nmi+1e-9 {
		t.Errorf("AMI (%v) should not exceed NMI (%v) for imperfect partitions", ami, nmi)
	}
}
