// Package bodydraintest exercises the bodydrain analyzer: early writes with
// the body still streaming, the blessed accumulate-then-flush shape, and the
// early-error-return pattern that must stay clean.
package bodydraintest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.WriteHeader(status)
	fmt.Fprintf(w, `{"error":%q,"code":%q}`, msg, code)
}

// streamedEcho answers each line as it arrives: the bug class. The first
// Write races the client still streaming the request.
func streamedEcho(w http.ResponseWriter, r *http.Request) {
	br := bufio.NewReader(r.Body)
	for {
		line, err := br.ReadString('\n') // want `request body is read after a response write may have happened`
		if err != nil {
			return
		}
		w.Write([]byte(line)) // the write that poisons the next iteration's read
	}
}

// headerThenDecode acks before consuming the request stream.
func headerThenDecode(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusAccepted)
	var v any
	_ = json.NewDecoder(r.Body).Decode(&v) // want `request body is read after a response write may have happened`
}

// accumulateThenFlush is the blessed shape: respond only after EOF.
func accumulateThenFlush(w http.ResponseWriter, r *http.Request) {
	br := bufio.NewReader(r.Body)
	var out bytes.Buffer
	for {
		line, err := br.ReadString('\n') // ok: all writes to out, not w
		if err != nil {
			break
		}
		out.WriteString(line)
	}
	w.Write(out.Bytes())
}

// earlyErrorReturn writes on a terminated branch only: the body read below
// never follows a write on the same path.
func earlyErrorReturn(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "bad_request", "POST only")
		return
	}
	var v any
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&v); err != nil { // ok
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	w.Write([]byte("ok"))
}

// drainThenRespond drains explicitly before writing.
func drainThenRespond(w http.ResponseWriter, r *http.Request) {
	io.Copy(io.Discard, r.Body) // ok: the drain itself
	w.WriteHeader(http.StatusNoContent)
}

// writeWithoutReturnPoisonsLaterRead forgets the return after an error
// write, falling through into the body read.
func writeWithoutReturnPoisonsLaterRead(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get("Authorization") == "" {
		writeError(w, http.StatusForbidden, "forbidden", "no token")
	}
	var v any
	_ = json.NewDecoder(r.Body).Decode(&v) // want `request body is read after a response write may have happened`
}

// checkSecret is a guard helper: it writes a response only on the path
// where it returns false, and every caller returns immediately on false.
func checkSecret(w http.ResponseWriter, r *http.Request) bool {
	if r.Header.Get("Authorization") == "" {
		writeError(w, http.StatusForbidden, "forbidden", "no token")
		return false
	}
	return true
}

// guardedThenRead is the guard idiom: the helper takes the writer but only
// writes on the branch that terminates, so the later body read is clean.
func guardedThenRead(w http.ResponseWriter, r *http.Request) {
	if !checkSecret(w, r) {
		return
	}
	data, _ := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20)) // ok: guard wrote only on the returned path
	w.Write(data)
}

// guardWithoutReturn breaks the idiom: the branch does not terminate, so the
// helper's possible write survives into the body read.
func guardWithoutReturn(w http.ResponseWriter, r *http.Request) {
	if !checkSecret(w, r) {
		r.Header.Set("X-Denied", "1")
	}
	var v any
	_ = json.NewDecoder(r.Body).Decode(&v) // want `request body is read after a response write may have happened`
}

// annotated is a deliberate exception: a streaming echo endpoint.
func annotated(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	//lint:mcdcvet-ignore bodydrain streaming echo endpoint; client reads interleaved by design
	_, _ = io.Copy(w, r.Body)
}
