// Package bodydrain enforces the PR 6 HTTP/1.x rule: a handler must consume
// the request stream fully before writing any response byte. Writing early
// while the client is still streaming the body makes the server's TCP stack
// reset the connection under load, truncating the response the client sees —
// the exact bug class the wire-protocol handlers were rebuilt to avoid
// (accumulate the response, flush after EOF).
//
// The check is a lexical, branch-aware heuristic. Within any function that
// has both an http.ResponseWriter and a *http.Request parameter it walks the
// statements in order, tracking (a) aliases of r.Body created through the
// standard wrappers (bufio.NewReader, json.NewDecoder, io.LimitReader,
// http.MaxBytesReader, ...), and (b) whether a response write may already
// have happened on the current path. A branch that terminates (return,
// break, panic) does not leak its writes into the statements after it, so
// the ubiquitous "writeError(...); return" early-exit stays clean. Loop
// bodies are scanned twice so a write on iteration i followed by a body read
// on iteration i+1 is caught. Calls that receive both the writer and a body
// alias (decodeJSON, http.MaxBytesReader) count as reads, not writes — the
// callee is analyzed on its own. Deferred and go'd calls are skipped: they
// run outside the lexical order.
package bodydrain

import (
	"go/ast"
	"go/token"
	"go/types"

	"mcdc/internal/analysis"
)

// Analyzer is the bodydrain pass.
var Analyzer = &analysis.Analyzer{
	Name: "bodydrain",
	Doc: `flag handlers that may write a response before draining the request body

HTTP/1.x handlers must consume the request stream fully before the first
response byte (standing constraint, PR 6). This pass flags a read from
r.Body (or an alias of it) that a response write — w.Write, w.WriteHeader,
writeError/writeJSON, fmt.Fprint*(w, ...) — may lexically precede on the
same path. Accumulate the response in a buffer and flush after the request
stream hits EOF, or drain with io.Copy(io.Discard, r.Body) first.`,
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var ftype *ast.FuncType
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				ftype, body = fn.Type, fn.Body
			case *ast.FuncLit:
				ftype, body = fn.Type, fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			w, r := handlerParams(pass, ftype)
			if w == nil || r == nil {
				return true
			}
			c := &checker{
				pass:     pass,
				writers:  map[types.Object]bool{w: true},
				bodies:   map[types.Object]bool{},
				request:  r,
				reported: map[token.Pos]bool{},
			}
			c.walk(body.List, false)
			return true
		})
	}
	return nil, nil
}

// handlerParams returns the first http.ResponseWriter parameter and the
// first *http.Request parameter, or nils.
func handlerParams(pass *analysis.Pass, ftype *ast.FuncType) (w, r types.Object) {
	if ftype.Params == nil {
		return nil, nil
	}
	for _, field := range ftype.Params.List {
		t := pass.TypesInfo.Types[field.Type].Type
		if t == nil {
			continue
		}
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			if w == nil && analysis.NamedTypeIs(t, "net/http", "ResponseWriter") {
				w = obj
			}
			if r == nil {
				if p, ok := t.(*types.Pointer); ok && analysis.NamedTypeIs(p.Elem(), "net/http", "Request") {
					r = obj
				}
			}
		}
	}
	return w, r
}

// bodyWrappers are functions through which a body alias propagates into a
// new variable: dec := json.NewDecoder(r.Body), br := bufio.NewReader(r.Body).
var bodyWrappers = map[string]map[string]bool{
	"bufio":         {"NewReader": true, "NewReaderSize": true, "NewScanner": true},
	"encoding/json": {"NewDecoder": true},
	"encoding/xml":  {"NewDecoder": true},
	"io":            {"LimitReader": true, "TeeReader": true, "NopCloser": true},
	"net/http":      {"MaxBytesReader": true},
}

// requestBodyReaders are *http.Request methods that consume the body.
var requestBodyReaders = map[string]bool{
	"ParseForm": true, "ParseMultipartForm": true, "FormValue": true,
	"PostFormValue": true, "FormFile": true, "MultipartReader": true,
}

type checker struct {
	pass     *analysis.Pass
	writers  map[types.Object]bool // the ResponseWriter param and its aliases
	bodies   map[types.Object]bool // aliases of r.Body
	request  types.Object
	reported map[token.Pos]bool
}

// walk processes one statement list. wrote says whether a response write may
// already have happened on the path entering the list; it returns whether
// one may have happened on any path that falls out the bottom, and whether
// every path through the list terminates (return/branch/panic).
func (c *checker) walk(list []ast.Stmt, wrote bool) (bool, bool) {
	for _, stmt := range list {
		var terminated bool
		wrote, terminated = c.stmt(stmt, wrote)
		if terminated {
			return wrote, true
		}
	}
	return wrote, false
}

func (c *checker) stmt(stmt ast.Stmt, wrote bool) (bool, bool) {
	switch s := stmt.(type) {
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			wrote = c.expr(e, wrote)
		}
		return wrote, true
	case *ast.BranchStmt:
		// break/continue/goto leave this list; their effect on the wider
		// control flow is approximated as termination of this path.
		return wrote, true
	case *ast.ExprStmt:
		if isPanic(c.pass.TypesInfo, s.X) {
			return c.expr(s.X, wrote), true
		}
		return c.expr(s.X, wrote), false
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			wrote = c.expr(rhs, wrote)
		}
		c.propagateAliases(s)
		return wrote, false
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						wrote = c.expr(v, wrote)
					}
					c.propagateSpecAliases(vs)
				}
			}
		}
		return wrote, false
	case *ast.DeferStmt, *ast.GoStmt:
		return wrote, false // runs outside the lexical order; skip
	case *ast.BlockStmt:
		return c.walk(s.List, wrote)
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, wrote)
	case *ast.IfStmt:
		entry := wrote
		if s.Init != nil {
			wrote, _ = c.stmt(s.Init, wrote)
		}
		wrote = c.expr(s.Cond, wrote)
		thenWrote, thenTerm := c.walk(s.Body.List, wrote)
		elseWrote, elseTerm := wrote, false
		hasElse := s.Else != nil
		if hasElse {
			elseWrote, elseTerm = c.stmt(s.Else, wrote)
		}
		if thenTerm && !hasElse {
			// The guard idiom: `if !decodeJSON(w, r, &v) { return }`,
			// `if !s.checkFleetSecret(w, r) { return }`. The helper writes
			// only on the path that then terminates, so the continuation
			// keeps the state from before the guard.
			return entry, false
		}
		out := wrote
		if !thenTerm {
			out = out || thenWrote
		}
		if hasElse && !elseTerm {
			out = out || elseWrote
		}
		return out, thenTerm && hasElse && elseTerm
	case *ast.ForStmt:
		if s.Init != nil {
			wrote, _ = c.stmt(s.Init, wrote)
		}
		if s.Cond != nil {
			wrote = c.expr(s.Cond, wrote)
		}
		// Two passes: the second sees writes from the first, so a write on
		// one iteration followed by a body read on the next is caught.
		w1, _ := c.walk(s.Body.List, wrote)
		w2, _ := c.walk(s.Body.List, wrote || w1)
		if s.Post != nil {
			c.stmt(s.Post, w2)
		}
		return wrote || w1 || w2, false
	case *ast.RangeStmt:
		wrote = c.expr(s.X, wrote)
		w1, _ := c.walk(s.Body.List, wrote)
		w2, _ := c.walk(s.Body.List, wrote || w1)
		return wrote || w1 || w2, false
	case *ast.SwitchStmt:
		if s.Init != nil {
			wrote, _ = c.stmt(s.Init, wrote)
		}
		if s.Tag != nil {
			wrote = c.expr(s.Tag, wrote)
		}
		return c.caseClauses(s.Body, wrote)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			wrote, _ = c.stmt(s.Init, wrote)
		}
		wrote, _ = c.stmt(s.Assign, wrote)
		return c.caseClauses(s.Body, wrote)
	case *ast.SelectStmt:
		return c.caseClauses(s.Body, wrote)
	case *ast.SendStmt:
		wrote = c.expr(s.Chan, wrote)
		return c.expr(s.Value, wrote), false
	case *ast.IncDecStmt:
		return c.expr(s.X, wrote), false
	default:
		return wrote, false
	}
}

// caseClauses merges the branches of a switch/select body.
func (c *checker) caseClauses(body *ast.BlockStmt, wrote bool) (bool, bool) {
	out := wrote
	allTerm := true
	sawDefault := false
	for _, cl := range body.List {
		var list []ast.Stmt
		switch cc := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				wrote = c.expr(e, wrote)
			}
			sawDefault = sawDefault || cc.List == nil
			list = cc.Body
		case *ast.CommClause:
			if cc.Comm != nil {
				wrote, _ = c.stmt(cc.Comm, wrote)
			}
			sawDefault = sawDefault || cc.Comm == nil
			list = cc.Body
		}
		cw, ct := c.walk(list, wrote)
		if !ct {
			out = out || cw
			allTerm = false
		}
	}
	return out, allTerm && sawDefault && len(body.List) > 0
}

// expr scans one expression for read/write events in lexical order and
// returns the updated may-have-written state. Function literals are skipped.
func (c *checker) expr(e ast.Expr, wrote bool) bool {
	if e == nil {
		return wrote
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch c.classify(call) {
		case readEvent:
			if wrote {
				c.report(call.Pos())
			}
		case writeEvent:
			wrote = true
		}
		return true
	})
	return wrote
}

type eventKind int

const (
	noEvent eventKind = iota
	readEvent
	writeEvent
)

// classify decides what a call does to the response/request streams:
// touching a body alias → read; touching only the writer → write (except
// w.Header() bookkeeping); touching both → read, trusting the callee
// (decodeJSON et al.) to drain before it writes — the callee gets its own
// analysis.
func (c *checker) classify(call *ast.CallExpr) eventKind {
	readsBody := c.mentionsBody(call)
	touchesWriter := c.mentionsWriter(call)
	switch {
	case readsBody:
		return readEvent
	case touchesWriter:
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Header" && c.isWriter(sel.X) {
			return noEvent
		}
		return writeEvent
	}
	return noEvent
}

func (c *checker) report(pos token.Pos) {
	if c.reported[pos] {
		return
	}
	c.reported[pos] = true
	c.pass.Reportf(pos, "request body is read after a response write may have happened on this path; HTTP/1.x requires draining the request stream before the first response byte (PR 6) — buffer the response and flush after EOF")
}

// mentionsBody reports whether any direct child expression of call (its
// fun/receiver or arguments) references r.Body, a tracked body alias, or a
// body-consuming *http.Request method.
func (c *checker) mentionsBody(call *ast.CallExpr) bool {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if c.isBodyExpr(sel.X) {
			return true // method call on r.Body or an alias
		}
		if c.objOf(sel.X) == c.request && requestBodyReaders[sel.Sel.Name] {
			return true
		}
	}
	for _, arg := range call.Args {
		if c.containsBodyRef(arg) {
			return true
		}
	}
	return false
}

func (c *checker) mentionsWriter(call *ast.CallExpr) bool {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && c.isWriter(sel.X) {
		return true
	}
	for _, arg := range call.Args {
		found := false
		ast.Inspect(arg, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if id, ok := n.(*ast.Ident); ok && c.writers[c.pass.TypesInfo.Uses[id]] {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

func (c *checker) containsBodyRef(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if expr, ok := n.(ast.Expr); ok && c.isBodyExpr(expr) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isBodyExpr reports whether e is r.Body or a tracked alias identifier.
func (c *checker) isBodyExpr(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		return x.Sel.Name == "Body" && c.objOf(x.X) == c.request
	case *ast.Ident:
		return c.bodies[c.pass.TypesInfo.Uses[x]]
	}
	return false
}

func (c *checker) isWriter(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	return c.writers[c.pass.TypesInfo.Uses[id]]
}

func (c *checker) objOf(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return c.pass.TypesInfo.Uses[id]
}

// propagateAliases extends the alias sets through assignments: a variable
// assigned from r.Body (optionally through the standard wrapper
// constructors) becomes a body alias; one assigned from an expression
// containing the writer becomes a writer alias.
func (c *checker) propagateAliases(s *ast.AssignStmt) {
	if len(s.Lhs) == 0 || len(s.Rhs) == 0 {
		return
	}
	// Only the common 1:1 and 2:1 (val, err :=) shapes matter here.
	rhs := s.Rhs[0]
	if len(s.Rhs) == len(s.Lhs) {
		for i := range s.Lhs {
			c.propagateOne(s.Lhs[i], s.Rhs[i])
		}
		return
	}
	c.propagateOne(s.Lhs[0], rhs)
}

func (c *checker) propagateSpecAliases(vs *ast.ValueSpec) {
	if len(vs.Values) != len(vs.Names) {
		return
	}
	for i, name := range vs.Names {
		c.propagateOne(name, vs.Values[i])
	}
}

func (c *checker) propagateOne(lhs, rhs ast.Expr) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := c.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = c.pass.TypesInfo.Uses[id]
	}
	if obj == nil {
		return
	}
	if c.isBodyAliasSource(rhs) {
		c.bodies[obj] = true
		return
	}
	// Writer aliases propagate through any expression shape (statusWriter
	// wrapping, interface upcasts).
	found := false
	ast.Inspect(rhs, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if wid, ok := n.(*ast.Ident); ok && c.writers[c.pass.TypesInfo.Uses[wid]] {
			found = true
			return false
		}
		return true
	})
	if found {
		c.writers[obj] = true
	}
}

// isBodyAliasSource reports whether rhs is r.Body, an existing alias, or an
// allowlisted wrapper constructor applied (possibly nested) to one.
func (c *checker) isBodyAliasSource(rhs ast.Expr) bool {
	switch x := ast.Unparen(rhs).(type) {
	case *ast.SelectorExpr, *ast.Ident:
		return c.isBodyExpr(x.(ast.Expr))
	case *ast.CallExpr:
		fn := analysis.Callee(c.pass.TypesInfo, x)
		if fn == nil {
			return false
		}
		names := bodyWrappers[analysis.PkgPathOf(fn)]
		if names == nil || !names[fn.Name()] {
			return false
		}
		for _, arg := range x.Args {
			if c.isBodyAliasSource(arg) || c.isBodyExpr(arg) {
				return true
			}
		}
	}
	return false
}

func isPanic(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}
