package bodydrain_test

import (
	"testing"

	"mcdc/internal/analysis/analysistest"
	"mcdc/internal/analysis/passes/bodydrain"
)

func TestBodydrain(t *testing.T) {
	analysistest.Run(t, "testdata", bodydrain.Analyzer, "bodydraintest")
}
