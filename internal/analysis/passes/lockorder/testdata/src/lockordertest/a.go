// Package lockordertest exercises the lockorder analyzer against the
// gateway's locking shape.
package lockordertest

import (
	"net"
	"net/http"
	"sync"
)

type gateway struct {
	placeMu sync.RWMutex
	stateMu sync.RWMutex
	client  *http.Client
	members []string
}

func (g *gateway) inverted() {
	g.stateMu.Lock()
	g.placeMu.RLock() // want `placeMu\.RLock while holding stateMu inverts the documented placeMu → stateMu lock order`
	g.placeMu.RUnlock()
	g.stateMu.Unlock()
}

func (g *gateway) networkUnderStateMu(req *http.Request) {
	g.stateMu.Lock()
	defer g.stateMu.Unlock()
	resp, err := g.client.Do(req) // want `http\.Client\.Do under stateMu performs network I/O`
	if err == nil {
		resp.Body.Close()
	}
	if _, err := net.Dial("tcp", g.members[0]); err != nil { // want `net\.Dial under stateMu performs network I/O`
		return
	}
}

func (g *gateway) correctOrder(req *http.Request) {
	g.placeMu.RLock()
	backend := g.members[0]
	g.placeMu.RUnlock()

	resp, err := g.client.Do(req) // ok: no lock held
	if err == nil {
		resp.Body.Close()
	}

	g.stateMu.Lock()
	g.members = append(g.members, backend)
	g.stateMu.Unlock()

	// placeMu → stateMu nesting is the documented direction.
	g.placeMu.Lock()
	g.stateMu.Lock()
	g.stateMu.Unlock()
	g.placeMu.Unlock()
}

func (g *gateway) unlockedRegionAfterExplicitUnlock(req *http.Request) {
	g.stateMu.RLock()
	n := len(g.members)
	g.stateMu.RUnlock()
	if n > 0 {
		_, _ = g.client.Do(req) // ok: stateMu released above
	}
}

func (g *gateway) goroutineUnderLockIsFine() {
	g.stateMu.Lock()
	defer g.stateMu.Unlock()
	go func() {
		_, _ = net.Dial("tcp", "x") // ok: runs after the region, on its own schedule
	}()
}

func (g *gateway) annotated(req *http.Request) {
	g.stateMu.Lock()
	defer g.stateMu.Unlock()
	//lint:mcdcvet-ignore lockorder bounded probe with a 1ms client timeout, measured under the lock on purpose
	_, _ = g.client.Do(req)
}
