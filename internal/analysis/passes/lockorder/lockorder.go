// Package lockorder enforces the PR 9 gateway locking discipline: the lock
// order is placeMu → stateMu, and no network I/O ever happens while holding
// stateMu (so counters stay readable from inside membership changes that
// hold placeMu exclusively). The check is lexical, per function body —
// exactly the shape the discipline demands, since both mutexes are only ever
// acquired through their named fields.
package lockorder

import (
	"go/ast"

	"mcdc/internal/analysis"
)

// Analyzer is the lockorder pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: `flag placeMu acquisitions and network I/O under stateMu

Within a region that lexically holds a field named stateMu (between
stateMu.Lock()/RLock() and the matching Unlock, or to the end of the
function after a deferred unlock), this pass flags (1) any acquisition of a
field named placeMu — the documented order is placeMu → stateMu, so the
reverse nesting is a deadlock-in-waiting — and (2) any direct call into
http.Client/net dialing APIs — network latency under stateMu would stall
every counter reader. Function literals are not entered: a closure or
goroutine defined under the lock runs on its own schedule.`,
	Run: run,
}

const (
	stateMuName = "stateMu"
	placeMuName = "placeMu"
)

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				scanList(pass, fd.Body.List, false)
			}
		}
	}
	return nil, nil
}

// scanList walks one statement list, tracking whether stateMu is lexically
// held, flagging violations inside held regions, and recursing into nested
// lists (with fresh state for function literals).
func scanList(pass *analysis.Pass, list []ast.Stmt, held bool) {
	for _, stmt := range list {
		switch mutexOp(stmt) {
		case "Lock", "RLock":
			held = true
			continue
		case "Unlock", "RUnlock":
			held = false
			continue
		}
		if held {
			inspectHeld(pass, stmt)
		} else {
			recurse(pass, stmt)
		}
	}
}

// mutexOp classifies stmt as a stateMu operation: "Lock"/"RLock"/"Unlock"/
// "RUnlock" for plain expression statements on a stateMu field, "" otherwise.
// A deferred unlock is deliberately "" — it keeps the region open to the end
// of the list, which is exactly the deferred semantics.
func mutexOp(stmt ast.Stmt) string {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return ""
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return ""
	}
	if name, ok := fieldMethod(call, stateMuName); ok {
		return name
	}
	return ""
}

// fieldMethod reports the method name when call has the shape
// <expr>.<field>.<Method>() with the given field name.
func fieldMethod(call *ast.CallExpr, field string) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		if x.Sel.Name == field {
			return sel.Sel.Name, true
		}
	case *ast.Ident:
		if x.Name == field {
			return sel.Sel.Name, true
		}
	}
	return "", false
}

// recurse descends into stmt's nested statement lists with held=false
// untouched, looking for lock regions further down.
func recurse(pass *analysis.Pass, stmt ast.Stmt) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch b := n.(type) {
		case *ast.BlockStmt:
			scanList(pass, b.List, false)
			return false
		case *ast.FuncLit:
			scanList(pass, b.Body.List, false)
			return false
		}
		return true
	})
}

// inspectHeld flags violations anywhere inside stmt (which executes with
// stateMu held), without entering function literals.
func inspectHeld(pass *analysis.Pass, stmt ast.Stmt) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			scanList(pass, lit.Body.List, false)
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op, ok := fieldMethod(call, placeMuName); ok && (op == "Lock" || op == "RLock") {
			pass.Reportf(call.Pos(), "placeMu.%s while holding stateMu inverts the documented placeMu → stateMu lock order (gateway locking discipline, PR 9)", op)
		}
		if name := networkCall(pass, call); name != "" {
			pass.Reportf(call.Pos(), "%s under stateMu performs network I/O while holding the counter lock; move the call outside the critical section (gateway locking discipline, PR 9)", name)
		}
		return true
	})
}

// networkCall returns a display name when call goes straight into an
// http.Client or net dialing API, "" otherwise.
func networkCall(pass *analysis.Pass, call *ast.CallExpr) string {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil {
		return ""
	}
	name := fn.Name()
	switch analysis.PkgPathOf(fn) {
	case "net/http":
		switch name {
		case "Do", "Get", "Post", "PostForm", "Head":
			if analysis.IsMethod(pass.TypesInfo, call, "net/http", "Client", name) {
				return "http.Client." + name
			}
			return "http." + name
		}
	case "net":
		switch name {
		case "Dial", "DialTimeout", "DialTCP", "DialUDP", "DialIP", "DialUnix":
			return "net." + name
		case "DialContext":
			return "net.Dialer.DialContext"
		}
	case "crypto/tls":
		switch name {
		case "Dial", "DialWithDialer", "DialContext":
			return "tls." + name
		}
	}
	return ""
}
