package lockorder_test

import (
	"testing"

	"mcdc/internal/analysis/analysistest"
	"mcdc/internal/analysis/passes/lockorder"
)

func TestLockorder(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer, "lockordertest")
}
