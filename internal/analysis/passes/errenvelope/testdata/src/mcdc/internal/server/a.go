// Package server is an errenvelope fixture shadowing the real serving
// package path, with stand-ins for the envelope emitters.
package server

import (
	"bytes"
	"fmt"
	"net/http"
)

const (
	codeBadRequest   = "bad_request"
	codeUnknownModel = "unknown_model"
	codeMadeUp       = "made_up_code"
)

// writeJSON is the blessed status emitter: WriteHeader with a variable (or
// even constant) status is its job.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.WriteHeader(status)
}

// writeError emits the envelope; the real one lives in errors.go.
func writeError(w http.ResponseWriter, status int, code string, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...), "code": code})
}

func writeErrorFrame(buf *bytes.Buffer, code, msg string) {}

func handleBad(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "nope", http.StatusBadRequest) // want `http\.Error bypasses the .* envelope`
	w.WriteHeader(http.StatusBadRequest)         // want `WriteHeader\(400\) writes a bare error status`
	w.WriteHeader(503)                           // want `WriteHeader\(503\) writes a bare error status`
	writeError(w, 404, codeMadeUp, "x")          // want `writeError code "made_up_code" is not in the stable code table`
	writeError(w, 404, r.URL.Path, "x")          // want `writeError code argument must be a compile-time constant`
	var buf bytes.Buffer
	writeErrorFrame(&buf, "ad_hoc", "x") // want `writeErrorFrame code "ad_hoc" is not in the stable code table`
}

func handleGood(w http.ResponseWriter, r *http.Request, backendStatus int) {
	w.WriteHeader(http.StatusNoContent)                    // ok: success status
	w.WriteHeader(backendStatus)                           // ok: relayed variable status
	writeError(w, 400, codeBadRequest, "bad row")          // ok: table code by named constant
	writeError(w, 404, "unknown_model", "no model %q", "") // ok: table code by literal
	var buf bytes.Buffer
	writeErrorFrame(&buf, codeUnknownModel, "x") // ok
	//lint:mcdcvet-ignore errenvelope probe endpoint speaks raw status for liveness checkers
	w.WriteHeader(http.StatusServiceUnavailable)
}

// handlePairSelection is the status/code pair-selection idiom: the local
// ranges over table constants only, so the variable code argument is fine.
func handlePairSelection(w http.ResponseWriter, versionErr bool) {
	status, code := http.StatusBadRequest, codeBadRequest
	if versionErr {
		status, code = http.StatusNotFound, codeUnknownModel
	}
	writeError(w, status, code, "rejected") // ok: local assigned only table constants
}

func codeFromSomewhere() (int, string) { return 500, "bad_gateway" }

func handleOpaqueLocals(w http.ResponseWriter, versionErr bool) {
	code := codeBadRequest
	if versionErr {
		code = codeMadeUp
	}
	writeError(w, 400, code, "x") // want `writeError code argument must be a compile-time constant`

	status, relayed := codeFromSomewhere()
	writeError(w, status, relayed, "x") // want `writeError code argument must be a compile-time constant`
}
