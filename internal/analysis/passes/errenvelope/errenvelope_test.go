package errenvelope_test

import (
	"testing"

	"mcdc/internal/analysis/analysistest"
	"mcdc/internal/analysis/passes/errenvelope"
)

func TestErrenvelope(t *testing.T) {
	analysistest.Run(t, "testdata", errenvelope.Analyzer, "mcdc/internal/server")
}
