// Package errenvelope enforces the PR 6 error contract in internal/server:
// every HTTP error response is the {"error","code"} envelope emitted by
// writeError, with a code drawn from the closed, documented table. http.Error
// and hand-rolled WriteHeader(4xx/5xx) bypass the envelope (and the
// request-id / error-counter plumbing riding on it); a writeError call with
// a code outside the table would silently extend the machine contract.
package errenvelope

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"mcdc/internal/analysis"
)

// Analyzer is the errenvelope pass.
var Analyzer = &analysis.Analyzer{
	Name: "errenvelope",
	Doc: `flag error responses that bypass the {"error","code"} envelope

In internal/server packages this pass flags (1) any http.Error call, (2) any
w.WriteHeader with a constant status >= 400 outside the blessed emitters
writeError/writeJSON — relays that forward a backend's own status variable
are untouched — and (3) any writeError/writeErrorFrame call whose code
argument is not a compile-time constant from the stable code table
(bad_request, unknown_model, unknown_session, conflict, version_mismatch,
overloaded, bad_gateway, forbidden). A local variable is accepted when every
assignment to it in the enclosing function is a table constant — the
status/code pair-selection idiom. Adding a code is an API change: extend
the table in internal/server/errors.go and here, in the same commit.`,
	Run: run,
}

// stableCodes is the closed code table from internal/server/errors.go. Kept
// in lockstep by TestStableCodeTable in the server package.
var stableCodes = map[string]bool{
	"bad_request":      true,
	"unknown_model":    true,
	"unknown_session":  true,
	"conflict":         true,
	"version_mismatch": true,
	"overloaded":       true,
	"bad_gateway":      true,
	"forbidden":        true,
}

// StableCodes returns a copy of the analyzer's code table (for the lockstep
// test in the server package).
func StableCodes() map[string]bool {
	out := make(map[string]bool, len(stableCodes))
	for k, v := range stableCodes {
		out[k] = v
	}
	return out
}

// blessedEmitters may call WriteHeader with error statuses: they are the
// envelope implementation itself.
var blessedEmitters = map[string]bool{"writeError": true, "writeJSON": true}

// codeArgIndex maps the envelope emitters to the position of their code
// argument.
var codeArgIndex = map[string]int{"writeError": 2, "writeErrorFrame": 1}

func run(pass *analysis.Pass) (any, error) {
	if !analysis.PathWithin(pass.Pkg.Path(), "internal/server") {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			inEmitter := blessedEmitters[fd.Name.Name]
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				checkHTTPError(pass, call)
				if !inEmitter {
					checkWriteHeader(pass, call)
				}
				checkEnvelopeCode(pass, fd, call)
				return true
			})
		}
	}
	return nil, nil
}

func checkHTTPError(pass *analysis.Pass, call *ast.CallExpr) {
	if analysis.IsPkgFunc(pass.TypesInfo, call, "net/http", "Error") {
		pass.Reportf(call.Pos(), "http.Error bypasses the {\"error\",\"code\"} envelope; use writeError (error contract, PR 6)")
	}
}

func checkWriteHeader(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "WriteHeader" || len(call.Args) != 1 {
		return
	}
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Name() != "WriteHeader" {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil {
		return // relaying a variable status (gateway paths) is fine
	}
	status, ok := constant.Int64Val(constant.ToInt(tv.Value))
	if !ok || status < 400 {
		return
	}
	pass.Reportf(call.Pos(), "WriteHeader(%d) writes a bare error status without the {\"error\",\"code\"} envelope; use writeError (error contract, PR 6)", status)
}

func checkEnvelopeCode(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return
	}
	idx, ok := codeArgIndex[id.Name]
	if !ok || len(call.Args) <= idx {
		return
	}
	arg := call.Args[idx]
	tv, ok := pass.TypesInfo.Types[arg]
	if ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		code := constant.StringVal(tv.Value)
		if !stableCodes[code] {
			pass.Reportf(arg.Pos(), "%s code %q is not in the stable code table; codes are a machine contract — extend the table in errors.go and the errenvelope analyzer together (error contract, PR 6)", id.Name, code)
		}
		return
	}
	// Not a constant. Accept the status/code pair-selection idiom: a local
	// variable whose every assignment in the enclosing function is a table
	// constant (`status, code := 400, codeBadRequest; if ... { status, code =
	// 422, codeVersionMismatch }`).
	if v, ok := ast.Unparen(arg).(*ast.Ident); ok {
		if obj := pass.TypesInfo.Uses[v]; obj != nil && localRangesOverTable(pass, fd, obj) {
			return
		}
	}
	pass.Reportf(arg.Pos(), "%s code argument must be a compile-time constant from the stable code table, or a local assigned only table constants (error contract, PR 6)", id.Name)
}

// localRangesOverTable reports whether obj is assigned somewhere in fd and
// every assignment (including its declaration) is a constant from the stable
// code table. A single non-constant or off-table assignment disqualifies it.
func localRangesOverTable(pass *analysis.Pass, fd *ast.FuncDecl, obj types.Object) bool {
	assigned, allTable := false, true
	record := func(rhs ast.Expr) {
		assigned = true
		tv, ok := pass.TypesInfo.Types[rhs]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String || !stableCodes[constant.StringVal(tv.Value)] {
			allTable = false
		}
	}
	isObj := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return false
		}
		return pass.TypesInfo.Defs[id] == obj || pass.TypesInfo.Uses[id] == obj
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				// Multi-value form (from a call): opaque, disqualify.
				for _, l := range s.Lhs {
					if isObj(l) {
						assigned, allTable = true, false
					}
				}
				return true
			}
			for i, l := range s.Lhs {
				if isObj(l) {
					record(s.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i, name := range s.Names {
				if pass.TypesInfo.Defs[name] == obj {
					if i < len(s.Values) {
						record(s.Values[i])
					} else {
						assigned, allTable = true, false // var code string: zero value
					}
				}
			}
		case *ast.UnaryExpr:
			if s.Op == token.AND && isObj(s.X) {
				assigned, allTable = true, false // address taken: writes invisible
			}
		}
		return true
	})
	return assigned && allTable
}
