package densematrix_test

import (
	"testing"

	"mcdc/internal/analysis/analysistest"
	"mcdc/internal/analysis/passes/densematrix"
)

func TestDensematrix(t *testing.T) {
	analysistest.Run(t, "testdata", densematrix.Analyzer,
		"mcdc/internal/densetest", "outsideinternal")
}
