// Package outsideinternal proves the densematrix contract scopes to
// internal/ packages only: the public API keeps its compatibility surface.
package outsideinternal

func PairwiseSimilarity(rows [][]int) [][]float64 { // ok: not under internal/
	return nil
}
