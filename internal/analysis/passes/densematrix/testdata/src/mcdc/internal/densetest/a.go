// Package densetest exercises the densematrix analyzer.
package densetest

// PairwiseSimilarity builds the full matrix the old way.
func PairwiseSimilarity(rows [][]int) [][]float64 { // want `PairwiseSimilarity returns a dense \[\]\[\]float64`
	return nil
}

func cluster(dist [][]float64, k int) []int { // want `cluster accepts a dense \[\]\[\]float64`
	return nil
}

// weights is fine: a [][]float64 that is not pairwise data.
func updateWeights(w [][]float64) {}

// HammingMatrix is the dense shim over the condensed core, kept for callers
// that need the classic form.
func HammingMatrix(rows [][]int) [][]float64 { // ok: documented dense shim
	return nil
}

//lint:mcdcvet-ignore densematrix oracle path keeps the dense form for cross-checking
func dissimilarityOracle(dissim [][]float64) float64 {
	return dissim[0][0]
}
