// Package densematrix enforces the PR 2 storage contract: n²-sized
// similarity/dissimilarity data moves through internal code as
// *similarity.Condensed, never as dense [][]float64 — the dense form costs
// double the memory plus a pointer per row, and every dense entry point is
// supposed to be a documented compatibility shim over a condensed core.
package densematrix

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"mcdc/internal/analysis"
)

// Analyzer is the densematrix pass.
var Analyzer = &analysis.Analyzer{
	Name: "densematrix",
	Doc: `flag dense [][]float64 similarity/dissimilarity matrices in internal APIs

Condensed triangular storage (internal/similarity.Condensed) is the one
blessed representation for pairwise similarity data. A function under
internal/ that accepts or returns a [][]float64 recognizable as a
similarity/dissimilarity matrix — by a parameter or result named like sim,
dissim, dist, or proximity, or by a function name mentioning
similarity/dissimilarity/pairwise/proximity/hamming — is flagged unless its
doc comment documents it as a dense shim (the words "dense" and "shim" both
present), which keeps the compatibility surface enumerable with grep.`,
	Run: run,
}

// matrixParamRE matches parameter/result names that conventionally carry
// pairwise similarity or dissimilarity data.
var matrixParamRE = regexp.MustCompile(`(?i)^(sims?|similarit(y|ies)|dissims?|dissimilarit(y|ies)|dists?|distances?|prox|proximit(y|ies))$`)

// matrixFuncRE matches function names that announce a pairwise-matrix
// computation.
var matrixFuncRE = regexp.MustCompile(`(?i)(similarity|dissimilarity|pairwise|proximity|hamming)`)

func run(pass *analysis.Pass) (any, error) {
	if !strings.Contains(pass.Pkg.Path(), "internal/") {
		return nil, nil // the contract governs internal APIs only
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Type == nil {
				continue
			}
			if isDenseShim(fd) {
				continue
			}
			checkFieldList(pass, fd, fd.Type.Params, "accepts")
			checkFieldList(pass, fd, fd.Type.Results, "returns")
		}
	}
	return nil, nil
}

// isDenseShim reports whether the function's doc comment carries the shim
// marker: both "dense" and "shim" appearing in the text.
func isDenseShim(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	text := strings.ToLower(fd.Doc.Text())
	return strings.Contains(text, "dense") && strings.Contains(text, "shim")
}

func checkFieldList(pass *analysis.Pass, fd *ast.FuncDecl, fl *ast.FieldList, verb string) {
	if fl == nil {
		return
	}
	funcNamed := matrixFuncRE.MatchString(fd.Name.Name)
	for _, field := range fl.List {
		t := pass.TypesInfo.Types[field.Type].Type
		if t == nil || !isDenseFloatMatrix(t) {
			continue
		}
		named := false
		for _, name := range field.Names {
			if matrixParamRE.MatchString(name.Name) {
				named = true
				break
			}
		}
		if !named && !funcNamed {
			continue // a [][]float64 that does not look like pairwise data
		}
		pass.Reportf(field.Pos(), "%s %s a dense [][]float64 similarity/dissimilarity matrix; use *similarity.Condensed, or document the function as a dense shim (condensed storage contract, PR 2)", fd.Name.Name, verb)
	}
}

func isDenseFloatMatrix(t types.Type) bool {
	s1, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	s2, ok := s1.Elem().Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s2.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Float64
}
