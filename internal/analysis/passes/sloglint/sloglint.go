// Package sloglint enforces the PR 8 logging contract in the serving layer:
// structured logging flows through Config.Logger (log/slog) only. The
// standard library's global log package, builtin print/println, and ad-hoc
// fmt writes to os.Stderr all bypass the handler (and its levels, formats,
// and request-id context), so they are flagged in internal/server,
// internal/stream, and cmd/mcdcd.
package sloglint

import (
	"go/ast"
	"go/types"

	"mcdc/internal/analysis"
)

// Analyzer is the sloglint pass.
var Analyzer = &analysis.Analyzer{
	Name: "sloglint",
	Doc: `flag logging that bypasses Config.Logger (log/slog) in the serving layer

In internal/server, internal/stream, and cmd/mcdcd every log line must go
through the configured slog handler: the global log package (log.Printf,
log.Fatal, log.New, ...), the print/println builtins, and fmt.Fprint* aimed
at os.Stderr are all flagged. Writes to stdout are not logging (cmd output
is a CLI's product surface) and are not flagged.`,
	Run: run,
}

// scope lists the path fragments the contract covers.
var scope = []string{"internal/server", "internal/stream", "cmd/mcdcd"}

func run(pass *analysis.Pass) (any, error) {
	inScope := false
	for _, frag := range scope {
		if analysis.PathWithin(pass.Pkg.Path(), frag) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkCall(pass, call)
			return true
		})
	}
	return nil, nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	// Builtin print/println.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && (b.Name() == "print" || b.Name() == "println") {
			pass.Reportf(call.Pos(), "builtin %s bypasses Config.Logger; log through log/slog (logging contract, PR 8)", b.Name())
			return
		}
	}

	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	switch analysis.PkgPathOf(fn) {
	case "log":
		// Every package-level entry point of the global log package plumbs
		// around the slog handler, including log.New (a second logger) and
		// log.Default (the global one).
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
			pass.Reportf(call.Pos(), "log.%s bypasses Config.Logger; log through log/slog (logging contract, PR 8)", fn.Name())
		}
	case "fmt":
		if isFprint(fn.Name()) && len(call.Args) > 0 && isOSStderr(pass.TypesInfo, call.Args[0]) {
			pass.Reportf(call.Pos(), "fmt.%s to os.Stderr bypasses Config.Logger; log through log/slog (logging contract, PR 8)", fn.Name())
		}
	case "io":
		if fn.Name() == "WriteString" && len(call.Args) > 0 && isOSStderr(pass.TypesInfo, call.Args[0]) {
			pass.Reportf(call.Pos(), "io.WriteString to os.Stderr bypasses Config.Logger; log through log/slog (logging contract, PR 8)")
		}
	case "os":
		// os.Stderr.Write / os.Stderr.WriteString.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && isOSStderr(pass.TypesInfo, sel.X) {
			pass.Reportf(call.Pos(), "os.Stderr.%s bypasses Config.Logger; log through log/slog (logging contract, PR 8)", fn.Name())
		}
	}
}

func isFprint(name string) bool {
	return name == "Fprint" || name == "Fprintf" || name == "Fprintln"
}

// isOSStderr reports whether expr is a reference to os.Stderr.
func isOSStderr(info *types.Info, expr ast.Expr) bool {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == "os" && obj.Name() == "Stderr"
}
