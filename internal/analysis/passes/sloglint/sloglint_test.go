package sloglint_test

import (
	"testing"

	"mcdc/internal/analysis/analysistest"
	"mcdc/internal/analysis/passes/sloglint"
)

func TestSloglint(t *testing.T) {
	analysistest.Run(t, "testdata", sloglint.Analyzer,
		"mcdc/internal/server", "mcdc/cmd/mcdcd", "mcdc/internal/core")
}
