// Package mcdcd is a sloglint fixture for the daemon main package.
package mcdcd

import (
	"fmt"
	"os"
)

func usage() {
	fmt.Fprintln(os.Stderr, "mcdcd: bad flags") // want `fmt\.Fprintln to os\.Stderr bypasses Config\.Logger`
	fmt.Println("mcdcd listening")              // ok: stdout is the CLI's product surface
}
