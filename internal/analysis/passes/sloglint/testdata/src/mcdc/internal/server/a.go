// Package server is a sloglint fixture shadowing the real serving package
// path: every global-log spelling must be flagged here.
package server

import (
	"fmt"
	"log"
	"log/slog"
	"os"
)

func startup(logger *slog.Logger, err error) {
	log.Printf("starting: %v", err)           // want `log\.Printf bypasses Config\.Logger`
	log.Println("up")                         // want `log\.Println bypasses Config\.Logger`
	log.Fatal(err)                            // want `log\.Fatal bypasses Config\.Logger`
	_ = log.New(os.Stderr, "", 0)             // want `log\.New bypasses Config\.Logger`
	fmt.Fprintf(os.Stderr, "oops: %v\n", err) // want `fmt\.Fprintf to os\.Stderr bypasses Config\.Logger`
	fmt.Fprintln(os.Stderr, "oops")           // want `fmt\.Fprintln to os\.Stderr bypasses Config\.Logger`
	_, _ = os.Stderr.WriteString("raw\n")     // want `os\.Stderr\.WriteString bypasses Config\.Logger`
	println("dbg")                            // want `builtin println bypasses Config\.Logger`
	logger.Info("started", "err", err)        // ok: the contract's one true path
	fmt.Fprintf(os.Stdout, "report\n")        // ok: stdout is product output, not logging
	slog.Info("fallback")                     // ok: slog global still routes a Handler
}

func annotated(err error) {
	//lint:mcdcvet-ignore sloglint panic path before any logger exists
	log.Fatalf("config: %v", err)
}
