// Package core is a sloglint fixture outside the contract's scope: the
// training core is free to print (the experiment drivers do).
package core

import (
	"fmt"
	"log"
	"os"
)

func report() {
	log.Printf("progress")              // ok: not a serving package
	fmt.Fprintln(os.Stderr, "progress") // ok: not a serving package
}
