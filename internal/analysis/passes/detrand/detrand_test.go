package detrand_test

import (
	"testing"

	"mcdc/internal/analysis/analysistest"
	"mcdc/internal/analysis/passes/detrand"
)

func TestDetrand(t *testing.T) {
	analysistest.Run(t, "testdata", detrand.Analyzer, "detrandtest")
}
