// Package detrand enforces the PR 1 determinism contract on random-number
// use: no draws from the global math/rand state, no time-seeded generators,
// and no *rand.Rand draws inside closures handed to internal/parallel —
// every rng must be explicitly seeded and must stay on one goroutine so
// WithParallelism(1) and WithParallelism(n) remain bit-for-bit identical.
package detrand

import (
	"go/ast"
	"go/types"

	"mcdc/internal/analysis"
)

// Analyzer is the detrand pass.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc: `flag nondeterministic random-number use

The determinism contract requires every random stream to come from an
explicitly seeded *rand.Rand owned by exactly one goroutine. This pass flags
(1) calls that draw from the global math/rand (or math/rand/v2) state, such
as rand.Intn and rand.Shuffle, (2) rand.New/rand.NewSource seeded from
time.Now, and (3) any *rand.Rand method call lexically inside a function
literal passed to internal/parallel's ForEach, ForEachChunk, MapReduce, or
the Pool equivalents — a draw per task would make results depend on the
worker count.`,
	Run: run,
}

const (
	randPath   = "math/rand"
	randV2Path = "math/rand/v2"
)

// constructors are the math/rand package-level functions that build values
// rather than drawing from the global source.
var constructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // rand/v2
	"NewChaCha8": true,
}

// parallelEntryPoints are internal/parallel's fan-out functions; any rng
// draw inside a closure passed to them runs on an arbitrary worker.
var parallelEntryPoints = map[string]bool{
	"ForEach":      true,
	"ForEachChunk": true,
	"MapReduce":    true,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkGlobalDraw(pass, call)
			checkTimeSeed(pass, call)
			checkParallelClosure(pass, call)
			return true
		})
	}
	return nil, nil
}

func isRandPath(p string) bool { return p == randPath || p == randV2Path }

// checkGlobalDraw flags package-level math/rand calls that use the shared
// global source.
func checkGlobalDraw(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || !isRandPath(analysis.PkgPathOf(fn)) {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // method on *rand.Rand etc. — fine outside parallel closures
	}
	if constructors[fn.Name()] {
		return
	}
	pass.Reportf(call.Pos(), "%s.%s draws from the process-global rand state; use an explicitly seeded *rand.Rand (determinism contract, PR 1)", fn.Pkg().Name(), fn.Name())
}

// checkTimeSeed flags rand.New/rand.NewSource whose argument derives from
// time.Now — a seed that changes run to run.
func checkTimeSeed(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || !isRandPath(analysis.PkgPathOf(fn)) {
		return
	}
	if fn.Name() != "New" && fn.Name() != "NewSource" {
		return
	}
	for _, arg := range call.Args {
		found := false
		ast.Inspect(arg, func(n ast.Node) bool {
			if inner, ok := n.(*ast.CallExpr); ok {
				if analysis.IsPkgFunc(pass.TypesInfo, inner, "time", "Now") {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			pass.Reportf(call.Pos(), "rand.%s seeded from time.Now is nondeterministic; thread an explicit seed instead (determinism contract, PR 1)", fn.Name())
			return
		}
	}
}

// checkParallelClosure flags *rand.Rand method calls inside function
// literals passed to internal/parallel fan-outs.
func checkParallelClosure(pass *analysis.Pass, call *ast.CallExpr) {
	if !isParallelFanOut(pass.TypesInfo, call) {
		return
	}
	for _, arg := range call.Args {
		lit, ok := arg.(*ast.FuncLit)
		if !ok {
			continue
		}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(inner.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recv := pass.TypesInfo.Types[sel.X].Type
			if recv == nil {
				return true
			}
			if analysis.NamedTypeIs(recv, randPath, "Rand") || analysis.NamedTypeIs(recv, randV2Path, "Rand") {
				pass.Reportf(inner.Pos(), "*rand.Rand draw inside a closure passed to internal/parallel.%s: results would depend on the worker count; draw on one goroutine and pass values in (determinism contract, PR 1)", fanOutName(pass.TypesInfo, call))
			}
			return true
		})
	}
}

func isParallelFanOut(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.Callee(info, call)
	if fn == nil || !parallelEntryPoints[fn.Name()] {
		return false
	}
	return analysis.PathWithin(analysis.PkgPathOf(fn), "internal/parallel")
}

func fanOutName(info *types.Info, call *ast.CallExpr) string {
	if fn := analysis.Callee(info, call); fn != nil {
		return fn.Name()
	}
	return "ForEach"
}
