// Package detrandtest exercises the detrand analyzer: global-state draws,
// time-based seeds, and rng draws inside internal/parallel closures.
package detrandtest

import (
	"math/rand"
	"time"

	"mcdc/internal/parallel"
)

func globalDraws() {
	_ = rand.Intn(10)                  // want `rand\.Intn draws from the process-global rand state`
	rand.Shuffle(3, func(i, j int) {}) // want `rand\.Shuffle draws from the process-global rand state`
	_ = rand.Float64()                 // want `rand\.Float64 draws from the process-global rand state`
}

func timeSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `rand\.New seeded from time\.Now` `rand\.NewSource seeded from time\.Now`
}

func seededIsFine(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // ok: explicit seed
}

func drawInParallelClosure(rng *rand.Rand, out []float64) {
	_ = parallel.ForEach(0, len(out), func(i int) error {
		out[i] = rng.Float64() // want `\*rand\.Rand draw inside a closure passed to internal/parallel\.ForEach`
		return nil
	})
	_ = parallel.ForEachChunk(0, len(out), func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			out[i] = rng.NormFloat64() // want `closure passed to internal/parallel\.ForEachChunk`
		}
		return nil
	})
}

func drawOutsideClosureIsFine(rng *rand.Rand, out []float64) {
	// The contract's blessed shape: draw on one goroutine, hand values in.
	noise := make([]float64, len(out))
	for i := range noise {
		noise[i] = rng.Float64()
	}
	_ = parallel.ForEach(0, len(out), func(i int) error {
		out[i] = noise[i] * 2
		return nil
	})
}

func annotatedException(rng *rand.Rand, out []float64) {
	_ = parallel.ForEach(0, len(out), func(i int) error {
		//lint:mcdcvet-ignore detrand test fixture proving the suppression grammar works
		out[i] = rng.Float64()
		return nil
	})
}
