package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Finding is one post-suppression diagnostic, positioned and attributed.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// IgnoreAnalyzerName attributes diagnostics about the ignore comments
// themselves (malformed, unknown analyzer). These are never suppressible.
const IgnoreAnalyzerName = "ignorecheck"

// Run applies every analyzer to the package, applies ignore-comment
// suppression, and returns the surviving findings sorted by position. An
// analyzer returning an error aborts the run — that is a bug in the
// analyzer, not a finding.
func Run(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var findings []Finding
	sup := newSuppressor(pkg.Fset, pkg.Files, known, func(d Diagnostic) {
		findings = append(findings, Finding{
			Pos:      pkg.Fset.Position(d.Pos),
			Analyzer: IgnoreAnalyzerName,
			Message:  d.Message,
		})
	})

	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		pass.Report = func(d Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			if sup.suppressed(a.Name, pos) {
				return
			}
			findings = append(findings, Finding{Pos: pos, Analyzer: a.Name, Message: d.Message})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path, err)
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
