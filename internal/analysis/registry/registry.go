// Package registry enumerates the repo's analyzer suite in one place, so
// cmd/mcdcvet and its smoke test cannot drift apart: the binary serves
// exactly what All returns, and the test asserts All covers every standing
// constraint the suite exists to mechanize.
package registry

import (
	"mcdc/internal/analysis"
	"mcdc/internal/analysis/passes/bodydrain"
	"mcdc/internal/analysis/passes/densematrix"
	"mcdc/internal/analysis/passes/detrand"
	"mcdc/internal/analysis/passes/errenvelope"
	"mcdc/internal/analysis/passes/lockorder"
	"mcdc/internal/analysis/passes/sloglint"
)

// All returns the full analyzer suite in deterministic (alphabetical) order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		bodydrain.Analyzer,
		densematrix.Analyzer,
		detrand.Analyzer,
		errenvelope.Analyzer,
		lockorder.Analyzer,
		sloglint.Analyzer,
	}
}
