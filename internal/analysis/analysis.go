// Package analysis is a self-contained reimplementation of the core of
// golang.org/x/tools/go/analysis, built only on the standard library's
// go/ast, go/parser, go/build, and go/types.
//
// Why not the real thing: this module deliberately has no external
// dependencies (there is no go.sum, and CI caches key on go.mod alone), so
// the x/tools framework is not available to build against. The subset here —
// Analyzer, Pass, Diagnostic, a source-based package loader, and an
// analysistest-style runner driven by `// want` comments — is API-shaped
// like upstream so the repo's analyzers (internal/analysis/passes/...) could
// be ported to x/tools mechanically if the dependency policy ever changes.
//
// The suite exists to mechanize the repo's standing constraints (see
// ROADMAP.md): determinism of rng use under internal/parallel, condensed-only
// similarity storage, slog-only logging in the serving layer, the
// {"error","code"} envelope, the placeMu→stateMu lock order, and the
// drain-body-before-first-write HTTP rule. cmd/mcdcvet bundles every pass
// and runs in CI over ./....
//
// Deliberate exceptions are suppressed in source with
//
//	//lint:mcdcvet-ignore <analyzer> <reason>
//
// on the flagged line or the line above. The analyzer name must be one the
// driver knows and the reason must be non-empty — a malformed ignore is
// itself a diagnostic, so every suppression stays auditable.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static-analysis pass: a name (used in diagnostics
// and ignore comments), user-facing documentation, and the run function.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:mcdcvet-ignore comments. By convention it is a short
	// lowercase word ([a-z]+).
	Name string

	// Doc is the analyzer's documentation: a one-line summary, a blank
	// line, then detail.
	Doc string

	// Run applies the analyzer to a package. It reports findings through
	// pass.Report / pass.Reportf. The first result is unused today and
	// exists for upstream API parity.
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// Pass presents one package to an Analyzer.Run. All fields are read-only to
// the analyzer; findings flow back through Report.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File // parsed with comments, in deterministic file order
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one finding. The driver applies ignore-comment
	// suppression afterwards, so analyzers report unconditionally.
	Report func(Diagnostic)
}

// Reportf reports a finding at pos with a Sprintf-formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
