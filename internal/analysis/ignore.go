package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// IgnorePrefix introduces a suppression comment:
//
//	//lint:mcdcvet-ignore <analyzer> <reason>
//
// It suppresses <analyzer>'s diagnostics on its own line (trailing form) and
// on the next line (line-above form). Ignore comments stack: a run of
// consecutive ignore lines all cover the first non-ignore line below the
// run, so one statement can carry suppressions for several analyzers.
//
// Both fields are mandatory. An ignore whose analyzer is unknown to the
// driver, or whose reason is empty, is reported as a diagnostic itself —
// the audit trail the suppression grammar exists for.
const IgnorePrefix = "lint:mcdcvet-ignore"

// ignore is one parsed suppression comment.
type ignore struct {
	name   string // analyzer name ("" if malformed)
	reason string
	line   int // line the comment sits on
	pos    token.Pos
	bad    string // non-empty: why the comment is malformed
}

// parseIgnores extracts every IgnorePrefix comment from the file.
func parseIgnores(fset *token.FileSet, f *ast.File) []ignore {
	var out []ignore
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//"+IgnorePrefix)
			if !ok {
				continue
			}
			ig := ignore{line: fset.Position(c.Pos()).Line, pos: c.Pos()}
			fields := strings.Fields(text)
			switch {
			case len(fields) == 0:
				ig.bad = "missing analyzer name and reason"
			case len(fields) == 1:
				ig.name = fields[0]
				ig.bad = "missing reason"
			default:
				ig.name = fields[0]
				ig.reason = strings.Join(fields[1:], " ")
			}
			out = append(out, ig)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].line < out[j].line })
	return out
}

// suppressor answers "is analyzer X suppressed on line L of file F?".
type suppressor struct {
	// covered maps file → line → set of analyzer names suppressed there.
	covered map[string]map[int]map[string]bool
}

func newSuppressor(fset *token.FileSet, files []*ast.File, known map[string]bool, report func(Diagnostic)) *suppressor {
	s := &suppressor{covered: make(map[string]map[int]map[string]bool)}
	for _, f := range files {
		igs := parseIgnores(fset, f)
		if len(igs) == 0 {
			continue
		}
		filename := fset.Position(f.Pos()).Filename
		lines := s.covered[filename]
		if lines == nil {
			lines = make(map[int]map[string]bool)
			s.covered[filename] = lines
		}
		isIgnoreLine := make(map[int]bool, len(igs))
		for _, ig := range igs {
			isIgnoreLine[ig.line] = true
		}
		for _, ig := range igs {
			if ig.bad != "" {
				report(Diagnostic{Pos: ig.pos, Message: "malformed " + IgnorePrefix + " comment: " + ig.bad})
				continue
			}
			if !known[ig.name] {
				report(Diagnostic{Pos: ig.pos, Message: IgnorePrefix + " names unknown analyzer " + ig.name})
				continue
			}
			cover := func(line int) {
				if lines[line] == nil {
					lines[line] = make(map[string]bool)
				}
				lines[line][ig.name] = true
			}
			cover(ig.line)
			// Walk down through any stacked ignore lines to the code line
			// the run annotates.
			next := ig.line + 1
			for isIgnoreLine[next] {
				cover(next)
				next++
			}
			cover(next)
		}
	}
	return s
}

func (s *suppressor) suppressed(name string, pos token.Position) bool {
	return s.covered[pos.Filename][pos.Line][name]
}
