package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Callee resolves the function or method a call statically invokes, or nil
// for calls through function-typed values, type conversions, and builtins.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// PkgPathOf returns the import path of the package declaring fn ("" for
// builtins and method sets on universe types).
func PkgPathOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// IsPkgFunc reports whether call invokes the package-level function
// path.name (not a method).
func IsPkgFunc(info *types.Info, call *ast.CallExpr, path, name string) bool {
	fn := Callee(info, call)
	return fn != nil && fn.Name() == name && PkgPathOf(fn) == path &&
		(fn.Type().(*types.Signature)).Recv() == nil
}

// IsMethod reports whether call invokes a method named name whose receiver's
// (pointer-stripped) named type is path.typeName.
func IsMethod(info *types.Info, call *ast.CallExpr, path, typeName, name string) bool {
	fn := Callee(info, call)
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	return namedTypeIs(sig.Recv().Type(), path, typeName)
}

// namedTypeIs reports whether t (after stripping one pointer) is the named
// type path.name.
func namedTypeIs(t types.Type, path, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Name() != name {
		return false
	}
	if obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == path
}

// NamedTypeIs is the exported form of namedTypeIs for analyzers.
func NamedTypeIs(t types.Type, path, name string) bool { return namedTypeIs(t, path, name) }

// PathWithin reports whether the package import path contains the slash-
// delimited fragment — e.g. PathWithin("mcdc/internal/server", "internal/server").
// Matching by fragment (not equality) lets analysistest fixtures live under
// paths like "mcdc/internal/server" while the rule stays anchored to the
// real layout.
func PathWithin(pkgPath, fragment string) bool {
	if pkgPath == fragment {
		return true
	}
	return strings.HasSuffix(pkgPath, "/"+fragment) ||
		strings.Contains(pkgPath, "/"+fragment+"/") ||
		strings.HasPrefix(pkgPath, fragment+"/")
}
