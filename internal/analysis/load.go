package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready to be analyzed.
type Package struct {
	Path  string // import path ("mcdc/internal/server")
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages entirely from source: the module's
// own packages resolve against the module root, everything else against
// GOROOT via go/build (which also handles GOROOT's vendored deps and build
// constraints). No compiled export data, no network, no go command — so the
// same loader serves cmd/mcdcvet over the real tree and analysistest over
// fake trees under testdata/src.
//
// Dependencies are type-checked with IgnoreFuncBodies (only their exported
// shape matters) and cached per Loader, so one mcdcvet process pays for the
// net/http tree once.
type Loader struct {
	// ModRoot/ModPath anchor intra-module import resolution
	// ("<ModPath>/x/y" → "<ModRoot>/x/y").
	ModRoot string
	ModPath string

	// ExtraRoots are searched before the module and GOROOT: each is a
	// GOPATH-style src directory (analysistest passes <testdata>/src), so
	// test packages can both shadow and import real module packages.
	ExtraRoots []string

	fset     *token.FileSet
	ctxt     build.Context
	imported map[string]*types.Package
}

// NewLoader returns a Loader rooted at the module containing dir (the
// nearest enclosing go.mod). CGo is disabled in the file-selection context:
// pure-Go fallbacks (the `!cgo` halves of the stdlib) type-check cleanly
// offline, cgo halves do not.
func NewLoader(dir string) (*Loader, error) {
	root, path, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	ctxt := build.Default
	ctxt.CgoEnabled = false
	return &Loader{
		ModRoot:  root,
		ModPath:  path,
		fset:     token.NewFileSet(),
		ctxt:     ctxt,
		imported: make(map[string]*types.Package),
	}, nil
}

// Fset returns the loader's shared FileSet.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// findModule walks upward from dir to the nearest go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, path string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return dir, strings.Trim(strings.TrimSpace(rest), `"`), nil
				}
			}
			return "", "", fmt.Errorf("go.mod in %s has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// resolveDir maps an import path to its source directory: ExtraRoots first,
// then the module, then go/build (GOROOT + its vendor tree).
func (l *Loader) resolveDir(path, srcDir string) (string, error) {
	for _, root := range l.ExtraRoots {
		dir := filepath.Join(root, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, nil
		}
	}
	if path == l.ModPath {
		return l.ModRoot, nil
	}
	if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
		return filepath.Join(l.ModRoot, filepath.FromSlash(rest)), nil
	}
	bp, err := l.ctxt.Import(path, srcDir, build.FindOnly)
	if err != nil {
		return "", err
	}
	return bp.Dir, nil
}

// parseDir parses the package's non-test Go files (build-constraint
// filtered by go/build) in sorted order.
func (l *Loader) parseDir(dir string, mode parser.Mode) ([]*ast.File, error) {
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, mode)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: dependencies are loaded from
// source with function bodies ignored.
func (l *Loader) ImportFrom(path, srcDir string, _ types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.imported[path]; ok {
		return p, nil
	}
	dir, err := l.resolveDir(path, srcDir)
	if err != nil {
		return nil, err
	}
	files, err := l.parseDir(dir, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	conf := types.Config{
		Importer:         l,
		FakeImportC:      true,
		IgnoreFuncBodies: true,
		// Dependency bodies are skipped, so "declared and not used"-class
		// errors cannot arise; anything surfaced here is fatal below.
		Error: func(error) {},
	}
	p, err := conf.Check(path, l.fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("import %q: %w", path, err)
	}
	l.imported[path] = p
	return p, nil
}

// LoadDir fully parses and type-checks the package in dir under the given
// import path, with complete type information for analysis. Type errors are
// fatal: analyzers must only ever see packages that compile, the same
// guarantee go vet enjoys.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	files, err := l.parseDir(dir, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var firstErr error
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, _ := conf.Check(path, l.fset, files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, firstErr)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
