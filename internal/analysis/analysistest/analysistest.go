// Package analysistest runs an analyzer over fixture packages beneath a
// testdata/src directory and checks its diagnostics against expectations
// written in the fixtures themselves, mirroring
// golang.org/x/tools/go/analysis/analysistest (see the package comment on
// internal/analysis for why the upstream framework is not used directly).
//
// An expectation is a trailing comment of the form
//
//	// want "regexp" "another regexp"
//
// Each finding reported on that line (after //lint:mcdcvet-ignore
// suppression — so fixtures can and do test the suppression grammar) must
// match one regexp, pairing greedily in order; unmatched expectations and
// unexpected findings both fail the test.
//
// Fixture packages may import real module packages ("mcdc/internal/...") —
// the loader resolves testdata/src first, then the module, then GOROOT — so
// positive cases exercise the very APIs the analyzers guard.
package analysistest

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"mcdc/internal/analysis"
)

// Run loads each fixture package (an import path under testdata/src) and
// applies the analyzer, failing t on any mismatch between reported findings
// and // want expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	testdata, err := filepath.Abs(testdata)
	if err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewLoader(testdata)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	loader.ExtraRoots = []string{filepath.Join(testdata, "src")}
	for _, path := range paths {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(path))
		pkg, err := loader.LoadDir(dir, path)
		if err != nil {
			t.Errorf("analysistest: load %s: %v", path, err)
			continue
		}
		findings, err := analysis.Run(pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("analysistest: run %s on %s: %v", a.Name, path, err)
			continue
		}
		check(t, pkg, findings)
	}
}

// expectation is one "regexp" from a want comment.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, raw := range splitQuoted(t, pos, m[1]) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, raw, err)
						continue
					}
					wants = append(wants, &expectation{
						file: pos.Filename, line: pos.Line, re: re, raw: raw,
					})
				}
			}
		}
	}
	return wants
}

// splitQuoted parses a sequence of Go-quoted strings ("..." or `...`).
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quoted string
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) {
				if s[end] == '\\' {
					end += 2
					continue
				}
				if s[end] == '"' {
					break
				}
				end++
			}
			if end >= len(s) {
				t.Errorf("%s: unterminated want string: %s", pos, s)
				return out
			}
			quoted = s[:end+1]
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Errorf("%s: unterminated want string: %s", pos, s)
				return out
			}
			quoted = s[:end+2]
		default:
			t.Errorf("%s: want expects quoted regexps, got %q", pos, s)
			return out
		}
		unq, err := strconv.Unquote(quoted)
		if err != nil {
			t.Errorf("%s: bad want string %s: %v", pos, quoted, err)
			return out
		}
		out = append(out, unq)
		s = strings.TrimSpace(s[len(quoted):])
	}
	return out
}

func check(t *testing.T, pkg *analysis.Package, findings []analysis.Finding) {
	t.Helper()
	wants := parseWants(t, pkg.Fset, pkg.Files)
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if w.matched || w.file != f.Pos.Filename || w.line != f.Pos.Line {
				continue
			}
			if w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected finding: %s (%s)", f.Pos, f.Message, f.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.raw)
		}
	}
}
