// Package model implements versioned, persistable snapshots of learned MCDC
// state. A Snapshot freezes everything the serving path needs to answer
// "which cluster does this object belong to?" without re-learning: the
// per-granularity value-frequency tables of the pooled Γ encoding, CAME's
// granularity importances θ and converged cluster modes, and the κ hierarchy
// of the analysis. Snapshots serialize to a self-describing envelope
// (magic + kind + format version, then gzip-compressed gob), so a build that
// cannot read a file fails fast with a version error instead of decoding
// garbage.
//
// Assignment replays the learned pipeline on a fresh row: the row is first
// placed at every granularity level by maximum frequency similarity against
// that level's tables (Eq. (1) of the paper), which reconstructs its Γ
// encoding; the final cluster is then the θ-weighted nearest mode (Eq. (20)),
// exactly the rule CAME's last sweep applied to the training objects. On
// training rows of well-separated data this reproduces Cluster()'s labels
// bit-for-bit; near cluster boundaries it is the model's best online guess.
package model

import (
	"compress/gzip"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"mcdc/internal/parallel"
	"mcdc/internal/similarity"
)

// FormatVersion is the snapshot wire-format version this build reads and
// writes. Policy: the version is bumped on any incompatible change to the
// envelope or the gob payload structs; Load refuses other versions with a
// *VersionError rather than guessing. Forward compatibility is out of scope —
// re-train or convert with a build that speaks both versions.
//
// History: v1 — initial envelope; v2 — StreamState gained the ownership
// epoch (replica-promotion fencing) and the idempotent-replay cache.
const FormatVersion = 2

// magic identifies MCDC snapshot files; it is followed by a kind byte and
// the format version byte.
var magic = []byte("MCDCSNAP")

const (
	kindModel  byte = 'M' // a Snapshot
	kindStream byte = 'S' // a StreamState
)

func kindName(k byte) string {
	switch k {
	case kindModel:
		return "model"
	case kindStream:
		return "stream"
	default:
		return fmt.Sprintf("unknown(0x%02x)", k)
	}
}

// ErrNotSnapshot is returned when the input does not start with the MCDC
// snapshot magic.
var ErrNotSnapshot = errors.New("model: not an MCDC snapshot (bad magic)")

// VersionError reports a snapshot written under an incompatible format
// version.
type VersionError struct {
	Got, Want int
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("model: snapshot format version %d, this build reads version %d — re-train the model or use a matching build", e.Got, e.Want)
}

// Assignment is the serving-side counterpart of a clustering label: where a
// row lands under a frozen model.
type Assignment struct {
	// Cluster is the final cluster id, comparable to Cluster()'s labels.
	Cluster int
	// Similarity is 1 − (θ-weighted Hamming distance to the chosen mode)/Σθ:
	// 1 means the row's reconstructed encoding matches the cluster mode on
	// every granularity level.
	Similarity float64
	// Encoding is the row's reconstructed Γ row (its cluster at every
	// granularity level of the model).
	Encoding []int
}

// Snapshot is a frozen, serializable MCDC model.
type Snapshot struct {
	// Name labels the model (e.g. the training data set).
	Name string
	// Cardinalities fixes the per-feature domain sizes rows must respect.
	Cardinalities []int
	// Values, when present, is the per-feature value-label dictionary of the
	// training data (Values[r][v] is the label integer code v stood for).
	// Integer codes are a per-file artifact of CSV loading — first
	// appearance order — so scoring a different file requires re-coding its
	// labels onto this dictionary (see mcdc.Model.AssignDataset).
	Values [][]string
	// K is the number of final clusters.
	K int
	// Levels holds the frequency tables of each pooled Γ column, in column
	// order.
	Levels []*similarity.TableState
	// Theta is CAME's learned importance of each level (Σ = 1).
	Theta []float64
	// Modes[l] is final cluster l's per-level mode (K rows × len(Levels)
	// columns).
	Modes [][]int
	// Kappa is the κ hierarchy of the (first) multi-granular analysis.
	Kappa []int
	// Epoch counts re-learnings of this model line (0 for a fresh training;
	// a serving daemon increments it on every background re-learn swap).
	Epoch int
	// TrainN is the number of objects the model was learned from.
	TrainN int

	// tables are the Levels rebuilt into probe-ready form; populated by
	// Build/Load, never serialized.
	tables []*similarity.Tables
	// plan is the packed probe plan the serving fast path gathers from;
	// populated by Build/Load alongside tables (nil when the levels'
	// statistics do not share the snapshot schema — then assignInto falls
	// back to the per-feature ProbeSim loop, the cross-check oracle).
	plan *probePlan
}

// probePlan is the precomputed, gather-ready form of a snapshot's level
// tables: for every level and cluster, the per-(feature, value) probability
// float64(count)/float64(seen) laid out flat at r*stride+v — the exact
// quotients ProbeSim forms per call, computed once at Build/Load. A row is
// assigned by packing its values into flat plane indices once (one O(d)
// pass) and then summing plane entries for every cluster of every level:
// the K·σ similarity probes become branch- and division-free gather loops
// over the same indices. Terms are gathered in increasing feature order and
// invalid positions carry +0.0 (adding +0.0 to a non-negative partial sum
// is a bitwise no-op), so every probe value — and therefore every
// assignment — is bit-for-bit identical to the unpacked ProbeSim loop,
// which the property tests pin.
type probePlan struct {
	stride int
	card   []int // the snapshot schema; the in-range check for row values
	levels []probeLevel
}

// probeLevel holds one level's planes: cluster l's plane is
// plane[l*size : (l+1)*size], with size = d·stride.
type probeLevel struct {
	k     int
	size  int
	plane []float64
}

// buildPlan derives the probe plan from the snapshot's serialized level
// statistics. Levels that disagree with the schema (different stride or
// cardinalities — impossible for Build-produced snapshots, conceivable for
// hand-crafted state) leave the plan nil, keeping the slow path exact.
func (s *Snapshot) buildPlan() {
	d := len(s.Cardinalities)
	if d == 0 || len(s.Levels) == 0 {
		return
	}
	stride := s.Levels[0].Stride
	for _, st := range s.Levels {
		if st.Stride != stride || len(st.Card) != d {
			return
		}
		for r, m := range st.Card {
			if m != s.Cardinalities[r] {
				return
			}
		}
	}
	size := d * stride
	plan := &probePlan{stride: stride, card: s.Cardinalities, levels: make([]probeLevel, len(s.Levels))}
	for j, st := range s.Levels {
		plane := make([]float64, st.K*size)
		for l := 0; l < st.K; l++ {
			if st.Sizes[l] == 0 {
				// ProbeSim short-circuits empty clusters to 0; an all-zero
				// plane reproduces that even if the (corrupt) state carried
				// stray counts.
				continue
			}
			dst := plane[l*size : (l+1)*size]
			counts, seen := st.Counts[l], st.Seen[l]
			for r := 0; r < d; r++ {
				if seen[r] == 0 {
					continue
				}
				den := float64(seen[r])
				base := r * stride
				for v := 0; v < st.Card[r]; v++ {
					if c := counts[base+v]; c != 0 {
						dst[base+v] = float64(c) / den
					}
				}
			}
		}
		plan.levels[j] = probeLevel{k: st.K, size: size, plane: plane}
	}
	s.plan = plan
}

// probeGather sums the plane entries at the row's packed indices — the inner
// loop of the packed assignment fast path.
func probeGather(plane []float64, idx []int) float64 {
	var sum float64
	for _, t := range idx {
		sum += plane[t]
	}
	return sum
}

// Build freezes a trained pipeline into a Snapshot: rows and cardinalities
// describe the training data, encoding is the pooled Γ matrix (n×σ), modes
// and theta are CAME's converged state, kappa the analysis hierarchy, and k
// the number of final clusters.
func Build(rows [][]int, cardinalities []int, encoding [][]int, modes [][]int, theta []float64, kappa []int, k int) (*Snapshot, error) {
	n := len(rows)
	if n == 0 || len(encoding) != n {
		return nil, fmt.Errorf("model: %d rows against %d encoding rows", n, len(encoding))
	}
	if k <= 0 || len(modes) != k {
		return nil, fmt.Errorf("model: %d modes against k = %d", len(modes), k)
	}
	sigma := len(theta)
	if sigma == 0 || len(encoding[0]) != sigma {
		return nil, fmt.Errorf("model: encoding has %d levels, theta has %d", len(encoding[0]), sigma)
	}
	for l, mode := range modes {
		if len(mode) != sigma {
			return nil, fmt.Errorf("model: mode %d has %d levels, want %d", l, len(mode), sigma)
		}
	}
	s := &Snapshot{
		Cardinalities: append([]int(nil), cardinalities...),
		K:             k,
		Theta:         append([]float64(nil), theta...),
		Modes:         make([][]int, k),
		Kappa:         append([]int(nil), kappa...),
		TrainN:        n,
	}
	for l := range modes {
		s.Modes[l] = append([]int(nil), modes[l]...)
	}
	column := make([]int, n)
	for j := 0; j < sigma; j++ {
		// The level's slot count covers both the labels present in the
		// encoding and the mode values referring to it (an empty final
		// cluster may carry a mode above the occupied labels).
		kj := 0
		for i := range encoding {
			column[i] = encoding[i][j]
			if column[i] < 0 {
				return nil, fmt.Errorf("model: negative label in encoding column %d", j)
			}
			if column[i]+1 > kj {
				kj = column[i] + 1
			}
		}
		for l := range modes {
			if modes[l][j]+1 > kj {
				kj = modes[l][j] + 1
			}
		}
		t, err := similarity.NewTables(rows, cardinalities, kj)
		if err != nil {
			return nil, fmt.Errorf("model: level %d: %w", j, err)
		}
		for i, l := range column {
			t.Add(i, l)
		}
		s.Levels = append(s.Levels, t.State())
		s.tables = append(s.tables, t)
	}
	s.buildPlan()
	return s, nil
}

// FromLabels freezes a flat partition (e.g. from a custom final clusterer)
// into a single-level Snapshot: one frequency table over the final clusters,
// identity modes, and unit level weight. Assignment degenerates to maximum
// frequency similarity against the final clusters.
func FromLabels(rows [][]int, cardinalities []int, labels []int, k int, kappa []int) (*Snapshot, error) {
	if len(labels) != len(rows) {
		return nil, fmt.Errorf("model: %d labels against %d rows", len(labels), len(rows))
	}
	enc := make([][]int, len(rows))
	for i, l := range labels {
		enc[i] = []int{l}
	}
	modes := make([][]int, k)
	for l := range modes {
		modes[l] = []int{l}
	}
	return Build(rows, cardinalities, enc, modes, []float64{1}, kappa, k)
}

// D returns the number of raw features rows must have.
func (s *Snapshot) D() int { return len(s.Cardinalities) }

// Sigma returns the number of granularity levels in the model.
func (s *Snapshot) Sigma() int { return len(s.Levels) }

// validate checks structural invariants and rebuilds the probe tables; it is
// called by Load so a decoded snapshot is ready (and safe) to serve.
func (s *Snapshot) validate() error {
	if s.K <= 0 {
		return fmt.Errorf("model: snapshot has k = %d", s.K)
	}
	if len(s.Cardinalities) == 0 {
		return errors.New("model: snapshot has no feature schema")
	}
	sigma := len(s.Levels)
	if sigma == 0 || len(s.Theta) != sigma {
		return fmt.Errorf("model: snapshot has %d levels but %d theta weights", sigma, len(s.Theta))
	}
	if len(s.Modes) != s.K {
		return fmt.Errorf("model: snapshot has %d modes but k = %d", len(s.Modes), s.K)
	}
	s.tables = make([]*similarity.Tables, sigma)
	for j, st := range s.Levels {
		t, err := similarity.FromState(st)
		if err != nil {
			return fmt.Errorf("model: level %d: %w", j, err)
		}
		if len(st.Card) != len(s.Cardinalities) {
			return fmt.Errorf("model: level %d has %d features, schema has %d", j, len(st.Card), len(s.Cardinalities))
		}
		s.tables[j] = t
	}
	for l, mode := range s.Modes {
		if len(mode) != sigma {
			return fmt.Errorf("model: mode %d has %d levels, want %d", l, len(mode), sigma)
		}
		for j, v := range mode {
			if v < 0 || v >= s.Levels[j].K {
				return fmt.Errorf("model: mode %d refers to level-%d cluster %d of %d", l, j, v, s.Levels[j].K)
			}
		}
	}
	s.buildPlan()
	for j, th := range s.Theta {
		if math.IsNaN(th) || th < 0 {
			return fmt.Errorf("model: theta[%d] = %v", j, th)
		}
	}
	if s.Values != nil {
		if len(s.Values) != len(s.Cardinalities) {
			return fmt.Errorf("model: %d value dictionaries for %d features", len(s.Values), len(s.Cardinalities))
		}
		for r, vals := range s.Values {
			if len(vals) != s.Cardinalities[r] {
				return fmt.Errorf("model: feature %d has %d value labels for cardinality %d", r, len(vals), s.Cardinalities[r])
			}
		}
	}
	return nil
}

// Assign places one integer-coded row under the frozen model. It is safe for
// concurrent use: the snapshot is read-only after Build/Load. Each call
// allocates the result's Encoding slice; on a steady-state serving hot path
// prefer an Assigner, which reuses one scratch buffer and allocates nothing.
func (s *Snapshot) Assign(row []int) (Assignment, error) {
	if s.tables == nil {
		return Assignment{}, errors.New("model: snapshot not initialized (obtain it via Build or Load)")
	}
	return s.assignInto(row, make([]int, len(s.tables)), make([]int, 0, len(s.Cardinalities)))
}

// assignInto is Assign's allocation-free core: the level probe and the
// θ-weighted nearest-mode selection, writing the reconstructed Γ encoding
// into enc (len == Sigma) and returning it as Assignment.Encoding. Callers
// own enc's lifetime: Assign hands over a fresh slice, Assigner and
// AssignBatch reuse scratch/block storage. idx is probe scratch (capacity ≥
// the feature count): the row's in-domain values are packed into flat plane
// indices once, and every level/cluster probe of the fast path gathers over
// them — see probePlan for why the result is bit-identical to the ProbeSim
// loop, which remains both the oracle and the fallback when the snapshot
// has no plan.
func (s *Snapshot) assignInto(row []int, enc, idx []int) (Assignment, error) {
	if len(row) != len(s.Cardinalities) {
		return Assignment{}, fmt.Errorf("model: row has %d features, schema has %d", len(row), len(s.Cardinalities))
	}
	if p := s.plan; p != nil {
		idx = idx[:0]
		for r, v := range row {
			if v >= 0 && v < p.card[r] {
				idx = append(idx, r*p.stride+v)
			}
		}
		den := float64(len(row))
		for j := range p.levels {
			lv := &p.levels[j]
			best, bestSim := 0, probeGather(lv.plane[:lv.size], idx)/den
			for l := 1; l < lv.k; l++ {
				if sim := probeGather(lv.plane[l*lv.size:(l+1)*lv.size], idx) / den; sim > bestSim {
					best, bestSim = l, sim
				}
			}
			enc[j] = best
		}
	} else {
		for j, t := range s.tables {
			best, bestSim := 0, t.ProbeSim(row, 0)
			for l := 1; l < t.K(); l++ {
				if sim := t.ProbeSim(row, l); sim > bestSim {
					best, bestSim = l, sim
				}
			}
			enc[j] = best
		}
	}
	var thetaSum float64
	for _, th := range s.Theta {
		thetaSum += th
	}
	best, bestD := 0, math.Inf(1)
	for l, mode := range s.Modes {
		var d float64
		for j, e := range enc {
			if e != mode[j] {
				d += s.Theta[j]
			}
		}
		if d < bestD {
			best, bestD = l, d
		}
	}
	sim := 1.0
	if thetaSum > 0 {
		sim = 1 - bestD/thetaSum
	}
	return Assignment{Cluster: best, Similarity: sim, Encoding: enc}, nil
}

// Assigner is a reusable assignment scratch bound to one Snapshot: its
// Assign replays exactly Snapshot.Assign but writes the reconstructed
// encoding into a buffer owned by the Assigner, so the steady-state path
// performs zero allocations per call (asserted by testing.AllocsPerRun in
// the package tests, surfaced by BenchmarkServerAssign). The price of zero
// allocs is aliasing: the returned Assignment.Encoding points into the
// scratch and is valid only until the next Assign or Bind. An Assigner is
// NOT safe for concurrent use — give each goroutine its own (internal/server
// keeps them in a sync.Pool); the zero value is usable after Bind.
type Assigner struct {
	snap *Snapshot
	enc  []int
	idx  []int // packed probe-index scratch for the plan fast path
}

// NewAssigner returns an Assigner bound to the snapshot.
func (s *Snapshot) NewAssigner() *Assigner {
	a := &Assigner{}
	a.Bind(s)
	return a
}

// Bind points the assigner at snap, growing the scratches only when snap has
// more granularity levels (or features, for the packed probe index) than any
// snapshot bound before — rebinding across hot swaps of same-shaped models
// allocates nothing.
func (a *Assigner) Bind(s *Snapshot) {
	a.snap = s
	if cap(a.enc) < len(s.tables) {
		a.enc = make([]int, len(s.tables))
	}
	a.enc = a.enc[:len(s.tables)]
	if cap(a.idx) < len(s.Cardinalities) {
		a.idx = make([]int, 0, len(s.Cardinalities))
	}
	a.idx = a.idx[:0]
}

// Unbind drops the assigner's snapshot reference while keeping its scratch,
// so a pooled assigner does not pin a retired model in memory between
// requests (the serving daemon unbinds before returning one to its pool).
func (a *Assigner) Unbind() { a.snap = nil }

// Assign places one row under the bound snapshot. See the type comment for
// the Encoding aliasing contract.
func (a *Assigner) Assign(row []int) (Assignment, error) {
	if a.snap == nil {
		return Assignment{}, errors.New("model: assigner not bound to a snapshot")
	}
	if a.snap.tables == nil {
		return Assignment{}, errors.New("model: snapshot not initialized (obtain it via Build or Load)")
	}
	return a.snap.assignInto(row, a.enc, a.idx)
}

// AssignBatch assigns every row, fanning the independent per-row probes out
// over at most `workers` goroutines (≤ 0 → GOMAXPROCS) through
// internal/parallel. Each chunk writes only its own result slots and every
// assignment is a pure function of the frozen snapshot, so the output is
// bit-for-bit identical at any parallelism level. All per-row encodings are
// carved out of one backing block (full slices, so appending to one cannot
// clobber a neighbour), which keeps the fan-out at O(1) allocations per
// batch instead of one per row.
func (s *Snapshot) AssignBatch(rows [][]int, workers int) ([]Assignment, error) {
	if s.tables == nil {
		return nil, errors.New("model: snapshot not initialized (obtain it via Build or Load)")
	}
	out := make([]Assignment, len(rows))
	sigma := len(s.tables)
	block := make([]int, len(rows)*sigma)
	err := parallel.ForEachChunk(parallel.Gate(workers, len(rows)*len(s.Cardinalities)*sigma), len(rows),
		func(lo, hi int) error {
			idx := make([]int, 0, len(s.Cardinalities)) // one probe scratch per chunk
			for i := lo; i < hi; i++ {
				a, err := s.assignInto(rows[i], block[i*sigma:(i+1)*sigma:(i+1)*sigma], idx)
				if err != nil {
					return fmt.Errorf("row %d: %w", i, err)
				}
				out[i] = a
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Save writes the snapshot to w in the versioned envelope format.
func (s *Snapshot) Save(w io.Writer) error {
	return writeEnvelope(w, kindModel, s)
}

// SaveFile atomically writes the snapshot to path (temp file + rename), so a
// serving daemon never observes a half-written model.
func (s *Snapshot) SaveFile(path string) error {
	return saveFile(path, func(w io.Writer) error { return s.Save(w) })
}

// Load reads a model snapshot from r, verifying magic, kind, and format
// version, and validates it ready for serving.
func Load(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := readEnvelope(r, kindModel, &s); err != nil {
		return nil, err
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadFile reads a model snapshot from a file.
func LoadFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("model: %w", err)
	}
	defer f.Close()
	s, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("model: load %s: %w", path, err)
	}
	return s, nil
}

func saveFile(path string, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("model: %w", err)
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("model: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("model: %w", err)
	}
	return nil
}

// writeEnvelope frames a gob payload as magic + kind + version + gzip(gob).
func writeEnvelope(w io.Writer, kind byte, payload any) error {
	if _, err := w.Write(magic); err != nil {
		return fmt.Errorf("model: write header: %w", err)
	}
	if _, err := w.Write([]byte{kind, FormatVersion}); err != nil {
		return fmt.Errorf("model: write header: %w", err)
	}
	zw := gzip.NewWriter(w)
	if err := gob.NewEncoder(zw).Encode(payload); err != nil {
		zw.Close()
		return fmt.Errorf("model: encode snapshot: %w", err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("model: flush snapshot: %w", err)
	}
	return nil
}

// readEnvelope verifies the header and decodes the gob payload. The version
// check runs before any gob decoding, so an incompatible file reports a
// *VersionError instead of a confusing decode failure.
func readEnvelope(r io.Reader, kind byte, payload any) error {
	hdr := make([]byte, len(magic)+2)
	if _, err := io.ReadFull(r, hdr); err != nil {
		// A short file is "not a snapshot"; any other read failure is a real
		// I/O error and must surface as such, not as a corruption verdict.
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return ErrNotSnapshot
		}
		return fmt.Errorf("model: read snapshot header: %w", err)
	}
	for i := range magic {
		if hdr[i] != magic[i] {
			return ErrNotSnapshot
		}
	}
	gotKind, gotVersion := hdr[len(magic)], int(hdr[len(magic)+1])
	if gotVersion != FormatVersion {
		return &VersionError{Got: gotVersion, Want: FormatVersion}
	}
	if gotKind != kind {
		return fmt.Errorf("model: file holds a %s snapshot, expected %s", kindName(gotKind), kindName(kind))
	}
	zr, err := gzip.NewReader(r)
	if err != nil {
		return fmt.Errorf("model: decompress snapshot: %w", err)
	}
	defer zr.Close()
	if err := gob.NewDecoder(zr).Decode(payload); err != nil {
		return fmt.Errorf("model: decode snapshot: %w", err)
	}
	return nil
}
