package model

import (
	"bufio"
	"bytes"
	"math"
	"reflect"
	"testing"
)

// fuzzSeedStream builds a well-formed wire stream covering every frame kind,
// used both as an f.Add seed and by the committed corpus generator.
func fuzzSeedStream() []byte {
	var buf bytes.Buffer
	if err := WriteWireHeader(&buf); err != nil {
		panic(err)
	}
	must := func(kind byte, payload []byte) {
		if err := WriteFrame(&buf, kind, payload); err != nil {
			panic(err)
		}
	}
	must(FrameAssign, AppendAssignRequest(nil, "m", "", []int{1, -1, 3, 70000}))
	must(FrameBatchStart, AppendBatchStart(nil, "m"))
	must(FrameRows, AppendRows(nil, [][]int{{0, 1}, {-1, -9}, nil}))
	must(FrameBatchInfo, AppendBatchInfo(nil, "m", 3))
	must(FrameResults, AppendResults(nil, []Assignment{
		{Cluster: 1, Similarity: 0.25, Encoding: []int{0, 2}},
		{Cluster: 0, Similarity: math.Inf(1)},
	}))
	must(FrameResult, AppendResult(nil, Assignment{Cluster: 2, Similarity: 0.5, Encoding: []int{1, 0}}, 7))
	must(FrameError, AppendError(nil, "model_not_found", "no such model"))
	must(FrameEnd, nil)
	return buf.Bytes()
}

// sameAssignment compares assignments with NaN-safe float identity (the wire
// codec promises the IEEE bit pattern survives, which DeepEqual can't check).
func sameAssignment(a, b Assignment) bool {
	return a.Cluster == b.Cluster &&
		math.Float64bits(a.Similarity) == math.Float64bits(b.Similarity) &&
		reflect.DeepEqual(a.Encoding, b.Encoding)
}

// FuzzWireFrames throws arbitrary bytes at the stream reader and every
// payload decoder. Invariants: no panics, no runaway allocations (the
// MaxFramePayload guard), and — whenever a payload decodes cleanly — the
// decode→re-encode→re-decode round trip is lossless. (Byte-level
// canonicality is NOT an invariant: uvarints accept non-minimal encodings,
// so the second decode is compared, not the re-encoded bytes.)
func FuzzWireFrames(f *testing.F) {
	valid := fuzzSeedStream()
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // truncated mid-frame
	f.Add([]byte("MCDCWIRE\x02"))
	f.Add([]byte("NOTAWIRE\x01"))
	f.Add(append(append([]byte("MCDCWIRE\x01"), FrameAssign), 0xff, 0xff, 0xff, 0xff, 0x7f))
	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		if err := ReadWireHeader(br); err != nil {
			return
		}
		for frames := 0; frames < 1<<10; frames++ {
			kind, payload, err := ReadFrame(br)
			if err != nil {
				return
			}
			switch kind {
			case FrameAssign:
				if m, s, row, err := DecodeAssignRequest(payload); err == nil {
					m2, s2, row2, err2 := DecodeAssignRequest(AppendAssignRequest(nil, m, s, row))
					if err2 != nil || m2 != m || s2 != s || !reflect.DeepEqual(row2, row) {
						t.Fatalf("assign round trip: (%q,%q,%v) → (%q,%q,%v), err %v", m, s, row, m2, s2, row2, err2)
					}
				}
			case FrameResult:
				if a, epoch, err := DecodeResult(payload); err == nil {
					a2, epoch2, err2 := DecodeResult(AppendResult(nil, a, epoch))
					if err2 != nil || epoch2 != epoch || !sameAssignment(a, a2) {
						t.Fatalf("result round trip: (%+v,%d) → (%+v,%d), err %v", a, epoch, a2, epoch2, err2)
					}
				}
			case FrameBatchStart:
				if name, err := DecodeBatchStart(payload); err == nil {
					name2, err2 := DecodeBatchStart(AppendBatchStart(nil, name))
					if err2 != nil || name2 != name {
						t.Fatalf("batch start round trip: %q → %q, err %v", name, name2, err2)
					}
				}
			case FrameBatchInfo:
				if name, epoch, err := DecodeBatchInfo(payload); err == nil {
					name2, epoch2, err2 := DecodeBatchInfo(AppendBatchInfo(nil, name, epoch))
					if err2 != nil || name2 != name || epoch2 != epoch {
						t.Fatalf("batch info round trip: (%q,%d) → (%q,%d), err %v", name, epoch, name2, epoch2, err2)
					}
				}
			case FrameRows:
				if rows, err := DecodeRows(payload); err == nil {
					rows2, err2 := DecodeRows(AppendRows(nil, rows))
					if err2 != nil || !reflect.DeepEqual(rows2, rows) {
						t.Fatalf("rows round trip: %v → %v, err %v", rows, rows2, err2)
					}
				}
			case FrameResults:
				if as, err := DecodeResults(payload, nil); err == nil {
					as2, err2 := DecodeResults(AppendResults(nil, as), nil)
					if err2 != nil || len(as2) != len(as) {
						t.Fatalf("results round trip: %d assignments → %d, err %v", len(as), len(as2), err2)
					}
					for i := range as {
						if !sameAssignment(as[i], as2[i]) {
							t.Fatalf("results round trip: assignment %d: %+v → %+v", i, as[i], as2[i])
						}
					}
				}
			case FrameError:
				if code, msg, err := DecodeError(payload); err == nil {
					code2, msg2, err2 := DecodeError(AppendError(nil, code, msg))
					if err2 != nil || code2 != code || msg2 != msg {
						t.Fatalf("error round trip: (%q,%q) → (%q,%q), err %v", code, msg, code2, msg2, err2)
					}
				}
			}
		}
	})
}

// FuzzAssignRoundTrip is the structured twin of FuzzWireFrames: instead of
// hoping the mutator finds valid payloads, it builds them from fuzzed values
// (including NaN/±Inf similarities and out-of-domain negative row codes) and
// requires the encode→decode round trip to be lossless.
func FuzzAssignRoundTrip(f *testing.F) {
	f.Add("m", "", []byte{1, 2, 3}, 2, 0.75, 7)
	f.Add("", "s-1", []byte{255, 0, 128}, 0, math.Inf(-1), -1)
	f.Add("x", "y", []byte{}, -5, math.NaN(), 1<<40)
	f.Fuzz(func(t *testing.T, modelName, session string, rowBytes []byte, cluster int, sim float64, epoch int) {
		if len(rowBytes) > 4096 {
			t.Skip()
		}
		row := make([]int, len(rowBytes))
		for i, b := range rowBytes {
			row[i] = int(int8(b)) // include out-of-domain negatives
		}
		if len(row) == 0 {
			row = nil // appendInts(len 0) decodes to nil
		}

		m2, s2, row2, err := DecodeAssignRequest(AppendAssignRequest(nil, modelName, session, row))
		if err != nil || m2 != modelName || s2 != session || !reflect.DeepEqual(row2, row) {
			t.Fatalf("assign: (%q,%q,%v) → (%q,%q,%v), err %v", modelName, session, row, m2, s2, row2, err)
		}

		a := Assignment{Cluster: cluster, Similarity: sim, Encoding: row}
		a2, epoch2, err := DecodeResult(AppendResult(nil, a, epoch))
		if err != nil || epoch2 != epoch || !sameAssignment(a, a2) {
			t.Fatalf("result: (%+v,%d) → (%+v,%d), err %v", a, epoch, a2, epoch2, err)
		}

		name2, epoch2, err := DecodeBatchInfo(AppendBatchInfo(nil, modelName, epoch))
		if err != nil || name2 != modelName || epoch2 != epoch {
			t.Fatalf("batch info: (%q,%d) → (%q,%d), err %v", modelName, epoch, name2, epoch2, err)
		}

		rows := [][]int{row, nil, {cluster}}
		rows2, err := DecodeRows(AppendRows(nil, rows))
		if err != nil || !reflect.DeepEqual(rows2, rows) {
			t.Fatalf("rows: %v → %v, err %v", rows, rows2, err)
		}

		code2, msg2, err := DecodeError(AppendError(nil, modelName, session))
		if err != nil || code2 != modelName || msg2 != session {
			t.Fatalf("error: (%q,%q) → (%q,%q), err %v", modelName, session, code2, msg2, err)
		}
	})
}
