package model

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"mcdc/internal/core"
	"mcdc/internal/datasets"
)

// trainSnapshot runs the full MCDC pipeline on a separable synthetic set and
// freezes it.
func trainSnapshot(t *testing.T, n, d, k int, seed int64) (*Snapshot, *core.MCDCResult, [][]int) {
	t.Helper()
	ds := datasets.Synthetic("train", n, d, k, 0.9, rand.New(rand.NewSource(seed)))
	res, err := core.RunMCDC(ds.Rows, ds.Cardinalities(), core.MCDCConfig{
		MGCPL: core.MGCPLConfig{Rand: rand.New(rand.NewSource(seed))},
		CAME:  core.CAMEConfig{K: k},
	})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := Build(ds.Rows, ds.Cardinalities(), res.Encoding, res.CAME.Modes, res.CAME.Theta, res.MGCPL.Kappa(), k)
	if err != nil {
		t.Fatal(err)
	}
	return snap, res, ds.Rows
}

// TestAssignReproducesTraining pins the serving contract: on well-separated
// training data, Assign returns exactly the labels Cluster() produced.
func TestAssignReproducesTraining(t *testing.T) {
	snap, res, rows := trainSnapshot(t, 400, 8, 3, 7)
	for i, row := range rows {
		a, err := snap.Assign(row)
		if err != nil {
			t.Fatal(err)
		}
		if a.Cluster != res.Labels[i] {
			t.Fatalf("row %d: model assigned %d, training labeled %d", i, a.Cluster, res.Labels[i])
		}
		if a.Similarity < 0 || a.Similarity > 1 {
			t.Fatalf("row %d: similarity %v outside [0,1]", i, a.Similarity)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	snap, _, rows := trainSnapshot(t, 300, 6, 3, 11)
	snap.Name = "round-trip"
	var buf bytes.Buffer
	if err := snap.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name != "round-trip" || loaded.K != snap.K || loaded.TrainN != snap.TrainN {
		t.Fatalf("metadata changed across round-trip: %+v", loaded)
	}
	if !reflect.DeepEqual(loaded.Kappa, snap.Kappa) || !reflect.DeepEqual(loaded.Theta, snap.Theta) {
		t.Fatal("kappa/theta changed across round-trip")
	}
	// Bit-stability: the loaded model must assign identically to the source.
	for _, row := range rows {
		want, err := snap.Assign(row)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Assign(row)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("assignment diverged after round-trip: %+v vs %+v", want, got)
		}
	}
}

func TestSaveFileAtomicAndLoadFile(t *testing.T) {
	snap, _, _ := trainSnapshot(t, 200, 5, 2, 3)
	path := filepath.Join(t.TempDir(), "m.bin")
	if err := snap.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
	if _, err := LoadFile(path); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRejectsGarbageAndVersions(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a snapshot at all"))); err != ErrNotSnapshot {
		t.Fatalf("garbage: got %v, want ErrNotSnapshot", err)
	}
	if _, err := Load(bytes.NewReader([]byte("MC"))); err != ErrNotSnapshot {
		t.Fatalf("truncated: got %v, want ErrNotSnapshot", err)
	}

	snap, _, _ := trainSnapshot(t, 100, 4, 2, 5)
	var buf bytes.Buffer
	if err := snap.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Flip the version byte: must fail with a VersionError before any gob
	// decoding happens.
	bad := append([]byte(nil), raw...)
	bad[len(magic)+1] = FormatVersion + 1
	var verr *VersionError
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("future version accepted")
	} else if !errors.As(err, &verr) {
		t.Fatalf("future version: got %v, want *VersionError", err)
	} else if verr.Got != FormatVersion+1 || verr.Want != FormatVersion {
		t.Fatalf("version error carries %+v", verr)
	}

	// Wrong kind: a stream checkpoint is not a model.
	bad = append([]byte(nil), raw...)
	bad[len(magic)] = kindStream
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("wrong kind accepted")
	}

	// A pre-epoch checkpoint (format version 1, before OwnerEpoch and the
	// replay cache) must be refused with a VersionError, never handed to gob.
	bad = append([]byte(nil), raw...)
	bad[len(magic)+1] = 1
	verr = nil
	if _, err := Load(bytes.NewReader(bad)); !errors.As(err, &verr) {
		t.Fatalf("v1 snapshot: got %v, want *VersionError", err)
	} else if verr.Got != 1 || verr.Want != FormatVersion {
		t.Fatalf("v1 version error carries %+v", verr)
	}
}

func TestAssignValidation(t *testing.T) {
	snap, _, _ := trainSnapshot(t, 100, 4, 2, 9)
	if _, err := snap.Assign([]int{0}); err == nil {
		t.Fatal("wrong row width accepted")
	}
	var raw Snapshot // never went through Build/Load
	if _, err := raw.Assign(make([]int, 0)); err == nil {
		t.Fatal("uninitialized snapshot served an assignment")
	}
	// Out-of-domain values are tolerated (treated as no-match, not a crash).
	a, err := snap.Assign([]int{99, -1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cluster < 0 || a.Cluster >= snap.K {
		t.Fatalf("out-of-domain row landed in cluster %d of %d", a.Cluster, snap.K)
	}
}

// TestAssignBatchParallelEquivalence pins the determinism contract for the
// serving fan-out: batch assignment is bit-for-bit identical at any
// parallelism level and matches the one-by-one path.
func TestAssignBatchParallelEquivalence(t *testing.T) {
	snap, _, rows := trainSnapshot(t, 500, 8, 3, 13)
	seq, err := snap.AssignBatch(rows, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, runtime.GOMAXPROCS(0)} {
		par, err := snap.AssignBatch(rows, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("workers=%d diverged from sequential batch", workers)
		}
	}
	for i, row := range rows {
		one, err := snap.Assign(row)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(one, seq[i]) {
			t.Fatalf("row %d: batch %+v vs single %+v", i, seq[i], one)
		}
	}
}

func TestFromLabelsFlatModel(t *testing.T) {
	ds := datasets.Synthetic("flat", 300, 6, 3, 0.9, rand.New(rand.NewSource(21)))
	snap, err := FromLabels(ds.Rows, ds.Cardinalities(), ds.Labels, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for i, row := range ds.Rows {
		a, err := snap.Assign(row)
		if err != nil {
			t.Fatal(err)
		}
		if a.Cluster == ds.Labels[i] {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(ds.Rows)); frac < 0.95 {
		t.Fatalf("flat model agreement %v on separable data, want ≥ 0.95", frac)
	}
}

func TestBuildValidation(t *testing.T) {
	rows := [][]int{{0, 1}, {1, 0}}
	card := []int{2, 2}
	if _, err := Build(nil, card, nil, nil, nil, nil, 1); err == nil {
		t.Fatal("empty build accepted")
	}
	if _, err := Build(rows, card, [][]int{{0}, {1}}, [][]int{{0}}, []float64{1}, nil, 2); err == nil {
		t.Fatal("mode count ≠ k accepted")
	}
	if _, err := Build(rows, card, [][]int{{0}, {1}}, [][]int{{0}, {1, 1}}, []float64{1}, nil, 2); err == nil {
		t.Fatal("ragged mode accepted")
	}
	if _, err := Build(rows, card, [][]int{{0, 0}, {1, 1}}, [][]int{{0}, {1}}, []float64{1}, nil, 2); err == nil {
		t.Fatal("encoding/theta width mismatch accepted")
	}
}

func TestStreamStateRoundTrip(t *testing.T) {
	st := &StreamState{
		Cardinalities: []int{2, 3},
		WindowSize:    4,
		RefreshEvery:  4,
		Window:        [][]int{{0, 1}, {1, 2}},
		Next:          0,
		K:             2,
		Epoch:         3,
		Kappa:         []int{5, 2},
		RandSeed:      42,
	}
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, got) {
		t.Fatalf("stream state changed across round-trip:\n%+v\n%+v", st, got)
	}
	// A model file is not a stream checkpoint.
	snap, _, _ := trainSnapshot(t, 100, 4, 2, 5)
	buf.Reset()
	if err := snap.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadStream(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("model snapshot accepted as stream checkpoint")
	}
}

// TestAssignerMatchesAssign pins the scratch path against the allocating
// path row by row (cluster, similarity, and encoding values), and the
// aliasing contract: the returned encoding lives in the assigner's scratch.
func TestAssignerMatchesAssign(t *testing.T) {
	snap, _, rows := trainSnapshot(t, 300, 7, 3, 13)
	a := snap.NewAssigner()
	var prev []int
	for i, row := range rows {
		want, err := snap.Assign(row)
		if err != nil {
			t.Fatal(err)
		}
		got, err := a.Assign(row)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cluster != want.Cluster || got.Similarity != want.Similarity {
			t.Fatalf("row %d: assigner (%d, %v) vs snapshot (%d, %v)", i, got.Cluster, got.Similarity, want.Cluster, want.Similarity)
		}
		if !reflect.DeepEqual(got.Encoding, want.Encoding) {
			t.Fatalf("row %d: assigner encoding %v vs %v", i, got.Encoding, want.Encoding)
		}
		if prev != nil && &got.Encoding[0] != &prev[0] {
			t.Fatal("assigner did not reuse its scratch encoding")
		}
		prev = got.Encoding
	}
}

// TestAssignerZeroAllocs is the allocation gate of the serving hot path: a
// bound Assigner must assign in 0 allocs/op at steady state.
func TestAssignerZeroAllocs(t *testing.T) {
	snap, _, rows := trainSnapshot(t, 200, 6, 3, 17)
	a := snap.NewAssigner()
	row := rows[0]
	if _, err := a.Assign(row); err != nil { // warm-up
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := a.Assign(row); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Assigner.Assign allocates %v/op at steady state, want 0", allocs)
	}
	// Rebinding to the same-shaped snapshot must not allocate either (the
	// serving daemon rebinds a pooled assigner on every request).
	allocs = testing.AllocsPerRun(200, func() {
		a.Bind(snap)
		if _, err := a.Assign(row); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Bind+Assign allocates %v/op at steady state, want 0", allocs)
	}
}

// TestAssignerValidation mirrors Assign's error cases on the scratch path.
func TestAssignerValidation(t *testing.T) {
	var unbound Assigner
	if _, err := unbound.Assign([]int{0}); err == nil {
		t.Error("unbound assigner: want error")
	}
	snap, _, _ := trainSnapshot(t, 120, 5, 2, 19)
	a := snap.NewAssigner()
	if _, err := a.Assign([]int{0, 1}); err == nil {
		t.Error("short row: want error")
	}
}

// TestAssignBatchEncodingsIndependent pins the block-carved encodings: they
// must equal the per-row path and appending to one must not clobber its
// neighbour.
func TestAssignBatchEncodingsIndependent(t *testing.T) {
	snap, _, rows := trainSnapshot(t, 150, 6, 3, 23)
	batch, err := snap.AssignBatch(rows, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range rows {
		want, err := snap.Assign(row)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batch[i].Encoding, want.Encoding) {
			t.Fatalf("row %d: batch encoding %v vs %v", i, batch[i].Encoding, want.Encoding)
		}
	}
	before := append([]int(nil), batch[1].Encoding...)
	_ = append(batch[0].Encoding, 99) // full slice: must reallocate, not spill
	if !reflect.DeepEqual(batch[1].Encoding, before) {
		t.Fatal("appending to one batch encoding clobbered its neighbour")
	}
}
