//go:build ignore

// gen.go regenerates the committed fuzz seed corpora for internal/model and
// internal/similarity. The files are ordinary `go test fuzz v1` corpus
// entries, so `go test` replays them on every run and `go test -fuzz` mutates
// outward from them. Run from the repo root:
//
//	go run internal/model/testdata/fuzz/gen.go
package main

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"

	"mcdc/internal/model"
)

func main() {
	// A well-formed wire stream covering every frame kind (mirrors the
	// fuzzSeedStream helper in wire_fuzz_test.go).
	var buf bytes.Buffer
	check(model.WriteWireHeader(&buf))
	frame := func(kind byte, payload []byte) { check(model.WriteFrame(&buf, kind, payload)) }
	frame(model.FrameAssign, model.AppendAssignRequest(nil, "m", "", []int{1, -1, 3, 70000}))
	frame(model.FrameBatchStart, model.AppendBatchStart(nil, "m"))
	frame(model.FrameRows, model.AppendRows(nil, [][]int{{0, 1}, {-1, -9}, nil}))
	frame(model.FrameBatchInfo, model.AppendBatchInfo(nil, "m", 3))
	frame(model.FrameResults, model.AppendResults(nil, []model.Assignment{
		{Cluster: 1, Similarity: 0.25, Encoding: []int{0, 2}},
		{Cluster: 0, Similarity: math.Inf(1)},
	}))
	frame(model.FrameResult, model.AppendResult(nil, model.Assignment{Cluster: 2, Similarity: 0.5, Encoding: []int{1, 0}}, 7))
	frame(model.FrameError, model.AppendError(nil, "model_not_found", "no such model"))
	frame(model.FrameEnd, nil)
	valid := buf.Bytes()

	truncated := valid[:len(valid)-3]
	badVersion := []byte("MCDCWIRE\x02")
	badMagic := []byte("NOTAWIRE\x01")
	hugeLength := append(append([]byte("MCDCWIRE\x01"), model.FrameAssign), 0xff, 0xff, 0xff, 0xff, 0x7f)

	write("internal/model/testdata/fuzz/FuzzWireFrames/valid-stream", b(valid))
	write("internal/model/testdata/fuzz/FuzzWireFrames/truncated-frame", b(truncated))
	write("internal/model/testdata/fuzz/FuzzWireFrames/bad-version", b(badVersion))
	write("internal/model/testdata/fuzz/FuzzWireFrames/bad-magic", b(badMagic))
	write("internal/model/testdata/fuzz/FuzzWireFrames/huge-length", b(hugeLength))

	write("internal/model/testdata/fuzz/FuzzAssignRoundTrip/basic",
		s("m"), s(""), b([]byte{1, 2, 3}), i(2), fl(0.75), i(7))
	write("internal/model/testdata/fuzz/FuzzAssignRoundTrip/session-negatives",
		s(""), s("s-1"), b([]byte{255, 0, 128}), i(0), fl(-1.5), i(-1))
	write("internal/model/testdata/fuzz/FuzzAssignRoundTrip/empty-row",
		s("x"), s("y"), b(nil), i(-5), fl(0), i(1<<40))

	write("internal/similarity/testdata/fuzz/FuzzPairAt/smallest", i(2), i(0))
	write("internal/similarity/testdata/fuzz/FuzzPairAt/row-boundary", i(65), i(64))
	write("internal/similarity/testdata/fuzz/FuzzPairAt/bench-tail", i(2000), i(1998999))
	write("internal/similarity/testdata/fuzz/FuzzPairAt/sqrt-precision", i(46342), i(1073767410))

	write("internal/similarity/testdata/fuzz/FuzzPackRows/three-features",
		i(3), b([]byte{0, 1, 2, 1, 0, 2}))
	write("internal/similarity/testdata/fuzz/FuzzPackRows/missing-cells",
		i(1), b([]byte{255, 0, 255, 7}))
	write("internal/similarity/testdata/fuzz/FuzzPackRows/word-boundary",
		i(2), b([]byte{63, 64, 65, 0}))
}

func b(v []byte) string { return "[]byte(" + strconv.Quote(string(v)) + ")" }
func s(v string) string { return "string(" + strconv.Quote(v) + ")" }
func i(v int) string    { return fmt.Sprintf("int(%d)", v) }
func fl(v float64) string {
	return fmt.Sprintf("float64(%s)", strconv.FormatFloat(v, 'g', -1, 64))
}

func write(path string, values ...string) {
	check(os.MkdirAll(filepath.Dir(path), 0o755))
	var out bytes.Buffer
	out.WriteString("go test fuzz v1\n")
	for _, v := range values {
		out.WriteString(v)
		out.WriteByte('\n')
	}
	check(os.WriteFile(path, out.Bytes(), 0o644))
	fmt.Println("wrote", path)
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
