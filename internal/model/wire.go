package model

// The binary assignment wire codec: the compact, length-prefixed frame
// protocol the serving daemon speaks next to HTTP/JSON. It deliberately
// mirrors the snapshot envelope's conventions — an 8-byte magic, a format
// version byte checked before anything else is decoded, and a typed version
// error — so the "bump the byte on any incompatible change, fail fast on
// alien versions" policy is one rule across files and wires.
//
// A wire stream is
//
//	"MCDCWIRE" | version(1) | frame*
//
// and every frame is
//
//	kind(1) | uvarint(payload length) | payload
//
// Payload scalars are encoded with encoding/binary varints: unsigned values
// as uvarints, possibly-negative values (row codes may carry out-of-domain
// negatives) as zigzag varints, strings as uvarint length + bytes, and
// float64s as 8 fixed big-endian bytes of their IEEE bit pattern — exactness
// matters, because the binary path must decode to the very float the JSON
// path produces. Frames are self-contained: a reader can decode any frame
// knowing only its kind, and unknown kinds are a protocol error, never a
// skip — the version byte is the compatibility lever, not lenient parsing.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// WireVersion is the binary frame protocol version this build speaks. Policy
// mirrors FormatVersion: bump on any incompatible change to the stream
// header, frame layout, or payload encodings; readers refuse other versions
// with a *WireVersionError before decoding a single frame.
const WireVersion = 1

// wireMagic opens every binary wire stream (one per HTTP request/response
// body, not one per frame).
var wireMagic = []byte("MCDCWIRE")

// MaxFramePayload bounds a single frame's payload. Large batches are carried
// as many row-chunk frames, so no legitimate frame approaches this; a length
// beyond it means a corrupt or hostile stream and fails decoding instead of
// provoking a giant allocation.
const MaxFramePayload = 16 << 20

// Frame kinds. Requests flow client → server, responses server → client.
const (
	// FrameAssign requests one assignment: model, session, row (exactly one
	// of model/session non-empty). Several FrameAssigns in one stream are the
	// pipelined form of N sequential /assign calls: each is answered by one
	// FrameResult or FrameError, in order.
	FrameAssign byte = 'A'
	// FrameBatchStart opens a batch: model name. Followed by FrameRows
	// chunks and closed by FrameEnd.
	FrameBatchStart byte = 'B'
	// FrameRows carries a chunk of rows of a batch.
	FrameRows byte = 'R'
	// FrameEnd closes a request or response stream explicitly.
	FrameEnd byte = 'E'
	// FrameResult answers one FrameAssign: cluster, similarity, epoch,
	// encoding.
	FrameResult byte = 'a'
	// FrameBatchInfo opens a batch response: model name and snapshot epoch
	// (constant across the batch, exactly like the JSON response's top-level
	// epoch).
	FrameBatchInfo byte = 'b'
	// FrameResults answers one FrameRows chunk with its assignments.
	FrameResults byte = 'r'
	// FrameError carries an in-band structured error: code and message (the
	// binary twin of the JSON error envelope).
	FrameError byte = '!'
)

// ErrNotWire is returned when a stream does not start with the wire magic.
var ErrNotWire = errors.New("model: not an MCDC wire stream (bad magic)")

// WireVersionError reports a wire stream written under an incompatible
// protocol version.
type WireVersionError struct {
	Got, Want int
}

func (e *WireVersionError) Error() string {
	return fmt.Sprintf("model: wire protocol version %d, this build speaks version %d — upgrade one side or fall back to JSON", e.Got, e.Want)
}

// WriteWireHeader begins a wire stream: magic plus version byte.
func WriteWireHeader(w io.Writer) error {
	if _, err := w.Write(wireMagic); err != nil {
		return fmt.Errorf("model: write wire header: %w", err)
	}
	if _, err := w.Write([]byte{WireVersion}); err != nil {
		return fmt.Errorf("model: write wire header: %w", err)
	}
	return nil
}

// ReadWireHeader verifies the magic and version of a wire stream. Like the
// snapshot envelope, the version check happens before any frame is decoded.
func ReadWireHeader(r io.Reader) error {
	hdr := make([]byte, len(wireMagic)+1)
	if _, err := io.ReadFull(r, hdr); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return ErrNotWire
		}
		return fmt.Errorf("model: read wire header: %w", err)
	}
	for i := range wireMagic {
		if hdr[i] != wireMagic[i] {
			return ErrNotWire
		}
	}
	if v := int(hdr[len(wireMagic)]); v != WireVersion {
		return &WireVersionError{Got: v, Want: WireVersion}
	}
	return nil
}

// WriteFrame emits one frame: kind, uvarint payload length, payload.
func WriteFrame(w io.Writer, kind byte, payload []byte) error {
	var hdr [1 + binary.MaxVarintLen64]byte
	hdr[0] = kind
	n := binary.PutUvarint(hdr[1:], uint64(len(payload)))
	if _, err := w.Write(hdr[:1+n]); err != nil {
		return fmt.Errorf("model: write frame: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("model: write frame: %w", err)
	}
	return nil
}

// ReadFrame reads one frame. A clean end of stream returns io.EOF; a stream
// truncated mid-frame returns io.ErrUnexpectedEOF.
func ReadFrame(br *bufio.Reader) (kind byte, payload []byte, err error) {
	kind, err = br.ReadByte()
	if err != nil {
		return 0, nil, err // io.EOF = clean stream end
	}
	size, err := binary.ReadUvarint(br)
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("model: read frame length: %w", err)
	}
	if size > MaxFramePayload {
		return 0, nil, fmt.Errorf("model: frame payload of %d bytes exceeds the %d limit", size, MaxFramePayload)
	}
	payload = make([]byte, size)
	if _, err := io.ReadFull(br, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("model: read frame payload: %w", err)
	}
	return kind, payload, nil
}

// ---- payload scalar encoding ----

func appendUint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

func appendInt(b []byte, v int) []byte { return binary.AppendVarint(b, int64(v)) }

func appendString(b []byte, s string) []byte {
	b = appendUint(b, uint64(len(s)))
	return append(b, s...)
}

func appendFloat(b []byte, f float64) []byte {
	return binary.BigEndian.AppendUint64(b, math.Float64bits(f))
}

func appendInts(b []byte, v []int) []byte {
	b = appendUint(b, uint64(len(v)))
	for _, x := range v {
		b = appendInt(b, x)
	}
	return b
}

// wireCursor decodes payload scalars in sequence, latching the first error.
type wireCursor struct {
	b   []byte
	err error
}

func (c *wireCursor) fail(what string) {
	if c.err == nil {
		c.err = fmt.Errorf("model: truncated wire payload at %s", what)
	}
}

func (c *wireCursor) uint(what string) uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.b)
	if n <= 0 {
		c.fail(what)
		return 0
	}
	c.b = c.b[n:]
	return v
}

func (c *wireCursor) int(what string) int {
	if c.err != nil {
		return 0
	}
	v, n := binary.Varint(c.b)
	if n <= 0 {
		c.fail(what)
		return 0
	}
	c.b = c.b[n:]
	return int(v)
}

func (c *wireCursor) str(what string) string {
	n := c.uint(what)
	if c.err != nil {
		return ""
	}
	if uint64(len(c.b)) < n {
		c.fail(what)
		return ""
	}
	s := string(c.b[:n])
	c.b = c.b[n:]
	return s
}

func (c *wireCursor) float(what string) float64 {
	if c.err != nil {
		return 0
	}
	if len(c.b) < 8 {
		c.fail(what)
		return 0
	}
	f := math.Float64frombits(binary.BigEndian.Uint64(c.b))
	c.b = c.b[8:]
	return f
}

func (c *wireCursor) ints(what string) []int {
	n := c.uint(what)
	if c.err != nil {
		return nil
	}
	if n == 0 {
		return nil
	}
	if n > uint64(len(c.b)) { // each int takes ≥ 1 byte — cheap pre-guard
		c.fail(what)
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = c.int(what)
	}
	if c.err != nil {
		return nil
	}
	return out
}

// done returns the latched error, also flagging trailing garbage — a frame
// payload must be consumed exactly.
func (c *wireCursor) done() error {
	if c.err == nil && len(c.b) != 0 {
		return fmt.Errorf("model: %d trailing bytes in wire payload", len(c.b))
	}
	return c.err
}

// ---- message payloads ----

// AppendAssignRequest encodes a FrameAssign payload: target model or session
// (exactly one non-empty, enforced by the server like the JSON path) and the
// row.
func AppendAssignRequest(b []byte, modelName, session string, row []int) []byte {
	b = appendString(b, modelName)
	b = appendString(b, session)
	return appendInts(b, row)
}

// DecodeAssignRequest decodes a FrameAssign payload.
func DecodeAssignRequest(payload []byte) (modelName, session string, row []int, err error) {
	c := wireCursor{b: payload}
	modelName = c.str("assign model")
	session = c.str("assign session")
	row = c.ints("assign row")
	return modelName, session, row, c.done()
}

// AppendResult encodes a FrameResult payload: one assignment plus the
// snapshot epoch it was made under. A nil Encoding (session assignments)
// round-trips as nil, matching the JSON response's omitted field.
func AppendResult(b []byte, a Assignment, epoch int) []byte {
	b = appendInt(b, a.Cluster)
	b = appendFloat(b, a.Similarity)
	b = appendInt(b, epoch)
	return appendInts(b, a.Encoding)
}

// DecodeResult decodes a FrameResult payload.
func DecodeResult(payload []byte) (a Assignment, epoch int, err error) {
	c := wireCursor{b: payload}
	a.Cluster = c.int("result cluster")
	a.Similarity = c.float("result similarity")
	epoch = c.int("result epoch")
	a.Encoding = c.ints("result encoding")
	return a, epoch, c.done()
}

// AppendBatchStart encodes a FrameBatchStart payload: the model name.
func AppendBatchStart(b []byte, modelName string) []byte {
	return appendString(b, modelName)
}

// DecodeBatchStart decodes a FrameBatchStart payload.
func DecodeBatchStart(payload []byte) (string, error) {
	c := wireCursor{b: payload}
	name := c.str("batch model")
	return name, c.done()
}

// AppendBatchInfo encodes a FrameBatchInfo payload: model name and epoch.
func AppendBatchInfo(b []byte, modelName string, epoch int) []byte {
	b = appendString(b, modelName)
	return appendInt(b, epoch)
}

// DecodeBatchInfo decodes a FrameBatchInfo payload.
func DecodeBatchInfo(payload []byte) (modelName string, epoch int, err error) {
	c := wireCursor{b: payload}
	modelName = c.str("batch info model")
	epoch = c.int("batch info epoch")
	return modelName, epoch, c.done()
}

// AppendRows encodes a FrameRows payload: a chunk of rows.
func AppendRows(b []byte, rows [][]int) []byte {
	b = appendUint(b, uint64(len(rows)))
	for _, row := range rows {
		b = appendInts(b, row)
	}
	return b
}

// DecodeRows decodes a FrameRows payload.
func DecodeRows(payload []byte) ([][]int, error) {
	c := wireCursor{b: payload}
	n := c.uint("rows count")
	if c.err != nil {
		return nil, c.done()
	}
	if n > uint64(len(payload)) { // ≥ 1 byte per row — corrupt-count guard
		return nil, fmt.Errorf("model: rows chunk claims %d rows in %d bytes", n, len(payload))
	}
	rows := make([][]int, n)
	for i := range rows {
		rows[i] = c.ints("row")
		if c.err != nil {
			break
		}
	}
	return rows, c.done()
}

// AppendResults encodes a FrameResults payload: the assignments of one rows
// chunk. The batch's epoch lives in FrameBatchInfo, so per-assignment payload
// is cluster, similarity, and encoding.
func AppendResults(b []byte, as []Assignment) []byte {
	b = appendUint(b, uint64(len(as)))
	for _, a := range as {
		b = appendInt(b, a.Cluster)
		b = appendFloat(b, a.Similarity)
		b = appendInts(b, a.Encoding)
	}
	return b
}

// DecodeResults decodes a FrameResults payload, appending to dst.
func DecodeResults(payload []byte, dst []Assignment) ([]Assignment, error) {
	c := wireCursor{b: payload}
	n := c.uint("results count")
	if c.err != nil {
		return dst, c.done()
	}
	if n > uint64(len(payload)) {
		return dst, fmt.Errorf("model: results chunk claims %d assignments in %d bytes", n, len(payload))
	}
	for i := uint64(0); i < n; i++ {
		var a Assignment
		a.Cluster = c.int("result cluster")
		a.Similarity = c.float("result similarity")
		a.Encoding = c.ints("result encoding")
		if c.err != nil {
			break
		}
		dst = append(dst, a)
	}
	return dst, c.done()
}

// AppendError encodes a FrameError payload: stable error code plus message —
// the in-band twin of the HTTP JSON error envelope.
func AppendError(b []byte, code, message string) []byte {
	b = appendString(b, code)
	return appendString(b, message)
}

// DecodeError decodes a FrameError payload.
func DecodeError(payload []byte) (code, message string, err error) {
	c := wireCursor{b: payload}
	code = c.str("error code")
	message = c.str("error message")
	return code, message, c.done()
}
