package model

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"
)

func TestWireHeaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteWireHeader(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ReadWireHeader(&buf); err != nil {
		t.Fatal(err)
	}

	// Bad magic.
	if err := ReadWireHeader(bytes.NewReader([]byte("NOTAWIRE\x01"))); !errors.Is(err, ErrNotWire) {
		t.Fatalf("bad magic: %v", err)
	}
	// Truncated header.
	if err := ReadWireHeader(bytes.NewReader([]byte("MCDC"))); !errors.Is(err, ErrNotWire) {
		t.Fatalf("short header: %v", err)
	}
	// Alien version fails fast with the typed error, naming both versions —
	// the wire twin of the snapshot format-version policy.
	alien := append(append([]byte(nil), wireMagic...), WireVersion+9)
	var verr *WireVersionError
	if err := ReadWireHeader(bytes.NewReader(alien)); !errors.As(err, &verr) {
		t.Fatalf("alien version: %v", err)
	} else if verr.Got != WireVersion+9 || verr.Want != WireVersion {
		t.Fatalf("version error carries %d/%d", verr.Got, verr.Want)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, {1}, bytes.Repeat([]byte{0xAB}, 100000)}
	for i, p := range payloads {
		if err := WriteFrame(&buf, byte('A'+i), p); err != nil {
			t.Fatal(err)
		}
	}
	br := bufio.NewReader(&buf)
	for i, p := range payloads {
		kind, got, err := ReadFrame(br)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if kind != byte('A'+i) || !bytes.Equal(got, p) {
			t.Fatalf("frame %d: kind %c, %d bytes", i, kind, len(got))
		}
	}
	if _, _, err := ReadFrame(br); err != io.EOF {
		t.Fatalf("stream end: %v", err)
	}

	// A frame truncated mid-payload is an unexpected EOF, not a clean end.
	var tr bytes.Buffer
	if err := WriteFrame(&tr, FrameAssign, []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	cut := tr.Bytes()[:tr.Len()-3]
	if _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(cut))); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated frame: %v", err)
	}

	// A hostile length beyond MaxFramePayload is rejected before allocation.
	hostile := []byte{FrameRows, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}
	if _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(hostile))); err == nil {
		t.Fatal("oversized frame length accepted")
	}
}

func TestAssignRequestRoundTrip(t *testing.T) {
	cases := []struct {
		model, session string
		row            []int
	}{
		{"m", "", []int{0, 1, 2}},
		{"", "sess-1", []int{5}},
		{"m", "", []int{99, -3, 0, 1, 2}}, // out-of-domain negatives survive zigzag
		{"m", "", nil},
	}
	for _, c := range cases {
		payload := AppendAssignRequest(nil, c.model, c.session, c.row)
		m, s, row, err := DecodeAssignRequest(payload)
		if err != nil {
			t.Fatal(err)
		}
		if m != c.model || s != c.session || !reflect.DeepEqual(row, c.row) {
			t.Fatalf("round trip: %q %q %v → %q %q %v", c.model, c.session, c.row, m, s, row)
		}
	}
	// Trailing garbage is an error, not silently ignored.
	payload := AppendAssignRequest(nil, "m", "", []int{1})
	if _, _, _, err := DecodeAssignRequest(append(payload, 0x00)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	if _, _, _, err := DecodeAssignRequest(payload[:len(payload)-1]); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestResultRoundTrip(t *testing.T) {
	cases := []struct {
		a     Assignment
		epoch int
	}{
		{Assignment{Cluster: 3, Similarity: 0.875, Encoding: []int{1, 0, 2}}, 4},
		{Assignment{Cluster: 0, Similarity: 1}, 0},                    // nil encoding (session path)
		{Assignment{Cluster: 1, Similarity: 1.0 / 3.0}, 2},            // non-dyadic float survives bit-exactly
		{Assignment{Cluster: 2, Similarity: math.Nextafter(1, 0)}, 1}, // ulp below 1
	}
	for _, c := range cases {
		a, epoch, err := DecodeResult(AppendResult(nil, c.a, c.epoch))
		if err != nil {
			t.Fatal(err)
		}
		if epoch != c.epoch || a.Cluster != c.a.Cluster || !reflect.DeepEqual(a.Encoding, c.a.Encoding) {
			t.Fatalf("round trip: %+v/%d → %+v/%d", c.a, c.epoch, a, epoch)
		}
		if math.Float64bits(a.Similarity) != math.Float64bits(c.a.Similarity) {
			t.Fatalf("similarity not bit-exact: %x vs %x", math.Float64bits(a.Similarity), math.Float64bits(c.a.Similarity))
		}
	}
}

func TestBatchFramesRoundTrip(t *testing.T) {
	name, err := DecodeBatchStart(AppendBatchStart(nil, "vote"))
	if err != nil || name != "vote" {
		t.Fatalf("batch start: %q %v", name, err)
	}
	m, epoch, err := DecodeBatchInfo(AppendBatchInfo(nil, "vote", 7))
	if err != nil || m != "vote" || epoch != 7 {
		t.Fatalf("batch info: %q %d %v", m, epoch, err)
	}

	rows := [][]int{{0, 1, 2}, {2, 1, 0}, {-1, 5, 3}}
	got, err := DecodeRows(AppendRows(nil, rows))
	if err != nil || !reflect.DeepEqual(got, rows) {
		t.Fatalf("rows: %v %v", got, err)
	}

	as := []Assignment{
		{Cluster: 0, Similarity: 0.5, Encoding: []int{0, 1}},
		{Cluster: 2, Similarity: 1, Encoding: []int{2, 2}},
	}
	dec, err := DecodeResults(AppendResults(nil, as), nil)
	if err != nil || !reflect.DeepEqual(dec, as) {
		t.Fatalf("results: %v %v", dec, err)
	}

	// Corrupt counts fail instead of allocating absurdly.
	if _, err := DecodeRows([]byte{0xFF, 0xFF, 0xFF, 0x7F}); err == nil {
		t.Fatal("corrupt rows count accepted")
	}
	if _, err := DecodeResults([]byte{0xFF, 0xFF, 0xFF, 0x7F}, nil); err == nil {
		t.Fatal("corrupt results count accepted")
	}
}

func TestErrorFrameRoundTrip(t *testing.T) {
	code, msg, err := DecodeError(AppendError(nil, "unknown_model", `no model "ghost"`))
	if err != nil {
		t.Fatal(err)
	}
	if code != "unknown_model" || msg != `no model "ghost"` {
		t.Fatalf("error frame: %q %q", code, msg)
	}
}
