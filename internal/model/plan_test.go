package model

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"mcdc/internal/categorical"
)

// unplanned returns a shallow copy of snap with the probe plan removed, so
// assignInto takes the per-feature ProbeSim loop — the unpacked oracle the
// packed fast path is pinned against.
func unplanned(snap *Snapshot) *Snapshot {
	oracle := *snap
	oracle.plan = nil
	return &oracle
}

// probeRows draws rows against the schema, deliberately including missing
// values and out-of-domain codes (negative and above-cardinality) — the
// inputs a serving daemon actually sees, and exactly the positions the
// packed index build must drop like ProbeSim does.
func probeRows(rng *rand.Rand, n int, card []int) [][]int {
	rows := make([][]int, n)
	for i := range rows {
		row := make([]int, len(card))
		for r, m := range card {
			switch rng.Intn(10) {
			case 0:
				row[r] = categorical.Missing
			case 1:
				row[r] = m + rng.Intn(3) // out of domain, above
			case 2:
				row[r] = -2 - rng.Intn(3) // out of domain, negative non-Missing
			default:
				row[r] = rng.Intn(m)
			}
		}
		rows[i] = row
	}
	return rows
}

// TestAssignPlanMatchesOracle is the packed-vs-unpacked equivalence property
// of the serving fast path: across trained snapshots of several shapes and
// adversarial probe rows, the plan gather must reproduce the ProbeSim loop
// bit for bit — same cluster, bit-identical similarity, same encoding.
func TestAssignPlanMatchesOracle(t *testing.T) {
	for _, shape := range []struct {
		n, d, k int
		seed    int64
	}{
		{200, 6, 3, 1},
		{300, 12, 4, 2},
		{150, 3, 2, 3},
	} {
		snap, _, _ := trainSnapshot(t, shape.n, shape.d, shape.k, shape.seed)
		if snap.plan == nil {
			t.Fatalf("shape %+v: Build left no probe plan", shape)
		}
		oracle := unplanned(snap)
		rng := rand.New(rand.NewSource(shape.seed * 101))
		for _, row := range probeRows(rng, 200, snap.Cardinalities) {
			got, err := snap.Assign(row)
			if err != nil {
				t.Fatal(err)
			}
			want, err := oracle.Assign(row)
			if err != nil {
				t.Fatal(err)
			}
			if got.Cluster != want.Cluster {
				t.Fatalf("shape %+v row %v: plan cluster %d, oracle %d", shape, row, got.Cluster, want.Cluster)
			}
			if math.Float64bits(got.Similarity) != math.Float64bits(want.Similarity) {
				t.Fatalf("shape %+v row %v: plan similarity %v (bits %x), oracle %v (bits %x)",
					shape, row, got.Similarity, math.Float64bits(got.Similarity),
					want.Similarity, math.Float64bits(want.Similarity))
			}
			for j := range got.Encoding {
				if got.Encoding[j] != want.Encoding[j] {
					t.Fatalf("shape %+v row %v: plan encoding %v, oracle %v", shape, row, got.Encoding, want.Encoding)
				}
			}
		}
	}
}

// TestAssignPlanSurvivesRoundTrip pins that Load rebuilds the plan and that
// the loaded fast path still matches the oracle (the plan is never
// serialized — it must be derived from the envelope's statistics alone).
func TestAssignPlanSurvivesRoundTrip(t *testing.T) {
	snap, _, rows := trainSnapshot(t, 250, 8, 3, 5)
	loaded := saveLoad(t, snap)
	if loaded.plan == nil {
		t.Fatal("Load left no probe plan")
	}
	oracle := unplanned(loaded)
	for _, row := range rows {
		got, err := loaded.Assign(row)
		if err != nil {
			t.Fatal(err)
		}
		want, err := oracle.Assign(row)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cluster != want.Cluster || math.Float64bits(got.Similarity) != math.Float64bits(want.Similarity) {
			t.Fatalf("row %v: loaded plan (%d, %v) != oracle (%d, %v)",
				row, got.Cluster, got.Similarity, want.Cluster, want.Similarity)
		}
	}
}

// TestAssignBatchPlanEquivalence crosses the packed fast path with the
// parallel fan-out: AssignBatch at workers 1, 2, and GOMAXPROCS must agree
// with the single-row oracle on every row.
func TestAssignBatchPlanEquivalence(t *testing.T) {
	snap, _, _ := trainSnapshot(t, 300, 10, 3, 9)
	oracle := unplanned(snap)
	rng := rand.New(rand.NewSource(99))
	rows := probeRows(rng, 500, snap.Cardinalities)
	want := make([]Assignment, len(rows))
	for i, row := range rows {
		a, err := oracle.Assign(row)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = a
	}
	for _, workers := range []int{1, 2, 0} {
		got, err := snap.AssignBatch(rows, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i].Cluster != want[i].Cluster ||
				math.Float64bits(got[i].Similarity) != math.Float64bits(want[i].Similarity) {
				t.Fatalf("workers=%d row %d: batch (%d, %v) != oracle (%d, %v)",
					workers, i, got[i].Cluster, got[i].Similarity, want[i].Cluster, want[i].Similarity)
			}
		}
	}
}

// TestPlanRefusesMismatchedState pins the fallback: a snapshot whose level
// statistics disagree with its schema must carry no plan (and therefore
// serve through the exact slow path) instead of gathering from a
// wrongly-shaped plane.
func TestPlanRefusesMismatchedState(t *testing.T) {
	snap, _, _ := trainSnapshot(t, 200, 6, 3, 13)
	mangled := saveLoad(t, snap)
	mangled.Levels[0].Card = append([]int(nil), mangled.Levels[0].Card...)
	mangled.Levels[0].Card[0]++ // no longer the schema's cardinality
	if mangled.Levels[0].Card[0] > mangled.Levels[0].Stride {
		mangled.Levels[0].Stride = mangled.Levels[0].Card[0]
	}
	mangled.plan = nil
	mangled.buildPlan()
	if mangled.plan != nil {
		t.Fatal("buildPlan accepted level statistics that disagree with the schema")
	}
}

// saveLoad round-trips a snapshot through the envelope.
func saveLoad(t *testing.T, snap *Snapshot) *Snapshot {
	t.Helper()
	var buf bytes.Buffer
	if err := snap.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return loaded
}
