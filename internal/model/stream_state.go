package model

import (
	"fmt"
	"io"
	"os"

	"mcdc/internal/similarity"
)

// StreamState is the serializable checkpoint of a streaming clusterer: its
// configuration, the ring-buffer window in physical order (plus cursor), the
// drift/refresh counters, and the current model tables. Restoring it resumes
// the stream exactly where it left off — the warm window survives a restart
// instead of being re-absorbed into a provisional single cluster.
//
// Determinism: Snapshot rotates the clusterer's random stream onto a fresh
// sub-seed recorded in RandSeed, so the snapshotted original and any restore
// continue on identical random streams — subsequent assignments (including
// across re-learnings) are bit-for-bit identical between them.
type StreamState struct {
	// Cardinalities fixes the stream's feature schema.
	Cardinalities []int

	// Stream configuration (see stream.Config).
	WindowSize     int
	RefreshEvery   int
	DriftThreshold float64
	DriftFraction  float64

	// MGCPL configuration (the numeric knobs of core.MGCPLConfig; the random
	// source is reconstructed from RandSeed).
	LearningRate   float64
	InitialK       int
	MaxInnerIters  int
	MaxEpochs      int
	RivalThreshold float64
	Workers        int

	// Window is the ring buffer in physical slot order; Next is the cursor.
	// Physical order matters: re-learning presents the window as stored, so
	// preserving slots (not just logical recency order) keeps post-restore
	// re-learnings bit-identical to the original's.
	Window [][]int
	Next   int

	// Model state.
	K          int
	Epoch      int
	SinceFresh int
	Drifted    int
	Kappa      []int
	// Tables holds the current model's frequency statistics; nil before the
	// first re-learning.
	Tables *similarity.TableState

	// RandSeed seeds the random stream both sides continue on.
	RandSeed int64

	// OwnerEpoch is the session's ownership fencing token (format version 2).
	// Every replica promotion increments it; a backend receiving a shipped
	// checkpoint whose epoch is lower than what it already holds rejects the
	// ship, so a zombie primary that lost ownership cannot overwrite the
	// promoted replica's newer state. Fresh sessions start at 0.
	OwnerEpoch int64

	// Idempotent-replay cache (format version 2): the request id and response
	// of the last applied assignment. A retried assign carrying the same
	// non-empty request id and row returns this cached response without
	// re-applying the row, which makes gateway retries after an ambiguous
	// failure (owner died between checkpoint-ship and respond) exactly-once.
	LastReqID      string
	LastRow        []int
	LastCluster    int
	LastSimilarity float64
	LastModelEpoch int
}

// Save writes the checkpoint to w in the versioned envelope format.
func (st *StreamState) Save(w io.Writer) error {
	return writeEnvelope(w, kindStream, st)
}

// SaveFile atomically writes the checkpoint to path.
func (st *StreamState) SaveFile(path string) error {
	return saveFile(path, func(w io.Writer) error { return st.Save(w) })
}

// LoadStream reads a stream checkpoint from r, verifying magic, kind, and
// format version.
func LoadStream(r io.Reader) (*StreamState, error) {
	var st StreamState
	if err := readEnvelope(r, kindStream, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// LoadStreamFile reads a stream checkpoint from a file.
func LoadStreamFile(path string) (*StreamState, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("model: %w", err)
	}
	defer f.Close()
	st, err := LoadStream(f)
	if err != nil {
		return nil, fmt.Errorf("model: load %s: %w", path, err)
	}
	return st, nil
}
