// Package adc implements the categorical side of ADC (Zhang & Cheung 2022):
// graph-based dissimilarity measurement for cluster analysis. Feature values
// become nodes of a coupling graph whose edges carry co-occurrence strength;
// the dissimilarity between two values of one feature combines their direct
// (one-hop) and indirect (two-hop, through the other features' values)
// relationships. Clustering assigns objects to the cluster whose empirical
// value distribution is closest under the learned dissimilarity.
package adc

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"mcdc/internal/categorical"
	"mcdc/internal/seeding"
)

// Config parameterizes ADC.
type Config struct {
	K        int
	MaxIters int
	// Lambda balances direct and indirect coupling in the value
	// dissimilarity (default 0.5).
	Lambda float64
	Rand   *rand.Rand
}

// Result is the converged partition.
type Result struct {
	Labels []int
	Iters  int
}

// graphMetric holds per-feature value dissimilarity matrices built from the
// coupling graph.
type graphMetric struct {
	dist [][][]float64 // dist[r][a][b]
}

// buildMetric constructs the value-level dissimilarities.
func buildMetric(rows [][]int, cardinalities []int, lambda float64) (*graphMetric, error) {
	n := len(rows)
	if n == 0 {
		return nil, errors.New("adc: empty data")
	}
	d := len(cardinalities)
	if d < 2 {
		return nil, errors.New("adc: metric needs at least two features")
	}
	// cond[r][t][a] = P(value on t | feature r has value a), flattened over b.
	cond := make([][][][]float64, d)
	counts := make([][]float64, d)
	for r := 0; r < d; r++ {
		counts[r] = make([]float64, cardinalities[r])
		cond[r] = make([][][]float64, d)
		for t := 0; t < d; t++ {
			if t == r {
				continue
			}
			cond[r][t] = make([][]float64, cardinalities[r])
			for a := range cond[r][t] {
				cond[r][t][a] = make([]float64, cardinalities[t])
			}
		}
	}
	for _, row := range rows {
		complete := true
		for _, v := range row {
			if v == categorical.Missing {
				complete = false
				break
			}
		}
		if !complete {
			continue
		}
		for r, a := range row {
			counts[r][a]++
			for t, b := range row {
				if t != r {
					cond[r][t][a][b]++
				}
			}
		}
	}
	for r := 0; r < d; r++ {
		for t := 0; t < d; t++ {
			if t == r {
				continue
			}
			for a := range cond[r][t] {
				if counts[r][a] > 0 {
					for b := range cond[r][t][a] {
						cond[r][t][a][b] /= counts[r][a]
					}
				}
			}
		}
	}

	// Direct dissimilarity: average TV distance between one-hop conditional
	// profiles. Indirect: two-hop profiles P(·|a) smoothed through the
	// intermediate feature's own conditionals.
	direct := func(r, a, b int) float64 {
		var sum float64
		for t := 0; t < d; t++ {
			if t == r {
				continue
			}
			var tv float64
			for v := range cond[r][t][a] {
				tv += math.Abs(cond[r][t][a][v] - cond[r][t][b][v])
			}
			sum += tv / 2
		}
		return sum / float64(d-1)
	}
	indirect := func(r, a, b int) float64 {
		var sum float64
		for t := 0; t < d; t++ {
			if t == r {
				continue
			}
			// Two-hop profile on feature u ≠ r,t: P2(w|a) = Σ_v P(v|a)·P(w|v).
			for u := 0; u < d; u++ {
				if u == r || u == t {
					continue
				}
				var tv float64
				for w := 0; w < cardinalities[u]; w++ {
					var pa, pb float64
					for v := 0; v < cardinalities[t]; v++ {
						pa += cond[r][t][a][v] * cond[t][u][v][w]
						pb += cond[r][t][b][v] * cond[t][u][v][w]
					}
					tv += math.Abs(pa - pb)
				}
				sum += tv / 2
			}
		}
		pairs := float64((d - 1) * (d - 2))
		if pairs <= 0 {
			return 0
		}
		return sum / pairs
	}

	m := &graphMetric{dist: make([][][]float64, d)}
	for r := 0; r < d; r++ {
		mr := cardinalities[r]
		m.dist[r] = make([][]float64, mr)
		for a := 0; a < mr; a++ {
			m.dist[r][a] = make([]float64, mr)
		}
		for a := 0; a < mr; a++ {
			for b := a + 1; b < mr; b++ {
				var dd float64
				if d > 2 {
					dd = lambda*direct(r, a, b) + (1-lambda)*indirect(r, a, b)
				} else {
					dd = direct(r, a, b)
				}
				m.dist[r][a][b], m.dist[r][b][a] = dd, dd
			}
		}
	}
	return m, nil
}

func (m *graphMetric) valueDist(r, a, b int) float64 {
	if a == categorical.Missing || b == categorical.Missing {
		if a == b {
			return 0
		}
		return 1
	}
	return m.dist[r][a][b]
}

// Run learns the graph dissimilarity and partitions rows into cfg.K clusters
// by iteratively assigning each object to the cluster whose per-feature value
// distribution is nearest under the metric.
func Run(rows [][]int, cardinalities []int, cfg Config) (*Result, error) {
	n := len(rows)
	if n == 0 {
		return nil, errors.New("adc: empty data")
	}
	if cfg.Rand == nil {
		return nil, errors.New("adc: nil random source")
	}
	k := cfg.K
	if k <= 0 {
		return nil, fmt.Errorf("adc: k must be positive, got %d", k)
	}
	if k > n {
		k = n
	}
	lambda := cfg.Lambda
	if lambda <= 0 || lambda > 1 {
		lambda = 0.5
	}
	maxIters := cfg.MaxIters
	if maxIters <= 0 {
		maxIters = 100
	}
	metric, err := buildMetric(rows, cardinalities, lambda)
	if err != nil {
		return nil, err
	}
	d := len(cardinalities)

	// Cluster statistics: per-feature value counts.
	counts := make([][][]float64, k)
	sizes := make([]float64, k)
	for l := range counts {
		counts[l] = make([][]float64, d)
		for r := range counts[l] {
			counts[l][r] = make([]float64, cardinalities[r])
		}
	}
	labels := make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	add := func(i, l int) {
		sizes[l]++
		for r, v := range rows[i] {
			if v != categorical.Missing {
				counts[l][r][v]++
			}
		}
		labels[i] = l
	}
	remove := func(i, l int) {
		sizes[l]--
		for r, v := range rows[i] {
			if v != categorical.Missing {
				counts[l][r][v]--
			}
		}
	}
	// Expected dissimilarity of object i to cluster l's value distribution.
	objDist := func(i, l int) float64 {
		if sizes[l] == 0 {
			return math.Inf(1)
		}
		var sum float64
		row := rows[i]
		for r, a := range row {
			if a == categorical.Missing {
				sum += 1
				continue
			}
			var e float64
			for v, c := range counts[l][r] {
				if c > 0 {
					e += c * metric.valueDist(r, a, v)
				}
			}
			sum += e / sizes[l]
		}
		return sum / float64(d)
	}

	for l, i := range seeding.DistinctRows(rows, k, cfg.Rand) {
		add(i, l)
	}
	iters := 0
	for ; iters < maxIters; iters++ {
		changed := false
		for i := 0; i < n; i++ {
			best, bestD := -1, math.Inf(1)
			for l := 0; l < k; l++ {
				if sizes[l] == 0 {
					continue
				}
				if dd := objDist(i, l); dd < bestD {
					best, bestD = l, dd
				}
			}
			if best < 0 || labels[i] == best {
				continue
			}
			if labels[i] >= 0 {
				remove(i, labels[i])
			}
			add(i, best)
			changed = true
		}
		// Repair emptied clusters by re-seeding each with the object
		// currently worst-served by its own cluster, so the sought k is
		// preserved (standard partitional-clustering repair).
		for l := 0; l < k; l++ {
			if sizes[l] > 0 {
				continue
			}
			worst, worstD := -1, -1.0
			for i := 0; i < n; i++ {
				if sizes[labels[i]] <= 1 {
					continue
				}
				if dd := objDist(i, labels[i]); dd > worstD {
					worst, worstD = i, dd
				}
			}
			if worst < 0 {
				break
			}
			remove(worst, labels[worst])
			add(worst, l)
			changed = true
		}
		if !changed {
			break
		}
	}
	return &Result{Labels: compact(labels), Iters: iters + 1}, nil
}

func compact(assign []int) []int {
	remap := make(map[int]int)
	out := make([]int, len(assign))
	for i, l := range assign {
		if l < 0 {
			out[i] = 0
			continue
		}
		nl, ok := remap[l]
		if !ok {
			nl = len(remap)
			remap[l] = nl
		}
		out[i] = nl
	}
	return out
}
