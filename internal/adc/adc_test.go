package adc

import (
	"math/rand"
	"testing"

	"mcdc/internal/datasets"
	"mcdc/internal/metrics"
)

func TestAdcMetricSymmetric(t *testing.T) {
	ds := datasets.Synthetic("t", 200, 5, 2, 0.9, rand.New(rand.NewSource(40)))
	m, err := buildMetric(ds.Rows, ds.Cardinalities(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	card := ds.Cardinalities()
	for r := 0; r < ds.D(); r++ {
		for a := 0; a < card[r]; a++ {
			if m.valueDist(r, a, a) != 0 {
				t.Errorf("diagonal not zero at feature %d value %d", r, a)
			}
			for b := 0; b < card[r]; b++ {
				if m.valueDist(r, a, b) != m.valueDist(r, b, a) {
					t.Errorf("asymmetric at (%d,%d,%d)", r, a, b)
				}
			}
		}
	}
}

func TestAdcRecovery(t *testing.T) {
	ds := datasets.Synthetic("t", 400, 8, 3, 0.92, rand.New(rand.NewSource(41)))
	best := 0.0
	for seed := int64(0); seed < 5; seed++ {
		res, err := Run(ds.Rows, ds.Cardinalities(), Config{K: 3, Rand: rand.New(rand.NewSource(seed))})
		if err != nil {
			t.Fatal(err)
		}
		acc, err := metrics.Accuracy(ds.Labels, res.Labels)
		if err != nil {
			t.Fatal(err)
		}
		if acc > best {
			best = acc
		}
	}
	if best < 0.85 {
		t.Errorf("best-of-5 ACC = %v, want ≥ 0.85", best)
	}
}

func TestAdcRepairKeepsSoughtK(t *testing.T) {
	// Balance-scale-like data (independent features) used to collapse ADC
	// clusters; the repair must keep k clusters alive.
	ds := datasets.BalanceScale()
	res, err := Run(ds.Rows, ds.Cardinalities(), Config{K: 3, Rand: rand.New(rand.NewSource(2))})
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[int]bool{}
	for _, l := range res.Labels {
		distinct[l] = true
	}
	if len(distinct) != 3 {
		t.Errorf("got %d clusters, want 3 after repair", len(distinct))
	}
}

func TestAdcErrors(t *testing.T) {
	if _, err := Run(nil, nil, Config{K: 2, Rand: rand.New(rand.NewSource(1))}); err == nil {
		t.Error("empty data: want error")
	}
	if _, err := Run([][]int{{0, 1}}, []int{1, 2}, Config{K: 0, Rand: rand.New(rand.NewSource(1))}); err == nil {
		t.Error("k=0: want error")
	}
	if _, err := buildMetric([][]int{{0}}, []int{2}, 0.5); err == nil {
		t.Error("single feature: want error")
	}
}
