// Package seeding provides shared cluster-initialization helpers for the
// k-modes-family algorithms in this repository.
package seeding

import "math/rand"

// DistinctRows returns the indices of k seed objects drawn uniformly at
// random, preferring objects with pairwise-distinct value rows: identical
// seed rows produce identical cluster prototypes, which immediately collapse
// into each other. When the data holds fewer than k distinct rows the
// remaining seeds are drawn from the leftover indices, so exactly k indices
// are always returned (k must be ≤ len(rows)).
func DistinctRows(rows [][]int, k int, rng *rand.Rand) []int {
	perm := rng.Perm(len(rows))
	seeds := make([]int, 0, k)
	seen := make(map[string]bool, k)
	var leftovers []int
	keyBuf := make([]byte, 0, 64)
	for _, i := range perm {
		if len(seeds) == k {
			return seeds
		}
		keyBuf = keyBuf[:0]
		for _, v := range rows[i] {
			keyBuf = append(keyBuf, byte(v), byte(v>>8), 0xff)
		}
		key := string(keyBuf)
		if seen[key] {
			leftovers = append(leftovers, i)
			continue
		}
		seen[key] = true
		seeds = append(seeds, i)
	}
	for _, i := range leftovers {
		if len(seeds) == k {
			break
		}
		seeds = append(seeds, i)
	}
	return seeds
}

// FarthestFirst returns k seed indices chosen by farthest-first traversal
// under normalized Hamming distance: a random first seed, then repeatedly
// the object farthest from all chosen seeds. Spread-out seeds make
// k-modes-family optimizers markedly more stable than uniform sampling.
func FarthestFirst(rows [][]int, k int, rng *rand.Rand) []int {
	n := len(rows)
	if k > n {
		k = n
	}
	seeds := make([]int, 0, k)
	first := rng.Intn(n)
	seeds = append(seeds, first)
	hamming := func(a, b []int) int {
		d := 0
		for r := range a {
			if a[r] != b[r] {
				d++
			}
		}
		return d
	}
	minDist := make([]int, n)
	for i := range minDist {
		minDist[i] = hamming(rows[i], rows[first])
	}
	for len(seeds) < k {
		next, best := -1, -1
		for i, dd := range minDist {
			if dd > best {
				next, best = i, dd
			}
		}
		seeds = append(seeds, next)
		for i := range minDist {
			if dd := hamming(rows[i], rows[next]); dd < minDist[i] {
				minDist[i] = dd
			}
		}
	}
	return seeds
}
