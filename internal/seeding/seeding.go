// Package seeding provides shared cluster-initialization helpers for the
// k-modes-family algorithms in this repository.
package seeding

import (
	"math/rand"

	"mcdc/internal/parallel"
)

// DistinctRows returns the indices of k seed objects drawn uniformly at
// random, preferring objects with pairwise-distinct value rows: identical
// seed rows produce identical cluster prototypes, which immediately collapse
// into each other. When the data holds fewer than k distinct rows the
// remaining seeds are drawn from the leftover indices, so exactly k indices
// are always returned (k must be ≤ len(rows)).
func DistinctRows(rows [][]int, k int, rng *rand.Rand) []int {
	perm := rng.Perm(len(rows))
	seeds := make([]int, 0, k)
	seen := make(map[string]bool, k)
	var leftovers []int
	keyBuf := make([]byte, 0, 64)
	for _, i := range perm {
		if len(seeds) == k {
			return seeds
		}
		keyBuf = keyBuf[:0]
		for _, v := range rows[i] {
			keyBuf = append(keyBuf, byte(v), byte(v>>8), 0xff)
		}
		key := string(keyBuf)
		if seen[key] {
			leftovers = append(leftovers, i)
			continue
		}
		seen[key] = true
		seeds = append(seeds, i)
	}
	for _, i := range leftovers {
		if len(seeds) == k {
			break
		}
		seeds = append(seeds, i)
	}
	return seeds
}

// FarthestFirst returns k seed indices chosen by farthest-first traversal
// under normalized Hamming distance: a random first seed, then repeatedly
// the object farthest from all chosen seeds. Spread-out seeds make
// k-modes-family optimizers markedly more stable than uniform sampling.
func FarthestFirst(rows [][]int, k int, rng *rand.Rand) []int {
	return FarthestFirstWorkers(rows, k, rng, 1)
}

// FarthestFirstWorkers is FarthestFirst with the O(k·n·d) distance scans
// fanned out over the given worker bound (≤ 0 → GOMAXPROCS, 1 → sequential).
// The rng is consumed once, before any parallel work; the per-round argmax
// folds workers-independent chunk maxima in chunk order with strict
// comparisons, reproducing the sequential lowest-index tie-break — the chosen
// seeds are identical at any parallelism level.
func FarthestFirstWorkers(rows [][]int, k int, rng *rand.Rand, workers int) []int {
	n := len(rows)
	if k > n {
		k = n
	}
	// Each scan below costs n·d; on small inputs the fan-out overhead
	// exceeds the saved compute, so drop to inline execution. One pool
	// threads the resolved bound through every phase of the traversal; the
	// scan callbacks are infallible, so errors (recovered worker panics
	// only) are re-raised via parallel.Must rather than seeding from a
	// half-updated distance vector.
	pool := parallel.NewPool(parallel.Gate(workers, n*len(rows[0])))
	seeds := make([]int, 0, k)
	first := rng.Intn(n)
	seeds = append(seeds, first)
	hamming := func(a, b []int) int {
		d := 0
		for r := range a {
			if a[r] != b[r] {
				d++
			}
		}
		return d
	}
	minDist := make([]int, n)
	parallel.Must(pool.ForEachChunk(n, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			minDist[i] = hamming(rows[i], rows[first])
		}
		return nil
	}))
	type argmax struct {
		idx  int
		dist int
	}
	// The per-round argmax is only O(n) — far lighter than the O(n·d)
	// distance scans the pool was sized for — so gate it on its own cost.
	argmaxWorkers := parallel.Gate(pool.Workers(), n)
	for len(seeds) < k {
		top, err := parallel.MapReduce(argmaxWorkers, n, argmax{idx: -1, dist: -1},
			func(lo, hi int) (argmax, error) {
				best := argmax{idx: -1, dist: -1}
				for i := lo; i < hi; i++ {
					if minDist[i] > best.dist {
						best = argmax{idx: i, dist: minDist[i]}
					}
				}
				return best, nil
			},
			func(acc, next argmax) argmax {
				if next.dist > acc.dist {
					return next
				}
				return acc
			})
		parallel.Must(err)
		next := top.idx
		seeds = append(seeds, next)
		parallel.Must(pool.ForEachChunk(n, func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				if dd := hamming(rows[i], rows[next]); dd < minDist[i] {
					minDist[i] = dd
				}
			}
			return nil
		}))
	}
	return seeds
}
