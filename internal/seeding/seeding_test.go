package seeding

import (
	"math/rand"
	"testing"
)

func TestDistinctRowsPrefersDistinct(t *testing.T) {
	// 3 distinct patterns, many duplicates.
	rows := [][]int{
		{0, 0}, {0, 0}, {0, 0},
		{1, 1}, {1, 1},
		{2, 2},
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		seeds := DistinctRows(rows, 3, rng)
		if len(seeds) != 3 {
			t.Fatalf("got %d seeds, want 3", len(seeds))
		}
		seen := map[[2]int]bool{}
		for _, i := range seeds {
			seen[[2]int{rows[i][0], rows[i][1]}] = true
		}
		if len(seen) != 3 {
			t.Fatalf("trial %d: seeds not pattern-distinct: %v", trial, seeds)
		}
	}
}

func TestDistinctRowsFallsBackToDuplicates(t *testing.T) {
	rows := [][]int{{0}, {0}, {0}, {0}}
	seeds := DistinctRows(rows, 3, rand.New(rand.NewSource(2)))
	if len(seeds) != 3 {
		t.Fatalf("got %d seeds, want 3 even with duplicate rows", len(seeds))
	}
	idx := map[int]bool{}
	for _, i := range seeds {
		if idx[i] {
			t.Fatalf("seed index repeated: %v", seeds)
		}
		idx[i] = true
	}
}

func TestFarthestFirstSpreads(t *testing.T) {
	// Three tight groups; farthest-first must pick one seed per group.
	rows := [][]int{
		{0, 0, 0, 0}, {0, 0, 0, 1},
		{1, 1, 1, 1}, {1, 1, 1, 0},
		{2, 2, 2, 2}, {2, 2, 2, 0},
	}
	group := func(i int) int { return rows[i][0] }
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		seeds := FarthestFirst(rows, 3, rng)
		seen := map[int]bool{}
		for _, i := range seeds {
			seen[group(i)] = true
		}
		if len(seen) != 3 {
			t.Fatalf("trial %d: seeds not spread across groups: %v", trial, seeds)
		}
	}
}

func TestFarthestFirstClampsK(t *testing.T) {
	rows := [][]int{{0}, {1}}
	if got := len(FarthestFirst(rows, 10, rand.New(rand.NewSource(4)))); got != 2 {
		t.Errorf("got %d seeds, want clamped to n=2", got)
	}
}
