package active

import (
	"math/rand"
	"testing"

	"mcdc/internal/core"
	"mcdc/internal/datasets"
)

func analysis(t *testing.T, rows [][]int, card []int, seed int64) *core.MGCPLResult {
	t.Helper()
	mg, err := core.RunMGCPL(rows, card, core.MGCPLConfig{Rand: rand.New(rand.NewSource(seed))})
	if err != nil {
		t.Fatal(err)
	}
	return mg
}

func TestQueriesCoverCoarseClusters(t *testing.T) {
	ds := datasets.Synthetic("t", 600, 8, 3, 0.9, rand.New(rand.NewSource(70)))
	mg := analysis(t, ds.Rows, ds.Cardinalities(), 1)
	budget := mg.Final().K + 2
	queries, err := SelectQueries(ds.Rows, mg, budget)
	if err != nil {
		t.Fatal(err)
	}
	if len(queries) == 0 || len(queries) > budget {
		t.Fatalf("got %d queries for budget %d", len(queries), budget)
	}
	// No fine cluster queried twice.
	seen := map[int]bool{}
	for _, q := range queries {
		if seen[q.FineCluster] {
			t.Errorf("fine cluster %d queried twice", q.FineCluster)
		}
		seen[q.FineCluster] = true
		if q.Index < 0 || q.Index >= ds.N() {
			t.Errorf("query index %d out of range", q.Index)
		}
		if q.Weight <= 0 {
			t.Errorf("query weight %d", q.Weight)
		}
	}
	// Every coarse cluster must be represented when the budget allows it.
	coarse := mg.Final()
	covered := map[int]bool{}
	for _, q := range queries {
		covered[coarse.Labels[q.Index]] = true
	}
	if len(covered) < coarse.K {
		t.Errorf("queries cover %d of %d coarse clusters", len(covered), coarse.K)
	}
}

func TestPropagateRecoversLabelsWithTinyBudget(t *testing.T) {
	ds := datasets.Synthetic("t", 800, 10, 4, 0.9, rand.New(rand.NewSource(71)))
	mg := analysis(t, ds.Rows, ds.Cardinalities(), 2)
	budget := 2 * mg.Final().K
	queries, err := SelectQueries(ds.Rows, mg, budget)
	if err != nil {
		t.Fatal(err)
	}
	// Oracle: the ground-truth labels of the queried objects only.
	answers := make(map[int]int, len(queries))
	for _, q := range queries {
		answers[q.Index] = ds.Labels[q.Index]
	}
	pred, err := Propagate(ds.Rows, mg, answers)
	if err != nil {
		t.Fatal(err)
	}
	acc := 0
	for i := range pred {
		if pred[i] == ds.Labels[i] {
			acc++
		}
	}
	frac := float64(acc) / float64(ds.N())
	t.Logf("labeled %d of %d objects, propagated accuracy %.3f", len(answers), ds.N(), frac)
	if frac < 0.75 {
		t.Errorf("propagated accuracy = %v with %d labels, want ≥ 0.75", frac, len(answers))
	}
}

func TestActiveErrors(t *testing.T) {
	ds := datasets.Synthetic("t", 50, 4, 2, 0.9, rand.New(rand.NewSource(72)))
	mg := analysis(t, ds.Rows, ds.Cardinalities(), 3)
	if _, err := SelectQueries(ds.Rows, nil, 3); err == nil {
		t.Error("nil analysis: want error")
	}
	if _, err := SelectQueries(ds.Rows, mg, 0); err == nil {
		t.Error("zero budget: want error")
	}
	if _, err := Propagate(ds.Rows, mg, nil); err == nil {
		t.Error("no answers: want error")
	}
	if _, err := Propagate(ds.Rows, mg, map[int]int{999: 0}); err == nil {
		t.Error("out-of-range answer: want error")
	}
}
