// Package active implements the paper's third future-work direction:
// leveraging MGCPL's multi-granular analysis for active learning, so that a
// human expert labels only a handful of well-chosen objects and the nested
// cluster structure propagates those labels to the rest of the data set.
//
// The query strategy exploits the granularity hierarchy directly: the
// coarsest level decides how the labeling budget is split (big clusters get
// more queries), and within each coarse cluster the queries are placed on
// the medoids of its largest fine-grained sub-clusters — the objects that
// represent the most data. Label propagation then walks the hierarchy from
// fine to coarse: each fine cluster takes the label of its queried object if
// it has one, otherwise the majority label of its parent coarse cluster.
package active

import (
	"errors"
	"fmt"
	"sort"

	"mcdc/internal/core"
	"mcdc/internal/kmodes"
)

// Query is one labeling request: present object Index to the oracle.
type Query struct {
	Index       int // object to label
	FineCluster int // fine-granularity cluster it represents
	Weight      int // how many objects that cluster contains
}

// SelectQueries picks at most budget objects to label from a multi-granular
// analysis of rows. It needs at least one granularity level; budget must be
// ≥ the number of coarse clusters to guarantee coverage.
func SelectQueries(rows [][]int, mg *core.MGCPLResult, budget int) ([]Query, error) {
	if mg == nil || mg.Sigma() == 0 {
		return nil, errors.New("active: empty multi-granular analysis")
	}
	if budget <= 0 {
		return nil, fmt.Errorf("active: budget must be positive, got %d", budget)
	}
	fine := mg.Levels[0]
	coarse := mg.Final()

	// Group fine clusters under their dominant coarse parent.
	type fineInfo struct {
		id      int
		size    int
		parent  int
		members []int
	}
	fines := make(map[int]*fineInfo)
	parentVotes := make(map[int]map[int]int)
	for i := range rows {
		f := fine.Labels[i]
		if fines[f] == nil {
			fines[f] = &fineInfo{id: f}
			parentVotes[f] = make(map[int]int)
		}
		fines[f].size++
		fines[f].members = append(fines[f].members, i)
		parentVotes[f][coarse.Labels[i]]++
	}
	for f, votes := range parentVotes {
		best, bestC := 0, -1
		for p, c := range votes {
			if c > bestC {
				best, bestC = p, c
			}
		}
		fines[f].parent = best
	}

	// Order fine clusters by size (largest first) with parent round-robin:
	// every coarse cluster gets representation before any gets a second
	// query.
	ordered := make([]*fineInfo, 0, len(fines))
	for _, fi := range fines {
		ordered = append(ordered, fi)
	}
	sort.Slice(ordered, func(a, b int) bool {
		if ordered[a].size != ordered[b].size {
			return ordered[a].size > ordered[b].size
		}
		return ordered[a].id < ordered[b].id
	})
	var queries []Query
	usedParent := make(map[int]int)
	for round := 0; len(queries) < budget && round < len(ordered); {
		progressed := false
		minUse := len(rows)
		for _, fi := range ordered {
			if usedParent[fi.parent] < minUse {
				minUse = usedParent[fi.parent]
			}
		}
		taken := make(map[int]bool, len(queries))
		for _, q := range queries {
			taken[q.FineCluster] = true
		}
		for _, fi := range ordered {
			if len(queries) >= budget {
				break
			}
			if taken[fi.id] || usedParent[fi.parent] > minUse {
				continue
			}
			queries = append(queries, Query{
				Index:       medoid(rows, fi.members),
				FineCluster: fi.id,
				Weight:      fi.size,
			})
			usedParent[fi.parent]++
			progressed = true
		}
		if !progressed {
			break
		}
		round++
	}
	return queries, nil
}

// medoid returns the member minimizing the summed Hamming distance to the
// other members (the most central object of the cluster).
func medoid(rows [][]int, members []int) int {
	if len(members) == 1 {
		return members[0]
	}
	best, bestCost := members[0], int(^uint(0)>>1)
	for _, i := range members {
		cost := 0
		for _, j := range members {
			cost += kmodes.Hamming(rows[i], rows[j])
		}
		if cost < bestCost {
			best, bestCost = i, cost
		}
	}
	return best
}

// Propagate spreads oracle labels (answers[objectIndex] = class) over the
// whole data set using the granularity hierarchy: a fine cluster adopts its
// queried object's label; unlabeled fine clusters adopt the weighted
// majority label of their coarse parent; anything still unlabeled gets the
// global majority. Returns a full per-object labeling.
func Propagate(rows [][]int, mg *core.MGCPLResult, answers map[int]int) ([]int, error) {
	if mg == nil || mg.Sigma() == 0 {
		return nil, errors.New("active: empty multi-granular analysis")
	}
	if len(answers) == 0 {
		return nil, errors.New("active: no oracle answers")
	}
	fine := mg.Levels[0]
	coarse := mg.Final()
	n := len(rows)

	// Fine-cluster labels from direct answers.
	fineLabel := make(map[int]int)
	for idx, y := range answers {
		if idx < 0 || idx >= n {
			return nil, fmt.Errorf("active: answer index %d out of range", idx)
		}
		fineLabel[fine.Labels[idx]] = y
	}
	// Coarse-cluster majorities, weighted by fine-cluster sizes.
	coarseVotes := make(map[int]map[int]int)
	fineSize := make(map[int]int)
	fineParent := make(map[int]map[int]int)
	for i := 0; i < n; i++ {
		f := fine.Labels[i]
		fineSize[f]++
		if fineParent[f] == nil {
			fineParent[f] = make(map[int]int)
		}
		fineParent[f][coarse.Labels[i]]++
	}
	globalVotes := make(map[int]int)
	for f, y := range fineLabel {
		parent := argmaxVotes(fineParent[f])
		if coarseVotes[parent] == nil {
			coarseVotes[parent] = make(map[int]int)
		}
		coarseVotes[parent][y] += fineSize[f]
		globalVotes[y] += fineSize[f]
	}
	globalMajority := argmaxVotes(globalVotes)

	out := make([]int, n)
	for i := 0; i < n; i++ {
		f := fine.Labels[i]
		if y, ok := fineLabel[f]; ok {
			out[i] = y
			continue
		}
		parent := argmaxVotes(fineParent[f])
		if votes, ok := coarseVotes[parent]; ok && len(votes) > 0 {
			out[i] = argmaxVotes(votes)
			continue
		}
		out[i] = globalMajority
	}
	return out, nil
}

func argmaxVotes(votes map[int]int) int {
	best, bestC := 0, -1
	for y, c := range votes {
		if c > bestC || (c == bestC && y < best) {
			best, bestC = y, c
		}
	}
	return best
}
