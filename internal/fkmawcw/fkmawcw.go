// Package fkmawcw implements the FKMAWCW baseline (Oskouei, Balafar &
// Motamed 2021): categorical fuzzy k-modes with automated per-cluster
// attribute-weight and cluster-weight learning. The implementation follows
// the cited paper's alternating-optimization scheme — fuzzy memberships,
// weighted-majority modes, inverse-dispersion attribute weights and
// inverse-dispersion cluster weights — on the simple-matching dissimilarity.
package fkmawcw

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"mcdc/internal/categorical"
	"mcdc/internal/seeding"
)

// Config parameterizes FKMAWCW.
type Config struct {
	K        int
	MaxIters int
	// Fuzzifier m > 1 controls membership softness (cited default 2).
	Fuzzifier float64
	// WeightExponent q > 1 controls attribute-weight softness (default 2).
	WeightExponent float64
	Rand           *rand.Rand
}

// Result carries the converged fuzzy partition, hardened labels, and the
// learned weights.
type Result struct {
	Labels         []int       // argmax memberships
	Membership     [][]float64 // u[i][l]
	AttrWeights    [][]float64 // w[l][r]
	ClusterWeights []float64   // c[l]
	Iters          int
}

const eps = 1e-9

// Run clusters integer-coded rows into cfg.K fuzzy clusters and returns the
// hardened partition.
func Run(rows [][]int, cardinalities []int, cfg Config) (*Result, error) {
	n := len(rows)
	if n == 0 {
		return nil, errors.New("fkmawcw: empty data")
	}
	if cfg.Rand == nil {
		return nil, errors.New("fkmawcw: nil random source")
	}
	k := cfg.K
	if k <= 0 {
		return nil, fmt.Errorf("fkmawcw: k must be positive, got %d", k)
	}
	if k > n {
		k = n
	}
	m := cfg.Fuzzifier
	if m <= 1 {
		m = 2
	}
	q := cfg.WeightExponent
	if q <= 1 {
		q = 2
	}
	maxIters := cfg.MaxIters
	if maxIters <= 0 {
		maxIters = 100
	}
	d := len(cardinalities)

	// Farthest-first seeds: fuzzy memberships flatten out when two initial
	// modes are close, which hardens into fewer than k clusters — the
	// collapse failure mode this algorithm is known for. Spread seeds keep
	// it rare (it still occurs on hard data sets, as the paper reports).
	modes := make([][]int, k)
	for l, i := range seeding.FarthestFirst(rows, k, cfg.Rand) {
		modes[l] = append([]int(nil), rows[i]...)
	}
	w := make([][]float64, k)
	for l := range w {
		w[l] = make([]float64, d)
		for r := range w[l] {
			w[l][r] = 1 / float64(d)
		}
	}
	c := make([]float64, k)
	for l := range c {
		c[l] = 1 / float64(k)
	}
	u := make([][]float64, n)
	for i := range u {
		u[i] = make([]float64, k)
	}

	// dist is the attribute- and cluster-weighted dissimilarity D_il.
	dist := func(i, l int) float64 {
		var s float64
		row := rows[i]
		for r := range row {
			if row[r] != modes[l][r] || row[r] == categorical.Missing {
				s += math.Pow(w[l][r], q)
			}
		}
		return c[l] * s
	}

	updateMembership := func() {
		pw := 1 / (m - 1)
		for i := range u {
			var total float64
			for l := 0; l < k; l++ {
				v := math.Pow(1/(dist(i, l)+eps), pw)
				u[i][l] = v
				total += v
			}
			for l := 0; l < k; l++ {
				u[i][l] /= total
			}
		}
	}

	updateModes := func() {
		for l := 0; l < k; l++ {
			for r := 0; r < d; r++ {
				scores := make([]float64, cardinalities[r])
				for i := range rows {
					v := rows[i][r]
					if v == categorical.Missing {
						continue
					}
					scores[v] += math.Pow(u[i][l], m)
				}
				best, bestS := modes[l][r], -1.0
				for v, s := range scores {
					if s > bestS {
						best, bestS = v, s
					}
				}
				modes[l][r] = best
			}
		}
	}

	updateWeights := func() {
		pw := 1 / (q - 1)
		for l := 0; l < k; l++ {
			// Per-attribute fuzzy dispersion of cluster l.
			disp := make([]float64, d)
			for i := range rows {
				um := math.Pow(u[i][l], m)
				for r := range rows[i] {
					if rows[i][r] != modes[l][r] || rows[i][r] == categorical.Missing {
						disp[r] += um
					}
				}
			}
			var total float64
			for r := range disp {
				disp[r] = math.Pow(1/(disp[r]+eps), pw)
				total += disp[r]
			}
			for r := range disp {
				w[l][r] = disp[r] / total
			}
		}
		// Cluster weights: inverse of the *per-member* (fuzzy-mass
		// normalized) dispersion. Normalizing matters: with raw totals a
		// shrinking cluster looks ever more compact, its weight explodes,
		// membership collapses further, and the cluster dies — a positive
		// feedback loop that destroys the sought k.
		var total float64
		for l := 0; l < k; l++ {
			var dl, mass float64
			for i := range rows {
				um := math.Pow(u[i][l], m)
				mass += um
				for r := range rows[i] {
					if rows[i][r] != modes[l][r] || rows[i][r] == categorical.Missing {
						dl += um * math.Pow(w[l][r], q)
					}
				}
			}
			c[l] = math.Pow(1/(dl/(mass+eps)+eps), 1/(m-1))
			total += c[l]
		}
		for l := range c {
			c[l] /= total
		}
	}

	harden := func() []int {
		labels := make([]int, n)
		for i := range u {
			best, bestU := 0, u[i][0]
			for l := 1; l < k; l++ {
				if u[i][l] > bestU {
					best, bestU = l, u[i][l]
				}
			}
			labels[i] = best
		}
		return labels
	}

	updateMembership()
	prev := harden()
	iters := 0
	for ; iters < maxIters; iters++ {
		updateModes()
		updateWeights()
		updateMembership()
		cur := harden()
		same := true
		for i := range cur {
			if cur[i] != prev[i] {
				same = false
				break
			}
		}
		prev = cur
		if same {
			break
		}
	}
	return &Result{
		Labels:         prev,
		Membership:     u,
		AttrWeights:    w,
		ClusterWeights: c,
		Iters:          iters + 1,
	}, nil
}
