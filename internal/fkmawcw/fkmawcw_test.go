package fkmawcw

import (
	"math"
	"math/rand"
	"testing"

	"mcdc/internal/datasets"
	"mcdc/internal/metrics"
)

func TestMembershipRowsAreDistributions(t *testing.T) {
	ds := datasets.Synthetic("t", 200, 6, 3, 0.9, rand.New(rand.NewSource(8)))
	res, err := Run(ds.Rows, ds.Cardinalities(), Config{K: 3, Rand: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range res.Membership {
		var sum float64
		for _, u := range row {
			if u < -1e-12 || u > 1+1e-12 {
				t.Fatalf("membership outside [0,1]: u[%d] = %v", i, row)
			}
			sum += u
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("membership row %d sums to %v", i, sum)
		}
	}
}

func TestWeightSimplexes(t *testing.T) {
	ds := datasets.Synthetic("t", 200, 6, 2, 0.9, rand.New(rand.NewSource(9)))
	res, err := Run(ds.Rows, ds.Cardinalities(), Config{K: 2, Rand: rand.New(rand.NewSource(2))})
	if err != nil {
		t.Fatal(err)
	}
	for l, w := range res.AttrWeights {
		var sum float64
		for _, x := range w {
			sum += x
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Errorf("attribute weights of cluster %d sum to %v", l, sum)
		}
	}
	var cs float64
	for _, c := range res.ClusterWeights {
		cs += c
	}
	if math.Abs(cs-1) > 1e-6 {
		t.Errorf("cluster weights sum to %v", cs)
	}
}

func TestFuzzyRecovery(t *testing.T) {
	ds := datasets.Synthetic("t", 400, 8, 2, 0.92, rand.New(rand.NewSource(10)))
	best := 0.0
	for seed := int64(0); seed < 5; seed++ {
		res, err := Run(ds.Rows, ds.Cardinalities(), Config{K: 2, Rand: rand.New(rand.NewSource(seed))})
		if err != nil {
			t.Fatal(err)
		}
		acc, err := metrics.Accuracy(ds.Labels, res.Labels)
		if err != nil {
			t.Fatal(err)
		}
		if acc > best {
			best = acc
		}
	}
	if best < 0.85 {
		t.Errorf("best-of-5 ACC = %v, want ≥ 0.85", best)
	}
}

func TestConfigErrors(t *testing.T) {
	if _, err := Run(nil, nil, Config{K: 2, Rand: rand.New(rand.NewSource(1))}); err == nil {
		t.Error("empty data: want error")
	}
	if _, err := Run([][]int{{0}}, []int{1}, Config{K: -1, Rand: rand.New(rand.NewSource(1))}); err == nil {
		t.Error("negative k: want error")
	}
	if _, err := Run([][]int{{0}}, []int{1}, Config{K: 1}); err == nil {
		t.Error("nil rand: want error")
	}
}
