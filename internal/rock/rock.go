// Package rock implements ROCK (Guha, Rastogi & Shim 2000), the link-based
// agglomerative algorithm for categorical attributes. Objects are neighbours
// when their Jaccard similarity exceeds θ; the link count of a pair is the
// number of common neighbours; clusters are merged greedily by the goodness
// measure g(Ci,Cj) = links(Ci,Cj) / ((n_i+n_j)^(1+2f(θ)) − n_i^(1+2f(θ)) −
// n_j^(1+2f(θ))) with f(θ) = (1−θ)/(1+θ).
//
// As in the original system, large data sets are handled by clustering a
// random sample and assigning the remaining objects to the cluster with the
// highest normalized neighbour fraction.
package rock

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"mcdc/internal/categorical"
)

// Config parameterizes ROCK.
type Config struct {
	K int
	// Theta is the neighbourhood similarity threshold θ ∈ (0,1); the cited
	// paper's experiments use values near 0.5 (default here).
	Theta float64
	// SampleSize bounds the number of objects clustered agglomeratively;
	// remaining objects are assigned afterwards (0 = default 800).
	SampleSize int
	Rand       *rand.Rand
}

// Result is the final partition. Clusters is the number of distinct labels
// actually produced: when the link graph is too sparse to merge down to K it
// can differ from K in either direction — the "cannot obtain the pre-set
// number of clusters" failure mode the paper reports for ROCK.
type Result struct {
	Labels   []int
	Clusters int
}

// Run clusters integer-coded rows into (approximately) cfg.K clusters.
func Run(rows [][]int, cardinalities []int, cfg Config) (*Result, error) {
	n := len(rows)
	if n == 0 {
		return nil, errors.New("rock: empty data")
	}
	if cfg.Rand == nil {
		return nil, errors.New("rock: nil random source")
	}
	if cfg.K <= 0 {
		return nil, fmt.Errorf("rock: k must be positive, got %d", cfg.K)
	}
	theta := cfg.Theta
	if theta <= 0 || theta >= 1 {
		theta = 0.5
	}
	sampleSize := cfg.SampleSize
	if sampleSize <= 0 {
		sampleSize = 800
	}

	// Sample when the data set is large.
	sample := make([]int, n)
	for i := range sample {
		sample[i] = i
	}
	if n > sampleSize {
		perm := cfg.Rand.Perm(n)
		sample = perm[:sampleSize]
	}
	s := len(sample)

	// Neighbour lists on the sample.
	jaccard := func(a, b []int) float64 {
		match := 0
		for r := range a {
			if a[r] == b[r] && a[r] != categorical.Missing {
				match++
			}
		}
		return float64(match) / float64(2*len(a)-match)
	}
	nbrs := make([][]int, s)
	for i := 0; i < s; i++ {
		for j := i + 1; j < s; j++ {
			if jaccard(rows[sample[i]], rows[sample[j]]) >= theta {
				nbrs[i] = append(nbrs[i], j)
				nbrs[j] = append(nbrs[j], i)
			}
		}
	}
	// Objects without any neighbour cannot participate in link-based
	// merging; the original system discards such outliers before
	// agglomeration and folds them back in afterwards. Keeping them would
	// waste cluster slots on singletons and force genuine clusters to merge.
	kept := make([]int, 0, s) // kept[j] = original sample slot
	keptIdx := make([]int, s) // sample slot -> kept index, -1 if outlier
	for i := 0; i < s; i++ {
		keptIdx[i] = -1
		if len(nbrs[i]) > 0 {
			keptIdx[i] = len(kept)
			kept = append(kept, i)
		}
	}
	// Pairwise link counts via common-neighbour accumulation (neighbour
	// relations are symmetric, so every neighbour of a kept object is kept).
	links := make(map[[2]int]int)
	for _, nb := range nbrs {
		for a := 0; a < len(nb); a++ {
			for b := a + 1; b < len(nb); b++ {
				key := [2]int{keptIdx[nb[a]], keptIdx[nb[b]]}
				links[key]++
			}
		}
	}

	out := make([]int, n)
	for i := range out {
		out[i] = -1
	}
	remap := make(map[int]int)
	var keptSample []int // original dataset indices of kept objects
	var keptLabels []int
	if len(kept) > 0 {
		labels := agglomerate(len(kept), links, cfg.K, theta)
		for j, slot := range kept {
			l := labels[j]
			nl, ok := remap[l]
			if !ok {
				nl = len(remap)
				remap[l] = nl
			}
			out[sample[slot]] = nl
			keptSample = append(keptSample, sample[slot])
			keptLabels = append(keptLabels, nl)
		}
	}
	clusters := len(remap)
	if clusters == 0 {
		// Degenerate: no links at all; everything lands in one cluster.
		for i := range out {
			out[i] = 0
		}
		return &Result{Labels: out, Clusters: 1}, nil
	}
	// Outliers and non-sampled objects are assigned by neighbour fraction.
	identity := make(map[int]int, clusters)
	for l := 0; l < clusters; l++ {
		identity[l] = l
	}
	clusters = assignRest(rows, keptSample, keptLabels, identity, out, theta, jaccard)
	return &Result{Labels: out, Clusters: clusters}, nil
}

// pair is a lazy-invalidation heap entry for a candidate merge.
type pair struct {
	goodness float64
	a, b     int
	va, vb   int // cluster versions at push time
}

type pairHeap []pair

func (h pairHeap) Len() int            { return len(h) }
func (h pairHeap) Less(i, j int) bool  { return h[i].goodness > h[j].goodness }
func (h pairHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pairHeap) Push(x interface{}) { *h = append(*h, x.(pair)) }
func (h *pairHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// agglomerate merges the s singleton clusters down to k using the ROCK
// goodness measure, stopping early when no linked pair remains.
func agglomerate(s int, links map[[2]int]int, k int, theta float64) []int {
	f := (1 - theta) / (1 + theta)
	expo := 1 + 2*f
	goodness := func(li, ni, nj int) float64 {
		denom := math.Pow(float64(ni+nj), expo) - math.Pow(float64(ni), expo) - math.Pow(float64(nj), expo)
		if denom <= 0 {
			return 0
		}
		return float64(li) / denom
	}

	size := make([]int, s)
	version := make([]int, s)
	alive := make([]bool, s)
	parent := make([]int, s)
	clLinks := make([]map[int]int, s)
	for i := 0; i < s; i++ {
		size[i] = 1
		alive[i] = true
		parent[i] = i
		clLinks[i] = make(map[int]int)
	}
	for key, li := range links {
		clLinks[key[0]][key[1]] = li
		clLinks[key[1]][key[0]] = li
	}

	h := &pairHeap{}
	for key, li := range links {
		heap.Push(h, pair{goodness(li, 1, 1), key[0], key[1], 0, 0})
	}

	remaining := s
	for remaining > k && h.Len() > 0 {
		top := heap.Pop(h).(pair)
		a, b := top.a, top.b
		if !alive[a] || !alive[b] || version[a] != top.va || version[b] != top.vb {
			continue
		}
		if top.goodness <= 0 {
			break
		}
		// Merge b into a.
		alive[b] = false
		parent[b] = a
		size[a] += size[b]
		version[a]++
		delete(clLinks[a], b)
		delete(clLinks[b], a)
		for m, li := range clLinks[b] {
			if !alive[m] {
				continue
			}
			clLinks[a][m] += li
			clLinks[m][a] = clLinks[a][m]
			delete(clLinks[m], b)
		}
		clLinks[b] = nil
		for m, li := range clLinks[a] {
			if !alive[m] {
				continue
			}
			heap.Push(h, pair{goodness(li, size[a], size[m]), a, m, version[a], version[m]})
		}
		remaining--
	}

	// Resolve union-find parents to final labels.
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	labels := make([]int, s)
	for i := range labels {
		labels[i] = find(i)
	}
	return labels
}

// assignRest places the non-sampled objects into the cluster maximizing the
// normalized neighbour fraction N_i(C) / (n_C+1)^f(θ), the disk-resident
// assignment rule of the original system. It returns the final cluster count
// (unlinkable objects join the globally largest cluster rather than forming
// new ones).
func assignRest(rows [][]int, sample []int, sampleLabels []int, remap map[int]int, out []int, theta float64, jaccard func(a, b []int) float64) int {
	f := (1 - theta) / (1 + theta)
	clusters := len(remap)
	sizes := make([]int, clusters)
	for si := range sample {
		sizes[remap[sampleLabels[si]]]++
	}
	largest := 0
	for l, sz := range sizes {
		if sz > sizes[largest] {
			largest = l
		}
	}
	for i := range out {
		if out[i] >= 0 {
			continue
		}
		counts := make([]int, clusters)
		for si, orig := range sample {
			if jaccard(rows[i], rows[orig]) >= theta {
				counts[remap[sampleLabels[si]]]++
			}
		}
		best, bestScore := -1, 0.0
		for l, c := range counts {
			if c == 0 {
				continue
			}
			score := float64(c) / math.Pow(float64(sizes[l]+1), f)
			if score > bestScore {
				best, bestScore = l, score
			}
		}
		if best < 0 {
			best = largest
		}
		out[i] = best
		sizes[best]++
	}
	return clusters
}
