package rock

import (
	"math/rand"
	"testing"

	"mcdc/internal/datasets"
	"mcdc/internal/metrics"
)

func TestRockSeparatedClusters(t *testing.T) {
	ds := datasets.Synthetic("t", 400, 8, 3, 0.92, rand.New(rand.NewSource(12)))
	res, err := Run(ds.Rows, ds.Cardinalities(), Config{K: 3, Rand: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := metrics.Accuracy(ds.Labels, res.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.85 {
		t.Errorf("ACC = %v, want ≥ 0.85 on well-separated data (clusters=%d)", acc, res.Clusters)
	}
}

func TestRockSamplingPath(t *testing.T) {
	// Force sampling with a small SampleSize; unsampled objects must still
	// all receive labels.
	ds := datasets.Synthetic("t", 600, 8, 3, 0.92, rand.New(rand.NewSource(13)))
	res, err := Run(ds.Rows, ds.Cardinalities(), Config{K: 3, SampleSize: 150, Rand: rand.New(rand.NewSource(2))})
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range res.Labels {
		if l < 0 {
			t.Fatalf("object %d unassigned after sampling", i)
		}
	}
	acc, err := metrics.Accuracy(ds.Labels, res.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.8 {
		t.Errorf("sampled ACC = %v, want ≥ 0.8", acc)
	}
}

func TestRockSparseLinksLeavesExtraClusters(t *testing.T) {
	// With θ close to 1 nothing is a neighbour, no links exist, and ROCK
	// cannot reach the sought k — the failure mode the paper reports. The
	// result must still be a valid labeling, just not with k clusters.
	ds := datasets.Synthetic("t", 60, 6, 2, 0.5, rand.New(rand.NewSource(14)))
	res, err := Run(ds.Rows, ds.Cardinalities(), Config{K: 2, Theta: 0.99, Rand: rand.New(rand.NewSource(3))})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters == 2 {
		t.Errorf("theta=0.99 leaves no usable links; the sought k=2 should be unreachable, got exactly 2 clusters")
	}
}

func TestRockErrors(t *testing.T) {
	if _, err := Run(nil, nil, Config{K: 2, Rand: rand.New(rand.NewSource(1))}); err == nil {
		t.Error("empty data: want error")
	}
	if _, err := Run([][]int{{0}}, []int{1}, Config{K: 0, Rand: rand.New(rand.NewSource(1))}); err == nil {
		t.Error("k=0: want error")
	}
	if _, err := Run([][]int{{0}}, []int{1}, Config{K: 1}); err == nil {
		t.Error("nil rand: want error")
	}
}

func TestGoodnessPrefersDenselyLinkedPairs(t *testing.T) {
	// Hand-built link graph: objects 0-2 mutually linked (2 links each
	// pair via common neighbours), object 3 isolated.
	links := map[[2]int]int{
		{0, 1}: 2,
		{0, 2}: 2,
		{1, 2}: 2,
	}
	labels := agglomerate(4, links, 2, 0.5)
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Errorf("linked triangle should merge: %v", labels)
	}
	if labels[3] == labels[0] {
		t.Errorf("isolated object must stay separate: %v", labels)
	}
}
