package distsim

import (
	"fmt"
	"math/rand"

	"mcdc/internal/categorical"
)

// NodeCatalog generates a categorical data set describing a fleet of compute
// nodes, the Fig. 1 scenario of the paper: qualitative features such as GPU
// type and load levels. The fleet is drawn from `profiles` latent hardware
// profiles so that a clustering of the catalog recovers performance-
// consistent node groups.
func NodeCatalog(n, profiles int, rng *rand.Rand) *categorical.Dataset {
	if profiles < 1 {
		profiles = 1
	}
	features := []categorical.Feature{
		{Name: "gpu-type", Values: []string{"A", "B", "C", "D"}},
		{Name: "gpu-usage", Values: []string{"low", "mid", "high"}},
		{Name: "mem-usage", Values: []string{"low", "mid", "high"}},
		{Name: "net-tier", Values: []string{"10G", "25G", "100G"}},
		{Name: "storage", Values: []string{"hdd", "ssd", "nvme"}},
		{Name: "numa", Values: []string{"single", "dual"}},
	}
	d := &categorical.Dataset{Name: "nodes", Features: features}
	// Each profile picks a characteristic value per feature; nodes of the
	// profile take it with probability 0.8.
	char := make([][]int, profiles)
	for p := range char {
		char[p] = make([]int, len(features))
		for r, f := range features {
			char[p][r] = rng.Intn(f.Cardinality())
		}
	}
	for i := 0; i < n; i++ {
		p := i % profiles
		row := make([]int, len(features))
		for r, f := range features {
			if rng.Float64() < 0.8 {
				row[r] = char[p][r]
			} else {
				row[r] = rng.Intn(f.Cardinality())
			}
		}
		d.Rows = append(d.Rows, row)
		d.Labels = append(d.Labels, p)
	}
	return d
}

// GroupConsistency scores a node grouping: the mean, over groups, of the
// fraction of the group's nodes sharing the group's dominant latent profile
// (1.0 = every group is performance-uniform).
func GroupConsistency(profiles, groups []int) (float64, error) {
	if len(profiles) != len(groups) {
		return 0, fmt.Errorf("distsim: %d profiles vs %d group labels", len(profiles), len(groups))
	}
	counts := make(map[int]map[int]int)
	sizes := make(map[int]int)
	for i, g := range groups {
		if counts[g] == nil {
			counts[g] = make(map[int]int)
		}
		counts[g][profiles[i]]++
		sizes[g]++
	}
	var total float64
	for g, profCounts := range counts {
		best := 0
		for _, c := range profCounts {
			if c > best {
				best = c
			}
		}
		total += float64(best) / float64(sizes[g])
	}
	return total / float64(len(counts)), nil
}
