package distsim

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
)

// Coordinator owns a shard queue derived from a Placement and serves it to
// connecting workers over TCP. Each worker connection is a simple
// task/result loop; if a connection drops mid-task, the shard is re-queued
// for another worker, so the job completes as long as at least one worker
// keeps connecting.
type Coordinator struct {
	rows [][]int
	card []int

	// ProtoMin/ProtoMax override the advertised protocol-version range
	// (0 → the build's ProtoMin/ProtoMax). Set before Start; tests use them
	// to pin mixed-fleet handshakes.
	ProtoMin int
	ProtoMax int

	listener net.Listener
	queue    chan Shard
	results  chan ShardStats

	mu        sync.Mutex
	remaining int
	collected []ShardStats

	connMu sync.Mutex
	conns  map[net.Conn]struct{} // live worker connections, closed by Close

	done     chan struct{} // closed when all shards completed
	quit     chan struct{} // closed by Close to stop the accept loop
	quitOnce sync.Once     // guards quit/listener teardown against concurrent Close calls
	closeErr error         // listener close result, written once inside quitOnce
	wg       sync.WaitGroup
}

// NewCoordinator prepares a coordinator serving the placement's shards over
// the given data set rows.
func NewCoordinator(rows [][]int, cardinalities []int, plan *Placement) (*Coordinator, error) {
	if plan == nil || len(plan.Shards) == 0 {
		return nil, errors.New("distsim: empty placement")
	}
	c := &Coordinator{
		rows:      rows,
		card:      cardinalities,
		conns:     make(map[net.Conn]struct{}),
		queue:     make(chan Shard, len(plan.Shards)),
		results:   make(chan ShardStats, len(plan.Shards)),
		remaining: len(plan.Shards),
		done:      make(chan struct{}),
		quit:      make(chan struct{}),
	}
	for _, s := range plan.Shards {
		c.queue <- s
	}
	return c, nil
}

// Start begins listening on a loopback port and returns the address workers
// should dial.
func (c *Coordinator) Start() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", fmt.Errorf("distsim: listen: %w", err)
	}
	c.listener = ln
	c.wg.Add(2)
	go c.acceptLoop()
	go c.collectLoop()
	return ln.Addr().String(), nil
}

func (c *Coordinator) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.listener.Accept()
		if err != nil {
			return // listener closed
		}
		c.wg.Add(1)
		go c.serveWorker(conn)
	}
}

func (c *Coordinator) collectLoop() {
	defer c.wg.Done()
	for {
		select {
		case st := <-c.results:
			c.mu.Lock()
			c.collected = append(c.collected, st)
			c.remaining--
			finished := c.remaining == 0
			c.mu.Unlock()
			if finished {
				close(c.done)
				return
			}
		case <-c.quit:
			return
		}
	}
}

// serveWorker runs the version handshake and then the task/result loop for
// one worker connection. A worker that fails the handshake is dropped before
// any shard is dispatched to it, so the job is unaffected.
func (c *Coordinator) serveWorker(conn net.Conn) {
	defer c.wg.Done()
	defer conn.Close()
	// Track the connection so Close can unblock a serveWorker parked in a
	// Decode (e.g. a peer that connects and then stalls mid-handshake) —
	// gob reads have no deadline, so closing the conn is the only lever.
	c.connMu.Lock()
	c.conns[conn] = struct{}{}
	c.connMu.Unlock()
	defer func() {
		c.connMu.Lock()
		delete(c.conns, conn)
		c.connMu.Unlock()
	}()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	cMin, cMax := c.protoRange()
	// Proto carries the range's floor: a v2-only worker strict-compares it,
	// so it accepts exactly when v2 is still inside the coordinator's range.
	if err := enc.Encode(message{Kind: kindHello, Proto: cMin, ProtoMin: cMin, ProtoMax: cMax}); err != nil {
		return
	}
	var hello message
	if err := dec.Decode(&hello); err != nil || hello.Kind != kindHello {
		// An unversioned (v1) or broken worker build: drop the connection
		// without handing it work.
		return
	}
	wMin, wMax := helloRange(hello)
	ver, err := negotiate(cMin, cMax, wMin, wMax)
	if err != nil {
		// Disjoint ranges: drop the worker before any shard reaches it. The
		// worker derives the same verdict from our hello and reports the
		// ranges on its side.
		return
	}
	sentCard := false
	for {
		var shard Shard
		select {
		case shard = <-c.queue:
		case <-c.done:
			_ = enc.Encode(message{Kind: kindDone})
			return
		case <-c.quit:
			_ = enc.Encode(message{Kind: kindDone})
			return
		}
		task := message{Kind: kindTask, ShardID: shard.ID}
		if ver < 3 || !sentCard {
			// v3 trims repeat tasks: the schema rides only the connection's
			// first frame and the worker caches it.
			task.Cardinalities = c.card
			sentCard = true
		}
		task.Rows = make([][]int, 0, len(shard.Objects))
		for _, i := range shard.Objects {
			task.Rows = append(task.Rows, c.rows[i])
		}
		if err := enc.Encode(task); err != nil {
			c.requeue(shard)
			return
		}
		var reply message
		if err := dec.Decode(&reply); err != nil || reply.Kind != kindResult || reply.Stats.ShardID != shard.ID {
			// Worker failed mid-task: give the shard to someone else.
			c.requeue(shard)
			return
		}
		select {
		case c.results <- reply.Stats:
		case <-c.quit:
			return
		}
	}
}

// protoRange resolves the advertised version range (test overrides or the
// build's defaults).
func (c *Coordinator) protoRange() (int, int) {
	if c.ProtoMax != 0 {
		return c.ProtoMin, c.ProtoMax
	}
	return ProtoMin, ProtoMax
}

func (c *Coordinator) requeue(s Shard) {
	select {
	case c.queue <- s:
	default:
		// Queue capacity equals the shard count, so this cannot happen; the
		// guard only avoids a theoretical deadlock.
	}
}

// Wait blocks until every shard has been processed and returns the collected
// per-shard statistics (in completion order).
func (c *Coordinator) Wait() []ShardStats {
	<-c.done
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ShardStats, len(c.collected))
	copy(out, c.collected)
	return out
}

// Done exposes completion for select-based callers.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Close shuts the coordinator down and waits for its goroutines to exit.
// It is safe to call after Wait, to abort early, and to call concurrently or
// repeatedly: the whole teardown runs exactly once (a bare check-then-close
// of quit would panic when two callers raced past the check together, and
// re-closing the listener would fabricate a net.ErrClosed for the losers),
// and every caller returns the same result.
func (c *Coordinator) Close() error {
	c.quitOnce.Do(func() {
		close(c.quit)
		if c.listener != nil {
			c.closeErr = c.listener.Close()
		}
		// Unblock serveWorkers parked in gob reads on stalled peers; their
		// Decode fails and they exit, so the wg.Wait below cannot hang.
		c.connMu.Lock()
		for conn := range c.conns {
			conn.Close()
		}
		c.connMu.Unlock()
	})
	c.wg.Wait()
	return c.closeErr
}

// MergeStats combines per-shard statistics into fleet-wide per-feature
// histograms — the aggregation a central server performs after the
// distributed pass.
func MergeStats(stats []ShardStats, cardinalities []int) ([][]int, int) {
	freq := make([][]int, len(cardinalities))
	for r, m := range cardinalities {
		freq[r] = make([]int, m)
	}
	total := 0
	for _, st := range stats {
		total += st.Count
		for r := range st.Freq {
			for v, cnt := range st.Freq[r] {
				freq[r][v] += cnt
			}
		}
	}
	return freq, total
}
