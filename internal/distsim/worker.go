package distsim

import (
	"encoding/gob"
	"fmt"
	"net"
)

// Worker processes shards served by a Coordinator.
type Worker struct {
	// MaxShards, when positive, makes the worker exit (without error) after
	// processing that many shards — used by tests to exercise the
	// coordinator's failure-recovery path.
	MaxShards int
}

// Run connects to the coordinator at addr and processes tasks until the
// coordinator reports completion. It returns the number of shards processed.
func (w *Worker) Run(addr string) (int, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return 0, fmt.Errorf("distsim: dial coordinator: %w", err)
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	// Version handshake: the coordinator speaks first; both sides must agree
	// on ProtocolVersion before any shard moves.
	var hello message
	if err := dec.Decode(&hello); err != nil {
		return 0, fmt.Errorf("distsim: handshake: %w", err)
	}
	if hello.Kind != kindHello {
		return 0, fmt.Errorf("distsim: coordinator opened with frame kind %d, not a version handshake (unversioned v1 build?)", hello.Kind)
	}
	if hello.Proto != ProtocolVersion {
		return 0, fmt.Errorf("distsim: protocol version mismatch: coordinator speaks v%d, this worker speaks v%d — rebuild both sides from the same source", hello.Proto, ProtocolVersion)
	}
	if err := enc.Encode(message{Kind: kindHello, Proto: ProtocolVersion}); err != nil {
		return 0, fmt.Errorf("distsim: handshake reply: %w", err)
	}
	processed := 0
	for {
		var task message
		if err := dec.Decode(&task); err != nil {
			return processed, fmt.Errorf("distsim: receive task: %w", err)
		}
		switch task.Kind {
		case kindDone:
			return processed, nil
		case kindTask:
			stats := computeStats(task.ShardID, task.Rows, task.Cardinalities)
			if err := enc.Encode(message{Kind: kindResult, Stats: stats}); err != nil {
				return processed, fmt.Errorf("distsim: send result: %w", err)
			}
			processed++
			if w.MaxShards > 0 && processed >= w.MaxShards {
				return processed, nil
			}
		default:
			return processed, fmt.Errorf("distsim: unexpected message kind %d", task.Kind)
		}
	}
}
