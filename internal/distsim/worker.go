package distsim

import (
	"encoding/gob"
	"fmt"
	"net"
)

// Worker processes shards served by a Coordinator.
type Worker struct {
	// MaxShards, when positive, makes the worker exit (without error) after
	// processing that many shards — used by tests to exercise the
	// coordinator's failure-recovery path.
	MaxShards int

	// ProtoMin/ProtoMax override the advertised protocol-version range
	// (0 → the build's ProtoMin/ProtoMax); tests use them to pin
	// mixed-fleet handshakes.
	ProtoMin int
	ProtoMax int
}

func (w *Worker) protoRange() (int, int) {
	if w.ProtoMax != 0 {
		return w.ProtoMin, w.ProtoMax
	}
	return ProtoMin, ProtoMax
}

// Run connects to the coordinator at addr and processes tasks until the
// coordinator reports completion. It returns the number of shards processed.
func (w *Worker) Run(addr string) (int, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return 0, fmt.Errorf("distsim: dial coordinator: %w", err)
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	// Version handshake: the coordinator speaks first; both sides settle on
	// the highest version their advertised ranges share before any shard
	// moves.
	var hello message
	if err := dec.Decode(&hello); err != nil {
		return 0, fmt.Errorf("distsim: handshake: %w", err)
	}
	if hello.Kind != kindHello {
		return 0, fmt.Errorf("distsim: coordinator opened with frame kind %d, not a version handshake (unversioned v1 build?)", hello.Kind)
	}
	wMin, wMax := w.protoRange()
	cMin, cMax := helloRange(hello)
	ver, err := negotiate(cMin, cMax, wMin, wMax)
	if err != nil {
		return 0, fmt.Errorf("distsim: protocol version mismatch: coordinator speaks %s, this worker speaks %s — rebuild one side so the ranges overlap", rangeString(cMin, cMax), rangeString(wMin, wMax))
	}
	// Proto carries the settled version so a v2-only coordinator (which
	// strict-compares it) accepts exactly when the settlement is v2.
	if err := enc.Encode(message{Kind: kindHello, Proto: ver, ProtoMin: wMin, ProtoMax: wMax}); err != nil {
		return 0, fmt.Errorf("distsim: handshake reply: %w", err)
	}
	processed := 0
	var card []int // schema cache; v3 coordinators send it on the first task only
	for {
		var task message
		if err := dec.Decode(&task); err != nil {
			return processed, fmt.Errorf("distsim: receive task: %w", err)
		}
		switch task.Kind {
		case kindDone:
			return processed, nil
		case kindTask:
			if task.Cardinalities != nil {
				card = task.Cardinalities
			}
			if card == nil {
				return processed, fmt.Errorf("distsim: v%d task frame arrived before any cardinalities", ver)
			}
			stats := computeStats(task.ShardID, task.Rows, card)
			if err := enc.Encode(message{Kind: kindResult, Stats: stats}); err != nil {
				return processed, fmt.Errorf("distsim: send result: %w", err)
			}
			processed++
			if w.MaxShards > 0 && processed >= w.MaxShards {
				return processed, nil
			}
		default:
			return processed, fmt.Errorf("distsim: unexpected message kind %d", task.Kind)
		}
	}
}
