package distsim

import (
	"encoding/gob"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestPlanPreservesLocalityAndBalances(t *testing.T) {
	labels := make([]int, 1000)
	for i := range labels {
		labels[i] = i % 20 // 20 equal clusters
	}
	p, err := Plan(labels, 4)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if got := len(p.Shards); got != 20 {
		t.Fatalf("shards = %d, want 20", got)
	}
	nodeOf := p.ObjectNodes(len(labels))
	loss, err := LocalityLoss(labels, nodeOf, 4)
	if err != nil {
		t.Fatalf("LocalityLoss: %v", err)
	}
	if loss != 0 {
		t.Errorf("locality loss = %v, want 0 (clusters must never be split)", loss)
	}
	if imb := p.Imbalance(); imb > 1.05 {
		t.Errorf("imbalance = %v, want ≤ 1.05 for equal clusters", imb)
	}
}

func TestPlanSkewedClusters(t *testing.T) {
	// One giant cluster and many small ones.
	labels := make([]int, 0, 1100)
	for i := 0; i < 800; i++ {
		labels = append(labels, 0)
	}
	for c := 1; c <= 30; c++ {
		for i := 0; i < 10; i++ {
			labels = append(labels, c)
		}
	}
	p, err := Plan(labels, 3)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	// The giant cluster dominates one node; the rest must share the others.
	nonGiant := 0
	for nd, load := range p.Load {
		if load < 800 {
			nonGiant++
		} else if load != 800 {
			t.Errorf("node %d load = %d, want exactly the giant cluster (800)", nd, load)
		}
	}
	if nonGiant != 2 {
		t.Errorf("expected 2 non-giant nodes, got %d (loads %v)", nonGiant, p.Load)
	}
}

func TestRandomPlacementLosesLocality(t *testing.T) {
	labels := make([]int, 500)
	for i := range labels {
		labels[i] = i % 10
	}
	rng := rand.New(rand.NewSource(1))
	random := make([]int, len(labels))
	for i := range random {
		random[i] = rng.Intn(5)
	}
	loss, err := LocalityLoss(labels, random, 5)
	if err != nil {
		t.Fatalf("LocalityLoss: %v", err)
	}
	if loss < 0.7 {
		t.Errorf("random placement locality loss = %v, want ≈ 1−1/nodes = 0.8", loss)
	}
}

func TestNodeCatalogGrouping(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cat := NodeCatalog(200, 4, rng)
	if err := cat.Validate(); err != nil {
		t.Fatalf("invalid catalog: %v", err)
	}
	if cat.N() != 200 || cat.NumClasses() != 4 {
		t.Fatalf("catalog n=%d classes=%d, want 200/4", cat.N(), cat.NumClasses())
	}
	// Perfect grouping scores 1.0; the identity labeling is perfect.
	consistency, err := GroupConsistency(cat.Labels, cat.Labels)
	if err != nil {
		t.Fatalf("GroupConsistency: %v", err)
	}
	if consistency != 1 {
		t.Errorf("self-consistency = %v, want 1", consistency)
	}
}

// newTestJob builds a small data set, labeling, and placement.
func newTestJob(t *testing.T, nodes int) ([][]int, []int, *Placement) {
	t.Helper()
	rows := make([][]int, 300)
	labels := make([]int, len(rows))
	rng := rand.New(rand.NewSource(7))
	for i := range rows {
		labels[i] = i % 12
		rows[i] = []int{labels[i] % 4, rng.Intn(3), rng.Intn(3)}
	}
	p, err := Plan(labels, nodes)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	return rows, []int{4, 3, 3}, p
}

// TestComputeStatsCohesion pins the condensed-similarity cohesion summary a
// worker attaches to every shard: mean pairwise simple-matching similarity,
// with singletons perfectly cohesive by convention.
func TestComputeStatsCohesion(t *testing.T) {
	card := []int{2, 3}
	uniform := [][]int{{1, 2}, {1, 2}, {1, 2}}
	if st := computeStats(0, uniform, card); st.Cohesion != 1 {
		t.Errorf("uniform shard cohesion = %v, want 1", st.Cohesion)
	}
	if st := computeStats(1, [][]int{{0, 1}}, card); st.Cohesion != 1 {
		t.Errorf("singleton shard cohesion = %v, want 1", st.Cohesion)
	}
	// Three rows, pairwise matches 1/2, 0/2, 1/2 -> mean 1/3.
	mixed := [][]int{{0, 1}, {0, 2}, {1, 2}}
	if st := computeStats(2, mixed, card); st.Cohesion != 1.0/3.0 {
		t.Errorf("mixed shard cohesion = %v, want 1/3", st.Cohesion)
	}
}

func TestCoordinatorWorkersComplete(t *testing.T) {
	rows, card, plan := newTestJob(t, 3)
	coord, err := NewCoordinator(rows, card, plan)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	addr, err := coord.Start()
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer coord.Close()

	errs := make(chan error, 3)
	for w := 0; w < 3; w++ {
		go func() {
			_, err := (&Worker{}).Run(addr)
			errs <- err
		}()
	}
	stats := coord.Wait()
	if len(stats) != len(plan.Shards) {
		t.Fatalf("collected %d shard stats, want %d", len(stats), len(plan.Shards))
	}
	freq, total := MergeStats(stats, card)
	if total != len(rows) {
		t.Errorf("merged count = %d, want %d", total, len(rows))
	}
	var sum int
	for _, c := range freq[0] {
		sum += c
	}
	if sum != len(rows) {
		t.Errorf("feature-0 histogram mass = %d, want %d", sum, len(rows))
	}
	for w := 0; w < 3; w++ {
		select {
		case err := <-errs:
			if err != nil {
				t.Errorf("worker: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("worker did not finish")
		}
	}
}

func TestCoordinatorSurvivesWorkerFailure(t *testing.T) {
	rows, card, plan := newTestJob(t, 2)
	coord, err := NewCoordinator(rows, card, plan)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	addr, err := coord.Start()
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer coord.Close()

	// A flaky worker that quits after one shard, then a reliable one.
	go func() { _, _ = (&Worker{MaxShards: 1}).Run(addr) }()
	go func() { _, _ = (&Worker{}).Run(addr) }()

	done := make(chan []ShardStats, 1)
	go func() { done <- coord.Wait() }()
	select {
	case stats := <-done:
		if len(stats) != len(plan.Shards) {
			t.Fatalf("collected %d shard stats, want %d", len(stats), len(plan.Shards))
		}
		_, total := MergeStats(stats, card)
		if total != len(rows) {
			t.Errorf("merged count = %d, want %d (every shard exactly once)", total, len(rows))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("job did not complete after worker failure")
	}
}

func TestCoordinatorEarlyClose(t *testing.T) {
	rows, card, plan := newTestJob(t, 2)
	coord, err := NewCoordinator(rows, card, plan)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	addr, err := coord.Start()
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	// A worker connects, then the job is aborted before completion. Close
	// must terminate every goroutine without deadlocking, and the worker
	// must come back (with or without an error, depending on timing).
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		_, _ = (&Worker{MaxShards: 1}).Run(addr)
	}()
	<-workerDone
	closed := make(chan error, 1)
	go func() { closed <- coord.Close() }()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close deadlocked after early abort")
	}
}

// TestCoordinatorConcurrentClose pins the shutdown path against racing
// callers: Close from several goroutines at once must neither panic (a bare
// check-then-close of the quit channel would) nor deadlock.
func TestCoordinatorConcurrentClose(t *testing.T) {
	rows, card, plan := newTestJob(t, 2)
	coord, err := NewCoordinator(rows, card, plan)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	if _, err := coord.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = coord.Close()
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("concurrent Close deadlocked")
	}
}

// TestWorkerRejectsVersionMismatch pins the fail-fast path of the version
// handshake: a coordinator speaking a different protocol version yields a
// clear error mentioning both versions, not a decode panic mid-job.
func TestWorkerRejectsVersionMismatch(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		_ = gob.NewEncoder(conn).Encode(message{Kind: kindHello, Proto: ProtocolVersion + 7})
		// Hold the connection open so the worker's error comes from the
		// version check, not a hangup.
		var reply message
		_ = gob.NewDecoder(conn).Decode(&reply)
	}()
	_, err = (&Worker{}).Run(ln.Addr().String())
	if err == nil {
		t.Fatal("version mismatch accepted")
	}
	if !strings.Contains(err.Error(), "protocol version mismatch") {
		t.Fatalf("error does not name the mismatch: %v", err)
	}
}

// TestWorkerRejectsUnversionedCoordinator covers a pre-handshake (v1) build:
// the first frame is a task, and the worker must refuse it by name.
func TestWorkerRejectsUnversionedCoordinator(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		_ = gob.NewEncoder(conn).Encode(message{Kind: kindTask, ShardID: 1, Rows: [][]int{{0}}, Cardinalities: []int{1}})
		var reply message
		_ = gob.NewDecoder(conn).Decode(&reply)
	}()
	_, err = (&Worker{}).Run(ln.Addr().String())
	if err == nil || !strings.Contains(err.Error(), "version handshake") {
		t.Fatalf("unversioned coordinator not refused by name: %v", err)
	}
}

// TestCoordinatorDropsMismatchedWorker checks the other direction: the
// coordinator hands no work to a worker that answers the handshake with the
// wrong version, and the job still completes through a good worker.
func TestCoordinatorDropsMismatchedWorker(t *testing.T) {
	rows, card, plan := newTestJob(t, 2)
	coord, err := NewCoordinator(rows, card, plan)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := coord.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// A mismatched "worker": completes the handshake with a wrong version
	// and then expects the connection to be closed without any task frame.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc, dec := gob.NewEncoder(conn), gob.NewDecoder(conn)
	var hello message
	if err := dec.Decode(&hello); err != nil || hello.Kind != kindHello || hello.Proto != ProtocolVersion {
		t.Fatalf("coordinator hello = %+v, err %v", hello, err)
	}
	if err := enc.Encode(message{Kind: kindHello, Proto: ProtocolVersion - 1}); err != nil {
		t.Fatal(err)
	}
	var frame message
	if err := dec.Decode(&frame); err == nil {
		t.Fatalf("mismatched worker was handed a frame: %+v", frame)
	}

	// A good worker completes the whole job.
	go func() { _, _ = (&Worker{}).Run(addr) }()
	done := make(chan []ShardStats, 1)
	go func() { done <- coord.Wait() }()
	select {
	case stats := <-done:
		if len(stats) != len(plan.Shards) {
			t.Fatalf("collected %d shard stats, want %d", len(stats), len(plan.Shards))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("job did not complete after dropping the mismatched worker")
	}
}

// TestCloseUnblocksStalledHandshake pins the teardown contract: a peer that
// connects and then goes silent parks serveWorker in a gob read; Close must
// close the connection and return instead of hanging in wg.Wait.
func TestCloseUnblocksStalledHandshake(t *testing.T) {
	rows, card, plan := newTestJob(t, 2)
	coord, err := NewCoordinator(rows, card, plan)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := coord.Start()
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Never answer the handshake; give the coordinator a moment to accept
	// and park in the hello decode.
	time.Sleep(50 * time.Millisecond)

	done := make(chan error, 1)
	go func() { done <- coord.Close() }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on a stalled handshake connection")
	}
}

// TestNegotiate pins the range-settlement math: highest common version wins,
// and disjoint ranges report both by name.
func TestNegotiate(t *testing.T) {
	cases := []struct {
		aMin, aMax, bMin, bMax int
		want                   int
		wantErr                bool
	}{
		{2, 3, 2, 2, 2, false}, // legacy v2-only peer vs v2–v3 build
		{2, 3, 2, 3, 3, false}, // two range builds settle on the top
		{2, 3, 3, 4, 3, false}, // staggered upgrade: overlap at v3
		{3, 4, 2, 3, 3, false}, // symmetric
		{2, 2, 3, 4, 0, true},  // disjoint
		{4, 5, 2, 3, 0, true},  // disjoint the other way
	}
	for _, c := range cases {
		got, err := negotiate(c.aMin, c.aMax, c.bMin, c.bMax)
		if (err != nil) != c.wantErr || got != c.want {
			t.Errorf("negotiate(%d-%d, %d-%d) = %d, %v; want %d, err=%v", c.aMin, c.aMax, c.bMin, c.bMax, got, err, c.want, c.wantErr)
		}
	}
	if _, err := negotiate(4, 5, 2, 3); err == nil || !strings.Contains(err.Error(), "v4–v5") || !strings.Contains(err.Error(), "v2–v3") {
		t.Errorf("disjoint error does not name both ranges: %v", err)
	}
}

// runNegotiatedJob completes one full job between a coordinator and a worker
// pinned to the given version ranges, returning the worker error (if any).
func runNegotiatedJob(t *testing.T, cMin, cMax, wMin, wMax int) error {
	t.Helper()
	rows, card, plan := newTestJob(t, 2)
	coord, err := NewCoordinator(rows, card, plan)
	if err != nil {
		t.Fatal(err)
	}
	coord.ProtoMin, coord.ProtoMax = cMin, cMax
	addr, err := coord.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	werr := make(chan error, 1)
	go func() {
		_, err := (&Worker{ProtoMin: wMin, ProtoMax: wMax}).Run(addr)
		werr <- err
	}()
	done := make(chan []ShardStats, 1)
	go func() { done <- coord.Wait() }()
	select {
	case stats := <-done:
		if len(stats) != len(plan.Shards) {
			t.Fatalf("collected %d shard stats, want %d", len(stats), len(plan.Shards))
		}
		if _, total := MergeStats(stats, card); total != len(rows) {
			t.Fatalf("merged count = %d, want %d", total, len(rows))
		}
		return <-werr
	case err := <-werr:
		return err
	case <-time.After(10 * time.Second):
		t.Fatal("job did not complete")
		return nil
	}
}

// TestVersionNegotiationInterop pins the acceptance criterion: overlapping
// ranges interoperate across a staggered upgrade. A v2-only worker completes
// a job under a v2–v3 coordinator (settling on v2, cardinalities on every
// task), and a v2–v3 pair settles on v3 (cardinalities cached after the
// first task) — both produce complete, correctly merged statistics.
func TestVersionNegotiationInterop(t *testing.T) {
	// v2-only legacy worker × range coordinator → settle on v2.
	if err := runNegotiatedJob(t, ProtoMin, ProtoMax, 2, 2); err != nil {
		t.Errorf("v2-only worker under v2–v3 coordinator: %v", err)
	}
	// Full-range pair → settle on v3 (first-task-only cardinalities).
	if err := runNegotiatedJob(t, ProtoMin, ProtoMax, ProtoMin, ProtoMax); err != nil {
		t.Errorf("v2–v3 pair: %v", err)
	}
	// Staggered: coordinator one version ahead, overlap only at v3.
	if err := runNegotiatedJob(t, 3, 4, ProtoMin, ProtoMax); err != nil {
		t.Errorf("v3–v4 coordinator with v2–v3 worker: %v", err)
	}
}

// TestVersionNegotiationDisjointFailsFast pins the fail-fast path: disjoint
// ranges produce an immediate worker error naming both ranges, and the
// coordinator hands that worker no shard.
func TestVersionNegotiationDisjointFailsFast(t *testing.T) {
	rows, card, plan := newTestJob(t, 2)
	coord, err := NewCoordinator(rows, card, plan)
	if err != nil {
		t.Fatal(err)
	}
	coord.ProtoMin, coord.ProtoMax = 4, 5
	addr, err := coord.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	n, err := (&Worker{}).Run(addr) // build range v2–v3: disjoint from v4–v5
	if err == nil {
		t.Fatal("disjoint ranges accepted")
	}
	if n != 0 {
		t.Fatalf("disjoint-range worker processed %d shards", n)
	}
	for _, want := range []string{"protocol version mismatch", "v4–v5", "v2–v3"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not contain %q", err, want)
		}
	}
}
