package distsim

import "mcdc/internal/similarity"

// Wire protocol between the coordinator and its workers. Every frame is one
// gob-encoded message; Kind discriminates the payload. A connection opens
// with a version handshake — the coordinator sends a hello frame carrying
// ProtocolVersion and the worker must answer with a matching hello — so
// mismatched builds fail fast with a clear error instead of a decode panic
// (or silently mis-interpreted statistics) mid-job.

// ProtocolVersion is the distsim wire-format version. Bump it whenever the
// message struct or the frame sequence changes incompatibly. Version 1 was
// the original handshake-less protocol; a v1 peer fails the handshake with
// an "unversioned build" error rather than a gob mismatch.
const ProtocolVersion = 2

// messageKind discriminates protocol frames.
type messageKind int

const (
	// kindTask carries a shard of work from coordinator to worker.
	kindTask messageKind = iota + 1
	// kindResult carries the shard statistics from worker to coordinator.
	kindResult
	// kindDone tells the worker no work remains.
	kindDone
	// kindHello opens a connection in both directions, carrying Proto.
	kindHello
)

// message is the single frame type exchanged over the wire.
type message struct {
	Kind messageKind

	// Proto is the sender's ProtocolVersion (hello frames only).
	Proto int

	// Task fields (coordinator → worker).
	ShardID       int
	Rows          [][]int
	Cardinalities []int

	// Result fields (worker → coordinator).
	Stats ShardStats
}

// ShardStats is the per-shard analytics a worker computes: the object count,
// the per-feature mode, the per-feature value histograms, and the cohesion of
// the shard. It is the local sufficient statistic a central server needs to
// refine or merge clusters without moving the raw objects again.
type ShardStats struct {
	ShardID int
	Count   int
	Mode    []int
	// Freq[r][v] counts shard objects with value v on feature r.
	Freq [][]int
	// Cohesion is the mean pairwise simple-matching similarity of the
	// shard's rows (1 = all identical; a singleton shard is 1 by
	// convention). Shards are micro-clusters, so a low value flags a
	// granularity level that was cut too coarse for locality-preserving
	// placement.
	Cohesion float64
}

// computeStats derives ShardStats from raw shard rows. The cohesion summary
// streams the condensed pairwise tiling of internal/similarity on all cores
// without materializing the O(s²) matrix, so it is safe on large shards.
func computeStats(shardID int, rows [][]int, cardinalities []int) ShardStats {
	st := ShardStats{
		ShardID:  shardID,
		Count:    len(rows),
		Mode:     make([]int, len(cardinalities)),
		Freq:     make([][]int, len(cardinalities)),
		Cohesion: similarity.MeanPairwise(rows, 0),
	}
	for r, m := range cardinalities {
		st.Freq[r] = make([]int, m)
	}
	for _, row := range rows {
		for r, v := range row {
			if v >= 0 && v < len(st.Freq[r]) {
				st.Freq[r][v]++
			}
		}
	}
	for r := range st.Mode {
		best, bestC := 0, -1
		for v, c := range st.Freq[r] {
			if c > bestC {
				best, bestC = v, c
			}
		}
		st.Mode[r] = best
	}
	return st
}
