package distsim

import (
	"fmt"

	"mcdc/internal/similarity"
)

// Wire protocol between the coordinator and its workers. Every frame is one
// gob-encoded message; Kind discriminates the payload. A connection opens
// with a version handshake: each side's hello advertises the closed range
// [ProtoMin, ProtoMax] of protocol versions it speaks, and both sides settle
// independently on the highest version common to the two ranges. Mixed
// fleets therefore interoperate across a rolling upgrade — a v2-only worker
// and a v2–v3 coordinator run the job at v2 — and only genuinely disjoint
// ranges fail, fast and by name, instead of a decode panic (or silently
// mis-interpreted statistics) mid-job.
//
// Version history:
//
//	v1  handshake-less; such a peer fails the handshake with an
//	    "unversioned build" error rather than a gob mismatch.
//	v2  the hello handshake (single-version, Proto field).
//	v3  per-connection cardinality caching: the coordinator sends
//	    Cardinalities on the first task only and the worker reuses them,
//	    trimming every subsequent task frame.
const (
	ProtoMin = 2
	ProtoMax = 3
)

// ProtocolVersion is the compatibility version put in the hello's legacy
// Proto field. v2-only builds compare it with strict equality, so it must
// stay ProtoMin for as long as v2 is in the supported range.
const ProtocolVersion = ProtoMin

// helloRange reads a peer's advertised range. A v2-only build predates the
// range fields and sends only Proto — its range is the single version.
func helloRange(h message) (lo, hi int) {
	if h.ProtoMax == 0 {
		return h.Proto, h.Proto
	}
	return h.ProtoMin, h.ProtoMax
}

// negotiate settles two ranges on their highest common version, or reports
// the incompatibility naming both ranges.
func negotiate(aMin, aMax, bMin, bMax int) (int, error) {
	v := aMax
	if bMax < v {
		v = bMax
	}
	lo := aMin
	if bMin > lo {
		lo = bMin
	}
	if v < lo {
		return 0, fmt.Errorf("no common protocol version between %s and %s", rangeString(aMin, aMax), rangeString(bMin, bMax))
	}
	return v, nil
}

func rangeString(lo, hi int) string {
	if lo == hi {
		return fmt.Sprintf("v%d", lo)
	}
	return fmt.Sprintf("v%d–v%d", lo, hi)
}

// messageKind discriminates protocol frames.
type messageKind int

const (
	// kindTask carries a shard of work from coordinator to worker.
	kindTask messageKind = iota + 1
	// kindResult carries the shard statistics from worker to coordinator.
	kindResult
	// kindDone tells the worker no work remains.
	kindDone
	// kindHello opens a connection in both directions, carrying Proto.
	kindHello
)

// message is the single frame type exchanged over the wire.
type message struct {
	Kind messageKind

	// Proto is the legacy single-version field (hello frames only): the
	// compatibility version for v2-only peers, which check it with strict
	// equality. Range-aware builds read ProtoMin/ProtoMax instead.
	Proto int
	// ProtoMin and ProtoMax advertise the sender's supported version range
	// (hello frames only). Zero ProtoMax marks a pre-range (v2-only) peer;
	// gob omits zero fields, so old and new builds decode each other.
	ProtoMin int
	ProtoMax int

	// Task fields (coordinator → worker). Cardinalities is nil on follow-up
	// tasks when the negotiated version is ≥ 3 (the worker caches them from
	// the connection's first task).
	ShardID       int
	Rows          [][]int
	Cardinalities []int

	// Result fields (worker → coordinator).
	Stats ShardStats
}

// ShardStats is the per-shard analytics a worker computes: the object count,
// the per-feature mode, the per-feature value histograms, and the cohesion of
// the shard. It is the local sufficient statistic a central server needs to
// refine or merge clusters without moving the raw objects again.
type ShardStats struct {
	ShardID int
	Count   int
	Mode    []int
	// Freq[r][v] counts shard objects with value v on feature r.
	Freq [][]int
	// Cohesion is the mean pairwise simple-matching similarity of the
	// shard's rows (1 = all identical; a singleton shard is 1 by
	// convention). Shards are micro-clusters, so a low value flags a
	// granularity level that was cut too coarse for locality-preserving
	// placement.
	Cohesion float64
}

// computeStats derives ShardStats from raw shard rows. The cohesion summary
// streams the condensed pairwise tiling of internal/similarity on all cores
// without materializing the O(s²) matrix, so it is safe on large shards.
func computeStats(shardID int, rows [][]int, cardinalities []int) ShardStats {
	st := ShardStats{
		ShardID:  shardID,
		Count:    len(rows),
		Mode:     make([]int, len(cardinalities)),
		Freq:     make([][]int, len(cardinalities)),
		Cohesion: similarity.MeanPairwise(rows, 0),
	}
	for r, m := range cardinalities {
		st.Freq[r] = make([]int, m)
	}
	for _, row := range rows {
		for r, v := range row {
			if v >= 0 && v < len(st.Freq[r]) {
				st.Freq[r][v]++
			}
		}
	}
	for r := range st.Mode {
		best, bestC := 0, -1
		for v, c := range st.Freq[r] {
			if c > bestC {
				best, bestC = v, c
			}
		}
		st.Mode[r] = best
	}
	return st
}
