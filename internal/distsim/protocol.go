package distsim

// Wire protocol between the coordinator and its workers. Every frame is one
// gob-encoded message; Kind discriminates the payload.

// messageKind discriminates protocol frames.
type messageKind int

const (
	// kindTask carries a shard of work from coordinator to worker.
	kindTask messageKind = iota + 1
	// kindResult carries the shard statistics from worker to coordinator.
	kindResult
	// kindDone tells the worker no work remains.
	kindDone
)

// message is the single frame type exchanged over the wire.
type message struct {
	Kind messageKind

	// Task fields (coordinator → worker).
	ShardID       int
	Rows          [][]int
	Cardinalities []int

	// Result fields (worker → coordinator).
	Stats ShardStats
}

// ShardStats is the per-shard analytics a worker computes: the object count,
// the per-feature mode and the per-feature value histograms of the shard.
// It is the local sufficient statistic a central server needs to refine or
// merge clusters without moving the raw objects again.
type ShardStats struct {
	ShardID int
	Count   int
	Mode    []int
	// Freq[r][v] counts shard objects with value v on feature r.
	Freq [][]int
}

// computeStats derives ShardStats from raw shard rows.
func computeStats(shardID int, rows [][]int, cardinalities []int) ShardStats {
	st := ShardStats{
		ShardID: shardID,
		Count:   len(rows),
		Mode:    make([]int, len(cardinalities)),
		Freq:    make([][]int, len(cardinalities)),
	}
	for r, m := range cardinalities {
		st.Freq[r] = make([]int, m)
	}
	for _, row := range rows {
		for r, v := range row {
			if v >= 0 && v < len(st.Freq[r]) {
				st.Freq[r][v]++
			}
		}
	}
	for r := range st.Mode {
		best, bestC := 0, -1
		for v, c := range st.Freq[r] {
			if c > bestC {
				best, bestC = v, c
			}
		}
		st.Mode[r] = best
	}
	return st
}
