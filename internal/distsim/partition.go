// Package distsim builds out the distributed-computing scenario the paper
// motivates in §III-D: using MCDC's multi-granular analysis to
//
//  1. pre-partition a categorical data set into compact, locality-preserving
//     shards that a central server can place onto compute nodes, and
//  2. group compute nodes (described by categorical features, Fig. 1 of the
//     paper) into performance-consistent pools.
//
// It also provides a concrete coordinator/worker runtime over TCP +
// encoding/gob so the shard placement can drive real distributed work: the
// coordinator streams shards to workers, workers compute per-shard cluster
// statistics, and the coordinator merges them. Worker failures re-queue
// their shards.
package distsim

import (
	"errors"
	"fmt"
	"sort"
)

// Shard is one locality-preserving unit of work: the object indices of one
// micro-cluster at the chosen granularity.
type Shard struct {
	ID      int
	Cluster int   // micro-cluster id the shard was cut from
	Objects []int // indices into the source data set
}

// Placement maps shards onto nodes.
type Placement struct {
	Shards []Shard
	// NodeOf[shardID] is the node index the shard is placed on.
	NodeOf []int
	// Load[node] is the number of objects placed on the node.
	Load []int
}

// Plan builds a locality-preserving placement of data objects onto `nodes`
// compute nodes from a cluster labeling (typically one granularity level of
// an MGCPL analysis — finer levels give the balancer more freedom, coarser
// levels preserve more correlation).
//
// Each cluster becomes one shard; shards are placed onto the least-loaded
// node, largest-first (LPT scheduling), so objects of the same cluster are
// never split across nodes while node loads stay balanced.
func Plan(labels []int, nodes int) (*Placement, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("distsim: node count must be positive, got %d", nodes)
	}
	if len(labels) == 0 {
		return nil, errors.New("distsim: empty labeling")
	}
	groups := make(map[int][]int)
	for i, l := range labels {
		if l < 0 {
			return nil, fmt.Errorf("distsim: negative label at object %d", i)
		}
		groups[l] = append(groups[l], i)
	}
	p := &Placement{Load: make([]int, nodes)}
	for cluster, objs := range groups {
		p.Shards = append(p.Shards, Shard{Cluster: cluster, Objects: objs})
	}
	// Deterministic order: largest shard first, ties by cluster id.
	sort.Slice(p.Shards, func(a, b int) bool {
		sa, sb := p.Shards[a], p.Shards[b]
		if len(sa.Objects) != len(sb.Objects) {
			return len(sa.Objects) > len(sb.Objects)
		}
		return sa.Cluster < sb.Cluster
	})
	p.NodeOf = make([]int, len(p.Shards))
	for i := range p.Shards {
		p.Shards[i].ID = i
		best := 0
		for nd := 1; nd < nodes; nd++ {
			if p.Load[nd] < p.Load[best] {
				best = nd
			}
		}
		p.NodeOf[i] = best
		p.Load[best] += len(p.Shards[i].Objects)
	}
	return p, nil
}

// Imbalance returns the ratio of the heaviest node load to the ideal
// (uniform) load; 1.0 is perfect balance.
func (p *Placement) Imbalance() float64 {
	total, max := 0, 0
	for _, l := range p.Load {
		total += l
		if l > max {
			max = l
		}
	}
	if total == 0 {
		return 1
	}
	ideal := float64(total) / float64(len(p.Load))
	return float64(max) / ideal
}

// LocalityLoss measures how much cluster correlation a placement destroyed:
// the fraction of same-cluster object pairs that ended up on different
// nodes. Plan always returns 0 (clusters are never split); a random or
// round-robin placement scores close to 1−1/nodes.
func LocalityLoss(labels []int, nodeOfObject []int, nodes int) (float64, error) {
	if len(labels) != len(nodeOfObject) {
		return 0, fmt.Errorf("distsim: %d labels vs %d node assignments", len(labels), len(nodeOfObject))
	}
	// Count same-cluster pairs per node cheaply via per-(cluster,node) sizes.
	type key struct{ cluster, node int }
	sizes := make(map[key]int)
	clusterSizes := make(map[int]int)
	for i, l := range labels {
		sizes[key{l, nodeOfObject[i]}]++
		clusterSizes[l]++
	}
	var samePairs, keptPairs float64
	for l, sz := range clusterSizes {
		samePairs += float64(sz) * float64(sz-1) / 2
		for nd := 0; nd < nodes; nd++ {
			s := sizes[key{l, nd}]
			keptPairs += float64(s) * float64(s-1) / 2
		}
	}
	if samePairs == 0 {
		return 0, nil
	}
	return 1 - keptPairs/samePairs, nil
}

// ObjectNodes expands a placement to a per-object node assignment.
func (p *Placement) ObjectNodes(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = -1
	}
	for si, shard := range p.Shards {
		for _, obj := range shard.Objects {
			out[obj] = p.NodeOf[si]
		}
	}
	return out
}
