package categorical

import (
	"encoding/csv"
	"fmt"
	"io"
)

// ReadCSV parses a categorical data set from CSV. When hasHeader is true the
// first record names the features. classCol selects the ground-truth label
// column (use -1 for unlabeled data); missingToken marks missing values
// ("" disables missing detection, "?" is the UCI convention).
func ReadCSV(r io.Reader, name string, hasHeader bool, classCol int, missingToken string) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("read csv: %w", err)
	}
	if len(records) == 0 {
		return nil, ErrEmptyDataset
	}
	var header []string
	if hasHeader {
		header = records[0]
		records = records[1:]
	}
	return FromStrings(name, header, records, classCol, missingToken)
}

// WriteCSV emits the data set as CSV with a header row. Ground-truth labels,
// if present, are appended as a final "class" column.
func WriteCSV(w io.Writer, d *Dataset) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, d.D()+1)
	for _, f := range d.Features {
		header = append(header, f.Name)
	}
	withClass := d.Labels != nil
	if withClass {
		header = append(header, "class")
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("write header: %w", err)
	}
	rec := make([]string, len(header))
	for i, row := range d.Rows {
		for r, v := range row {
			if v == Missing {
				rec[r] = "?"
			} else {
				rec[r] = d.Features[r].Values[v]
			}
		}
		if withClass {
			rec[len(rec)-1] = fmt.Sprintf("c%d", d.Labels[i])
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
