package categorical

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func sampleDataset(t *testing.T) *Dataset {
	t.Helper()
	d, err := FromStrings("sample",
		[]string{"color", "size", "class"},
		[][]string{
			{"red", "small", "a"},
			{"blue", "large", "b"},
			{"red", "large", "a"},
			{"green", "?", "b"},
		}, 2, "?")
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFromStrings(t *testing.T) {
	d := sampleDataset(t)
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if d.N() != 4 || d.D() != 2 || d.NumClasses() != 2 {
		t.Fatalf("n=%d d=%d k=%d, want 4/2/2", d.N(), d.D(), d.NumClasses())
	}
	if got := d.Features[0].Cardinality(); got != 3 {
		t.Errorf("color cardinality = %d, want 3", got)
	}
	if d.Rows[3][1] != Missing {
		t.Errorf("missing token not decoded: %v", d.Rows[3])
	}
	if d.Features[0].Code("blue") != 1 || d.Features[0].Code("nope") != Missing {
		t.Error("Feature.Code lookup broken")
	}
}

func TestFromStringsErrors(t *testing.T) {
	if _, err := FromStrings("x", nil, nil, -1, ""); err == nil {
		t.Error("empty rows: want error")
	}
	if _, err := FromStrings("x", []string{"a"}, [][]string{{"v", "w"}}, -1, ""); err == nil {
		t.Error("header width mismatch: want error")
	}
	if _, err := FromStrings("x", nil, [][]string{{"v"}, {"v", "w"}}, -1, ""); err == nil {
		t.Error("ragged rows: want error")
	}
	if _, err := FromStrings("x", nil, [][]string{{"v"}}, 5, ""); err == nil {
		t.Error("class column out of range: want error")
	}
}

func TestOmitMissing(t *testing.T) {
	d := sampleDataset(t)
	clean := d.OmitMissing()
	if clean.N() != 3 {
		t.Fatalf("OmitMissing kept %d rows, want 3", clean.N())
	}
	if len(clean.Labels) != 3 {
		t.Fatalf("labels not filtered: %v", clean.Labels)
	}
	// Original untouched.
	if d.N() != 4 {
		t.Error("OmitMissing mutated the source")
	}
}

func TestSubsetAndClone(t *testing.T) {
	d := sampleDataset(t)
	sub := d.Subset([]int{2, 0})
	if sub.N() != 2 || sub.Rows[0][0] != d.Rows[2][0] || sub.Labels[1] != d.Labels[0] {
		t.Errorf("Subset wrong: %+v", sub)
	}
	// Mutating the subset must not touch the source.
	sub.Rows[0][0] = 99
	if d.Rows[2][0] == 99 {
		t.Error("Subset shares row storage with source")
	}
	cl := d.Clone()
	if !reflect.DeepEqual(cl.Rows, d.Rows) || !reflect.DeepEqual(cl.Labels, d.Labels) {
		t.Error("Clone differs from source")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	d := sampleDataset(t)
	d.Rows[0][0] = 17
	if err := d.Validate(); err == nil {
		t.Error("out-of-domain code: want error")
	}
	d = sampleDataset(t)
	d.Rows[1] = d.Rows[1][:1]
	if err := d.Validate(); err == nil {
		t.Error("short row: want error")
	}
	d = sampleDataset(t)
	d.Labels = d.Labels[:2]
	if err := d.Validate(); err == nil {
		t.Error("label count mismatch: want error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := sampleDataset(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := ReadCSV(strings.NewReader(buf.String()), "back", true, 2, "?")
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if back.N() != d.N() || back.D() != d.D() || back.NumClasses() != d.NumClasses() {
		t.Fatalf("round trip changed shape: %s vs %s", back, d)
	}
	for i := range d.Rows {
		for r := range d.Rows[i] {
			gotLabel := "?"
			if back.Rows[i][r] != Missing {
				gotLabel = back.Features[r].Values[back.Rows[i][r]]
			}
			wantLabel := "?"
			if d.Rows[i][r] != Missing {
				wantLabel = d.Features[r].Values[d.Rows[i][r]]
			}
			if gotLabel != wantLabel {
				t.Fatalf("row %d feature %d: %q vs %q", i, r, gotLabel, wantLabel)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), "x", false, -1, ""); err == nil {
		t.Error("empty csv: want error")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1"), "x", false, -1, ""); err == nil {
		t.Error("ragged csv: want error")
	}
}

func TestStringSummary(t *testing.T) {
	d := sampleDataset(t)
	if got := d.String(); !strings.Contains(got, "n=4") || !strings.Contains(got, "k*=2") {
		t.Errorf("String() = %q", got)
	}
}
