// Package categorical defines the data model for purely categorical data
// sets: objects described by qualitative features with small finite domains.
//
// Values are stored integer-encoded (dense codes 0..m_r-1 per feature) so the
// clustering algorithms can index frequency tables directly. The package also
// provides CSV round-tripping, missing-value handling, and basic dataset
// surgery (subset, shuffle, split) used by the experiment harness.
package categorical

import (
	"errors"
	"fmt"
	"strings"
)

// Missing is the sentinel code for a missing (NULL) value. All regular codes
// are non-negative.
const Missing = -1

// Feature describes one categorical feature: its name and the string labels
// of its possible values. Code i corresponds to Values[i].
type Feature struct {
	Name   string
	Values []string
}

// Cardinality returns the number of possible values of the feature.
func (f *Feature) Cardinality() int { return len(f.Values) }

// Code returns the integer code for a value label, or Missing if the label is
// not part of the feature's domain.
func (f *Feature) Code(label string) int {
	for i, v := range f.Values {
		if v == label {
			return i
		}
	}
	return Missing
}

// Dataset is a collection of objects over a fixed categorical schema.
//
// Rows holds one slice per object; Rows[i][r] is the integer code of object
// i's value on feature r, or Missing. Labels optionally holds ground-truth
// class indices (used only by evaluation, never by the clustering itself);
// a nil Labels means unlabeled data.
type Dataset struct {
	Name     string
	Features []Feature
	Rows     [][]int
	Labels   []int
}

// N returns the number of objects.
func (d *Dataset) N() int { return len(d.Rows) }

// D returns the number of features.
func (d *Dataset) D() int { return len(d.Features) }

// Cardinalities returns the per-feature domain sizes m_r.
func (d *Dataset) Cardinalities() []int {
	out := make([]int, len(d.Features))
	for r := range d.Features {
		out[r] = d.Features[r].Cardinality()
	}
	return out
}

// NumClasses returns the number of distinct ground-truth classes, or 0 when
// the data set is unlabeled.
func (d *Dataset) NumClasses() int {
	if d.Labels == nil {
		return 0
	}
	max := -1
	for _, y := range d.Labels {
		if y > max {
			max = y
		}
	}
	return max + 1
}

// Validate checks structural invariants: rectangular rows, codes within
// feature domains, labels (if present) matching the row count.
func (d *Dataset) Validate() error {
	for i, row := range d.Rows {
		if len(row) != len(d.Features) {
			return fmt.Errorf("row %d: got %d values, schema has %d features", i, len(row), len(d.Features))
		}
		for r, v := range row {
			if v == Missing {
				continue
			}
			if v < 0 || v >= d.Features[r].Cardinality() {
				return fmt.Errorf("row %d feature %q: code %d outside domain [0,%d)", i, d.Features[r].Name, v, d.Features[r].Cardinality())
			}
		}
	}
	if d.Labels != nil && len(d.Labels) != len(d.Rows) {
		return fmt.Errorf("labels: got %d, want %d", len(d.Labels), len(d.Rows))
	}
	return nil
}

// ErrEmptyDataset is returned by operations that require at least one object.
var ErrEmptyDataset = errors.New("categorical: empty dataset")

// OmitMissing returns a copy of the data set with every object that has at
// least one missing value removed, mirroring the preprocessing protocol of
// the paper ("data objects with missing values are omitted").
func (d *Dataset) OmitMissing() *Dataset {
	out := &Dataset{Name: d.Name, Features: append([]Feature(nil), d.Features...)}
	for i, row := range d.Rows {
		complete := true
		for _, v := range row {
			if v == Missing {
				complete = false
				break
			}
		}
		if !complete {
			continue
		}
		out.Rows = append(out.Rows, append([]int(nil), row...))
		if d.Labels != nil {
			out.Labels = append(out.Labels, d.Labels[i])
		}
	}
	return out
}

// Subset returns a new data set containing the objects at the given indices,
// in order. Indices may repeat (bootstrap sampling).
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{
		Name:     d.Name,
		Features: append([]Feature(nil), d.Features...),
		Rows:     make([][]int, 0, len(idx)),
	}
	if d.Labels != nil {
		out.Labels = make([]int, 0, len(idx))
	}
	for _, i := range idx {
		out.Rows = append(out.Rows, append([]int(nil), d.Rows[i]...))
		if d.Labels != nil {
			out.Labels = append(out.Labels, d.Labels[i])
		}
	}
	return out
}

// Clone returns a deep copy of the data set.
func (d *Dataset) Clone() *Dataset {
	idx := make([]int, d.N())
	for i := range idx {
		idx[i] = i
	}
	return d.Subset(idx)
}

// String summarizes the data set.
func (d *Dataset) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: n=%d d=%d", d.Name, d.N(), d.D())
	if k := d.NumClasses(); k > 0 {
		fmt.Fprintf(&b, " k*=%d", k)
	}
	return b.String()
}

// FromStrings builds a data set from raw string-valued rows, inferring each
// feature's domain from the observed values (in first-appearance order).
// missingToken marks missing values; pass "" to disable missing detection.
// If classCol >= 0, that column is extracted as the ground-truth label.
func FromStrings(name string, header []string, rows [][]string, classCol int, missingToken string) (*Dataset, error) {
	if len(rows) == 0 {
		return nil, ErrEmptyDataset
	}
	width := len(rows[0])
	if header != nil && len(header) != width {
		return nil, fmt.Errorf("categorical: header has %d columns, rows have %d", len(header), width)
	}
	if classCol >= width {
		return nil, fmt.Errorf("categorical: class column %d outside row width %d", classCol, width)
	}
	d := &Dataset{Name: name}
	colOf := make([]int, 0, width) // dataset feature index -> raw column
	for c := 0; c < width; c++ {
		if c == classCol {
			continue
		}
		f := Feature{Name: fmt.Sprintf("f%d", c)}
		if header != nil {
			f.Name = header[c]
		}
		d.Features = append(d.Features, f)
		colOf = append(colOf, c)
	}
	codes := make([]map[string]int, len(d.Features))
	for r := range codes {
		codes[r] = make(map[string]int)
	}
	classCodes := make(map[string]int)
	for i, raw := range rows {
		if len(raw) != width {
			return nil, fmt.Errorf("categorical: row %d has %d columns, want %d", i, len(raw), width)
		}
		row := make([]int, len(d.Features))
		for r, c := range colOf {
			v := raw[c]
			if missingToken != "" && v == missingToken {
				row[r] = Missing
				continue
			}
			code, ok := codes[r][v]
			if !ok {
				code = len(d.Features[r].Values)
				codes[r][v] = code
				d.Features[r].Values = append(d.Features[r].Values, v)
			}
			row[r] = code
		}
		d.Rows = append(d.Rows, row)
		if classCol >= 0 {
			v := raw[classCol]
			code, ok := classCodes[v]
			if !ok {
				code = len(classCodes)
				classCodes[v] = code
			}
			d.Labels = append(d.Labels, code)
		}
	}
	return d, nil
}
