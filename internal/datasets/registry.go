package datasets

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mcdc/internal/categorical"
)

// logf wraps math.Log; split out so synthetic.go stays import-light.
func logf(x float64) float64 { return math.Log(x) }

// Info describes one entry of the paper's Table II.
type Info struct {
	Name  string // abbreviation used in the paper's tables
	Full  string // descriptive name
	D     int    // number of features
	N     int    // number of objects
	KStar int    // true number of clusters
	Exact bool   // true when the generator reconstructs the set exactly
	Gen   func(rng *rand.Rand) *categorical.Dataset
}

// Table2 lists the eight benchmark data sets of the paper's Table II in
// order. (The two synthetic scalability sets are parameterized; see SynN and
// SynD.)
func Table2() []Info {
	return []Info{
		{Name: "Car.", Full: "Car Evaluation", D: 6, N: 1728, KStar: 4, Exact: true,
			Gen: func(*rand.Rand) *categorical.Dataset { return CarEvaluation() }},
		{Name: "Con.", Full: "Congressional", D: 16, N: 435, KStar: 2,
			Gen: func(rng *rand.Rand) *categorical.Dataset { return Congressional(rng) }},
		{Name: "Che.", Full: "Chess", D: 36, N: 3196, KStar: 2,
			Gen: func(rng *rand.Rand) *categorical.Dataset { return Chess(rng) }},
		{Name: "Mus.", Full: "Mushroom", D: 22, N: 8124, KStar: 2,
			Gen: func(rng *rand.Rand) *categorical.Dataset { return Mushroom(rng) }},
		{Name: "Tic.", Full: "Tic Tac Toe", D: 9, N: 958, KStar: 2, Exact: true,
			Gen: func(*rand.Rand) *categorical.Dataset { return TicTacToe() }},
		{Name: "Vot.", Full: "Vote", D: 16, N: 232, KStar: 2,
			Gen: func(rng *rand.Rand) *categorical.Dataset { return Vote(rng) }},
		{Name: "Bal.", Full: "Balance", D: 4, N: 625, KStar: 3, Exact: true,
			Gen: func(*rand.Rand) *categorical.Dataset { return BalanceScale() }},
		{Name: "Nur.", Full: "Nursery", D: 8, N: 12960, KStar: 5, Exact: true,
			Gen: func(*rand.Rand) *categorical.Dataset { return Nursery() }},
	}
}

// Load generates the named Table-II data set with the given seed. Names are
// matched case-insensitively against the paper abbreviation ("Car.", "Bal.",
// …, with or without the trailing dot) and the full name.
func Load(name string, seed int64) (*categorical.Dataset, error) {
	for _, info := range Table2() {
		if matches(info, name) {
			return info.Gen(rand.New(rand.NewSource(seed))), nil
		}
	}
	return nil, fmt.Errorf("datasets: unknown data set %q (known: %v)", name, Names())
}

// Names returns the Table-II abbreviations in order.
func Names() []string {
	infos := Table2()
	out := make([]string, len(infos))
	for i, info := range infos {
		out[i] = info.Name
	}
	return out
}

func matches(info Info, name string) bool {
	norm := func(s string) string {
		out := make([]rune, 0, len(s))
		for _, c := range s {
			switch {
			case c >= 'A' && c <= 'Z':
				out = append(out, c+'a'-'A')
			case c == '.' || c == ' ' || c == '-' || c == '_':
			default:
				out = append(out, c)
			}
		}
		return string(out)
	}
	n := norm(name)
	return n == norm(info.Name) || n == norm(info.Full)
}

// ClassDistribution returns the sorted class sizes of a labelled data set,
// useful in tests and dataset summaries.
func ClassDistribution(d *categorical.Dataset) []int {
	k := d.NumClasses()
	counts := make([]int, k)
	for _, y := range d.Labels {
		counts[y]++
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	return counts
}
