package datasets

import (
	"fmt"
	"math/rand"

	"mcdc/internal/categorical"
)

// congressionalIssues holds, per roll-call issue, the probability that a
// Democrat (first) and a Republican (second) votes "yea". The profile
// mirrors the real 1984 House votes: most issues are strongly partisan, a
// few are bipartisan. Values are fixed so the generator is reproducible up
// to the seeded sampling noise.
var congressionalIssues = [16][2]float64{
	{0.60, 0.19}, // handicapped-infants
	{0.50, 0.51}, // water-project-cost-sharing (bipartisan)
	{0.89, 0.13}, // adoption-of-the-budget-resolution
	{0.05, 0.99}, // physician-fee-freeze
	{0.22, 0.95}, // el-salvador-aid
	{0.48, 0.90}, // religious-groups-in-schools
	{0.77, 0.24}, // anti-satellite-test-ban
	{0.83, 0.15}, // aid-to-nicaraguan-contras
	{0.76, 0.11}, // mx-missile
	{0.47, 0.55}, // immigration (bipartisan)
	{0.51, 0.13}, // synfuels-corporation-cutback
	{0.14, 0.87}, // education-spending
	{0.29, 0.86}, // superfund-right-to-sue
	{0.35, 0.98}, // crime
	{0.63, 0.09}, // duty-free-exports
	{0.94, 0.66}, // export-administration-act-south-africa
}

var congressionalNames = [16]string{
	"handicapped-infants", "water-project", "budget-resolution",
	"physician-fee-freeze", "el-salvador-aid", "religious-groups",
	"anti-satellite-ban", "nicaraguan-contras", "mx-missile",
	"immigration", "synfuels-cutback", "education-spending",
	"superfund", "crime", "duty-free-exports", "south-africa-export",
}

// Congressional generates the 435-object, 16-feature two-party roll-call
// data set. Each feature takes values {y, n, u}; "u" (undecided/absent)
// substitutes the "?" missing marker of the UCI original so that every
// algorithm sees it as an ordinary category, a common protocol for this set.
// Class 0 = democrat (267 objects), class 1 = republican (168). A fraction
// of members cross the aisle (vote from the other party's profile while
// keeping their own label), calibrated so perfect feature clustering scores
// ACC ≈ 0.87 / ARI ≈ 0.54, the regime the paper reports.
func Congressional(rng *rand.Rand) *categorical.Dataset {
	return rollCall("Con.", 267, 168, 0.055, 0.12, rng)
}

// Vote generates the 232-object variant used in the paper: the roll-call
// data restricted to complete records (no "u" values), with the published
// class balance (124 democrats, 108 republicans) and a smaller
// crossing-the-aisle rate matching the paper's ACC ≈ 0.90 / ARI ≈ 0.65
// ceiling on this set.
func Vote(rng *rand.Rand) *categorical.Dataset {
	return rollCall("Vot.", 124, 108, 0, 0.095, rng)
}

// rollCall emits nDem+nRep members. crossRate is the probability a member
// votes along the other party's profile while keeping their own class label
// — it decouples the feature-space cluster structure from the labels the
// validity indices are computed against, as in the real chamber.
func rollCall(name string, nDem, nRep int, missingRate, crossRate float64, rng *rand.Rand) *categorical.Dataset {
	d := &categorical.Dataset{Name: name}
	values := []string{"y", "n", "u"}
	if missingRate == 0 {
		values = []string{"y", "n"}
	}
	for _, nm := range congressionalNames {
		d.Features = append(d.Features, categorical.Feature{Name: nm, Values: append([]string(nil), values...)})
	}
	appendMember := func(party int) {
		votesAs := party
		if rng.Float64() < crossRate {
			votesAs = 1 - party
		}
		row := make([]int, 16)
		for r, probs := range congressionalIssues {
			if missingRate > 0 && rng.Float64() < missingRate {
				row[r] = 2 // "u"
				continue
			}
			if rng.Float64() < probs[votesAs] {
				row[r] = 0 // yea
			} else {
				row[r] = 1 // nay
			}
		}
		d.Rows = append(d.Rows, row)
		d.Labels = append(d.Labels, party)
	}
	for i := 0; i < nDem; i++ {
		appendMember(0)
	}
	for i := 0; i < nRep; i++ {
		appendMember(1)
	}
	return d
}

// Chess generates a 3196-object, 36-feature stand-in for the UCI kr-vs-kp
// (king-rook-vs-king-pawn) endgame set. Board-state flags carry a strong
// *latent* two-cluster structure (positional archetypes), but the won/nowin
// label is only weakly coupled to it: the label agrees with the latent
// archetype for ≈57% of boards. Feature-space clustering therefore finds two
// crisp clusters while every validity index stays near chance — the regime
// the paper reports on Chess (ACC ≈ 0.50–0.60, ARI ≈ 0.01–0.03).
func Chess(rng *rand.Rand) *categorical.Dataset {
	const (
		n     = 3196
		dFeat = 36
		// labelAgreement is P(label == latent archetype).
		labelAgreement = 0.57
	)
	d := &categorical.Dataset{Name: "Che."}
	for r := 0; r < dFeat; r++ {
		d.Features = append(d.Features, categorical.Feature{
			Name:   fmt.Sprintf("flag%02d", r),
			Values: []string{"f", "t"},
		})
	}
	// Per-feature P(value = t | latent archetype). A third of the flags
	// separate the archetypes strongly; the rest are shared clutter.
	pt := make([][2]float64, dFeat)
	for r := range pt {
		base := 0.15 + 0.7*rng.Float64()
		if r < 12 {
			pt[r] = [2]float64{clamp01(base - 0.25), clamp01(base + 0.25)}
		} else {
			pt[r] = [2]float64{base, base}
		}
	}
	for i := 0; i < n; i++ {
		z := i % 2 // latent archetype
		y := z
		if rng.Float64() >= labelAgreement {
			y = 1 - z
		}
		row := make([]int, dFeat)
		for r := range row {
			if rng.Float64() < pt[r][z] {
				row[r] = 1
			}
		}
		d.Rows = append(d.Rows, row)
		d.Labels = append(d.Labels, y)
	}
	return d
}

// Mushroom generates an 8124-object, 22-feature stand-in for the UCI
// Mushroom set: edible (51.8%) vs poisonous classes over multi-valued
// morphological features. Two latent morphological families carry strong
// feature structure (odor-like features with nearly disjoint supports,
// several moderate ones, shared clutter); the edibility label agrees with
// the family for ≈78% of specimens — reproducing the regime where good
// categorical clusterers reach ACC ≈ 0.7–0.8 and ARI ≈ 0.3.
func Mushroom(rng *rand.Rand) *categorical.Dataset {
	const (
		n = 8124
		// labelAgreement is P(label == latent family).
		labelAgreement = 0.78
	)
	// Cardinalities follow the UCI schema's informative columns.
	cards := []int{6, 4, 10, 2, 9, 2, 2, 2, 12, 2, 5, 4, 4, 9, 9, 4, 3, 5, 9, 6, 7, 2}
	d := &categorical.Dataset{Name: "Mus."}
	for r, m := range cards {
		f := categorical.Feature{Name: fmt.Sprintf("attr%02d", r)}
		for v := 0; v < m; v++ {
			f.Values = append(f.Values, fmt.Sprintf("v%d", v))
		}
		d.Features = append(d.Features, f)
	}
	// Per-family categorical distributions. strength controls how far the
	// two family-conditional distributions are pushed apart.
	dists := make([][2][]float64, len(cards))
	for r, m := range cards {
		var strength float64
		switch {
		case r == 4 || r == 8: // odor-like and gill-color-like: strong
			strength = 0.9
		case r < 8:
			strength = 0.5
		case r < 14:
			strength = 0.25
		default:
			strength = 0.05
		}
		base := randomSimplex(rng, m)
		shift := randomSimplex(rng, m)
		e := make([]float64, m)
		p := make([]float64, m)
		for v := 0; v < m; v++ {
			e[v] = (1-strength)*base[v] + strength*shift[v]
			p[v] = (1-strength)*base[v] + strength*shift[(v+m/2)%m]
		}
		normalize(e)
		normalize(p)
		dists[r] = [2][]float64{e, p}
	}
	for i := 0; i < n; i++ {
		z := 0 // latent family, sized to the published 51.8/48.2 class split
		if i%1000 >= 518 {
			z = 1
		}
		y := z
		if rng.Float64() >= labelAgreement {
			y = 1 - z
		}
		row := make([]int, len(cards))
		for r := range row {
			row[r] = sampleCategorical(rng, dists[r][z])
		}
		d.Rows = append(d.Rows, row)
		d.Labels = append(d.Labels, y)
	}
	return d
}

// Synthetic generates a well-separated k-cluster categorical data set of n
// objects and dFeat features, the construction behind the paper's Syn_n
// (large n) and Syn_d (large d) scalability sets. Each cluster owns a
// distinct dominant value per feature, drawn with probability purity
// (default regime 0.85); remaining mass is uniform over the other values.
func Synthetic(name string, n, dFeat, k int, purity float64, rng *rand.Rand) *categorical.Dataset {
	const card = 4
	if purity <= 0 || purity >= 1 {
		purity = 0.85
	}
	d := &categorical.Dataset{Name: name}
	for r := 0; r < dFeat; r++ {
		f := categorical.Feature{Name: fmt.Sprintf("f%d", r)}
		for v := 0; v < card; v++ {
			f.Values = append(f.Values, fmt.Sprintf("v%d", v))
		}
		d.Features = append(d.Features, f)
	}
	// Dominant value per (cluster, feature).
	dom := make([][]int, k)
	for c := range dom {
		dom[c] = make([]int, dFeat)
		for r := range dom[c] {
			dom[c][r] = rng.Intn(card)
		}
	}
	for i := 0; i < n; i++ {
		y := i % k
		row := make([]int, dFeat)
		for r := 0; r < dFeat; r++ {
			if rng.Float64() < purity {
				row[r] = dom[y][r]
			} else {
				row[r] = (dom[y][r] + 1 + rng.Intn(card-1)) % card
			}
		}
		d.Rows = append(d.Rows, row)
		d.Labels = append(d.Labels, y)
	}
	return d
}

// SynN generates the paper's Syn_n set (d=10, k*=3) with the requested n
// (the paper sweeps n up to 200000).
func SynN(n int, rng *rand.Rand) *categorical.Dataset {
	return Synthetic("Syn_n", n, 10, 3, 0.85, rng)
}

// SynD generates the paper's Syn_d set (n=20000, k*=3) with the requested d
// (the paper sweeps d up to 1000).
func SynD(dFeat int, rng *rand.Rand) *categorical.Dataset {
	return Synthetic("Syn_d", 20000, dFeat, 3, 0.85, rng)
}

func clamp01(x float64) float64 {
	if x < 0.02 {
		return 0.02
	}
	if x > 0.98 {
		return 0.98
	}
	return x
}

func randomSimplex(rng *rand.Rand, m int) []float64 {
	p := make([]float64, m)
	var sum float64
	for i := range p {
		p[i] = -1 * logf(rng.Float64())
		sum += p[i]
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}

func normalize(p []float64) {
	var sum float64
	for _, x := range p {
		sum += x
	}
	if sum <= 0 {
		u := 1 / float64(len(p))
		for i := range p {
			p[i] = u
		}
		return
	}
	for i := range p {
		p[i] /= sum
	}
}

func sampleCategorical(rng *rand.Rand, p []float64) int {
	u := rng.Float64()
	var acc float64
	for v, pv := range p {
		acc += pv
		if u < acc {
			return v
		}
	}
	return len(p) - 1
}
