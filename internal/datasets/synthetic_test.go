package datasets

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestCongressionalShape(t *testing.T) {
	d := Congressional(rand.New(rand.NewSource(1)))
	if err := d.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if d.N() != 435 || d.D() != 16 || d.NumClasses() != 2 {
		t.Fatalf("n=%d d=%d k=%d, want 435/16/2", d.N(), d.D(), d.NumClasses())
	}
	counts := ClassDistribution(d)
	if counts[0] != 267 || counts[1] != 168 {
		t.Errorf("class sizes %v, want [267 168]", counts)
	}
	// Congressional includes the "u" (undecided) category.
	if d.Features[0].Cardinality() != 3 {
		t.Errorf("features should be {y,n,u}: %v", d.Features[0].Values)
	}
}

func TestVoteShape(t *testing.T) {
	d := Vote(rand.New(rand.NewSource(1)))
	if d.N() != 232 || d.D() != 16 || d.NumClasses() != 2 {
		t.Fatalf("n=%d d=%d k=%d, want 232/16/2", d.N(), d.D(), d.NumClasses())
	}
	if d.Features[0].Cardinality() != 2 {
		t.Errorf("Vote is the complete-records variant, features should be {y,n}: %v", d.Features[0].Values)
	}
}

func TestChessShape(t *testing.T) {
	d := Chess(rand.New(rand.NewSource(1)))
	if d.N() != 3196 || d.D() != 36 || d.NumClasses() != 2 {
		t.Fatalf("n=%d d=%d k=%d, want 3196/36/2", d.N(), d.D(), d.NumClasses())
	}
}

func TestMushroomShape(t *testing.T) {
	d := Mushroom(rand.New(rand.NewSource(1)))
	if d.N() != 8124 || d.D() != 22 || d.NumClasses() != 2 {
		t.Fatalf("n=%d d=%d k=%d, want 8124/22/2", d.N(), d.D(), d.NumClasses())
	}
	counts := ClassDistribution(d)
	// Published split is 51.8% / 48.2% ± label noise.
	if frac := float64(counts[0]) / float64(d.N()); frac < 0.5 || frac > 0.58 {
		t.Errorf("majority class fraction = %v, want ≈ 0.52", frac)
	}
}

func TestSyntheticSeparation(t *testing.T) {
	d := Synthetic("t", 300, 10, 3, 0.9, rand.New(rand.NewSource(2)))
	if d.N() != 300 || d.D() != 10 || d.NumClasses() != 3 {
		t.Fatalf("shape wrong: %s", d)
	}
	// Objects of the same class must agree on far more features than
	// objects of different classes.
	agree := func(a, b []int) int {
		c := 0
		for r := range a {
			if a[r] == b[r] {
				c++
			}
		}
		return c
	}
	same, diff, ns, nd := 0, 0, 0, 0
	for i := 0; i < 100; i++ {
		for j := i + 1; j < 100; j++ {
			if d.Labels[i] == d.Labels[j] {
				same += agree(d.Rows[i], d.Rows[j])
				ns++
			} else {
				diff += agree(d.Rows[i], d.Rows[j])
				nd++
			}
		}
	}
	if float64(same)/float64(ns) < 2*float64(diff)/float64(nd) {
		t.Errorf("separation too weak: same=%v diff=%v", float64(same)/float64(ns), float64(diff)/float64(nd))
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, name := range Names() {
		a, err := Load(name, 9)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Load(name, 9)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Rows, b.Rows) || !reflect.DeepEqual(a.Labels, b.Labels) {
			t.Errorf("%s: generation not deterministic for a fixed seed", name)
		}
	}
}

func TestLoadMatchesTable2(t *testing.T) {
	for _, info := range Table2() {
		ds, err := Load(info.Name, 1)
		if err != nil {
			t.Fatal(err)
		}
		if ds.N() != info.N || ds.D() != info.D || ds.NumClasses() != info.KStar {
			t.Errorf("%s: got n=%d d=%d k=%d, Table II says n=%d d=%d k*=%d",
				info.Name, ds.N(), ds.D(), ds.NumClasses(), info.N, info.D, info.KStar)
		}
	}
	if _, err := Load("nope", 1); err == nil {
		t.Error("unknown name: want error")
	}
	// Full names and case variations resolve too.
	if _, err := Load("balance", 1); err != nil {
		t.Errorf("full-name lookup failed: %v", err)
	}
}

func TestSynNAndSynD(t *testing.T) {
	n := SynN(5000, rand.New(rand.NewSource(3)))
	if n.N() != 5000 || n.D() != 10 || n.NumClasses() != 3 {
		t.Errorf("SynN shape: %s", n)
	}
	d := SynD(200, rand.New(rand.NewSource(4)))
	if d.N() != 20000 || d.D() != 200 || d.NumClasses() != 3 {
		t.Errorf("SynD shape: %s", d)
	}
}
