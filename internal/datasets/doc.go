// Package datasets generates the ten evaluation data sets of the paper's
// Table II. The module is offline, so the UCI files cannot be fetched;
// instead:
//
//   - Balance Scale, Tic-Tac-Toe, Car Evaluation and Nursery are *rule
//     data sets*: the UCI originals are full cartesian products of the
//     feature domains labelled by a deterministic model. Balance and
//     Tic-Tac-Toe are reconstructed exactly; Car and Nursery follow a
//     re-implementation of their documented concept hierarchies (same
//     domains, sizes, and the published hard rules; the fine-grained
//     utility tables are approximated and the resulting class skew matches
//     the originals closely).
//   - Congressional/Vote, Chess (kr-vs-kp) and Mushroom are real-world
//     collections, replaced by seeded generative models calibrated to the
//     published schema (d, n, k*, per-feature cardinalities) and to the
//     clustering-difficulty regime the paper reports (see DESIGN.md §3).
//   - Syn_n and Syn_d are the paper's own synthetic scalability sets:
//     well-separated clusters with configurable n and d.
//
// Every generator is deterministic given its *rand.Rand (the exact rule data
// sets take no randomness at all).
package datasets
