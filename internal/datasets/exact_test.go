package datasets

import (
	"testing"
)

func TestBalanceScaleExact(t *testing.T) {
	d := BalanceScale()
	if err := d.Validate(); err != nil {
		t.Fatalf("invalid dataset: %v", err)
	}
	if d.N() != 625 || d.D() != 4 || d.NumClasses() != 3 {
		t.Fatalf("got n=%d d=%d k=%d, want 625/4/3", d.N(), d.D(), d.NumClasses())
	}
	// Published distribution: L=288, B=49, R=288.
	counts := make([]int, 3)
	for _, y := range d.Labels {
		counts[y]++
	}
	if counts[0] != 288 || counts[1] != 49 || counts[2] != 288 {
		t.Fatalf("class counts = %v, want [288 49 288]", counts)
	}
}

func TestTicTacToeExact(t *testing.T) {
	d := TicTacToe()
	if err := d.Validate(); err != nil {
		t.Fatalf("invalid dataset: %v", err)
	}
	if d.N() != 958 {
		t.Fatalf("n = %d, want 958 (UCI tic-tac-toe endgame size)", d.N())
	}
	if d.D() != 9 || d.NumClasses() != 2 {
		t.Fatalf("got d=%d k=%d, want 9/2", d.D(), d.NumClasses())
	}
	pos := 0
	for _, y := range d.Labels {
		if y == 0 {
			pos++
		}
	}
	if pos != 626 {
		t.Fatalf("positive (x wins) count = %d, want 626", pos)
	}
	// No duplicate boards.
	seen := make(map[[9]int]bool, d.N())
	for _, row := range d.Rows {
		var b [9]int
		copy(b[:], row)
		if seen[b] {
			t.Fatalf("duplicate board %v", b)
		}
		seen[b] = true
	}
}

func TestCarEvaluationShape(t *testing.T) {
	d := CarEvaluation()
	if err := d.Validate(); err != nil {
		t.Fatalf("invalid dataset: %v", err)
	}
	if d.N() != 1728 || d.D() != 6 || d.NumClasses() != 4 {
		t.Fatalf("got n=%d d=%d k=%d, want 1728/6/4", d.N(), d.D(), d.NumClasses())
	}
	counts := make([]int, 4)
	for _, y := range d.Labels {
		counts[y]++
	}
	// Hard rules alone force ≥ 1152 unacc; published skew is ≈70%.
	if frac := float64(counts[0]) / 1728; frac < 0.6 || frac > 0.8 {
		t.Errorf("unacc fraction = %.3f, want ≈0.70 (counts %v)", frac, counts)
	}
	for c := 1; c < 4; c++ {
		if counts[c] == 0 {
			t.Errorf("class %d empty: %v", c, counts)
		}
	}
}

func TestNurseryShape(t *testing.T) {
	d := Nursery()
	if err := d.Validate(); err != nil {
		t.Fatalf("invalid dataset: %v", err)
	}
	if d.N() != 12960 || d.D() != 8 || d.NumClasses() != 5 {
		t.Fatalf("got n=%d d=%d k=%d, want 12960/8/5", d.N(), d.D(), d.NumClasses())
	}
	counts := make([]int, 5)
	for _, y := range d.Labels {
		counts[y]++
	}
	if counts[0] != 4320 {
		t.Errorf("not_recom = %d, want exactly 4320 (health hard rule)", counts[0])
	}
	// priority and spec_prior dominate the remainder; recommend is marginal.
	if counts[3] < 2000 || counts[4] < 2000 {
		t.Errorf("priority/spec_prior too small: %v", counts)
	}
	if counts[1] > 1000 {
		t.Errorf("recommend should be marginal, got %d", counts[1])
	}
}
