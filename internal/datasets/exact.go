package datasets

import (
	"sort"

	"mcdc/internal/categorical"
)

// BalanceScale reconstructs the UCI Balance Scale data set exactly: the full
// 5⁴ = 625 cartesian product of (left-weight, left-distance, right-weight,
// right-distance), each in 1..5, labelled L/B/R by torque comparison.
func BalanceScale() *categorical.Dataset {
	levels := []string{"1", "2", "3", "4", "5"}
	d := &categorical.Dataset{
		Name: "Bal.",
		Features: []categorical.Feature{
			{Name: "left-weight", Values: levels},
			{Name: "left-distance", Values: levels},
			{Name: "right-weight", Values: levels},
			{Name: "right-distance", Values: levels},
		},
	}
	// Classes: 0=L, 1=B, 2=R.
	for lw := 0; lw < 5; lw++ {
		for ld := 0; ld < 5; ld++ {
			for rw := 0; rw < 5; rw++ {
				for rd := 0; rd < 5; rd++ {
					left := (lw + 1) * (ld + 1)
					right := (rw + 1) * (rd + 1)
					var y int
					switch {
					case left > right:
						y = 0
					case left == right:
						y = 1
					default:
						y = 2
					}
					d.Rows = append(d.Rows, []int{lw, ld, rw, rd})
					d.Labels = append(d.Labels, y)
				}
			}
		}
	}
	return d
}

// TicTacToe reconstructs the UCI Tic-Tac-Toe Endgame data set exactly: all
// legal board configurations at the end of tic-tac-toe games where "x" moved
// first (958 boards), labelled positive when x has won.
//
// The set is produced by exhaustive game-tree traversal with deduplication:
// play stops as soon as either player completes a line or the board fills up.
func TicTacToe() *categorical.Dataset {
	const (
		blank = 0
		xMark = 1
		oMark = 2
	)
	lines := [8][3]int{
		{0, 1, 2}, {3, 4, 5}, {6, 7, 8}, // rows
		{0, 3, 6}, {1, 4, 7}, {2, 5, 8}, // columns
		{0, 4, 8}, {2, 4, 6}, // diagonals
	}
	winner := func(b *[9]int) int {
		for _, ln := range lines {
			if b[ln[0]] != blank && b[ln[0]] == b[ln[1]] && b[ln[1]] == b[ln[2]] {
				return b[ln[0]]
			}
		}
		return blank
	}
	key := func(b *[9]int) int {
		k := 0
		for _, c := range b {
			k = k*3 + c
		}
		return k
	}
	final := make(map[int][9]int)
	var play func(b *[9]int, turn, filled int)
	play = func(b *[9]int, turn, filled int) {
		if w := winner(b); w != blank || filled == 9 {
			final[key(b)] = *b
			return
		}
		for c := 0; c < 9; c++ {
			if b[c] != blank {
				continue
			}
			b[c] = turn
			next := xMark
			if turn == xMark {
				next = oMark
			}
			play(b, next, filled+1)
			b[c] = blank
		}
	}
	var empty [9]int
	play(&empty, xMark, 0)

	keys := make([]int, 0, len(final))
	for k := range final {
		keys = append(keys, k)
	}
	sort.Ints(keys)

	cellValues := []string{"b", "x", "o"}
	names := []string{
		"top-left", "top-middle", "top-right",
		"middle-left", "middle-middle", "middle-right",
		"bottom-left", "bottom-middle", "bottom-right",
	}
	d := &categorical.Dataset{Name: "Tic."}
	for _, nm := range names {
		d.Features = append(d.Features, categorical.Feature{Name: nm, Values: append([]string(nil), cellValues...)})
	}
	for _, k := range keys {
		b := final[k]
		row := make([]int, 9)
		copy(row, b[:])
		y := 1 // negative: o wins or draw
		if winner(&b) == xMark {
			y = 0 // positive: x wins
		}
		d.Rows = append(d.Rows, row)
		d.Labels = append(d.Labels, y)
	}
	return d
}

// CarEvaluation reconstructs the UCI Car Evaluation rule data set: the full
// 4·4·4·3·3·3 = 1728 cartesian product labelled by a re-implementation of
// Bohanec & Rajkovič's hierarchical decision model
// (CAR ← PRICE(buying, maint) + TECH(COMFORT(doors, persons, lug_boot),
// safety)). The hard rules of the original (persons=2 ⇒ unacc,
// safety=low ⇒ unacc) are preserved and the class skew closely matches the
// published distribution (≈70% unacc, 22% acc, 4% good, 4% vgood).
func CarEvaluation() *categorical.Dataset {
	d := &categorical.Dataset{
		Name: "Car.",
		Features: []categorical.Feature{
			{Name: "buying", Values: []string{"vhigh", "high", "med", "low"}},
			{Name: "maint", Values: []string{"vhigh", "high", "med", "low"}},
			{Name: "doors", Values: []string{"2", "3", "4", "5more"}},
			{Name: "persons", Values: []string{"2", "4", "more"}},
			{Name: "lug_boot", Values: []string{"small", "med", "big"}},
			{Name: "safety", Values: []string{"low", "med", "high"}},
		},
	}
	// Classes: 0=unacc, 1=acc, 2=good, 3=vgood.
	label := func(buying, maint, doors, persons, lugBoot, safety int) int {
		// Hard rules of the original model.
		if persons == 0 || safety == 0 {
			return 0 // unacc
		}
		// COMFORT score: doors quality 0..2, boot 0..2, seated persons 1..2.
		doorsQ := []int{0, 1, 2, 2}[doors]
		comfort := doorsQ + lugBoot + persons // 1..6
		// PRICE quality: value codes already order vhigh=0 … low=3.
		priceQ := buying + maint // 0..6, higher = cheaper
		switch {
		case comfort <= 2,
			priceQ <= 1 && comfort <= 4,
			priceQ == 0 && safety == 1:
			return 0 // unacc: uncomfortable or overpriced for what it offers
		case safety == 2 && comfort >= 5 && priceQ >= 3:
			return 3 // vgood: safe, comfortable, fairly priced
		case priceQ >= 5 && comfort >= 3:
			return 2 // good: cheap and adequate
		default:
			return 1 // acc
		}
	}
	for b := 0; b < 4; b++ {
		for m := 0; m < 4; m++ {
			for dr := 0; dr < 4; dr++ {
				for p := 0; p < 3; p++ {
					for lb := 0; lb < 3; lb++ {
						for s := 0; s < 3; s++ {
							d.Rows = append(d.Rows, []int{b, m, dr, p, lb, s})
							d.Labels = append(d.Labels, label(b, m, dr, p, lb, s))
						}
					}
				}
			}
		}
	}
	return d
}

// Nursery reconstructs the UCI Nursery rule data set: the full cartesian
// product of the 8 application attributes (12960 rows) labelled by a
// re-implementation of the documented concept hierarchy
// (NURSERY ← EMPLOY(parents, has_nurs) + STRUCT_FINAN(form, children,
// housing, finance) + SOC_HEALTH(social, health)). The hard rule of the
// original (health = not_recom ⇒ not_recom, exactly one third of the rows)
// is preserved and the remaining classes follow the published skew
// (priority/spec_prior dominate, very_recom small, recommend marginal).
func Nursery() *categorical.Dataset {
	d := &categorical.Dataset{
		Name: "Nur.",
		Features: []categorical.Feature{
			{Name: "parents", Values: []string{"usual", "pretentious", "great_pret"}},
			{Name: "has_nurs", Values: []string{"proper", "less_proper", "improper", "critical", "very_crit"}},
			{Name: "form", Values: []string{"complete", "completed", "incomplete", "foster"}},
			{Name: "children", Values: []string{"1", "2", "3", "more"}},
			{Name: "housing", Values: []string{"convenient", "less_conv", "critical"}},
			{Name: "finance", Values: []string{"convenient", "inconv"}},
			{Name: "social", Values: []string{"nonprob", "slightly_prob", "problematic"}},
			{Name: "health", Values: []string{"recommended", "priority", "not_recom"}},
		},
	}
	// Classes: 0=not_recom, 1=recommend, 2=very_recom, 3=priority,
	// 4=spec_prior.
	label := func(parents, hasNurs, form, children, housing, finance, social, health int) int {
		if health == 2 {
			return 0 // not_recom: hard rule
		}
		// EMPLOY: 0 good … 2 bad.
		employ := 0
		if parents >= 1 || hasNurs >= 2 {
			employ = 1
		}
		if parents == 2 || hasNurs >= 3 {
			employ = 2
		}
		// STRUCT_FINAN: structural + financial standing, 0 good … 2 bad.
		structure := 0
		if form >= 2 || children >= 2 {
			structure = 1
		}
		if form == 3 && children == 3 {
			structure = 2
		}
		if housing == 2 || (housing == 1 && finance == 1) {
			structure++
		}
		if structure > 2 {
			structure = 2
		}
		// SOC_HEALTH: 0 fine, 1 tolerable, 2 problematic.
		socHealth := social
		if health == 1 && socHealth < 2 {
			socHealth++
		}
		badness := employ + structure + socHealth // 0..6
		switch {
		case badness == 0 && health == 0:
			return 1 // recommend: pristine application
		case badness <= 1:
			return 2 // very_recom
		case badness <= 3:
			return 3 // priority
		default:
			return 4 // spec_prior
		}
	}
	for p := 0; p < 3; p++ {
		for hn := 0; hn < 5; hn++ {
			for f := 0; f < 4; f++ {
				for ch := 0; ch < 4; ch++ {
					for ho := 0; ho < 3; ho++ {
						for fi := 0; fi < 2; fi++ {
							for so := 0; so < 3; so++ {
								for he := 0; he < 3; he++ {
									d.Rows = append(d.Rows, []int{p, hn, f, ch, ho, fi, so, he})
									d.Labels = append(d.Labels, label(p, hn, f, ch, ho, fi, so, he))
								}
							}
						}
					}
				}
			}
		}
	}
	return d
}
