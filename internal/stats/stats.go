// Package stats provides the statistical machinery used by the paper's
// evaluation: the two-tailed Wilcoxon signed-rank test of Table IV,
// mean/standard-deviation aggregation for the 50-run averages of Table III,
// and row-level summaries of condensed dissimilarity matrices (medoids) for
// the linkage-scaling harness.
package stats

import (
	"fmt"
	"math"
	"sort"

	"mcdc/internal/similarity"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// WilcoxonResult reports the outcome of a two-tailed Wilcoxon signed-rank
// test on paired samples.
type WilcoxonResult struct {
	W      float64 // test statistic: min(W+, W−)
	PValue float64 // two-tailed p-value
	NUsed  int     // pairs after dropping zero differences
	Exact  bool    // true when the exact null distribution was enumerated
	WPlus  float64 // sum of ranks of positive differences
	WMinus float64 // sum of ranks of negative differences
}

// Wilcoxon performs the two-tailed Wilcoxon signed-rank test on paired
// samples x and y (H0: the median difference is zero). Zero differences are
// dropped (Wilcoxon's original procedure); ties among |differences| receive
// average ranks. For n ≤ 20 usable pairs the exact permutation distribution
// is enumerated; larger samples use the normal approximation with tie
// correction.
func Wilcoxon(x, y []float64) (WilcoxonResult, error) {
	if len(x) != len(y) {
		return WilcoxonResult{}, fmt.Errorf("stats: paired samples differ in length: %d vs %d", len(x), len(y))
	}
	type diff struct {
		abs  float64
		sign int
	}
	diffs := make([]diff, 0, len(x))
	for i := range x {
		d := x[i] - y[i]
		if d == 0 {
			continue
		}
		s := 1
		if d < 0 {
			s = -1
		}
		diffs = append(diffs, diff{abs: math.Abs(d), sign: s})
	}
	n := len(diffs)
	if n == 0 {
		// All pairs identical: no evidence against H0.
		return WilcoxonResult{W: 0, PValue: 1, NUsed: 0, Exact: true}, nil
	}
	sort.Slice(diffs, func(i, j int) bool { return diffs[i].abs < diffs[j].abs })

	ranks := make([]float64, n)
	var tieCorrection float64
	for i := 0; i < n; {
		j := i
		for j < n && diffs[j].abs == diffs[i].abs {
			j++
		}
		avg := float64(i+j+1) / 2 // average of ranks i+1..j
		for t := i; t < j; t++ {
			ranks[t] = avg
		}
		tlen := float64(j - i)
		tieCorrection += tlen*tlen*tlen - tlen
		i = j
	}

	var wPlus, wMinus float64
	for i, d := range diffs {
		if d.sign > 0 {
			wPlus += ranks[i]
		} else {
			wMinus += ranks[i]
		}
	}
	w := math.Min(wPlus, wMinus)
	res := WilcoxonResult{W: w, NUsed: n, WPlus: wPlus, WMinus: wMinus}

	if n <= 20 {
		res.Exact = true
		res.PValue = exactWilcoxonP(ranks, w)
		return res, nil
	}
	fn := float64(n)
	mean := fn * (fn + 1) / 4
	variance := fn*(fn+1)*(2*fn+1)/24 - tieCorrection/48
	if variance <= 0 {
		res.PValue = 1
		return res, nil
	}
	// Continuity correction toward the mean.
	z := (w - mean + 0.5) / math.Sqrt(variance)
	res.PValue = math.Min(1, 2*normalCDF(z))
	return res, nil
}

// exactWilcoxonP enumerates all 2^n sign assignments over the given ranks and
// returns P(min(W+,W−) ≤ w), the exact two-tailed p-value. Ranks may carry
// tie-averaged (fractional) values.
func exactWilcoxonP(ranks []float64, w float64) float64 {
	n := len(ranks)
	var total float64
	for _, r := range ranks {
		total += r
	}
	count := 0
	limit := 1 << n
	const eps = 1e-9
	for mask := 0; mask < limit; mask++ {
		var wp float64
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				wp += ranks[i]
			}
		}
		if math.Min(wp, total-wp) <= w+eps {
			count++
		}
	}
	return float64(count) / float64(limit)
}

// normalCDF is the standard normal CDF.
func normalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// RowSums returns, for every object of a condensed dissimilarity matrix, the
// sum of its dissimilarities to all other objects — the per-object spread
// behind medoid selection and outlier screens. dst is reused when it has the
// capacity (pass nil to allocate). Each stored row is streamed once as an
// UpperRow view (a subslice of the backing array, so the whole O(n²) sweep
// performs no per-row allocation or copying), and the accumulation order
// (row-major over the stored triangle) is fixed, so the result is
// deterministic.
func RowSums(c *similarity.Condensed, dst []float64) []float64 {
	n := c.N()
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < n-1; i++ {
		for jj, v := range c.UpperRow(i) {
			dst[i] += v
			dst[i+1+jj] += v
		}
	}
	return dst
}

// Medoid returns the index of the object minimizing the total dissimilarity
// to all others (ties broken by lowest index), or -1 for an empty matrix.
func Medoid(c *similarity.Condensed) int {
	if c.N() == 0 {
		return -1
	}
	sums := RowSums(c, nil)
	best := 0
	for i, s := range sums {
		if s < sums[best] {
			best = i
		}
	}
	return best
}

// SignificantlyGreater reports whether sample x significantly outperforms
// sample y at level alpha under the two-tailed Wilcoxon signed-rank test,
// i.e. the paper's "+" marker: H0 rejected and the positive-rank mass
// dominates.
func SignificantlyGreater(x, y []float64, alpha float64) (bool, WilcoxonResult, error) {
	res, err := Wilcoxon(x, y)
	if err != nil {
		return false, res, err
	}
	return res.PValue < alpha && res.WPlus > res.WMinus, res, nil
}
