package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mcdc/internal/similarity"
)

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := StdDev(xs); math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
	if got := StdDev([]float64{3}); got != 0 {
		t.Errorf("StdDev(single) = %v, want 0", got)
	}
}

func TestWilcoxonIdenticalSamples(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	res, err := Wilcoxon(x, x)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue != 1 || res.NUsed != 0 {
		t.Errorf("identical samples: p = %v, nUsed = %d; want 1, 0", res.PValue, res.NUsed)
	}
}

func TestWilcoxonLengthMismatch(t *testing.T) {
	if _, err := Wilcoxon([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch: want error")
	}
}

func TestWilcoxonExactKnownValue(t *testing.T) {
	// All differences positive with distinct magnitudes, n = 6:
	// W- = 0, and P(min(W+,W-) ≤ 0) = 2/2^6 = 0.03125.
	x := []float64{10, 20, 30, 40, 50, 60}
	y := []float64{9, 18, 27, 36, 45, 54}
	res, err := Wilcoxon(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatal("n=6 must use the exact distribution")
	}
	if res.W != 0 {
		t.Errorf("W = %v, want 0", res.W)
	}
	if math.Abs(res.PValue-0.03125) > 1e-12 {
		t.Errorf("p = %v, want 0.03125", res.PValue)
	}
}

func TestWilcoxonSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(12)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64()
			y[i] = rng.Float64()
		}
		a, err := Wilcoxon(x, y)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Wilcoxon(y, x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a.PValue-b.PValue) > 1e-12 || a.W != b.W {
			t.Fatalf("test not symmetric: %+v vs %+v", a, b)
		}
		if a.WPlus != b.WMinus || a.WMinus != b.WPlus {
			t.Fatalf("rank sums must swap under argument swap: %+v vs %+v", a, b)
		}
	}
}

func TestWilcoxonPValueRange(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30) // crosses the exact/approximate boundary at 20
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = math.Floor(rng.Float64()*10) / 10 // induce ties and zeros
			y[i] = math.Floor(rng.Float64()*10) / 10
		}
		res, err := Wilcoxon(x, y)
		return err == nil && res.PValue >= 0 && res.PValue <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWilcoxonNormalApproxNearExact(t *testing.T) {
	// At n = 20 (the boundary), the normal approximation should agree with
	// the exact enumeration to within a small absolute error.
	rng := rand.New(rand.NewSource(77))
	n := 20
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64() + 0.3
	}
	exact, err := Wilcoxon(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !exact.Exact {
		t.Fatal("want exact path at n=20")
	}
	// Force the approximation by extending to 21 pairs with one tie pair
	// (dropped, so the same 20 differences are used).
	x21 := append(append([]float64(nil), x...), 1.0)
	y21 := append(append([]float64(nil), y...), 1.0)
	approxInput, err := Wilcoxon(x21, y21)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact.PValue-approxInput.PValue) > 0.02 {
		t.Errorf("normal approximation p = %v, exact p = %v; want within 0.02",
			approxInput.PValue, exact.PValue)
	}
}

func TestSignificantlyGreater(t *testing.T) {
	// x dominates y on every pair by a consistent margin.
	x := []float64{0.9, 0.8, 0.85, 0.95, 0.7, 0.9, 0.88, 0.92}
	y := []float64{0.5, 0.4, 0.45, 0.55, 0.3, 0.5, 0.48, 0.52}
	better, res, err := SignificantlyGreater(x, y, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !better {
		t.Errorf("x clearly dominates y, want significance (p=%v)", res.PValue)
	}
	// Reversed direction must not report significance for x.
	better, _, err = SignificantlyGreater(y, x, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if better {
		t.Error("y does not dominate x, yet reported significant")
	}
}

func TestRowSumsAndMedoid(t *testing.T) {
	// Points on a line at 0, 1, 3: object 1 is the medoid (sum 1+2=3,
	// against 0's 1+3=4 and 2's 3+2=5).
	c := similarity.NewCondensed(3, 0)
	c.Set(0, 1, 1)
	c.Set(0, 2, 3)
	c.Set(1, 2, 2)
	sums := RowSums(c, nil)
	want := []float64{4, 3, 5}
	for i := range want {
		if sums[i] != want[i] {
			t.Errorf("RowSums[%d] = %v, want %v", i, sums[i], want[i])
		}
	}
	if m := Medoid(c); m != 1 {
		t.Errorf("Medoid = %d, want 1", m)
	}
	// dst reuse: a dirty, larger buffer must be reset and resliced.
	dirty := []float64{9, 9, 9, 9, 9}
	reused := RowSums(c, dirty)
	if len(reused) != 3 || reused[0] != 4 || &reused[0] != &dirty[0] {
		t.Errorf("RowSums did not reuse dst: %v", reused)
	}
	// Against a brute-force dense accumulation on a random matrix.
	rng := rand.New(rand.NewSource(8))
	n := 17
	r := similarity.NewCondensed(n, 0)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			r.Set(i, j, rng.Float64())
		}
	}
	sums = RowSums(r, nil)
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < n; j++ {
			if j != i {
				s += r.At(i, j)
			}
		}
		if math.Abs(s-sums[i]) > 1e-12 {
			t.Fatalf("RowSums[%d] = %v, brute force %v", i, sums[i], s)
		}
	}
	if got := Medoid(similarity.NewCondensed(0, 0)); got != -1 {
		t.Errorf("Medoid of empty matrix = %d, want -1", got)
	}
	if got := Medoid(similarity.NewCondensed(1, 0)); got != 0 {
		t.Errorf("Medoid of singleton = %d, want 0", got)
	}
}
