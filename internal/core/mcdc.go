package core

import (
	"fmt"
	"math/rand"

	"mcdc/internal/parallel"
)

// DefaultRepeats is the default number of MGCPL repetitions whose
// granularity columns are concatenated into the Γ encoding. A single run
// already carries the multi-granular structure, but occasional unlucky seed
// draws produce a skewed level; pooling a few independent analyses realizes
// the paper's observation that "the learned multi-granular information
// complements each other to form a comprehensive and stable representation"
// and gives MCDC its reported run-to-run stability.
const DefaultRepeats = 3

// MCDCConfig parameterizes the full MCDC pipeline: MGCPL explores the
// multi-granular cluster structure (Repeats independent times), CAME
// aggregates the pooled encoding into the sought number of clusters.
type MCDCConfig struct {
	MGCPL MGCPLConfig
	CAME  CAMEConfig
	// Repeats is the number of independent MGCPL analyses pooled into the
	// encoding (default DefaultRepeats; 1 reproduces bare Algorithm 1 + 2).
	Repeats int
}

// MCDCResult carries the full pipeline output.
type MCDCResult struct {
	Labels []int        // final partition from CAME
	MGCPL  *MGCPLResult // first multi-granular analysis (κ, Γ)
	CAME   *CAMEResult  // aggregation result (Θ, iterations)
	// Encoding is the pooled Γ actually clustered (n × Σσ_rep columns).
	Encoding [][]int
}

// PooledEncoding runs MGCPL `repeats` times and concatenates the per-run
// granularity columns into one encoding. The first run's full result is
// returned alongside for inspection.
//
// The repeats are independent analyses, so they fan out across cfg.Workers
// goroutines (≤ 0 → GOMAXPROCS, 1 → sequential). Determinism contract: one
// sub-seed per repeat is drawn from cfg.Rand up front, in repeat order, and
// each repeat runs on its own rand.Rand — cfg.Rand therefore advances by
// exactly `repeats` draws and every repeat's stream is fixed by the master
// seed alone, making the pooled encoding bit-for-bit identical at any
// parallelism level. Columns are concatenated in repeat order.
func PooledEncoding(rows [][]int, cardinalities []int, cfg MGCPLConfig, repeats int) ([][]int, *MGCPLResult, error) {
	if repeats <= 0 {
		repeats = DefaultRepeats
	}
	if cfg.Rand == nil {
		return nil, nil, ErrNoRand
	}
	seeds := make([]int64, repeats)
	for r := range seeds {
		seeds[r] = cfg.Rand.Int63()
	}
	// Split the worker budget between the repeat fan-out and each repeat's
	// inner fan-outs, so the pipeline's total CPU-bound goroutines stay
	// within the bound WithParallelism documents instead of multiplying to
	// outer×inner. (Execution shape only — results are workers-independent.)
	resolved := parallel.Resolve(cfg.Workers)
	concurrent := repeats
	if resolved < repeats {
		concurrent = resolved
	}
	// Inner budget per repeat, with the division remainder handed out as one
	// extra worker to the first repeats so no core idles when repeats does
	// not divide the budget (at most `concurrent` repeats run at once, so
	// the total never exceeds `resolved`).
	innerWorkers := resolved / concurrent // ≥ 1 since resolved ≥ concurrent
	extra := resolved % concurrent
	results := make([]*MGCPLResult, repeats)
	err := parallel.ForEach(concurrent, repeats, func(r int) error {
		sub := cfg
		sub.Rand = rand.New(rand.NewSource(seeds[r]))
		sub.Workers = innerWorkers
		if r < extra {
			sub.Workers++
		}
		mg, err := RunMGCPL(rows, cardinalities, sub)
		if err != nil {
			return fmt.Errorf("mgcpl repeat %d: %w", r, err)
		}
		results[r] = mg
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	var enc [][]int
	for _, mg := range results {
		e := mg.Encoding()
		if enc == nil {
			enc = e
			continue
		}
		for i := range enc {
			enc[i] = append(enc[i], e[i]...)
		}
	}
	return enc, results[0], nil
}

// RunMCDC runs the pooled MGCPL analysis followed by CAME on integer-coded
// categorical rows. cfg.CAME.Rand defaults to cfg.MGCPL.Rand when unset.
func RunMCDC(rows [][]int, cardinalities []int, cfg MCDCConfig) (*MCDCResult, error) {
	enc, first, err := PooledEncoding(rows, cardinalities, cfg.MGCPL, cfg.Repeats)
	if err != nil {
		return nil, err
	}
	cameCfg := cfg.CAME
	if cameCfg.Rand == nil {
		cameCfg.Rand = cfg.MGCPL.Rand
	}
	if cameCfg.Workers == 0 {
		cameCfg.Workers = cfg.MGCPL.Workers
	}
	ca, err := RunCAME(enc, cameCfg)
	if err != nil {
		return nil, err
	}
	return &MCDCResult{Labels: ca.Labels, MGCPL: first, CAME: ca, Encoding: enc}, nil
}
