package core

import "fmt"

// DefaultRepeats is the default number of MGCPL repetitions whose
// granularity columns are concatenated into the Γ encoding. A single run
// already carries the multi-granular structure, but occasional unlucky seed
// draws produce a skewed level; pooling a few independent analyses realizes
// the paper's observation that "the learned multi-granular information
// complements each other to form a comprehensive and stable representation"
// and gives MCDC its reported run-to-run stability.
const DefaultRepeats = 3

// MCDCConfig parameterizes the full MCDC pipeline: MGCPL explores the
// multi-granular cluster structure (Repeats independent times), CAME
// aggregates the pooled encoding into the sought number of clusters.
type MCDCConfig struct {
	MGCPL MGCPLConfig
	CAME  CAMEConfig
	// Repeats is the number of independent MGCPL analyses pooled into the
	// encoding (default DefaultRepeats; 1 reproduces bare Algorithm 1 + 2).
	Repeats int
}

// MCDCResult carries the full pipeline output.
type MCDCResult struct {
	Labels []int        // final partition from CAME
	MGCPL  *MGCPLResult // first multi-granular analysis (κ, Γ)
	CAME   *CAMEResult  // aggregation result (Θ, iterations)
	// Encoding is the pooled Γ actually clustered (n × Σσ_rep columns).
	Encoding [][]int
}

// PooledEncoding runs MGCPL `repeats` times and concatenates the per-run
// granularity columns into one encoding. The first run's full result is
// returned alongside for inspection.
func PooledEncoding(rows [][]int, cardinalities []int, cfg MGCPLConfig, repeats int) ([][]int, *MGCPLResult, error) {
	if repeats <= 0 {
		repeats = DefaultRepeats
	}
	var enc [][]int
	var first *MGCPLResult
	for r := 0; r < repeats; r++ {
		mg, err := RunMGCPL(rows, cardinalities, cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("mgcpl repeat %d: %w", r, err)
		}
		if first == nil {
			first = mg
		}
		e := mg.Encoding()
		if enc == nil {
			enc = e
			continue
		}
		for i := range enc {
			enc[i] = append(enc[i], e[i]...)
		}
	}
	return enc, first, nil
}

// RunMCDC runs the pooled MGCPL analysis followed by CAME on integer-coded
// categorical rows. cfg.CAME.Rand defaults to cfg.MGCPL.Rand when unset.
func RunMCDC(rows [][]int, cardinalities []int, cfg MCDCConfig) (*MCDCResult, error) {
	enc, first, err := PooledEncoding(rows, cardinalities, cfg.MGCPL, cfg.Repeats)
	if err != nil {
		return nil, err
	}
	cameCfg := cfg.CAME
	if cameCfg.Rand == nil {
		cameCfg.Rand = cfg.MGCPL.Rand
	}
	ca, err := RunCAME(enc, cameCfg)
	if err != nil {
		return nil, err
	}
	return &MCDCResult{Labels: ca.Labels, MGCPL: first, CAME: ca, Encoding: enc}, nil
}
