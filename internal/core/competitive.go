package core

import (
	"errors"
	"fmt"
	"math/rand"

	"mcdc/internal/similarity"
)

// CompetitiveConfig parameterizes the conventional competitive-learning
// baseline of §II-B (no rival penalization, no multi-granular epochs). It is
// the learning mechanism behind the MCDC₂ ablation of Fig. 4.
type CompetitiveConfig struct {
	// InitialK is the starting number of clusters (the ablation uses k*+2).
	InitialK int
	// LearningRate is η of Eq. (8).
	LearningRate float64
	// MaxIters caps the learning passes.
	MaxIters int
	// Rand drives seed selection. Required.
	Rand *rand.Rand
}

// RunCompetitive runs classical frequency-sensitive competitive learning
// (Eq. 3–8): winners absorb objects and gain weight; clusters that stop
// winning empty out and are eliminated. Returns the converged partition.
func RunCompetitive(rows [][]int, cardinalities []int, cfg CompetitiveConfig) (*Granularity, error) {
	n := len(rows)
	if n == 0 {
		return nil, errors.New("core: empty data")
	}
	if cfg.Rand == nil {
		return nil, ErrNoRand
	}
	k := cfg.InitialK
	if k <= 0 {
		return nil, fmt.Errorf("core: competitive learning requires positive initial k, got %d", k)
	}
	if k > n {
		k = n
	}
	eta := cfg.LearningRate
	if eta <= 0 {
		eta = DefaultLearningRate
	}
	maxIters := cfg.MaxIters
	if maxIters <= 0 {
		maxIters = defaultMaxInner
	}

	tables, err := similarity.NewTables(rows, cardinalities, k)
	if err != nil {
		return nil, err
	}
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	u := make([]float64, k)
	g := make([]int, k)
	gCur := make([]int, k)
	for l := range u {
		u[l] = 1
	}
	for l, i := range cfg.Rand.Perm(n)[:k] {
		assign[i] = l
		tables.Add(i, l)
	}

	for iter := 0; iter < maxIters; iter++ {
		changed := false
		var gTotal float64
		for _, gl := range g {
			gTotal += float64(gl)
		}
		for l := range gCur {
			gCur[l] = 0
		}
		for i := 0; i < n; i++ {
			// Winner by Eq. (6): frequency-penalized weighted similarity.
			v, best := -1, -1.0
			for l := 0; l < k; l++ {
				if tables.Size(l) == 0 {
					continue
				}
				rho := 0.0
				if gTotal > 0 {
					rho = float64(g[l]) / gTotal
				}
				if score := (1 - rho) * u[l] * tables.SimLOO(i, l, assign[i] == l); score > best {
					best, v = score, l
				}
			}
			if v < 0 {
				continue
			}
			if assign[i] != v {
				if assign[i] >= 0 {
					tables.Remove(i, assign[i])
				}
				tables.Add(i, v)
				assign[i] = v
				changed = true
			}
			gCur[v]++
			// Award the winner by a small step (Eq. 8), clamped to [0,1].
			if u[v] += eta; u[v] > 1 {
				u[v] = 1
			}
		}
		copy(g, gCur)
		if !changed {
			break
		}
	}

	st := &mgcplState{assign: assign}
	level := st.compact()
	return &level, nil
}

// SimilarityPartitionConfig parameterizes the plainest ablation (MCDC₁ of
// Fig. 4): iterative k-way partitioning that assigns every object to the
// cluster maximizing the object–cluster similarity of Eq. (1), with k given.
type SimilarityPartitionConfig struct {
	K        int
	MaxIters int
	Rand     *rand.Rand
}

// RunSimilarityPartition clusters rows into exactly cfg.K clusters by
// alternating nearest-cluster assignment under Eq. (1) with the implied
// frequency-table refresh, until the partition stabilizes.
func RunSimilarityPartition(rows [][]int, cardinalities []int, cfg SimilarityPartitionConfig) (*Granularity, error) {
	n := len(rows)
	if n == 0 {
		return nil, errors.New("core: empty data")
	}
	if cfg.Rand == nil {
		return nil, ErrNoRand
	}
	k := cfg.K
	if k <= 0 {
		return nil, fmt.Errorf("core: similarity partition requires positive k, got %d", k)
	}
	if k > n {
		k = n
	}
	maxIters := cfg.MaxIters
	if maxIters <= 0 {
		maxIters = defaultMaxInner
	}

	tables, err := similarity.NewTables(rows, cardinalities, k)
	if err != nil {
		return nil, err
	}
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	for l, i := range cfg.Rand.Perm(n)[:k] {
		assign[i] = l
		tables.Add(i, l)
	}

	for iter := 0; iter < maxIters; iter++ {
		changed := false
		for i := 0; i < n; i++ {
			v, best := -1, -1.0
			for l := 0; l < k; l++ {
				if tables.Size(l) == 0 {
					continue
				}
				if s := tables.SimLOO(i, l, assign[i] == l); s > best {
					best, v = s, l
				}
			}
			if v < 0 || assign[i] == v {
				continue
			}
			if assign[i] >= 0 {
				tables.Remove(i, assign[i])
			}
			tables.Add(i, v)
			assign[i] = v
			changed = true
		}
		if !changed {
			break
		}
	}
	st := &mgcplState{assign: assign}
	level := st.compact()
	return &level, nil
}
