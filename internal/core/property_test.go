package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomCategorical generates an arbitrary small categorical data set.
type randomData struct {
	rows [][]int
	card []int
	seed int64
}

func genData(rng *rand.Rand) randomData {
	n := 10 + rng.Intn(120)
	d := 1 + rng.Intn(6)
	card := make([]int, d)
	for j := range card {
		card[j] = 2 + rng.Intn(5)
	}
	rows := make([][]int, n)
	for i := range rows {
		rows[i] = make([]int, d)
		for j := range rows[i] {
			rows[i][j] = rng.Intn(card[j])
		}
	}
	return randomData{rows: rows, card: card, seed: rng.Int63()}
}

func quickCfg() *quick.Config {
	return &quick.Config{
		MaxCount: 40,
		Values: func(values []reflect.Value, rng *rand.Rand) {
			values[0] = reflect.ValueOf(genData(rng))
		},
	}
}

// TestMGCPLQuickInvariants checks on arbitrary data that MGCPL always emits
// a valid nested result: strictly decreasing κ, dense labels, full coverage.
func TestMGCPLQuickInvariants(t *testing.T) {
	prop := func(data randomData) bool {
		res, err := RunMGCPL(data.rows, data.card, MGCPLConfig{Rand: rand.New(rand.NewSource(data.seed))})
		if err != nil {
			return false
		}
		prev := math.MaxInt32
		for _, lv := range res.Levels {
			if lv.K >= prev || lv.K < 1 {
				return false
			}
			prev = lv.K
			if len(lv.Labels) != len(data.rows) {
				return false
			}
			seen := make(map[int]bool)
			for _, l := range lv.Labels {
				if l < 0 || l >= lv.K {
					return false
				}
				seen[l] = true
			}
			if len(seen) != lv.K {
				return false
			}
		}
		return len(res.Levels) > 0
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestCAMEQuickInvariants checks that CAME always returns labels within
// [0,k) and a Θ simplex, for any encoding derived from arbitrary data.
func TestCAMEQuickInvariants(t *testing.T) {
	prop := func(data randomData) bool {
		rng := rand.New(rand.NewSource(data.seed))
		mg, err := RunMGCPL(data.rows, data.card, MGCPLConfig{Rand: rng})
		if err != nil {
			return false
		}
		k := 2 + int(data.seed%3)
		ca, err := RunCAME(mg.Encoding(), CAMEConfig{K: k, Rand: rng})
		if err != nil {
			return false
		}
		if len(ca.Labels) != len(data.rows) {
			return false
		}
		for _, l := range ca.Labels {
			if l < 0 || l >= k {
				return false
			}
		}
		var sum float64
		for _, th := range ca.Theta {
			if th < -1e-12 || th > 1+1e-12 {
				return false
			}
			sum += th
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestPooledEncodingQuick checks that the ensemble encoding stacks the
// expected number of columns and stays row-aligned.
func TestPooledEncodingQuick(t *testing.T) {
	prop := func(data randomData) bool {
		rng := rand.New(rand.NewSource(data.seed))
		enc, first, err := PooledEncoding(data.rows, data.card, MGCPLConfig{Rand: rng}, 2)
		if err != nil || first == nil {
			return false
		}
		if len(enc) != len(data.rows) {
			return false
		}
		width := len(enc[0])
		if width < first.Sigma() {
			return false
		}
		for _, row := range enc {
			if len(row) != width {
				return false
			}
		}
		// The first Sigma columns must be the first analysis verbatim.
		firstEnc := first.Encoding()
		for i := range enc {
			for j := 0; j < first.Sigma(); j++ {
				if enc[i][j] != firstEnc[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestCompetitiveQuickInvariants checks the conventional-competitive-learning
// baseline on arbitrary data.
func TestCompetitiveQuickInvariants(t *testing.T) {
	prop := func(data randomData) bool {
		g, err := RunCompetitive(data.rows, data.card, CompetitiveConfig{
			InitialK: 4, Rand: rand.New(rand.NewSource(data.seed)),
		})
		if err != nil {
			return false
		}
		if g.K < 1 || g.K > 4 || len(g.Labels) != len(data.rows) {
			return false
		}
		for _, l := range g.Labels {
			if l < 0 || l >= g.K {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}
