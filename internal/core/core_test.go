package core

import (
	"math"
	"math/rand"
	"testing"

	"mcdc/internal/datasets"
	"mcdc/internal/metrics"
)

// separated builds a well-separated k-cluster data set.
func separated(n, d, k int, seed int64) ([][]int, []int, []int) {
	ds := datasets.Synthetic("t", n, d, k, 0.9, rand.New(rand.NewSource(seed)))
	return ds.Rows, ds.Cardinalities(), ds.Labels
}

func TestMGCPLPartitionInvariants(t *testing.T) {
	rows, card, _ := separated(400, 8, 3, 1)
	res, err := RunMGCPL(rows, card, MGCPLConfig{Rand: rand.New(rand.NewSource(2))})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) == 0 {
		t.Fatal("no granularity levels")
	}
	prevK := math.MaxInt32
	for li, lv := range res.Levels {
		if lv.K >= prevK {
			t.Errorf("kappa not strictly decreasing at level %d: %v", li, res.Kappa())
		}
		prevK = lv.K
		if len(lv.Labels) != len(rows) {
			t.Fatalf("level %d: %d labels, want %d", li, len(lv.Labels), len(rows))
		}
		seen := make(map[int]bool)
		for i, l := range lv.Labels {
			if l < 0 || l >= lv.K {
				t.Fatalf("level %d object %d: label %d outside [0,%d)", li, i, l, lv.K)
			}
			seen[l] = true
		}
		if len(seen) != lv.K {
			t.Errorf("level %d: %d distinct labels, K=%d (labels must be dense)", li, len(seen), lv.K)
		}
	}
}

func TestMGCPLFindsTrueKOnSeparatedData(t *testing.T) {
	rows, card, truth := separated(600, 10, 3, 3)
	res, err := RunMGCPL(rows, card, MGCPLConfig{Rand: rand.New(rand.NewSource(5))})
	if err != nil {
		t.Fatal(err)
	}
	final := res.Final()
	if final.K < 2 || final.K > 5 {
		t.Errorf("final k = %d, want near true k = 3 (kappa %v)", final.K, res.Kappa())
	}
	// The coarsest partition should align well with the planted clusters.
	ari, err := metrics.AdjustedRandIndex(truth, final.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if ari < 0.5 {
		t.Errorf("final-level ARI = %v, want ≥ 0.5 on well-separated data", ari)
	}
}

func TestMGCPLDeterministicGivenSeed(t *testing.T) {
	rows, card, _ := separated(300, 6, 3, 7)
	run := func() *MGCPLResult {
		res, err := RunMGCPL(rows, card, MGCPLConfig{Rand: rand.New(rand.NewSource(11))})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Levels) != len(b.Levels) {
		t.Fatalf("level counts differ: %v vs %v", a.Kappa(), b.Kappa())
	}
	for li := range a.Levels {
		for i := range a.Levels[li].Labels {
			if a.Levels[li].Labels[i] != b.Levels[li].Labels[i] {
				t.Fatalf("level %d object %d differs", li, i)
			}
		}
	}
}

func TestMGCPLEdgeCases(t *testing.T) {
	t.Run("empty data", func(t *testing.T) {
		if _, err := RunMGCPL(nil, nil, MGCPLConfig{Rand: rand.New(rand.NewSource(1))}); err == nil {
			t.Error("want error")
		}
	})
	t.Run("nil rand", func(t *testing.T) {
		if _, err := RunMGCPL([][]int{{0}}, []int{1}, MGCPLConfig{}); err != ErrNoRand {
			t.Errorf("want ErrNoRand, got %v", err)
		}
	})
	t.Run("identical objects keep eliminating clusters", func(t *testing.T) {
		// Every partition of identical objects is equally good, so the
		// exact final k is unconstrained — but the competition must still
		// eliminate most of the k0 = √50 ≈ 8 initial clusters and return a
		// valid partition.
		rows := make([][]int, 50)
		for i := range rows {
			rows[i] = []int{1, 0, 1}
		}
		res, err := RunMGCPL(rows, []int{2, 2, 2}, MGCPLConfig{Rand: rand.New(rand.NewSource(3))})
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Final().K; got > 4 {
			t.Errorf("identical data: final k = %d, want ≤ 4 (kappa %v)", got, res.Kappa())
		}
	})
	t.Run("k0 larger than n is clamped", func(t *testing.T) {
		rows := [][]int{{0}, {1}, {0}, {1}}
		res, err := RunMGCPL(rows, []int{2}, MGCPLConfig{InitialK: 100, Rand: rand.New(rand.NewSource(4))})
		if err != nil {
			t.Fatal(err)
		}
		if res.Final().K > 4 {
			t.Errorf("k exceeded n: %d", res.Final().K)
		}
	})
}

func TestMGCPLEncodingShape(t *testing.T) {
	rows, card, _ := separated(200, 6, 3, 9)
	res, err := RunMGCPL(rows, card, MGCPLConfig{Rand: rand.New(rand.NewSource(13))})
	if err != nil {
		t.Fatal(err)
	}
	enc := res.Encoding()
	if len(enc) != len(rows) {
		t.Fatalf("encoding rows = %d, want %d", len(enc), len(rows))
	}
	for i, row := range enc {
		if len(row) != res.Sigma() {
			t.Fatalf("encoding row %d width = %d, want sigma = %d", i, len(row), res.Sigma())
		}
		for j, v := range row {
			if v != res.Levels[j].Labels[i] {
				t.Fatal("encoding column does not match level labels")
			}
		}
	}
}

func TestSigmoidWeight(t *testing.T) {
	// Eq. (11): u(δ) = 1/(1+e^{−10δ+5}).
	cases := map[float64]float64{
		0.5: 0.5,
		1:   1 / (1 + math.Exp(-5)),
		0:   1 / (1 + math.Exp(5)),
	}
	for in, want := range cases {
		if got := sigmoidWeight(in); math.Abs(got-want) > 1e-12 {
			t.Errorf("u(%v) = %v, want %v", in, got, want)
		}
	}
	if sigmoidWeight(3) <= sigmoidWeight(0.2) {
		t.Error("sigmoid must be increasing")
	}
}
