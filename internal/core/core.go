// Package core implements the paper's primary contribution: the MGCPL
// multi-granular competitive penalization learning algorithm (Algorithm 1),
// the CAME cluster-aggregation strategy over MGCPL encodings (Algorithm 2),
// the plain competitive-learning and similarity-partitioning baselines used
// by the ablation study (Fig. 4), and the MCDC pipeline composing them.
package core
