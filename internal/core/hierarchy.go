package core

import (
	"fmt"
	"sort"
	"strings"
)

// HierarchyNode is one cluster at one granularity level of the nested
// multi-granular analysis.
type HierarchyNode struct {
	Level    int   // granularity level index (0 = finest)
	Cluster  int   // cluster id within the level
	Size     int   // number of objects
	Children []int // node indices (in Hierarchy.Nodes) one level finer
	Parent   int   // node index one level coarser, -1 at the coarsest level
}

// Hierarchy is the nested-cluster tree implied by an MGCPL result: each fine
// cluster hangs under the coarse cluster that absorbs the majority of its
// objects. It plays the role of the dendrogram in hierarchical clustering,
// at a fraction of the cost (the paper's §I comparison).
type Hierarchy struct {
	Nodes []HierarchyNode
	// Roots are the node indices of the coarsest level's clusters.
	Roots []int
	// index[level][cluster] -> node position
	index map[[2]int]int
}

// BuildHierarchy derives the nested tree from a multi-granular result.
func (r *MGCPLResult) BuildHierarchy() *Hierarchy {
	h := &Hierarchy{index: make(map[[2]int]int)}
	if len(r.Levels) == 0 {
		return h
	}
	// Create nodes per (level, cluster) with sizes.
	for li, lv := range r.Levels {
		sizes := make([]int, lv.K)
		for _, l := range lv.Labels {
			sizes[l]++
		}
		for c := 0; c < lv.K; c++ {
			h.index[[2]int{li, c}] = len(h.Nodes)
			h.Nodes = append(h.Nodes, HierarchyNode{Level: li, Cluster: c, Size: sizes[c], Parent: -1})
		}
	}
	// Link each fine cluster to its majority coarse parent.
	for li := 0; li+1 < len(r.Levels); li++ {
		fine, coarse := r.Levels[li], r.Levels[li+1]
		votes := make(map[[2]int]int)
		for i := range fine.Labels {
			votes[[2]int{fine.Labels[i], coarse.Labels[i]}]++
		}
		parentOf := make(map[int]int)
		bestVotes := make(map[int]int)
		for key, v := range votes {
			if v > bestVotes[key[0]] {
				bestVotes[key[0]] = v
				parentOf[key[0]] = key[1]
			}
		}
		for f, p := range parentOf {
			fi := h.index[[2]int{li, f}]
			pi := h.index[[2]int{li + 1, p}]
			h.Nodes[fi].Parent = pi
			h.Nodes[pi].Children = append(h.Nodes[pi].Children, fi)
		}
	}
	for i := range h.Nodes {
		sort.Ints(h.Nodes[i].Children)
	}
	top := len(r.Levels) - 1
	for c := 0; c < r.Levels[top].K; c++ {
		h.Roots = append(h.Roots, h.index[[2]int{top, c}])
	}
	return h
}

// Node returns the node for (level, cluster), or nil when absent.
func (h *Hierarchy) Node(level, cluster int) *HierarchyNode {
	if i, ok := h.index[[2]int{level, cluster}]; ok {
		return &h.Nodes[i]
	}
	return nil
}

// Render draws the tree as indented text, coarsest level first — the
// multi-granular counterpart of a dendrogram printout.
func (h *Hierarchy) Render() string {
	var b strings.Builder
	var walk func(idx, depth int)
	walk = func(idx, depth int) {
		n := h.Nodes[idx]
		fmt.Fprintf(&b, "%s[L%d] cluster %d (%d objects)\n",
			strings.Repeat("  ", depth), n.Level+1, n.Cluster, n.Size)
		for _, ch := range n.Children {
			walk(ch, depth+1)
		}
	}
	for _, root := range h.Roots {
		walk(root, 0)
	}
	return b.String()
}
