package core

import (
	"math/rand"
	"testing"
)

// TestRefreshWeightsParallelBranch forces the parallel branch of
// refreshWeights — parallel.Gate inlines it below k·d = 4096 elementary ops,
// which every benchmark dataset in the suite is under, so without this test
// the only multi-goroutine path through Tables.FeatureWeights would never run
// under the race detector. It builds a state big enough to pass the gate
// (k·d = 256·32 = 8192), populates every cluster, and checks the refreshed ω
// weights are bit-for-bit identical at workers 1 and 8.
func TestRefreshWeightsParallelBranch(t *testing.T) {
	const (
		n    = 2048
		d    = 32
		k    = 256
		card = 4
	)
	rng := rand.New(rand.NewSource(5))
	rows := make([][]int, n)
	for i := range rows {
		rows[i] = make([]int, d)
		for r := range rows[i] {
			rows[i][r] = rng.Intn(card)
		}
	}
	cards := make([]int, d)
	for r := range cards {
		cards[r] = card
	}

	build := func(workers int) *mgcplState {
		st, err := newMGCPLState(rows, cards, k, DefaultLearningRate, defaultRivalThreshold,
			rand.New(rand.NewSource(3)), workers)
		if err != nil {
			t.Fatal(err)
		}
		// Assign every not-yet-seeded object round-robin so each cluster has
		// a non-trivial value distribution to weight.
		for i := range rows {
			if st.assign[i] >= 0 {
				continue
			}
			l := i % k
			st.assign[i] = l
			st.tables.Add(i, l)
		}
		st.refreshWeights()
		return st
	}

	seq := build(1)
	par := build(8)
	for l := range seq.omega {
		for r := range seq.omega[l] {
			if seq.omega[l][r] != par.omega[l][r] {
				t.Fatalf("omega[%d][%d] differs between workers 1 and 8: %v vs %v",
					l, r, seq.omega[l][r], par.omega[l][r])
			}
		}
	}
}
