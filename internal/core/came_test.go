package core

import (
	"math"
	"math/rand"
	"testing"
)

// majorityAgreement maps each true cluster to its best-matching predicted
// cluster and returns the covered fraction.
func majorityAgreement(truth, pred []int, k int) float64 {
	m := make(map[[2]int]int)
	for i := range truth {
		m[[2]int{truth[i], pred[i]}]++
	}
	correct := 0
	for c := 0; c < k; c++ {
		best := 0
		for key, cnt := range m {
			if key[0] == c && cnt > best {
				best = cnt
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(truth))
}

// encFor builds a Γ-style encoding whose first column is pure noise and
// whose second column perfectly encodes a 3-cluster structure.
func encFor(n int, rng *rand.Rand) ([][]int, []int) {
	enc := make([][]int, n)
	truth := make([]int, n)
	for i := range enc {
		truth[i] = i % 3
		enc[i] = []int{rng.Intn(5), truth[i]}
	}
	return enc, truth
}

func TestCAMERecoversAndWeighsInformativeColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	enc, truth := encFor(300, rng)
	res, err := RunCAME(enc, CAMEConfig{K: 3, Rand: rng})
	if err != nil {
		t.Fatal(err)
	}
	// The partition should largely follow the informative column (CAME is a
	// k-modes-family optimizer, so exact recovery from a random start is
	// not guaranteed — majority agreement is).
	agreement := majorityAgreement(truth, res.Labels, 3)
	if agreement < 0.8 {
		t.Errorf("majority agreement with informative column = %v, want ≥ 0.8", agreement)
	}
	// Θ must favour the informative column and stay a probability simplex.
	var sum float64
	for _, th := range res.Theta {
		if th < 0 || th > 1 {
			t.Errorf("theta outside [0,1]: %v", res.Theta)
		}
		sum += th
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("theta sums to %v, want 1", sum)
	}
	if res.Theta[1] <= res.Theta[0] {
		t.Errorf("informative column should outweigh noise: theta = %v", res.Theta)
	}
}

func TestCAMEFixedWeightsStaysUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	enc, _ := encFor(150, rng)
	res, err := RunCAME(enc, CAMEConfig{K: 3, FixedWeights: true, Rand: rng})
	if err != nil {
		t.Fatal(err)
	}
	for _, th := range res.Theta {
		if math.Abs(th-0.5) > 1e-12 {
			t.Errorf("fixed weights must stay 1/sigma: %v", res.Theta)
		}
	}
}

func TestCAMEErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := RunCAME(nil, CAMEConfig{K: 2, Rand: rng}); err == nil {
		t.Error("empty encoding: want error")
	}
	if _, err := RunCAME([][]int{{0}}, CAMEConfig{K: 0, Rand: rng}); err == nil {
		t.Error("k=0: want error")
	}
	if _, err := RunCAME([][]int{{0}}, CAMEConfig{K: 2}); err != ErrNoRand {
		t.Error("nil rand: want ErrNoRand")
	}
	if _, err := RunCAME([][]int{{}}, CAMEConfig{K: 1, Rand: rng}); err == nil {
		t.Error("zero-width encoding: want error")
	}
}

func TestCAMEKClampedToN(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	enc := [][]int{{0}, {1}, {2}}
	res, err := RunCAME(enc, CAMEConfig{K: 10, Rand: rng})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) != 3 {
		t.Fatalf("labels = %v", res.Labels)
	}
}

func TestCompetitiveEliminatesRedundantClusters(t *testing.T) {
	rows, card, _ := separated(300, 8, 2, 15)
	g, err := RunCompetitive(rows, card, CompetitiveConfig{InitialK: 4, Rand: rand.New(rand.NewSource(5))})
	if err != nil {
		t.Fatal(err)
	}
	if g.K > 4 || g.K < 1 {
		t.Errorf("competitive k = %d, want within [1,4]", g.K)
	}
	if len(g.Labels) != len(rows) {
		t.Fatalf("labels length %d, want %d", len(g.Labels), len(rows))
	}
}

func TestSimilarityPartitionKeepsK(t *testing.T) {
	rows, card, truth := separated(300, 8, 3, 16)
	g, err := RunSimilarityPartition(rows, card, SimilarityPartitionConfig{K: 3, Rand: rand.New(rand.NewSource(6))})
	if err != nil {
		t.Fatal(err)
	}
	if g.K < 2 || g.K > 3 {
		t.Errorf("partition k = %d, want ≈ 3", g.K)
	}
	_ = truth
}

func TestRunMCDCPipeline(t *testing.T) {
	rows, card, truth := separated(450, 10, 3, 17)
	res, err := RunMCDC(rows, card, MCDCConfig{
		MGCPL: MGCPLConfig{Rand: rand.New(rand.NewSource(23))},
		CAME:  CAMEConfig{K: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) != len(rows) {
		t.Fatalf("labels length %d", len(res.Labels))
	}
	if res.MGCPL == nil || res.CAME == nil {
		t.Fatal("missing sub-results")
	}
	correct := 0
	m := make(map[[2]int]int)
	for i := range truth {
		m[[2]int{truth[i], res.Labels[i]}]++
	}
	// Majority matching per true cluster ≥ 80%.
	for c := 0; c < 3; c++ {
		best, total := 0, 0
		for key, cnt := range m {
			if key[0] != c {
				continue
			}
			total += cnt
			if cnt > best {
				best = cnt
			}
		}
		correct += best
		_ = total
	}
	if frac := float64(correct) / float64(len(truth)); frac < 0.8 {
		t.Errorf("majority agreement = %v, want ≥ 0.8", frac)
	}
}
