package core

import (
	"errors"
	"fmt"
	"math/rand"

	"mcdc/internal/parallel"
	"mcdc/internal/seeding"
)

// CAMEConfig parameterizes Algorithm 2.
type CAMEConfig struct {
	// K is the sought number of clusters (the paper sets it to k*).
	K int
	// MaxIters caps the alternating Q/Θ optimization (the loop normally
	// converges in a handful of iterations; see Theorem 2).
	MaxIters int
	// FixedWeights disables the feature-importance learning of Eq. (21)–(22)
	// and keeps θ_r = 1/σ. This is the MCDC₄ ablation of Fig. 4.
	FixedWeights bool
	// Workers bounds the parallelism of the assignment sweep, the mode
	// counting, and the θ update (≤ 0 → GOMAXPROCS, 1 → sequential). All
	// three are chunked deterministically over objects, so the labels are
	// bit-for-bit identical at any setting.
	Workers int
	// Rand drives the initial mode selection. Required.
	Rand *rand.Rand
}

// CAMEResult carries the output of Algorithm 2: the final partition Q (as
// dense labels), the learned granularity-feature importances Θ, and the
// converged cluster modes. The modes are part of the learned model — a
// serving layer assigns fresh objects by θ-weighted Hamming distance to them
// — so they are exported here rather than staying trapped in the internal
// optimization state.
type CAMEResult struct {
	Labels []int
	Theta  []float64
	// Modes[l] is cluster l's converged per-column mode over the Γ encoding
	// (k rows of σ columns).
	Modes [][]int
	Iters int
}

// RunCAME clusters the Γ encoding produced by MGCPL (an n×σ matrix of
// granularity labels) into cfg.K clusters by feature-weighted k-modes with
// Hamming distance, alternating the partition update of Eq. (20) with the
// weight update of Eq. (21)–(22) until the partition stabilizes.
func RunCAME(encoding [][]int, cfg CAMEConfig) (*CAMEResult, error) {
	n := len(encoding)
	if n == 0 {
		return nil, errors.New("core: empty encoding")
	}
	if cfg.Rand == nil {
		return nil, ErrNoRand
	}
	sigma := len(encoding[0])
	if sigma == 0 {
		return nil, errors.New("core: encoding has zero granularity levels")
	}
	k := cfg.K
	if k <= 0 {
		return nil, fmt.Errorf("core: CAME requires a positive sought k, got %d", k)
	}
	if k > n {
		k = n
	}
	maxIters := cfg.MaxIters
	if maxIters <= 0 {
		maxIters = 100
	}

	// Per-column cardinalities of the encoding.
	card := make([]int, sigma)
	for _, row := range encoding {
		for r, v := range row {
			if v+1 > card[r] {
				card[r] = v + 1
			}
		}
	}

	st := &cameState{
		enc:     encoding,
		card:    card,
		k:       k,
		theta:   make([]float64, sigma),
		modes:   make([][]int, k),
		rng:     cfg.Rand,
		workers: cfg.Workers,
	}
	for r := range st.theta {
		st.theta[r] = 1 / float64(sigma)
	}
	// Initial modes by farthest-first traversal: spread-out seeds make the
	// aggregation stable across runs (the robustness the paper reports for
	// MCDC stems from here and from the redundancy of Γ's columns).
	for l, i := range seeding.FarthestFirstWorkers(encoding, k, st.rng, st.workers) {
		st.modes[l] = append([]int(nil), encoding[i]...)
	}

	labels := make([]int, n)
	st.assignAll(labels)
	iters := 0
	for ; iters < maxIters; iters++ {
		st.updateModes(labels)
		if !cfg.FixedWeights {
			st.updateTheta(labels)
		}
		next := make([]int, n)
		st.assignAll(next)
		if equalInts(labels, next) {
			labels = next
			break
		}
		labels = next
	}
	modes := make([][]int, len(st.modes))
	for l := range st.modes {
		modes[l] = append([]int(nil), st.modes[l]...)
	}
	return &CAMEResult{Labels: labels, Theta: st.theta, Modes: modes, Iters: iters + 1}, nil
}

type cameState struct {
	enc     [][]int
	card    []int
	k       int
	theta   []float64
	modes   [][]int
	rng     *rand.Rand
	workers int
}

// dist is the θ-weighted Hamming distance between an object of Γ and a
// cluster mode (the summand of Eq. 19–20).
func (st *cameState) dist(row, mode []int) float64 {
	var d float64
	for r := range row {
		if row[r] != mode[r] {
			d += st.theta[r]
		}
	}
	return d
}

// assignAll writes each object's nearest-mode cluster into labels (Eq. 20).
// Objects are independent given the frozen modes and θ, and each chunk writes
// only its own label slots, so the sweep fans out across the configured
// workers with identical results at any parallelism.
func (st *cameState) assignAll(labels []int) {
	workers := parallel.Gate(st.workers, len(st.enc)*len(st.card)*st.k)
	parallel.Must(parallel.ForEachChunk(workers, len(st.enc), func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			row := st.enc[i]
			best, bestD := 0, st.dist(row, st.modes[0])
			for l := 1; l < st.k; l++ {
				if d := st.dist(row, st.modes[l]); d < bestD {
					best, bestD = l, d
				}
			}
			labels[i] = best
		}
		return nil
	}))
}

// modeCounts is the per-worker accumulator of updateModes: cluster sizes and
// per-cluster, per-column value frequencies over one slab of objects.
type modeCounts struct {
	counts [][][]int // counts[l][r][v]
	sizes  []int
}

// updateModes recomputes each cluster's per-column majority label. The
// counting pass partitions the objects into one contiguous slab per worker,
// each tallying into its own count table; the per-cluster count table is the
// expensive allocation here, so slabs are per-worker rather than the fixed
// fine chunks MapReduce uses — integer sums are exact under any grouping, so
// the merged counts (and hence the modes) are still identical at every
// parallelism level, and a single worker allocates exactly one table like
// the pre-parallel loop did. Empty clusters are re-seeded with a random
// object, the standard k-modes repair; that loop consumes the shared rng and
// stays sequential in cluster order.
func (st *cameState) updateModes(labels []int) {
	sigma := len(st.card)
	n := len(labels)
	newCounts := func() *modeCounts {
		mc := &modeCounts{counts: make([][][]int, st.k), sizes: make([]int, st.k)}
		for l := range mc.counts {
			mc.counts[l] = make([][]int, sigma)
			for r := range mc.counts[l] {
				mc.counts[l][r] = make([]int, st.card[r])
			}
		}
		return mc
	}
	slabs := parallel.Resolve(parallel.Gate(st.workers, n*sigma))
	if slabs > n {
		slabs = n
	}
	// Each slab pays for a full count table up front; keep the total
	// accumulator cells below the tally work itself, or a many-core machine
	// with a large k×σ×card table would spend more on allocating and zeroing
	// tables than on counting.
	cells := 0
	for _, m := range st.card {
		cells += m * st.k
	}
	if maxSlabs := n * sigma / (cells + 1); slabs > maxSlabs {
		slabs = maxSlabs
		if slabs < 1 {
			slabs = 1
		}
	}
	parts := make([]*modeCounts, slabs)
	parallel.Must(parallel.ForEach(slabs, slabs, func(w int) error {
		lo, hi := w*n/slabs, (w+1)*n/slabs
		mc := newCounts()
		for i := lo; i < hi; i++ {
			l := labels[i]
			mc.sizes[l]++
			for r, v := range st.enc[i] {
				mc.counts[l][r][v]++
			}
		}
		parts[w] = mc
		return nil
	}))
	merged := parts[0]
	for _, next := range parts[1:] {
		for l := range merged.counts {
			merged.sizes[l] += next.sizes[l]
			for r := range merged.counts[l] {
				for v := range merged.counts[l][r] {
					merged.counts[l][r][v] += next.counts[l][r][v]
				}
			}
		}
	}
	counts, sizes := merged.counts, merged.sizes
	for l := 0; l < st.k; l++ {
		if sizes[l] == 0 {
			st.modes[l] = append([]int(nil), st.enc[st.rng.Intn(len(st.enc))]...)
			continue
		}
		for r := 0; r < sigma; r++ {
			best, bestC := 0, -1
			for v, c := range counts[l][r] {
				if c > bestC {
					best, bestC = v, c
				}
			}
			st.modes[l][r] = best
		}
	}
}

// updateTheta refreshes the granularity-feature importances (Eq. 21–22):
// I_r is the total within-cluster matching mass contributed by column r, and
// θ_r is its share of the total. The matching mass is an integer tally, so
// the chunked parallel accumulation is exact and workers-independent.
func (st *cameState) updateTheta(labels []int) {
	sigma := len(st.card)
	intra, mrErr := parallel.MapReduce(parallel.Gate(st.workers, len(labels)*sigma), len(labels), []int(nil),
		func(lo, hi int) ([]int, error) {
			part := make([]int, sigma)
			for i := lo; i < hi; i++ {
				mode := st.modes[labels[i]]
				for r, v := range st.enc[i] {
					if v == mode[r] {
						part[r]++
					}
				}
			}
			return part, nil
		},
		func(acc, next []int) []int {
			if acc == nil {
				return next
			}
			for r := range acc {
				acc[r] += next[r]
			}
			return acc
		})
	parallel.Must(mrErr)
	if intra == nil {
		intra = make([]int, sigma)
	}
	total := 0
	for _, x := range intra {
		total += x
	}
	if total <= 0 {
		for r := range st.theta {
			st.theta[r] = 1 / float64(sigma)
		}
		return
	}
	for r := range st.theta {
		st.theta[r] = float64(intra[r]) / float64(total)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
