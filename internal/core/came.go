package core

import (
	"errors"
	"fmt"
	"math/rand"

	"mcdc/internal/seeding"
)

// CAMEConfig parameterizes Algorithm 2.
type CAMEConfig struct {
	// K is the sought number of clusters (the paper sets it to k*).
	K int
	// MaxIters caps the alternating Q/Θ optimization (the loop normally
	// converges in a handful of iterations; see Theorem 2).
	MaxIters int
	// FixedWeights disables the feature-importance learning of Eq. (21)–(22)
	// and keeps θ_r = 1/σ. This is the MCDC₄ ablation of Fig. 4.
	FixedWeights bool
	// Rand drives the initial mode selection. Required.
	Rand *rand.Rand
}

// CAMEResult carries the output of Algorithm 2: the final partition Q (as
// dense labels) and the learned granularity-feature importances Θ.
type CAMEResult struct {
	Labels []int
	Theta  []float64
	Iters  int
}

// RunCAME clusters the Γ encoding produced by MGCPL (an n×σ matrix of
// granularity labels) into cfg.K clusters by feature-weighted k-modes with
// Hamming distance, alternating the partition update of Eq. (20) with the
// weight update of Eq. (21)–(22) until the partition stabilizes.
func RunCAME(encoding [][]int, cfg CAMEConfig) (*CAMEResult, error) {
	n := len(encoding)
	if n == 0 {
		return nil, errors.New("core: empty encoding")
	}
	if cfg.Rand == nil {
		return nil, ErrNoRand
	}
	sigma := len(encoding[0])
	if sigma == 0 {
		return nil, errors.New("core: encoding has zero granularity levels")
	}
	k := cfg.K
	if k <= 0 {
		return nil, fmt.Errorf("core: CAME requires a positive sought k, got %d", k)
	}
	if k > n {
		k = n
	}
	maxIters := cfg.MaxIters
	if maxIters <= 0 {
		maxIters = 100
	}

	// Per-column cardinalities of the encoding.
	card := make([]int, sigma)
	for _, row := range encoding {
		for r, v := range row {
			if v+1 > card[r] {
				card[r] = v + 1
			}
		}
	}

	st := &cameState{
		enc:   encoding,
		card:  card,
		k:     k,
		theta: make([]float64, sigma),
		modes: make([][]int, k),
		rng:   cfg.Rand,
	}
	for r := range st.theta {
		st.theta[r] = 1 / float64(sigma)
	}
	// Initial modes by farthest-first traversal: spread-out seeds make the
	// aggregation stable across runs (the robustness the paper reports for
	// MCDC stems from here and from the redundancy of Γ's columns).
	for l, i := range seeding.FarthestFirst(encoding, k, st.rng) {
		st.modes[l] = append([]int(nil), encoding[i]...)
	}

	labels := make([]int, n)
	st.assignAll(labels)
	iters := 0
	for ; iters < maxIters; iters++ {
		st.updateModes(labels)
		if !cfg.FixedWeights {
			st.updateTheta(labels)
		}
		next := make([]int, n)
		st.assignAll(next)
		if equalInts(labels, next) {
			labels = next
			break
		}
		labels = next
	}
	return &CAMEResult{Labels: labels, Theta: st.theta, Iters: iters + 1}, nil
}

type cameState struct {
	enc   [][]int
	card  []int
	k     int
	theta []float64
	modes [][]int
	rng   *rand.Rand
}

// dist is the θ-weighted Hamming distance between an object of Γ and a
// cluster mode (the summand of Eq. 19–20).
func (st *cameState) dist(row, mode []int) float64 {
	var d float64
	for r := range row {
		if row[r] != mode[r] {
			d += st.theta[r]
		}
	}
	return d
}

// assignAll writes each object's nearest-mode cluster into labels (Eq. 20).
func (st *cameState) assignAll(labels []int) {
	for i, row := range st.enc {
		best, bestD := 0, st.dist(row, st.modes[0])
		for l := 1; l < st.k; l++ {
			if d := st.dist(row, st.modes[l]); d < bestD {
				best, bestD = l, d
			}
		}
		labels[i] = best
	}
}

// updateModes recomputes each cluster's per-column majority label. Empty
// clusters are re-seeded with a random object, the standard k-modes repair.
func (st *cameState) updateModes(labels []int) {
	sigma := len(st.card)
	counts := make([][][]int, st.k)
	sizes := make([]int, st.k)
	for l := range counts {
		counts[l] = make([][]int, sigma)
		for r := range counts[l] {
			counts[l][r] = make([]int, st.card[r])
		}
	}
	for i, l := range labels {
		sizes[l]++
		for r, v := range st.enc[i] {
			counts[l][r][v]++
		}
	}
	for l := 0; l < st.k; l++ {
		if sizes[l] == 0 {
			st.modes[l] = append([]int(nil), st.enc[st.rng.Intn(len(st.enc))]...)
			continue
		}
		for r := 0; r < sigma; r++ {
			best, bestC := 0, -1
			for v, c := range counts[l][r] {
				if c > bestC {
					best, bestC = v, c
				}
			}
			st.modes[l][r] = best
		}
	}
}

// updateTheta refreshes the granularity-feature importances (Eq. 21–22):
// I_r is the total within-cluster matching mass contributed by column r, and
// θ_r is its share of the total.
func (st *cameState) updateTheta(labels []int) {
	sigma := len(st.card)
	intra := make([]float64, sigma)
	for i, l := range labels {
		mode := st.modes[l]
		for r, v := range st.enc[i] {
			if v == mode[r] {
				intra[r]++
			}
		}
	}
	var total float64
	for _, x := range intra {
		total += x
	}
	if total <= 0 {
		for r := range st.theta {
			st.theta[r] = 1 / float64(sigma)
		}
		return
	}
	for r := range st.theta {
		st.theta[r] = intra[r] / total
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
