package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"mcdc/internal/parallel"
	"mcdc/internal/similarity"
)

// Defaults for the MGCPL hyper-parameters, matching §IV-A of the paper
// (η = 0.03, k₀ = √n).
const (
	DefaultLearningRate = 0.03
	defaultMaxInner     = 100
	defaultMaxEpochs    = 60

	// defaultRivalThreshold is the redundancy gate of the rival penalty: a
	// runner-up whose (weighted, leave-one-out) similarity reaches this
	// fraction of the winner's is considered to overlap the winner's basin
	// and is penalized toward elimination.
	defaultRivalThreshold = 0.85
)

// ErrNoRand is returned when a learner is run without a random source.
var ErrNoRand = errors.New("core: nil random source (provide *rand.Rand)")

// MGCPLConfig parameterizes Algorithm 1.
type MGCPLConfig struct {
	// LearningRate is η of Eq. (12)–(13). Defaults to DefaultLearningRate.
	LearningRate float64
	// InitialK is k₀. Defaults to ⌈√n⌉ (the paper's setting).
	InitialK int
	// MaxInnerIters caps the passes of the inner competitive-penalization
	// loop per granularity level (safety bound; the loop normally converges
	// when the partition stabilizes).
	MaxInnerIters int
	// MaxEpochs caps the number of granularity levels explored.
	MaxEpochs int
	// RivalThreshold gates the rival penalty: only runner-up clusters whose
	// similarity reaches this fraction of the winner's are treated as
	// redundant and penalized toward elimination. Lower values coarsen the
	// final granularity; higher values preserve finer clusters. Defaults to
	// 0.85. (This resolves the elimination-strength ambiguity of the
	// paper's Eq. (13); see DESIGN.md §2.)
	RivalThreshold float64
	// Workers bounds the parallelism of the order-independent parts of the
	// learning (per-cluster feature-weight refreshes, and the fan-out of
	// ensemble repeats in PooledEncoding). ≤ 0 resolves to GOMAXPROCS, 1 is
	// fully sequential; results are bit-for-bit identical at any setting.
	// The competitive-penalization object loop itself is inherently
	// sequential — each presentation updates the state the next one reads —
	// as is the epoch loop (each epoch inherits the previous epoch's k), so
	// those stay single-threaded by design.
	Workers int
	// Rand drives seed selection. Required.
	Rand *rand.Rand
}

func (c *MGCPLConfig) withDefaults(n int) MGCPLConfig {
	out := *c
	if out.LearningRate <= 0 {
		out.LearningRate = DefaultLearningRate
	}
	if out.InitialK <= 0 {
		out.InitialK = int(math.Ceil(math.Sqrt(float64(n))))
	}
	if out.InitialK > n {
		out.InitialK = n
	}
	if out.InitialK < 2 {
		out.InitialK = 2
	}
	if out.MaxInnerIters <= 0 {
		out.MaxInnerIters = defaultMaxInner
	}
	if out.MaxEpochs <= 0 {
		out.MaxEpochs = defaultMaxEpochs
	}
	if out.RivalThreshold <= 0 || out.RivalThreshold > 1 {
		out.RivalThreshold = defaultRivalThreshold
	}
	return out
}

// Granularity is one converged level of the multi-granular analysis: a
// partition of the n objects into K clusters with dense labels 0..K-1.
type Granularity struct {
	K      int
	Labels []int
}

// MGCPLResult carries the output of Algorithm 1: the series of partitions
// Γ = {Y₁,…,Y_σ} at decreasing numbers of clusters κ = {k₁,…,k_σ}.
type MGCPLResult struct {
	Levels []Granularity
}

// Kappa returns κ, the learned numbers of clusters per granularity level.
func (r *MGCPLResult) Kappa() []int {
	out := make([]int, len(r.Levels))
	for i := range r.Levels {
		out[i] = r.Levels[i].K
	}
	return out
}

// Sigma returns σ, the number of granularity levels learned.
func (r *MGCPLResult) Sigma() int { return len(r.Levels) }

// Final returns the coarsest partition Y_σ. It panics only if the result is
// empty, which RunMGCPL never produces.
func (r *MGCPLResult) Final() Granularity { return r.Levels[len(r.Levels)-1] }

// Encoding returns the Γ embedding consumed by CAME: an n×σ matrix whose
// column j is the label vector of granularity level j.
func (r *MGCPLResult) Encoding() [][]int {
	if len(r.Levels) == 0 {
		return nil
	}
	n := len(r.Levels[0].Labels)
	out := make([][]int, n)
	for i := 0; i < n; i++ {
		row := make([]int, len(r.Levels))
		for j := range r.Levels {
			row[j] = r.Levels[j].Labels[i]
		}
		out[i] = row
	}
	return out
}

// mgcplState is the mutable learning state for one granularity level.
type mgcplState struct {
	tables *similarity.Tables
	assign []int       // assign[i]: current cluster of object i, -1 if none
	g      []int       // winning counts of the previous pass (Eq. 7)
	gCur   []int       // winning counts being accumulated this pass
	delta  []float64   // δ_l driving the sigmoid weight u_l (Eq. 11)
	omega  [][]float64 // ω_rl feature weights per cluster (Eq. 18)
	alive  []bool      // cluster slots still in play
	eta    float64
	order  []int // presentation order, reshuffled every pass
	rng    *rand.Rand
	// rivalThreshold gates the rival penalty: only rivals whose similarity
	// ratio to the winner exceeds it are treated as redundant and penalized.
	rivalThreshold float64
	// workers bounds the parallelism of the per-cluster weight refresh.
	workers int
}

// weight returns u_l = 1/(1+e^(−10δ+5)), Eq. (11).
func sigmoidWeight(delta float64) float64 {
	return 1 / (1 + math.Exp(-10*delta+5))
}

// RunMGCPL executes Algorithm 1 on integer-coded rows with the given
// per-feature cardinalities, returning the multi-granular partitions.
//
// Each granularity epoch re-launches competitive penalization learning from
// k_initial freshly drawn random seeds (Algorithm 1 line 3 sits inside the
// outer loop — only the *number* of clusters is inherited between epochs).
// Within an epoch, objects are repeatedly presented; the winner (Eq. 6)
// absorbs the object and is awarded (Eq. 12) while its nearest rival is
// penalized (Eq. 13), and per-cluster feature weights are refreshed
// (Eq. 15–18) after each pass. Clusters whose members all defect are
// eliminated, so the epoch converges at some k_new ≤ k_initial. The next
// epoch starts with k_initial = k_new and fresh parameters; the procedure
// stops when an epoch eliminates no further cluster (k_new = k_old).
func RunMGCPL(rows [][]int, cardinalities []int, cfg MGCPLConfig) (*MGCPLResult, error) {
	n := len(rows)
	if n == 0 {
		return nil, errors.New("core: empty data")
	}
	if cfg.Rand == nil {
		return nil, ErrNoRand
	}
	c := cfg.withDefaults(n)

	result := &MGCPLResult{}
	kInitial := c.InitialK
	for epoch := 0; epoch < c.MaxEpochs; epoch++ {
		st, err := newMGCPLState(rows, cardinalities, kInitial, c.LearningRate, c.RivalThreshold, c.Rand, c.Workers)
		if err != nil {
			return nil, err
		}
		if err := st.learnLevel(rows, c.MaxInnerIters); err != nil {
			return nil, err
		}
		level := st.compact()
		if level.K == kInitial && epoch > 0 {
			// No cluster could be eliminated this epoch: convergence.
			break
		}
		result.Levels = append(result.Levels, level)
		kInitial = level.K
		if level.K <= 1 {
			break
		}
	}
	if len(result.Levels) == 0 {
		// Degenerate safety net: one cluster containing everything.
		result.Levels = append(result.Levels, Granularity{K: 1, Labels: make([]int, n)})
	}
	return result, nil
}

func newMGCPLState(rows [][]int, card []int, k int, eta, rivalThreshold float64, rng *rand.Rand, workers int) (*mgcplState, error) {
	tables, err := similarity.NewTables(rows, card, k)
	if err != nil {
		return nil, fmt.Errorf("mgcpl: %w", err)
	}
	n := len(rows)
	st := &mgcplState{
		tables:         tables,
		assign:         make([]int, n),
		g:              make([]int, k),
		gCur:           make([]int, k),
		delta:          make([]float64, k),
		omega:          make([][]float64, k),
		alive:          make([]bool, k),
		eta:            eta,
		rivalThreshold: rivalThreshold,
		order:          make([]int, n),
		rng:            rng,
		workers:        workers,
	}
	for i := range st.order {
		st.order[i] = i
	}
	for i := range st.assign {
		st.assign[i] = -1
	}
	d := len(card)
	for l := 0; l < k; l++ {
		st.delta[l] = 1
		st.alive[l] = true
		st.omega[l] = make([]float64, d)
		for r := range st.omega[l] {
			st.omega[l][r] = 1 / float64(d)
		}
	}
	// Seed each cluster with a distinct random object ("randomly select
	// k_initial objects to represent clusters", Algorithm 1 line 3).
	for l, i := range rng.Perm(n)[:k] {
		st.assign[i] = l
		st.tables.Add(i, l)
	}
	return st, nil
}

// learnLevel runs the inner competitive-penalization loop until the
// partition stops changing (or maxIters passes). The epoch also ends once
// half of its starting clusters have been eliminated: one epoch represents
// one granularity stage, and letting a single epoch cascade further would
// skip the intermediate granularities the next (re-seeded) epochs explore.
func (st *mgcplState) learnLevel(rows [][]int, maxIters int) error {
	n := len(rows)
	kStart := 0
	for _, a := range st.alive {
		if a {
			kStart++
		}
	}
	minAlive := (kStart + 1) / 2
	for iter := 0; iter < maxIters; iter++ {
		changed := false
		var gTotal float64
		for _, gl := range st.g {
			gTotal += float64(gl)
		}
		for l := range st.gCur {
			st.gCur[l] = 0
		}
		// Objects are presented in a fresh random order every pass: with a
		// fixed order, long runs of similar objects deliver consecutive
		// rival penalties that can eliminate a healthy balanced cluster.
		// Rival penalization is disabled during the very first pass (iter
		// 0): clusters are still single seeds there, and penalizing them
		// ~n/k times each before they can accrete members collapses the
		// whole configuration into one cluster on large data sets.
		st.rng.Shuffle(n, func(a, b int) { st.order[a], st.order[b] = st.order[b], st.order[a] })
		gCurTotal := 0.0
		for _, i := range st.order {
			v, h := st.pickWinnerAndRival(i, gTotal+gCurTotal)
			if v < 0 {
				continue // no live cluster can score this object
			}
			simV := st.tables.WeightedSimLOO(i, v, st.omega[v], st.assign[i] == v)
			if st.assign[i] != v {
				if st.assign[i] >= 0 {
					st.tables.Remove(i, st.assign[i])
				}
				st.tables.Add(i, v)
				st.assign[i] = v
				changed = true
			}
			// Award the winner, penalize the rival (Eq. 10, 12, 13). The
			// award is capped at the initialization value δ=1: u_l lives in
			// [0,1] (Eq. 11), so winning restores a cluster to full weight
			// rather than banking unbounded credit — otherwise win credit
			// would always swamp the rival penalties and no cluster could
			// ever be eliminated.
			st.gCur[v]++
			gCurTotal++
			if st.delta[v] += st.eta; st.delta[v] > 1 {
				st.delta[v] = 1
			}
			if h >= 0 && iter > 0 {
				simH := st.tables.WeightedSimLOO(i, h, st.omega[h], st.assign[i] == h)
				// The penalty strength is the rival's similarity *relative
				// to the winner's*: it approaches the full award η exactly
				// when the rival is redundant with the winner (s_h ≈ s_v),
				// the configuration multi-granular learning must dissolve.
				// Rivals below the redundancy threshold represent genuinely
				// distinct clusters and are left alone, which makes the
				// cluster elimination self-limiting: once the surviving
				// clusters are mutually distinct at the current granularity,
				// the epoch converges instead of collapsing to k = 1.
				ratio := 1.0
				if simV > 0 {
					ratio = simH / simV
					if ratio > 1 {
						ratio = 1
					}
				}
				if ratio >= st.rivalThreshold {
					st.delta[h] -= st.eta * ratio
					if st.delta[h] < -1 {
						st.delta[h] = -1
					}
				}
			}
		}
		copy(st.g, st.gCur)
		st.refreshWeights()
		// Clusters emptied this pass are out of the competition. Each
		// elimination clears the guidance statistics of the survivors
		// (g←0, δ←1, ω←1/d): the fight that killed the loser also battered
		// bystanders, and without the reset a single redundancy can cascade
		// a healthy configuration all the way down to one cluster.
		eliminated := false
		for l := range st.alive {
			if st.alive[l] && st.tables.Size(l) == 0 {
				st.alive[l] = false
				eliminated = true
			}
		}
		if eliminated {
			alive := 0
			for _, a := range st.alive {
				if a {
					alive++
				}
			}
			if alive <= minAlive {
				return nil
			}
			st.resetGuidance()
			continue
		}
		if !changed {
			return nil
		}
	}
	return nil
}

// refreshWeights recomputes the per-cluster feature weights (Eq. 15–18).
// Each cluster's weights depend only on the (frozen) frequency tables and are
// written to that cluster's own ω slice, so the clusters fan out across the
// configured workers with bit-for-bit identical results at any parallelism.
func (st *mgcplState) refreshWeights() {
	workers := parallel.Gate(st.workers, len(st.omega)*st.tables.D())
	parallel.Must(parallel.ForEach(workers, len(st.omega), func(l int) error {
		if !st.alive[l] || st.tables.Size(l) == 0 {
			return nil
		}
		st.tables.FeatureWeights(l, st.omega[l])
		return nil
	}))
}

// resetGuidance clears the learning statistics of the surviving clusters
// (Algorithm 1 line 13) while keeping the current partition. Unlike a full
// re-launch, the feature weights are recomputed from the inherited partition
// rather than reset to uniform: the surviving clusters are already formed,
// and evaluating the next rivalries under uniform weights would discard the
// very feature relevances that distinguish them.
func (st *mgcplState) resetGuidance() {
	for l := range st.delta {
		st.g[l] = 0
		st.gCur[l] = 0
		st.delta[l] = 1
		if st.alive[l] && st.tables.Size(l) > 0 {
			st.tables.FeatureWeights(l, st.omega[l])
		}
	}
}

// pickWinnerAndRival evaluates Eq. (6) and Eq. (9): the winner v maximizes
// (1−ρ_l)·u_l·s(x_i,C_l) over live clusters, and the rival h is the runner-up.
// The winning ratio ρ counts the previous pass's wins plus the wins already
// accumulated in the current pass: purely retrospective counts leave the very
// first pass undamped, and one early winner can then absorb the entire data
// set before any other cluster forms.
func (st *mgcplState) pickWinnerAndRival(i int, gTotal float64) (v, h int) {
	v, h = -1, -1
	var best, second float64
	best, second = math.Inf(-1), math.Inf(-1)
	for l := range st.alive {
		if !st.alive[l] || st.tables.Size(l) == 0 {
			continue
		}
		rho := 0.0
		if gTotal > 0 {
			rho = float64(st.g[l]+st.gCur[l]) / gTotal
		}
		sim := st.tables.WeightedSimLOO(i, l, st.omega[l], st.assign[i] == l)
		score := (1 - rho) * sigmoidWeight(st.delta[l]) * sim
		switch {
		case score > best:
			second, h = best, v
			best, v = score, l
		case score > second:
			second, h = score, l
		}
	}
	return v, h
}

// compact relabels the live, non-empty clusters densely and returns the
// current partition.
func (st *mgcplState) compact() Granularity {
	remap := make(map[int]int)
	labels := make([]int, len(st.assign))
	for i, l := range st.assign {
		if l < 0 {
			// Unassigned objects (possible only in pathological cases where
			// every similarity was zero) join cluster 0.
			labels[i] = 0
			continue
		}
		nl, ok := remap[l]
		if !ok {
			nl = len(remap)
			remap[l] = nl
		}
		labels[i] = nl
	}
	k := len(remap)
	if k == 0 {
		k = 1
	}
	return Granularity{K: k, Labels: labels}
}
