package core

import (
	"math/rand"
	"strings"
	"testing"
)

func TestHierarchyStructure(t *testing.T) {
	rows, card, _ := separated(500, 8, 3, 33)
	res, err := RunMGCPL(rows, card, MGCPLConfig{Rand: rand.New(rand.NewSource(3))})
	if err != nil {
		t.Fatal(err)
	}
	h := res.BuildHierarchy()
	if len(h.Roots) != res.Final().K {
		t.Fatalf("roots = %d, want %d (coarsest clusters)", len(h.Roots), res.Final().K)
	}
	// Every non-coarsest node must have a parent one level up.
	top := len(res.Levels) - 1
	for i, n := range h.Nodes {
		if n.Level == top {
			if n.Parent != -1 {
				t.Errorf("coarsest node %d has parent %d", i, n.Parent)
			}
			continue
		}
		if n.Parent < 0 {
			t.Errorf("node %d (L%d c%d) has no parent", i, n.Level, n.Cluster)
			continue
		}
		if h.Nodes[n.Parent].Level != n.Level+1 {
			t.Errorf("node %d: parent on level %d, want %d", i, h.Nodes[n.Parent].Level, n.Level+1)
		}
	}
	// Sizes at each level cover the whole data set.
	for li, lv := range res.Levels {
		total := 0
		for c := 0; c < lv.K; c++ {
			nd := h.Node(li, c)
			if nd == nil {
				t.Fatalf("missing node for level %d cluster %d", li, c)
			}
			total += nd.Size
		}
		if total != len(rows) {
			t.Errorf("level %d sizes sum to %d, want %d", li, total, len(rows))
		}
	}
	if h.Node(99, 0) != nil {
		t.Error("Node(99,0) should be nil")
	}
}

func TestHierarchyRender(t *testing.T) {
	rows, card, _ := separated(200, 6, 2, 34)
	res, err := RunMGCPL(rows, card, MGCPLConfig{Rand: rand.New(rand.NewSource(4))})
	if err != nil {
		t.Fatal(err)
	}
	out := res.BuildHierarchy().Render()
	if !strings.Contains(out, "cluster 0") || !strings.Contains(out, "objects)") {
		t.Errorf("render output unexpected:\n%s", out)
	}
	// Every level appears in the rendering.
	for li := range res.Levels {
		tag := "[L" + string(rune('1'+li)) + "]"
		if li < 9 && !strings.Contains(out, tag) {
			t.Errorf("render missing level tag %s:\n%s", tag, out)
		}
	}
}

func TestHierarchyEmptyResult(t *testing.T) {
	h := (&MGCPLResult{}).BuildHierarchy()
	if len(h.Nodes) != 0 || len(h.Roots) != 0 {
		t.Error("empty result must produce an empty hierarchy")
	}
}
