package core

import (
	"math/rand"
	"testing"

	"mcdc/internal/datasets"
	"mcdc/internal/linkage"
	"mcdc/internal/metrics"
)

// TestMGCPLAgreesWithHierarchicalClustering validates the paper's §I claim
// that MGCPL is an efficient alternative to hierarchical clustering: on data
// with crisp nested structure, MGCPL's coarsest partition and an
// average-linkage dendrogram cut at the same k must largely agree.
func TestMGCPLAgreesWithHierarchicalClustering(t *testing.T) {
	ds := datasets.Synthetic("t", 240, 8, 3, 0.95, rand.New(rand.NewSource(90)))

	mg, err := RunMGCPL(ds.Rows, ds.Cardinalities(), MGCPLConfig{Rand: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	final := mg.Final()

	// The O(n²) chain agglomerator is the production linkage path; the scan
	// oracle equivalence is pinned in internal/linkage and the repository
	// equivalence suite.
	den, err := linkage.BuildChain(linkage.HammingCondensed(ds.Rows), linkage.Average)
	if err != nil {
		t.Fatal(err)
	}
	cut := den.Cut(final.K)

	ari, err := metrics.AdjustedRandIndex(cut, final.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if ari < 0.6 {
		t.Errorf("MGCPL vs average-linkage agreement ARI = %v, want ≥ 0.6 (k=%d)", ari, final.K)
	}
	// Both should also align with the planted clusters.
	ariTruth, err := metrics.AdjustedRandIndex(ds.Labels, final.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if ariTruth < 0.6 {
		t.Errorf("MGCPL vs planted clusters ARI = %v, want ≥ 0.6", ariTruth)
	}
}

// TestHierarchyParentIsPlurality checks the defining property of the
// multi-granular hierarchy: each fine cluster's parent is the coarse cluster
// (one level up) that absorbs the plurality of its objects. Unlike a
// dendrogram, MGCPL's levels are independent analyses, so strict containment
// is not guaranteed — plurality linkage is.
func TestHierarchyParentIsPlurality(t *testing.T) {
	ds := datasets.Synthetic("t", 300, 8, 4, 0.9, rand.New(rand.NewSource(91)))
	mg, err := RunMGCPL(ds.Rows, ds.Cardinalities(), MGCPLConfig{Rand: rand.New(rand.NewSource(2))})
	if err != nil {
		t.Fatal(err)
	}
	if mg.Sigma() < 2 {
		t.Skip("need at least two granularity levels")
	}
	h := mg.BuildHierarchy()
	for li := 0; li+1 < len(mg.Levels); li++ {
		fine, coarse := mg.Levels[li], mg.Levels[li+1]
		for c := 0; c < fine.K; c++ {
			node := h.Node(li, c)
			if node == nil {
				t.Fatalf("missing node L%d c%d", li, c)
			}
			parent := h.Nodes[node.Parent].Cluster
			votes := make(map[int]int)
			for i := range fine.Labels {
				if fine.Labels[i] == c {
					votes[coarse.Labels[i]]++
				}
			}
			for other, v := range votes {
				if v > votes[parent] {
					t.Errorf("L%d cluster %d: parent %d has %d votes but cluster %d has %d",
						li, c, parent, votes[parent], other, v)
				}
			}
		}
	}
}
