// Package stream extends MCDC to dynamically distributed data — research
// direction (2) of the paper's concluding remarks. A Clusterer maintains the
// most recent window of a categorical object stream, serves per-object
// cluster assignments online against the current multi-granular model, and
// re-learns the model (a full MGCPL pass over the window) when the stream
// drifts away from it or a refresh interval elapses.
package stream

import (
	"errors"
	"fmt"
	"math/rand"

	"mcdc/internal/core"
	"mcdc/internal/model"
	"mcdc/internal/similarity"
)

// Config parameterizes a streaming clusterer.
type Config struct {
	// Cardinalities fixes the value-domain sizes of the stream's features.
	Cardinalities []int
	// WindowSize is the number of most recent objects kept for model
	// re-learning (default 1000).
	WindowSize int
	// RefreshEvery re-learns the model after this many arrivals even
	// without drift (default WindowSize).
	RefreshEvery int
	// DriftThreshold is the assignment-similarity level below which an
	// arrival counts as poorly explained (default 0.2); DriftFraction of
	// poorly explained arrivals since the last refresh triggers an early
	// re-learning (default 0.3).
	DriftThreshold float64
	DriftFraction  float64
	// MGCPL configures the underlying analysis; its Rand is required.
	MGCPL core.MGCPLConfig
}

// Assignment reports where an arrival landed.
type Assignment struct {
	Cluster    int     // cluster id in the current model (stable between refreshes)
	Similarity float64 // object–cluster similarity of the chosen cluster
	ModelEpoch int     // increments every time the model is re-learned
}

// Clusterer is an online multi-granular clusterer over a categorical stream.
// It is not safe for concurrent use; wrap it if multiple goroutines feed it.
type Clusterer struct {
	cfg    Config
	window [][]int // ring buffer of recent objects
	next   int     // ring cursor

	tables     *similarity.Tables // frequency tables of the current model
	k          int
	epoch      int
	sinceFresh int
	drifted    int
	kappa      []int
}

// NewClusterer builds a streaming clusterer. The model starts empty; the
// first WindowSize arrivals are absorbed into a single provisional cluster
// until the first re-learning happens.
func NewClusterer(cfg Config) (*Clusterer, error) {
	if len(cfg.Cardinalities) == 0 {
		return nil, errors.New("stream: cardinalities required")
	}
	if cfg.MGCPL.Rand == nil {
		return nil, core.ErrNoRand
	}
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = 1000
	}
	if cfg.RefreshEvery <= 0 {
		cfg.RefreshEvery = cfg.WindowSize
	}
	if cfg.DriftThreshold <= 0 {
		cfg.DriftThreshold = 0.2
	}
	if cfg.DriftFraction <= 0 {
		cfg.DriftFraction = 0.3
	}
	return &Clusterer{cfg: cfg, window: make([][]int, 0, cfg.WindowSize)}, nil
}

// Kappa returns the granularity series of the current model (nil before the
// first re-learning).
func (c *Clusterer) Kappa() []int { return append([]int(nil), c.kappa...) }

// ModelEpoch returns how many times the model has been re-learned.
func (c *Clusterer) ModelEpoch() int { return c.epoch }

// K returns the number of clusters in the current model (0 before the first
// re-learning).
func (c *Clusterer) K() int { return c.k }

// Add ingests one object and returns its assignment under the current model.
func (c *Clusterer) Add(row []int) (Assignment, error) {
	if len(row) != len(c.cfg.Cardinalities) {
		return Assignment{}, fmt.Errorf("stream: row has %d features, schema has %d", len(row), len(c.cfg.Cardinalities))
	}
	own := append([]int(nil), row...)
	if len(c.window) < c.cfg.WindowSize {
		c.window = append(c.window, own)
	} else {
		c.window[c.next] = own
		c.next = (c.next + 1) % c.cfg.WindowSize
	}
	c.sinceFresh++

	assign := Assignment{Cluster: 0, ModelEpoch: c.epoch}
	if c.tables != nil {
		best, bestSim := 0, -1.0
		for l := 0; l < c.k; l++ {
			if c.tables.Size(l) == 0 {
				continue
			}
			// Probe similarity without mutating the model tables.
			if s := c.tables.ProbeSim(own, l); s > bestSim {
				best, bestSim = l, s
			}
		}
		assign.Cluster = best
		assign.Similarity = bestSim
		if bestSim < c.cfg.DriftThreshold {
			c.drifted++
		}
	} else {
		c.drifted++
	}

	needRefresh := c.sinceFresh >= c.cfg.RefreshEvery ||
		(float64(c.drifted)/float64(c.sinceFresh) >= c.cfg.DriftFraction &&
			c.sinceFresh >= c.cfg.WindowSize/4)
	if needRefresh && len(c.window) >= 2 {
		if err := c.relearn(); err != nil {
			return assign, err
		}
		assign.ModelEpoch = c.epoch
	}
	return assign, nil
}

// Snapshot checkpoints the clusterer into a serializable StreamState: the
// configuration, the window ring in physical slot order, the drift counters,
// and the current model tables.
//
// Determinism contract: Snapshot rotates the clusterer's random stream — it
// draws one sub-seed from the live source, re-seeds the clusterer with it,
// and records the same sub-seed in the state. The snapshotted original and
// any Restore of the state therefore continue on identical random streams,
// so their subsequent assignments (including across re-learnings) are
// bit-for-bit identical. The rotation is the only observable side effect.
func (c *Clusterer) Snapshot() *model.StreamState {
	sub := c.cfg.MGCPL.Rand.Int63()
	c.cfg.MGCPL.Rand = rand.New(rand.NewSource(sub))
	st := &model.StreamState{
		Cardinalities:  append([]int(nil), c.cfg.Cardinalities...),
		WindowSize:     c.cfg.WindowSize,
		RefreshEvery:   c.cfg.RefreshEvery,
		DriftThreshold: c.cfg.DriftThreshold,
		DriftFraction:  c.cfg.DriftFraction,
		LearningRate:   c.cfg.MGCPL.LearningRate,
		InitialK:       c.cfg.MGCPL.InitialK,
		MaxInnerIters:  c.cfg.MGCPL.MaxInnerIters,
		MaxEpochs:      c.cfg.MGCPL.MaxEpochs,
		RivalThreshold: c.cfg.MGCPL.RivalThreshold,
		Workers:        c.cfg.MGCPL.Workers,
		Window:         make([][]int, len(c.window)),
		Next:           c.next,
		K:              c.k,
		Epoch:          c.epoch,
		SinceFresh:     c.sinceFresh,
		Drifted:        c.drifted,
		Kappa:          append([]int(nil), c.kappa...),
		RandSeed:       sub,
	}
	for i, row := range c.window {
		st.Window[i] = append([]int(nil), row...)
	}
	if c.tables != nil {
		st.Tables = c.tables.State()
	}
	return st
}

// Restore rebuilds a clusterer from a checkpoint. The restored clusterer's
// subsequent behavior is bit-for-bit identical to the snapshotted original's
// (see Snapshot for the random-stream contract).
func Restore(st *model.StreamState) (*Clusterer, error) {
	if st == nil {
		return nil, errors.New("stream: nil checkpoint")
	}
	cfg := Config{
		Cardinalities:  append([]int(nil), st.Cardinalities...),
		WindowSize:     st.WindowSize,
		RefreshEvery:   st.RefreshEvery,
		DriftThreshold: st.DriftThreshold,
		DriftFraction:  st.DriftFraction,
		MGCPL: core.MGCPLConfig{
			LearningRate:   st.LearningRate,
			InitialK:       st.InitialK,
			MaxInnerIters:  st.MaxInnerIters,
			MaxEpochs:      st.MaxEpochs,
			RivalThreshold: st.RivalThreshold,
			Workers:        st.Workers,
			Rand:           rand.New(rand.NewSource(st.RandSeed)),
		},
	}
	c, err := NewClusterer(cfg)
	if err != nil {
		return nil, err
	}
	if len(st.Window) > c.cfg.WindowSize {
		return nil, fmt.Errorf("stream: checkpoint window holds %d objects, capacity is %d", len(st.Window), c.cfg.WindowSize)
	}
	if st.Next < 0 || (st.Next != 0 && st.Next >= len(st.Window)) {
		return nil, fmt.Errorf("stream: checkpoint ring cursor %d out of range for %d objects", st.Next, len(st.Window))
	}
	c.window = make([][]int, len(st.Window), c.cfg.WindowSize)
	for i, row := range st.Window {
		if len(row) != len(c.cfg.Cardinalities) {
			return nil, fmt.Errorf("stream: checkpoint row %d has %d features, schema has %d", i, len(row), len(c.cfg.Cardinalities))
		}
		c.window[i] = append([]int(nil), row...)
	}
	c.next = st.Next
	c.k = st.K
	c.epoch = st.Epoch
	c.sinceFresh = st.SinceFresh
	c.drifted = st.Drifted
	c.kappa = append([]int(nil), st.Kappa...)
	if st.Tables != nil {
		t, err := similarity.FromState(st.Tables)
		if err != nil {
			return nil, fmt.Errorf("stream: checkpoint tables: %w", err)
		}
		if t.D() != len(c.cfg.Cardinalities) {
			return nil, fmt.Errorf("stream: checkpoint tables cover %d features, schema has %d", t.D(), len(c.cfg.Cardinalities))
		}
		if t.K() != st.K {
			return nil, fmt.Errorf("stream: checkpoint claims k = %d but its tables hold %d cluster slots", st.K, t.K())
		}
		c.tables = t
	}
	return c, nil
}

// relearn runs MGCPL over the current window and rebuilds the model tables
// from the coarsest partition.
func (c *Clusterer) relearn() error {
	res, err := core.RunMGCPL(c.window, c.cfg.Cardinalities, c.cfg.MGCPL)
	if err != nil {
		return fmt.Errorf("stream: relearn: %w", err)
	}
	final := res.Final()
	tables, err := similarity.NewTables(c.window, c.cfg.Cardinalities, final.K)
	if err != nil {
		return fmt.Errorf("stream: rebuild tables: %w", err)
	}
	for i, l := range final.Labels {
		tables.Add(i, l)
	}
	c.tables = tables
	c.k = final.K
	c.kappa = res.Kappa()
	c.epoch++
	c.sinceFresh = 0
	c.drifted = 0
	return nil
}
