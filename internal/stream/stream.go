// Package stream extends MCDC to dynamically distributed data — research
// direction (2) of the paper's concluding remarks. A Clusterer maintains the
// most recent window of a categorical object stream, serves per-object
// cluster assignments online against the current multi-granular model, and
// re-learns the model (a full MGCPL pass over the window) when the stream
// drifts away from it or a refresh interval elapses.
package stream

import (
	"errors"
	"fmt"

	"mcdc/internal/core"
	"mcdc/internal/similarity"
)

// Config parameterizes a streaming clusterer.
type Config struct {
	// Cardinalities fixes the value-domain sizes of the stream's features.
	Cardinalities []int
	// WindowSize is the number of most recent objects kept for model
	// re-learning (default 1000).
	WindowSize int
	// RefreshEvery re-learns the model after this many arrivals even
	// without drift (default WindowSize).
	RefreshEvery int
	// DriftThreshold is the assignment-similarity level below which an
	// arrival counts as poorly explained (default 0.2); DriftFraction of
	// poorly explained arrivals since the last refresh triggers an early
	// re-learning (default 0.3).
	DriftThreshold float64
	DriftFraction  float64
	// MGCPL configures the underlying analysis; its Rand is required.
	MGCPL core.MGCPLConfig
}

// Assignment reports where an arrival landed.
type Assignment struct {
	Cluster    int     // cluster id in the current model (stable between refreshes)
	Similarity float64 // object–cluster similarity of the chosen cluster
	ModelEpoch int     // increments every time the model is re-learned
}

// Clusterer is an online multi-granular clusterer over a categorical stream.
// It is not safe for concurrent use; wrap it if multiple goroutines feed it.
type Clusterer struct {
	cfg    Config
	window [][]int // ring buffer of recent objects
	next   int     // ring cursor

	tables     *similarity.Tables // frequency tables of the current model
	k          int
	epoch      int
	sinceFresh int
	drifted    int
	kappa      []int
}

// NewClusterer builds a streaming clusterer. The model starts empty; the
// first WindowSize arrivals are absorbed into a single provisional cluster
// until the first re-learning happens.
func NewClusterer(cfg Config) (*Clusterer, error) {
	if len(cfg.Cardinalities) == 0 {
		return nil, errors.New("stream: cardinalities required")
	}
	if cfg.MGCPL.Rand == nil {
		return nil, core.ErrNoRand
	}
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = 1000
	}
	if cfg.RefreshEvery <= 0 {
		cfg.RefreshEvery = cfg.WindowSize
	}
	if cfg.DriftThreshold <= 0 {
		cfg.DriftThreshold = 0.2
	}
	if cfg.DriftFraction <= 0 {
		cfg.DriftFraction = 0.3
	}
	return &Clusterer{cfg: cfg, window: make([][]int, 0, cfg.WindowSize)}, nil
}

// Kappa returns the granularity series of the current model (nil before the
// first re-learning).
func (c *Clusterer) Kappa() []int { return append([]int(nil), c.kappa...) }

// ModelEpoch returns how many times the model has been re-learned.
func (c *Clusterer) ModelEpoch() int { return c.epoch }

// K returns the number of clusters in the current model (0 before the first
// re-learning).
func (c *Clusterer) K() int { return c.k }

// Add ingests one object and returns its assignment under the current model.
func (c *Clusterer) Add(row []int) (Assignment, error) {
	if len(row) != len(c.cfg.Cardinalities) {
		return Assignment{}, fmt.Errorf("stream: row has %d features, schema has %d", len(row), len(c.cfg.Cardinalities))
	}
	own := append([]int(nil), row...)
	if len(c.window) < c.cfg.WindowSize {
		c.window = append(c.window, own)
	} else {
		c.window[c.next] = own
		c.next = (c.next + 1) % c.cfg.WindowSize
	}
	c.sinceFresh++

	assign := Assignment{Cluster: 0, ModelEpoch: c.epoch}
	if c.tables != nil {
		best, bestSim := 0, -1.0
		for l := 0; l < c.k; l++ {
			if c.tables.Size(l) == 0 {
				continue
			}
			// Probe similarity without mutating the model tables.
			if s := c.probeSim(own, l); s > bestSim {
				best, bestSim = l, s
			}
		}
		assign.Cluster = best
		assign.Similarity = bestSim
		if bestSim < c.cfg.DriftThreshold {
			c.drifted++
		}
	} else {
		c.drifted++
	}

	needRefresh := c.sinceFresh >= c.cfg.RefreshEvery ||
		(float64(c.drifted)/float64(c.sinceFresh) >= c.cfg.DriftFraction &&
			c.sinceFresh >= c.cfg.WindowSize/4)
	if needRefresh && len(c.window) >= 2 {
		if err := c.relearn(); err != nil {
			return assign, err
		}
		assign.ModelEpoch = c.epoch
	}
	return assign, nil
}

// probeSim computes the Eq. (1) similarity of an arbitrary (possibly
// unseen) row to model cluster l.
func (c *Clusterer) probeSim(row []int, l int) float64 {
	var sum float64
	for r, v := range row {
		if v < 0 || v >= c.cfg.Cardinalities[r] || c.tables.Size(l) == 0 {
			continue
		}
		sum += float64(c.tables.Count(l, r, v)) / float64(c.tables.Size(l))
	}
	return sum / float64(len(row))
}

// relearn runs MGCPL over the current window and rebuilds the model tables
// from the coarsest partition.
func (c *Clusterer) relearn() error {
	res, err := core.RunMGCPL(c.window, c.cfg.Cardinalities, c.cfg.MGCPL)
	if err != nil {
		return fmt.Errorf("stream: relearn: %w", err)
	}
	final := res.Final()
	tables, err := similarity.NewTables(c.window, c.cfg.Cardinalities, final.K)
	if err != nil {
		return fmt.Errorf("stream: rebuild tables: %w", err)
	}
	for i, l := range final.Labels {
		tables.Add(i, l)
	}
	c.tables = tables
	c.k = final.K
	c.kappa = res.Kappa()
	c.epoch++
	c.sinceFresh = 0
	c.drifted = 0
	return nil
}
