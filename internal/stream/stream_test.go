package stream

import (
	"math/rand"
	"testing"

	"mcdc/internal/core"
	"mcdc/internal/datasets"
)

func streamConfig(card []int, window int, seed int64) Config {
	return Config{
		Cardinalities: card,
		WindowSize:    window,
		MGCPL:         core.MGCPLConfig{Rand: rand.New(rand.NewSource(seed))},
	}
}

func TestStationaryStreamStabilizes(t *testing.T) {
	ds := datasets.Synthetic("t", 1200, 8, 3, 0.9, rand.New(rand.NewSource(60)))
	c, err := NewClusterer(streamConfig(ds.Cardinalities(), 300, 1))
	if err != nil {
		t.Fatal(err)
	}
	var lastEpoch int
	for i, row := range ds.Rows {
		a, err := c.Add(row)
		if err != nil {
			t.Fatal(err)
		}
		if i == len(ds.Rows)-1 {
			lastEpoch = a.ModelEpoch
		}
	}
	if lastEpoch == 0 {
		t.Fatal("model never learned")
	}
	if k := c.K(); k < 2 || k > 6 {
		t.Errorf("model k = %d, want near the 3 planted clusters (kappa %v)", k, c.Kappa())
	}
	// After the model settles, same-cluster objects should be assigned
	// together: feed a fresh batch from the same distribution and check
	// that assignments align with the planted labels.
	fresh := datasets.Synthetic("t", 300, 8, 3, 0.9, rand.New(rand.NewSource(60)))
	agreement := make(map[[2]int]int)
	for i, row := range fresh.Rows {
		a, err := c.Add(row)
		if err != nil {
			t.Fatal(err)
		}
		agreement[[2]int{fresh.Labels[i], a.Cluster}]++
	}
	correct := 0
	for truth := 0; truth < 3; truth++ {
		best := 0
		for key, cnt := range agreement {
			if key[0] == truth && cnt > best {
				best = cnt
			}
		}
		correct += best
	}
	if frac := float64(correct) / float64(fresh.N()); frac < 0.75 {
		t.Errorf("online assignment agreement = %v, want ≥ 0.75", frac)
	}
}

func TestDriftTriggersRelearn(t *testing.T) {
	rngA := rand.New(rand.NewSource(61))
	phaseA := datasets.Synthetic("a", 400, 8, 2, 0.9, rngA)
	c, err := NewClusterer(streamConfig(phaseA.Cardinalities(), 200, 2))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range phaseA.Rows {
		if _, err := c.Add(row); err != nil {
			t.Fatal(err)
		}
	}
	epochAfterA := c.ModelEpoch()
	if epochAfterA == 0 {
		t.Fatal("phase A never learned a model")
	}
	// Phase B: a completely different distribution (different dominant
	// values). The drift detector must force a re-learning well before the
	// periodic refresh interval would.
	phaseB := datasets.Synthetic("b", 400, 8, 4, 0.9, rand.New(rand.NewSource(987)))
	relearned := false
	for _, row := range phaseB.Rows {
		a, err := c.Add(row)
		if err != nil {
			t.Fatal(err)
		}
		if a.ModelEpoch > epochAfterA {
			relearned = true
			break
		}
	}
	if !relearned {
		t.Error("distribution shift did not trigger a model refresh")
	}
}

func TestStreamErrors(t *testing.T) {
	if _, err := NewClusterer(Config{}); err == nil {
		t.Error("missing cardinalities: want error")
	}
	if _, err := NewClusterer(Config{Cardinalities: []int{2}}); err == nil {
		t.Error("missing rand: want error")
	}
	c, err := NewClusterer(streamConfig([]int{2, 2}, 10, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Add([]int{0}); err == nil {
		t.Error("wrong row width: want error")
	}
}

func TestWindowEviction(t *testing.T) {
	c, err := NewClusterer(streamConfig([]int{2}, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := c.Add([]int{i % 2}); err != nil {
			t.Fatal(err)
		}
	}
	if len(c.window) != 4 {
		t.Errorf("window holds %d objects, want 4", len(c.window))
	}
}
