package stream

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"mcdc/internal/core"
	"mcdc/internal/datasets"
	"mcdc/internal/model"
)

func streamConfig(card []int, window int, seed int64) Config {
	return Config{
		Cardinalities: card,
		WindowSize:    window,
		MGCPL:         core.MGCPLConfig{Rand: rand.New(rand.NewSource(seed))},
	}
}

func TestStationaryStreamStabilizes(t *testing.T) {
	ds := datasets.Synthetic("t", 1200, 8, 3, 0.9, rand.New(rand.NewSource(60)))
	c, err := NewClusterer(streamConfig(ds.Cardinalities(), 300, 1))
	if err != nil {
		t.Fatal(err)
	}
	var lastEpoch int
	for i, row := range ds.Rows {
		a, err := c.Add(row)
		if err != nil {
			t.Fatal(err)
		}
		if i == len(ds.Rows)-1 {
			lastEpoch = a.ModelEpoch
		}
	}
	if lastEpoch == 0 {
		t.Fatal("model never learned")
	}
	if k := c.K(); k < 2 || k > 6 {
		t.Errorf("model k = %d, want near the 3 planted clusters (kappa %v)", k, c.Kappa())
	}
	// After the model settles, same-cluster objects should be assigned
	// together: feed a fresh batch from the same distribution and check
	// that assignments align with the planted labels.
	fresh := datasets.Synthetic("t", 300, 8, 3, 0.9, rand.New(rand.NewSource(60)))
	agreement := make(map[[2]int]int)
	for i, row := range fresh.Rows {
		a, err := c.Add(row)
		if err != nil {
			t.Fatal(err)
		}
		agreement[[2]int{fresh.Labels[i], a.Cluster}]++
	}
	correct := 0
	for truth := 0; truth < 3; truth++ {
		best := 0
		for key, cnt := range agreement {
			if key[0] == truth && cnt > best {
				best = cnt
			}
		}
		correct += best
	}
	if frac := float64(correct) / float64(fresh.N()); frac < 0.75 {
		t.Errorf("online assignment agreement = %v, want ≥ 0.75", frac)
	}
}

func TestDriftTriggersRelearn(t *testing.T) {
	rngA := rand.New(rand.NewSource(61))
	phaseA := datasets.Synthetic("a", 400, 8, 2, 0.9, rngA)
	c, err := NewClusterer(streamConfig(phaseA.Cardinalities(), 200, 2))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range phaseA.Rows {
		if _, err := c.Add(row); err != nil {
			t.Fatal(err)
		}
	}
	epochAfterA := c.ModelEpoch()
	if epochAfterA == 0 {
		t.Fatal("phase A never learned a model")
	}
	// Phase B: a completely different distribution (different dominant
	// values). The drift detector must force a re-learning well before the
	// periodic refresh interval would.
	phaseB := datasets.Synthetic("b", 400, 8, 4, 0.9, rand.New(rand.NewSource(987)))
	relearned := false
	for _, row := range phaseB.Rows {
		a, err := c.Add(row)
		if err != nil {
			t.Fatal(err)
		}
		if a.ModelEpoch > epochAfterA {
			relearned = true
			break
		}
	}
	if !relearned {
		t.Error("distribution shift did not trigger a model refresh")
	}
}

func TestStreamErrors(t *testing.T) {
	if _, err := NewClusterer(Config{}); err == nil {
		t.Error("missing cardinalities: want error")
	}
	if _, err := NewClusterer(Config{Cardinalities: []int{2}}); err == nil {
		t.Error("missing rand: want error")
	}
	c, err := NewClusterer(streamConfig([]int{2, 2}, 10, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Add([]int{0}); err == nil {
		t.Error("wrong row width: want error")
	}
}

// TestDriftRefreshAtRingBoundary engineers a drift-triggered re-learning on
// the exact arrival whose ring overwrite wraps the cursor back to slot 0, and
// checks the re-learned model saw the fully-wrapped window (all drift rows,
// none of the stale phase-A rows). The schedule is derived from the drift
// rule: after the provisional model (epoch 1) forms at arrival 2, six
// in-distribution arrivals fill the ring (cursor at 0), and eight
// out-of-distribution arrivals overwrite slots 0..7; with DriftFraction
// 0.55 the ratio first crosses at drifted/sinceFresh = 8/14 ≈ 0.571 — the
// wrap arrival.
func TestDriftRefreshAtRingBoundary(t *testing.T) {
	card := []int{4, 4, 4}
	cfg := Config{
		Cardinalities: card,
		WindowSize:    8,
		RefreshEvery:  100,
		DriftFraction: 0.55,
		MGCPL:         core.MGCPLConfig{Rand: rand.New(rand.NewSource(9))},
	}
	c, err := NewClusterer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	trainRows := [][]int{{0, 0, 0}, {1, 1, 1}}
	// Drift rows use value codes {2,3} on every feature: zero overlap with
	// the model's frequencies, so each scores similarity 0 (< threshold).
	driftRows := [][]int{
		{2, 2, 2}, {2, 2, 3}, {2, 3, 2}, {2, 3, 3},
		{3, 2, 2}, {3, 2, 3}, {3, 3, 2}, {3, 3, 3},
	}
	add := func(row []int) Assignment {
		t.Helper()
		a, err := c.Add(row)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	for i := 0; i < 8; i++ { // arrivals 1..8 fill the ring
		add(trainRows[i%2])
	}
	if c.epoch != 1 {
		t.Fatalf("provisional model epoch = %d, want 1", c.epoch)
	}
	if len(c.window) != 8 || c.next != 0 {
		t.Fatalf("ring not at pre-wrap state: len=%d next=%d", len(c.window), c.next)
	}
	var last Assignment
	for i, row := range driftRows { // arrivals 9..16 overwrite slots 0..7
		last = add(row)
		if i < 7 && c.epoch != 1 {
			t.Fatalf("re-learn fired early, at drift arrival %d", i+1)
		}
	}
	if last.ModelEpoch != 2 || c.epoch != 2 {
		t.Fatalf("re-learn did not fire on the wrap arrival: epoch=%d", c.epoch)
	}
	if c.next != 0 {
		t.Fatalf("ring cursor = %d after the wrap arrival, want 0", c.next)
	}
	if !reflect.DeepEqual(c.window, driftRows) {
		t.Fatalf("re-learn window is not the wrapped drift rows:\n%v", c.window)
	}
	// The swapped-in model must explain the drift regime, not the old one.
	if sim := c.probeSimBest(driftRows[0]); sim < c.cfg.DriftThreshold {
		t.Fatalf("drift row scores %v under the re-learned model", sim)
	}
}

// probeSimBest returns the best-cluster probe similarity for a row (test
// helper mirroring Add's probe loop without mutating the window).
func (c *Clusterer) probeSimBest(row []int) float64 {
	best := -1.0
	for l := 0; l < c.k; l++ {
		if c.tables.Size(l) == 0 {
			continue
		}
		if s := c.tables.ProbeSim(row, l); s > best {
			best = s
		}
	}
	return best
}

// TestSnapshotRestoreBitIdentical pins the checkpoint contract: after
// Snapshot (which rotates the rng onto a recorded sub-seed), the original
// and a Restore of the serialized state produce bit-for-bit identical
// assignments on any subsequent input — including across re-learnings,
// which consume the (now aligned) random streams.
func TestSnapshotRestoreBitIdentical(t *testing.T) {
	ds := datasets.Synthetic("t", 900, 8, 3, 0.9, rand.New(rand.NewSource(77)))
	c, err := NewClusterer(streamConfig(ds.Cardinalities(), 200, 5))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range ds.Rows[:600] {
		if _, err := c.Add(row); err != nil {
			t.Fatal(err)
		}
	}
	if c.ModelEpoch() == 0 {
		t.Fatal("no model learned before the checkpoint")
	}

	// Serialize through the real envelope, not just the in-memory state.
	var buf bytes.Buffer
	if err := c.Snapshot().Save(&buf); err != nil {
		t.Fatal(err)
	}
	st, err := model.LoadStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	r, err := Restore(st)
	if err != nil {
		t.Fatal(err)
	}
	if r.K() != c.K() || r.ModelEpoch() != c.ModelEpoch() || !reflect.DeepEqual(r.Kappa(), c.Kappa()) {
		t.Fatal("restored model state differs from the original")
	}

	epochBefore := c.ModelEpoch()
	for i, row := range ds.Rows[600:] {
		ao, err := c.Add(row)
		if err != nil {
			t.Fatal(err)
		}
		ar, err := r.Add(row)
		if err != nil {
			t.Fatal(err)
		}
		if ao != ar {
			t.Fatalf("tail row %d: original %+v, restored %+v", i, ao, ar)
		}
	}
	if c.ModelEpoch() == epochBefore {
		t.Fatal("tail did not cross a re-learning; the test lost its teeth")
	}
	if r.ModelEpoch() != c.ModelEpoch() || r.K() != c.K() || !reflect.DeepEqual(r.Kappa(), c.Kappa()) {
		t.Fatal("original and restored clusterers diverged after the tail")
	}
}

// TestSnapshotBeforeFirstModel covers the cold-start checkpoint: no tables
// yet, partial window.
func TestSnapshotBeforeFirstModel(t *testing.T) {
	c, err := NewClusterer(streamConfig([]int{2, 2}, 100, 6))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Add([]int{i % 2, 0}); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Snapshot()
	if st.Tables != nil || st.Epoch != 0 {
		t.Fatalf("cold snapshot carries a model: %+v", st)
	}
	r, err := Restore(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.window) != 3 || r.tables != nil {
		t.Fatal("cold restore mismatched")
	}
}

func TestRestoreRejectsMalformedState(t *testing.T) {
	if _, err := Restore(nil); err == nil {
		t.Error("nil state accepted")
	}
	base := func() *model.StreamState {
		return &model.StreamState{
			Cardinalities: []int{2, 2},
			WindowSize:    4,
			RandSeed:      1,
			Window:        [][]int{{0, 1}, {1, 0}},
		}
	}
	st := base()
	st.Window = append(st.Window, []int{0})
	if _, err := Restore(st); err == nil {
		t.Error("ragged window row accepted")
	}
	st = base()
	st.Window = [][]int{{0, 0}, {0, 0}, {0, 0}, {0, 0}, {0, 0}}
	if _, err := Restore(st); err == nil {
		t.Error("window beyond capacity accepted")
	}
	st = base()
	st.Next = 7
	if _, err := Restore(st); err == nil {
		t.Error("out-of-range cursor accepted")
	}
	// A checkpoint whose claimed k disagrees with its tables must be
	// rejected at Restore time, not panic later in Add.
	c, err := NewClusterer(streamConfig([]int{2, 2}, 8, 1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := c.Add([]int{i % 2, (i / 2) % 2}); err != nil {
			t.Fatal(err)
		}
	}
	warm := c.Snapshot()
	if warm.Tables == nil {
		t.Fatal("warm snapshot carries no tables")
	}
	warm.K = warm.Tables.K + 1
	if _, err := Restore(warm); err == nil {
		t.Error("k/tables mismatch accepted")
	}
}

func TestWindowEviction(t *testing.T) {
	c, err := NewClusterer(streamConfig([]int{2}, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := c.Add([]int{i % 2}); err != nil {
			t.Fatal(err)
		}
	}
	if len(c.window) != 4 {
		t.Errorf("window holds %d objects, want 4", len(c.window))
	}
}
