package gudmm

import (
	"math"
	"math/rand"
	"testing"

	"mcdc/internal/datasets"
	"mcdc/internal/metrics"
)

func TestMetricProperties(t *testing.T) {
	ds := datasets.Synthetic("t", 300, 6, 3, 0.9, rand.New(rand.NewSource(30)))
	m, err := NewMetric(ds.Rows, ds.Cardinalities())
	if err != nil {
		t.Fatal(err)
	}
	card := ds.Cardinalities()
	for r := 0; r < ds.D(); r++ {
		for a := 0; a < card[r]; a++ {
			if got := m.ValueDist(r, a, a); got != 0 {
				t.Errorf("d(%d: %d,%d) = %v, want 0 on the diagonal", r, a, a, got)
			}
			for b := 0; b < card[r]; b++ {
				ab, ba := m.ValueDist(r, a, b), m.ValueDist(r, b, a)
				if ab != ba {
					t.Errorf("metric not symmetric: d(%d,%d)=%v vs %v", a, b, ab, ba)
				}
				if ab < 0 || ab > 1+1e-9 {
					t.Errorf("metric out of range: %v", ab)
				}
			}
		}
	}
	// Feature weights form a simplex.
	var sum float64
	for _, w := range m.weight {
		if w < 0 {
			t.Errorf("negative feature weight: %v", m.weight)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("feature weights sum to %v", sum)
	}
}

func TestMetricSeparatesCoupledValues(t *testing.T) {
	// Feature 0's values 0/1 always co-occur with feature 1's values 0/1
	// respectively; values 0 and 1 of feature 0 must be far apart.
	rows := make([][]int, 100)
	for i := range rows {
		v := i % 2
		rows[i] = []int{v, v}
	}
	m, err := NewMetric(rows, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.ValueDist(0, 0, 1); got < 0.9 {
		t.Errorf("perfectly coupled values: distance %v, want ≈ 1", got)
	}
}

func TestGudmmRecovery(t *testing.T) {
	ds := datasets.Synthetic("t", 400, 8, 2, 0.92, rand.New(rand.NewSource(31)))
	best := 0.0
	for seed := int64(0); seed < 5; seed++ {
		res, err := Run(ds.Rows, ds.Cardinalities(), Config{K: 2, Rand: rand.New(rand.NewSource(seed))})
		if err != nil {
			t.Fatal(err)
		}
		acc, err := metrics.Accuracy(ds.Labels, res.Labels)
		if err != nil {
			t.Fatal(err)
		}
		if acc > best {
			best = acc
		}
	}
	if best < 0.85 {
		t.Errorf("best-of-5 ACC = %v, want ≥ 0.85", best)
	}
}

func TestGudmmErrors(t *testing.T) {
	if _, err := Run(nil, nil, Config{K: 2, Rand: rand.New(rand.NewSource(1))}); err == nil {
		t.Error("empty data: want error")
	}
	if _, err := NewMetric([][]int{{0}}, []int{2}); err == nil {
		t.Error("single feature: want error (metric needs couplings)")
	}
	if _, err := Run([][]int{{0, 0}}, []int{1, 1}, Config{K: 1}); err == nil {
		t.Error("nil rand: want error")
	}
}
