// Package gudmm implements the categorical side of GUDMM (Mousavi & Sehhati
// 2023): a generalized multi-aspect distance metric in which the distance
// between two values of one feature is derived from how differently they
// co-occur with the values of every other feature, with features weighted by
// their average mutual information. Clustering proceeds k-modes-style under
// the learned metric.
package gudmm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"mcdc/internal/categorical"
	"mcdc/internal/seeding"
)

// Metric holds the learned value-level distances and feature significances.
type Metric struct {
	// valueDist[r] is an m_r×m_r matrix of distances between values of
	// feature r, each in [0,1].
	valueDist [][][]float64
	// weight[r] is the mutual-information significance of feature r,
	// normalized to sum to 1.
	weight []float64
}

// NewMetric learns the multi-aspect distance metric from the data set.
func NewMetric(rows [][]int, cardinalities []int) (*Metric, error) {
	n := len(rows)
	if n == 0 {
		return nil, errors.New("gudmm: empty data")
	}
	d := len(cardinalities)
	if d < 2 {
		return nil, errors.New("gudmm: metric needs at least two features")
	}
	// Marginals and pairwise joints.
	marg := make([][]float64, d)
	for r := range marg {
		marg[r] = make([]float64, cardinalities[r])
	}
	joint := make([][][][]float64, d)
	for r := 0; r < d; r++ {
		joint[r] = make([][][]float64, d)
		for t := r + 1; t < d; t++ {
			m := make([][]float64, cardinalities[r])
			for a := range m {
				m[a] = make([]float64, cardinalities[t])
			}
			joint[r][t] = m
		}
	}
	valid := 0
	for _, row := range rows {
		ok := true
		for _, v := range row {
			if v == categorical.Missing {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		valid++
		for r, v := range row {
			marg[r][v]++
		}
		for r := 0; r < d; r++ {
			for t := r + 1; t < d; t++ {
				joint[r][t][row[r]][row[t]]++
			}
		}
	}
	if valid == 0 {
		return nil, errors.New("gudmm: no complete rows")
	}
	fn := float64(valid)
	for r := range marg {
		for v := range marg[r] {
			marg[r][v] /= fn
		}
	}

	// Pairwise normalized mutual information for the feature significances.
	mi := make([][]float64, d)
	for r := range mi {
		mi[r] = make([]float64, d)
	}
	for r := 0; r < d; r++ {
		for t := r + 1; t < d; t++ {
			var m, hr, ht float64
			for a := range joint[r][t] {
				for b, c := range joint[r][t][a] {
					if c == 0 {
						continue
					}
					p := c / fn
					m += p * math.Log(p/(marg[r][a]*marg[t][b]))
				}
			}
			for _, p := range marg[r] {
				if p > 0 {
					hr -= p * math.Log(p)
				}
			}
			for _, p := range marg[t] {
				if p > 0 {
					ht -= p * math.Log(p)
				}
			}
			if denom := math.Sqrt(hr * ht); denom > 0 {
				m /= denom
			} else {
				m = 0
			}
			mi[r][t], mi[t][r] = m, m
		}
	}
	weight := make([]float64, d)
	var wTotal float64
	for r := 0; r < d; r++ {
		var sum float64
		for t := 0; t < d; t++ {
			if t != r {
				sum += mi[r][t]
			}
		}
		weight[r] = sum / float64(d-1)
		wTotal += weight[r]
	}
	if wTotal <= 0 {
		for r := range weight {
			weight[r] = 1 / float64(d)
		}
	} else {
		for r := range weight {
			weight[r] /= wTotal
		}
	}

	// Value distances: for values a,b of feature r, the average over other
	// features t of the total-variation distance between the conditional
	// distributions P(·|a) and P(·|b) on t.
	cond := func(r, t, a int) []float64 {
		out := make([]float64, cardinalities[t])
		var total float64
		for b := range out {
			var c float64
			if r < t {
				c = joint[r][t][a][b]
			} else {
				c = joint[t][r][b][a]
			}
			out[b] = c
			total += c
		}
		if total > 0 {
			for b := range out {
				out[b] /= total
			}
		}
		return out
	}
	vd := make([][][]float64, d)
	for r := 0; r < d; r++ {
		m := cardinalities[r]
		vd[r] = make([][]float64, m)
		for a := 0; a < m; a++ {
			vd[r][a] = make([]float64, m)
		}
		for a := 0; a < m; a++ {
			for b := a + 1; b < m; b++ {
				var sum float64
				for t := 0; t < d; t++ {
					if t == r {
						continue
					}
					pa, pb := cond(r, t, a), cond(r, t, b)
					var tv float64
					for v := range pa {
						tv += math.Abs(pa[v] - pb[v])
					}
					sum += tv / 2
				}
				dist := sum / float64(d-1)
				vd[r][a][b], vd[r][b][a] = dist, dist
			}
		}
	}
	return &Metric{valueDist: vd, weight: weight}, nil
}

// ValueDist returns the learned distance between values a and b of feature
// r. A Missing value is maximally distant from everything.
func (m *Metric) ValueDist(r, a, b int) float64 {
	if a == categorical.Missing || b == categorical.Missing {
		if a == b {
			return 0
		}
		return 1
	}
	return m.valueDist[r][a][b]
}

// Dist returns the weighted multi-aspect distance between two rows.
func (m *Metric) Dist(a, b []int) float64 {
	var sum float64
	for r := range a {
		sum += m.weight[r] * m.ValueDist(r, a[r], b[r])
	}
	return sum
}

// Config parameterizes GUDMM clustering.
type Config struct {
	K        int
	MaxIters int
	Rand     *rand.Rand
}

// Result is the converged partition.
type Result struct {
	Labels []int
	Modes  [][]int
	Iters  int
}

// Run learns the metric and clusters rows into cfg.K clusters by k-modes
// under it (modes minimize the within-cluster value distances per feature).
func Run(rows [][]int, cardinalities []int, cfg Config) (*Result, error) {
	n := len(rows)
	if n == 0 {
		return nil, errors.New("gudmm: empty data")
	}
	if cfg.Rand == nil {
		return nil, errors.New("gudmm: nil random source")
	}
	k := cfg.K
	if k <= 0 {
		return nil, fmt.Errorf("gudmm: k must be positive, got %d", k)
	}
	if k > n {
		k = n
	}
	maxIters := cfg.MaxIters
	if maxIters <= 0 {
		maxIters = 100
	}
	metric, err := NewMetric(rows, cardinalities)
	if err != nil {
		return nil, err
	}
	d := len(cardinalities)

	modes := make([][]int, k)
	for l, i := range seeding.DistinctRows(rows, k, cfg.Rand) {
		modes[l] = append([]int(nil), rows[i]...)
	}
	labels := make([]int, n)
	for i := range labels {
		labels[i] = -1
	}

	assign := func() bool {
		changed := false
		for i, row := range rows {
			best, bestD := 0, metric.Dist(row, modes[0])
			for l := 1; l < k; l++ {
				if dist := metric.Dist(row, modes[l]); dist < bestD {
					best, bestD = l, dist
				}
			}
			if labels[i] != best {
				labels[i] = best
				changed = true
			}
		}
		return changed
	}

	updateModes := func() {
		counts := make([][][]int, k)
		sizes := make([]int, k)
		for l := range counts {
			counts[l] = make([][]int, d)
			for r := range counts[l] {
				counts[l][r] = make([]int, cardinalities[r])
			}
		}
		for i, l := range labels {
			sizes[l]++
			for r, v := range rows[i] {
				if v != categorical.Missing {
					counts[l][r][v]++
				}
			}
		}
		for l := 0; l < k; l++ {
			if sizes[l] == 0 {
				modes[l] = append(modes[l][:0], rows[cfg.Rand.Intn(n)]...)
				continue
			}
			for r := 0; r < d; r++ {
				// The mode value minimizes the summed metric distance to the
				// cluster's values on this feature.
				best, bestCost := 0, math.Inf(1)
				for cand := 0; cand < cardinalities[r]; cand++ {
					var cost float64
					for v, c := range counts[l][r] {
						if c > 0 {
							cost += float64(c) * metric.ValueDist(r, cand, v)
						}
					}
					if cost < bestCost {
						best, bestCost = cand, cost
					}
				}
				modes[l][r] = best
			}
		}
	}

	assign()
	iters := 0
	for ; iters < maxIters; iters++ {
		updateModes()
		if !assign() {
			break
		}
	}
	return &Result{Labels: labels, Modes: modes, Iters: iters + 1}, nil
}
