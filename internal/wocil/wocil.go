// Package wocil implements the categorical part of WOCIL (Jia & Cheung
// 2017): object–cluster-similarity partitioning with per-cluster subspace
// attribute weighting and the deterministic density/distance initialization
// that makes the method's performance run-to-run stable (the property the
// MCDC paper highlights).
package wocil

import (
	"errors"
	"fmt"
	"math"

	"mcdc/internal/categorical"
	"mcdc/internal/similarity"
)

// Config parameterizes WOCIL.
type Config struct {
	K        int
	MaxIters int
}

// Result is the converged partition with the learned subspace weights.
type Result struct {
	Labels  []int
	Weights [][]float64 // w[l][r]
	Iters   int
}

// Run clusters integer-coded rows into cfg.K clusters. The algorithm is
// deterministic: no random source is needed.
func Run(rows [][]int, cardinalities []int, cfg Config) (*Result, error) {
	n := len(rows)
	if n == 0 {
		return nil, errors.New("wocil: empty data")
	}
	k := cfg.K
	if k <= 0 {
		return nil, fmt.Errorf("wocil: k must be positive, got %d", k)
	}
	if k > n {
		k = n
	}
	maxIters := cfg.MaxIters
	if maxIters <= 0 {
		maxIters = 100
	}
	d := len(cardinalities)

	tables, err := similarity.NewTables(rows, cardinalities, k)
	if err != nil {
		return nil, err
	}

	seeds := stableSeeds(rows, cardinalities, k)
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	for l, i := range seeds {
		assign[i] = l
		tables.Add(i, l)
	}

	w := make([][]float64, k)
	for l := range w {
		w[l] = make([]float64, d)
		for r := range w[l] {
			w[l][r] = 1 / float64(d)
		}
	}

	iters := 0
	for ; iters < maxIters; iters++ {
		changed := false
		for i := 0; i < n; i++ {
			best, bestS := -1, -1.0
			for l := 0; l < k; l++ {
				if tables.Size(l) == 0 {
					continue
				}
				if s := tables.WeightedSim(i, l, w[l]); s > bestS {
					best, bestS = l, s
				}
			}
			if best < 0 || assign[i] == best {
				continue
			}
			if assign[i] >= 0 {
				tables.Remove(i, assign[i])
			}
			tables.Add(i, best)
			assign[i] = best
			changed = true
		}
		updateWeights(tables, cardinalities, w)
		if !changed {
			break
		}
	}
	return &Result{Labels: compact(assign), Weights: w, Iters: iters + 1}, nil
}

// stableSeeds picks k seeds deterministically: the globally densest object
// first, then farthest-first traversal weighted by density — giving the
// run-to-run stability the paper attributes to WOCIL's initialization.
func stableSeeds(rows [][]int, cardinalities []int, k int) []int {
	n := len(rows)
	d := len(cardinalities)
	stride := 0
	for _, m := range cardinalities {
		if m > stride {
			stride = m
		}
	}
	freq := make([]int, d*stride)
	for _, row := range rows {
		for r, v := range row {
			if v != categorical.Missing {
				freq[r*stride+v]++
			}
		}
	}
	density := make([]float64, n)
	for i, row := range rows {
		for r, v := range row {
			if v != categorical.Missing {
				density[i] += float64(freq[r*stride+v])
			}
		}
		density[i] /= float64(n * d)
	}
	hamming := func(a, b []int) float64 {
		dist := 0
		for r := range a {
			if a[r] != b[r] {
				dist++
			}
		}
		return float64(dist) / float64(len(a))
	}

	seeds := make([]int, 0, k)
	first, bestD := 0, -1.0
	for i := range density {
		if density[i] > bestD {
			first, bestD = i, density[i]
		}
	}
	seeds = append(seeds, first)
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = hamming(rows[i], rows[first])
	}
	for len(seeds) < k {
		next, bestScore := -1, -1.0
		for i := range rows {
			score := density[i] * minDist[i]
			if score > bestScore {
				next, bestScore = i, score
			}
		}
		seeds = append(seeds, next)
		for i := range minDist {
			if dd := hamming(rows[i], rows[next]); dd < minDist[i] {
				minDist[i] = dd
			}
		}
	}
	return seeds
}

// updateWeights refreshes the subspace attribute weights: features whose
// in-cluster value distribution is far from uniform (low normalized entropy)
// matter more for that cluster.
func updateWeights(t *similarity.Tables, cardinalities []int, w [][]float64) {
	for l := range w {
		if t.Size(l) == 0 {
			continue
		}
		var total float64
		for r := range w[l] {
			m := cardinalities[r]
			if m < 2 {
				w[l][r] = 0
				continue
			}
			var h float64
			for v := 0; v < m; v++ {
				c := t.Count(l, r, v)
				if c == 0 {
					continue
				}
				p := float64(c) / float64(t.Size(l))
				h -= p * math.Log(p)
			}
			imp := 1 - h/math.Log(float64(m))
			if imp < 0 {
				imp = 0
			}
			w[l][r] = imp
			total += imp
		}
		if total <= 0 {
			u := 1 / float64(len(w[l]))
			for r := range w[l] {
				w[l][r] = u
			}
			continue
		}
		for r := range w[l] {
			w[l][r] /= total
		}
	}
}

func compact(assign []int) []int {
	remap := make(map[int]int)
	out := make([]int, len(assign))
	for i, l := range assign {
		if l < 0 {
			out[i] = 0
			continue
		}
		nl, ok := remap[l]
		if !ok {
			nl = len(remap)
			remap[l] = nl
		}
		out[i] = nl
	}
	return out
}
