package wocil

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"mcdc/internal/datasets"
	"mcdc/internal/metrics"
)

func TestWocilDeterministic(t *testing.T) {
	ds := datasets.Synthetic("t", 300, 8, 3, 0.9, rand.New(rand.NewSource(20)))
	a, err := Run(ds.Rows, ds.Cardinalities(), Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(ds.Rows, ds.Cardinalities(), Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Labels, b.Labels) {
		t.Error("WOCIL must be deterministic (stable initialization)")
	}
}

func TestWocilRecovery(t *testing.T) {
	ds := datasets.Synthetic("t", 500, 8, 3, 0.92, rand.New(rand.NewSource(21)))
	res, err := Run(ds.Rows, ds.Cardinalities(), Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := metrics.Accuracy(ds.Labels, res.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Errorf("ACC = %v, want ≥ 0.9 with stable seeding", acc)
	}
}

func TestWocilWeightsSimplex(t *testing.T) {
	ds := datasets.Synthetic("t", 200, 6, 2, 0.9, rand.New(rand.NewSource(22)))
	res, err := Run(ds.Rows, ds.Cardinalities(), Config{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	for l, w := range res.Weights {
		var sum float64
		for _, x := range w {
			if x < 0 {
				t.Fatalf("negative weight in cluster %d: %v", l, w)
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("cluster %d weights sum to %v", l, sum)
		}
	}
}

func TestWocilErrors(t *testing.T) {
	if _, err := Run(nil, nil, Config{K: 2}); err == nil {
		t.Error("empty data: want error")
	}
	if _, err := Run([][]int{{0}}, []int{1}, Config{K: 0}); err == nil {
		t.Error("k=0: want error")
	}
}
