package experiments

import (
	"fmt"
	"io"

	"mcdc/internal/stats"
)

// Table4 reports the Wilcoxon signed-rank comparison of the best MCDC
// variant (MCDC+F.) against each counterpart, per validity index: "+" when
// MCDC+F. is significantly better at the 90% confidence level, "-" when no
// significant difference is detected.
type Table4 struct {
	Champion string
	Alpha    float64
	Methods  []string
	Indices  []string
	// Significant[method][index]
	Significant [][]bool
	PValues     [][]float64
}

// RunTable4 derives the significance table from Table-III results, following
// the paper's protocol: paired samples are the per-data-set mean scores,
// tested with the two-tailed Wilcoxon signed-rank test at α = 0.1.
func RunTable4(t3 *Table3) (*Table4, error) {
	const champion = "MCDC+F."
	out := &Table4{Champion: champion, Alpha: 0.1, Indices: t3.Indices}
	for _, m := range t3.Methods {
		if m == champion || m == "MCDC" || m == "MCDC+G." {
			continue // the paper compares the champion against the six counterparts
		}
		out.Methods = append(out.Methods, m)
	}
	out.Significant = make([][]bool, len(out.Methods))
	out.PValues = make([][]float64, len(out.Methods))
	for mi, m := range out.Methods {
		out.Significant[mi] = make([]bool, len(out.Indices))
		out.PValues[mi] = make([]float64, len(out.Indices))
		for xi, index := range out.Indices {
			champ, err := t3.MethodScores(index, champion)
			if err != nil {
				return nil, err
			}
			other, err := t3.MethodScores(index, m)
			if err != nil {
				return nil, err
			}
			better, res, err := stats.SignificantlyGreater(champ, other, out.Alpha)
			if err != nil {
				return nil, err
			}
			out.Significant[mi][xi] = better
			out.PValues[mi][xi] = res.PValue
		}
	}
	return out, nil
}

// Write renders the table in the paper's layout.
func (t *Table4) Write(w io.Writer) {
	fmt.Fprintf(w, "Wilcoxon signed-rank, %s vs counterparts (two-tailed, α=%.1f)\n", t.Champion, t.Alpha)
	fmt.Fprintf(w, "%-10s", "Method")
	for _, idx := range t.Indices {
		fmt.Fprintf(w, " %12s", idx)
	}
	fmt.Fprintln(w)
	for mi, m := range t.Methods {
		fmt.Fprintf(w, "%-10s", m)
		for xi := range t.Indices {
			mark := "-"
			if t.Significant[mi][xi] {
				mark = "+"
			}
			fmt.Fprintf(w, " %4s (p=%.2f)", mark, t.PValues[mi][xi])
		}
		fmt.Fprintln(w)
	}
}
