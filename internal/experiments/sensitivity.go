package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"mcdc/internal/core"
	"mcdc/internal/datasets"
	"mcdc/internal/metrics"
	"mcdc/internal/parallel"
	"mcdc/internal/stats"
)

// Sensitivity reports how the rival-penalty redundancy threshold τ (the main
// free parameter this implementation adds while resolving the paper's
// Eq. (13) ambiguity — see DESIGN.md §2.5) shapes the analysis: the final
// granularity k_σ found by MGCPL and the end-to-end MCDC ARI, per data set
// and threshold.
type Sensitivity struct {
	Datasets   []string
	Thresholds []float64
	KStar      []int
	// FinalK[dataset][threshold] is the mean k_σ over the runs.
	FinalK [][]float64
	// ARI[dataset][threshold] is the mean MCDC ARI at k = k*.
	ARI [][]float64
}

// RunSensitivity sweeps the rival threshold on the Table-II corpus. Data
// sets fan out across `workers` goroutines (≤ 0 → GOMAXPROCS, 1 →
// sequential); every run owns a rand seeded only by its (run, threshold)
// indices and each goroutine writes only its own dataset rows, so the sweep
// is identical at any parallelism level.
func RunSensitivity(runs int, seed int64, names []string, thresholds []float64, workers int) (*Sensitivity, error) {
	if runs <= 0 {
		runs = 3
	}
	if len(thresholds) == 0 {
		thresholds = []float64{0.75, 0.80, 0.85, 0.90, 0.95}
	}
	infos := datasets.Table2()
	if names != nil {
		var sel []datasets.Info
		for _, want := range names {
			for _, info := range infos {
				if info.Name == want {
					sel = append(sel, info)
				}
			}
		}
		infos = sel
	}
	out := &Sensitivity{
		Thresholds: thresholds,
		Datasets:   make([]string, len(infos)),
		KStar:      make([]int, len(infos)),
		FinalK:     make([][]float64, len(infos)),
		ARI:        make([][]float64, len(infos)),
	}
	err := parallel.ForEach(workers, len(infos), func(di int) error {
		info := infos[di]
		ds := info.Gen(seededRand(seed, int64(di)))
		out.Datasets[di] = info.Name
		out.KStar[di] = info.KStar
		kRow := make([]float64, len(thresholds))
		aRow := make([]float64, len(thresholds))
		for ti, tau := range thresholds {
			var ks, aris []float64
			for run := 0; run < runs; run++ {
				rng := rand.New(rand.NewSource(seed + int64(1000*run+ti)))
				res, err := core.RunMCDC(ds.Rows, ds.Cardinalities(), core.MCDCConfig{
					MGCPL: core.MGCPLConfig{RivalThreshold: tau, Rand: rng},
					CAME:  core.CAMEConfig{K: info.KStar},
				})
				if err != nil {
					return fmt.Errorf("sensitivity %s tau=%.2f: %w", info.Name, tau, err)
				}
				ks = append(ks, float64(res.MGCPL.Final().K))
				ari, err := metrics.AdjustedRandIndex(ds.Labels, res.Labels)
				if err != nil {
					return err
				}
				aris = append(aris, ari)
			}
			kRow[ti] = stats.Mean(ks)
			aRow[ti] = round3(stats.Mean(aris))
		}
		out.FinalK[di] = kRow
		out.ARI[di] = aRow
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Write renders the sweep.
func (s *Sensitivity) Write(w io.Writer) {
	fmt.Fprintln(w, "Rival-threshold sensitivity: mean final k_sigma (and MCDC ARI) per tau")
	fmt.Fprintf(w, "%-6s %4s", "Data", "k*")
	for _, tau := range s.Thresholds {
		fmt.Fprintf(w, "  tau=%.2f      ", tau)
	}
	fmt.Fprintln(w)
	for di, ds := range s.Datasets {
		fmt.Fprintf(w, "%-6s %4d", ds, s.KStar[di])
		for ti := range s.Thresholds {
			fmt.Fprintf(w, "  %5.1f (%.3f)", s.FinalK[di][ti], s.ARI[di][ti])
		}
		fmt.Fprintln(w)
	}
}
