package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"mcdc/internal/datasets"
	"mcdc/internal/linkage"
	"mcdc/internal/metrics"
	"mcdc/internal/stats"
)

// LinkageScaleConfig parameterizes the linkage-scaling comparison: the
// O(n³) nearest-pair scan versus the O(n²) nearest-neighbour chain on the
// same condensed Hamming matrices.
type LinkageScaleConfig struct {
	// Ns are the data-set sizes to sweep (default 500, 2000, 5000).
	Ns []int
	// Seed drives the synthetic data generation.
	Seed int64
	// Method is the Lance–Williams rule (default Average).
	Method linkage.Method
	// ScanCap skips the O(n³) scan — and with it the oracle cross-check —
	// above this n, so the sweep stays tractable (default 2000).
	ScanCap int
	// Workers bounds each build's fan-out (≤ 0 → GOMAXPROCS); results are
	// identical at any level.
	Workers int
}

// LinkageScale is the measured sweep, one entry per n.
type LinkageScale struct {
	Method   linkage.Method
	Ns       []int
	ChainSec []float64 // wall-clock of BuildChainWorkers
	ScanSec  []float64 // wall-clock of BuildCondensedWorkers; NaN when skipped
	Checked  []bool    // whether the scan oracle ran for this n (n <= ScanCap)
	Verified []bool    // chain canonically identical to the scan oracle; meaningful only where Checked
	ARI      []float64 // chain Cut(k*) agreement with the planted clusters
	Medoid   []int     // data-set medoid under the Hamming dissimilarity
}

// RunLinkageScale generates a planted categorical data set per n, builds its
// condensed Hamming dissimilarity matrix, and clusters it with both linkage
// engines. Wherever the scan runs (n ≤ ScanCap) the chain's dendrogram is
// cross-checked against the scan oracle: canonical merges, exact heights,
// and Cut(k*) partitions must all be identical — the equivalence contract of
// linkage v2, measured here at experiment scale rather than unit-test scale.
func RunLinkageScale(cfg LinkageScaleConfig) (*LinkageScale, error) {
	if len(cfg.Ns) == 0 {
		cfg.Ns = []int{500, 2000, 5000}
	}
	if cfg.Method == 0 {
		cfg.Method = linkage.Average
	}
	if cfg.ScanCap == 0 {
		cfg.ScanCap = 2000
	}
	const kstar = 4
	ls := &LinkageScale{Method: cfg.Method, Ns: cfg.Ns}
	for _, n := range cfg.Ns {
		if n < 2 {
			return nil, fmt.Errorf("experiments: linkage scale needs n >= 2, got %d", n)
		}
		// 16 features: a power-of-two count keeps the normalized Hamming
		// values on an exact binary grid, where the chain/scan identity for
		// average linkage is exact (see linkage.BuildChainWorkers).
		ds := datasets.Synthetic(fmt.Sprintf("link_n%d", n), n, 16, kstar, 0.85,
			rand.New(rand.NewSource(cfg.Seed+int64(n))))
		cond := linkage.HammingCondensedWorkers(ds.Rows, cfg.Workers)
		ls.Medoid = append(ls.Medoid, stats.Medoid(cond))

		start := time.Now()
		chain, err := linkage.BuildChainWorkers(cond, cfg.Method, cfg.Workers)
		if err != nil {
			return nil, fmt.Errorf("experiments: chain linkage at n=%d: %w", n, err)
		}
		ls.ChainSec = append(ls.ChainSec, time.Since(start).Seconds())

		cut := chain.Cut(kstar)
		ari, err := metrics.AdjustedRandIndex(ds.Labels, cut)
		if err != nil {
			return nil, fmt.Errorf("experiments: linkage ARI at n=%d: %w", n, err)
		}
		ls.ARI = append(ls.ARI, ari)

		if n > cfg.ScanCap {
			ls.ScanSec = append(ls.ScanSec, math.NaN())
			ls.Checked = append(ls.Checked, false)
			ls.Verified = append(ls.Verified, false)
			continue
		}
		start = time.Now()
		scan, err := linkage.BuildCondensedWorkers(cond, cfg.Method, cfg.Workers)
		if err != nil {
			return nil, fmt.Errorf("experiments: scan linkage at n=%d: %w", n, err)
		}
		ls.ScanSec = append(ls.ScanSec, time.Since(start).Seconds())
		ls.Checked = append(ls.Checked, true)
		ls.Verified = append(ls.Verified, dendrogramsIdentical(scan.Canonical(), chain, kstar))
		if !ls.Verified[len(ls.Verified)-1] {
			return nil, fmt.Errorf("experiments: chain/scan dendrograms diverge at n=%d (%v)", n, cfg.Method)
		}
	}
	return ls, nil
}

// dendrogramsIdentical reports whether two canonical dendrograms carry the
// same merges (exact heights included) and the same Cut(k) partition.
func dendrogramsIdentical(a, b *linkage.Dendrogram, k int) bool {
	if a.N != b.N || len(a.Merges) != len(b.Merges) {
		return false
	}
	for s := range a.Merges {
		if a.Merges[s] != b.Merges[s] {
			return false
		}
	}
	ac, bc := a.Cut(k), b.Cut(k)
	for i := range ac {
		if ac[i] != bc[i] {
			return false
		}
	}
	return true
}

// Write renders the sweep as a table: wall-clock per engine, the speedup,
// oracle verification, clustering agreement, and the Hamming medoid.
func (ls *LinkageScale) Write(w io.Writer) {
	fmt.Fprintf(w, "%-8s %12s %12s %9s %9s %7s %8s\n", "n", "scan (s)", "chain (s)", "speedup", "verified", "ARI", "medoid")
	for i, n := range ls.Ns {
		scan, verified := "-", "-"
		speedup := "-"
		if ls.Checked[i] {
			scan = fmt.Sprintf("%.3f", ls.ScanSec[i])
			speedup = fmt.Sprintf("%.1fx", ls.ScanSec[i]/ls.ChainSec[i])
			verified = fmt.Sprintf("%v", ls.Verified[i])
		}
		fmt.Fprintf(w, "%-8d %12s %12.3f %9s %9s %7.3f %8d\n",
			n, scan, ls.ChainSec[i], speedup, verified, ls.ARI[i], ls.Medoid[i])
	}
	fmt.Fprintf(w, "(method %v; scan is the O(n³) oracle, skipped above the cap; chain is O(n²))\n", ls.Method)
}
