// Package experiments regenerates every table and figure of the paper's
// evaluation section: the clustering-performance comparison (Table III), the
// Wilcoxon significance test (Table IV), the ablation study (Fig. 4), the
// multi-granular learning trajectories (Fig. 5) and the scalability curves
// (Fig. 6). See DESIGN.md §4 for the experiment index.
package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"mcdc/internal/adc"
	"mcdc/internal/categorical"
	"mcdc/internal/core"
	"mcdc/internal/fkmawcw"
	"mcdc/internal/gudmm"
	"mcdc/internal/kmodes"
	"mcdc/internal/rock"
	"mcdc/internal/wocil"
)

// Method is a uniform wrapper around one clustering algorithm: it partitions
// the data set into (approximately) k clusters using the given seed.
type Method struct {
	Name string
	Run  func(ds *categorical.Dataset, k int, seed int64) ([]int, error)
	// Deterministic marks methods whose output does not depend on the seed
	// (ROCK without sampling, WOCIL); the harness runs them once.
	Deterministic bool
}

// mcdcPipeline runs the pooled MGCPL analysis and hands the encoding to
// final; final == nil means CAME (plain MCDC).
func mcdcPipeline(ds *categorical.Dataset, k int, seed int64,
	final func(enc [][]int, card []int, k int, rng *rand.Rand) ([]int, error)) ([]int, error) {
	rng := rand.New(rand.NewSource(seed))
	if final == nil {
		res, err := core.RunMCDC(ds.Rows, ds.Cardinalities(), core.MCDCConfig{
			MGCPL: core.MGCPLConfig{Rand: rng},
			CAME:  core.CAMEConfig{K: k},
		})
		if err != nil {
			return nil, err
		}
		return res.Labels, nil
	}
	// Enhancer variants consume the single-run encoding of Algorithm 1, as
	// in the paper; the pooled ensemble helps CAME but widens the feature
	// space beyond what the fuzzy baseline's weight dynamics tolerate.
	enc, _, err := core.PooledEncoding(ds.Rows, ds.Cardinalities(), core.MGCPLConfig{Rand: rng}, 1)
	if err != nil {
		return nil, err
	}
	card := make([]int, len(enc[0]))
	for _, row := range enc {
		for r, v := range row {
			if v+1 > card[r] {
				card[r] = v + 1
			}
		}
	}
	return final(enc, card, k, rng)
}

// Methods returns the nine compared approaches of Table III, in the paper's
// column order.
func Methods() []Method {
	return []Method{
		{Name: "K-MODES", Run: func(ds *categorical.Dataset, k int, seed int64) ([]int, error) {
			res, err := kmodes.Run(ds.Rows, ds.Cardinalities(), kmodes.Config{K: k, Rand: rand.New(rand.NewSource(seed))})
			if err != nil {
				return nil, err
			}
			return res.Labels, nil
		}},
		{Name: "ROCK", Deterministic: false, Run: func(ds *categorical.Dataset, k int, seed int64) ([]int, error) {
			res, err := rock.Run(ds.Rows, ds.Cardinalities(), rock.Config{K: k, Rand: rand.New(rand.NewSource(seed))})
			if err != nil {
				return nil, err
			}
			return res.Labels, nil
		}},
		{Name: "WOCIL", Deterministic: true, Run: func(ds *categorical.Dataset, k int, seed int64) ([]int, error) {
			res, err := wocil.Run(ds.Rows, ds.Cardinalities(), wocil.Config{K: k})
			if err != nil {
				return nil, err
			}
			return res.Labels, nil
		}},
		{Name: "FKMAWCW", Run: func(ds *categorical.Dataset, k int, seed int64) ([]int, error) {
			res, err := fkmawcw.Run(ds.Rows, ds.Cardinalities(), fkmawcw.Config{K: k, Rand: rand.New(rand.NewSource(seed))})
			if err != nil {
				return nil, err
			}
			return res.Labels, nil
		}},
		{Name: "GUDMM", Run: func(ds *categorical.Dataset, k int, seed int64) ([]int, error) {
			res, err := gudmm.Run(ds.Rows, ds.Cardinalities(), gudmm.Config{K: k, Rand: rand.New(rand.NewSource(seed))})
			if err != nil {
				return nil, err
			}
			return res.Labels, nil
		}},
		{Name: "ADC", Run: func(ds *categorical.Dataset, k int, seed int64) ([]int, error) {
			res, err := adc.Run(ds.Rows, ds.Cardinalities(), adc.Config{K: k, Rand: rand.New(rand.NewSource(seed))})
			if err != nil {
				return nil, err
			}
			return res.Labels, nil
		}},
		{Name: "MCDC", Run: func(ds *categorical.Dataset, k int, seed int64) ([]int, error) {
			return mcdcPipeline(ds, k, seed, nil)
		}},
		{Name: "MCDC+G.", Run: func(ds *categorical.Dataset, k int, seed int64) ([]int, error) {
			return mcdcPipeline(ds, k, seed, func(enc [][]int, card []int, k int, rng *rand.Rand) ([]int, error) {
				res, err := gudmm.Run(enc, card, gudmm.Config{K: k, Rand: rng})
				if err != nil {
					return nil, err
				}
				return res.Labels, nil
			})
		}},
		{Name: "MCDC+F.", Run: func(ds *categorical.Dataset, k int, seed int64) ([]int, error) {
			return mcdcPipeline(ds, k, seed, func(enc [][]int, card []int, k int, rng *rand.Rand) ([]int, error) {
				res, err := fkmawcw.Run(enc, card, fkmawcw.Config{K: k, Rand: rng})
				if err != nil {
					return nil, err
				}
				return res.Labels, nil
			})
		}},
	}
}

// MethodByName looks a method up by its Table-III column name.
func MethodByName(name string) (Method, error) {
	for _, m := range Methods() {
		if m.Name == name {
			return m, nil
		}
	}
	return Method{}, fmt.Errorf("experiments: unknown method %q", name)
}

// round3 rounds to three decimals, the paper's table precision.
func round3(x float64) float64 { return math.Round(x*1000) / 1000 }
