package experiments

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"mcdc/internal/datasets"
	"mcdc/internal/metrics"
	"mcdc/internal/parallel"
	"mcdc/internal/stats"
)

// Cell is one mean±std entry of Table III.
type Cell struct {
	Mean, Std float64
	// Failed marks runs the protocol judges as failed (the method could not
	// produce the sought number of clusters); the paper reports 0.000 there.
	Failed bool
}

// Table3 holds the clustering-performance comparison: scores indexed by
// validity index, data set and method.
type Table3 struct {
	Indices  []string // ACC, ARI, AMI, FM
	Datasets []string
	Methods  []string
	// Cells[index][dataset][method]
	Cells [][][]Cell
}

// Table3Config controls the experiment protocol.
type Table3Config struct {
	Runs     int      // executions per (method, data set); paper uses 50
	Seed     int64    // base seed
	Datasets []string // subset of Table-II names; nil = all eight
	Methods  []string // subset of method names; nil = all nine
	Progress func(dataset, method string)
	// Workers bounds the per-dataset fan-out (≤ 0 → GOMAXPROCS, 1 →
	// sequential). Every cell is seeded from its (dataset, method, run)
	// indices and written by exactly one goroutine, so the table is
	// bit-for-bit identical at any parallelism level; only the Progress
	// callback order changes.
	Workers int
}

// RunTable3 executes the Table-III protocol: each method runs cfg.Runs times
// per data set with the sought k = k*, and the mean and standard deviation
// of ACC/ARI/AMI/FM are recorded. Data sets are fanned out across
// cfg.Workers goroutines.
func RunTable3(cfg Table3Config) (*Table3, error) {
	if cfg.Runs <= 0 {
		cfg.Runs = 5
	}
	infos := datasets.Table2()
	if cfg.Datasets != nil {
		var sel []datasets.Info
		for _, want := range cfg.Datasets {
			found := false
			for _, info := range infos {
				if info.Name == want {
					sel = append(sel, info)
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("experiments: unknown data set %q", want)
			}
		}
		infos = sel
	}
	methods := Methods()
	if cfg.Methods != nil {
		var sel []Method
		for _, want := range cfg.Methods {
			m, err := MethodByName(want)
			if err != nil {
				return nil, err
			}
			sel = append(sel, m)
		}
		methods = sel
	}

	t := &Table3{Indices: []string{"ACC", "ARI", "AMI", "FM"}}
	for _, info := range infos {
		t.Datasets = append(t.Datasets, info.Name)
	}
	for _, m := range methods {
		t.Methods = append(t.Methods, m.Name)
	}
	t.Cells = make([][][]Cell, len(t.Indices))
	for x := range t.Cells {
		t.Cells[x] = make([][]Cell, len(infos))
		for ds := range t.Cells[x] {
			t.Cells[x][ds] = make([]Cell, len(methods))
		}
	}

	// Per-dataset fan-out: each goroutine generates its own data set (from a
	// seed derived only from the dataset index), runs the method column
	// sequentially, and writes only its own cells. Progress callbacks are
	// serialized so callers can print from them safely.
	var progressMu sync.Mutex
	progress := func(dataset, method string) {
		if cfg.Progress == nil {
			return
		}
		progressMu.Lock()
		defer progressMu.Unlock()
		cfg.Progress(dataset, method)
	}
	err := parallel.ForEach(cfg.Workers, len(infos), func(di int) error {
		info := infos[di]
		ds := info.Gen(seededRand(cfg.Seed, int64(di)))
		for mi, m := range methods {
			progress(info.Name, m.Name)
			runs := cfg.Runs
			if m.Deterministic {
				runs = 1
			}
			samples := make([][]float64, 4) // per index
			failures := 0
			for run := 0; run < runs; run++ {
				seed := cfg.Seed + int64(1000*di+100*mi+run)
				labels, err := m.Run(ds, info.KStar, seed)
				if err != nil {
					failures++
					for x := range samples {
						samples[x] = append(samples[x], 0)
					}
					continue
				}
				if distinct(labels) != info.KStar {
					// Protocol of the paper: methods that cannot obtain the
					// pre-set number of clusters are judged as failed.
					failures++
					for x := range samples {
						samples[x] = append(samples[x], 0)
					}
					continue
				}
				sc, err := metrics.Evaluate(ds.Labels, labels)
				if err != nil {
					return fmt.Errorf("evaluate %s on %s: %w", m.Name, info.Name, err)
				}
				for x, v := range []float64{sc.ACC, sc.ARI, sc.AMI, sc.FM} {
					samples[x] = append(samples[x], v)
				}
			}
			for x := range samples {
				t.Cells[x][di][mi] = Cell{
					Mean:   round3(stats.Mean(samples[x])),
					Std:    round3(stats.StdDev(samples[x])),
					Failed: failures == runs,
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// MethodScores returns, for one validity index, the per-dataset mean scores
// of one method — the paired samples used by the Table-IV significance test.
func (t *Table3) MethodScores(index, method string) ([]float64, error) {
	xi, mi := -1, -1
	for i, name := range t.Indices {
		if name == index {
			xi = i
		}
	}
	for i, name := range t.Methods {
		if name == method {
			mi = i
		}
	}
	if xi < 0 || mi < 0 {
		return nil, fmt.Errorf("experiments: no cell for index %q method %q", index, method)
	}
	out := make([]float64, len(t.Datasets))
	for di := range t.Datasets {
		out[di] = t.Cells[xi][di][mi].Mean
	}
	return out, nil
}

// Write renders the table in the layout of the paper (index blocks × data
// sets as rows, methods as columns), marking the best and second-best value
// per row with * and ' respectively.
func (t *Table3) Write(w io.Writer) {
	for xi, index := range t.Indices {
		fmt.Fprintf(w, "== %s ==\n", index)
		fmt.Fprintf(w, "%-6s", "Data")
		for _, m := range t.Methods {
			fmt.Fprintf(w, " %14s", m)
		}
		fmt.Fprintln(w)
		for di, ds := range t.Datasets {
			best, second := bestTwo(t.Cells[xi][di])
			fmt.Fprintf(w, "%-6s", ds)
			for mi, c := range t.Cells[xi][di] {
				mark := " "
				if mi == best {
					mark = "*"
				} else if mi == second {
					mark = "'"
				}
				fmt.Fprintf(w, " %s%6.3f±%-5.2f", mark, c.Mean, c.Std)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w, strings.Repeat("-", 8+15*len(t.Methods)))
	}
}

func bestTwo(cells []Cell) (best, second int) {
	best, second = -1, -1
	for i, c := range cells {
		switch {
		case best < 0 || c.Mean > cells[best].Mean:
			second, best = best, i
		case second < 0 || c.Mean > cells[second].Mean:
			second = i
		}
	}
	return best, second
}

func distinct(labels []int) int {
	seen := make(map[int]bool)
	for _, l := range labels {
		seen[l] = true
	}
	return len(seen)
}
