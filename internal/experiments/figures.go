package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"mcdc/internal/categorical"
	"mcdc/internal/core"
	"mcdc/internal/datasets"
	"mcdc/internal/kmodes"
	"mcdc/internal/metrics"
	"mcdc/internal/parallel"
	"mcdc/internal/stats"
	"mcdc/internal/wocil"
)

func seededRand(base, offset int64) *rand.Rand {
	return rand.New(rand.NewSource(base*1_000_003 + offset))
}

// ---------------------------------------------------------------------------
// Fig. 4 — ablation study.

// AblationVersions lists the five pipeline variants of Fig. 4, strongest
// first: MCDC, MCDC₄ (no CAME weight learning), MCDC₃ (no CAME), MCDC₂
// (plain competitive learning, k*+2 init), MCDC₁ (similarity partitioning
// with k* given).
var AblationVersions = []string{"MCDC", "MCDC4", "MCDC3", "MCDC2", "MCDC1"}

// Fig4 holds the mean ARI of each ablated version per data set.
type Fig4 struct {
	Datasets []string
	Versions []string
	// ARI[dataset][version]
	ARI [][]float64
}

// RunAblation executes one ablated pipeline version on integer-coded rows.
func RunAblation(version string, rows [][]int, card []int, kstar int, seed int64) ([]int, error) {
	rng := rand.New(rand.NewSource(seed))
	switch version {
	case "MCDC", "MCDC4":
		res, err := core.RunMCDC(rows, card, core.MCDCConfig{
			MGCPL: core.MGCPLConfig{Rand: rng},
			CAME:  core.CAMEConfig{K: kstar, FixedWeights: version == "MCDC4"},
		})
		if err != nil {
			return nil, err
		}
		return res.Labels, nil
	case "MCDC3":
		mg, err := core.RunMGCPL(rows, card, core.MGCPLConfig{Rand: rng})
		if err != nil {
			return nil, err
		}
		return mg.Final().Labels, nil
	case "MCDC2":
		g, err := core.RunCompetitive(rows, card, core.CompetitiveConfig{InitialK: kstar + 2, Rand: rng})
		if err != nil {
			return nil, err
		}
		return g.Labels, nil
	case "MCDC1":
		g, err := core.RunSimilarityPartition(rows, card, core.SimilarityPartitionConfig{K: kstar, Rand: rng})
		if err != nil {
			return nil, err
		}
		return g.Labels, nil
	default:
		return nil, fmt.Errorf("experiments: unknown ablation version %q", version)
	}
}

// RunFig4 reproduces the ablation study: mean ARI of the five versions over
// `runs` seeded executions on each Table-II data set. Data sets fan out
// across `workers` goroutines (≤ 0 → GOMAXPROCS, 1 → sequential); every run
// is seeded from its (version, run) indices and each goroutine writes only
// its own dataset row, so the figure is identical at any parallelism level.
func RunFig4(runs int, seed int64, names []string, workers int) (*Fig4, error) {
	if runs <= 0 {
		runs = 5
	}
	infos := datasets.Table2()
	if names != nil {
		var sel []datasets.Info
		for _, want := range names {
			for _, info := range infos {
				if info.Name == want {
					sel = append(sel, info)
				}
			}
		}
		infos = sel
	}
	out := &Fig4{
		Versions: AblationVersions,
		Datasets: make([]string, len(infos)),
		ARI:      make([][]float64, len(infos)),
	}
	err := parallel.ForEach(workers, len(infos), func(di int) error {
		info := infos[di]
		ds := info.Gen(seededRand(seed, int64(di)))
		out.Datasets[di] = info.Name
		row := make([]float64, len(AblationVersions))
		for vi, version := range AblationVersions {
			var samples []float64
			for run := 0; run < runs; run++ {
				labels, err := RunAblation(version, ds.Rows, ds.Cardinalities(), info.KStar, seed+int64(run*31+vi))
				if err != nil {
					return fmt.Errorf("fig4 %s on %s: %w", version, info.Name, err)
				}
				ari, err := metrics.AdjustedRandIndex(ds.Labels, labels)
				if err != nil {
					return err
				}
				samples = append(samples, ari)
			}
			row[vi] = round3(stats.Mean(samples))
		}
		out.ARI[di] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Write renders the ablation comparison.
func (f *Fig4) Write(w io.Writer) {
	fmt.Fprintf(w, "%-6s", "Data")
	for _, v := range f.Versions {
		fmt.Fprintf(w, " %8s", v)
	}
	fmt.Fprintln(w)
	for di, ds := range f.Datasets {
		fmt.Fprintf(w, "%-6s", ds)
		for _, ari := range f.ARI[di] {
			fmt.Fprintf(w, " %8.3f", ari)
		}
		fmt.Fprintln(w)
	}
}

// ---------------------------------------------------------------------------
// Fig. 5 — numbers of clusters learned by MGCPL.

// Fig5 records, per data set, the κ trajectory of MGCPL (k at each stage of
// convergence, starting from the initialization k₀) and the true k*.
type Fig5 struct {
	Datasets []string
	K0       []int
	Kappa    [][]int
	KStar    []int
}

// RunFig5 reproduces the learning-process evaluation. Data sets fan out
// across `workers` goroutines (≤ 0 → GOMAXPROCS, 1 → sequential); each MGCPL
// run owns a rand seeded only by its dataset index and writes only its own
// slots, so the trajectories are identical at any parallelism level.
func RunFig5(seed int64, names []string, workers int) (*Fig5, error) {
	infos := datasets.Table2()
	if names != nil {
		var sel []datasets.Info
		for _, want := range names {
			for _, info := range infos {
				if info.Name == want {
					sel = append(sel, info)
				}
			}
		}
		infos = sel
	}
	out := &Fig5{
		Datasets: make([]string, len(infos)),
		K0:       make([]int, len(infos)),
		Kappa:    make([][]int, len(infos)),
		KStar:    make([]int, len(infos)),
	}
	err := parallel.ForEach(workers, len(infos), func(di int) error {
		info := infos[di]
		ds := info.Gen(seededRand(seed, int64(di)))
		cfg := core.MGCPLConfig{Rand: rand.New(rand.NewSource(seed + int64(di)))}
		mg, err := core.RunMGCPL(ds.Rows, ds.Cardinalities(), cfg)
		if err != nil {
			return fmt.Errorf("fig5 on %s: %w", info.Name, err)
		}
		out.Datasets[di] = info.Name
		out.K0[di] = intSqrtCeil(ds.N())
		out.Kappa[di] = mg.Kappa()
		out.KStar[di] = info.KStar
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func intSqrtCeil(n int) int {
	k := 0
	for k*k < n {
		k++
	}
	return k
}

// Write renders the κ trajectories.
func (f *Fig5) Write(w io.Writer) {
	fmt.Fprintln(w, "MGCPL convergence stages (k0 -> kappa; * marks true k*)")
	for di, ds := range f.Datasets {
		fmt.Fprintf(w, "%-6s k0=%-4d kappa=%v  k*=%d\n", ds, f.K0[di], f.Kappa[di], f.KStar[di])
	}
}

// ---------------------------------------------------------------------------
// Fig. 6 — computational efficiency.

// TimingPoint is one measurement of a scalability sweep.
type TimingPoint struct {
	X       int // the swept parameter value (n, k, or d)
	Seconds map[string]float64
}

// Fig6 holds one scalability sweep (time vs n, k, or d).
type Fig6 struct {
	Param  string
	Points []TimingPoint
}

// timedMethods are the representative counterparts the efficiency plot
// compares against MCDC (the heavyweight metric-learning and hierarchical
// methods are omitted at these scales, as in the paper's Fig. 6 subset).
func timedMethods() []string { return []string{"MCDC", "K-MODES", "WOCIL"} }

// RunFig6N measures execution time on Syn_n with growing n (Fig. 6a).
func RunFig6N(ns []int, seed int64) (*Fig6, error) {
	if len(ns) == 0 {
		ns = []int{20000, 60000, 100000, 140000, 200000}
	}
	out := &Fig6{Param: "n"}
	for _, n := range ns {
		ds := datasets.SynN(n, seededRand(seed, int64(n)))
		p, err := timeAll(ds, 3, seed)
		if err != nil {
			return nil, err
		}
		p.X = n
		out.Points = append(out.Points, p)
	}
	return out, nil
}

// RunFig6K measures execution time on Syn_n (fixed n) with growing sought k
// (Fig. 6b).
func RunFig6K(n int, ks []int, seed int64) (*Fig6, error) {
	if n <= 0 {
		n = 20000
	}
	if len(ks) == 0 {
		ks = []int{500, 1500, 3000, 5000}
	}
	ds := datasets.SynN(n, seededRand(seed, 77))
	out := &Fig6{Param: "k"}
	for _, k := range ks {
		p, err := timeAll(ds, k, seed)
		if err != nil {
			return nil, err
		}
		p.X = k
		out.Points = append(out.Points, p)
	}
	return out, nil
}

// RunFig6D measures execution time on Syn_d with growing d (Fig. 6c).
func RunFig6D(dims []int, seed int64) (*Fig6, error) {
	if len(dims) == 0 {
		dims = []int{100, 300, 500, 1000}
	}
	out := &Fig6{Param: "d"}
	for _, dim := range dims {
		ds := datasets.SynD(dim, seededRand(seed, int64(dim)))
		p, err := timeAll(ds, 3, seed)
		if err != nil {
			return nil, err
		}
		p.X = dim
		out.Points = append(out.Points, p)
	}
	return out, nil
}

func timeAll(ds *categorical.Dataset, k int, seed int64) (TimingPoint, error) {
	p := TimingPoint{Seconds: make(map[string]float64)}
	for _, name := range timedMethods() {
		start := time.Now()
		var err error
		switch name {
		case "MCDC":
			_, err = mcdcPipeline(ds, k, seed, nil)
		case "K-MODES":
			_, err = kmodes.Run(ds.Rows, ds.Cardinalities(), kmodes.Config{K: k, Rand: rand.New(rand.NewSource(seed))})
		case "WOCIL":
			_, err = wocil.Run(ds.Rows, ds.Cardinalities(), wocil.Config{K: k})
		}
		if err != nil {
			return p, fmt.Errorf("fig6 %s: %w", name, err)
		}
		p.Seconds[name] = time.Since(start).Seconds()
	}
	return p, nil
}

// Write renders the sweep as a table of seconds.
func (f *Fig6) Write(w io.Writer) {
	fmt.Fprintf(w, "%-8s", f.Param)
	for _, m := range timedMethods() {
		fmt.Fprintf(w, " %10s", m)
	}
	fmt.Fprintln(w)
	for _, p := range f.Points {
		fmt.Fprintf(w, "%-8d", p.X)
		for _, m := range timedMethods() {
			fmt.Fprintf(w, " %9.2fs", p.Seconds[m])
		}
		fmt.Fprintln(w)
	}
}
