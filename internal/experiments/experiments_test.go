package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestTable3SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness run")
	}
	t3, err := RunTable3(Table3Config{
		Runs:     1,
		Seed:     1,
		Datasets: []string{"Vot."},
		Methods:  []string{"K-MODES", "WOCIL", "MCDC"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Indices) != 4 || len(t3.Datasets) != 1 || len(t3.Methods) != 3 {
		t.Fatalf("unexpected table shape: %v / %v / %v", t3.Indices, t3.Datasets, t3.Methods)
	}
	for xi := range t3.Indices {
		for mi := range t3.Methods {
			c := t3.Cells[xi][0][mi]
			if c.Mean < -1 || c.Mean > 1 {
				t.Errorf("%s/%s mean %v outside index range", t3.Indices[xi], t3.Methods[mi], c.Mean)
			}
		}
	}
	scores, err := t3.MethodScores("ACC", "MCDC")
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 1 || scores[0] < 0.5 {
		t.Errorf("MCDC ACC on Vot. = %v, want ≥ 0.5", scores)
	}
	var buf bytes.Buffer
	t3.Write(&buf)
	if !strings.Contains(buf.String(), "== ACC ==") || !strings.Contains(buf.String(), "Vot.") {
		t.Error("Write output missing expected sections")
	}
}

func TestTable4Wiring(t *testing.T) {
	// Build a miniature Table3 by hand: the champion strictly dominates.
	t3 := &Table3{
		Indices:  []string{"ACC", "ARI", "AMI", "FM"},
		Datasets: []string{"a", "b", "c", "d", "e", "f", "g", "h"},
		Methods:  []string{"K-MODES", "MCDC+F."},
	}
	t3.Cells = make([][][]Cell, 4)
	for xi := range t3.Cells {
		t3.Cells[xi] = make([][]Cell, 8)
		for di := range t3.Cells[xi] {
			t3.Cells[xi][di] = []Cell{
				{Mean: 0.3 + 0.01*float64(di)},
				{Mean: 0.6 + 0.01*float64(di)},
			}
		}
	}
	t4, err := RunTable4(t3)
	if err != nil {
		t.Fatal(err)
	}
	if len(t4.Methods) != 1 || t4.Methods[0] != "K-MODES" {
		t.Fatalf("methods = %v", t4.Methods)
	}
	for xi := range t4.Indices {
		if !t4.Significant[0][xi] {
			t.Errorf("champion dominates on %s, want '+' (p=%v)", t4.Indices[xi], t4.PValues[0][xi])
		}
	}
	var buf bytes.Buffer
	t4.Write(&buf)
	if !strings.Contains(buf.String(), "K-MODES") {
		t.Error("Write output missing method row")
	}
}

func TestRunAblationVersions(t *testing.T) {
	rows := make([][]int, 120)
	for i := range rows {
		rows[i] = []int{i % 3, (i % 3) ^ 1, i % 2}
	}
	card := []int{3, 3, 2}
	for _, v := range AblationVersions {
		labels, err := RunAblation(v, rows, card, 3, 7)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if len(labels) != len(rows) {
			t.Fatalf("%s: %d labels", v, len(labels))
		}
	}
	if _, err := RunAblation("nope", rows, card, 3, 7); err == nil {
		t.Error("unknown version: want error")
	}
}

func TestFig5Shapes(t *testing.T) {
	f5, err := RunFig5(1, []string{"Vot.", "Bal."}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(f5.Datasets) != 2 {
		t.Fatalf("datasets = %v", f5.Datasets)
	}
	for di := range f5.Datasets {
		kappa := f5.Kappa[di]
		if len(kappa) == 0 {
			t.Fatalf("%s: empty kappa", f5.Datasets[di])
		}
		for j := 1; j < len(kappa); j++ {
			if kappa[j] >= kappa[j-1] {
				t.Errorf("%s: kappa not decreasing: %v", f5.Datasets[di], kappa)
			}
		}
		if kappa[0] > f5.K0[di] {
			t.Errorf("%s: k1 = %d exceeds k0 = %d", f5.Datasets[di], kappa[0], f5.K0[di])
		}
	}
	var buf bytes.Buffer
	f5.Write(&buf)
	if !strings.Contains(buf.String(), "k0=") {
		t.Error("Write output missing k0")
	}
}

func TestMethodByName(t *testing.T) {
	for _, want := range []string{"K-MODES", "ROCK", "WOCIL", "FKMAWCW", "GUDMM", "ADC", "MCDC", "MCDC+G.", "MCDC+F."} {
		if _, err := MethodByName(want); err != nil {
			t.Errorf("MethodByName(%q): %v", want, err)
		}
	}
	if _, err := MethodByName("nope"); err == nil {
		t.Error("unknown method: want error")
	}
}

func TestSensitivitySweep(t *testing.T) {
	sw, err := RunSensitivity(1, 1, []string{"Vot."}, []float64{0.8, 0.9}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Datasets) != 1 || len(sw.Thresholds) != 2 {
		t.Fatalf("shape: %v / %v", sw.Datasets, sw.Thresholds)
	}
	for ti := range sw.Thresholds {
		if sw.FinalK[0][ti] < 1 {
			t.Errorf("tau=%v: final k %v", sw.Thresholds[ti], sw.FinalK[0][ti])
		}
		if sw.ARI[0][ti] < -1 || sw.ARI[0][ti] > 1 {
			t.Errorf("tau=%v: ARI %v out of range", sw.Thresholds[ti], sw.ARI[0][ti])
		}
	}
	var buf bytes.Buffer
	sw.Write(&buf)
	if !strings.Contains(buf.String(), "tau=0.80") {
		t.Error("Write output missing threshold column")
	}
}

func TestFig4Write(t *testing.T) {
	f4 := &Fig4{
		Datasets: []string{"X"},
		Versions: AblationVersions,
		ARI:      [][]float64{{0.5, 0.4, 0.3, 0.2, 0.1}},
	}
	var buf bytes.Buffer
	f4.Write(&buf)
	out := buf.String()
	if !strings.Contains(out, "MCDC4") || !strings.Contains(out, "0.500") {
		t.Errorf("Fig4 output: %s", out)
	}
}

func TestLinkageScaleSmall(t *testing.T) {
	ls, err := RunLinkageScale(LinkageScaleConfig{Ns: []int{120, 260}, Seed: 1, ScanCap: 260})
	if err != nil {
		t.Fatal(err)
	}
	if len(ls.Ns) != 2 || len(ls.ChainSec) != 2 || len(ls.ScanSec) != 2 || len(ls.Verified) != 2 {
		t.Fatalf("shape: %+v", ls)
	}
	for i, n := range ls.Ns {
		if !ls.Checked[i] || !ls.Verified[i] {
			t.Errorf("n=%d: chain not verified against the scan oracle", n)
		}
		if ls.ChainSec[i] <= 0 || ls.ScanSec[i] <= 0 {
			t.Errorf("n=%d: non-positive timings %v / %v", n, ls.ScanSec[i], ls.ChainSec[i])
		}
		if ls.ARI[i] < 0.5 {
			t.Errorf("n=%d: chain Cut ARI %v below planted-structure floor", n, ls.ARI[i])
		}
		if ls.Medoid[i] < 0 || ls.Medoid[i] >= n {
			t.Errorf("n=%d: medoid %d out of range", n, ls.Medoid[i])
		}
	}
	var buf bytes.Buffer
	ls.Write(&buf)
	if !strings.Contains(buf.String(), "chain") || !strings.Contains(buf.String(), "speedup") {
		t.Error("Write output missing expected columns")
	}
	if _, err := RunLinkageScale(LinkageScaleConfig{Ns: []int{1}}); err == nil {
		t.Error("n=1: want error")
	}
}
