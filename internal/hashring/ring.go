// Package hashring implements a consistent-hash ring with virtual nodes —
// the placement primitive behind mcdcd's gateway mode. Keys (session ids,
// row digests) map to backend nodes such that placement is deterministic
// (the same ring membership always yields the same owner for a key,
// regardless of the order nodes were added) and adding or removing one node
// relocates only the ~1/n slice of the key space adjacent to its virtual
// points, never reshuffling keys between surviving nodes.
package hashring

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring. The zero value is not usable; construct
// with New. Ring is not safe for concurrent mutation; concurrent Get calls
// are safe as long as no Add/Remove runs. Callers that mutate membership at
// runtime (the gateway's ring join/leave) must hold their own lock across
// both lookups and mutations.
type Ring struct {
	replicas int
	nodes    map[string]struct{}
	points   []point // sorted by (hash, node)
}

// point is one virtual node: the hashed position of "<node>#<i>".
type point struct {
	hash uint64
	node string
}

// New builds an empty ring placing each node at `replicas` virtual points
// (≤ 0 falls back to 128 — enough that per-node load imbalance stays within
// a few percent for typical fleet sizes).
func New(replicas int) *Ring {
	if replicas <= 0 {
		replicas = 128
	}
	return &Ring{replicas: replicas, nodes: make(map[string]struct{})}
}

// Hash is the ring's key hash (FNV-1a, 64-bit, finalized with a
// splitmix64-style avalanche), exported so tests and diagnostics can
// reproduce placements. The finalizer matters: raw FNV over short,
// near-identical strings ("host#1", "host#2", …) leaves the low bits too
// correlated for an even spread of virtual points around the ring.
func Hash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	z := h.Sum64()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Add inserts nodes into the ring. Adding a node that is already present is
// a no-op, so membership — not call history — determines the ring.
func (r *Ring) Add(nodes ...string) {
	changed := false
	for _, n := range nodes {
		if _, ok := r.nodes[n]; ok || n == "" {
			continue
		}
		r.nodes[n] = struct{}{}
		for i := 0; i < r.replicas; i++ {
			r.points = append(r.points, point{hash: Hash(n + "#" + strconv.Itoa(i)), node: n})
		}
		changed = true
	}
	if changed {
		// Sorting by (hash, node) makes hash collisions between different
		// nodes' virtual points resolve deterministically.
		sort.Slice(r.points, func(i, j int) bool {
			if r.points[i].hash != r.points[j].hash {
				return r.points[i].hash < r.points[j].hash
			}
			return r.points[i].node < r.points[j].node
		})
	}
}

// Remove deletes a node and its virtual points. Removing an absent node is a
// no-op.
func (r *Ring) Remove(node string) {
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Get returns the node owning key: the first virtual point at or clockwise
// of the key's hash (wrapping past the top of the space). It returns "" on
// an empty ring.
func (r *Ring) Get(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := Hash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// GetN returns the first n distinct nodes at or clockwise of key's hash —
// index 0 is the owner (same as Get), index 1 its successor, and so on.
// The successor chain is what replication follows: a session owned by
// GetN(id, 2)[0] ships its checkpoints to GetN(id, 2)[1]. Fewer than n
// nodes are returned when the ring has fewer members.
func (r *Ring) GetN(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := Hash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for range r.points {
		if i == len(r.points) {
			i = 0
		}
		node := r.points[i].node
		if _, ok := seen[node]; !ok {
			seen[node] = struct{}{}
			out = append(out, node)
			if len(out) == n {
				break
			}
		}
		i++
	}
	return out
}

// Nodes returns the ring's members, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len reports the number of member nodes.
func (r *Ring) Len() int { return len(r.nodes) }
