package hashring

import (
	"fmt"
	"reflect"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("key-%d", i)
	}
	return out
}

// TestPlacementDeterministicAcrossAddOrder pins the membership-not-history
// contract: two rings with the same nodes place every key identically no
// matter the order the nodes were added in.
func TestPlacementDeterministicAcrossAddOrder(t *testing.T) {
	a := New(64)
	a.Add("10.0.0.1:8080", "10.0.0.2:8080", "10.0.0.3:8080")
	b := New(64)
	b.Add("10.0.0.3:8080")
	b.Add("10.0.0.1:8080")
	b.Add("10.0.0.2:8080")
	b.Add("10.0.0.2:8080") // duplicate add is a no-op
	for _, k := range keys(5000) {
		if a.Get(k) != b.Get(k) {
			t.Fatalf("key %q: %q vs %q (add order changed placement)", k, a.Get(k), b.Get(k))
		}
	}
	if !reflect.DeepEqual(a.Nodes(), b.Nodes()) {
		t.Fatalf("memberships differ: %v vs %v", a.Nodes(), b.Nodes())
	}
}

// TestRebalanceMovesOnlyToNewNode checks the consistent-hashing property:
// adding a node moves ≈1/n of the keys, all of them onto the new node, and
// removing it restores the original placement exactly.
func TestRebalanceMovesOnlyToNewNode(t *testing.T) {
	r := New(128)
	r.Add("a", "b", "c")
	ks := keys(20000)
	before := make(map[string]string, len(ks))
	for _, k := range ks {
		before[k] = r.Get(k)
	}

	r.Add("d")
	moved := 0
	for _, k := range ks {
		got := r.Get(k)
		if got != before[k] {
			moved++
			if got != "d" {
				t.Fatalf("key %q moved %q → %q, not onto the new node", k, before[k], got)
			}
		}
	}
	// Expect ≈ 1/4 of the key space; allow generous slack for hash variance.
	if frac := float64(moved) / float64(len(ks)); frac < 0.10 || frac > 0.45 {
		t.Fatalf("adding 4th node moved %.1f%% of keys, want ≈25%%", 100*frac)
	}

	r.Remove("d")
	for _, k := range ks {
		if r.Get(k) != before[k] {
			t.Fatalf("key %q did not return to %q after removing d", k, before[k])
		}
	}
}

// TestLoadSpreadsAcrossNodes guards against virtual-point degeneracy: with
// enough replicas every node owns a non-trivial share of a uniform key set.
func TestLoadSpreadsAcrossNodes(t *testing.T) {
	r := New(128)
	nodes := []string{"n1", "n2", "n3", "n4", "n5"}
	r.Add(nodes...)
	load := make(map[string]int)
	ks := keys(50000)
	for _, k := range ks {
		load[r.Get(k)]++
	}
	want := float64(len(ks)) / float64(len(nodes))
	for _, n := range nodes {
		if got := float64(load[n]); got < 0.5*want || got > 1.5*want {
			t.Errorf("node %s owns %d keys, want within ±50%% of %.0f (loads %v)", n, load[n], want, load)
		}
	}
}

func TestEdgeCases(t *testing.T) {
	r := New(0) // default replicas
	if got := r.Get("anything"); got != "" {
		t.Fatalf("empty ring returned %q", got)
	}
	if r.Len() != 0 {
		t.Fatalf("empty ring Len = %d", r.Len())
	}
	r.Add("") // empty node name ignored
	if r.Len() != 0 {
		t.Fatal("empty node name was added")
	}
	r.Add("solo")
	for _, k := range keys(100) {
		if r.Get(k) != "solo" {
			t.Fatal("single-node ring must own every key")
		}
	}
	r.Remove("ghost") // absent node: no-op
	r.Remove("solo")
	if r.Get("x") != "" || r.Len() != 0 {
		t.Fatal("ring not empty after removing its only node")
	}
}

// TestGetNSuccessorChain pins GetN's contract: index 0 agrees with Get, the
// chain holds distinct nodes in clockwise order, is capped at the membership
// size, and removing the owner promotes exactly the old successor to owner
// for every key (the property replica failover relies on).
func TestGetNSuccessorChain(t *testing.T) {
	r := New(128)
	r.Add("a", "b", "c", "d")
	for _, k := range keys(2000) {
		chain := r.GetN(k, 2)
		if len(chain) != 2 {
			t.Fatalf("key %q: chain %v, want length 2", k, chain)
		}
		if chain[0] != r.Get(k) {
			t.Fatalf("key %q: GetN[0]=%q disagrees with Get=%q", k, chain[0], r.Get(k))
		}
		if chain[0] == chain[1] {
			t.Fatalf("key %q: successor equals owner %q", k, chain[0])
		}
		full := r.GetN(k, 99)
		if len(full) != 4 {
			t.Fatalf("key %q: over-ask returned %d nodes", k, len(full))
		}
		seen := map[string]bool{}
		for _, n := range full {
			if seen[n] {
				t.Fatalf("key %q: duplicate node %q in chain %v", k, n, full)
			}
			seen[n] = true
		}
	}

	// Failover property: with the owner gone, the old successor owns the key.
	for _, k := range keys(500) {
		chain := r.GetN(k, 2)
		r2 := New(128)
		for _, n := range r.Nodes() {
			if n != chain[0] {
				r2.Add(n)
			}
		}
		if got := r2.Get(k); got != chain[1] {
			t.Fatalf("key %q: after losing owner %q, Get=%q, want successor %q", k, chain[0], got, chain[1])
		}
	}

	if got := New(64).GetN("x", 3); got != nil {
		t.Fatalf("empty ring: GetN = %v, want nil", got)
	}
	if got := r.GetN("x", 0); got != nil {
		t.Fatalf("n=0: GetN = %v, want nil", got)
	}
}
