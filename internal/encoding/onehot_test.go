package encoding

import (
	"math/rand"
	"testing"

	"mcdc/internal/categorical"
	"mcdc/internal/datasets"
	"mcdc/internal/metrics"
)

func TestOneHotLayout(t *testing.T) {
	rows := [][]int{
		{0, 2},
		{1, categorical.Missing},
	}
	vecs, err := OneHot(rows, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	want0 := []float64{1, 0, 0, 0, 1}
	want1 := []float64{0, 1, 0, 0, 0} // missing block stays zero
	for j := range want0 {
		if vecs[0][j] != want0[j] || vecs[1][j] != want1[j] {
			t.Fatalf("vecs = %v / %v, want %v / %v", vecs[0], vecs[1], want0, want1)
		}
	}
}

func TestOneHotErrors(t *testing.T) {
	if _, err := OneHot(nil, nil); err == nil {
		t.Error("empty data: want error")
	}
	if _, err := OneHot([][]int{{5}}, []int{2}); err == nil {
		t.Error("out-of-domain code: want error")
	}
	if _, err := OneHot([][]int{{0, 0}}, []int{2}); err == nil {
		t.Error("row width mismatch: want error")
	}
	if _, err := OneHot([][]int{{0}}, []int{0}); err == nil {
		t.Error("zero cardinality: want error")
	}
}

func TestOneHotWorkersEquivalence(t *testing.T) {
	ds := datasets.Synthetic("t", 333, 7, 3, 0.9, rand.New(rand.NewSource(4)))
	seq, err := OneHotWorkers(ds.Rows, ds.Cardinalities(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8, 0} {
		par, err := OneHotWorkers(ds.Rows, ds.Cardinalities(), workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range seq {
			for j := range seq[i] {
				if seq[i][j] != par[i][j] {
					t.Fatalf("workers=%d: cell (%d,%d) differs", workers, i, j)
				}
			}
		}
	}
}

func TestOneHotWorkersFirstError(t *testing.T) {
	// Rows 5 and 4800 are both invalid; any worker count must report row 5,
	// the failure a sequential scan hits first. The input is sized well past
	// the small-work gate (5000 rows × width 2 = 10000 cells ≥ 4096) so the
	// workers=4 iteration genuinely dispatches parallel chunks instead of
	// being gated onto the inline path.
	rows := make([][]int, 5000)
	for i := range rows {
		rows[i] = []int{0}
	}
	rows[4800] = []int{9}
	rows[5] = []int{7}
	for _, workers := range []int{1, 4} {
		_, err := OneHotWorkers(rows, []int{2}, workers)
		if err == nil {
			t.Fatalf("workers=%d: want error", workers)
		}
		if want := "encoding: row 5 feature 0: code 7 outside domain"; err.Error() != want {
			t.Errorf("workers=%d: err = %q, want %q", workers, err, want)
		}
	}
}

func TestEncodingPipelineRecovery(t *testing.T) {
	ds := datasets.Synthetic("t", 400, 8, 3, 0.92, rand.New(rand.NewSource(80)))
	best := 0.0
	for seed := int64(0); seed < 5; seed++ {
		labels, err := Cluster(ds.Rows, ds.Cardinalities(), KMeansConfig{K: 3, Rand: rand.New(rand.NewSource(seed))})
		if err != nil {
			t.Fatal(err)
		}
		acc, err := metrics.Accuracy(ds.Labels, labels)
		if err != nil {
			t.Fatal(err)
		}
		if acc > best {
			best = acc
		}
	}
	if best < 0.85 {
		t.Errorf("best-of-5 one-hot k-means ACC = %v, want ≥ 0.85 on separated data", best)
	}
}

func TestKMeansErrors(t *testing.T) {
	if _, err := KMeans(nil, KMeansConfig{K: 2, Rand: rand.New(rand.NewSource(1))}); err == nil {
		t.Error("empty points: want error")
	}
	if _, err := KMeans([][]float64{{0}}, KMeansConfig{K: 0, Rand: rand.New(rand.NewSource(1))}); err == nil {
		t.Error("k=0: want error")
	}
	if _, err := KMeans([][]float64{{0}}, KMeansConfig{K: 1}); err == nil {
		t.Error("nil rand: want error")
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	points := [][]float64{{1, 0}, {1, 0}, {1, 0}}
	labels, err := KMeans(points, KMeansConfig{K: 2, Rand: rand.New(rand.NewSource(2))})
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 3 {
		t.Fatalf("labels = %v", labels)
	}
}
