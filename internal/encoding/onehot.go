// Package encoding implements the encoding-based stream of categorical data
// clustering the paper's introduction surveys: qualitative values are mapped
// into a numerical space (one-hot) and clustered there with k-means. It
// serves as the reference point for the information-loss argument of the
// paper — the Euclidean embedding cannot represent the discrete distance
// structure, which is exactly what the multi-granular pipeline avoids.
package encoding

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"mcdc/internal/categorical"
	"mcdc/internal/parallel"
)

// OneHot expands integer-coded categorical rows into a dense one-hot matrix.
// Missing values leave their feature's block all-zero. The expansion is
// fanned out over all available cores; use OneHotWorkers to bound it.
func OneHot(rows [][]int, cardinalities []int) ([][]float64, error) {
	return OneHotWorkers(rows, cardinalities, 0)
}

// OneHotWorkers is OneHot with an explicit worker bound (≤ 0 → GOMAXPROCS,
// 1 → sequential). Rows are expanded in workers-independent chunks, each
// writing only its own output slots; on invalid input the returned error is
// the one a sequential scan would hit first (lowest row index). The matrix is
// identical at any parallelism level.
func OneHotWorkers(rows [][]int, cardinalities []int, workers int) ([][]float64, error) {
	if len(rows) == 0 {
		return nil, errors.New("encoding: empty data")
	}
	width := 0
	offsets := make([]int, len(cardinalities))
	for r, m := range cardinalities {
		if m <= 0 {
			return nil, fmt.Errorf("encoding: feature %d has cardinality %d", r, m)
		}
		offsets[r] = width
		width += m
	}
	out := make([][]float64, len(rows))
	workers = parallel.Gate(workers, len(rows)*width)
	err := parallel.ForEachChunk(workers, len(rows), func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			row := rows[i]
			if len(row) != len(cardinalities) {
				return fmt.Errorf("encoding: row %d has %d features, want %d", i, len(row), len(cardinalities))
			}
			vec := make([]float64, width)
			for r, v := range row {
				if v == categorical.Missing {
					continue
				}
				if v < 0 || v >= cardinalities[r] {
					return fmt.Errorf("encoding: row %d feature %d: code %d outside domain", i, r, v)
				}
				vec[offsets[r]+v] = 1
			}
			out[i] = vec
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// KMeansConfig parameterizes the numerical clustering of the embedding.
type KMeansConfig struct {
	K        int
	MaxIters int
	Rand     *rand.Rand
	// Workers bounds the parallelism of the O(n·k·width) distance sweeps
	// (≤ 0 → GOMAXPROCS, 1 → sequential). Labels are identical at any level:
	// each point's nearest center is computed independently, reductions
	// (distance totals, center means) stay sequential in point order, and
	// every Rand draw happens on the calling goroutine.
	Workers int
}

// KMeans is a standard Lloyd's iteration over dense vectors with k-means++
// seeding, provided as the downstream clusterer for one-hot embeddings. The
// per-point nearest-center sweeps — the O(n·k·width) hot path of both the
// seeding and the Lloyd iterations — are chunked across cfg.Workers
// goroutines under the repository's determinism contract.
func KMeans(points [][]float64, cfg KMeansConfig) ([]int, error) {
	n := len(points)
	if n == 0 {
		return nil, errors.New("encoding: empty point set")
	}
	if cfg.Rand == nil {
		return nil, errors.New("encoding: nil random source")
	}
	k := cfg.K
	if k <= 0 {
		return nil, fmt.Errorf("encoding: k must be positive, got %d", k)
	}
	if k > n {
		k = n
	}
	maxIters := cfg.MaxIters
	if maxIters <= 0 {
		maxIters = 100
	}
	sqDist := func(a, b []float64) float64 {
		var s float64
		for j := range a {
			d := a[j] - b[j]
			s += d * d
		}
		return s
	}
	width := len(points[0])

	// k-means++ seeding. The nearest-center distances are chunked over the
	// points (each d2[i] is written by exactly one goroutine); the total used
	// for the roulette draw is then summed sequentially in point order, so it
	// is bit-identical to the sequential sweep, and all Rand draws stay here
	// on the calling goroutine.
	centers := make([][]float64, 0, k)
	centers = append(centers, append([]float64(nil), points[cfg.Rand.Intn(n)]...))
	d2 := make([]float64, n)
	for len(centers) < k {
		cs := centers
		parallel.Must(parallel.ForEachChunk(parallel.Gate(cfg.Workers, n*len(cs)*width), n, func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				p := points[i]
				d2[i] = math.Inf(1)
				for _, c := range cs {
					if dd := sqDist(p, c); dd < d2[i] {
						d2[i] = dd
					}
				}
			}
			return nil
		}))
		var total float64
		for _, v := range d2 {
			total += v
		}
		pick := 0
		if total > 0 {
			u := cfg.Rand.Float64() * total
			for i := range d2 {
				u -= d2[i]
				if u <= 0 {
					pick = i
					break
				}
			}
		} else {
			pick = cfg.Rand.Intn(n)
		}
		centers = append(centers, append([]float64(nil), points[pick]...))
	}

	labels := make([]int, n)
	for iter := 0; iter < maxIters; iter++ {
		// Lloyd assignment sweep: each point's nearest center depends only on
		// the (frozen) centers, so labels[i] is written by exactly one
		// goroutine and the outcome matches the sequential sweep exactly.
		// Chunk boundaries depend only on n; the per-chunk changed flags fold
		// with OR, which is order-insensitive.
		changed, err := parallel.MapReduce(parallel.Gate(cfg.Workers, n*k*width), n, false,
			func(lo, hi int) (bool, error) {
				ch := false
				for i := lo; i < hi; i++ {
					p := points[i]
					best, bestD := 0, sqDist(p, centers[0])
					for l := 1; l < k; l++ {
						if dd := sqDist(p, centers[l]); dd < bestD {
							best, bestD = l, dd
						}
					}
					if labels[i] != best {
						labels[i] = best
						ch = true
					}
				}
				return ch, nil
			},
			func(acc, next bool) bool { return acc || next })
		parallel.Must(err)
		if !changed && iter > 0 {
			break
		}
		// Center recomputation stays sequential: it is O(n·width) — k× cheaper
		// than the assignment sweep — and keeping the accumulation in point
		// order preserves the exact floating-point center values of the
		// sequential implementation.
		counts := make([]int, k)
		for l := range centers {
			for j := range centers[l] {
				centers[l][j] = 0
			}
		}
		for i, p := range points {
			l := labels[i]
			counts[l]++
			for j := range p {
				centers[l][j] += p[j]
			}
		}
		for l := range centers {
			if counts[l] == 0 {
				copy(centers[l], points[cfg.Rand.Intn(n)])
				continue
			}
			inv := 1 / float64(counts[l])
			for j := range centers[l] {
				centers[l][j] *= inv
			}
		}
	}
	return labels, nil
}

// Cluster runs the full encoding-based pipeline: one-hot embedding followed
// by k-means, both bounded by cfg.Workers.
func Cluster(rows [][]int, cardinalities []int, cfg KMeansConfig) ([]int, error) {
	points, err := OneHotWorkers(rows, cardinalities, cfg.Workers)
	if err != nil {
		return nil, err
	}
	return KMeans(points, cfg)
}
