// Package similarity implements the object–cluster similarity measures of the
// MCDC paper: the frequency-based similarity of Eq. (1)–(2), its weighted
// form of Eq. (14), and the feature-contribution weighting of Eq. (15)–(18).
//
// The central type is Tables, an incrementally-maintained set of per-cluster,
// per-feature value-frequency counts. All clustering algorithms in this
// repository (MGCPL, WOCIL, k-modes variants) consume it, which keeps every
// similarity evaluation O(d) after O(1) bookkeeping per assignment change.
package similarity

import (
	"fmt"
	"math"

	"mcdc/internal/categorical"
)

// Tables maintains sufficient statistics of a partition of a categorical data
// set: for each cluster l, feature r, and value v, the number of cluster
// members taking that value, plus per-feature non-missing totals.
//
// The zero value is not usable; construct with NewTables.
type Tables struct {
	data  [][]int // value codes, data[i][r]
	card  []int   // per-feature domain sizes
	k     int     // number of cluster slots (some may be empty)
	size  []int   // n_l, objects per cluster
	count [][]int // count[l][r*stride+v]; flattened for locality
	seen  [][]int // seen[l][r]: non-missing members of cluster l on feature r
	// Global (whole data set) statistics used by the inter-cluster
	// difference term α of Eq. (15).
	globalCount []int // globalCount[r*stride+v]
	globalSeen  []int // per-feature non-missing totals over X
	stride      int   // max cardinality, for flat indexing
}

// NewTables builds empty frequency tables for k cluster slots over the given
// data set rows (value codes) and per-feature cardinalities.
func NewTables(rows [][]int, cardinalities []int, k int) (*Tables, error) {
	if k <= 0 {
		return nil, fmt.Errorf("similarity: k must be positive, got %d", k)
	}
	if len(rows) == 0 {
		return nil, categorical.ErrEmptyDataset
	}
	stride := 0
	for _, m := range cardinalities {
		if m <= 0 {
			return nil, fmt.Errorf("similarity: feature cardinality must be positive, got %d", m)
		}
		if m > stride {
			stride = m
		}
	}
	d := len(cardinalities)
	t := &Tables{
		data:        rows,
		card:        append([]int(nil), cardinalities...),
		k:           k,
		size:        make([]int, k),
		count:       make([][]int, k),
		seen:        make([][]int, k),
		globalCount: make([]int, d*stride),
		globalSeen:  make([]int, d),
		stride:      stride,
	}
	for l := 0; l < k; l++ {
		t.count[l] = make([]int, d*stride)
		t.seen[l] = make([]int, d)
	}
	for _, row := range rows {
		if len(row) != d {
			return nil, fmt.Errorf("similarity: row width %d, want %d", len(row), d)
		}
		for r, v := range row {
			if v == categorical.Missing {
				continue
			}
			t.globalCount[r*stride+v]++
			t.globalSeen[r]++
		}
	}
	return t, nil
}

// K returns the number of cluster slots (including empty ones).
func (t *Tables) K() int { return t.k }

// N returns the number of objects in the underlying data set.
func (t *Tables) N() int { return len(t.data) }

// D returns the number of features.
func (t *Tables) D() int { return len(t.card) }

// Size returns n_l, the number of objects currently assigned to cluster l.
func (t *Tables) Size(l int) int { return t.size[l] }

// Count returns the number of members of cluster l with value v on feature r.
func (t *Tables) Count(l, r, v int) int { return t.count[l][r*t.stride+v] }

// Add assigns object i to cluster l, updating all statistics.
func (t *Tables) Add(i, l int) {
	row := t.data[i]
	t.size[l]++
	cl, sl := t.count[l], t.seen[l]
	for r, v := range row {
		if v == categorical.Missing {
			continue
		}
		cl[r*t.stride+v]++
		sl[r]++
	}
}

// Remove detaches object i from cluster l, updating all statistics.
func (t *Tables) Remove(i, l int) {
	row := t.data[i]
	t.size[l]--
	cl, sl := t.count[l], t.seen[l]
	for r, v := range row {
		if v == categorical.Missing {
			continue
		}
		cl[r*t.stride+v]--
		sl[r]--
	}
}

// Move reassigns object i from cluster from to cluster to.
func (t *Tables) Move(i, from, to int) {
	if from == to {
		return
	}
	t.Remove(i, from)
	t.Add(i, to)
}

// FeatureSim returns s(x_ir, C_l) of Eq. (2): the fraction of cluster-l
// members sharing object i's value on feature r. Empty clusters and missing
// values yield 0.
func (t *Tables) FeatureSim(i, r, l int) float64 {
	v := t.data[i][r]
	if v == categorical.Missing || t.seen[l][r] == 0 {
		return 0
	}
	return float64(t.count[l][r*t.stride+v]) / float64(t.seen[l][r])
}

// Sim returns the object–cluster similarity s(x_i, C_l) of Eq. (1): the
// unweighted average of per-feature similarities.
func (t *Tables) Sim(i, l int) float64 {
	row := t.data[i]
	cl, sl := t.count[l], t.seen[l]
	var sum float64
	for r, v := range row {
		if v == categorical.Missing || sl[r] == 0 {
			continue
		}
		sum += float64(cl[r*t.stride+v]) / float64(sl[r])
	}
	return sum / float64(len(row))
}

// WeightedSim returns the feature-weighted similarity of Eq. (14),
// s(x_i,C_l) = (1/d)·Σ_r ω_rl·s(x_ir,C_l), with w indexed as w[r].
func (t *Tables) WeightedSim(i, l int, w []float64) float64 {
	row := t.data[i]
	cl, sl := t.count[l], t.seen[l]
	var sum float64
	for r, v := range row {
		if v == categorical.Missing || sl[r] == 0 {
			continue
		}
		sum += w[r] * float64(cl[r*t.stride+v]) / float64(sl[r])
	}
	return sum / float64(len(row))
}

// SimLOO is the leave-one-out variant of Sim: when member is true, object
// i's own contribution is removed from cluster l's counts before the
// frequencies are formed. Competitive learners must use this form — with
// plain Sim a singleton cluster scores a perfect 1.0 for its only member and
// can never be eliminated.
func (t *Tables) SimLOO(i, l int, member bool) float64 {
	row := t.data[i]
	cl, sl := t.count[l], t.seen[l]
	var sum float64
	for r, v := range row {
		if v == categorical.Missing {
			continue
		}
		cnt, seen := cl[r*t.stride+v], sl[r]
		if member {
			cnt--
			seen--
		}
		if seen <= 0 || cnt <= 0 {
			continue
		}
		sum += float64(cnt) / float64(seen)
	}
	return sum / float64(len(row))
}

// WeightedSimLOO is the leave-one-out variant of WeightedSim (see SimLOO).
func (t *Tables) WeightedSimLOO(i, l int, w []float64, member bool) float64 {
	row := t.data[i]
	cl, sl := t.count[l], t.seen[l]
	var sum float64
	for r, v := range row {
		if v == categorical.Missing {
			continue
		}
		cnt, seen := cl[r*t.stride+v], sl[r]
		if member {
			cnt--
			seen--
		}
		if seen <= 0 || cnt <= 0 {
			continue
		}
		sum += w[r] * float64(cnt) / float64(seen)
	}
	return sum / float64(len(row))
}

// InterClusterDifference computes α_rl of Eq. (15): the Euclidean separation
// between cluster l's value distribution on feature r and that of the rest of
// the data set, scaled by 1/√2 so it lies in [0,1].
func (t *Tables) InterClusterDifference(r, l int) float64 {
	inSeen := t.seen[l][r]
	outSeen := t.globalSeen[r] - inSeen
	if inSeen == 0 || outSeen == 0 {
		return 0
	}
	var sum float64
	base := r * t.stride
	for v := 0; v < t.card[r]; v++ {
		in := float64(t.count[l][base+v]) / float64(inSeen)
		out := float64(t.globalCount[base+v]-t.count[l][base+v]) / float64(outSeen)
		diff := in - out
		sum += diff * diff
	}
	return math.Sqrt(sum) / math.Sqrt2
}

// IntraClusterSimilarity computes β_rl of Eq. (16): the average, over cluster
// members, of the frequency of their own value — equivalently the sum of
// squared value frequencies (a purity/compactness measure in [0,1]).
func (t *Tables) IntraClusterSimilarity(r, l int) float64 {
	seen := t.seen[l][r]
	if seen == 0 {
		return 0
	}
	var sum float64
	base := r * t.stride
	for v := 0; v < t.card[r]; v++ {
		p := float64(t.count[l][base+v]) / float64(seen)
		sum += p * p
	}
	return sum
}

// FeatureWeights computes the probabilistic feature weights ω_rl of
// Eq. (15)–(18) for cluster l: ω_rl = H_rl / Σ_t H_tl with H_rl = α_rl·β_rl.
// When every contribution is zero (e.g. an empty cluster) it falls back to
// uniform weights 1/d, matching the initialization of Algorithm 1.
func (t *Tables) FeatureWeights(l int, dst []float64) []float64 {
	d := t.D()
	if dst == nil {
		dst = make([]float64, d)
	}
	var total float64
	for r := 0; r < d; r++ {
		h := t.InterClusterDifference(r, l) * t.IntraClusterSimilarity(r, l)
		dst[r] = h
		total += h
	}
	if total <= 0 {
		uniform := 1.0 / float64(d)
		for r := range dst {
			dst[r] = uniform
		}
		return dst
	}
	for r := range dst {
		dst[r] /= total
	}
	return dst
}

// Mode returns the per-feature majority value of cluster l (ties broken by
// the lowest code), or Missing on features where the cluster has no values.
func (t *Tables) Mode(l int) []int {
	mode := make([]int, t.D())
	for r := 0; r < t.D(); r++ {
		mode[r] = categorical.Missing
		best := 0
		base := r * t.stride
		for v := 0; v < t.card[r]; v++ {
			if c := t.count[l][base+v]; c > best {
				best = c
				mode[r] = v
			}
		}
	}
	return mode
}
