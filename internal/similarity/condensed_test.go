package similarity

import (
	"math"
	"math/rand"
	"testing"
)

// refIndex is the brute-force flat index of (i, j>i): the number of
// upper-triangle entries strictly before it in row-major order.
func refIndex(n, i, j int) int {
	idx := 0
	for r := 0; r < i; r++ {
		idx += n - r - 1
	}
	return idx + (j - i - 1)
}

// TestCondensedIndexMath pins the O(1) offset arithmetic to the brute-force
// count for every (i, j) pair across a range of sizes — including the
// boundary rows i = 0 and j = n−1 the packing formula is easiest to get
// wrong on.
func TestCondensedIndexMath(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 17, 64} {
		c := NewCondensed(n, 0)
		if c.Pairs() != n*(n-1)/2 {
			t.Fatalf("n=%d: Pairs() = %d, want %d", n, c.Pairs(), n*(n-1)/2)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if got, want := c.offset(i, j), refIndex(n, i, j); got != want {
					t.Fatalf("n=%d: offset(%d,%d) = %d, want %d", n, i, j, got, want)
				}
				if got, want := c.offset(j, i), refIndex(n, i, j); got != want {
					t.Fatalf("n=%d: offset(%d,%d) = %d, want %d (swapped args)", n, j, i, got, want)
				}
			}
		}
		// pairAt must be the exact inverse on every flat slot.
		for s := 0; s < c.Pairs(); s++ {
			i, j := pairAt(n, s)
			if i < 0 || j <= i || j >= n || c.offset(i, j) != s {
				t.Fatalf("n=%d: pairAt(%d) = (%d,%d), offset back = %d", n, s, i, j, c.offset(i, j))
			}
		}
	}
}

// TestCondensedAtSetBoundaries exercises the documented edge cases: the
// corners (0, n−1), the diagonal, and the degenerate n = 1 and n = 0
// matrices that store nothing.
func TestCondensedAtSetBoundaries(t *testing.T) {
	c := NewCondensed(5, 1)
	c.Set(0, 4, 0.25) // first row, last column
	c.Set(4, 3, 0.75) // swapped order hits the last stored slot
	c.Set(2, 2, 1)    // diagonal write of the diagonal value is a no-op
	if c.At(4, 0) != 0.25 {
		t.Errorf("At(4,0) = %v, want 0.25", c.At(4, 0))
	}
	if c.At(3, 4) != 0.75 {
		t.Errorf("At(3,4) = %v, want 0.75", c.At(3, 4))
	}
	if c.At(2, 2) != 1 {
		t.Errorf("At(2,2) = %v, want the diagonal 1", c.At(2, 2))
	}

	defer func() {
		if recover() == nil {
			t.Error("Set on the diagonal with a non-diagonal value: want panic")
		}
	}()

	one := NewCondensed(1, 1)
	if one.Pairs() != 0 {
		t.Fatalf("n=1: Pairs() = %d, want 0", one.Pairs())
	}
	if one.At(0, 0) != 1 {
		t.Fatalf("n=1: At(0,0) = %v, want diagonal 1", one.At(0, 0))
	}
	if len(one.Dense(1)) != 1 || one.Dense(1)[0][0] != 1 {
		t.Fatalf("n=1: Dense = %v", one.Dense(1))
	}
	zero := NewCondensed(0, 0)
	if zero.Pairs() != 0 || len(zero.Dense(1)) != 0 {
		t.Fatal("n=0: want empty condensed and dense forms")
	}

	c.Set(1, 1, 0.5) // must panic: cannot represent a non-constant diagonal
}

// TestCondensedDenseRoundTrip checks dense → condensed → dense identity on
// random symmetric matrices, at several worker counts.
func TestCondensedDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 7, 40} {
		dense := make([][]float64, n)
		for i := range dense {
			dense[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			dense[i][i] = 0.5
			for j := i + 1; j < n; j++ {
				v := rng.Float64()
				dense[i][j], dense[j][i] = v, v
			}
		}
		for _, workers := range []int{1, 2, 0} {
			c, err := CondensedFromDense(dense, workers)
			if err != nil {
				t.Fatal(err)
			}
			if c.Diag() != 0.5 {
				t.Fatalf("n=%d: diag %v, want 0.5", n, c.Diag())
			}
			back := c.Dense(workers)
			for i := range dense {
				for j := range dense[i] {
					if back[i][j] != dense[i][j] {
						t.Fatalf("n=%d workers=%d: round-trip [%d][%d] = %v, want %v",
							n, workers, i, j, back[i][j], dense[i][j])
					}
				}
			}
		}
	}
	if _, err := CondensedFromDense([][]float64{{0, 1}}, 1); err == nil {
		t.Error("non-square dense matrix: want error")
	}
}

// TestPairwiseCondensedMatchesBruteForce pins the condensed fill to an
// independent per-pair computation and to the dense shim, at several worker
// counts (the tiled fill must be value-identical at any parallelism level).
func TestPairwiseCondensedMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n, d := 57, 9
	rows := make([][]int, n)
	for i := range rows {
		rows[i] = make([]int, d)
		for r := range rows[i] {
			rows[i][r] = rng.Intn(4)
		}
	}
	seq := PairwiseCondensed(rows, 1)
	seqD := DissimilarityCondensed(rows, 1)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m := RowMatches(rows[i], rows[j])
			if got, want := seq.At(i, j), float64(m)/float64(d); got != want {
				t.Fatalf("similarity (%d,%d) = %v, want %v", i, j, got, want)
			}
			if got, want := seqD.At(i, j), float64(d-m)/float64(d); got != want {
				t.Fatalf("dissimilarity (%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
	for _, workers := range []int{2, 3, 0} {
		par := PairwiseCondensed(rows, workers)
		for s := 0; s < seq.Pairs(); s++ {
			if par.data[s] != seq.data[s] {
				i, j := pairAt(n, s)
				t.Fatalf("workers=%d: entry (%d,%d) differs: %v vs %v", workers, i, j, par.data[s], seq.data[s])
			}
		}
	}
	// The dense shim must expand to exactly the condensed values.
	dense := PairwiseMatrix(rows, 0)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if dense[i][j] != seq.At(i, j) {
				t.Fatalf("dense[%d][%d] = %v, condensed %v", i, j, dense[i][j], seq.At(i, j))
			}
		}
	}
}

// TestMeanPairwise pins the cohesion summary on hand-computable inputs.
func TestMeanPairwise(t *testing.T) {
	identical := [][]int{{1, 2}, {1, 2}, {1, 2}}
	if got := MeanPairwise(identical, 1); got != 1 {
		t.Errorf("identical rows: cohesion %v, want 1", got)
	}
	disjoint := [][]int{{0, 0}, {1, 1}}
	if got := MeanPairwise(disjoint, 1); got != 0 {
		t.Errorf("disjoint rows: cohesion %v, want 0", got)
	}
	if got := MeanPairwise([][]int{{3, 4}}, 1); got != 1 {
		t.Errorf("singleton: cohesion %v, want 1 by convention", got)
	}
	// {0,0} vs {0,1}: 1 of 2 features match -> pairwise 0.5.
	half := [][]int{{0, 0}, {0, 1}}
	if got := MeanPairwise(half, 1); got != 0.5 {
		t.Errorf("half-matching rows: cohesion %v, want 0.5", got)
	}
	// The streaming accumulation must be identical at any parallelism level
	// (per-tile sums fold in tile order) and match the condensed fill's mean.
	rng := rand.New(rand.NewSource(5))
	rows := make([][]int, 123)
	for i := range rows {
		rows[i] = []int{rng.Intn(3), rng.Intn(3), rng.Intn(2)}
	}
	seq := MeanPairwise(rows, 1)
	for _, workers := range []int{2, 3, 0} {
		if got := MeanPairwise(rows, workers); got != seq {
			t.Errorf("workers=%d: cohesion %v, want %v", workers, got, seq)
		}
	}
	// The streaming value agrees with the materialized matrix's mean up to
	// summation-order rounding (tile-folded vs flat-order sums).
	if got := PairwiseCondensed(rows, 1).Mean(); math.Abs(got-seq) > 1e-12 {
		t.Errorf("Condensed.Mean = %v, streaming MeanPairwise = %v", got, seq)
	}
}

// TestUpperRowInto pins the copying row accessor against UpperRow: same
// values, caller-owned storage (mutating the copy must not touch the
// matrix), reuse of one scratch across rows, and the capacity contract.
func TestUpperRowInto(t *testing.T) {
	n := 7
	c := NewCondensed(n, 0)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c.Set(i, j, float64(i*10+j))
		}
	}
	scratch := make([]float64, n-1)
	for i := 0; i < n; i++ {
		got := c.UpperRowInto(i, scratch)
		want := c.UpperRow(i)
		if len(got) != len(want) {
			t.Fatalf("row %d: length %d, want %d", i, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("row %d entry %d: %v, want %v", i, k, got[k], want[k])
			}
		}
		if len(got) > 0 {
			got[0] = -1
			if c.UpperRow(i)[0] == -1 {
				t.Fatal("UpperRowInto aliases the matrix backing array")
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("short destination: want panic")
		}
	}()
	c.UpperRowInto(0, make([]float64, 2))
}
