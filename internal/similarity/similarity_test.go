package similarity

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mcdc/internal/categorical"
)

func smallTables(t *testing.T) *Tables {
	t.Helper()
	rows := [][]int{
		{0, 1}, // cluster 0
		{0, 0}, // cluster 0
		{1, 1}, // cluster 1
		{1, 0}, // unassigned at first
	}
	tb, err := NewTables(rows, []int{2, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	tb.Add(0, 0)
	tb.Add(1, 0)
	tb.Add(2, 1)
	return tb
}

func TestSimKnownValues(t *testing.T) {
	tb := smallTables(t)
	// Object 3 = {1,0}: cluster 0 = {{0,1},{0,0}} → feature 0 freq of value
	// 1 is 0/2, feature 1 freq of value 0 is 1/2 → sim = (0 + 0.5)/2 = 0.25.
	if got := tb.Sim(3, 0); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("Sim(3,0) = %v, want 0.25", got)
	}
	// Cluster 1 = {{1,1}} → feature 0: 1/1; feature 1 value 0: 0/1 → 0.5.
	if got := tb.Sim(3, 1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Sim(3,1) = %v, want 0.5", got)
	}
}

func TestLOOExcludesSelf(t *testing.T) {
	tb := smallTables(t)
	// Object 2 is the only member of cluster 1: LOO similarity must be 0.
	if got := tb.SimLOO(2, 1, true); got != 0 {
		t.Errorf("SimLOO(singleton member) = %v, want 0", got)
	}
	// Non-member LOO equals plain similarity.
	if got, want := tb.SimLOO(3, 1, false), tb.Sim(3, 1); got != want {
		t.Errorf("SimLOO(non-member) = %v, want %v", got, want)
	}
	// Member of cluster 0: LOO excludes its own contribution.
	// Object 0 = {0,1}; cluster 0 minus object 0 = {{0,0}} → f0: 1/1, f1:
	// value 1 count 0/1 → (1+0)/2 = 0.5.
	if got := tb.SimLOO(0, 0, true); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("SimLOO(member) = %v, want 0.5", got)
	}
}

func TestAddRemoveInverse(t *testing.T) {
	rows := [][]int{{0, 1, 2}, {1, 1, 0}, {2, 0, 1}}
	tb, err := NewTables(rows, []int{3, 2, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	tb.Add(0, 0)
	tb.Add(1, 0)
	before := []int{tb.Count(0, 0, 0), tb.Count(0, 1, 1), tb.Size(0)}
	tb.Add(2, 0)
	tb.Remove(2, 0)
	after := []int{tb.Count(0, 0, 0), tb.Count(0, 1, 1), tb.Size(0)}
	if !reflect.DeepEqual(before, after) {
		t.Errorf("Add/Remove not inverse: %v vs %v", before, after)
	}
	tb.Move(1, 0, 1)
	if tb.Size(0) != 1 || tb.Size(1) != 1 {
		t.Errorf("Move: sizes = %d,%d, want 1,1", tb.Size(0), tb.Size(1))
	}
}

func TestFeatureWeightsSimplex(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, d := 5+r.Intn(40), 2+r.Intn(5)
		card := make([]int, d)
		for j := range card {
			card[j] = 2 + r.Intn(4)
		}
		rows := make([][]int, n)
		for i := range rows {
			rows[i] = make([]int, d)
			for j := range rows[i] {
				rows[i][j] = r.Intn(card[j])
			}
		}
		k := 2 + r.Intn(3)
		tb, err := NewTables(rows, card, k)
		if err != nil {
			return false
		}
		for i := range rows {
			tb.Add(i, r.Intn(k))
		}
		for l := 0; l < k; l++ {
			w := tb.FeatureWeights(l, nil)
			var sum float64
			for _, x := range w {
				if x < 0 || x > 1 {
					return false
				}
				sum += x
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rng}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestInterIntraBounds(t *testing.T) {
	tb := smallTables(t)
	tb.Add(3, 1)
	for l := 0; l < 2; l++ {
		for r := 0; r < 2; r++ {
			if a := tb.InterClusterDifference(r, l); a < 0 || a > 1+1e-12 {
				t.Errorf("alpha(%d,%d) = %v outside [0,1]", r, l, a)
			}
			if b := tb.IntraClusterSimilarity(r, l); b < 0 || b > 1+1e-12 {
				t.Errorf("beta(%d,%d) = %v outside [0,1]", r, l, b)
			}
		}
	}
}

func TestPerfectSeparationAlphaBeta(t *testing.T) {
	// Two clusters with disjoint values on feature 0: α = 1 (scaled), β = 1.
	rows := [][]int{{0}, {0}, {1}, {1}}
	tb, err := NewTables(rows, []int{2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	tb.Add(0, 0)
	tb.Add(1, 0)
	tb.Add(2, 1)
	tb.Add(3, 1)
	if a := tb.InterClusterDifference(0, 0); math.Abs(a-1) > 1e-12 {
		t.Errorf("alpha = %v, want 1 for disjoint clusters", a)
	}
	if b := tb.IntraClusterSimilarity(0, 0); math.Abs(b-1) > 1e-12 {
		t.Errorf("beta = %v, want 1 for pure cluster", b)
	}
}

func TestMissingValuesHandled(t *testing.T) {
	rows := [][]int{
		{0, categorical.Missing},
		{0, 1},
		{1, 0},
	}
	tb, err := NewTables(rows, []int{2, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	tb.Add(0, 0)
	tb.Add(1, 0)
	tb.Add(2, 1)
	// Object 0's missing feature contributes nothing.
	got := tb.Sim(0, 0)
	// Feature 0: value 0 appears 2/2; feature 1 skipped → (1+0)/2 = 0.5.
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Sim with missing = %v, want 0.5", got)
	}
	mode := tb.Mode(1)
	if mode[0] != 1 || mode[1] != 0 {
		t.Errorf("Mode(1) = %v, want [1 0]", mode)
	}
}

func TestNewTablesErrors(t *testing.T) {
	if _, err := NewTables(nil, []int{2}, 2); err == nil {
		t.Error("empty rows: want error")
	}
	if _, err := NewTables([][]int{{0}}, []int{2}, 0); err == nil {
		t.Error("k=0: want error")
	}
	if _, err := NewTables([][]int{{0}}, []int{0}, 1); err == nil {
		t.Error("zero cardinality: want error")
	}
	if _, err := NewTables([][]int{{0, 1}}, []int{2}, 1); err == nil {
		t.Error("row wider than schema: want error")
	}
}

// TestLOOMatchesNaive cross-checks the incremental LOO similarity against a
// from-scratch computation on random data.
func TestLOOMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		n, d := 4+r.Intn(30), 1+r.Intn(4)
		card := make([]int, d)
		for j := range card {
			card[j] = 2 + r.Intn(3)
		}
		rows := make([][]int, n)
		for i := range rows {
			rows[i] = make([]int, d)
			for j := range rows[i] {
				rows[i][j] = r.Intn(card[j])
			}
		}
		k := 2
		tb, _ := NewTables(rows, card, k)
		assign := make([]int, n)
		for i := range rows {
			assign[i] = r.Intn(k)
			tb.Add(i, assign[i])
		}
		i := r.Intn(n)
		l := assign[i]
		got := tb.SimLOO(i, l, true)
		// Naive: recompute frequencies over cluster l without object i.
		var want float64
		for rr := 0; rr < d; rr++ {
			cnt, seen := 0, 0
			for j := range rows {
				if j == i || assign[j] != l {
					continue
				}
				seen++
				if rows[j][rr] == rows[i][rr] {
					cnt++
				}
			}
			if seen > 0 {
				want += float64(cnt) / float64(seen)
			}
		}
		want /= float64(d)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d: SimLOO = %v, naive = %v", trial, got, want)
		}
	}
}
