package similarity

import "fmt"

// TableState is the exported, serializable form of a Tables: the per-cluster
// value-frequency statistics without the raw data rows. It is what model
// snapshots and stream checkpoints persist — the learned sufficient
// statistics survive a restart even though the objects that produced them do
// not.
type TableState struct {
	// Card holds the per-feature domain sizes.
	Card []int
	// K is the number of cluster slots (including empty ones).
	K int
	// Stride is the flat-index stride (max cardinality).
	Stride int
	// Sizes[l] is the object count of cluster l.
	Sizes []int
	// Counts[l][r*Stride+v] counts cluster-l members with value v on
	// feature r.
	Counts [][]int
	// Seen[l][r] counts the non-missing members of cluster l on feature r.
	Seen [][]int
	// GlobalCount / GlobalSeen are the whole-data-set statistics backing the
	// inter-cluster difference term of Eq. (15).
	GlobalCount []int
	GlobalSeen  []int
}

// State exports a deep copy of the tables' statistics. The raw data rows are
// not included: a restored Tables serves frequency lookups and similarity
// probes for arbitrary rows, not index-based membership updates.
func (t *Tables) State() *TableState {
	st := &TableState{
		Card:        append([]int(nil), t.card...),
		K:           t.k,
		Stride:      t.stride,
		Sizes:       append([]int(nil), t.size...),
		Counts:      make([][]int, t.k),
		Seen:        make([][]int, t.k),
		GlobalCount: append([]int(nil), t.globalCount...),
		GlobalSeen:  append([]int(nil), t.globalSeen...),
	}
	for l := 0; l < t.k; l++ {
		st.Counts[l] = append([]int(nil), t.count[l]...)
		st.Seen[l] = append([]int(nil), t.seen[l]...)
	}
	return st
}

// FromState rebuilds a Tables from exported statistics. The result has no
// underlying data rows, so only the statistics-facing methods are usable
// (K, D, Size, Count, FeatureWeights, InterClusterDifference,
// IntraClusterSimilarity, Mode, ProbeSim); the index-based mutators
// (Add/Remove/Move) and per-object similarities must not be called on it.
func FromState(st *TableState) (*Tables, error) {
	if st == nil {
		return nil, fmt.Errorf("similarity: nil table state")
	}
	if st.K <= 0 {
		return nil, fmt.Errorf("similarity: table state has k = %d, want positive", st.K)
	}
	d := len(st.Card)
	if d == 0 {
		return nil, fmt.Errorf("similarity: table state has no features")
	}
	for r, m := range st.Card {
		if m <= 0 {
			return nil, fmt.Errorf("similarity: table state cardinality[%d] = %d, want positive", r, m)
		}
		if m > st.Stride {
			return nil, fmt.Errorf("similarity: table state stride %d below cardinality[%d] = %d", st.Stride, r, m)
		}
	}
	if len(st.Sizes) != st.K || len(st.Counts) != st.K || len(st.Seen) != st.K {
		return nil, fmt.Errorf("similarity: table state cluster slices disagree with k = %d", st.K)
	}
	t := &Tables{
		card:        append([]int(nil), st.Card...),
		k:           st.K,
		size:        append([]int(nil), st.Sizes...),
		count:       make([][]int, st.K),
		seen:        make([][]int, st.K),
		globalCount: append([]int(nil), st.GlobalCount...),
		globalSeen:  append([]int(nil), st.GlobalSeen...),
		stride:      st.Stride,
	}
	if len(t.globalCount) == 0 {
		t.globalCount = make([]int, d*st.Stride)
	}
	if len(t.globalSeen) == 0 {
		t.globalSeen = make([]int, d)
	}
	for l := 0; l < st.K; l++ {
		if len(st.Counts[l]) != d*st.Stride || len(st.Seen[l]) != d {
			return nil, fmt.Errorf("similarity: table state cluster %d has malformed statistics", l)
		}
		t.count[l] = append([]int(nil), st.Counts[l]...)
		t.seen[l] = append([]int(nil), st.Seen[l]...)
	}
	return t, nil
}

// ProbeSim computes the Eq. (1) similarity of an arbitrary (possibly unseen)
// row to cluster l: the mean, over the row's features, of the fraction of
// cluster members sharing the row's value. Values outside [0, card) and
// features with no cluster mass contribute 0. Unlike Sim it takes the row
// itself rather than a data-set index, so it works on data-less restored
// tables and on rows that were never part of the training window.
func (t *Tables) ProbeSim(row []int, l int) float64 {
	if len(row) == 0 || t.size[l] == 0 {
		return 0
	}
	cl, sl := t.count[l], t.seen[l]
	var sum float64
	for r, v := range row {
		if v < 0 || r >= len(t.card) || v >= t.card[r] || sl[r] == 0 {
			continue
		}
		sum += float64(cl[r*t.stride+v]) / float64(sl[r])
	}
	return sum / float64(len(row))
}
