package similarity

import (
	"math/bits"

	"mcdc/internal/categorical"
)

// PackedRows is a bit-packed, one-hot-plane representation of a categorical
// data set, built for word-wide match counting: each feature r owns a
// contiguous run of card[r] bits (its "plane") inside a row's bit string, and
// a row sets exactly the bit of its value on every non-missing feature (a
// Missing value sets no bit, so it can never match — including another
// Missing — exactly like RowMatches). With that layout the simple-matching
// agreement count of two rows collapses to
//
//	matches(a, b) = popcount(a AND b)
//
// because two rows share a set bit in feature r's plane iff they take the
// same non-missing value there. One AND + bits.OnesCount64 per 64 bits
// replaces up to 64 per-feature compare-and-branch iterations, which is what
// buys the packed pairwise fill its speedup (the XOR form popcount(a XOR b)
// counts disagreeing *bits*, not features, so the kernel uses AND).
//
// Rows are packed back to back into one row-major []uint64 block, so the
// inner j-loop of a condensed fill streams consecutive cache lines.
type PackedRows struct {
	n     int // rows
	d     int // features
	words int // uint64 words per row
	// bits holds the packed rows, row i at bits[i*words : (i+1)*words].
	bits []uint64
	// offsets[r] is the first bit of feature r's plane; offsets[d] is the
	// total bit width (the prefix sums of the observed cardinalities).
	offsets []int
}

// maxPackedBits caps the packed row width: beyond it the one-hot planes stop
// paying for themselves (the packed row outgrows the cache lines the kernel
// saves) and PackRows falls back to nil. 2^16 bits = 1 KiB per row.
const maxPackedBits = 1 << 16

// PackRows builds the one-hot-plane representation of rows, deriving each
// feature's plane width from the values actually observed (max code + 1 —
// the value-dictionary cardinality when rows were coded from one). It
// returns nil when the rows cannot be packed faithfully or profitably, and
// callers must then keep using the unpacked kernels:
//
//   - a value is negative but not categorical.Missing, or rows have unequal
//     widths — the packed layout cannot reproduce RowMatches' semantics;
//   - the total width exceeds maxPackedBits, or needs more words than there
//     are features — word-wide AND+popcount would not beat the d-iteration
//     unpacked loop.
func PackRows(rows [][]int) *PackedRows {
	n := len(rows)
	if n == 0 {
		return nil
	}
	d := len(rows[0])
	if d == 0 {
		return nil
	}
	card := make([]int, d)
	for _, row := range rows {
		if len(row) != d {
			return nil
		}
		for r, v := range row {
			if v < 0 {
				if v != categorical.Missing {
					return nil
				}
				continue
			}
			if v+1 > card[r] {
				card[r] = v + 1
			}
		}
	}
	offsets := make([]int, d+1)
	total := 0
	for r, m := range card {
		offsets[r] = total
		total += m
		if total > maxPackedBits {
			return nil
		}
	}
	offsets[d] = total
	words := (total + 63) / 64
	if words > d {
		// At one AND+popcount per word vs one branchy compare per feature,
		// packing only pays while the row does not grow (ties still win:
		// the word loop is branch-free).
		return nil
	}
	if words == 0 {
		words = 1 // all-Missing data still packs (to rows that match nothing)
	}
	p := &PackedRows{n: n, d: d, words: words, bits: make([]uint64, n*words), offsets: offsets}
	for i, row := range rows {
		w := p.bits[i*words : (i+1)*words]
		for r, v := range row {
			if v < 0 {
				continue
			}
			bit := offsets[r] + v
			w[bit>>6] |= 1 << (bit & 63)
		}
	}
	return p
}

// N reports the number of packed rows.
func (p *PackedRows) N() int { return p.n }

// D reports the number of features per row.
func (p *PackedRows) D() int { return p.d }

// Words reports the packed width in uint64 words per row.
func (p *PackedRows) Words() int { return p.words }

// Row returns row i's packed words (a view into the backing block).
func (p *PackedRows) Row(i int) []uint64 {
	return p.bits[i*p.words : (i+1)*p.words]
}

// Matches returns the number of features on which rows i and j agree under
// simple matching — bit-for-bit the integer RowMatches(rows[i], rows[j])
// computes, via AND+popcount over the packed planes.
func (p *PackedRows) Matches(i, j int) int {
	return matchWords(p.Row(i), p.Row(j))
}

// matchWords counts the shared set bits of two equal-length packed rows. The
// small fixed widths (the common case: tens of features at small cardinality
// pack into 1–3 words) are unrolled so the hot kernel has no loop at all.
func matchWords(a, b []uint64) int {
	switch len(a) {
	case 1:
		return bits.OnesCount64(a[0] & b[0])
	case 2:
		return bits.OnesCount64(a[0]&b[0]) + bits.OnesCount64(a[1]&b[1])
	case 3:
		return bits.OnesCount64(a[0]&b[0]) + bits.OnesCount64(a[1]&b[1]) +
			bits.OnesCount64(a[2]&b[2])
	}
	m := 0
	for w := range a {
		m += bits.OnesCount64(a[w] & b[w])
	}
	return m
}
