package similarity

import (
	"math/rand"
	"testing"

	"mcdc/internal/categorical"
	"mcdc/internal/kmodes"
)

// randomRows draws value codes in [0, card) and, when missingRate > 0,
// replaces some of them with the Missing sentinel.
func randomRows(n, d, card int, missingRate float64, seed int64) [][]int {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]int, n)
	for i := range rows {
		rows[i] = make([]int, d)
		for r := range rows[i] {
			if missingRate > 0 && rng.Float64() < missingRate {
				rows[i][r] = categorical.Missing
				continue
			}
			rows[i][r] = rng.Intn(card)
		}
	}
	return rows
}

func TestRowMatches(t *testing.T) {
	a := []int{0, 1, 2, categorical.Missing, categorical.Missing}
	b := []int{0, 2, 2, categorical.Missing, 1}
	// Missing never matches — not even another Missing — matching the
	// repository-wide kmodes.Hamming convention.
	if got := RowMatches(a, b); got != 2 {
		t.Errorf("RowMatches = %d, want 2", got)
	}
	if got, want := RowMatches(a, b), len(a)-kmodes.Hamming(a, b); got != want {
		t.Errorf("RowMatches = %d, but d - kmodes.Hamming = %d", got, want)
	}
}

// TestDissimilarityMatchesKModesHamming pins DissimilarityMatrix (and hence
// linkage.HammingMatrix, which delegates here) to the exact normalized
// kmodes.Hamming values, missing codes included.
func TestDissimilarityMatchesKModesHamming(t *testing.T) {
	rows := randomRows(50, 9, 3, 0.15, 21)
	d := DissimilarityMatrix(rows, 0)
	for i := range rows {
		for j := i + 1; j < len(rows); j++ {
			want := float64(kmodes.Hamming(rows[i], rows[j])) / float64(len(rows[i]))
			if d[i][j] != want {
				t.Fatalf("d[%d][%d] = %v, want %v", i, j, d[i][j], want)
			}
		}
		if d[i][i] != 0 {
			t.Fatalf("diagonal d[%d][%d] = %v", i, i, d[i][i])
		}
	}
}

func TestPairwiseMatrixProperties(t *testing.T) {
	rows := randomRows(60, 8, 4, 0.1, 1)
	s := PairwiseMatrix(rows, 1)
	d := DissimilarityMatrix(rows, 1)
	dim := len(rows[0])
	for i := range rows {
		// Diagonal convention: self-similarity 1, self-dissimilarity 0 —
		// even for rows containing Missing (matching the pre-parallel
		// HammingMatrix, which never touched the diagonal).
		if s[i][i] != 1 || d[i][i] != 0 {
			t.Fatalf("diagonal at %d: sim=%v dissim=%v", i, s[i][i], d[i][i])
		}
		for j := range rows {
			if s[i][j] != s[j][i] || d[i][j] != d[j][i] {
				t.Fatalf("asymmetry at (%d,%d)", i, j)
			}
			if i == j {
				continue
			}
			m := RowMatches(rows[i], rows[j])
			if want := float64(m) / float64(dim); s[i][j] != want {
				t.Fatalf("s[%d][%d] = %v, want %v", i, j, s[i][j], want)
			}
			if want := float64(dim-m) / float64(dim); d[i][j] != want {
				t.Fatalf("d[%d][%d] = %v, want %v", i, j, d[i][j], want)
			}
		}
	}
}

// TestPairwiseMatrixParallelEquivalence checks that the row-chunked parallel
// computation is cell-for-cell identical to the sequential one.
func TestPairwiseMatrixParallelEquivalence(t *testing.T) {
	rows := randomRows(173, 11, 5, 0.1, 7) // awkward size: uneven chunks
	seq := PairwiseMatrix(rows, 1)
	for _, workers := range []int{2, 3, 8, 0} {
		par := PairwiseMatrix(rows, workers)
		for i := range seq {
			for j := range seq[i] {
				if seq[i][j] != par[i][j] {
					t.Fatalf("workers=%d: cell (%d,%d): %v != %v", workers, i, j, par[i][j], seq[i][j])
				}
			}
		}
	}
}

func TestPairwiseMatrixEmpty(t *testing.T) {
	if got := PairwiseMatrix(nil, 4); len(got) != 0 {
		t.Errorf("empty input: got %d rows", len(got))
	}
}
