package similarity

import (
	"mcdc/internal/categorical"
	"mcdc/internal/parallel"
)

// RowMatches returns the number of positions on which two value rows agree
// under simple matching. A Missing code never matches anything — including
// another Missing — mirroring the repository-wide convention (kmodes.Hamming,
// Tables): RowMatches(a, b) == len(a) - kmodes.Hamming(a, b).
func RowMatches(a, b []int) int {
	m := 0
	for r := range a {
		if a[r] == b[r] && a[r] != categorical.Missing {
			m++
		}
	}
	return m
}

// PairwiseCondensed computes the object–object similarity matrix under simple
// matching in condensed triangular form: At(i, j) is the fraction of features
// on which rows i and j take the same (non-missing) value, with the implicit
// diagonal 1. The O(n²·d) fill is tiled over the flat triangle index across
// at most `workers` goroutines (≤ 0 → GOMAXPROCS) — tiles are equal-sized
// runs of pairs, so the schedule stays balanced even though early rows own
// more pairs than late ones — and every entry is written exactly once, so the
// result is identical at any parallelism level.
//
// When the rows pack into one-hot bit planes (see PackRows) the per-pair
// match count is computed by the word-wide AND+popcount kernel instead of
// the per-feature branchy loop — bit-for-bit the same matrix, ≥4× faster on
// small-cardinality data (the packed-vs-unpacked equivalence is pinned by
// the property tests and the parallel equivalence suite). Unpackable rows
// fall back to the unpacked kernel below.
func PairwiseCondensed(rows [][]int, workers int) *Condensed {
	return pairwise(rows, workers, false)
}

// DissimilarityCondensed computes the normalized Hamming dissimilarity matrix
// in condensed form, At(i, j) = kmodes.Hamming(i, j)/d with implicit diagonal
// 0 — the standard input for hierarchical clustering of categorical rows.
// Tiled, parallelized, and packed exactly like PairwiseCondensed.
func DissimilarityCondensed(rows [][]int, workers int) *Condensed {
	return pairwise(rows, workers, true)
}

// PairwiseCondensedUnpacked is the per-feature branchy fill — the original
// kernel, kept as the cross-check oracle for the packed path (the equivalence
// tests compare the two bit for bit) and as the fallback PairwiseCondensed
// takes when PackRows declines the data. Production callers should use
// PairwiseCondensed, which picks the faster kernel itself.
func PairwiseCondensedUnpacked(rows [][]int, workers int) *Condensed {
	return pairwiseUnpacked(rows, workers, false)
}

// DissimilarityCondensedUnpacked is the unpacked oracle/fallback twin of
// DissimilarityCondensed (see PairwiseCondensedUnpacked).
func DissimilarityCondensedUnpacked(rows [][]int, workers int) *Condensed {
	return pairwiseUnpacked(rows, workers, true)
}

// PairwiseMatrix is the dense-representation shim over PairwiseCondensed: it
// computes the condensed triangle and expands it to the classic n×n
// [][]float64. Both steps divide an integer count by d and copy, so the dense
// and condensed paths are value-identical by construction. Dense callers pay
// 3× the condensed memory (triangle + square); prefer PairwiseCondensed.
func PairwiseMatrix(rows [][]int, workers int) [][]float64 {
	return pairwise(rows, workers, false).Dense(workers)
}

// DissimilarityMatrix is the dense shim over DissimilarityCondensed, kept for
// source compatibility; prefer the condensed form for anything sized by n².
func DissimilarityMatrix(rows [][]int, workers int) [][]float64 {
	return pairwise(rows, workers, true).Dense(workers)
}

// MeanPairwise returns the mean pairwise simple-matching similarity of the
// rows — a cohesion summary (1 = all rows identical). A set of fewer than two
// rows is perfectly cohesive by convention. The O(n²·d) accumulation streams
// the same tiled pair order as PairwiseCondensed without materializing the
// matrix (O(1) memory per tile); tile boundaries depend only on the pair
// count and per-tile sums fold in tile order, so the value is deterministic
// at any parallelism level. Packable rows use the popcount kernel: the
// per-pair match counts are identical integers, so the folded sum is
// bit-for-bit the unpacked one.
func MeanPairwise(rows [][]int, workers int) float64 {
	n := len(rows)
	if n < 2 {
		return 1
	}
	d := len(rows[0])
	pairs := n * (n - 1) / 2
	packed := PackRows(rows)
	sum, err := parallel.MapReduce(parallel.Gate(workers, pairs*d), pairs, 0.0,
		func(lo, hi int) (float64, error) {
			i, j := pairAt(n, lo)
			var s float64
			if packed != nil {
				ri := packed.Row(i)
				for t := lo; t < hi; t++ {
					s += float64(matchWords(ri, packed.Row(j))) / float64(d)
					if j++; j == n {
						i++
						j = i + 1
						ri = packed.Row(i)
					}
				}
				return s, nil
			}
			ri := rows[i]
			for t := lo; t < hi; t++ {
				s += float64(RowMatches(ri, rows[j])) / float64(d)
				if j++; j == n {
					i++
					j = i + 1
					ri = rows[i]
				}
			}
			return s, nil
		},
		func(acc, next float64) float64 { return acc + next })
	parallel.Must(err)
	return sum / float64(pairs)
}

// pairwise picks the kernel: the packed popcount fill when the rows pack,
// the per-feature loop otherwise. Both produce the same chunk layout and the
// same float64 in every slot.
func pairwise(rows [][]int, workers int, dissim bool) *Condensed {
	if len(rows) >= 2 {
		if p := PackRows(rows); p != nil {
			return pairwisePacked(rows, p, workers, dissim)
		}
	}
	return pairwiseUnpacked(rows, workers, dissim)
}

func pairwiseUnpacked(rows [][]int, workers int, dissim bool) *Condensed {
	n := len(rows)
	diag := 1.0
	if dissim {
		diag = 0
	}
	c := NewCondensed(n, diag)
	if n < 2 {
		return c
	}
	d := len(rows[0])
	// Tiles are contiguous runs of the flat triangle index: chunk boundaries
	// depend only on the pair count, each flat slot is written by exactly one
	// goroutine, and (i, j) are recovered once per tile then advanced
	// incrementally.
	parallel.Must(parallel.ForEachChunk(parallel.Gate(workers, c.Pairs()*d), c.Pairs(), func(lo, hi int) error {
		i, j := pairAt(n, lo)
		ri := rows[i]
		for t := lo; t < hi; t++ {
			m := RowMatches(ri, rows[j])
			if dissim {
				m = d - m
			}
			c.data[t] = float64(m) / float64(d)
			if j++; j == n {
				i++
				j = i + 1
				ri = rows[i]
			}
		}
		return nil
	}))
	return c
}

// pairwisePacked is the popcount fill. The tiling is the same flat-triangle
// chunking as the unpacked fill (boundaries depend only on the pair count);
// within a tile, row i's words sit in registers while the j-side streams the
// packed block's consecutive cache lines, so the kernel is bound by popcount
// throughput, not memory latency. A lookup table maps integer match counts
// to their float64 quotients — float64(m)/float64(d) for each possible m,
// computed once — which keeps the per-pair float result bit-identical to the
// unpacked division while hoisting the divide out of the O(n²) loop.
func pairwisePacked(rows [][]int, p *PackedRows, workers int, dissim bool) *Condensed {
	n := len(rows)
	diag := 1.0
	if dissim {
		diag = 0
	}
	c := NewCondensed(n, diag)
	d := p.D()
	lut := make([]float64, d+1)
	for m := 0; m <= d; m++ {
		v := m
		if dissim {
			v = d - m
		}
		lut[m] = float64(v) / float64(d)
	}
	parallel.Must(parallel.ForEachChunk(parallel.Gate(workers, c.Pairs()*p.Words()), c.Pairs(), func(lo, hi int) error {
		i, j := pairAt(n, lo)
		ri := p.Row(i)
		for t := lo; t < hi; t++ {
			c.data[t] = lut[matchWords(ri, p.Row(j))]
			if j++; j == n {
				i++
				j = i + 1
				ri = p.Row(i)
			}
		}
		return nil
	}))
	return c
}
