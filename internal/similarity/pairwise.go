package similarity

import (
	"mcdc/internal/categorical"
	"mcdc/internal/parallel"
)

// RowMatches returns the number of positions on which two value rows agree
// under simple matching. A Missing code never matches anything — including
// another Missing — mirroring the repository-wide convention (kmodes.Hamming,
// Tables): RowMatches(a, b) == len(a) - kmodes.Hamming(a, b).
func RowMatches(a, b []int) int {
	m := 0
	for r := range a {
		if a[r] == b[r] && a[r] != categorical.Missing {
			m++
		}
	}
	return m
}

// PairwiseMatrix computes the n×n object–object similarity matrix under
// simple matching: S[i][j] is the fraction of features on which rows i and j
// take the same (non-missing) value, with S[i][i] = 1 by convention. The
// O(n²·d) upper triangle is row-chunked across at most `workers` goroutines
// (≤ 0 → GOMAXPROCS) and mirrored; every cell is written exactly once, so
// the result is identical at any parallelism level.
func PairwiseMatrix(rows [][]int, workers int) [][]float64 {
	return pairwise(rows, workers, false)
}

// DissimilarityMatrix computes the n×n normalized Hamming dissimilarity
// matrix, D[i][j] = kmodes.Hamming(i, j)/d with D[i][i] = 0 — the standard
// input for hierarchical clustering of categorical rows. Parallelized
// exactly like PairwiseMatrix. Both matrices divide an integer count by d,
// so each is bit-identical to its sequential (and pre-parallel) computation.
func DissimilarityMatrix(rows [][]int, workers int) [][]float64 {
	return pairwise(rows, workers, true)
}

func pairwise(rows [][]int, workers int, dissim bool) [][]float64 {
	n := len(rows)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
	}
	if n == 0 {
		return out
	}
	d := len(rows[0])
	diag := 1.0
	if dissim {
		diag = 0
	}
	// Row chunks of the upper triangle: chunk c owns cells (i, j>i) for its
	// rows, plus the mirror writes (j, i). Distinct goroutines touch distinct
	// cells only, so no synchronization is needed. Early rows carry more
	// cells than late ones; chunking far finer than realistic worker counts
	// keeps the dynamic schedule balanced (at most maxChunks chunks, the
	// layer's parallelism ceiling).
	parallel.Must(parallel.ForEachChunk(parallel.Gate(workers, n*n*d), n, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			ri := rows[i]
			out[i][i] = diag
			for j := i + 1; j < n; j++ {
				m := RowMatches(ri, rows[j])
				if dissim {
					m = d - m
				}
				s := float64(m) / float64(d)
				out[i][j], out[j][i] = s, s
			}
		}
		return nil
	}))
	return out
}
