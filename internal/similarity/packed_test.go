package similarity

import (
	"math/rand"
	"testing"

	"mcdc/internal/categorical"
	"mcdc/internal/parallel"
)

// randomRows draws n rows over the cardinality mix, with missingFrac of the
// cells set to categorical.Missing.
func packedRandomRows(rng *rand.Rand, n int, card []int, missingFrac float64) [][]int {
	rows := make([][]int, n)
	for i := range rows {
		row := make([]int, len(card))
		for r, m := range card {
			if rng.Float64() < missingFrac {
				row[r] = categorical.Missing
			} else {
				row[r] = rng.Intn(m)
			}
		}
		rows[i] = row
	}
	return rows
}

// boundaryCardMixes returns cardinality mixes whose total one-hot widths sit
// on and around the word boundaries (1, 63, 64, 65 bits), plus larger mixed
// widths — the cases where a packing off-by-one would bite.
func boundaryCardMixes() map[string][]int {
	mixes := map[string][]int{
		"1bit":      {1},                       // total 1
		"63bit":     {31, 32},                  // total 63
		"64bit":     {31, 32, 1},               // total 64, exactly one word
		"65bit":     {31, 32, 2},               // total 65, spills into word 2
		"binary25":  nil,                       // filled below: 25 × card 2
		"mixed130":  {2, 3, 5, 7, 64, 32, 17},  // total 130, three words
		"lopsided":  {1, 1, 1, 1, 1, 1, 60, 1}, // total 67
		"card3_x25": nil,                       // 25 × card 3 (the bench shape)
	}
	b25 := make([]int, 25)
	c25 := make([]int, 25)
	for i := range b25 {
		b25[i], c25[i] = 2, 3
	}
	mixes["binary25"], mixes["card3_x25"] = b25, c25
	return mixes
}

// TestPackedMatchesRowMatches pins the popcount kernel against the
// per-feature oracle on every pair of random rows, across the boundary
// cardinality mixes and missing-value densities.
func TestPackedMatchesRowMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for name, card := range boundaryCardMixes() {
		for _, missing := range []float64{0, 0.2, 1} {
			rows := packedRandomRows(rng, 40, card, missing)
			p := PackRows(rows)
			if p == nil {
				t.Fatalf("%s: PackRows declined packable rows", name)
			}
			if p.N() != len(rows) || p.D() != len(card) {
				t.Fatalf("%s: packed shape %d×%d, want %d×%d", name, p.N(), p.D(), len(rows), len(card))
			}
			for i := range rows {
				for j := range rows {
					want := RowMatches(rows[i], rows[j])
					if got := p.Matches(i, j); got != want {
						t.Fatalf("%s missing=%v: Matches(%d,%d) = %d, RowMatches = %d",
							name, missing, i, j, got, want)
					}
				}
			}
		}
	}
}

// TestPackRowsDeclines pins the fallback conditions: rows the packed layout
// cannot represent faithfully (or profitably) must return nil so callers
// keep the unpacked kernel's exact semantics.
func TestPackRowsDeclines(t *testing.T) {
	if PackRows(nil) != nil {
		t.Error("PackRows(nil) should decline")
	}
	if PackRows([][]int{{}}) != nil {
		t.Error("PackRows of zero-width rows should decline")
	}
	if PackRows([][]int{{0, 1}, {0}}) != nil {
		t.Error("PackRows of ragged rows should decline")
	}
	if PackRows([][]int{{0}, {-7}}) != nil {
		t.Error("PackRows of a negative non-Missing code should decline")
	}
	// One feature spanning > maxPackedBits values.
	if PackRows([][]int{{maxPackedBits + 1}, {0}}) != nil {
		t.Error("PackRows beyond maxPackedBits should decline")
	}
	// d=2 features of cardinality 65 each: 3 words for 2 features — the
	// packed row grew past the unpacked one, no win.
	if PackRows([][]int{{64, 64}, {0, 0}}) != nil {
		t.Error("PackRows should decline when words outgrow features")
	}
	// All-Missing rows pack (to rows that match nothing) when wide enough to
	// pay: 2 features, 0 observed values → 1 word < 2 features.
	rows := [][]int{{categorical.Missing, categorical.Missing}, {categorical.Missing, categorical.Missing}}
	p := PackRows(rows)
	if p == nil {
		t.Fatal("all-Missing rows should pack")
	}
	if got := p.Matches(0, 1); got != 0 {
		t.Fatalf("all-Missing Matches = %d, want 0", got)
	}
}

// TestPackedPairwiseMatchesUnpacked is the packed-vs-unpacked equivalence
// property: over random cardinality mixes (including the word-boundary
// widths) the auto-selecting fills must produce bit-for-bit the floats of
// the unpacked oracle, for both the similarity and dissimilarity forms, at
// several worker counts.
func TestPackedPairwiseMatchesUnpacked(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for name, card := range boundaryCardMixes() {
		rows := packedRandomRows(rng, 60, card, 0.1)
		for _, workers := range []int{1, 2, 0} {
			sim, simOracle := PairwiseCondensed(rows, workers), PairwiseCondensedUnpacked(rows, workers)
			dis, disOracle := DissimilarityCondensed(rows, workers), DissimilarityCondensedUnpacked(rows, workers)
			for i := 0; i < len(rows); i++ {
				for j := i + 1; j < len(rows); j++ {
					if got, want := sim.At(i, j), simOracle.At(i, j); got != want {
						t.Fatalf("%s workers=%d: similarity (%d,%d) packed %v != unpacked %v",
							name, workers, i, j, got, want)
					}
					if got, want := dis.At(i, j), disOracle.At(i, j); got != want {
						t.Fatalf("%s workers=%d: dissimilarity (%d,%d) packed %v != unpacked %v",
							name, workers, i, j, got, want)
					}
				}
			}
		}
	}
}

// TestMeanPairwisePackedEquivalence pins MeanPairwise's packed accumulation
// against the unpacked fold it replaced: same per-pair quotients, same chunk
// boundaries, same fold order — so the float must be identical, not just
// close.
func TestMeanPairwisePackedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for name, card := range boundaryCardMixes() {
		rows := packedRandomRows(rng, 50, card, 0.15)
		n, d := len(rows), len(card)
		pairs := n * (n - 1) / 2
		// The pre-packing implementation, verbatim: RowMatches over the same
		// tiled pair order with the same ordered reduction.
		want, err := parallel.MapReduce(parallel.Gate(1, pairs*d), pairs, 0.0,
			func(lo, hi int) (float64, error) {
				i, j := pairAt(n, lo)
				ri := rows[i]
				var s float64
				for t := lo; t < hi; t++ {
					s += float64(RowMatches(ri, rows[j])) / float64(d)
					if j++; j == n {
						i++
						j = i + 1
						ri = rows[i]
					}
				}
				return s, nil
			},
			func(acc, next float64) float64 { return acc + next })
		if err != nil {
			t.Fatal(err)
		}
		want /= float64(pairs)
		for _, workers := range []int{1, 2, 0} {
			if got := MeanPairwise(rows, workers); got != want {
				t.Fatalf("%s: MeanPairwise(workers=%d) = %v, unpacked fold = %v", name, workers, got, want)
			}
		}
	}
}
