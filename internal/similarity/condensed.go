package similarity

import (
	"fmt"
	"math"

	"mcdc/internal/parallel"
)

// Condensed is a packed symmetric n×n matrix with a constant diagonal: only
// the n·(n−1)/2 strict-upper-triangle entries are stored, in row-major order
// (0,1), (0,2), …, (0,n−1), (1,2), …, (n−2,n−1). Compared to the dense
// [][]float64 representation it halves memory, removes the per-row slice
// headers, and keeps each row's entries contiguous — which is what lets the
// pairwise fills and the linkage nearest-pair scans stream through cache
// lines instead of pointer-chasing rows.
//
// At and Set are O(1); both accept (i,j) in either order. The diagonal is
// implicit: At(i,i) returns the constant passed to NewCondensed (1 for
// similarity matrices, 0 for dissimilarity matrices).
type Condensed struct {
	n    int
	diag float64
	data []float64
}

// NewCondensed allocates an n×n condensed matrix whose off-diagonal entries
// are zero and whose (implicit, constant) diagonal is diag.
func NewCondensed(n int, diag float64) *Condensed {
	if n < 0 {
		panic(fmt.Sprintf("similarity: negative condensed dimension %d", n))
	}
	return &Condensed{n: n, diag: diag, data: make([]float64, n*(n-1)/2)}
}

// N reports the matrix dimension.
func (c *Condensed) N() int { return c.n }

// Diag reports the implicit diagonal value.
func (c *Condensed) Diag() float64 { return c.diag }

// Pairs reports the number of stored entries, n·(n−1)/2.
func (c *Condensed) Pairs() int { return len(c.data) }

// rowStart returns the flat index of entry (i, i+1), the first stored entry
// of row i. rowStart(n-1) == Pairs() (row n−1 stores nothing).
func (c *Condensed) rowStart(i int) int {
	return i * (2*c.n - i - 1) / 2
}

// offset maps an off-diagonal (i, j) to its flat index.
func (c *Condensed) offset(i, j int) int {
	if i > j {
		i, j = j, i
	}
	return c.rowStart(i) + (j - i - 1)
}

// At returns the (i, j) entry; At(i, i) is the constant diagonal.
func (c *Condensed) At(i, j int) float64 {
	if i == j {
		return c.diag
	}
	return c.data[c.offset(i, j)]
}

// Set stores v at (i, j) (and, by symmetry, (j, i)). Writing the diagonal is
// only legal when v equals the constant diagonal (a no-op); anything else
// panics, because the packed layout cannot represent it.
func (c *Condensed) Set(i, j int, v float64) {
	if i == j {
		if v != c.diag {
			panic(fmt.Sprintf("similarity: Condensed.Set(%d, %d, %v) would break the constant diagonal %v", i, j, v, c.diag))
		}
		return
	}
	c.data[c.offset(i, j)] = v
}

// UpperRow returns the stored entries (i, i+1), …, (i, n−1) of row i as a
// contiguous sub-slice of the backing array. Mutating it mutates the matrix;
// it exists so hot scans (linkage's nearest-pair search) can stream a row
// without per-entry index arithmetic.
func (c *Condensed) UpperRow(i int) []float64 {
	return c.data[c.rowStart(i):c.rowStart(i+1)]
}

// UpperRowInto copies the stored entries (i, i+1), …, (i, n−1) of row i into
// dst and returns the filled prefix. UpperRow already returns an
// allocation-free *view* — use it when a view suffices (stats.RowSums and
// the linkage scans do). UpperRowInto is the copying counterpart for callers
// that need the values somewhere else: a caller-owned destination (Dense's
// output rows), or a snapshot that stays stable while the matrix is mutated
// (the linkage tie-heavy test harness reuses one scratch across rows, so a
// whole-matrix copy performs zero per-row allocations). dst must have
// capacity for n−1−i entries; reslicing panics otherwise, like any
// fixed-capacity destination.
func (c *Condensed) UpperRowInto(i int, dst []float64) []float64 {
	row := c.data[c.rowStart(i):c.rowStart(i+1)]
	dst = dst[:len(row)]
	copy(dst, row)
	return dst
}

// Clone returns an independent deep copy — the working-copy primitive for
// algorithms (linkage) that destructively update the matrix.
func (c *Condensed) Clone() *Condensed {
	return &Condensed{n: c.n, diag: c.diag, data: append([]float64(nil), c.data...)}
}

// Mean returns the mean of the stored (off-diagonal) entries, or the diagonal
// value when n < 2 (a singleton is perfectly self-similar). The sum runs in
// flat-index order, so it is deterministic regardless of how the matrix was
// filled.
func (c *Condensed) Mean() float64 {
	if len(c.data) == 0 {
		return c.diag
	}
	var s float64
	for _, v := range c.data {
		s += v
	}
	return s / float64(len(c.data))
}

// Dense expands to the classic [][]float64 representation, fanned out over at
// most `workers` goroutines (≤ 0 → GOMAXPROCS). Each output row is written by
// exactly one goroutine, so the expansion is identical at any parallelism
// level. This is the compatibility shim for dense-matrix consumers; new code
// should stay condensed.
func (c *Condensed) Dense(workers int) [][]float64 {
	out := make([][]float64, c.n)
	parallel.Must(parallel.ForEachChunk(parallel.Gate(workers, c.n*c.n), c.n, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			row := make([]float64, c.n)
			row[i] = c.diag
			for j := 0; j < i; j++ {
				row[j] = c.data[c.offset(j, i)]
			}
			c.UpperRowInto(i, row[i+1:])
			out[i] = row
		}
		return nil
	}))
	return out
}

// CondensedFromDense packs a symmetric dense matrix with a constant diagonal
// into condensed form, reading the strict upper triangle (the lower triangle
// is assumed symmetric and ignored) and taking the diagonal constant from
// m[0][0]. It errors on non-square input.
func CondensedFromDense(m [][]float64, workers int) (*Condensed, error) {
	n := len(m)
	for i, row := range m {
		if len(row) != n {
			return nil, fmt.Errorf("similarity: dense matrix not square at row %d (%d columns, want %d)", i, len(row), n)
		}
	}
	diag := 0.0
	if n > 0 {
		diag = m[0][0]
	}
	c := NewCondensed(n, diag)
	parallel.Must(parallel.ForEachChunk(parallel.Gate(workers, n*n/2), n, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			copy(c.UpperRow(i), m[i][i+1:])
		}
		return nil
	}))
	return c, nil
}

// pairAt inverts rowStart: it maps a flat triangle index t to its (i, j)
// coordinates. The quadratic-formula estimate is corrected by an integer
// search, so the result is exact for any n the backing slice can hold.
func pairAt(n, t int) (i, j int) {
	i = int((float64(2*n-1) - math.Sqrt(float64(2*n-1)*float64(2*n-1)-8*float64(t))) / 2)
	if i < 0 {
		i = 0
	}
	if i > n-2 {
		i = n - 2
	}
	rowStart := func(i int) int { return i * (2*n - i - 1) / 2 }
	for i > 0 && rowStart(i) > t {
		i--
	}
	for i < n-2 && rowStart(i+1) <= t {
		i++
	}
	return i, i + 1 + (t - rowStart(i))
}
