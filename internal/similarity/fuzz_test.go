package similarity

import (
	"testing"
)

// FuzzPairAt fuzzes the condensed triangle index inversion that seeds every
// parallel pairwise chunk: for any dimension n and flat index t, pairAt must
// return an in-bounds upper-triangle pair (i, j) whose forward flat index is
// exactly t. The float-sqrt seed estimate is only a starting guess — the
// integer fix-up loops must land it exactly, including at the row boundaries
// where the estimate is off by one.
func FuzzPairAt(f *testing.F) {
	f.Add(2, 0)
	f.Add(3, 2)
	f.Add(65, 64)
	f.Add(2000, 1998999) // last pair of the bench shape
	f.Add(46342, 1073767410)
	f.Fuzz(func(t *testing.T, n, flat int) {
		if n < 2 || n > 1<<16 {
			t.Skip()
		}
		pairs := n * (n - 1) / 2
		if flat < 0 {
			flat = ^flat
		}
		flat %= pairs
		i, j := pairAt(n, flat)
		if i < 0 || j <= i || j >= n {
			t.Fatalf("pairAt(%d, %d) = (%d, %d): out of the upper triangle", n, flat, i, j)
		}
		if fwd := i*(2*n-i-1)/2 + (j - i - 1); fwd != flat {
			t.Fatalf("pairAt(%d, %d) = (%d, %d): forward index %d", n, flat, i, j, fwd)
		}
	})
}

// FuzzPackRows fuzzes the bit-packing front door with arbitrary row bytes:
// whenever PackRows accepts the rows, every packed pair count must equal the
// unpacked RowMatches oracle; when it declines, that must be for one of the
// documented reasons (checked loosely: decline is always legal, silent
// divergence never is).
func FuzzPackRows(f *testing.F) {
	f.Add(3, []byte{0, 1, 2, 1, 0, 2})
	f.Add(1, []byte{255})
	f.Add(2, []byte{63, 64, 65, 0})
	f.Fuzz(func(t *testing.T, d int, cells []byte) {
		if d < 1 || d > 64 || len(cells) < d {
			t.Skip()
		}
		n := len(cells) / d
		if n < 2 {
			t.Skip()
		}
		if n > 64 {
			n = 64
		}
		rows := make([][]int, n)
		for i := range rows {
			row := make([]int, d)
			for r := range row {
				// Map bytes to codes including Missing (-1): 0xff → Missing.
				v := int(cells[i*d+r])
				if v == 255 {
					v = -1
				}
				row[r] = v
			}
			rows[i] = row
		}
		p := PackRows(rows)
		if p == nil {
			return // declining is always allowed; diverging is not
		}
		for i := range rows {
			for j := range rows {
				if got, want := p.Matches(i, j), RowMatches(rows[i], rows[j]); got != want {
					t.Fatalf("Matches(%d,%d) = %d, RowMatches = %d (rows %v, %v)",
						i, j, got, want, rows[i], rows[j])
				}
			}
		}
	})
}
