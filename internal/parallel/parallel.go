// Package parallel is the shared bounded-concurrency execution layer of the
// repository. Every CPU-bound fan-out in the MCDC pipeline (pairwise
// similarity matrices, per-cluster feature-weight refreshes, CAME assignment
// sweeps, ensemble MGCPL runs, one-hot expansion) runs through the primitives
// here rather than hand-rolled goroutines, which gives them a uniform
// contract:
//
//   - Bounded workers. At most W goroutines run the callback at a time; W ≤ 0
//     resolves to runtime.GOMAXPROCS(0) and W = 1 executes inline on the
//     calling goroutine with no concurrency at all.
//   - Deterministic results. Work is identified by index; callbacks write
//     only to their own index (or chunk) and chunk boundaries depend only on
//     the problem size, never on W. Reductions fold per-chunk values in chunk
//     order. Together this makes every computation in the repository
//     bit-for-bit identical at any parallelism level.
//   - First-error semantics. The returned error is the one produced by the
//     lowest failing index, exactly what a sequential loop that stops at the
//     first failure would report. Once any callback fails, no new work is
//     dispatched (in-flight callbacks finish). Whether indices above the
//     failing one ran is unspecified, so per-index side effects must be
//     independent.
//   - Panic containment. A panic inside a callback is captured and returned
//     as a *PanicError instead of crashing sibling workers.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// maxChunks bounds how many contiguous chunks ForEachChunk and MapReduce
// split a range into, and minChunkSize keeps chunks from degenerating into
// per-item dispatch on small inputs. Both are constants — chunk boundaries
// must depend only on the problem size n, never on the worker count, or
// per-chunk reductions would change with the machine. maxChunks is therefore
// also the ceiling on the effective parallelism of chunked operations; 256
// comfortably covers current hardware while keeping per-chunk accumulator
// allocations (e.g. CAME's mode counts) bounded.
const (
	maxChunks    = 256
	minChunkSize = 16
)

// smallWork is the Gate threshold: below this many elementary operations the
// fan-out overhead outweighs the saved compute.
const smallWork = 1 << 12

// Gate returns 1 (inline execution) when a fan-out's total work — an
// approximate count of elementary operations, e.g. rows×features — is too
// small to amortize goroutine dispatch, and workers unchanged otherwise.
// The gate depends only on the problem shape, never on the machine, so it
// preserves the determinism contract trivially (results are identical at
// any worker count anyway; this only avoids pointless dispatch).
func Gate(workers, work int) int {
	if work < smallWork {
		return 1
	}
	return workers
}

// Resolve maps a Workers knob to a concrete worker count: values ≥ 1 are used
// as given, anything else resolves to runtime.GOMAXPROCS(0).
func Resolve(workers int) int {
	if workers >= 1 {
		return workers
	}
	return runtime.GOMAXPROCS(0)
}

// PanicError is the error returned when a worker callback panics. The
// original panic value and the worker's stack are preserved for diagnosis.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: callback panicked: %v\n%s", e.Value, e.Stack)
}

// Must is the companion for fan-outs whose callbacks cannot fail: any error
// from them is a recovered worker panic (*PanicError), so Must re-raises it
// rather than letting the caller continue on silently incomplete results.
func Must(err error) {
	if err != nil {
		panic(err)
	}
}

// chunkSize returns the workers-independent chunk length for n items: n is
// split into at most maxChunks chunks of at least minChunkSize items.
func chunkSize(n int) int {
	size := (n + maxChunks - 1) / maxChunks
	if size < minChunkSize {
		size = minChunkSize
	}
	return size
}

// run dispatches tasks 0..tasks-1 to at most `workers` goroutines and returns
// the error of the lowest failing task. Tasks are claimed in index order via
// an atomic cursor, and a claimed task is abandoned only when a failure
// strictly below it is already recorded — so the lowest failing task always
// executes and records its own error, making the returned error identical to
// what a sequential early-exit loop reports.
func run(workers, tasks int, fn func(task int) error) error {
	if tasks <= 0 {
		return nil
	}
	workers = Resolve(workers)
	if workers > tasks {
		workers = tasks
	}

	var (
		mu       sync.Mutex
		firstIdx int
		firstErr error
	)
	record := func(task int, err error) {
		mu.Lock()
		if firstErr == nil || task < firstIdx {
			firstIdx, firstErr = task, err
		}
		mu.Unlock()
	}
	// skip reports whether a claimed task may be abandoned: only when a
	// failure below it is already recorded. Abandoning on ANY failure would
	// let a descheduled worker drop a lower-index task whose error the
	// contract promises to report — the lowest failing task must always run.
	skip := func(task int) bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil && firstIdx < task
	}
	safeCall := func(task int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				buf := make([]byte, 4096)
				buf = buf[:runtime.Stack(buf, false)]
				err = &PanicError{Value: r, Stack: buf}
			}
		}()
		return fn(task)
	}

	if workers == 1 {
		// Inline fast path: no goroutines, sequential early-exit semantics.
		for task := 0; task < tasks; task++ {
			if err := safeCall(task); err != nil {
				return err
			}
		}
		return nil
	}

	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				task := int(cursor.Add(1)) - 1
				if task >= tasks || skip(task) {
					return
				}
				if err := safeCall(task); err != nil {
					record(task, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	return firstErr
}

// ForEach runs fn(i) for every i in [0, n) on at most `workers` goroutines
// (workers ≤ 0 → GOMAXPROCS). fn must confine its side effects to data owned
// by index i. The returned error follows first-error semantics.
func ForEach(workers, n int, fn func(i int) error) error {
	return run(workers, n, fn)
}

// ForEachChunk splits [0, n) into contiguous chunks and runs fn(lo, hi) for
// each. Chunk boundaries depend only on n — never on workers — so code that
// accumulates per-chunk partial results reproduces exactly at any
// parallelism level.
func ForEachChunk(workers, n int, fn func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	size := chunkSize(n)
	chunks := (n + size - 1) / size
	return run(workers, chunks, func(c int) error {
		lo := c * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		return fn(lo, hi)
	})
}

// MapReduce maps each chunk of [0, n) to a value and folds the per-chunk
// values in chunk order: acc = reduce(acc, v_0), acc = reduce(acc, v_1), …
// Because the chunking is workers-independent and the fold is ordered, the
// result is bit-for-bit reproducible at any parallelism level even for
// non-associative reductions (e.g. floating-point sums).
func MapReduce[T any](workers, n int, zero T, mapFn func(lo, hi int) (T, error), reduce func(acc, next T) T) (T, error) {
	if n <= 0 {
		return zero, nil
	}
	size := chunkSize(n)
	chunks := (n + size - 1) / size
	vals := make([]T, chunks)
	err := run(workers, chunks, func(c int) error {
		lo := c * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		v, err := mapFn(lo, hi)
		if err != nil {
			return err
		}
		vals[c] = v
		return nil
	})
	if err != nil {
		return zero, err
	}
	acc := zero
	for _, v := range vals {
		acc = reduce(acc, v)
	}
	return acc, nil
}

// Pool is a reusable handle carrying a resolved worker count, for call sites
// that thread one parallelism knob through several phases.
type Pool struct {
	workers int
}

// NewPool builds a pool of the given size (≤ 0 → GOMAXPROCS).
func NewPool(workers int) *Pool {
	return &Pool{workers: Resolve(workers)}
}

// Workers reports the resolved worker count.
func (p *Pool) Workers() int { return p.workers }

// ForEach runs fn over [0, n) with the pool's worker bound.
func (p *Pool) ForEach(n int, fn func(i int) error) error {
	return ForEach(p.workers, n, fn)
}

// ForEachChunk runs fn over workers-independent chunks of [0, n) with the
// pool's worker bound.
func (p *Pool) ForEachChunk(n int, fn func(lo, hi int) error) error {
	return ForEachChunk(p.workers, n, fn)
}
