package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(4); got != 4 {
		t.Errorf("Resolve(4) = %d", got)
	}
	if got := Resolve(1); got != 1 {
		t.Errorf("Resolve(1) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	for _, n := range []int{0, -1, -100} {
		if got := Resolve(n); got != want {
			t.Errorf("Resolve(%d) = %d, want GOMAXPROCS %d", n, got, want)
		}
	}
}

func TestGate(t *testing.T) {
	if got := Gate(8, smallWork-1); got != 1 {
		t.Errorf("Gate below threshold = %d, want 1", got)
	}
	if got := Gate(8, smallWork); got != 8 {
		t.Errorf("Gate at threshold = %d, want 8", got)
	}
	if got := Gate(0, smallWork*100); got != 0 {
		t.Errorf("Gate must pass the workers knob through unresolved, got %d", got)
	}
}

func TestPoolSizing(t *testing.T) {
	if p := NewPool(3); p.Workers() != 3 {
		t.Errorf("NewPool(3).Workers() = %d", p.Workers())
	}
	if p := NewPool(0); p.Workers() != runtime.GOMAXPROCS(0) {
		t.Errorf("NewPool(0).Workers() = %d, want GOMAXPROCS", p.Workers())
	}

	// The concurrency bound must hold: with W=2 never more than 2 callbacks
	// in flight at once.
	const tasks = 64
	var inFlight, peak atomic.Int64
	err := ForEach(2, tasks, func(i int) error {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		runtime.Gosched()
		inFlight.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak.Load() > 2 {
		t.Errorf("peak concurrency %d with 2 workers", peak.Load())
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		const n = 1000
		hits := make([]int32, n)
		err := ForEach(workers, n, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForEachChunkBoundariesWorkersIndependent(t *testing.T) {
	// The chunk boundaries must be a function of n alone: record them at two
	// worker counts and compare.
	record := func(workers, n int) map[[2]int]bool {
		var mu sync.Mutex
		seen := map[[2]int]bool{}
		if err := ForEachChunk(workers, n, func(lo, hi int) error {
			mu.Lock()
			seen[[2]int{lo, hi}] = true
			mu.Unlock()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return seen
	}
	for _, n := range []int{1, 7, 63, 64, 65, 1000, 4096} {
		a, b := record(1, n), record(8, n)
		if len(a) != len(b) {
			t.Fatalf("n=%d: %d chunks at W=1, %d at W=8", n, len(a), len(b))
		}
		covered := 0
		for ch := range a {
			if !b[ch] {
				t.Fatalf("n=%d: chunk %v differs between worker counts", n, ch)
			}
			covered += ch[1] - ch[0]
		}
		if covered != n {
			t.Fatalf("n=%d: chunks cover %d items", n, covered)
		}
	}
}

func TestFirstErrorSemantics(t *testing.T) {
	errBoom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		// Indices 700 and 30 both fail; the reported error must always be the
		// lowest one, exactly as a sequential early-exit loop would report.
		// The high index fails instantly while the low one yields first,
		// maximizing the chance of a racing scheduler recording the high
		// failure before the low task runs — a claimed low task must still
		// execute rather than be abandoned. Repeated to give the race a
		// chance to manifest.
		for rep := 0; rep < 200; rep++ {
			err := ForEach(workers, 1000, func(i int) error {
				if i == 700 {
					return fmt.Errorf("high %w", errBoom)
				}
				if i == 30 {
					runtime.Gosched()
					return fmt.Errorf("low %w", errBoom)
				}
				return nil
			})
			if err == nil || !strings.HasPrefix(err.Error(), "low ") {
				t.Fatalf("workers=%d rep=%d: err = %v, want the lowest-index failure", workers, rep, err)
			}
			if !errors.Is(err, errBoom) {
				t.Fatalf("workers=%d: error chain broken: %v", workers, err)
			}
		}
	}
}

func TestErrorStopsDispatch(t *testing.T) {
	// After a failure, no new work should be dispatched (in-flight tasks may
	// finish). With W=2 and the failure at index 0, far fewer than all tasks
	// should run.
	var ran atomic.Int64
	err := ForEach(2, 1_000_000, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if ran.Load() > 1000 {
		t.Errorf("%d tasks ran after early failure", ran.Load())
	}
}

func TestPanicRecovery(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ForEach(workers, 100, func(i int) error {
			if i == 42 {
				panic("kaboom")
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Value != "kaboom" {
			t.Errorf("panic value = %v", pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Error("panic stack not captured")
		}
	}
}

func TestMapReduceDeterministicOrder(t *testing.T) {
	// A deliberately non-associative reduction (string concatenation of chunk
	// ranges) must come out identical at any parallelism, because chunks are
	// folded in chunk order.
	build := func(workers int) string {
		s, err := MapReduce(workers, 1000, "",
			func(lo, hi int) (string, error) { return fmt.Sprintf("[%d,%d)", lo, hi), nil },
			func(acc, next string) string { return acc + next })
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	want := build(1)
	for _, w := range []int{2, 4, 16} {
		if got := build(w); got != want {
			t.Errorf("workers=%d: fold order differs:\n%s\n%s", w, got, want)
		}
	}
}

func TestMapReduceSum(t *testing.T) {
	sum, err := MapReduce(4, 10_000, 0,
		func(lo, hi int) (int, error) {
			s := 0
			for i := lo; i < hi; i++ {
				s += i
			}
			return s, nil
		},
		func(acc, next int) int { return acc + next })
	if err != nil {
		t.Fatal(err)
	}
	if want := 10_000 * 9999 / 2; sum != want {
		t.Errorf("sum = %d, want %d", sum, want)
	}
}

func TestEmptyAndTinyInputs(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { t.Error("called"); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForEachChunk(4, 0, func(int, int) error { t.Error("called"); return nil }); err != nil {
		t.Fatal(err)
	}
	got := 0
	if err := ForEach(8, 1, func(i int) error { got++; return nil }); err != nil || got != 1 {
		t.Fatalf("n=1: got=%d err=%v", got, err)
	}
}

// TestConcurrentForEachStress drives many ForEach calls from concurrent
// goroutines — the shape the race detector needs to certify that the pool's
// internal state (cursor, error fold) is properly synchronized.
func TestConcurrentForEachStress(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				out := make([]int, 200)
				err := ForEach(4, len(out), func(i int) error {
					out[i] = i * g
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				for i, v := range out {
					if v != i*g {
						t.Errorf("g=%d rep=%d: out[%d] = %d", g, rep, i, v)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestPoolForEachChunk(t *testing.T) {
	p := NewPool(4)
	n := 500
	out := make([]int, n)
	if err := p.ForEachChunk(n, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			out[i] = i
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	if err := p.ForEach(10, func(i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}
