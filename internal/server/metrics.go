package server

import (
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"
)

// metrics holds the daemon's counters. Everything is an atomic — the assign
// hot path never takes a lock to record an observation.
type metrics struct {
	assignTotal  atomic.Int64 // single assignments served
	batchRows    atomic.Int64 // rows served through /assign/batch
	assignErrors atomic.Int64
	latencyNanos atomic.Int64 // cumulative assignment handler latency
	latencyCount atomic.Int64
	relearns     atomic.Int64 // background model swaps
	http         *httpMetrics // per-endpoint request/error counters
}

func (m *metrics) observe(d time.Duration) {
	m.latencyNanos.Add(int64(d))
	m.latencyCount.Add(1)
}

// httpMetrics counts requests and error responses per registered route, so
// /metrics reflects every endpoint's traffic — not only the assign path.
// Routes register once at mux construction; after that the map is read-only
// and the counters are atomics, so recording stays lock-free.
type httpMetrics struct {
	order  []string
	routes map[string]*routeCounter
}

type routeCounter struct {
	requests atomic.Int64
	errors   atomic.Int64 // responses with status ≥ 400
}

func newHTTPMetrics() *httpMetrics {
	return &httpMetrics{routes: make(map[string]*routeCounter)}
}

// route registers (or returns) the counter pair for a mux pattern.
func (h *httpMetrics) route(pattern string) *routeCounter {
	if rc, ok := h.routes[pattern]; ok {
		return rc
	}
	rc := &routeCounter{}
	h.routes[pattern] = rc
	h.order = append(h.order, pattern)
	return rc
}

// instrument wraps a handler so the route's request/error counters track it.
func (h *httpMetrics) instrument(pattern string, fn http.HandlerFunc) http.HandlerFunc {
	rc := h.route(pattern)
	return func(w http.ResponseWriter, r *http.Request) {
		rc.requests.Add(1)
		sw := &statusWriter{ResponseWriter: w}
		fn(sw, r)
		if sw.status() >= http.StatusBadRequest {
			rc.errors.Add(1)
		}
	}
}

// write emits the per-endpoint counters under the given metric names.
func (h *httpMetrics) write(w io.Writer, reqName, errName string) {
	fmt.Fprintf(w, "# HELP %s HTTP requests received, by endpoint.\n# TYPE %s counter\n", reqName, reqName)
	for _, pat := range h.order {
		fmt.Fprintf(w, "%s{endpoint=%q} %d\n", reqName, pat, h.routes[pat].requests.Load())
	}
	fmt.Fprintf(w, "# HELP %s HTTP error responses (status >= 400), by endpoint.\n# TYPE %s counter\n", errName, errName)
	for _, pat := range h.order {
		fmt.Fprintf(w, "%s{endpoint=%q} %d\n", errName, pat, h.routes[pat].errors.Load())
	}
}

// statusWriter records the response status for the error counters. A handler
// that writes a body without an explicit WriteHeader implies 200.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (sw *statusWriter) WriteHeader(code int) {
	if !sw.wrote {
		sw.code, sw.wrote = code, true
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if !sw.wrote {
		sw.code, sw.wrote = http.StatusOK, true
	}
	return sw.ResponseWriter.Write(b)
}

func (sw *statusWriter) status() int {
	if !sw.wrote {
		return http.StatusOK
	}
	return sw.code
}

// write emits the counters in Prometheus text exposition format, together
// with the per-model gauges read live from the registry and session pool.
// adm may be nil (admission control disabled); the valve series still emit
// as zeros so dashboards and the gateway aggregator see a uniform shape.
func (m *metrics) write(w io.Writer, reg *registry, pool *sessionPool, adm *admission, uptime time.Duration) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("mcdcd_assign_total", "Single-row assignments served.", m.assignTotal.Load())
	counter("mcdcd_assign_batch_rows_total", "Rows served through batch assignment.", m.batchRows.Load())
	counter("mcdcd_assign_errors_total", "Assignment requests rejected.", m.assignErrors.Load())
	counter("mcdcd_relearn_total", "Background re-learn model swaps.", m.relearns.Load())
	var shed, admittedN, depth, inflight int64
	if adm != nil {
		shed, admittedN = adm.shed.Load(), adm.admitted.Load()
		depth, inflight = adm.depth(), int64(adm.inflight())
	}
	counter("mcdcd_shed_total", "Assignment requests shed by admission control (429).", shed)
	counter("mcdcd_admitted_total", "Assignment requests admitted past the valve.", admittedN)
	gauge("mcdcd_queue_depth", "Assignment requests waiting for an in-flight slot.", depth)
	gauge("mcdcd_inflight", "Assignment requests currently executing.", inflight)
	counter("mcdcd_session_drift_total", "Session assignments below the drift similarity threshold.", pool.lowSimTotal())
	counter("mcdcd_sessions_evicted_total", "Streaming sessions evicted by the idle TTL sweeper.", pool.evicted.Load())
	counter("mcdcd_sessions_restored_total", "Streaming sessions paged in from checkpoints.", pool.restored.Load())
	counter("mcdcd_session_checkpoints_total", "Session checkpoint files written.", pool.checkpoints.Load())

	fmt.Fprintf(w, "# HELP mcdcd_assign_latency_seconds_sum Cumulative assignment handler latency.\n")
	fmt.Fprintf(w, "# TYPE mcdcd_assign_latency_seconds summary\n")
	fmt.Fprintf(w, "mcdcd_assign_latency_seconds_sum %g\n", time.Duration(m.latencyNanos.Load()).Seconds())
	fmt.Fprintf(w, "mcdcd_assign_latency_seconds_count %d\n", m.latencyCount.Load())

	fmt.Fprintf(w, "# HELP mcdcd_model_epoch Current re-learn epoch of each served model.\n# TYPE mcdcd_model_epoch gauge\n")
	models := reg.all()
	for _, sm := range models {
		fmt.Fprintf(w, "mcdcd_model_epoch{model=%q} %d\n", sm.name, sm.load().Epoch)
	}
	fmt.Fprintf(w, "# HELP mcdcd_model_drift_total Stateless assignments below the drift similarity threshold.\n# TYPE mcdcd_model_drift_total counter\n")
	for _, sm := range models {
		fmt.Fprintf(w, "mcdcd_model_drift_total{model=%q} %d\n", sm.name, sm.lowSim.Load())
	}
	fmt.Fprintf(w, "# HELP mcdcd_model_relearn_total Re-learn swaps of each served model.\n# TYPE mcdcd_model_relearn_total counter\n")
	for _, sm := range models {
		fmt.Fprintf(w, "mcdcd_model_relearn_total{model=%q} %d\n", sm.name, sm.relearns.Load())
	}

	m.http.write(w, "mcdcd_http_requests_total", "mcdcd_http_errors_total")

	fmt.Fprintf(w, "# HELP mcdcd_sessions Live streaming sessions.\n# TYPE mcdcd_sessions gauge\nmcdcd_sessions %d\n", pool.count())
	fmt.Fprintf(w, "# HELP mcdcd_uptime_seconds Daemon uptime.\n# TYPE mcdcd_uptime_seconds gauge\nmcdcd_uptime_seconds %g\n", uptime.Seconds())
}
