package server

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// metrics holds the daemon's counters. Everything is an atomic — the assign
// hot path never takes a lock to record an observation.
type metrics struct {
	assignTotal  atomic.Int64 // single assignments served
	batchRows    atomic.Int64 // rows served through /assign/batch
	assignErrors atomic.Int64
	latencyNanos atomic.Int64 // cumulative assignment handler latency
	latencyCount atomic.Int64
	relearns     atomic.Int64 // background model swaps
}

func (m *metrics) observe(d time.Duration) {
	m.latencyNanos.Add(int64(d))
	m.latencyCount.Add(1)
}

// write emits the counters in Prometheus text exposition format, together
// with the per-model gauges read live from the registry and session pool.
func (m *metrics) write(w io.Writer, reg *registry, pool *sessionPool, uptime time.Duration) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("mcdcd_assign_total", "Single-row assignments served.", m.assignTotal.Load())
	counter("mcdcd_assign_batch_rows_total", "Rows served through batch assignment.", m.batchRows.Load())
	counter("mcdcd_assign_errors_total", "Assignment requests rejected.", m.assignErrors.Load())
	counter("mcdcd_relearn_total", "Background re-learn model swaps.", m.relearns.Load())
	counter("mcdcd_session_drift_total", "Session assignments below the drift similarity threshold.", pool.lowSimTotal())

	fmt.Fprintf(w, "# HELP mcdcd_assign_latency_seconds_sum Cumulative assignment handler latency.\n")
	fmt.Fprintf(w, "# TYPE mcdcd_assign_latency_seconds summary\n")
	fmt.Fprintf(w, "mcdcd_assign_latency_seconds_sum %g\n", time.Duration(m.latencyNanos.Load()).Seconds())
	fmt.Fprintf(w, "mcdcd_assign_latency_seconds_count %d\n", m.latencyCount.Load())

	fmt.Fprintf(w, "# HELP mcdcd_model_epoch Current re-learn epoch of each served model.\n# TYPE mcdcd_model_epoch gauge\n")
	models := reg.all()
	for _, sm := range models {
		fmt.Fprintf(w, "mcdcd_model_epoch{model=%q} %d\n", sm.name, sm.load().Epoch)
	}
	fmt.Fprintf(w, "# HELP mcdcd_model_drift_total Stateless assignments below the drift similarity threshold.\n# TYPE mcdcd_model_drift_total counter\n")
	for _, sm := range models {
		fmt.Fprintf(w, "mcdcd_model_drift_total{model=%q} %d\n", sm.name, sm.lowSim.Load())
	}
	fmt.Fprintf(w, "# HELP mcdcd_model_relearn_total Re-learn swaps of each served model.\n# TYPE mcdcd_model_relearn_total counter\n")
	for _, sm := range models {
		fmt.Fprintf(w, "mcdcd_model_relearn_total{model=%q} %d\n", sm.name, sm.relearns.Load())
	}

	fmt.Fprintf(w, "# HELP mcdcd_sessions Live streaming sessions.\n# TYPE mcdcd_sessions gauge\nmcdcd_sessions %d\n", pool.count())
	fmt.Fprintf(w, "# HELP mcdcd_uptime_seconds Daemon uptime.\n# TYPE mcdcd_uptime_seconds gauge\nmcdcd_uptime_seconds %g\n", uptime.Seconds())
}
