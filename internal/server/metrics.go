package server

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"
)

// metrics holds the daemon's counters and latency histograms. Everything is
// an atomic — the assign hot path never takes a lock to record an
// observation, and the histograms (histogram.go) are fixed atomic arrays, so
// recording also never allocates.
type metrics struct {
	assignTotal  atomic.Int64 // single assignments served
	batchRows    atomic.Int64 // rows served through /assign/batch
	assignErrors atomic.Int64
	relearns     atomic.Int64 // background model swaps

	// Per-stage histograms, exported as mcdcd_stage_duration_seconds{stage=...}.
	// assignLat doubles as the legacy mcdcd_assign_latency_seconds family (it
	// was a summary; it is a histogram now, which keeps the _sum/_count series
	// names and adds _bucket).
	assignLat  histogram // stage="assign": one single-row assignment
	queueWait  histogram // stage="queue_wait": admission valve wait
	batchChunk histogram // stage="batch_chunk": one batch chunk fan-out
	checkpoint histogram // stage="checkpoint": one session checkpoint write
	relearnDur histogram // stage="relearn": one successful model re-learn

	http *httpMetrics // per-endpoint request/error/duration
}

func (m *metrics) observe(d time.Duration) { m.assignLat.observe(d) }

// httpMetrics counts requests, error responses, and request duration per
// registered route, so /metrics reflects every endpoint's traffic — not only
// the assign path. Routes register once at mux construction; after that the
// map is read-only and the counters are atomics, so recording stays
// lock-free.
type httpMetrics struct {
	order  []string
	routes map[string]*routeCounter
}

type routeCounter struct {
	requests atomic.Int64
	errors   atomic.Int64 // responses with status ≥ 400
	dur      histogram
}

func newHTTPMetrics() *httpMetrics {
	return &httpMetrics{routes: make(map[string]*routeCounter)}
}

// route registers (or returns) the counter set for a mux pattern.
func (h *httpMetrics) route(pattern string) *routeCounter {
	if rc, ok := h.routes[pattern]; ok {
		return rc
	}
	rc := &routeCounter{}
	h.routes[pattern] = rc
	h.order = append(h.order, pattern)
	return rc
}

// instrument wraps a handler with the per-route counters and the
// request-scoped observability shell: the correlation id is resolved (minted
// or accepted) and echoed on the response before the handler runs — so error
// envelopes and 429 sheds carry it too — and the request is timed, recorded,
// and logged on the way out.
func (h *httpMetrics) instrument(pattern string, o *obs, fn http.HandlerFunc) http.HandlerFunc {
	rc := h.route(pattern)
	return func(w http.ResponseWriter, r *http.Request) {
		rc.requests.Add(1)
		id := ensureRequestID(r, o.ids)
		w.Header().Set(RequestIDHeader, id)
		sw := &statusWriter{ResponseWriter: w}
		started := time.Now()
		fn(sw, r)
		d := time.Since(started)
		rc.dur.observe(d)
		status := sw.status()
		if status >= http.StatusBadRequest {
			rc.errors.Add(1)
		}
		o.logRequest(r.Context(), id, pattern, status, sw.errCode, d)
	}
}

// write emits the per-endpoint counters and duration histograms under the
// given metric names.
func (h *httpMetrics) write(w io.Writer, reqName, errName, durName string) {
	fmt.Fprintf(w, "# HELP %s HTTP requests received, by endpoint.\n# TYPE %s counter\n", reqName, reqName)
	for _, pat := range h.order {
		fmt.Fprintf(w, "%s{endpoint=%q} %d\n", reqName, pat, h.routes[pat].requests.Load())
	}
	fmt.Fprintf(w, "# HELP %s HTTP error responses (status >= 400), by endpoint.\n# TYPE %s counter\n", errName, errName)
	for _, pat := range h.order {
		fmt.Fprintf(w, "%s{endpoint=%q} %d\n", errName, pat, h.routes[pat].errors.Load())
	}
	fmt.Fprintf(w, "# HELP %s HTTP request duration, by endpoint.\n# TYPE %s histogram\n", durName, durName)
	for _, pat := range h.order {
		h.routes[pat].dur.writeTo(w, durName, fmt.Sprintf("endpoint=%q", pat))
	}
}

// statusWriter records the response status (and any stable error code
// writeError emitted) for the error counters and the request log line. A
// handler that writes a body without an explicit WriteHeader implies 200.
type statusWriter struct {
	http.ResponseWriter
	code    int
	wrote   bool
	errCode string // stable code of the error envelope, when one was written
}

func (sw *statusWriter) WriteHeader(code int) {
	if !sw.wrote {
		sw.code, sw.wrote = code, true
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if !sw.wrote {
		sw.code, sw.wrote = http.StatusOK, true
	}
	return sw.ResponseWriter.Write(b)
}

func (sw *statusWriter) status() int {
	if !sw.wrote {
		return http.StatusOK
	}
	return sw.code
}

func (sw *statusWriter) setErrorCode(code string) { sw.errCode = code }

// Unwrap exposes the underlying writer to http.NewResponseController, so
// handlers behind the instrumentation (the streaming binary batch path)
// can still flush per chunk.
func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// writeRuntimeMetrics emits Go runtime visibility under the given prefix:
// goroutine count, heap size, and GC activity — the first things an operator
// checks when a process misbehaves, without needing pprof attached.
func writeRuntimeMetrics(w io.Writer, prefix string) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(w, "# HELP %s_goroutines Live goroutines.\n# TYPE %s_goroutines gauge\n%s_goroutines %d\n",
		prefix, prefix, prefix, runtime.NumGoroutine())
	fmt.Fprintf(w, "# HELP %s_heap_alloc_bytes Heap bytes allocated and in use.\n# TYPE %s_heap_alloc_bytes gauge\n%s_heap_alloc_bytes %d\n",
		prefix, prefix, prefix, ms.HeapAlloc)
	fmt.Fprintf(w, "# HELP %s_gc_pause_seconds_total Cumulative stop-the-world GC pause.\n# TYPE %s_gc_pause_seconds_total counter\n%s_gc_pause_seconds_total %g\n",
		prefix, prefix, prefix, float64(ms.PauseTotalNs)/1e9)
	fmt.Fprintf(w, "# HELP %s_gc_cycles_total Completed GC cycles.\n# TYPE %s_gc_cycles_total counter\n%s_gc_cycles_total %d\n",
		prefix, prefix, prefix, ms.NumGC)
}

// writeBuildInfo emits the build-metadata gauge (constant 1; the information
// rides the labels) from the single Version constant the -version flag also
// prints.
func writeBuildInfo(w io.Writer, name string) {
	fmt.Fprintf(w, "# HELP %s Build metadata (value is always 1).\n# TYPE %s gauge\n%s{version=%q,go_version=%q} 1\n",
		name, name, name, Version, runtime.Version())
}

// write emits the counters in Prometheus text exposition format, together
// with the per-model gauges read live from the registry and session pool.
// adm may be nil (admission control disabled); the valve series still emit
// as zeros so dashboards and the gateway aggregator see a uniform shape.
func (m *metrics) write(w io.Writer, reg *registry, pool *sessionPool, adm *admission, uptime time.Duration) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("mcdcd_assign_total", "Single-row assignments served.", m.assignTotal.Load())
	counter("mcdcd_assign_batch_rows_total", "Rows served through batch assignment.", m.batchRows.Load())
	counter("mcdcd_assign_errors_total", "Assignment requests rejected.", m.assignErrors.Load())
	counter("mcdcd_relearn_total", "Background re-learn model swaps.", m.relearns.Load())
	var shed, admittedN, depth, inflight int64
	if adm != nil {
		shed, admittedN = adm.shed.Load(), adm.admitted.Load()
		depth, inflight = adm.depth(), int64(adm.inflight())
	}
	counter("mcdcd_shed_total", "Assignment requests shed by admission control (429).", shed)
	counter("mcdcd_admitted_total", "Assignment requests admitted past the valve.", admittedN)
	gauge("mcdcd_queue_depth", "Assignment requests waiting for an in-flight slot.", depth)
	gauge("mcdcd_inflight", "Assignment requests currently executing.", inflight)
	counter("mcdcd_session_drift_total", "Session assignments below the drift similarity threshold.", pool.lowSimTotal())
	counter("mcdcd_sessions_evicted_total", "Streaming sessions evicted by the idle TTL sweeper.", pool.evicted.Load())
	counter("mcdcd_sessions_restored_total", "Streaming sessions paged in from checkpoints.", pool.restored.Load())
	counter("mcdcd_session_checkpoints_total", "Session checkpoint files written.", pool.checkpoints.Load())
	counter("mcdcd_replica_ships_total", "Session checkpoints shipped to a replica holder.", pool.shipped.Load())
	counter("mcdcd_replica_ship_failures_total", "Checkpoint ships that failed (replica coverage gap).", pool.shipFailures.Load())
	counter("mcdcd_replica_received_total", "Peer checkpoints accepted into the replica store.", pool.replicaRecv.Load())
	counter("mcdcd_replica_rejected_stale_total", "Peer checkpoints rejected by ownership-epoch fencing.", pool.replicaStale.Load())
	counter("mcdcd_sessions_promoted_total", "Replica checkpoints promoted to owned sessions.", pool.promoted.Load())
	counter("mcdcd_sessions_adopted_total", "Sessions adopted via checkpoint migration.", pool.adopted.Load())
	counter("mcdcd_assign_replays_total", "Session assignments answered from the idempotent replay cache.", pool.replayed.Load())
	replicaCount := int64(0)
	if pool.replicas != nil {
		replicaCount = int64(pool.replicas.count())
	}
	gauge("mcdcd_replicas", "Peer session replicas held in the replica store.", replicaCount)

	fmt.Fprintf(w, "# HELP mcdcd_assign_latency_seconds Single-assignment latency (JSON and binary paths).\n")
	fmt.Fprintf(w, "# TYPE mcdcd_assign_latency_seconds histogram\n")
	m.assignLat.writeTo(w, "mcdcd_assign_latency_seconds", "")

	fmt.Fprintf(w, "# HELP mcdcd_stage_duration_seconds Time spent per serving stage.\n")
	fmt.Fprintf(w, "# TYPE mcdcd_stage_duration_seconds histogram\n")
	m.queueWait.writeTo(w, "mcdcd_stage_duration_seconds", `stage="queue_wait"`)
	m.assignLat.writeTo(w, "mcdcd_stage_duration_seconds", `stage="assign"`)
	m.batchChunk.writeTo(w, "mcdcd_stage_duration_seconds", `stage="batch_chunk"`)
	m.checkpoint.writeTo(w, "mcdcd_stage_duration_seconds", `stage="checkpoint"`)
	m.relearnDur.writeTo(w, "mcdcd_stage_duration_seconds", `stage="relearn"`)

	fmt.Fprintf(w, "# HELP mcdcd_model_epoch Current re-learn epoch of each served model.\n# TYPE mcdcd_model_epoch gauge\n")
	models := reg.all()
	for _, sm := range models {
		fmt.Fprintf(w, "mcdcd_model_epoch{model=%q} %d\n", sm.name, sm.load().Epoch)
	}
	fmt.Fprintf(w, "# HELP mcdcd_model_drift_total Stateless assignments below the drift similarity threshold.\n# TYPE mcdcd_model_drift_total counter\n")
	for _, sm := range models {
		fmt.Fprintf(w, "mcdcd_model_drift_total{model=%q} %d\n", sm.name, sm.lowSim.Load())
	}
	fmt.Fprintf(w, "# HELP mcdcd_model_relearn_total Re-learn swaps of each served model.\n# TYPE mcdcd_model_relearn_total counter\n")
	for _, sm := range models {
		fmt.Fprintf(w, "mcdcd_model_relearn_total{model=%q} %d\n", sm.name, sm.relearns.Load())
	}

	m.http.write(w, "mcdcd_http_requests_total", "mcdcd_http_errors_total", "mcdcd_http_request_duration_seconds")

	fmt.Fprintf(w, "# HELP mcdcd_sessions Live streaming sessions.\n# TYPE mcdcd_sessions gauge\nmcdcd_sessions %d\n", pool.count())
	fmt.Fprintf(w, "# HELP mcdcd_uptime_seconds Daemon uptime.\n# TYPE mcdcd_uptime_seconds gauge\nmcdcd_uptime_seconds %g\n", uptime.Seconds())
	writeRuntimeMetrics(w, "mcdcd")
	writeBuildInfo(w, "mcdcd_build_info")
}
