package server

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// RequestIDHeader carries the correlation id of one request end to end: the
// gateway mints one (or accepts the client's), forwards it to the backend on
// both the JSON and binary paths, and every response — success, error
// envelope, 429 shed — echoes it back. Grepping a fleet's logs for one id
// reconstructs a single request's path.
const RequestIDHeader = "X-MCDC-Request-Id"

// idGen mints request ids: a per-process random prefix plus a sequence
// number. Collision-safe across a fleet without coordination, and cheap —
// one atomic increment and one small string per minted id.
type idGen struct {
	prefix string
	seq    atomic.Uint64
}

func newIDGen() *idGen {
	var b [6]byte
	if _, err := crand.Read(b[:]); err != nil {
		// Degraded randomness still must not collide across a fleet started
		// at different instants.
		binary.LittleEndian.PutUint32(b[:4], uint32(time.Now().UnixNano()))
	}
	return &idGen{prefix: hex.EncodeToString(b[:])}
}

func (g *idGen) next() string {
	return g.prefix + "-" + strconv.FormatUint(g.seq.Add(1), 10)
}

// validRequestID accepts a caller-supplied correlation id: non-empty,
// bounded, printable ASCII with no spaces — safe to echo into headers and
// log lines.
func validRequestID(id string) bool {
	if id == "" || len(id) > 128 {
		return false
	}
	for i := 0; i < len(id); i++ {
		if c := id[i]; c <= ' ' || c >= 0x7f {
			return false
		}
	}
	return true
}

// ensureRequestID returns the request's correlation id, minting one when the
// caller sent none (or an invalid one). The id is written back onto
// r.Header, so a proxying handler forwards exactly the id it logs.
func ensureRequestID(r *http.Request, ids *idGen) string {
	if id := r.Header.Get(RequestIDHeader); validRequestID(id) {
		return id
	}
	id := ids.next()
	r.Header.Set(RequestIDHeader, id)
	return id
}

// discardLogger is the default when no Logger is configured (library
// embedders, most tests): structured calls are level-checked and dropped.
var discardLogger = slog.New(slog.NewTextHandler(io.Discard, nil))

// obs bundles the per-request observability dependencies the HTTP middleware
// needs: the id minter, the structured logger, and the slow-request
// threshold.
type obs struct {
	ids  *idGen
	log  *slog.Logger
	slow time.Duration
}

func newObs(log *slog.Logger, slow time.Duration) *obs {
	if log == nil {
		log = discardLogger
	}
	return &obs{ids: newIDGen(), log: log, slow: slow}
}

// logRequest emits the request-scoped log line: every request at Debug,
// requests over the slow threshold at Warn. The Enabled check keeps the
// common case (Info level, fast request) free of attribute allocation.
func (o *obs) logRequest(ctx context.Context, id, endpoint string, status int, code string, d time.Duration) {
	slow := o.slow > 0 && d >= o.slow
	if !slow && !o.log.Enabled(ctx, slog.LevelDebug) {
		return
	}
	attrs := []any{
		"request_id", id,
		"endpoint", endpoint,
		"status", status,
		"duration_ms", float64(d) / float64(time.Millisecond),
	}
	if code != "" {
		attrs = append(attrs, "code", code)
	}
	if slow {
		o.log.WarnContext(ctx, "slow request", attrs...)
		return
	}
	o.log.DebugContext(ctx, "request", attrs...)
}
