package server

import (
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"path/filepath"
	"testing"

	"mcdc/internal/categorical"
	"mcdc/internal/model"
)

// adversarialRows draws rows against the schema with missing values and
// out-of-domain codes mixed in — the traffic shape the packed probe plan's
// index build must filter exactly like the ProbeSim slow path does.
func adversarialRows(rng *rand.Rand, n int, card []int) [][]int {
	rows := make([][]int, n)
	for i := range rows {
		row := make([]int, len(card))
		for r, m := range card {
			switch rng.Intn(8) {
			case 0:
				row[r] = categorical.Missing
			case 1:
				row[r] = m + rng.Intn(2) // above the schema's cardinality
			default:
				row[r] = rng.Intn(m)
			}
		}
		rows[i] = row
	}
	return rows
}

// TestPooledAssignerPackedProbe pins the serving daemon's pooled-assigner
// path against Snapshot.Assign on adversarial traffic, then hot-swaps to a
// model with a wider feature schema and back — exercising the Assigner's
// probe-index scratch regrowth across Bind/Unbind cycles. Clusters and
// similarity floats must be bit-identical between HTTP and in-process.
func TestPooledAssignerPackedProbe(t *testing.T) {
	narrow, _, _ := trainModel(t, 200, 6, 3, 17)
	wide, _, _ := trainModel(t, 200, 14, 3, 18)
	dir := t.TempDir()
	narrowPath := filepath.Join(dir, "narrow.bin")
	widePath := filepath.Join(dir, "wide.bin")
	if err := narrow.SaveFile(narrowPath); err != nil {
		t.Fatal(err)
	}
	if err := wide.SaveFile(widePath); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{})

	rng := rand.New(rand.NewSource(23))
	load := func(path string) {
		t.Helper()
		resp, data := post(t, ts.URL+"/models", map[string]string{"name": "packed", "path": path})
		if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
			t.Fatalf("load %s: %d %s", path, resp.StatusCode, data)
		}
	}
	check := func(snap *model.Snapshot) {
		t.Helper()
		for _, row := range adversarialRows(rng, 80, snap.Cardinalities) {
			resp, data := post(t, ts.URL+"/assign", map[string]any{"model": "packed", "row": row})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("assign %v: %d %s", row, resp.StatusCode, data)
			}
			var got assignResponse
			if err := json.Unmarshal(data, &got); err != nil {
				t.Fatal(err)
			}
			want, err := snap.Assign(row)
			if err != nil {
				t.Fatal(err)
			}
			if got.Cluster != want.Cluster {
				t.Fatalf("row %v: served cluster %d, in-process %d", row, got.Cluster, want.Cluster)
			}
			if math.Float64bits(got.Similarity) != math.Float64bits(want.Similarity) {
				t.Fatalf("row %v: served similarity %v, in-process %v (bits differ)",
					row, got.Similarity, want.Similarity)
			}
		}
	}

	// Narrow first: pooled assigners bind their scratches at 6 features.
	load(narrowPath)
	check(narrow)

	// Hot-swap the same serving name to the 14-feature model: every pooled
	// assigner must regrow its probe-index scratch on next Bind.
	load(widePath)
	check(wide)

	// And back down: shrinking reuses the wide scratch without reallocating.
	load(narrowPath)
	check(narrow)
}
