package server

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"mcdc/internal/model"
)

// servedModel is one registry entry: the live snapshot behind an atomic
// pointer (so /assign readers never block on a hot swap), the rolling buffer
// of recently served traffic the background re-learner trains on, and the
// entry's drift/re-learn counters.
type servedModel struct {
	name     string
	snap     atomic.Pointer[model.Snapshot]
	buf      *trafficBuffer
	relearns atomic.Int64
	lowSim   atomic.Int64 // assignments below the drift similarity threshold
}

func (sm *servedModel) load() *model.Snapshot { return sm.snap.Load() }

// registry maps model names to served models. Lookups take a read lock only
// for the map access; the snapshot itself is reached lock-free through the
// entry's atomic pointer, so a re-learn swap never stalls the assign path.
type registry struct {
	mu     sync.RWMutex
	models map[string]*servedModel
}

func newRegistry() *registry {
	return &registry{models: make(map[string]*servedModel)}
}

func (r *registry) get(name string) (*servedModel, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	sm, ok := r.models[name]
	return sm, ok
}

// set registers snap under name, hot-swapping atomically when the name is
// already served. Counters survive the swap; the traffic buffer survives
// only when the new snapshot keeps the old feature schema — buffered rows
// were domain-checked against the old cardinalities, and re-learning the new
// model on rows from a different schema would fail (width change) or corrupt
// the count tables (narrowed cardinality). It reports whether an existing
// model was replaced.
func (r *registry) set(name string, snap *model.Snapshot, bufferCap int) (replaced bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if sm, ok := r.models[name]; ok {
		old := sm.snap.Load()
		sm.snap.Store(snap)
		if !sameSchema(old.Cardinalities, snap.Cardinalities) {
			sm.buf.take()
		}
		return true
	}
	sm := &servedModel{name: name, buf: newTrafficBuffer(bufferCap)}
	sm.snap.Store(snap)
	r.models[name] = sm
	return false
}

func (r *registry) remove(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.models[name]; !ok {
		return false
	}
	delete(r.models, name)
	return true
}

// all returns the entries sorted by name (stable iteration for /metrics,
// /healthz, and the re-learn sweep).
func (r *registry) all() []*servedModel {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*servedModel, 0, len(r.models))
	for _, sm := range r.models {
		out = append(out, sm)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// trafficBuffer is a bounded ring of recently assigned rows — the window a
// background re-learn trains on. Rows are copied in; the buffer owns them.
type trafficBuffer struct {
	mu    sync.Mutex
	rows  [][]int
	next  int
	cap   int
	total int64
}

func newTrafficBuffer(capacity int) *trafficBuffer {
	if capacity <= 0 {
		capacity = 4096
	}
	return &trafficBuffer{cap: capacity}
}

func (b *trafficBuffer) add(row []int) {
	own := append([]int(nil), row...)
	b.mu.Lock()
	if len(b.rows) < b.cap {
		b.rows = append(b.rows, own)
	} else {
		b.rows[b.next] = own
		b.next = (b.next + 1) % b.cap
	}
	b.total++
	b.mu.Unlock()
}

func (b *trafficBuffer) len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.rows)
}

// take returns the buffered rows in arrival order (rotating the ring past
// the cursor) and resets the buffer — each traffic window feeds at most one
// re-learning, and restore relies on oldest-first ordering.
func (b *trafficBuffer) take() [][]int {
	b.mu.Lock()
	defer b.mu.Unlock()
	rows := b.rows
	if b.next > 0 {
		rows = append(rows[b.next:], rows[:b.next]...)
	}
	b.rows = nil
	b.next = 0
	return rows
}

// restore puts a taken window back (used when a re-learn fails so the rows
// are not lost with it). Best effort: rows that arrived since the take are
// newer and win; the restored rows refill only the remaining capacity, and
// a buffer that wrapped meanwhile is already full of fresher traffic.
func (b *trafficBuffer) restore(rows [][]int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.rows) >= b.cap {
		return
	}
	room := b.cap - len(b.rows)
	if len(rows) > room {
		rows = rows[len(rows)-room:] // keep the newest of the restored window
	}
	b.rows = append(append([][]int{}, rows...), b.rows...)
}

func (b *trafficBuffer) totalSeen() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total
}

func sameSchema(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func validateName(name string) error {
	if name == "" {
		return fmt.Errorf("server: empty model name")
	}
	for _, c := range name {
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' || c == '_' || c == '.') {
			return fmt.Errorf("server: model name %q contains %q (allowed: letters, digits, '-', '_', '.')", name, c)
		}
	}
	return nil
}
