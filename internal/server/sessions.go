package server

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"log/slog"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mcdc/internal/core"
	"mcdc/internal/model"
	"mcdc/internal/stream"
)

// checkpointExt is the file suffix of one session's checkpoint inside the
// pool's state directory: <state-dir>/sessions/<id>.ckpt. Session ids pass
// validateName (letters, digits, '-', '_', '.'), so the id is safe as a file
// name and the mapping is invertible.
const checkpointExt = ".ckpt"

// session wraps one streaming clusterer. stream.Clusterer is single-goroutine
// by contract, so every operation holds the session's own mutex: arrivals
// within a session are serialized (preserving the per-session determinism
// contract — one rng, one presentation order), while different sessions
// proceed in parallel.
//
// Lock order: a goroutine holding a session mutex must not acquire a shard
// mutex (shard → session only). The TTL sweeper, which needs both, takes the
// session mutex via TryLock outside any shard lock and re-acquires the shard
// lock only after releasing nothing it still holds.
type session struct {
	mu      sync.Mutex
	c       *stream.Clusterer
	lowSim  int64     // drift counter, guarded by mu
	lastUse time.Time // guarded by mu; drives TTL eviction
	// gone marks a session that was evicted or deleted after a caller already
	// held its pointer: the late operation must fail and retry through the
	// pool (which pages a checkpointed session back in) instead of mutating
	// an orphan whose state would silently vanish.
	gone bool // guarded by mu
}

// sessionPool is a lock-sharded map of streaming sessions. Concurrent
// /assign calls for different sessions hash to (usually) different shards,
// so pool bookkeeping never becomes the serialization point — only the
// per-session mutex serializes, and only within one stream.
//
// With a state directory the pool is also durable: sessions checkpoint to
// one file each (all checkpoint writes happen under the session mutex, so a
// file always holds the newest snapshot), idle-evicted sessions spill to
// disk instead of being lost, and a lookup miss pages a checkpointed session
// back in transparently.
type sessionPool struct {
	shards []*sessionShard
	dir    string // "" → memory-only (eviction discards, restarts forget)
	log    *slog.Logger
	ckpt   *histogram // checkpoint-write durations (nil = not recorded)

	evicted      atomic.Int64 // sessions evicted by the TTL sweeper
	restored     atomic.Int64 // sessions paged in from checkpoints
	checkpoints  atomic.Int64 // checkpoint files written
	lowSimRetire atomic.Int64 // drift counts of evicted/deleted sessions
}

type sessionShard struct {
	mu sync.RWMutex
	m  map[string]*session
}

func newSessionPool(shards int, dir string, log *slog.Logger, ckpt *histogram) *sessionPool {
	if shards <= 0 {
		shards = 16
	}
	if log == nil {
		log = discardLogger
	}
	p := &sessionPool{shards: make([]*sessionShard, shards), dir: dir, log: log, ckpt: ckpt}
	for i := range p.shards {
		p.shards[i] = &sessionShard{m: make(map[string]*session)}
	}
	return p
}

func (p *sessionPool) shard(id string) *sessionShard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return p.shards[h.Sum32()%uint32(len(p.shards))]
}

func (p *sessionPool) path(id string) string {
	return filepath.Join(p.dir, id+checkpointExt)
}

// get returns the live session for id, paging it in from its checkpoint
// when the pool is durable and the session was evicted to disk.
func (p *sessionPool) get(id string) (*session, bool) {
	sh := p.shard(id)
	sh.mu.RLock()
	s, ok := sh.m[id]
	sh.mu.RUnlock()
	if ok || p.dir == "" {
		return s, ok
	}
	// Resident ids all passed validateName at create/restore time, so only
	// the disk path below needs the guard — it keeps a crafted id
	// ("../../x") from escaping the state dir, and it must run before any
	// path is formed.
	if validateName(id) != nil {
		return nil, false
	}
	// Cheap negative lookup outside the write lock: the common miss — a
	// request naming a session that simply does not exist — must not pay
	// file I/O while blocking the whole shard.
	if _, err := os.Stat(p.path(id)); err != nil {
		return nil, false
	}
	// A checkpoint exists: page it in. The shard write lock makes the
	// check-load-insert atomic, so two concurrent misses for the same id
	// cannot restore two divergent copies.
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s, ok := sh.m[id]; ok {
		return s, true
	}
	st, err := model.LoadStreamFile(p.path(id))
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			p.log.Warn("unreadable session checkpoint", "session", id, "path", p.path(id), "err", err)
		}
		return nil, false
	}
	c, err := stream.Restore(st)
	if err != nil {
		p.log.Warn("corrupt session checkpoint", "session", id, "path", p.path(id), "err", err)
		return nil, false
	}
	s = &session{c: c, lastUse: time.Now()}
	sh.m[id] = s
	p.restored.Add(1)
	return s, true
}

// create registers a new streaming session. It fails if the id is taken —
// including by a checkpointed-but-evicted session, which a create would
// otherwise silently shadow until the next eviction overwrote its file.
func (p *sessionPool) create(id string, cardinalities []int, window int, seed int64, workers int) error {
	c, err := stream.NewClusterer(stream.Config{
		Cardinalities: cardinalities,
		WindowSize:    window,
		MGCPL: core.MGCPLConfig{
			Workers: workers,
			Rand:    rand.New(rand.NewSource(seed)),
		},
	})
	if err != nil {
		return err
	}
	sh := p.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.m[id]; ok {
		return fmt.Errorf("server: session %q already exists", id)
	}
	if p.dir != "" {
		if _, err := os.Stat(p.path(id)); err == nil {
			return fmt.Errorf("server: session %q already exists (checkpointed on disk)", id)
		}
	}
	sh.m[id] = &session{c: c, lastUse: time.Now()}
	return nil
}

// remove deletes a session and, in a durable pool, its checkpoint file.
// Ordering is load-bearing twice over: the gone flag is raised (under the
// session mutex) before the file is unlinked, so no checkpoint writer —
// they all check gone behind that mutex — can rewrite the file afterwards;
// and the unlink happens under the shard lock, so a concurrent get() cannot
// page the session back in from a checkpoint that is about to vanish
// (page-in holds the same shard lock). Taking the session mutex inside the
// shard lock follows the pool's shard → session lock order.
func (p *sessionPool) remove(id string) bool {
	sh := p.shard(id)
	sh.mu.Lock()
	s, ok := sh.m[id]
	delete(sh.m, id)
	if ok {
		s.mu.Lock()
		if !s.gone { // an eviction may have retired it in parallel
			s.gone = true
			p.lowSimRetire.Add(s.lowSim)
		}
		s.mu.Unlock()
	}
	// The validateName guard keeps a crafted id from unlinking files
	// outside the state dir (resident ids were validated at create time,
	// but this path also runs for ids that were never resident).
	if p.dir != "" && validateName(id) == nil {
		if os.Remove(p.path(id)) == nil {
			ok = true // an evicted-to-disk session counts as existing
		}
	}
	sh.mu.Unlock()
	return ok
}

// dropIfSame removes a specific (gone) session object from the map — the
// cleanup a caller performs after losing the eviction race, so its retry
// reaches the checkpoint instead of the dead pointer.
func (p *sessionPool) dropIfSame(id string, s *session) {
	sh := p.shard(id)
	sh.mu.Lock()
	if cur, ok := sh.m[id]; ok && cur == s {
		delete(sh.m, id)
	}
	sh.mu.Unlock()
}

// assign feeds one row to the session, reporting found=false when no such
// session exists (in memory or on disk). It retries past an eviction that
// lands between lookup and lock: the evictor checkpointed the session before
// marking it gone, so the retry pages the up-to-date state back in and no
// arrival is lost.
func (p *sessionPool) assign(id string, row []int, driftThreshold float64) (stream.Assignment, bool, error) {
	for try := 0; try < 3; try++ {
		s, ok := p.get(id)
		if !ok {
			return stream.Assignment{}, false, nil
		}
		a, gone, err := s.addRow(row, driftThreshold)
		if !gone {
			return a, true, err
		}
		p.dropIfSame(id, s)
	}
	return stream.Assignment{}, false, nil
}

// addRow feeds one row under the session mutex, tracking drift and recency.
func (s *session) addRow(row []int, driftThreshold float64) (stream.Assignment, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gone {
		return stream.Assignment{}, true, nil
	}
	s.lastUse = time.Now()
	a, err := s.c.Add(row)
	if err == nil && a.Similarity < driftThreshold {
		s.lowSim++
	}
	return a, false, err
}

// saveLocked checkpoints a session; the caller holds s.mu. Serializing every
// file write through the session mutex keeps the checkpoint file monotone:
// a slow periodic sweep can never overwrite the newer state an eviction just
// flushed.
func (p *sessionPool) saveLocked(id string, s *session) error {
	started := time.Now()
	err := s.c.Snapshot().SaveFile(p.path(id))
	if err == nil && p.ckpt != nil {
		p.ckpt.observe(time.Since(started))
	}
	return err
}

// checkpointAll flushes every live session to disk and returns how many
// checkpoints were written. It is the periodic sweep, the graceful-shutdown
// flush, and the POST /checkpoint handler.
func (p *sessionPool) checkpointAll() int {
	if p.dir == "" {
		return 0
	}
	n := 0
	for _, sh := range p.shards {
		sh.mu.RLock()
		ids := make([]string, 0, len(sh.m))
		ss := make([]*session, 0, len(sh.m))
		for id, s := range sh.m {
			ids = append(ids, id)
			ss = append(ss, s)
		}
		sh.mu.RUnlock()
		for i, s := range ss {
			s.mu.Lock()
			if !s.gone {
				if err := p.saveLocked(ids[i], s); err != nil {
					p.log.Warn("session checkpoint failed", "session", ids[i], "err", err)
				} else {
					n++
				}
			}
			s.mu.Unlock()
		}
	}
	p.checkpoints.Add(int64(n))
	return n
}

// sweep evicts sessions idle longer than ttl and returns how many went. In a
// durable pool eviction checkpoints first (the session spills to disk and
// pages back in on next touch); in a memory-only pool eviction is deletion.
// Busy sessions are skipped via TryLock — a held mutex means the session is
// mid-arrival and by definition not idle.
func (p *sessionPool) sweep(ttl time.Duration) int {
	if ttl <= 0 {
		return 0
	}
	cutoff := time.Now().Add(-ttl)
	n := 0
	for _, sh := range p.shards {
		sh.mu.RLock()
		ids := make([]string, 0, len(sh.m))
		ss := make([]*session, 0, len(sh.m))
		for id, s := range sh.m {
			ids = append(ids, id)
			ss = append(ss, s)
		}
		sh.mu.RUnlock()
		for i, s := range ss {
			if !s.mu.TryLock() {
				continue
			}
			if s.gone || s.lastUse.After(cutoff) {
				s.mu.Unlock()
				continue
			}
			if p.dir != "" {
				if err := p.saveLocked(ids[i], s); err != nil {
					p.log.Warn("eviction checkpoint failed; keeping session in memory", "session", ids[i], "err", err)
					s.mu.Unlock()
					continue
				}
			}
			s.gone = true
			p.lowSimRetire.Add(s.lowSim)
			s.mu.Unlock()
			p.dropIfSame(ids[i], s)
			n++
		}
	}
	p.evicted.Add(int64(n))
	return n
}

// restoreAll pages every checkpointed session back in — the startup path
// that makes a restart transparent. Unreadable checkpoints are logged and
// left in place for inspection; they do not block the boot.
func (p *sessionPool) restoreAll() int {
	if p.dir == "" {
		return 0
	}
	entries, err := os.ReadDir(p.dir)
	if err != nil {
		p.log.Warn("restore sessions failed", "dir", p.dir, "err", err)
		return 0
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), checkpointExt) {
			continue
		}
		id := strings.TrimSuffix(e.Name(), checkpointExt)
		if validateName(id) != nil {
			continue
		}
		if _, ok := p.get(id); ok { // get performs the page-in
			n++
		}
	}
	return n
}

func (p *sessionPool) count() int {
	n := 0
	for _, sh := range p.shards {
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// lowSimTotal sums the drift counters across live sessions plus the retired
// counts of evicted and deleted ones, so the exported counter stays
// monotone when sessions leave memory.
func (p *sessionPool) lowSimTotal() int64 {
	n := p.lowSimRetire.Load()
	for _, sh := range p.shards {
		sh.mu.RLock()
		for _, s := range sh.m {
			s.mu.Lock()
			n += s.lowSim
			s.mu.Unlock()
		}
		sh.mu.RUnlock()
	}
	return n
}
