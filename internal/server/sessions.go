package server

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"log/slog"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mcdc/internal/core"
	"mcdc/internal/model"
	"mcdc/internal/stream"
)

// checkpointExt is the file suffix of one session's checkpoint inside the
// pool's state directory: <state-dir>/sessions/<id>.ckpt. Session ids pass
// validateName (letters, digits, '-', '_', '.'), so the id is safe as a file
// name and the mapping is invertible.
const checkpointExt = ".ckpt"

// session wraps one streaming clusterer. stream.Clusterer is single-goroutine
// by contract, so every operation holds the session's own mutex: arrivals
// within a session are serialized (preserving the per-session determinism
// contract — one rng, one presentation order), while different sessions
// proceed in parallel.
//
// Lock order: a goroutine holding a session mutex must not acquire a shard
// mutex (shard → session only). The TTL sweeper, which needs both, takes the
// session mutex via TryLock outside any shard lock and re-acquires the shard
// lock only after releasing nothing it still holds.
type session struct {
	mu      sync.Mutex
	c       *stream.Clusterer
	lowSim  int64     // drift counter, guarded by mu
	lastUse time.Time // guarded by mu; drives TTL eviction
	// gone marks a session that was evicted or deleted after a caller already
	// held its pointer: the late operation must fail and retry through the
	// pool (which pages a checkpointed session back in) instead of mutating
	// an orphan whose state would silently vanish.
	gone bool // guarded by mu
	// dirty marks state not yet checkpointed. In replicated mode (where every
	// assignment checkpoints before responding) a clean session is skipped by
	// the periodic/shutdown flush — re-snapshotting it would rotate its random
	// stream off the replicated reference trajectory.
	dirty bool // guarded by mu

	// Replication state (guarded by mu, persisted in the checkpoint):
	// ownerEpoch is the fencing token bumped on every promotion/adoption;
	// lastReqID/lastRow/lastA cache the last applied assignment so a gateway
	// retry carrying the same request id replays the response instead of
	// applying the row twice.
	ownerEpoch int64
	lastReqID  string
	lastRow    []int
	lastA      stream.Assignment
}

// sessionPool is a lock-sharded map of streaming sessions. Concurrent
// /assign calls for different sessions hash to (usually) different shards,
// so pool bookkeeping never becomes the serialization point — only the
// per-session mutex serializes, and only within one stream.
//
// With a state directory the pool is also durable: sessions checkpoint to
// one file each (all checkpoint writes happen under the session mutex, so a
// file always holds the newest snapshot), idle-evicted sessions spill to
// disk instead of being lost, and a lookup miss pages a checkpointed session
// back in transparently.
type sessionPool struct {
	shards []*sessionShard
	dir    string // "" → memory-only (eviction discards, restarts forget)
	log    *slog.Logger
	ckpt   *histogram // checkpoint-write durations (nil = not recorded)

	// replicate enables checkpoint-before-respond: every assignment
	// checkpoints (and ships to the ring successor, when a replicator is
	// configured) before its response is written. replicas holds checkpoints
	// shipped here by peers; repl is swapped on fleet membership changes.
	replicate bool
	replicas  *replicaStore
	repl      atomic.Pointer[replicator]

	evicted      atomic.Int64 // sessions evicted by the TTL sweeper
	restored     atomic.Int64 // sessions paged in from checkpoints
	checkpoints  atomic.Int64 // checkpoint files written
	lowSimRetire atomic.Int64 // drift counts of evicted/deleted sessions

	shipped      atomic.Int64 // checkpoints shipped to a replica holder
	shipFailures atomic.Int64 // ships that failed (coverage gap until repaired)
	replicaRecv  atomic.Int64 // checkpoints accepted into the replica store
	replicaStale atomic.Int64 // ships rejected by ownership-epoch fencing
	promoted     atomic.Int64 // replicas promoted to owned sessions
	adopted      atomic.Int64 // sessions adopted via checkpoint migration
	replayed     atomic.Int64 // assignments answered from the replay cache
}

type sessionShard struct {
	mu sync.RWMutex
	m  map[string]*session
}

func newSessionPool(shards int, dir string, log *slog.Logger, ckpt *histogram) *sessionPool {
	if shards <= 0 {
		shards = 16
	}
	if log == nil {
		log = discardLogger
	}
	p := &sessionPool{shards: make([]*sessionShard, shards), dir: dir, log: log, ckpt: ckpt}
	for i := range p.shards {
		p.shards[i] = &sessionShard{m: make(map[string]*session)}
	}
	return p
}

func (p *sessionPool) shard(id string) *sessionShard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return p.shards[h.Sum32()%uint32(len(p.shards))]
}

func (p *sessionPool) path(id string) string {
	return filepath.Join(p.dir, id+checkpointExt)
}

// get returns the live session for id, paging it in from its checkpoint
// when the pool is durable and the session was evicted to disk.
func (p *sessionPool) get(id string) (*session, bool) {
	sh := p.shard(id)
	sh.mu.RLock()
	s, ok := sh.m[id]
	sh.mu.RUnlock()
	if ok || p.dir == "" {
		return s, ok
	}
	// Resident ids all passed validateName at create/restore time, so only
	// the disk path below needs the guard — it keeps a crafted id
	// ("../../x") from escaping the state dir, and it must run before any
	// path is formed.
	if validateName(id) != nil {
		return nil, false
	}
	// Cheap negative lookup outside the write lock: the common miss — a
	// request naming a session that simply does not exist — must not pay
	// file I/O while blocking the whole shard.
	if _, err := os.Stat(p.path(id)); err != nil {
		return nil, false
	}
	// A checkpoint exists: page it in. The shard write lock makes the
	// check-load-insert atomic, so two concurrent misses for the same id
	// cannot restore two divergent copies.
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s, ok := sh.m[id]; ok {
		return s, true
	}
	st, err := model.LoadStreamFile(p.path(id))
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			p.log.Warn("unreadable session checkpoint", "session", id, "path", p.path(id), "err", err)
		}
		return nil, false
	}
	c, err := stream.Restore(st)
	if err != nil {
		p.log.Warn("corrupt session checkpoint", "session", id, "path", p.path(id), "err", err)
		return nil, false
	}
	s = sessionFromState(c, st)
	sh.m[id] = s
	p.restored.Add(1)
	return s, true
}

// sessionFromState builds the in-memory session for a restored checkpoint,
// carrying the ownership epoch and replay cache back in so fencing and
// retry idempotency survive restarts.
func sessionFromState(c *stream.Clusterer, st *model.StreamState) *session {
	return &session{
		c: c, lastUse: time.Now(),
		ownerEpoch: st.OwnerEpoch,
		lastReqID:  st.LastReqID,
		lastRow:    st.LastRow,
		lastA: stream.Assignment{
			Cluster:    st.LastCluster,
			Similarity: st.LastSimilarity,
			ModelEpoch: st.LastModelEpoch,
		},
	}
}

// create registers a new streaming session. It fails if the id is taken —
// including by a checkpointed-but-evicted session, which a create would
// otherwise silently shadow until the next eviction overwrote its file.
func (p *sessionPool) create(id string, cardinalities []int, window int, seed int64, workers int) error {
	c, err := stream.NewClusterer(stream.Config{
		Cardinalities: cardinalities,
		WindowSize:    window,
		MGCPL: core.MGCPLConfig{
			Workers: workers,
			Rand:    rand.New(rand.NewSource(seed)),
		},
	})
	if err != nil {
		return err
	}
	sh := p.shard(id)
	sh.mu.Lock()
	if _, ok := sh.m[id]; ok {
		sh.mu.Unlock()
		return fmt.Errorf("server: session %q already exists", id)
	}
	if p.dir != "" {
		if _, err := os.Stat(p.path(id)); err == nil {
			sh.mu.Unlock()
			return fmt.Errorf("server: session %q already exists (checkpointed on disk)", id)
		}
	}
	s := &session{c: c, lastUse: time.Now()}
	sh.m[id] = s
	sh.mu.Unlock()
	if p.replicate && p.dir != "" {
		// Checkpoint (and ship) the newborn session immediately, so a replica
		// exists before the first assignment and a create survives an owner
		// loss with zero arrivals.
		s.mu.Lock()
		err := p.saveLocked(id, s)
		if err != nil {
			s.gone = true // undo the create: an unpersistable session must not serve
		}
		s.mu.Unlock()
		if err != nil {
			p.dropIfSame(id, s)
			return fmt.Errorf("server: checkpoint new session: %w", err)
		}
	}
	return nil
}

// remove deletes a session and, in a durable pool, its checkpoint file.
// Ordering is load-bearing twice over: the gone flag is raised (under the
// session mutex) before the file is unlinked, so no checkpoint writer —
// they all check gone behind that mutex — can rewrite the file afterwards;
// and the unlink happens under the shard lock, so a concurrent get() cannot
// page the session back in from a checkpoint that is about to vanish
// (page-in holds the same shard lock). Taking the session mutex inside the
// shard lock follows the pool's shard → session lock order.
func (p *sessionPool) remove(id string) bool {
	sh := p.shard(id)
	sh.mu.Lock()
	s, ok := sh.m[id]
	delete(sh.m, id)
	if ok {
		s.mu.Lock()
		if !s.gone { // an eviction may have retired it in parallel
			s.gone = true
			p.lowSimRetire.Add(s.lowSim)
		}
		s.mu.Unlock()
	}
	// The validateName guard keeps a crafted id from unlinking files
	// outside the state dir (resident ids were validated at create time,
	// but this path also runs for ids that were never resident).
	if p.dir != "" && validateName(id) == nil {
		if os.Remove(p.path(id)) == nil {
			ok = true // an evicted-to-disk session counts as existing
		}
	}
	sh.mu.Unlock()
	return ok
}

// dropIfSame removes a specific (gone) session object from the map — the
// cleanup a caller performs after losing the eviction race, so its retry
// reaches the checkpoint instead of the dead pointer.
func (p *sessionPool) dropIfSame(id string, s *session) {
	sh := p.shard(id)
	sh.mu.Lock()
	if cur, ok := sh.m[id]; ok && cur == s {
		delete(sh.m, id)
	}
	sh.mu.Unlock()
}

// assign feeds one row to the session, reporting found=false when no such
// session exists (in memory or on disk). It retries past an eviction that
// lands between lookup and lock: the evictor checkpointed the session before
// marking it gone, so the retry pages the up-to-date state back in and no
// arrival is lost. A non-empty reqID makes the call idempotent: retrying the
// same request id with the same row replays the cached response.
func (p *sessionPool) assign(id string, row []int, driftThreshold float64, reqID string) (stream.Assignment, bool, error) {
	for try := 0; try < 3; try++ {
		s, ok := p.get(id)
		if !ok {
			return stream.Assignment{}, false, nil
		}
		a, gone, err := p.addRow(id, s, row, driftThreshold, reqID)
		if !gone {
			return a, true, err
		}
		p.dropIfSame(id, s)
	}
	return stream.Assignment{}, false, nil
}

// rowsEqual compares two rows element-wise.
func rowsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// addRow feeds one row under the session mutex, tracking drift and recency.
// In replicated mode it enforces the two fault-tolerance invariants: a
// retried request id replays the cached response without re-applying the
// row, and a fresh row is checkpointed (and shipped to the replica holder)
// before the assignment is returned — so the replica can always resume from
// the exact state that produced every delivered response.
func (p *sessionPool) addRow(id string, s *session, row []int, driftThreshold float64, reqID string) (stream.Assignment, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gone {
		return stream.Assignment{}, true, nil
	}
	s.lastUse = time.Now()
	if reqID != "" && reqID == s.lastReqID && rowsEqual(row, s.lastRow) {
		p.replayed.Add(1)
		return s.lastA, false, nil
	}
	a, err := s.c.Add(row)
	if err != nil {
		return a, false, err
	}
	if a.Similarity < driftThreshold {
		s.lowSim++
	}
	s.lastReqID = reqID
	s.lastRow = append(s.lastRow[:0], row...)
	s.lastA = a
	s.dirty = true
	if p.replicate && p.dir != "" {
		// Checkpoint-before-respond. A local write failure is fatal for the
		// request: answering without a durable checkpoint would let a later
		// failover replay this row and diverge.
		if err := p.saveLocked(id, s); err != nil {
			return stream.Assignment{}, false, fmt.Errorf("server: checkpoint before respond: %w", err)
		}
	}
	return a, false, err
}

// stateLocked snapshots a session into its persistable StreamState,
// stamping the replication fields; the caller holds s.mu. Note Snapshot
// rotates the session's random stream — in replicated mode this runs once
// per assignment, making the rotation cadence itself deterministic.
func (p *sessionPool) stateLocked(s *session) *model.StreamState {
	st := s.c.Snapshot()
	st.OwnerEpoch = s.ownerEpoch
	st.LastReqID = s.lastReqID
	st.LastRow = s.lastRow
	st.LastCluster = s.lastA.Cluster
	st.LastSimilarity = s.lastA.Similarity
	st.LastModelEpoch = s.lastA.ModelEpoch
	return st
}

// saveLocked checkpoints a session; the caller holds s.mu. Serializing every
// file write through the session mutex keeps the checkpoint file monotone:
// a slow periodic sweep can never overwrite the newer state an eviction just
// flushed. In replicated mode the same bytes are then shipped to the ring
// successor; a ship failure is logged and counted but does not fail the
// checkpoint — the local file stays authoritative and /healthz surfaces the
// coverage gap.
func (p *sessionPool) saveLocked(id string, s *session) error {
	started := time.Now()
	st := p.stateLocked(s)
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		return err
	}
	if err := writeFileAtomic(p.path(id), buf.Bytes()); err != nil {
		return err
	}
	s.dirty = false
	if p.ckpt != nil {
		p.ckpt.observe(time.Since(started))
	}
	if repl := p.repl.Load(); repl != nil {
		if target, err := repl.ship(id, buf.Bytes()); err != nil {
			p.shipFailures.Add(1)
			p.log.Warn("replica ship failed", "session", id, "target", target, "err", err)
		} else if target != "" {
			p.shipped.Add(1)
		}
	}
	return nil
}

// checkpointAll flushes every live session to disk and returns how many
// checkpoints were written. It is the periodic sweep, the graceful-shutdown
// flush, and the POST /checkpoint handler.
func (p *sessionPool) checkpointAll() int {
	if p.dir == "" {
		return 0
	}
	n := 0
	for _, sh := range p.shards {
		sh.mu.RLock()
		ids := make([]string, 0, len(sh.m))
		ss := make([]*session, 0, len(sh.m))
		for id, s := range sh.m {
			ids = append(ids, id)
			ss = append(ss, s)
		}
		sh.mu.RUnlock()
		for i, s := range ss {
			s.mu.Lock()
			// In replicated mode every assignment already checkpointed, so a
			// clean session is skipped: re-snapshotting would rotate its
			// random stream off the replicated reference trajectory.
			if !s.gone && !(p.replicate && !s.dirty) {
				if err := p.saveLocked(ids[i], s); err != nil {
					p.log.Warn("session checkpoint failed", "session", ids[i], "err", err)
				} else {
					n++
				}
			}
			s.mu.Unlock()
		}
	}
	p.checkpoints.Add(int64(n))
	return n
}

// sweep evicts sessions idle longer than ttl and returns how many went. In a
// durable pool eviction checkpoints first (the session spills to disk and
// pages back in on next touch); in a memory-only pool eviction is deletion.
// Busy sessions are skipped via TryLock — a held mutex means the session is
// mid-arrival and by definition not idle.
func (p *sessionPool) sweep(ttl time.Duration) int {
	if ttl <= 0 {
		return 0
	}
	cutoff := time.Now().Add(-ttl)
	n := 0
	for _, sh := range p.shards {
		sh.mu.RLock()
		ids := make([]string, 0, len(sh.m))
		ss := make([]*session, 0, len(sh.m))
		for id, s := range sh.m {
			ids = append(ids, id)
			ss = append(ss, s)
		}
		sh.mu.RUnlock()
		for i, s := range ss {
			if !s.mu.TryLock() {
				continue
			}
			if s.gone || s.lastUse.After(cutoff) {
				s.mu.Unlock()
				continue
			}
			if p.dir != "" && !(p.replicate && !s.dirty) {
				if err := p.saveLocked(ids[i], s); err != nil {
					p.log.Warn("eviction checkpoint failed; keeping session in memory", "session", ids[i], "err", err)
					s.mu.Unlock()
					continue
				}
			}
			s.gone = true
			p.lowSimRetire.Add(s.lowSim)
			s.mu.Unlock()
			p.dropIfSame(ids[i], s)
			n++
		}
	}
	p.evicted.Add(int64(n))
	return n
}

// restoreAll pages every checkpointed session back in — the startup path
// that makes a restart transparent. Unreadable checkpoints are logged and
// left in place for inspection; they do not block the boot.
func (p *sessionPool) restoreAll() int {
	if p.dir == "" {
		return 0
	}
	entries, err := os.ReadDir(p.dir)
	if err != nil {
		p.log.Warn("restore sessions failed", "dir", p.dir, "err", err)
		return 0
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), checkpointExt) {
			continue
		}
		id := strings.TrimSuffix(e.Name(), checkpointExt)
		if validateName(id) != nil {
			continue
		}
		if _, ok := p.get(id); ok { // get performs the page-in
			n++
		}
	}
	return n
}

// ids lists the resident session ids (live in memory; checkpointed-only
// sessions are enumerated from disk when the pool is durable).
func (p *sessionPool) ids() []string {
	seen := make(map[string]struct{})
	for _, sh := range p.shards {
		sh.mu.RLock()
		for id, s := range sh.m {
			s.mu.Lock()
			gone := s.gone
			s.mu.Unlock()
			if !gone {
				seen[id] = struct{}{}
			}
		}
		sh.mu.RUnlock()
	}
	if p.dir != "" {
		if entries, err := os.ReadDir(p.dir); err == nil {
			for _, e := range entries {
				if e.IsDir() || !strings.HasSuffix(e.Name(), checkpointExt) {
					continue
				}
				id := strings.TrimSuffix(e.Name(), checkpointExt)
				if validateName(id) == nil {
					seen[id] = struct{}{}
				}
			}
		}
	}
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	return out
}

// residentEpoch reports the ownership epoch of a session held by this pool
// (in memory or on disk), for fencing incoming replica ships.
func (p *sessionPool) residentEpoch(id string) (int64, bool) {
	s, ok := p.get(id)
	if !ok {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gone {
		return 0, false
	}
	return s.ownerEpoch, true
}

// checkpointBytes returns the session's current checkpoint file contents —
// the migration source. In replicated mode the file is already current after
// every assignment and is served as-is (a fresh snapshot would rotate the
// random stream and break byte-identity across the migration); otherwise the
// session is flushed first.
func (p *sessionPool) checkpointBytes(id string) ([]byte, error) {
	if p.dir == "" {
		return nil, fmt.Errorf("server: no state dir; sessions are not persistable")
	}
	s, ok := p.get(id)
	if ok && !p.replicate {
		s.mu.Lock()
		if !s.gone {
			if err := p.saveLocked(id, s); err != nil {
				s.mu.Unlock()
				return nil, err
			}
		}
		s.mu.Unlock()
	}
	if validateName(id) != nil {
		return nil, fs.ErrNotExist
	}
	return os.ReadFile(p.path(id))
}

// promote turns this pool's replica of id into the live, owned session with
// a bumped ownership epoch. Idempotent when the session is already resident
// at the same or a newer epoch. No new snapshot is taken — the replica's
// StreamState is re-encoded with only the epoch changed, so the promoted
// session resumes on exactly the rotation state that produced the previous
// owner's last response.
func (p *sessionPool) promote(id string) (int64, error) {
	var data []byte
	if p.replicas != nil {
		data, _ = p.replicas.take(id)
	}
	if data == nil {
		// No replica held: this promote can only succeed if the session is
		// already resident — an earlier promote consumed the replica and the
		// gateway is retrying (the idempotent path).
		if e, ok := p.residentEpoch(id); ok {
			return e, nil
		}
		return 0, fs.ErrNotExist
	}
	epoch, err := p.install(id, data, true)
	if err != nil {
		return 0, err
	}
	p.promoted.Add(1)
	return epoch, nil
}

// adopt installs a migrated session from checkpoint bytes (the ring
// join/leave path), bumping the ownership epoch to fence the previous owner.
// Idempotent when the session is already resident at the same or a newer
// epoch; a stale resident copy (lower epoch) is replaced, never kept.
func (p *sessionPool) adopt(id string, data []byte) (int64, error) {
	epoch, err := p.install(id, data, true)
	if err != nil {
		return 0, err
	}
	p.adopted.Add(1)
	// The session moved here; any replica this pool held for it is obsolete.
	if p.replicas != nil {
		p.replicas.drop(id)
	}
	return epoch, nil
}

// install decodes checkpoint bytes, optionally bumps the ownership epoch,
// persists the state, and registers the live session. The persisted bytes
// are the incoming state re-encoded (never re-snapshotted).
//
// Installation is epoch-fenced in both directions: a resident copy — live in
// memory or checkpointed on disk — whose ownership epoch is at or above the
// incoming (bumped) epoch wins and is kept (the idempotent-retry and
// raced-installer path), while a resident copy at a lower epoch is stale by
// construction (this daemon lost the session to a promotion or migration —
// e.g. it was SIGKILLed and rejoined with its old state dir — and the
// session moved on elsewhere) and is retired and replaced, so traffic never
// routes to a state that would silently drop the post-failover suffix.
func (p *sessionPool) install(id string, data []byte, bumpEpoch bool) (int64, error) {
	st, err := model.LoadStream(bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	if bumpEpoch {
		st.OwnerEpoch++
	}
	c, err := stream.Restore(st)
	if err != nil {
		return 0, err
	}
	s := sessionFromState(c, st)
	sh := p.shard(id)
	sh.mu.Lock()
	if cur, ok := sh.m[id]; ok {
		cur.mu.Lock()
		if !cur.gone {
			if cur.ownerEpoch >= st.OwnerEpoch {
				e := cur.ownerEpoch
				cur.mu.Unlock()
				sh.mu.Unlock()
				return e, nil
			}
			// Stale resident copy: the incoming epoch fences it.
			cur.gone = true
			p.lowSimRetire.Add(cur.lowSim)
		}
		cur.mu.Unlock()
		delete(sh.m, id)
	}
	if p.dir != "" {
		// An evicted or pre-restart checkpoint may also hold a newer epoch
		// than the incoming state; compare before overwriting the file (lazy
		// page-in resurrects the kept copy on next touch).
		if old, err := model.LoadStreamFile(p.path(id)); err == nil && old.OwnerEpoch >= st.OwnerEpoch {
			sh.mu.Unlock()
			return old.OwnerEpoch, nil
		}
		var buf bytes.Buffer
		if err := st.Save(&buf); err != nil {
			sh.mu.Unlock()
			return 0, err
		}
		if err := writeFileAtomic(p.path(id), buf.Bytes()); err != nil {
			sh.mu.Unlock()
			return 0, err
		}
	}
	sh.m[id] = s
	sh.mu.Unlock()
	// Give the promoted/adopted session a replica of its own right away: ship
	// the epoch-bumped state to this node's successor.
	if repl := p.repl.Load(); repl != nil && p.dir != "" {
		if fileData, err := os.ReadFile(p.path(id)); err == nil {
			if target, err := repl.ship(id, fileData); err != nil {
				p.shipFailures.Add(1)
				p.log.Warn("replica ship failed after install", "session", id, "target", target, "err", err)
			} else if target != "" {
				p.shipped.Add(1)
			}
		}
	}
	return st.OwnerEpoch, nil
}

func (p *sessionPool) count() int {
	n := 0
	for _, sh := range p.shards {
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// lowSimTotal sums the drift counters across live sessions plus the retired
// counts of evicted and deleted ones, so the exported counter stays
// monotone when sessions leave memory.
func (p *sessionPool) lowSimTotal() int64 {
	n := p.lowSimRetire.Load()
	for _, sh := range p.shards {
		sh.mu.RLock()
		for _, s := range sh.m {
			s.mu.Lock()
			n += s.lowSim
			s.mu.Unlock()
		}
		sh.mu.RUnlock()
	}
	return n
}
