package server

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"

	"mcdc/internal/core"
	"mcdc/internal/stream"
)

// session wraps one streaming clusterer. stream.Clusterer is single-goroutine
// by contract, so every operation holds the session's own mutex: arrivals
// within a session are serialized (preserving the per-session determinism
// contract — one rng, one presentation order), while different sessions
// proceed in parallel.
type session struct {
	mu     sync.Mutex
	c      *stream.Clusterer
	lowSim int64 // drift counter, guarded by mu
}

// sessionPool is a lock-sharded map of streaming sessions. Concurrent
// /assign calls for different sessions hash to (usually) different shards,
// so pool bookkeeping never becomes the serialization point — only the
// per-session mutex serializes, and only within one stream.
type sessionPool struct {
	shards []*sessionShard
}

type sessionShard struct {
	mu sync.RWMutex
	m  map[string]*session
}

func newSessionPool(shards int) *sessionPool {
	if shards <= 0 {
		shards = 16
	}
	p := &sessionPool{shards: make([]*sessionShard, shards)}
	for i := range p.shards {
		p.shards[i] = &sessionShard{m: make(map[string]*session)}
	}
	return p
}

func (p *sessionPool) shard(id string) *sessionShard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return p.shards[h.Sum32()%uint32(len(p.shards))]
}

func (p *sessionPool) get(id string) (*session, bool) {
	sh := p.shard(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	s, ok := sh.m[id]
	return s, ok
}

// create registers a new streaming session. It fails if the id is taken.
func (p *sessionPool) create(id string, cardinalities []int, window int, seed int64, workers int) error {
	c, err := stream.NewClusterer(stream.Config{
		Cardinalities: cardinalities,
		WindowSize:    window,
		MGCPL: core.MGCPLConfig{
			Workers: workers,
			Rand:    rand.New(rand.NewSource(seed)),
		},
	})
	if err != nil {
		return err
	}
	sh := p.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.m[id]; ok {
		return fmt.Errorf("server: session %q already exists", id)
	}
	sh.m[id] = &session{c: c}
	return nil
}

func (p *sessionPool) remove(id string) bool {
	sh := p.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.m[id]; !ok {
		return false
	}
	delete(sh.m, id)
	return true
}

func (p *sessionPool) count() int {
	n := 0
	for _, sh := range p.shards {
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// lowSimTotal sums the drift counters across sessions.
func (p *sessionPool) lowSimTotal() int64 {
	var n int64
	for _, sh := range p.shards {
		sh.mu.RLock()
		for _, s := range sh.m {
			s.mu.Lock()
			n += s.lowSim
			s.mu.Unlock()
		}
		sh.mu.RUnlock()
	}
	return n
}

// add feeds one row to the session, tracking drift.
func (s *session) add(row []int, driftThreshold float64) (stream.Assignment, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, err := s.c.Add(row)
	if err == nil && a.Similarity < driftThreshold {
		s.lowSim++
	}
	return a, err
}
