package server

import (
	"fmt"
	"io"
	"math/bits"
	"strconv"
	"sync/atomic"
	"time"
)

// histogram is a lock-free, alloc-free latency histogram: a fixed array of
// atomic bins over doubling bounds. The bin scheme is shared with
// cmd/mcdcload's client-side histogram — bounds double from 0.1ms for
// histBins steps (0.1ms · 2^20 ≈ 104.9s, the same "up to ~102s" ladder the
// load harness reports in milliseconds) — so a server-side exposition and a
// client-side report bucket identical latencies identically and the gateway
// can merge backend expositions bucket-by-bucket.
//
// Recording is one bit-length computation plus two atomic adds: nothing on
// the assign hot path takes a lock or allocates (pinned by AllocsPerRun in
// histogram_test.go).
const (
	// histMinNanos is the first bucket bound: 0.1ms, mcdcload's first bin.
	histMinNanos = 100_000
	// histBins is the count of finite doubling bounds; observations past the
	// last bound land in the +Inf overflow bucket.
	histBins = 21
)

type histogram struct {
	// buckets holds per-bin (non-cumulative) counts; index histBins is the
	// +Inf overflow bin. The exposition accumulates them into the cumulative
	// counts Prometheus histograms require.
	buckets [histBins + 1]atomic.Int64
	sum     atomic.Int64 // nanoseconds
}

// histLe holds the `le` label value of every finite bucket, in seconds,
// precomputed so writing an exposition never reformats floats and every
// backend emits byte-identical labels (the property the gateway's
// bucket-by-bucket merge relies on).
var histLe = func() [histBins]string {
	var out [histBins]string
	for i := range out {
		out[i] = strconv.FormatFloat(float64(int64(histMinNanos)<<i)/1e9, 'g', -1, 64)
	}
	return out
}()

// observe records one duration. Lock-free and alloc-free: the bucket index
// is the bit length of the ceiling ratio to the first bound.
func (h *histogram) observe(d time.Duration) {
	n := int64(d)
	if n < 0 {
		n = 0
	}
	i := histBins // +Inf
	if n <= histMinNanos<<(histBins-1) {
		// The first doubling bound ≥ n: ceil(n/min) rounded up to the next
		// power of two, i.e. the bit length of (ceil(n/min) - 1).
		q := uint64(n+histMinNanos-1) / histMinNanos
		if q <= 1 {
			i = 0
		} else {
			i = bits.Len64(q - 1)
		}
	}
	h.buckets[i].Add(1)
	h.sum.Add(n)
}

// count is the total number of observations.
func (h *histogram) count() int64 {
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// writeTo emits the histogram's sample lines — cumulative _bucket series,
// _sum, _count — under name, with labels (e.g. `stage="assign"`) prepended
// to the le label when non-empty. HELP/TYPE are the caller's job: several
// labeled histograms may share one family.
func (h *histogram) writeTo(w io.Writer, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	cum := int64(0)
	for i := 0; i < histBins; i++ {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, histLe[i], cum)
	}
	cum += h.buckets[histBins].Load()
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, float64(h.sum.Load())/1e9, name, cum)
		return
	}
	fmt.Fprintf(w, "%s_sum{%s} %g\n%s_count{%s} %d\n", name, labels, float64(h.sum.Load())/1e9, name, labels, cum)
}
