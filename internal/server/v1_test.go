package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestV1Aliases pins the versioning contract: every endpoint answers under
// its canonical /v1 path and its pre-versioning alias with the same body,
// and /metrics counts both spellings under the one canonical label.
func TestV1Aliases(t *testing.T) {
	snap, rows, _ := trainModel(t, 200, 6, 3, 3)
	s, ts := newTestServer(t, Config{})
	if err := s.AddModel("m", snap); err != nil {
		t.Fatal(err)
	}

	// GET endpoints answer under both spellings; /models is static so its
	// bodies must match exactly (/healthz carries a live uptime field).
	for _, path := range []string{"/healthz", "/models", "/metrics"} {
		r1, d1 := get(t, ts.URL+"/v1"+path)
		r2, d2 := get(t, ts.URL+path)
		if r1.StatusCode != http.StatusOK || r2.StatusCode != http.StatusOK {
			t.Fatalf("%s: status v1=%d legacy=%d", path, r1.StatusCode, r2.StatusCode)
		}
		if path == "/models" && !bytes.Equal(d1, d2) {
			t.Fatalf("%s: v1 and legacy bodies differ:\n%s\nvs\n%s", path, d1, d2)
		}
	}

	// POST /assign: both spellings answer the same assignment.
	r1, d1 := post(t, ts.URL+"/v1/assign", map[string]any{"model": "m", "row": rows[0]})
	r2, d2 := post(t, ts.URL+"/assign", map[string]any{"model": "m", "row": rows[0]})
	if r1.StatusCode != 200 || r2.StatusCode != 200 || !bytes.Equal(d1, d2) {
		t.Fatalf("assign alias mismatch: %d %s vs %d %s", r1.StatusCode, d1, r2.StatusCode, d2)
	}

	// Session lifecycle across mixed spellings: create on legacy, assign on
	// v1, delete on v1.
	if r, d := post(t, ts.URL+"/sessions", map[string]any{"session": "s1", "model": "m"}); r.StatusCode != http.StatusCreated {
		t.Fatalf("create session via legacy path: %d %s", r.StatusCode, d)
	}
	if r, d := post(t, ts.URL+"/v1/assign", map[string]any{"session": "s1", "row": rows[1]}); r.StatusCode != 200 {
		t.Fatalf("assign to session via v1: %d %s", r.StatusCode, d)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/s1", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete session via v1: %d", resp.StatusCode)
	}

	// Metrics: one continuous series per endpoint, labeled canonically. The
	// three assigns above (one per spelling, one session) land on the same
	// counter, and no legacy-labeled series exists.
	_, mdata := get(t, ts.URL+"/v1/metrics")
	if want := `mcdcd_http_requests_total{endpoint="POST /v1/assign"} 3`; !strings.Contains(string(mdata), want) {
		t.Fatalf("metrics missing %q:\n%s", want, mdata)
	}
	if strings.Contains(string(mdata), `endpoint="POST /assign"`) {
		t.Fatalf("metrics leak a legacy-labeled series:\n%s", mdata)
	}
}

// TestErrorEnvelopes pins the stable error-code table endpoint by endpoint:
// every failure answers {"error": ..., "code": ...} with the documented
// status and code.
func TestErrorEnvelopes(t *testing.T) {
	snap, rows, _ := trainModel(t, 200, 6, 3, 3)
	s, ts := newTestServer(t, Config{})
	if err := s.AddModel("m", snap); err != nil {
		t.Fatal(err)
	}
	if r, d := post(t, ts.URL+"/v1/sessions", map[string]any{"session": "s1", "model": "m"}); r.StatusCode != http.StatusCreated {
		t.Fatalf("seed session: %d %s", r.StatusCode, d)
	}

	// A snapshot file stamped with a future format version, for the
	// version_mismatch row of the table.
	dir := t.TempDir()
	goodPath := filepath.Join(dir, "good.bin")
	if err := snap.SaveFile(goodPath); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(goodPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[9]++ // header is 8-byte magic + kind + version; bump the version
	badPath := filepath.Join(dir, "future.bin")
	if err := os.WriteFile(badPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Malformed JSON is sent raw — it cannot ride the table's marshal path.
	resp0, err := http.Post(ts.URL+"/v1/assign", "application/json", strings.NewReader(`{"model":`))
	if err != nil {
		t.Fatal(err)
	}
	d0 := readAll(t, resp0)
	var env0 errorResponse
	if resp0.StatusCode != 400 || json.Unmarshal(d0, &env0) != nil || env0.Code != codeBadRequest {
		t.Fatalf("malformed json: %d %s, want 400 %q", resp0.StatusCode, d0, codeBadRequest)
	}

	cases := []struct {
		name   string
		method string
		path   string
		body   any
		status int
		code   string
	}{
		{"row schema", "POST", "/v1/assign", map[string]any{"model": "m", "row": []int{1}}, 400, codeBadRequest},
		{"model and session", "POST", "/v1/assign", map[string]any{"model": "m", "session": "s1", "row": rows[0]}, 400, codeBadRequest},
		{"neither model nor session", "POST", "/v1/assign", map[string]any{"row": rows[0]}, 400, codeBadRequest},
		{"assign unknown model", "POST", "/v1/assign", map[string]any{"model": "ghost", "row": rows[0]}, 404, codeUnknownModel},
		{"assign unknown session", "POST", "/v1/assign", map[string]any{"session": "ghost", "row": rows[0]}, 404, codeUnknownSession},
		{"batch unknown model", "POST", "/v1/assign/batch", map[string]any{"model": "ghost", "rows": rows[:2]}, 404, codeUnknownModel},
		{"batch empty", "POST", "/v1/assign/batch", map[string]any{"model": "m", "rows": [][]int{}}, 400, codeBadRequest},
		{"session for unknown model", "POST", "/v1/sessions", map[string]any{"session": "s2", "model": "ghost"}, 404, codeUnknownModel},
		{"duplicate session", "POST", "/v1/sessions", map[string]any{"session": "s1", "model": "m"}, 409, codeConflict},
		{"delete unknown session", "DELETE", "/v1/sessions/ghost", nil, 404, codeUnknownSession},
		{"delete unknown model", "DELETE", "/v1/models/ghost", nil, 404, codeUnknownModel},
		{"load unreadable snapshot", "POST", "/v1/models", map[string]any{"name": "x", "path": filepath.Join(dir, "missing.bin")}, 400, codeBadRequest},
		{"load future snapshot", "POST", "/v1/models", map[string]any{"name": "x", "path": badPath}, 422, codeVersionMismatch},
	}
	for _, tc := range cases {
		var resp *http.Response
		var data []byte
		switch tc.method {
		case "POST":
			resp, data = post(t, ts.URL+tc.path, tc.body)
		case "DELETE":
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+tc.path, nil)
			r, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			data = readAll(t, r)
			resp = r
		}
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, data)
			continue
		}
		var env errorResponse
		if err := json.Unmarshal(data, &env); err != nil {
			t.Errorf("%s: body is not an envelope: %v (%s)", tc.name, err, data)
			continue
		}
		if env.Code != tc.code {
			t.Errorf("%s: code %q, want %q (error %q)", tc.name, env.Code, tc.code, env.Error)
		}
		if env.Error == "" {
			t.Errorf("%s: empty error message", tc.name)
		}
	}
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
