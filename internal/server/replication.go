package server

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"mcdc/internal/hashring"
	"mcdc/internal/model"
)

// Replication (fleet elasticity): when a daemon runs with Config.Replicate,
// every session checkpoint is written locally and then shipped to the
// session's ring successor, so a warm standby holds the latest state of
// every session and a dead backend's sessions can be promoted elsewhere
// without losing a single admitted request.
//
// The ordering invariant that makes failover byte-identical is
// checkpoint-before-respond: an assignment's response is not written until
// its post-apply checkpoint is durable locally and shipped (best-effort) to
// the successor. Because stream.Clusterer.Snapshot rotates the session's
// random stream, checkpoint cadence is part of the deterministic contract —
// a replicated daemon therefore checkpoints after *every* assignment, which
// means the replica always resumes from the exact rotation state that
// produced the last delivered response. The reference run a failover is
// compared against must also run replicated (a solo daemon with -replicate
// performs the same rotations without shipping anywhere).
//
// Zombie fencing: checkpoints carry an ownership epoch (model.StreamState,
// format v2). Promotion bumps the epoch; a replica receiver rejects any
// shipped checkpoint whose epoch is lower than what it already holds, so a
// partitioned old primary cannot overwrite the promoted state.

// fleetSecretHeader authenticates intra-fleet endpoints (replica shipping,
// promotion, adoption, membership pushes). When Config.FleetSecret is set,
// requests without the matching header are refused with 403.
const fleetSecretHeader = "X-MCDC-Fleet-Secret"

// replicator knows the fleet membership and ships checkpoint bytes to each
// session's ring successor. It is swapped atomically on membership changes
// (POST /v1/fleet), so in-flight ships finish against the ring they started
// with.
type replicator struct {
	self   string // this daemon's fleet address (host:port)
	secret string
	client *http.Client

	mu   sync.RWMutex
	ring *hashring.Ring
}

// shipTimeout bounds one replica ship. Ships run synchronously under the
// session mutex (checkpoint-before-respond keeps per-session ship order, so
// a stale checkpoint can never overwrite a newer one at the receiver), which
// makes this timeout part of every assignment's latency on that session — it
// must stay far below the general 5s client default. A slow successor then
// costs at most this much per assignment, and the miss is surfaced as a ship
// failure (coverage gap in /healthz) instead of a stalled session.
const shipTimeout = 750 * time.Millisecond

func newReplicator(self string, peers []string, secret string, client *http.Client) *replicator {
	if client == nil {
		client = &http.Client{Timeout: shipTimeout}
	}
	r := &replicator{self: self, secret: secret, client: client}
	r.setMembership(peers)
	return r
}

// setMembership rebuilds the placement ring from the full fleet list
// (self included or not — self is added unconditionally).
func (r *replicator) setMembership(fleet []string) {
	ring := hashring.New(0)
	ring.Add(r.self)
	ring.Add(fleet...)
	r.mu.Lock()
	r.ring = ring
	r.mu.Unlock()
}

// members returns the current fleet membership, sorted.
func (r *replicator) members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.ring.Nodes()
}

// target returns the backend that should hold id's replica: the first node
// in the session's ring-successor chain that is not this daemon. When this
// daemon is the ring owner that is the natural successor; when it holds the
// session off-ring (post-failover) it is the ring owner itself. "" means
// there is nowhere to ship (solo fleet).
func (r *replicator) target(id string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, n := range r.ring.GetN(id, r.ring.Len()) {
		if n != r.self {
			return n
		}
	}
	return ""
}

// ship POSTs one checkpoint's bytes to the session's replica holder.
// A 409 from the receiver means this daemon's state is stale (it lost
// ownership to a promotion) — surfaced as errStaleOwner so the caller can
// log the fencing event distinctly.
func (r *replicator) ship(id string, data []byte) (string, error) {
	t := r.target(id)
	if t == "" {
		return "", nil // solo fleet: local checkpoint is all the durability there is
	}
	req, err := http.NewRequest(http.MethodPost,
		"http://"+t+"/v1/replica/checkpoint?session="+id, bytes.NewReader(data))
	if err != nil {
		return t, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if r.secret != "" {
		req.Header.Set(fleetSecretHeader, r.secret)
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return t, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
	switch {
	case resp.StatusCode == http.StatusConflict:
		return t, errStaleOwner
	case resp.StatusCode/100 != 2:
		return t, fmt.Errorf("replica target %s: HTTP %d", t, resp.StatusCode)
	}
	return t, nil
}

// errStaleOwner marks a ship rejected by epoch fencing: the receiver holds a
// newer ownership epoch, i.e. this daemon is a zombie primary for that id.
var errStaleOwner = errors.New("server: checkpoint rejected as stale (session was promoted elsewhere)")

// dropReplica asks a peer to delete its replica of id (after the session
// itself was deleted). Best-effort.
func (r *replicator) dropReplica(id string) {
	t := r.target(id)
	if t == "" {
		return
	}
	req, err := http.NewRequest(http.MethodDelete, "http://"+t+"/v1/replica/"+id, nil)
	if err != nil {
		return
	}
	if r.secret != "" {
		req.Header.Set(fleetSecretHeader, r.secret)
	}
	if resp, err := r.client.Do(req); err == nil {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		resp.Body.Close()
	}
}

// replicaStore holds shipped checkpoints under <state-dir>/replicas/, one
// file per session, plus the highest ownership epoch seen per id (the
// fencing state). Epochs for files that predate this process are loaded
// lazily from the files themselves.
type replicaStore struct {
	dir    string
	mu     sync.Mutex
	epochs map[string]int64 // id → highest accepted epoch; epochUnknown = not yet read
}

const epochUnknown = int64(-1)

func newReplicaStore(dir string) (*replicaStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	rs := &replicaStore{dir: dir, epochs: make(map[string]int64)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), checkpointExt) {
			continue
		}
		id := strings.TrimSuffix(e.Name(), checkpointExt)
		if validateName(id) == nil {
			rs.epochs[id] = epochUnknown
		}
	}
	return rs, nil
}

func (rs *replicaStore) path(id string) string { return filepath.Join(rs.dir, id+checkpointExt) }

func (rs *replicaStore) count() int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return len(rs.epochs)
}

func (rs *replicaStore) ids() []string {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := make([]string, 0, len(rs.epochs))
	for id := range rs.epochs {
		out = append(out, id)
	}
	return out
}

// epochLocked returns the highest accepted epoch for id, reading it from the
// on-disk file the first time after a restart. The caller holds rs.mu.
func (rs *replicaStore) epochLocked(id string) (int64, bool) {
	e, ok := rs.epochs[id]
	if !ok {
		return 0, false
	}
	if e == epochUnknown {
		st, err := model.LoadStreamFile(rs.path(id))
		if err != nil {
			// Unreadable pre-restart replica: treat as absent for fencing (a
			// fresh ship may repair it) but keep the file for inspection.
			delete(rs.epochs, id)
			return 0, false
		}
		e = st.OwnerEpoch
		rs.epochs[id] = e
	}
	return e, true
}

// accept stores one shipped checkpoint after fencing: a checkpoint whose
// epoch is strictly below the highest already accepted for that id is
// rejected (the shipper is a zombie primary). Same-epoch ships advance state
// — the primary ships after every assignment without bumping the epoch.
func (rs *replicaStore) accept(id string, data []byte, epoch int64) error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if cur, ok := rs.epochLocked(id); ok && epoch < cur {
		return errStaleOwner
	}
	if err := writeFileAtomic(rs.path(id), data); err != nil {
		return err
	}
	rs.epochs[id] = epoch
	return nil
}

// take removes id from the store and returns its checkpoint bytes — the
// promotion path. Returns fs.ErrNotExist when no replica is held.
func (rs *replicaStore) take(id string) ([]byte, error) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	data, err := os.ReadFile(rs.path(id))
	if err != nil {
		return nil, err
	}
	os.Remove(rs.path(id))
	delete(rs.epochs, id)
	return data, nil
}

// drop deletes id's replica (after the session was deleted fleet-wide).
func (rs *replicaStore) drop(id string) bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	_, ok := rs.epochs[id]
	delete(rs.epochs, id)
	if validateName(id) == nil {
		if os.Remove(rs.path(id)) == nil {
			ok = true
		}
	}
	return ok
}

// writeFileAtomic writes data via tmp+rename so readers (and a crash) only
// ever observe complete checkpoints — same discipline as model.saveFile.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// ---- server integration ----

// ConfigureReplication wires the daemon into a replicated fleet after New:
// self is this daemon's advertised address, peers the other fleet members.
// It may be called again to replace membership (tests, late binding of
// listener addresses). Requires Config.Replicate and a StateDir.
func (s *Server) ConfigureReplication(self string, peers []string, secret string) {
	r := newReplicator(self, peers, secret, nil)
	s.fleetSecret = secret
	s.sessions.repl.Store(r)
	s.log.Info("replication configured", "self", self, "peers", peers)
}

// checkFleetSecret guards intra-fleet endpoints. Returns false (and writes
// the 403 envelope) when a configured secret is missing or wrong.
func (s *Server) checkFleetSecret(w http.ResponseWriter, r *http.Request) bool {
	if s.fleetSecret == "" || r.Header.Get(fleetSecretHeader) == s.fleetSecret {
		return true
	}
	writeError(w, http.StatusForbidden, codeForbidden, "missing or wrong %s", fleetSecretHeader)
	return false
}

// handleReplicaCheckpoint receives one shipped checkpoint
// (POST /v1/replica/checkpoint?session=<id>, body = envelope bytes).
func (s *Server) handleReplicaCheckpoint(w http.ResponseWriter, r *http.Request) {
	if !s.checkFleetSecret(w, r) {
		return
	}
	id := r.URL.Query().Get("session")
	if err := validateName(id); err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, "%v", err)
		return
	}
	if s.sessions.replicas == nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, "daemon runs without -replicate; not accepting replicas")
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 256<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, "read checkpoint: %v", err)
		return
	}
	st, err := model.LoadStream(bytes.NewReader(data))
	if err != nil {
		status, code := http.StatusBadRequest, codeBadRequest
		var verr *model.VersionError
		if errors.As(err, &verr) {
			status, code = http.StatusUnprocessableEntity, codeVersionMismatch
		}
		writeError(w, status, code, "decode checkpoint: %v", err)
		return
	}
	// Fence against the resident copy too: if this daemon owns the session at
	// an epoch at or above the shipper's, the shipper is the zombie.
	if cur, resident := s.sessions.residentEpoch(id); resident && st.OwnerEpoch <= cur {
		s.sessions.replicaStale.Add(1)
		writeError(w, http.StatusConflict, codeConflict,
			"session %q is owned here at epoch %d (shipped epoch %d)", id, cur, st.OwnerEpoch)
		return
	}
	if err := s.sessions.replicas.accept(id, data, st.OwnerEpoch); err != nil {
		if errors.Is(err, errStaleOwner) {
			s.sessions.replicaStale.Add(1)
			writeError(w, http.StatusConflict, codeConflict, "stale checkpoint for %q (epoch %d)", id, st.OwnerEpoch)
			return
		}
		writeError(w, http.StatusInternalServerError, codeBadRequest, "store replica: %v", err)
		return
	}
	s.sessions.replicaRecv.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

// handleReplicaDelete drops a replica after its session was deleted.
func (s *Server) handleReplicaDelete(w http.ResponseWriter, r *http.Request) {
	if !s.checkFleetSecret(w, r) {
		return
	}
	id := r.PathValue("id")
	if s.sessions.replicas != nil {
		s.sessions.replicas.drop(id)
	}
	w.WriteHeader(http.StatusNoContent)
}

// handlePromoteSession turns this daemon's replica of a session into the
// live, owned session with a bumped ownership epoch — the gateway calls this
// on the failover path after the owner stopped answering. Idempotent: if the
// session is already resident here at the same or a newer epoch, the current
// epoch is returned; a stale resident copy (this daemon rejoined with an old
// state dir after losing the session) is replaced by the newer replica.
//
// No new snapshot is taken during promotion: the replica's StreamState is
// re-encoded with only the epoch changed, so the promoted session resumes on
// exactly the rotation state that produced the owner's last response —
// byte-identity across failover follows.
func (s *Server) handlePromoteSession(w http.ResponseWriter, r *http.Request) {
	if !s.checkFleetSecret(w, r) {
		return
	}
	id := r.PathValue("id")
	if err := validateName(id); err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, "%v", err)
		return
	}
	epoch, err := s.sessions.promote(id)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			writeError(w, http.StatusNotFound, codeUnknownSession, "no replica of session %q held here", id)
			return
		}
		writeError(w, http.StatusInternalServerError, codeBadRequest, "promote %q: %v", id, err)
		return
	}
	s.log.Info("promoted session from replica", "session", id, "epoch", epoch)
	writeJSON(w, http.StatusOK, map[string]any{"session": id, "epoch": epoch})
}

// handleAdoptSession installs a migrated session from checkpoint bytes in
// the request body — the ring join/leave migration path. Like promotion it
// bumps the ownership epoch (fencing the previous owner), never takes a
// fresh snapshot, and replaces a stale resident copy while keeping a
// resident copy that is already at the same or a newer epoch.
func (s *Server) handleAdoptSession(w http.ResponseWriter, r *http.Request) {
	if !s.checkFleetSecret(w, r) {
		return
	}
	id := r.PathValue("id")
	if err := validateName(id); err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, "%v", err)
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 256<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, "read checkpoint: %v", err)
		return
	}
	epoch, err := s.sessions.adopt(id, data)
	if err != nil {
		var verr *model.VersionError
		switch {
		case errors.As(err, &verr):
			writeError(w, http.StatusUnprocessableEntity, codeVersionMismatch, "%v", err)
		case errors.Is(err, errStaleOwner):
			writeError(w, http.StatusConflict, codeConflict, "%v", err)
		default:
			writeError(w, http.StatusBadRequest, codeBadRequest, "adopt %q: %v", id, err)
		}
		return
	}
	s.log.Info("adopted migrated session", "session", id, "epoch", epoch)
	writeJSON(w, http.StatusOK, map[string]any{"session": id, "epoch": epoch})
}

// handleSessionCheckpoint serves a session's current checkpoint bytes — the
// migration source. In replicated mode the on-disk file is already current
// after every assignment, and serving it as-is (instead of snapshotting
// again) avoids a random-stream rotation that would break byte-identity
// across the migration. Without replication the session is flushed first.
func (s *Server) handleSessionCheckpoint(w http.ResponseWriter, r *http.Request) {
	if !s.checkFleetSecret(w, r) {
		return
	}
	id := r.PathValue("id")
	if err := validateName(id); err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, "%v", err)
		return
	}
	data, err := s.sessions.checkpointBytes(id)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			writeError(w, http.StatusNotFound, codeUnknownSession, "no session %q", id)
			return
		}
		writeError(w, http.StatusInternalServerError, codeBadRequest, "checkpoint %q: %v", id, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

// handleListSessions inventories resident sessions and held replicas — the
// gateway's migration planner reads this.
func (s *Server) handleListSessions(w http.ResponseWriter, r *http.Request) {
	if !s.checkFleetSecret(w, r) {
		return
	}
	resident := s.sessions.ids()
	replicas := []string{}
	if s.sessions.replicas != nil {
		replicas = s.sessions.replicas.ids()
	}
	sort.Strings(resident)
	sort.Strings(replicas)
	writeJSON(w, http.StatusOK, map[string][]string{"sessions": resident, "replicas": replicas})
}

// handleFleet replaces this daemon's view of fleet membership (the gateway
// broadcasts the new list after a ring join/leave), re-aiming replica
// shipping at the new successors.
func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	if !s.checkFleetSecret(w, r) {
		return
	}
	var req struct {
		Peers []string `json:"peers"`
	}
	if !decodeJSON(w, r, &req) {
		return
	}
	repl := s.sessions.repl.Load()
	if repl == nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, "daemon runs without -replicate; no fleet to configure")
		return
	}
	repl.setMembership(req.Peers)
	s.log.Info("fleet membership updated", "members", repl.members())
	writeJSON(w, http.StatusOK, map[string][]string{"members": repl.members()})
}
