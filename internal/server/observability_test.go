package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"mcdc/internal/model"
)

// syncBuf is a goroutine-safe log sink for capturing slog output in tests.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// waitForLog polls the sink until the substring appears (log lines are
// written after the response is flushed, so a just-returned request's line
// may trail it by a scheduler beat).
func waitForLog(t *testing.T, buf *syncBuf, substr string) string {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if out := buf.String(); strings.Contains(out, substr) {
			return out
		}
		if time.Now().After(deadline) {
			t.Fatalf("log never contained %q:\n%s", substr, buf.String())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRequestIDMintedAndEchoed pins the correlation contract on a single
// daemon: a request without an id gets a minted one back, a valid client id
// is echoed verbatim, and a garbage id is replaced rather than reflected.
func TestRequestIDMintedAndEchoed(t *testing.T) {
	snap, rows, _ := trainModel(t, 200, 6, 3, 7)
	s, ts := newTestServer(t, Config{})
	if err := s.AddModel("m", snap); err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(map[string]any{"model": "m", "row": rows[0]})

	do := func(id string) *http.Response {
		t.Helper()
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/assign", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		if id != "" {
			req.Header.Set(RequestIDHeader, id)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	if got := do("").Header.Get(RequestIDHeader); got == "" {
		t.Error("no request id minted for a bare request")
	}
	if got := do("client-trace-42").Header.Get(RequestIDHeader); got != "client-trace-42" {
		t.Errorf("valid client id not echoed: got %q", got)
	}
	if got := do("has space").Header.Get(RequestIDHeader); got == "" || strings.Contains(got, " ") {
		t.Errorf("invalid client id not replaced with a minted one: got %q", got)
	}
	long := strings.Repeat("x", 200)
	if got := do(long).Header.Get(RequestIDHeader); got == long {
		t.Error("oversized client id reflected instead of replaced")
	}

	// Two minted ids must differ — correlation is useless otherwise.
	a := do("").Header.Get(RequestIDHeader)
	b := do("").Header.Get(RequestIDHeader)
	if a == b {
		t.Errorf("minted ids collide: %q", a)
	}
}

// TestRequestIDOnErrorAndShed pins the id on the failure paths: the error
// envelope (404 unknown model) and the 429 shed both carry it — exactly the
// responses an operator most wants to trace.
func TestRequestIDOnErrorAndShed(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1, QueueDepth: 0})

	resp, data := post(t, ts.URL+"/v1/sessions", map[string]any{"session": "s", "model": "ghost"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model: status %d (%s)", resp.StatusCode, data)
	}
	if resp.Header.Get(RequestIDHeader) == "" {
		t.Error("error envelope response missing the request id header")
	}

	// Occupy the only slot so the next assign sheds with 429.
	s.admission.slots <- struct{}{}
	defer func() { <-s.admission.slots }()
	resp, data = post(t, ts.URL+"/v1/assign", map[string]any{"model": "m", "row": []int{0}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed: status %d (%s)", resp.StatusCode, data)
	}
	if resp.Header.Get(RequestIDHeader) == "" {
		t.Error("429 shed response missing the request id header")
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 shed response missing Retry-After")
	}
	var env struct{ Code string }
	if json.Unmarshal(data, &env); env.Code != "overloaded" {
		t.Errorf("shed envelope code = %q, want overloaded (%s)", env.Code, data)
	}
}

// TestRequestIDThroughGateway pins end-to-end correlation: one id, supplied
// by the client, is echoed by the gateway AND lands in the backend's
// slow-request log — on the JSON path and on the binary frame path.
func TestRequestIDThroughGateway(t *testing.T) {
	snap, rows, _ := trainModel(t, 200, 6, 3, 9)
	var buf syncBuf
	_, gts, backends, _ := gatewayFleet(t, 1, Config{
		Logger:  slog.New(slog.NewTextHandler(&buf, nil)),
		LogSlow: time.Nanosecond, // every request is "slow": each one logs its id
	})
	if err := backends[0].AddModel("m", snap); err != nil {
		t.Fatal(err)
	}

	// JSON path.
	body, _ := json.Marshal(map[string]any{"model": "m", "row": rows[0]})
	req, _ := http.NewRequest(http.MethodPost, gts.URL+"/v1/assign", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(RequestIDHeader, "e2e-json-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); got != "e2e-json-1" {
		t.Errorf("gateway echoed %q, want e2e-json-1", got)
	}
	out := waitForLog(t, &buf, "e2e-json-1")
	if !strings.Contains(out, "request_id=e2e-json-1") {
		t.Errorf("backend slow log lacks request_id attr:\n%s", out)
	}

	// Binary frame path: the id rides the same HTTP header over the wire
	// content type.
	var wire bytes.Buffer
	_ = model.WriteWireHeader(&wire)
	_ = model.WriteFrame(&wire, model.FrameAssign, model.AppendAssignRequest(nil, "m", "", rows[1]))
	req, _ = http.NewRequest(http.MethodPost, gts.URL+"/v1/assign", bytes.NewReader(wire.Bytes()))
	req.Header.Set("Content-Type", WireContentType)
	req.Header.Set(RequestIDHeader, "e2e-wire-1")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wire assign through gateway: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(RequestIDHeader); got != "e2e-wire-1" {
		t.Errorf("gateway echoed %q on the wire path, want e2e-wire-1", got)
	}
	waitForLog(t, &buf, "request_id=e2e-wire-1")
}

// TestSlowRequestLogging pins the -log-slow contract: below the threshold
// nothing logs at Info level; with a threshold of 0 disabled entirely.
func TestSlowRequestLogging(t *testing.T) {
	snap, rows, _ := trainModel(t, 200, 6, 3, 11)
	var buf syncBuf
	s, ts := newTestServer(t, Config{
		Logger:  slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelWarn})),
		LogSlow: time.Hour, // nothing is that slow
	})
	if err := s.AddModel("m", snap); err != nil {
		t.Fatal(err)
	}
	resp, _ := post(t, ts.URL+"/v1/assign", map[string]any{"model": "m", "row": rows[0]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("assign: status %d", resp.StatusCode)
	}
	time.Sleep(10 * time.Millisecond)
	if out := buf.String(); strings.Contains(out, "slow request") {
		t.Errorf("fast request logged as slow:\n%s", out)
	}
}
