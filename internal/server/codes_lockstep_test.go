package server

import (
	"testing"

	"mcdc/internal/analysis/passes/errenvelope"
)

// TestStableCodeTable pins the errenvelope analyzer's code table to the
// constants actually declared here. The codes are a machine contract (PR 6):
// the analyzer rejects writeError calls with off-table codes, so if the two
// tables drift apart the analyzer either misses a new code or flags a legal
// one. Extend errors.go and the analyzer in the same commit; this test is
// what fails when one side is forgotten.
func TestStableCodeTable(t *testing.T) {
	declared := []string{
		codeBadRequest,
		codeUnknownModel,
		codeUnknownSession,
		codeConflict,
		codeVersionMismatch,
		codeOverloaded,
		codeBadGateway,
		codeForbidden,
	}
	table := errenvelope.StableCodes()
	for _, code := range declared {
		if !table[code] {
			t.Errorf("code %q is declared in errors.go but missing from the errenvelope analyzer table", code)
		}
	}
	if len(table) != len(declared) {
		t.Errorf("errenvelope table has %d codes, errors.go declares %d — the tables must move in lockstep", len(table), len(declared))
	}
}
