package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// gatewayFleet boots n backend daemons serving the same snapshot plus a
// gateway over them, returning the gateway test server, the backends, and
// their test servers.
func gatewayFleet(t *testing.T, n int, cfg Config) (*Gateway, *httptest.Server, []*Server, []*httptest.Server) {
	return gatewayFleetCfg(t, n, cfg, GatewayConfig{})
}

// gatewayFleetCfg is gatewayFleet with an explicit gateway config. When the
// backend config asks for replication, each backend gets its own state dir
// and the fleet membership is wired up once the listener addresses are known.
func gatewayFleetCfg(t *testing.T, n int, cfg Config, gcfg GatewayConfig) (*Gateway, *httptest.Server, []*Server, []*httptest.Server) {
	t.Helper()
	backends := make([]*Server, n)
	tss := make([]*httptest.Server, n)
	addrs := make([]string, n)
	for i := range backends {
		bc := cfg
		if bc.Replicate && bc.StateDir == "" {
			bc.StateDir = t.TempDir()
		}
		backends[i], tss[i] = newTestServer(t, bc)
		addrs[i] = strings.TrimPrefix(tss[i].URL, "http://")
	}
	if cfg.Replicate {
		for i := range backends {
			backends[i].ConfigureReplication(addrs[i], addrs, gcfg.FleetSecret)
		}
	}
	gcfg.Backends = addrs
	gw, err := NewGateway(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	gts := httptest.NewServer(gw.Handler())
	t.Cleanup(func() { gts.Close(); gw.Close() })
	return gw, gts, backends, tss
}

// TestGatewayByteIdenticalToSingleBackend pins the tentpole acceptance
// criterion: a 2-backend gateway answers /assign and /assign/batch with the
// exact bytes a single backend produces for the same requests.
func TestGatewayByteIdenticalToSingleBackend(t *testing.T) {
	snap, rows, _ := trainModel(t, 300, 8, 3, 51)
	_, gts, backends, _ := gatewayFleet(t, 2, Config{})
	for _, b := range backends {
		if err := b.AddModel("m", snap); err != nil {
			t.Fatal(err)
		}
	}
	solo, soloTS := newTestServer(t, Config{})
	if err := solo.AddModel("m", snap); err != nil {
		t.Fatal(err)
	}

	// Single assignments: routed by row key, answered verbatim.
	for i, row := range rows[:60] {
		body := map[string]any{"model": "m", "row": row}
		gresp, gdata := post(t, gts.URL+"/assign", body)
		sresp, sdata := post(t, soloTS.URL+"/assign", body)
		if gresp.StatusCode != http.StatusOK || sresp.StatusCode != http.StatusOK {
			t.Fatalf("row %d: gateway %d, solo %d (%s | %s)", i, gresp.StatusCode, sresp.StatusCode, gdata, sdata)
		}
		if string(gdata) != string(sdata) {
			t.Fatalf("row %d: gateway %q != solo %q", i, gdata, sdata)
		}
	}

	// Batch: scattered by row key across both backends, gathered in order.
	body := map[string]any{"model": "m", "rows": rows}
	gresp, gdata := post(t, gts.URL+"/assign/batch", body)
	sresp, sdata := post(t, soloTS.URL+"/assign/batch", body)
	if gresp.StatusCode != http.StatusOK || sresp.StatusCode != http.StatusOK {
		t.Fatalf("batch: gateway %d, solo %d", gresp.StatusCode, sresp.StatusCode)
	}
	if string(gdata) != string(sdata) {
		t.Fatal("gateway batch response is not byte-identical to the single backend")
	}
	// The scatter really used both backends (row diversity guarantees it at
	// this size — otherwise the test silently degrades to a proxy check).
	spread := 0
	for _, b := range backends {
		sm, ok := b.registry.get("m")
		if ok && sm.buf.len() > 0 {
			spread++
		}
	}
	if spread != 2 {
		t.Fatalf("batch traffic reached %d/2 backends", spread)
	}
}

// TestGatewaySessionLifecycleAndPlacement drives a session's whole life
// through the gateway and checks it lives on exactly the backend /ring
// predicts, with responses byte-identical to a solo daemon fed the same
// stream.
func TestGatewaySessionLifecycleAndPlacement(t *testing.T) {
	snap, rows, _ := trainModel(t, 200, 6, 3, 53)
	_, gts, backends, tss := gatewayFleet(t, 2, Config{})
	for _, b := range backends {
		if err := b.AddModel("m", snap); err != nil {
			t.Fatal(err)
		}
	}
	solo, soloTS := newTestServer(t, Config{})
	if err := solo.AddModel("m", snap); err != nil {
		t.Fatal(err)
	}

	createSession(t, gts.URL, "sess-1", 40, 17)
	createSession(t, soloTS.URL, "sess-1", 40, 17)
	gtail := feedSession(t, gts.URL, "sess-1", rows, 0, 100)
	stail := feedSession(t, soloTS.URL, "sess-1", rows, 0, 100)
	for i := range gtail {
		if gtail[i] != stail[i] {
			t.Fatalf("session arrival %d: gateway %q != solo %q", i, gtail[i], stail[i])
		}
	}

	// /ring names the owner; the session must be resident there and only
	// there.
	_, data := get(t, gts.URL+"/ring?session=sess-1")
	var ring struct {
		Backend  string   `json:"backend"`
		Backends []string `json:"backends"`
	}
	if err := json.Unmarshal(data, &ring); err != nil {
		t.Fatal(err)
	}
	if len(ring.Backends) != 2 || ring.Backend == "" {
		t.Fatalf("ring info: %s", data)
	}
	owner := ring.Backend
	for i, ts := range tss {
		addr := strings.TrimPrefix(ts.URL, "http://")
		want := 0
		if addr == owner {
			want = 1
		}
		if got := backends[i].sessions.count(); got != want {
			t.Errorf("backend %s holds %d sessions, want %d", addr, got, want)
		}
	}

	// Duplicate create through the gateway conflicts like a direct one.
	resp, _ := post(t, gts.URL+"/sessions", map[string]any{"session": "sess-1", "model": "m"})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate create through gateway: %d", resp.StatusCode)
	}
	// Delete routes to the owner.
	req, _ := http.NewRequest(http.MethodDelete, gts.URL+"/sessions/sess-1", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete through gateway: %d", dresp.StatusCode)
	}
	for i := range backends {
		if got := backends[i].sessions.count(); got != 0 {
			t.Errorf("backend %d still holds %d sessions after delete", i, got)
		}
	}
}

// TestGatewayBroadcastAndAggregation covers the fleet-wide endpoints:
// POST /models reaches every backend (201 on first load), /healthz reports
// per-backend state, and /metrics sums the fleet's counters.
func TestGatewayBroadcastAndAggregation(t *testing.T) {
	snap, rows, _ := trainModel(t, 200, 6, 3, 57)
	_, gts, backends, tss := gatewayFleet(t, 2, Config{})
	path := t.TempDir() + "/m.bin"
	if err := snap.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	resp, data := post(t, gts.URL+"/models", map[string]string{"name": "m", "path": path})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("broadcast load: %d %s", resp.StatusCode, data)
	}
	for i, b := range backends {
		if _, ok := b.registry.get("m"); !ok {
			t.Fatalf("backend %d did not receive the broadcast model", i)
		}
	}

	// Traffic through the gateway lands on both backends; the aggregated
	// counter equals the sum.
	for _, row := range rows[:40] {
		resp, data := post(t, gts.URL+"/assign", map[string]any{"model": "m", "row": row})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("assign: %d %s", resp.StatusCode, data)
		}
	}
	var want int64
	for _, b := range backends {
		want += b.metrics.assignTotal.Load()
	}
	if want != 40 {
		t.Fatalf("backends served %d assigns in total, want 40", want)
	}
	_, mdata := get(t, gts.URL+"/metrics")
	if !strings.Contains(string(mdata), fmt.Sprintf("mcdcd_assign_total %d", want)) {
		t.Errorf("aggregated metrics missing summed mcdcd_assign_total %d:\n%s", want, mdata)
	}
	if !strings.Contains(string(mdata), `mcdcd_gateway_backend_up{backend=`) {
		t.Error("gateway metrics missing per-backend up gauge")
	}
	if !strings.Contains(string(mdata), `mcdcd_gateway_http_requests_total{endpoint="POST /v1/assign"} 40`) {
		t.Error("gateway metrics missing canonical v1-labeled per-endpoint request counter")
	}

	// Healthz: all up → ok. One backend down with NO replication anywhere →
	// "down" + 503: its sessions are stranded until it returns. Stateless
	// traffic still serves — rows re-place onto the survivor once the first
	// failure marks the dead backend down.
	hresp, hdata := get(t, gts.URL+"/healthz")
	if hresp.StatusCode != http.StatusOK || !strings.Contains(string(hdata), `"status":"ok"`) {
		t.Fatalf("healthz all-up: %d %s", hresp.StatusCode, hdata)
	}
	tss[1].Close()
	hresp, hdata = get(t, gts.URL+"/healthz")
	if hresp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(hdata), `"status":"down"`) {
		t.Fatalf("healthz with a dead unreplicated backend: %d %s", hresp.StatusCode, hdata)
	}
	for i, row := range rows[:40] {
		resp, data := post(t, gts.URL+"/assign", map[string]any{"model": "m", "row": row})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stateless assign %d with dead backend: %d %s", i, resp.StatusCode, data)
		}
	}
	// The reroute shows up in the gateway's own counters.
	_, mdata = get(t, gts.URL+"/metrics")
	if !strings.Contains(string(mdata), "mcdcd_gateway_retries_total{backend=") {
		t.Errorf("gateway metrics missing per-backend retry counter:\n%s", mdata)
	}
}

// TestGatewaySessionFailoverByteIdentical is the robustness acceptance
// property: in a replicated fleet, killing a session's owner mid-stream
// loses nothing — the gateway promotes the replica, reroutes, and the
// session's full answer stream is byte-identical to an uninterrupted
// single-daemon run with the same checkpoint cadence. The fleet also reports
// "degraded" (not "down", not 503) while the dead backend is covered.
func TestGatewaySessionFailoverByteIdentical(t *testing.T) {
	snap, rows, _ := trainModel(t, 200, 6, 3, 61)
	gw, gts, backends, tss := gatewayFleetCfg(t, 3, Config{Replicate: true},
		GatewayConfig{Timeout: 2 * time.Second, RetryBackoff: 2 * time.Millisecond, FleetSecret: "hunter2"})
	for _, b := range backends {
		if err := b.AddModel("m", snap); err != nil {
			t.Fatal(err)
		}
	}
	// The reference run: one daemon, replicate mode (same per-assignment
	// checkpoint cadence — checkpointing rotates the session's random
	// stream, so cadence is part of the deterministic contract), no peers.
	solo, soloTS := newTestServer(t, Config{Replicate: true, StateDir: t.TempDir()})
	if err := solo.AddModel("m", snap); err != nil {
		t.Fatal(err)
	}

	createSession(t, gts.URL, "sf", 40, 17)
	createSession(t, soloTS.URL, "sf", 40, 17)
	head := feedSession(t, gts.URL, "sf", rows, 0, 60)
	soloHead := feedSession(t, soloTS.URL, "sf", rows, 0, 60)
	for i := range head {
		if head[i] != soloHead[i] {
			t.Fatalf("pre-failure arrival %d: gateway %q != solo %q", i, head[i], soloHead[i])
		}
	}

	// Kill the owner.
	_, data := get(t, gts.URL+"/ring?session=sf")
	var ring struct {
		Backend string `json:"backend"`
	}
	if err := json.Unmarshal(data, &ring); err != nil {
		t.Fatal(err)
	}
	killed := false
	for i, ts := range tss {
		if strings.TrimPrefix(ts.URL, "http://") == ring.Backend {
			ts.Close()
			backends[i].Close()
			killed = true
		}
	}
	if !killed {
		t.Fatalf("owner %q not among fleet", ring.Backend)
	}

	// The stream continues through the gateway without a single failure, and
	// the tail matches the uninterrupted run bit for bit.
	tail := feedSession(t, gts.URL, "sf", rows, 60, 120)
	soloTail := feedSession(t, soloTS.URL, "sf", rows, 60, 120)
	for i := range tail {
		if tail[i] != soloTail[i] {
			t.Fatalf("post-failover arrival %d: gateway %q != solo %q", i, tail[i], soloTail[i])
		}
	}
	if gw.failovers.Load() < 1 {
		t.Fatalf("failovers counter = %d, want >= 1", gw.failovers.Load())
	}

	// Degraded, not down: the dead backend is covered by replication.
	hresp, hdata := get(t, gts.URL+"/healthz")
	if hresp.StatusCode != http.StatusOK || !strings.Contains(string(hdata), `"status":"degraded"`) {
		t.Fatalf("healthz with covered dead backend: %d %s", hresp.StatusCode, hdata)
	}
	// And the failover is visible in /metrics.
	_, mdata := get(t, gts.URL+"/metrics")
	if !strings.Contains(string(mdata), "mcdcd_gateway_failovers_total") {
		t.Errorf("gateway metrics missing failovers counter:\n%s", mdata)
	}
}

// TestGatewayRingLeaveDrainsSessions exercises live membership: draining a
// healthy backend migrates its sessions to the shrunken ring's owners and
// the streams continue byte-identically; joining it back migrates them home.
func TestGatewayRingLeaveJoinMigratesSessions(t *testing.T) {
	snap, rows, _ := trainModel(t, 200, 6, 3, 67)
	_, gts, backends, tss := gatewayFleetCfg(t, 3, Config{Replicate: true},
		GatewayConfig{Timeout: 2 * time.Second, RetryBackoff: 2 * time.Millisecond})
	for _, b := range backends {
		if err := b.AddModel("m", snap); err != nil {
			t.Fatal(err)
		}
	}
	solo, soloTS := newTestServer(t, Config{Replicate: true, StateDir: t.TempDir()})
	if err := solo.AddModel("m", snap); err != nil {
		t.Fatal(err)
	}

	ids := []string{"drain-a", "drain-b", "drain-c"}
	for _, id := range ids {
		createSession(t, gts.URL, id, 40, int64(7+len(id)))
		createSession(t, soloTS.URL, id, 40, int64(7+len(id)))
	}
	heads := make(map[string][]string)
	for _, id := range ids {
		heads[id] = feedSession(t, gts.URL, id, rows, 0, 30)
		soloHead := feedSession(t, soloTS.URL, id, rows, 0, 30)
		for i := range heads[id] {
			if heads[id][i] != soloHead[i] {
				t.Fatalf("session %s arrival %d diverged before drain", id, i)
			}
		}
	}

	// Drain backend 0 (live leave): its sessions migrate, placement cuts over.
	leaving := strings.TrimPrefix(tss[0].URL, "http://")
	resp, data := post(t, gts.URL+"/ring/leave", map[string]string{"backend": leaving})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ring leave: %d %s", resp.StatusCode, data)
	}
	if n := backends[0].sessions.count(); n != 0 {
		t.Fatalf("drained backend still resident with %d sessions", n)
	}
	for _, id := range ids {
		tail := feedSession(t, gts.URL, id, rows, 30, 60)
		soloTail := feedSession(t, soloTS.URL, id, rows, 30, 60)
		for i := range tail {
			if tail[i] != soloTail[i] {
				t.Fatalf("session %s arrival %d diverged after drain", id, i)
			}
		}
	}

	// Join it back: sessions whose home is the returning backend migrate
	// there, and the streams still continue seamlessly.
	resp, data = post(t, gts.URL+"/ring/join", map[string]string{"backend": leaving})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ring join: %d %s", resp.StatusCode, data)
	}
	for _, id := range ids {
		tail := feedSession(t, gts.URL, id, rows, 60, 90)
		soloTail := feedSession(t, soloTS.URL, id, rows, 60, 90)
		for i := range tail {
			if tail[i] != soloTail[i] {
				t.Fatalf("session %s arrival %d diverged after re-join", id, i)
			}
		}
	}
}

// TestGatewayHealthLoopFlipsUpState exercises the background checker: a
// backend that dies is marked down within a few probe periods.
func TestGatewayHealthLoopFlipsUpState(t *testing.T) {
	_, ts1 := newTestServer(t, Config{})
	addr := strings.TrimPrefix(ts1.URL, "http://")
	gw, err := NewGateway(GatewayConfig{Backends: []string{addr}, HealthEvery: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	deadline := time.Now().Add(2 * time.Second)
	for !gw.up[addr].Load() {
		if time.Now().After(deadline) {
			t.Fatal("live backend never marked up")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ts1.Close()
	for gw.up[addr].Load() {
		if time.Now().After(deadline) {
			t.Fatal("dead backend never marked down")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestGatewayRejectsEmptyBackendList(t *testing.T) {
	if _, err := NewGateway(GatewayConfig{Backends: []string{" ", ""}}); err == nil {
		t.Fatal("gateway accepted an empty backend list")
	}
}

// TestAggregateMetrics pins the series-summing rules on a crafted pair of
// expositions: counters sum, labels separate series, HELP/TYPE survive once,
// float formatting is preserved.
func TestAggregateMetrics(t *testing.T) {
	a := "# HELP x_total Things.\n# TYPE x_total counter\nx_total 3\n" +
		"x_by{k=\"a\"} 1\n" +
		"# HELP lat_seconds Latency.\n# TYPE lat_seconds summary\nlat_seconds_sum 0.5\nlat_seconds_count 2\n" +
		"mcdcd_model_epoch{model=\"m\"} 2\nmcdcd_uptime_seconds 100.5\n"
	b := "# HELP x_total Things.\n# TYPE x_total counter\nx_total 4\n" +
		"x_by{k=\"b\"} 2\nlat_seconds_sum 0.25\nlat_seconds_count 1\n" +
		"mcdcd_model_epoch{model=\"m\"} 2\nmcdcd_uptime_seconds 40.25\n"
	out := string(aggregateMetrics([][]byte{[]byte(a), []byte(b)}, nil))
	for _, want := range []string{
		"x_total 7\n",
		`x_by{k="a"} 1`,
		`x_by{k="b"} 2`,
		"lat_seconds_sum 0.75\n",
		"lat_seconds_count 3\n",
		// Summary metadata is registered under the base family name but the
		// samples carry _sum/_count suffixes; it must survive aggregation.
		"# TYPE lat_seconds summary",
		"# HELP x_total Things.",
		// Fleet-identical gauges take the max, not a fabricated sum.
		`mcdcd_model_epoch{model="m"} 2` + "\n",
		"mcdcd_uptime_seconds 100.5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("aggregate missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# HELP x_total") != 1 {
		t.Errorf("HELP duplicated:\n%s", out)
	}
}

// TestAggregateMetricsHistograms pins bucket-by-bucket histogram merging:
// backends emit byte-identical le labels (precomputed in histLe), so the
// gateway sums each bucket as an ordinary labeled series, and _sum/_count
// stay consistent with the merged buckets.
func TestAggregateMetricsHistograms(t *testing.T) {
	var ha, hb histogram
	ha.observe(150 * time.Microsecond) // bin le=0.0002
	ha.observe(3 * time.Millisecond)
	hb.observe(150 * time.Microsecond)
	hb.observe(40 * time.Millisecond)
	hb.observe(40 * time.Millisecond)
	render := func(h *histogram) []byte {
		var buf bytes.Buffer
		buf.WriteString("# HELP lat_seconds L.\n# TYPE lat_seconds histogram\n")
		h.writeTo(&buf, "lat_seconds", "")
		return buf.Bytes()
	}
	out := string(aggregateMetrics([][]byte{render(&ha), render(&hb)}, nil))

	// Every bucket of the merged output must equal the sum of the two
	// backends' buckets, cumulative and monotone, with +Inf == _count.
	wantCount := ha.count() + hb.count()
	var lastLe float64
	var lastCum, infCum int64 = -1, -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "lat_seconds_bucket{le=\"") {
			continue
		}
		rest := strings.TrimPrefix(line, "lat_seconds_bucket{le=\"")
		leStr, valStr, ok := strings.Cut(rest, "\"} ")
		if !ok {
			t.Fatalf("malformed bucket line %q", line)
		}
		cum, err := strconv.ParseInt(valStr, 10, 64)
		if err != nil {
			t.Fatalf("bucket value %q: %v", line, err)
		}
		if cum < lastCum && leStr != "+Inf" {
			t.Errorf("bucket counts not monotone at le=%s: %d < %d", leStr, cum, lastCum)
		}
		if leStr == "+Inf" {
			infCum = cum
			continue
		}
		le, err := strconv.ParseFloat(leStr, 64)
		if err != nil {
			t.Fatalf("le label %q: %v", line, err)
		}
		if le <= lastLe {
			t.Errorf("le bounds not increasing: %g after %g", le, lastLe)
		}
		lastLe, lastCum = le, cum
	}
	if infCum != wantCount {
		t.Errorf("+Inf bucket %d != total observations %d\n%s", infCum, wantCount, out)
	}
	if !strings.Contains(out, fmt.Sprintf("lat_seconds_count %d\n", wantCount)) {
		t.Errorf("merged _count != %d:\n%s", wantCount, out)
	}
	// Spot-check one shared bucket actually summed: both backends saw 150µs,
	// so the first nonzero bucket holds 2.
	if !strings.Contains(out, `lat_seconds_bucket{le="0.0002"} 2`) {
		t.Errorf("shared 150µs bucket did not merge to 2:\n%s", out)
	}
}

// TestAggregateMetricsPerBackendGauges pins the gauge bugfix: point-in-time
// gauges like queue depth must not be summed into a meaningless fleet total —
// each backend's sample survives under a backend label instead.
func TestAggregateMetricsPerBackendGauges(t *testing.T) {
	a := "# HELP mcdcd_queue_depth Q.\n# TYPE mcdcd_queue_depth gauge\nmcdcd_queue_depth 3\n" +
		"mcdcd_inflight 2\nmcdcd_assign_total 10\n" +
		"mcdcd_build_info{version=\"0.8.0\",go_version=\"go1.22\"} 1\n"
	b := "# HELP mcdcd_queue_depth Q.\n# TYPE mcdcd_queue_depth gauge\nmcdcd_queue_depth 5\n" +
		"mcdcd_inflight 1\nmcdcd_assign_total 4\n" +
		"mcdcd_build_info{version=\"0.8.0\",go_version=\"go1.22\"} 1\n"
	out := string(aggregateMetrics(
		[][]byte{[]byte(a), []byte(b)},
		[]string{"127.0.0.1:9001", "127.0.0.1:9002"},
	))
	for _, want := range []string{
		// Per-backend labeling instead of a sum.
		`mcdcd_queue_depth{backend="127.0.0.1:9001"} 3`,
		`mcdcd_queue_depth{backend="127.0.0.1:9002"} 5`,
		`mcdcd_inflight{backend="127.0.0.1:9001"} 2`,
		`mcdcd_inflight{backend="127.0.0.1:9002"} 1`,
		// Counters still sum.
		"mcdcd_assign_total 14\n",
		// build_info is fleet-identical: max keeps the value at 1.
		`mcdcd_build_info{version="0.8.0",go_version="go1.22"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("aggregate missing %q:\n%s", want, out)
		}
	}
	for _, reject := range []string{
		"mcdcd_queue_depth 8", "mcdcd_inflight 3", `go_version="go1.22"} 2`,
	} {
		if strings.Contains(out, reject) {
			t.Errorf("aggregate wrongly contains %q:\n%s", reject, out)
		}
	}
}
