package server

import (
	"fmt"
	"math/rand"
	"time"

	"mcdc/internal/core"
	"mcdc/internal/model"
)

// relearnLoop is the background worker: every RelearnEvery it sweeps the
// registry and re-learns any model whose traffic buffer holds enough rows.
func (s *Server) relearnLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.RelearnEvery)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.RelearnNow()
		}
	}
}

// RelearnNow runs one re-learn sweep: each served model with at least
// RelearnMin buffered traffic rows is re-trained on that window and
// hot-swapped under a bumped epoch. The swap is a compare-and-swap against
// the snapshot the training started from — if an operator hot-swapped the
// model mid-training (POST /models), the stale re-learn result is discarded
// instead of silently reverting the operator's model. In-flight assignments
// finish against the epoch they loaded; new ones see the new epoch. It
// returns how many models were swapped.
func (s *Server) RelearnNow() int {
	swapped := 0
	for _, sm := range s.registry.all() {
		if sm.buf.len() < s.cfg.RelearnMin {
			continue
		}
		rows := sm.buf.take()
		cur := sm.load()
		started := time.Now()
		next, err := s.relearnModel(cur, rows)
		if err != nil {
			// Keep the window: the rows get another chance next sweep
			// instead of vanishing with the failed training.
			sm.buf.restore(rows)
			s.log.Warn("relearn failed", "model", sm.name, "err", err, "epoch", cur.Epoch)
			continue
		}
		if !sm.snap.CompareAndSwap(cur, next) {
			// The window goes back too — but only if the hot-swapped model
			// kept the schema the rows were domain-checked against;
			// otherwise they are invalid training traffic for it (the swap
			// already cleared the buffer for the same reason).
			if sameSchema(sm.load().Cardinalities, cur.Cardinalities) {
				sm.buf.restore(rows)
			}
			s.log.Info("relearn discarded: model hot-swapped during training", "model", sm.name)
			continue
		}
		s.metrics.relearnDur.observe(time.Since(started))
		sm.relearns.Add(1)
		s.metrics.relearns.Add(1)
		swapped++
		s.log.Info("relearned model", "model", sm.name, "rows", len(rows),
			"epoch", next.Epoch, "k", next.K, "duration_ms", float64(time.Since(started))/float64(time.Millisecond))
	}
	return swapped
}

// relearnModel trains a replacement snapshot on the buffered window, keeping
// the served model's identity (name, k, schema) and bumping its epoch. The
// seed is derived from the daemon seed and the next epoch, so a re-learn
// sequence is reproducible for a fixed traffic history.
func (s *Server) relearnModel(cur *model.Snapshot, rows [][]int) (next *model.Snapshot, err error) {
	// The worker goroutine must survive anything training throws at it: a
	// panic here would take down the whole daemon, so it degrades to a
	// failed (and logged) re-learn instead.
	defer func() {
		if r := recover(); r != nil {
			next, err = nil, fmt.Errorf("re-learn panicked: %v", r)
		}
	}()
	if len(rows) < 2 {
		return nil, fmt.Errorf("window holds %d rows", len(rows))
	}
	res, err := core.RunMCDC(rows, cur.Cardinalities, core.MCDCConfig{
		MGCPL: core.MGCPLConfig{
			Workers: s.cfg.Workers,
			Rand:    rand.New(rand.NewSource(s.cfg.Seed + int64(cur.Epoch) + 1)),
		},
		CAME: core.CAMEConfig{K: cur.K, Workers: s.cfg.Workers},
	})
	if err != nil {
		return nil, err
	}
	next, err = model.Build(rows, cur.Cardinalities, res.Encoding, res.CAME.Modes, res.CAME.Theta, res.MGCPL.Kappa(), len(res.CAME.Modes))
	if err != nil {
		return nil, err
	}
	next.Name = cur.Name
	next.Epoch = cur.Epoch + 1
	next.Values = cur.Values
	return next, nil
}
