package server

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// The v1 error contract: every error response is a structured envelope
//
//	{"error": "<human message>", "code": "<stable code>"}
//
// with a code drawn from the closed table below. Messages are for humans and
// may change; codes are the machine contract — clients (including the public
// client package) branch on them, so adding a code is additive but renaming
// or removing one is a breaking API change.
const (
	// codeBadRequest: the request is malformed — bad JSON, bad wire frames,
	// a row of the wrong width, conflicting or missing target fields.
	codeBadRequest = "bad_request"
	// codeUnknownModel: the named model is not in the registry.
	codeUnknownModel = "unknown_model"
	// codeUnknownSession: the named session exists neither in memory nor as
	// a checkpoint on disk.
	codeUnknownSession = "unknown_session"
	// codeConflict: the resource exists already (session id taken).
	codeConflict = "conflict"
	// codeVersionMismatch: a snapshot file or wire stream carries an
	// incompatible format-version byte.
	codeVersionMismatch = "version_mismatch"
	// codeOverloaded: admission control shed the request; retry after the
	// Retry-After header's delay.
	codeOverloaded = "overloaded"
	// codeBadGateway: a gateway could not complete the request against its
	// backends (transport failure or a malformed backend answer — backend
	// HTTP errors themselves are relayed unchanged, keeping their own code).
	codeBadGateway = "bad_gateway"
	// codeForbidden: an intra-fleet endpoint (replica shipping, promotion,
	// membership) was called without the configured fleet secret.
	codeForbidden = "forbidden"
)

type errorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError emits the structured error envelope with the given stable code.
// When the writer is the instrumented statusWriter, the code is also handed
// to it so the request log line can carry the machine-readable failure.
func writeError(w http.ResponseWriter, status int, code string, format string, args ...any) {
	if ec, ok := w.(interface{ setErrorCode(string) }); ok {
		ec.setErrorCode(code)
	}
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...), Code: code})
}
