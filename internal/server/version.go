package server

// Version is the single source of the daemon's release version: the
// `mcdcd -version` flag prints it and the mcdcd_build_info metric exports
// it, so a scrape and a shell agree on what is deployed.
const Version = "0.8.0"
