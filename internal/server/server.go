// Package server implements mcdcd, the MCDC model-serving daemon: an
// HTTP/JSON front end over frozen model snapshots (internal/model) and
// streaming sessions (internal/stream). It institutionalizes the paper's
// batch-train / online-assign split — models are trained offline (cmd/mcdc
// -save), loaded into a hot-swappable registry, and queried concurrently.
// The API is versioned under /v1 (the pre-versioning paths remain as
// aliases), and every error is the structured envelope of errors.go:
//
//	POST /v1/models        load or hot-swap a named model from a snapshot file
//	GET  /v1/models        list served models (with cardinalities schema)
//	DELETE /v1/models/{name}
//	POST /v1/assign        assign one row (stateless "model" or stateful
//	                       "session"); JSON, or pipelined binary frames when
//	                       Content-Type is application/x-mcdc-frame (wire.go)
//	POST /v1/assign/batch  assign many rows, fanned out via internal/parallel;
//	                       the binary form streams — responses flush per
//	                       request chunk, so huge batches never buffer whole
//	POST /v1/sessions      create a streaming session (schema from a model)
//	DELETE /v1/sessions/{id}
//	POST /v1/checkpoint    flush every session checkpoint on demand
//	GET  /v1/healthz       liveness + model/session inventory
//	GET  /v1/metrics       Prometheus text: traffic, latency, epochs, drift,
//	                       admission queue depth and shed count
//
// The assignment endpoints sit behind admission control (admission.go): a
// bounded in-flight pool plus a bounded wait queue, shedding with 429 +
// Retry-After beyond that, so overload degrades predictably.
//
// Concurrency model: stateless assignment reads the snapshot through an
// atomic pointer (a background re-learn swaps epochs without blocking
// readers); sessions live in a lock-sharded pool and serialize only within
// one session, so concurrent streams scale across cores while each stream
// keeps the single-goroutine determinism contract of stream.Clusterer.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"mcdc/internal/model"
)

// driftThreshold mirrors stream.Config's default DriftThreshold: assignments
// below this similarity count toward the drift counters.
const driftThreshold = 0.2

// Config parameterizes the daemon.
type Config struct {
	// Seed drives re-learning and session randomness (default 1).
	Seed int64
	// Workers bounds each request's CPU fan-out (≤ 0 → GOMAXPROCS); results
	// are bit-for-bit identical at any setting (see mcdc.WithParallelism).
	Workers int
	// SessionShards is the lock-shard count of the session pool (default 16).
	SessionShards int
	// RelearnEvery enables the background re-learn worker: every interval,
	// models whose traffic buffer holds at least RelearnMin rows are
	// re-trained on that window and hot-swapped with a bumped epoch. 0
	// disables the worker (RelearnNow still re-learns on demand).
	RelearnEvery time.Duration
	// RelearnMin is the minimum buffered traffic before a re-learn
	// (default 64).
	RelearnMin int
	// BufferSize caps each model's traffic window (default 4096).
	BufferSize int
	// DefaultSessionWindow is the window size of new sessions when the
	// request does not set one (0 falls through to the stream default).
	DefaultSessionWindow int
	// StateDir enables session durability: every streaming session
	// checkpoints to <StateDir>/sessions/<id>.ckpt (on the CheckpointEvery
	// cadence, on idle eviction, on POST /checkpoint, and on Close), and a
	// restart resumes every checkpointed session bit-for-bit. Empty disables
	// durability.
	StateDir string
	// CheckpointEvery is the periodic session-checkpoint interval when
	// StateDir is set (0 = checkpoint only on demand, eviction, and
	// shutdown). Each checkpoint rotates the session's random stream (see
	// stream.Clusterer.Snapshot), which never perturbs the live session's
	// subsequent output relative to a restore of that checkpoint.
	CheckpointEvery time.Duration
	// Replicate enables fleet replication (requires StateDir): every session
	// assignment checkpoints before its response is written, and — once
	// ConfigureReplication names the fleet — the checkpoint bytes ship to the
	// session's ring successor so a warm standby can be promoted if this
	// daemon dies. Checkpointing per assignment makes the random-stream
	// rotation cadence deterministic, which is what keeps failover (and any
	// reference run, which must also set Replicate) byte-identical.
	Replicate bool
	// SessionTTL evicts streaming sessions idle longer than this (0 = never).
	// With StateDir the eviction spills the session to disk and the next
	// touch pages it back in; without, eviction is deletion. Either way the
	// pool's memory stays bounded by the working set instead of the create
	// history.
	SessionTTL time.Duration
	// MaxInFlight bounds concurrently executing assignment requests
	// (/assign and /assign/batch, JSON and binary alike). 0 disables
	// admission control entirely.
	MaxInFlight int
	// QueueDepth bounds how many assignment requests may wait for an
	// in-flight slot before the server sheds with 429 + Retry-After.
	QueueDepth int
	// RetryAfter is the delay advertised in the Retry-After header of shed
	// responses (default 1s; the header rounds up to whole seconds).
	RetryAfter time.Duration
	// Logger receives structured operational and request logs (nil = silent).
	Logger *slog.Logger
	// LogSlow logs any request slower than this at Warn level, with its
	// request id, endpoint, status, and duration (0 disables).
	LogSlow time.Duration
}

// Server is the mcdcd daemon core, embeddable in tests and other processes.
type Server struct {
	cfg       Config
	start     time.Time
	registry  *registry
	sessions  *sessionPool
	metrics   *metrics
	mux       *http.ServeMux
	admission *admission // nil when Config.MaxInFlight is 0
	obs       *obs       // request ids + structured request logging
	log       *slog.Logger
	// fleetSecret authenticates intra-fleet endpoints (replication.go); set
	// by ConfigureReplication, empty = open (single-trust-domain deploys).
	fleetSecret string
	// assigners pools per-goroutine model.Assigner scratches for the
	// stateless assign hot path: Bind re-points a pooled scratch at the
	// current snapshot (no allocation across hot swaps of same-shaped
	// models), so steady-state /assign performs zero allocations in the
	// probe itself. Pooled entries must be Put back only after the response
	// is serialized — the Assignment.Encoding aliases the scratch — and
	// unbound first, so a pooled entry never pins a hot-swapped or deleted
	// snapshot in memory.
	assigners sync.Pool

	stopOnce  sync.Once
	flushOnce sync.Once
	stop      chan struct{}
	wg        sync.WaitGroup
}

// New builds a daemon core, restores checkpointed sessions when StateDir is
// set, and starts the background workers (re-learn, periodic checkpoint,
// TTL sweep) that are configured. Call Close to stop them; with StateDir it
// also flushes a final checkpoint of every session.
func New(cfg Config) (*Server, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.RelearnMin <= 0 {
		cfg.RelearnMin = 64
	}
	sessionsDir := ""
	if cfg.StateDir != "" {
		sessionsDir = filepath.Join(cfg.StateDir, "sessions")
		if err := os.MkdirAll(sessionsDir, 0o755); err != nil {
			return nil, fmt.Errorf("server: state dir: %w", err)
		}
	}
	s := &Server{
		cfg:       cfg,
		start:     time.Now(),
		registry:  newRegistry(),
		metrics:   &metrics{http: newHTTPMetrics()},
		mux:       http.NewServeMux(),
		admission: newAdmission(cfg.MaxInFlight, cfg.QueueDepth, cfg.RetryAfter),
		obs:       newObs(cfg.Logger, cfg.LogSlow),
		stop:      make(chan struct{}),
	}
	s.log = s.obs.log
	s.sessions = newSessionPool(cfg.SessionShards, sessionsDir, s.log, &s.metrics.checkpoint)
	if cfg.Replicate {
		if cfg.StateDir == "" {
			return nil, fmt.Errorf("server: Replicate requires a StateDir")
		}
		rs, err := newReplicaStore(filepath.Join(cfg.StateDir, "replicas"))
		if err != nil {
			return nil, fmt.Errorf("server: replica store: %w", err)
		}
		s.sessions.replicate = true
		s.sessions.replicas = rs
	}
	s.assigners.New = func() any { return &model.Assigner{} }
	s.routes()
	if n := s.sessions.restoreAll(); n > 0 {
		s.log.Info("restored streaming sessions", "count", n, "dir", sessionsDir)
	}
	if cfg.RelearnEvery > 0 {
		s.wg.Add(1)
		go s.relearnLoop()
	}
	if cfg.StateDir != "" && cfg.CheckpointEvery > 0 {
		s.wg.Add(1)
		go s.checkpointLoop()
	}
	if cfg.SessionTTL > 0 {
		s.wg.Add(1)
		go s.sweepLoop()
	}
	return s, nil
}

// Close stops the background workers, waits for them, and — when running
// with a state directory — flushes a final checkpoint of every session so a
// graceful shutdown loses nothing.
func (s *Server) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
	s.flushOnce.Do(func() {
		if n := s.sessions.checkpointAll(); n > 0 {
			s.log.Info("flushed session checkpoints on shutdown", "count", n)
		}
	})
}

// CheckpointSessions writes a checkpoint of every live session and returns
// how many were written (0 without a StateDir).
func (s *Server) CheckpointSessions() int { return s.sessions.checkpointAll() }

// SweepSessions evicts sessions idle longer than ttl (see Config.SessionTTL)
// and returns how many were evicted.
func (s *Server) SweepSessions(ttl time.Duration) int { return s.sessions.sweep(ttl) }

// checkpointLoop periodically flushes session checkpoints.
func (s *Server) checkpointLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.CheckpointEvery)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.sessions.checkpointAll()
		}
	}
}

// sweepLoop evicts idle sessions on a cadence of TTL/4 (clamped so tests
// with millisecond TTLs and deployments with day-long ones both behave).
func (s *Server) sweepLoop() {
	defer s.wg.Done()
	every := s.cfg.SessionTTL / 4
	if every < 10*time.Millisecond {
		every = 10 * time.Millisecond
	}
	if every > time.Minute {
		every = time.Minute
	}
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			if n := s.sessions.sweep(s.cfg.SessionTTL); n > 0 {
				s.log.Info("evicted idle sessions", "count", n)
			}
		}
	}
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// LoadModelFile loads a snapshot file into the registry under name,
// hot-swapping any model already served under it. It returns the loaded
// snapshot and whether an existing model was replaced.
func (s *Server) LoadModelFile(name, path string) (*model.Snapshot, bool, error) {
	if err := validateName(name); err != nil {
		return nil, false, err
	}
	snap, err := model.LoadFile(path)
	if err != nil {
		return nil, false, err
	}
	replaced := s.registry.set(name, snap, s.cfg.BufferSize)
	s.log.Info("loaded model", "model", name, "path", path,
		"k", snap.K, "epoch", snap.Epoch, "features", snap.D(), "hot_swap", replaced)
	return snap, replaced, nil
}

// AddModel registers an in-memory snapshot (used by tests and embedders).
func (s *Server) AddModel(name string, snap *model.Snapshot) error {
	if err := validateName(name); err != nil {
		return err
	}
	s.registry.set(name, snap, s.cfg.BufferSize)
	return nil
}

func (s *Server) routes() {
	// Every route registers through handle so the per-endpoint request and
	// error counters in /metrics cover all traffic, not just the assign path.
	// The assignment endpoints additionally pass through the admission valve
	// and sniff Content-Type: the binary frame protocol and JSON share one
	// route per operation.
	s.handle("GET /healthz", s.handleHealthz)
	s.handle("GET /metrics", s.handleMetrics)
	s.handle("GET /models", s.handleListModels)
	s.handle("POST /models", s.handleLoadModel)
	s.handle("DELETE /models/{name}", s.handleDeleteModel)
	s.handle("POST /assign", s.admit(s.dispatchAssign))
	s.handle("POST /assign/batch", s.admit(s.dispatchAssignBatch))
	s.handle("POST /sessions", s.handleCreateSession)
	s.handle("DELETE /sessions/{id}", s.handleDeleteSession)
	s.handle("POST /checkpoint", s.handleCheckpoint)
	// Fleet endpoints (replication.go): replica shipping, failover promotion,
	// migration, and membership pushes. Guarded by the fleet secret when one
	// is configured.
	s.handle("GET /sessions", s.handleListSessions)
	s.handle("GET /sessions/{id}/checkpoint", s.handleSessionCheckpoint)
	s.handle("POST /sessions/{id}/promote", s.handlePromoteSession)
	s.handle("POST /sessions/{id}/adopt", s.handleAdoptSession)
	s.handle("POST /replica/checkpoint", s.handleReplicaCheckpoint)
	s.handle("DELETE /replica/{id}", s.handleReplicaDelete)
	s.handle("POST /fleet", s.handleFleet)
}

// handle registers pattern's canonical /v1 route plus the pre-versioning
// path as a legacy alias. Both spellings run the same instrumented handler
// labeled by the canonical pattern, so /metrics shows one continuous series
// per endpoint while a fleet's clients migrate.
func (s *Server) handle(pattern string, fn http.HandlerFunc) {
	method, path, _ := strings.Cut(pattern, " ")
	canonical := method + " /v1" + path
	h := s.metrics.http.instrument(canonical, s.obs, fn)
	s.mux.HandleFunc(canonical, h)
	s.mux.HandleFunc(pattern, h)
}

// dispatchAssign routes POST /v1/assign by Content-Type: binary frame
// streams take the wire path, everything else the JSON path.
func (s *Server) dispatchAssign(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get("Content-Type") == WireContentType {
		s.handleAssignWire(w, r)
		return
	}
	s.handleAssign(w, r)
}

func (s *Server) dispatchAssignBatch(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get("Content-Type") == WireContentType {
		s.handleAssignBatchWire(w, r)
		return
	}
	s.handleAssignBatch(w, r)
}

// ---- wire types ----

type modelInfo struct {
	Name     string `json:"name"`
	K        int    `json:"k"`
	Epoch    int    `json:"epoch"`
	Features int    `json:"features"`
	// Cardinalities is the per-feature domain size — enough schema for a
	// caller (mcdcload, the client package) to synthesize valid rows.
	Cardinalities []int `json:"cardinalities,omitempty"`
	Kappa         []int `json:"kappa,omitempty"`
	TrainN        int   `json:"train_n"`
	Buffered      int   `json:"buffered"`
}

type loadModelRequest struct {
	Name string `json:"name"`
	Path string `json:"path"`
}

type assignRequest struct {
	Model   string `json:"model,omitempty"`
	Session string `json:"session,omitempty"`
	Row     []int  `json:"row"`
}

type assignResponse struct {
	Cluster    int     `json:"cluster"`
	Similarity float64 `json:"similarity"`
	Epoch      int     `json:"epoch"`
	Encoding   []int   `json:"encoding,omitempty"`
}

type batchRequest struct {
	Model string  `json:"model"`
	Rows  [][]int `json:"rows"`
}

type batchResponse struct {
	Model       string           `json:"model"`
	Epoch       int              `json:"epoch"`
	Assignments []assignResponse `json:"assignments"`
}

type sessionRequest struct {
	Session string `json:"session"`
	// Model names a served model whose feature schema the session adopts.
	Model string `json:"model"`
	// Window overrides the session's re-learning window size.
	Window int `json:"window,omitempty"`
	// Seed fixes the session's random stream (default: the daemon seed).
	Seed int64 `json:"seed,omitempty"`
}

// ---- helpers ----

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// bufferRow adds an assigned row to the model's re-learn window — but only
// when every value is inside the model's domain. Assign deliberately
// tolerates out-of-domain values (unseen categories score zero similarity),
// but the training path must never see them: similarity.NewTables indexes
// count tables by value code, so one poison row in the window would panic
// the background re-learner.
func bufferRow(sm *servedModel, snap *model.Snapshot, row []int) {
	for r, v := range row {
		if v < 0 || v >= snap.Cardinalities[r] {
			return
		}
	}
	sm.buf.add(row)
}

// ---- handlers ----

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type health struct {
		Status        string         `json:"status"`
		UptimeSeconds float64        `json:"uptime_seconds"`
		Models        map[string]int `json:"models"` // name → epoch
		Sessions      int            `json:"sessions"`
		// Replication reports whether this daemon ships/accepts session
		// replicas; Replicas counts the peer checkpoints it holds. The
		// gateway's coverage probe reads these to tell "degraded but every
		// session recoverable" from "sessions lost".
		Replication bool `json:"replication"`
		Replicas    int  `json:"replicas"`
	}
	h := health{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		Models:        make(map[string]int),
		Sessions:      s.sessions.count(),
		Replication:   s.cfg.Replicate,
	}
	if s.sessions.replicas != nil {
		h.Replicas = s.sessions.replicas.count()
	}
	for _, sm := range s.registry.all() {
		h.Models[sm.name] = sm.load().Epoch
	}
	writeJSON(w, http.StatusOK, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.write(w, s.registry, s.sessions, s.admission, time.Since(s.start))
}

func (s *Server) handleListModels(w http.ResponseWriter, r *http.Request) {
	infos := make([]modelInfo, 0)
	for _, sm := range s.registry.all() {
		snap := sm.load()
		infos = append(infos, modelInfo{
			Name:          sm.name,
			K:             snap.K,
			Epoch:         snap.Epoch,
			Features:      snap.D(),
			Cardinalities: snap.Cardinalities,
			Kappa:         snap.Kappa,
			TrainN:        snap.TrainN,
			Buffered:      sm.buf.len(),
		})
	}
	writeJSON(w, http.StatusOK, map[string][]modelInfo{"models": infos})
}

func (s *Server) handleLoadModel(w http.ResponseWriter, r *http.Request) {
	var req loadModelRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	snap, replaced, err := s.LoadModelFile(req.Name, req.Path)
	if err != nil {
		status, code := http.StatusBadRequest, codeBadRequest
		var verr *model.VersionError
		if errors.As(err, &verr) {
			status, code = http.StatusUnprocessableEntity, codeVersionMismatch
		}
		writeError(w, status, code, "%v", err)
		return
	}
	// A first load creates the served resource (201); re-loading an already
	// served name is a hot swap of the existing one (200).
	status := http.StatusCreated
	if replaced {
		status = http.StatusOK
	}
	writeJSON(w, status, modelInfo{
		Name: req.Name, K: snap.K, Epoch: snap.Epoch, Features: snap.D(),
		Kappa: snap.Kappa, TrainN: snap.TrainN,
	})
}

func (s *Server) handleDeleteModel(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.registry.remove(name) {
		writeError(w, http.StatusNotFound, codeUnknownModel, "no model %q", name)
		return
	}
	s.log.Info("unloaded model", "model", name)
	w.WriteHeader(http.StatusNoContent)
}

// assignOne performs one assignment — stateless against a model when
// modelName is set, stateful against a session otherwise — and hands the
// result to emit while any pooled assigner scratch is still bound: the
// Encoding aliases the scratch, so emit must serialize before returning.
// Both the JSON handler and the binary frame handler route through here, so
// the two protocols cannot drift. On failure it returns the HTTP status,
// stable error code, and message for the front end to shape (JSON envelope
// or in-band error frame).
//
// reqID, when non-empty, makes a session assignment idempotent: a retry
// carrying the same id and row (a gateway redelivering after an ambiguous
// failure) replays the cached response instead of applying the row twice.
func (s *Server) assignOne(modelName, session string, row []int, reqID string, emit func(assignResponse)) (int, string, error) {
	started := time.Now()
	switch {
	case modelName != "" && session != "":
		s.metrics.assignErrors.Add(1)
		return http.StatusBadRequest, codeBadRequest, errors.New("set either model or session, not both")
	case modelName != "":
		sm, ok := s.registry.get(modelName)
		if !ok {
			s.metrics.assignErrors.Add(1)
			return http.StatusNotFound, codeUnknownModel, fmt.Errorf("no model %q", modelName)
		}
		snap := sm.load()
		asg := s.assigners.Get().(*model.Assigner)
		// Deferred so every return path (and a panicking emit) unbinds — a
		// pooled entry must never pin a hot-swapped snapshot — and the
		// scratch-aliased Encoding is serialized before the Put runs.
		defer func() {
			asg.Unbind()
			s.assigners.Put(asg)
		}()
		asg.Bind(snap)
		a, err := asg.Assign(row)
		if err != nil {
			s.metrics.assignErrors.Add(1)
			return http.StatusBadRequest, codeBadRequest, err
		}
		bufferRow(sm, snap, row)
		if a.Similarity < driftThreshold {
			sm.lowSim.Add(1)
		}
		s.metrics.assignTotal.Add(1)
		s.metrics.observe(time.Since(started))
		emit(assignResponse{Cluster: a.Cluster, Similarity: a.Similarity, Epoch: snap.Epoch, Encoding: a.Encoding})
		return 0, "", nil
	case session != "":
		a, found, err := s.sessions.assign(session, row, driftThreshold, reqID)
		if !found {
			s.metrics.assignErrors.Add(1)
			return http.StatusNotFound, codeUnknownSession, fmt.Errorf("no session %q", session)
		}
		if err != nil {
			s.metrics.assignErrors.Add(1)
			return http.StatusBadRequest, codeBadRequest, err
		}
		s.metrics.assignTotal.Add(1)
		s.metrics.observe(time.Since(started))
		emit(assignResponse{Cluster: a.Cluster, Similarity: a.Similarity, Epoch: a.ModelEpoch})
		return 0, "", nil
	default:
		s.metrics.assignErrors.Add(1)
		return http.StatusBadRequest, codeBadRequest, errors.New("request names neither a model nor a session")
	}
}

func (s *Server) handleAssign(w http.ResponseWriter, r *http.Request) {
	var req assignRequest
	if !decodeJSON(w, r, &req) {
		s.metrics.assignErrors.Add(1)
		return
	}
	status, code, err := s.assignOne(req.Model, req.Session, req.Row, r.Header.Get(RequestIDHeader), func(resp assignResponse) {
		writeJSON(w, http.StatusOK, resp)
	})
	if err != nil {
		//lint:mcdcvet-ignore errenvelope code relayed from assignOne, which draws only from the stable table
		writeError(w, status, code, "%v", err)
	}
}

// assignBatchRows fans one batch out against a resolved model under the
// repository's determinism contract (bit-for-bit identical at any worker
// count) and folds the rows into the re-learn window and drift counters.
// The returned encodings are block-carved by AssignBatch — safe to retain
// past the call, unlike assignOne's scratch-aliased single result.
func (s *Server) assignBatchRows(sm *servedModel, snap *model.Snapshot, rows [][]int) ([]model.Assignment, error) {
	started := time.Now()
	assignments, err := snap.AssignBatch(rows, s.cfg.Workers)
	if err != nil {
		s.metrics.assignErrors.Add(1)
		return nil, err
	}
	for i, a := range assignments {
		bufferRow(sm, snap, rows[i])
		if a.Similarity < driftThreshold {
			sm.lowSim.Add(1)
		}
	}
	s.metrics.batchRows.Add(int64(len(assignments)))
	s.metrics.batchChunk.observe(time.Since(started))
	return assignments, nil
}

func (s *Server) handleAssignBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !decodeJSON(w, r, &req) {
		s.metrics.assignErrors.Add(1)
		return
	}
	if len(req.Rows) == 0 {
		s.metrics.assignErrors.Add(1)
		writeError(w, http.StatusBadRequest, codeBadRequest, "empty batch")
		return
	}
	sm, ok := s.registry.get(req.Model)
	if !ok {
		s.metrics.assignErrors.Add(1)
		writeError(w, http.StatusNotFound, codeUnknownModel, "no model %q", req.Model)
		return
	}
	snap := sm.load()
	assignments, err := s.assignBatchRows(sm, snap, req.Rows)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, "%v", err)
		return
	}
	resp := batchResponse{Model: req.Model, Epoch: snap.Epoch, Assignments: make([]assignResponse, len(assignments))}
	for i, a := range assignments {
		resp.Assignments[i] = assignResponse{Cluster: a.Cluster, Similarity: a.Similarity, Epoch: snap.Epoch, Encoding: a.Encoding}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req sessionRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if err := validateName(req.Session); err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, "%v", err)
		return
	}
	sm, ok := s.registry.get(req.Model)
	if !ok {
		writeError(w, http.StatusNotFound, codeUnknownModel, "no model %q to take the session schema from", req.Model)
		return
	}
	window := req.Window
	if window <= 0 {
		window = s.cfg.DefaultSessionWindow
	}
	seed := req.Seed
	if seed == 0 {
		seed = s.cfg.Seed
	}
	if err := s.sessions.create(req.Session, sm.load().Cardinalities, window, seed, s.cfg.Workers); err != nil {
		writeError(w, http.StatusConflict, codeConflict, "%v", err)
		return
	}
	s.log.Info("created session", "session", req.Session, "model", req.Model)
	writeJSON(w, http.StatusCreated, map[string]string{"session": req.Session})
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.sessions.remove(id) {
		writeError(w, http.StatusNotFound, codeUnknownSession, "no session %q", id)
		return
	}
	// Retire the session's replica footprint: any copy held locally plus the
	// one shipped to this daemon's successor (best-effort; the gateway also
	// broadcasts replica deletes fleet-wide on its own delete path).
	if s.sessions.replicas != nil {
		s.sessions.replicas.drop(id)
	}
	if repl := s.sessions.repl.Load(); repl != nil {
		repl.dropReplica(id)
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleCheckpoint flushes every session checkpoint on demand — the lever a
// deployment (or the CI resume test) pulls to pin a durable cut point
// without waiting for the periodic sweep or a shutdown.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if s.cfg.StateDir == "" {
		writeError(w, http.StatusBadRequest, codeBadRequest, "daemon runs without -state-dir; nothing to checkpoint to")
		return
	}
	n := s.sessions.checkpointAll()
	writeJSON(w, http.StatusOK, map[string]int{"checkpointed": n})
}
