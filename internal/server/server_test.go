package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"mcdc/internal/core"
	"mcdc/internal/datasets"
	"mcdc/internal/model"
)

// trainModel trains a snapshot on separable synthetic data and returns it
// with the training rows and their labels.
func trainModel(t *testing.T, n, d, k int, seed int64) (*model.Snapshot, [][]int, []int) {
	t.Helper()
	ds := datasets.Synthetic("m", n, d, k, 0.9, rand.New(rand.NewSource(seed)))
	res, err := core.RunMCDC(ds.Rows, ds.Cardinalities(), core.MCDCConfig{
		MGCPL: core.MGCPLConfig{Rand: rand.New(rand.NewSource(seed))},
		CAME:  core.CAMEConfig{K: k},
	})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := model.Build(ds.Rows, ds.Cardinalities(), res.Encoding, res.CAME.Modes, res.CAME.Theta, res.MGCPL.Kappa(), k)
	if err != nil {
		t.Fatal(err)
	}
	return snap, ds.Rows, res.Labels
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func post(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestServeMatchesInProcess pins the acceptance criterion end to end: a
// model saved to disk, loaded over POST /models, and queried over HTTP
// returns the same labels as the in-process pipeline.
func TestServeMatchesInProcess(t *testing.T) {
	snap, rows, labels := trainModel(t, 300, 8, 3, 42)
	path := filepath.Join(t.TempDir(), "m.bin")
	if err := snap.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{})

	resp, data := post(t, ts.URL+"/models", map[string]string{"name": "m", "path": path})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("load model: %d %s", resp.StatusCode, data)
	}

	for i, row := range rows[:50] {
		resp, data := post(t, ts.URL+"/assign", map[string]any{"model": "m", "row": row})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("assign: %d %s", resp.StatusCode, data)
		}
		var a assignResponse
		if err := json.Unmarshal(data, &a); err != nil {
			t.Fatal(err)
		}
		if a.Cluster != labels[i] {
			t.Fatalf("row %d: HTTP assigned %d, in-process %d", i, a.Cluster, labels[i])
		}
	}

	// Batch path returns identical labels, in order.
	resp, data = post(t, ts.URL+"/assign/batch", map[string]any{"model": "m", "rows": rows})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, data)
	}
	var batch batchResponse
	if err := json.Unmarshal(data, &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Assignments) != len(rows) {
		t.Fatalf("batch returned %d assignments for %d rows", len(batch.Assignments), len(rows))
	}
	for i, a := range batch.Assignments {
		if a.Cluster != labels[i] {
			t.Fatalf("batch row %d: %d vs %d", i, a.Cluster, labels[i])
		}
	}
}

// TestConcurrentAssign hammers /assign from 12 goroutines (stateless and
// session traffic mixed) while a re-learn hot-swap runs; run under -race in
// CI, it is the concurrency acceptance gate.
func TestConcurrentAssign(t *testing.T) {
	snap, rows, labels := trainModel(t, 400, 8, 3, 7)
	s, ts := newTestServer(t, Config{RelearnMin: 100})
	if err := s.AddModel("m", snap); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		resp, data := post(t, ts.URL+"/sessions", map[string]any{"session": fmt.Sprintf("s%d", i), "model": "m", "seed": int64(i + 1)})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create session: %d %s", resp.StatusCode, data)
		}
	}

	const goroutines = 12
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				row := rows[(g*40+i)%len(rows)]
				var body map[string]any
				if g%3 == 2 { // a third of the goroutines drive sessions
					body = map[string]any{"session": fmt.Sprintf("s%d", g%4), "row": row}
				} else {
					body = map[string]any{"model": "m", "row": row}
				}
				raw, _ := json.Marshal(body)
				resp, err := http.Post(ts.URL+"/assign", "application/json", bytes.NewReader(raw))
				if err != nil {
					errs <- err
					return
				}
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("goroutine %d: %d %s", g, resp.StatusCode, data)
					return
				}
				var a assignResponse
				if err := json.Unmarshal(data, &a); err != nil {
					errs <- err
					return
				}
				if g%3 != 2 && a.Cluster != labels[(g*40+i)%len(rows)] {
					errs <- fmt.Errorf("goroutine %d row %d: cluster %d, want %d", g, i, a.Cluster, labels[(g*40+i)%len(rows)])
					return
				}
			}
		}(g)
	}
	// Concurrent hot-swap: re-learn from the traffic buffer mid-hammer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.RelearnNow()
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestRelearnSwapsEpochAtomically drives traffic into the buffer, triggers a
// re-learn, and checks the swap bumped the epoch without 5xx-ing readers.
func TestRelearnSwapsEpochAtomically(t *testing.T) {
	snap, rows, _ := trainModel(t, 200, 6, 3, 11)
	s, ts := newTestServer(t, Config{RelearnMin: 50, Seed: 3})
	if err := s.AddModel("m", snap); err != nil {
		t.Fatal(err)
	}
	resp, data := post(t, ts.URL+"/assign/batch", map[string]any{"model": "m", "rows": rows[:120]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, data)
	}
	if swapped := s.RelearnNow(); swapped != 1 {
		t.Fatalf("re-learn swapped %d models, want 1", swapped)
	}
	resp, data = post(t, ts.URL+"/assign", map[string]any{"model": "m", "row": rows[0]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("assign after swap: %d %s", resp.StatusCode, data)
	}
	var a assignResponse
	if err := json.Unmarshal(data, &a); err != nil {
		t.Fatal(err)
	}
	if a.Epoch != 1 {
		t.Fatalf("epoch after swap = %d, want 1", a.Epoch)
	}
	// Below the minimum: no further swap.
	if swapped := s.RelearnNow(); swapped != 0 {
		t.Fatalf("idle re-learn swapped %d models", swapped)
	}
}

func TestModelLifecycleAndErrors(t *testing.T) {
	snap, rows, _ := trainModel(t, 150, 5, 2, 5)
	path := filepath.Join(t.TempDir(), "m.bin")
	if err := snap.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{})

	// Assign against a missing model.
	resp, _ := post(t, ts.URL+"/assign", map[string]any{"model": "ghost", "row": rows[0]})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing model: %d", resp.StatusCode)
	}
	// Load (201: resource created), list, hot-swap (200: replaced), delete.
	resp, data := post(t, ts.URL+"/models", map[string]string{"name": "m", "path": path})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("load: %d %s", resp.StatusCode, data)
	}
	resp, data = get(t, ts.URL+"/models")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), `"name":"m"`) {
		t.Fatalf("list: %d %s", resp.StatusCode, data)
	}
	resp, _ = post(t, ts.URL+"/models", map[string]string{"name": "m", "path": path})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hot-swap reload: %d", resp.StatusCode)
	}
	// Bad requests.
	resp, _ = post(t, ts.URL+"/models", map[string]string{"name": "bad/name", "path": path})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad name: %d", resp.StatusCode)
	}
	resp, _ = post(t, ts.URL+"/models", map[string]string{"name": "x", "path": filepath.Join(t.TempDir(), "nope.bin")})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing file: %d", resp.StatusCode)
	}
	resp, _ = post(t, ts.URL+"/assign", map[string]any{"model": "m", "row": []int{0}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("short row: %d", resp.StatusCode)
	}
	resp, _ = post(t, ts.URL+"/assign", map[string]any{"row": rows[0]})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("no target: %d", resp.StatusCode)
	}
	// Delete and confirm gone.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/models/m", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d", dresp.StatusCode)
	}
	resp, _ = post(t, ts.URL+"/assign", map[string]any{"model": "m", "row": rows[0]})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted model still serves: %d", resp.StatusCode)
	}
}

func TestSessionsAreDeterministicPerSeed(t *testing.T) {
	snap, rows, _ := trainModel(t, 200, 6, 3, 9)
	s, ts := newTestServer(t, Config{})
	if err := s.AddModel("m", snap); err != nil {
		t.Fatal(err)
	}
	feed := func(id string) []assignResponse {
		resp, data := post(t, ts.URL+"/sessions", map[string]any{"session": id, "model": "m", "window": 50, "seed": 17})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %s: %d %s", id, resp.StatusCode, data)
		}
		var out []assignResponse
		for _, row := range rows[:120] {
			resp, data := post(t, ts.URL+"/assign", map[string]any{"session": id, "row": row})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("assign %s: %d %s", id, resp.StatusCode, data)
			}
			var a assignResponse
			if err := json.Unmarshal(data, &a); err != nil {
				t.Fatal(err)
			}
			out = append(out, a)
		}
		return out
	}
	a, b := feed("alpha"), feed("beta")
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two sessions with identical seeds and input diverged")
	}
	// Duplicate session id → conflict.
	resp, _ := post(t, ts.URL+"/sessions", map[string]any{"session": "alpha", "model": "m"})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate session: %d", resp.StatusCode)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	snap, rows, _ := trainModel(t, 150, 5, 2, 13)
	s, ts := newTestServer(t, Config{})
	if err := s.AddModel("m", snap); err != nil {
		t.Fatal(err)
	}
	post(t, ts.URL+"/assign", map[string]any{"model": "m", "row": rows[0]})

	resp, data := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	var h struct {
		Status string         `json:"status"`
		Models map[string]int `json:"models"`
	}
	if err := json.Unmarshal(data, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("healthz status %q", h.Status)
	}
	if _, ok := h.Models["m"]; !ok {
		t.Fatalf("healthz models: %v", h.Models)
	}

	resp, data = get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	text := string(data)
	for _, want := range []string{
		"mcdcd_assign_total 1",
		`mcdcd_model_epoch{model="m"} 0`,
		"mcdcd_assign_latency_seconds_count 1",
		"mcdcd_relearn_total 0",
		"mcdcd_session_drift_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q:\n%s", want, text)
		}
	}
}

// TestTrafficBufferRestore pins the failed-re-learn recovery path: a taken
// window goes back into the buffer without displacing traffic that arrived
// in the meantime.
func TestTrafficBufferRestore(t *testing.T) {
	b := newTrafficBuffer(4)
	for i := 1; i <= 3; i++ {
		b.add([]int{i})
	}
	taken := b.take()
	if b.len() != 0 || len(taken) != 3 {
		t.Fatalf("take left %d, returned %d", b.len(), len(taken))
	}
	b.add([]int{4}) // arrives while the (failing) re-learn runs
	b.restore(taken)
	if b.len() != 4 {
		t.Fatalf("restored buffer holds %d rows, want 4", b.len())
	}
	if got := b.take(); !reflect.DeepEqual(got, [][]int{{1}, {2}, {3}, {4}}) {
		t.Fatalf("restored order: %v", got)
	}

	// A wrapped ring must come out in arrival order, not physical order.
	b = newTrafficBuffer(4)
	for i := 1; i <= 6; i++ { // physical slots end up [5 6 3 4]
		b.add([]int{i})
	}
	if got := b.take(); !reflect.DeepEqual(got, [][]int{{3}, {4}, {5}, {6}}) {
		t.Fatalf("wrapped take order: %v", got)
	}

	// Overflow: only the newest restored rows fit in the remaining room.
	b = newTrafficBuffer(4)
	for i := 1; i <= 4; i++ {
		b.add([]int{i})
	}
	taken = b.take()
	b.add([]int{5})
	b.add([]int{6})
	b.restore(taken)
	if got := b.take(); !reflect.DeepEqual(got, [][]int{{3}, {4}, {5}, {6}}) {
		t.Fatalf("overflow restore: %v", got)
	}
}

// TestHotSwapSchemaChangeClearsBuffer pins the registry invariant: traffic
// buffered under one schema never trains a model with a different one.
func TestHotSwapSchemaChangeClearsBuffer(t *testing.T) {
	snapA, rowsA, _ := trainModel(t, 150, 5, 2, 19)
	snapB, _, _ := trainModel(t, 150, 7, 2, 19) // different feature width
	s, ts := newTestServer(t, Config{RelearnMin: 2})
	if err := s.AddModel("m", snapA); err != nil {
		t.Fatal(err)
	}
	post(t, ts.URL+"/assign/batch", map[string]any{"model": "m", "rows": rowsA[:10]})
	sm, _ := s.registry.get("m")
	if sm.buf.len() != 10 {
		t.Fatalf("buffered %d rows, want 10", sm.buf.len())
	}
	// Same-schema swap keeps the window.
	if err := s.AddModel("m", snapA); err != nil {
		t.Fatal(err)
	}
	if sm.buf.len() != 10 {
		t.Fatalf("same-schema swap cleared the buffer (%d rows)", sm.buf.len())
	}
	// Schema-changing swap clears it, and the next sweep must not train the
	// 7-feature model on 5-feature rows.
	if err := s.AddModel("m", snapB); err != nil {
		t.Fatal(err)
	}
	if sm.buf.len() != 0 {
		t.Fatalf("schema-changing swap kept %d stale rows", sm.buf.len())
	}
	if swapped := s.RelearnNow(); swapped != 0 {
		t.Fatalf("re-learn ran on an empty window (%d swaps)", swapped)
	}
}

// TestPoisonRowDoesNotReachRelearn pins the domain gate on the traffic
// buffer: /assign tolerates out-of-domain values, but they must never enter
// the training window (similarity tables index by value code).
func TestPoisonRowDoesNotReachRelearn(t *testing.T) {
	snap, rows, _ := trainModel(t, 150, 5, 2, 17)
	s, ts := newTestServer(t, Config{RelearnMin: 2, Seed: 5})
	if err := s.AddModel("m", snap); err != nil {
		t.Fatal(err)
	}
	poison := []int{99, -3, 0, 1, 2}
	resp, data := post(t, ts.URL+"/assign", map[string]any{"model": "m", "row": poison})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("poison assign rejected: %d %s", resp.StatusCode, data)
	}
	sm, _ := s.registry.get("m")
	if n := sm.buf.len(); n != 0 {
		t.Fatalf("poison row entered the training buffer (%d rows)", n)
	}
	// Clean traffic buffers and re-learns without panicking.
	post(t, ts.URL+"/assign/batch", map[string]any{"model": "m", "rows": rows[:10]})
	if sm.buf.len() != 10 {
		t.Fatalf("clean rows not buffered: %d", sm.buf.len())
	}
	if swapped := s.RelearnNow(); swapped != 1 {
		t.Fatalf("re-learn swapped %d models, want 1", swapped)
	}
}

// TestBatchDeterministicAcrossWorkers pins the /assign/batch determinism
// contract: one server configured sequential and one parallel return
// byte-identical assignment sequences.
func TestBatchDeterministicAcrossWorkers(t *testing.T) {
	snap, rows, _ := trainModel(t, 300, 8, 3, 21)
	run := func(workers int) batchResponse {
		s, ts := newTestServer(t, Config{Workers: workers})
		if err := s.AddModel("m", snap); err != nil {
			t.Fatal(err)
		}
		resp, data := post(t, ts.URL+"/assign/batch", map[string]any{"model": "m", "rows": rows})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch workers=%d: %d %s", workers, resp.StatusCode, data)
		}
		var b batchResponse
		if err := json.Unmarshal(data, &b); err != nil {
			t.Fatal(err)
		}
		return b
	}
	if !reflect.DeepEqual(run(1), run(0)) {
		t.Fatal("batch assignment differs between workers=1 and workers=GOMAXPROCS")
	}
}
