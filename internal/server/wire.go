package server

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"mcdc/internal/model"
)

// WireContentType marks an HTTP body as an MCDC binary frame stream (the
// internal/model wire codec). POST /v1/assign and /v1/assign/batch sniff it
// to select the binary fast path; everything else on those routes is JSON.
const WireContentType = "application/x-mcdc-frame"

// Error layering, both wire handlers: failures *before* any response byte is
// written (bad wire header, alien version, unknown model at batch start, a
// malformed batch stream, an admission shed in the middleware) answer as
// ordinary HTTP statuses with the JSON error envelope — the caller hasn't
// committed to decoding frames yet. Once the response stream is claimed the
// status is already 200, so failures travel in-band as '!' frames carrying
// the same stable code table.
//
// HTTP/1.x is half-duplex for handlers: once a response byte is flushed the
// server may discard the rest of the request body. Both handlers therefore
// consume the request stream completely — assigning as frames arrive, so the
// input is never buffered whole — and only then write the response. What is
// held in memory is the compact result set (a few words per row), never the
// row data itself.

// readWireHeader validates the request's wire header, answering pre-stream
// failures as plain HTTP errors while the response is still unclaimed.
func (s *Server) readWireHeader(w http.ResponseWriter, br *bufio.Reader) bool {
	err := model.ReadWireHeader(br)
	if err == nil {
		return true
	}
	s.metrics.assignErrors.Add(1)
	var verr *model.WireVersionError
	if errors.As(err, &verr) {
		writeError(w, http.StatusUnprocessableEntity, codeVersionMismatch, "%v", err)
	} else {
		writeError(w, http.StatusBadRequest, codeBadRequest, "%v", err)
	}
	return false
}

func writeErrorFrame(w io.Writer, code, msg string) {
	_ = model.WriteFrame(w, model.FrameError, model.AppendError(nil, code, msg))
}

// handleAssignWire serves pipelined binary assignment: the request body is a
// wire stream of 'A' frames, the response a wire stream answering each in
// order with an 'a' result or an in-band '!' error (mirroring the JSON
// endpoint's independent per-request semantics, so one bad frame does not
// poison its neighbours). One persistent connection carries many assignments
// with no per-request HTTP overhead — the high-QPS path BenchmarkServerAssign
// gates. Responses accumulate (result frames are ~30 bytes each) and are
// written once the request stream ends.
func (s *Server) handleAssignWire(w http.ResponseWriter, r *http.Request) {
	br := bufio.NewReader(r.Body)
	if !s.readWireHeader(w, br) {
		return
	}
	var out bytes.Buffer
	if err := model.WriteWireHeader(&out); err != nil {
		return
	}
	// Each session frame derives its own replay id from the request id, the
	// session, and a per-session sequence number within this stream. The
	// per-session numbering (not stream position) makes the id invariant
	// under regrouping: a gateway that resends one session's frames to a
	// promoted replica delivers them in the same relative order, so the ids
	// match and the replay cache absorbs an ambiguous first delivery.
	// Legitimate duplicate rows within one stream still apply individually —
	// their sequence numbers differ.
	reqID := r.Header.Get(RequestIDHeader)
	seq := make(map[string]int)
	var scratch []byte
	for {
		kind, payload, err := model.ReadFrame(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			s.metrics.assignErrors.Add(1)
			writeErrorFrame(&out, codeBadRequest, err.Error())
			break
		}
		if kind != model.FrameAssign {
			s.metrics.assignErrors.Add(1)
			writeErrorFrame(&out, codeBadRequest, fmt.Sprintf("unexpected frame kind %q in assign stream", kind))
			break
		}
		modelName, session, row, err := model.DecodeAssignRequest(payload)
		if err != nil {
			s.metrics.assignErrors.Add(1)
			writeErrorFrame(&out, codeBadRequest, err.Error())
			continue
		}
		frameID := ""
		if reqID != "" && session != "" {
			frameID = reqID + "#" + session + "#" + strconv.Itoa(seq[session])
			seq[session]++
		}
		_, code, aerr := s.assignOne(modelName, session, row, frameID, func(resp assignResponse) {
			// Serialized inside emit: resp.Encoding aliases the pooled
			// assigner scratch, valid only until assignOne returns.
			scratch = model.AppendResult(scratch[:0], model.Assignment{
				Cluster: resp.Cluster, Similarity: resp.Similarity, Encoding: resp.Encoding,
			}, resp.Epoch)
			_ = model.WriteFrame(&out, model.FrameResult, scratch)
		})
		if aerr != nil {
			//lint:mcdcvet-ignore errenvelope code relayed from assignOne, which draws only from the stable table
			writeErrorFrame(&out, code, aerr.Error())
		}
	}
	w.Header().Set("Content-Type", WireContentType)
	_, _ = w.Write(out.Bytes())
}

// handleAssignBatchWire serves a streamed binary batch. Request stream: one
// 'B' frame naming the model, any number of 'R' row chunks, then 'E'. Each
// chunk is assigned as it arrives — the row data is never buffered whole —
// and once the stream closes the response is written: one 'b' info frame
// (model, epoch), one 'r' results frame per input chunk, flushed chunk by
// chunk, and a closing 'E'. A malformed or truncated stream answers with a
// plain HTTP envelope, exactly like the JSON endpoint, since no response
// byte has been committed yet.
func (s *Server) handleAssignBatchWire(w http.ResponseWriter, r *http.Request) {
	br := bufio.NewReader(r.Body)
	if !s.readWireHeader(w, br) {
		return
	}
	kind, payload, err := model.ReadFrame(br)
	if err != nil || kind != model.FrameBatchStart {
		s.metrics.assignErrors.Add(1)
		writeError(w, http.StatusBadRequest, codeBadRequest, "batch stream must open with a batch-start frame")
		return
	}
	name, err := model.DecodeBatchStart(payload)
	if err != nil {
		s.metrics.assignErrors.Add(1)
		writeError(w, http.StatusBadRequest, codeBadRequest, "%v", err)
		return
	}
	sm, ok := s.registry.get(name)
	if !ok {
		s.metrics.assignErrors.Add(1)
		writeError(w, http.StatusNotFound, codeUnknownModel, "no model %q", name)
		return
	}
	// The epoch is pinned once here: every chunk of this batch answers from
	// one snapshot even if a re-learn hot-swaps the model mid-stream,
	// matching the JSON endpoint's single-snapshot semantics.
	snap := sm.load()

	// Consume the whole request, assigning chunk by chunk. chunks records
	// the input chunk boundaries so the response mirrors them one-to-one.
	var results []model.Assignment
	var chunks []int
	for {
		kind, payload, err := model.ReadFrame(br)
		if err != nil {
			// io.EOF without a closing 'E' is a truncated request.
			s.metrics.assignErrors.Add(1)
			writeError(w, http.StatusBadRequest, codeBadRequest, "batch stream ended without an end frame")
			return
		}
		if kind == model.FrameEnd {
			break
		}
		if kind != model.FrameRows {
			s.metrics.assignErrors.Add(1)
			writeError(w, http.StatusBadRequest, codeBadRequest, "unexpected frame kind %q in batch stream", kind)
			return
		}
		rows, err := model.DecodeRows(payload)
		if err != nil {
			s.metrics.assignErrors.Add(1)
			writeError(w, http.StatusBadRequest, codeBadRequest, "%v", err)
			return
		}
		if len(rows) == 0 {
			continue
		}
		assignments, err := s.assignBatchRows(sm, snap, rows)
		if err != nil {
			writeError(w, http.StatusBadRequest, codeBadRequest, "%v", err)
			return
		}
		results = append(results, assignments...)
		chunks = append(chunks, len(rows))
	}
	if len(chunks) == 0 {
		s.metrics.assignErrors.Add(1)
		writeError(w, http.StatusBadRequest, codeBadRequest, "empty batch")
		return
	}

	w.Header().Set("Content-Type", WireContentType)
	rc := http.NewResponseController(w)
	bw := bufio.NewWriter(w)
	defer bw.Flush()
	if err := model.WriteWireHeader(bw); err != nil {
		return
	}
	buf := model.AppendBatchInfo(nil, name, snap.Epoch)
	if err := model.WriteFrame(bw, model.FrameBatchInfo, buf); err != nil {
		return
	}
	off := 0
	for _, n := range chunks {
		buf = model.AppendResults(buf[:0], results[off:off+n])
		off += n
		if err := model.WriteFrame(bw, model.FrameResults, buf); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
		_ = rc.Flush()
	}
	_ = model.WriteFrame(bw, model.FrameEnd, nil)
}
