package server

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mcdc/internal/model"
)

// TestGatewayWireByteIdenticalToSingleBackend extends the byte-identity
// acceptance criterion to the binary frame protocol: a 2-backend gateway's
// wire responses for pipelined assigns and a streamed batch are the exact
// bytes a single backend produces.
func TestGatewayWireByteIdenticalToSingleBackend(t *testing.T) {
	snap, rows, _ := trainModel(t, 300, 8, 3, 51)
	_, gts, backends, _ := gatewayFleet(t, 2, Config{})
	for _, b := range backends {
		if err := b.AddModel("m", snap); err != nil {
			t.Fatal(err)
		}
	}
	solo, soloTS := newTestServer(t, Config{})
	if err := solo.AddModel("m", snap); err != nil {
		t.Fatal(err)
	}

	// Pipelined assigns, with an undecipherable request in the middle — the
	// gateway answers that slot locally with the backend's exact error text,
	// so the merged stream still matches the solo bytes.
	buf := wireStream(t)
	for _, row := range rows[:40] {
		appendFrame(t, buf, model.FrameAssign, model.AppendAssignRequest(nil, "m", "", row))
	}
	appendFrame(t, buf, model.FrameAssign, model.AppendAssignRequest(nil, "", "", rows[40]))
	for _, row := range rows[41:60] {
		appendFrame(t, buf, model.FrameAssign, model.AppendAssignRequest(nil, "m", "", row))
	}

	gresp, gdata := postWire(t, gts.URL+"/v1/assign", buf.Bytes())
	sresp, sdata := postWire(t, soloTS.URL+"/v1/assign", buf.Bytes())
	if gresp.StatusCode != http.StatusOK || sresp.StatusCode != http.StatusOK {
		t.Fatalf("wire assign: gateway %d, solo %d", gresp.StatusCode, sresp.StatusCode)
	}
	if !bytes.Equal(gdata, sdata) {
		t.Fatalf("gateway wire assign stream is not byte-identical to the single backend:\ngateway %d bytes, solo %d bytes", len(gdata), len(sdata))
	}

	// Streamed batch across several chunks: scattered by row key, merged
	// back on the original chunk boundaries.
	buf = wireStream(t)
	appendFrame(t, buf, model.FrameBatchStart, model.AppendBatchStart(nil, "m"))
	for _, c := range [][][]int{rows[:100], rows[100:110], rows[110:]} {
		appendFrame(t, buf, model.FrameRows, model.AppendRows(nil, c))
	}
	appendFrame(t, buf, model.FrameEnd, nil)

	gresp, gdata = postWire(t, gts.URL+"/v1/assign/batch", buf.Bytes())
	sresp, sdata = postWire(t, soloTS.URL+"/v1/assign/batch", buf.Bytes())
	if gresp.StatusCode != http.StatusOK || sresp.StatusCode != http.StatusOK {
		t.Fatalf("wire batch: gateway %d, solo %d (%s | %s)", gresp.StatusCode, sresp.StatusCode, gdata, sdata)
	}
	if !bytes.Equal(gdata, sdata) {
		t.Fatal("gateway wire batch response is not byte-identical to the single backend")
	}

	// The scatter really split the work; otherwise this degraded to a
	// raw-forward proxy check.
	spread := 0
	for _, b := range backends {
		if sm, ok := b.registry.get("m"); ok && sm.buf.len() > 0 {
			spread++
		}
	}
	if spread != 2 {
		t.Fatalf("wire batch traffic reached %d/2 backends", spread)
	}
}

// TestGatewayWireVersionMismatch: the gateway enforces the version byte
// itself and answers 422 without consulting any backend.
func TestGatewayWireVersionMismatch(t *testing.T) {
	_, gts, _, _ := gatewayFleet(t, 2, Config{})
	var buf bytes.Buffer
	if err := model.WriteWireHeader(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] = model.WireVersion + 1
	for _, path := range []string{"/v1/assign", "/v1/assign/batch"} {
		resp, data := postWire(t, gts.URL+path, raw)
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("%s: status %d, want 422 (%s)", path, resp.StatusCode, data)
		}
		if !strings.Contains(string(data), codeVersionMismatch) {
			t.Fatalf("%s: envelope %s, want code %q", path, data, codeVersionMismatch)
		}
	}
}

// TestGatewayPropagatesShed pins the overload relay: a backend's 429 passes
// through the gateway with status, Retry-After, and body unchanged, and the
// gateway counts the shed per backend in its /metrics.
func TestGatewayPropagatesShed(t *testing.T) {
	const retryAfter = "7"
	shedBody := `{"error":"server at capacity","code":"overloaded"}` + "\n"
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Like a real mcdcd, only assignment routes shed; health and
		// metrics probes answer normally.
		if r.Method == http.MethodGet {
			if strings.HasSuffix(r.URL.Path, "/healthz") {
				fmt.Fprintln(w, `{"status":"ok"}`)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", retryAfter)
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(shedBody))
	}))
	defer backend.Close()

	gw, err := NewGateway(GatewayConfig{Backends: []string{strings.TrimPrefix(backend.URL, "http://")}})
	if err != nil {
		t.Fatal(err)
	}
	gts := httptest.NewServer(gw.Handler())
	defer func() { gts.Close(); gw.Close() }()

	for i, path := range []string{"/v1/assign", "/v1/assign/batch"} {
		body := map[string]any{"model": "m", "row": []int{1}}
		if strings.HasSuffix(path, "batch") {
			body = map[string]any{"model": "m", "rows": [][]int{{1}}}
		}
		resp, data := post(t, gts.URL+path, body)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("%s: status %d, want 429 (%s)", path, resp.StatusCode, data)
		}
		if ra := resp.Header.Get("Retry-After"); ra != retryAfter {
			t.Fatalf("%s: Retry-After %q, want %q", path, ra, retryAfter)
		}
		if string(data) != shedBody {
			t.Fatalf("%s: body altered in transit:\n%q\nwant\n%q", path, data, shedBody)
		}

		_, mdata := get(t, gts.URL+"/v1/metrics")
		want := fmt.Sprintf("mcdcd_gateway_backend_sheds_total{backend=%q} %d",
			strings.TrimPrefix(backend.URL, "http://"), i+1)
		if !strings.Contains(string(mdata), want) {
			t.Fatalf("gateway metrics missing %q:\n%s", want, mdata)
		}
	}
}
