package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"mcdc/internal/model"
)

// postWire POSTs a raw binary frame stream and returns the response.
func postWire(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, WireContentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// wireStream begins a frame stream: header plus any frames appended after.
func wireStream(t *testing.T) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := model.WriteWireHeader(&buf); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func appendFrame(t *testing.T, buf *bytes.Buffer, kind byte, payload []byte) {
	t.Helper()
	if err := model.WriteFrame(buf, kind, payload); err != nil {
		t.Fatal(err)
	}
}

// readFrames parses a full response stream (header + frames to EOF).
func readFrames(t *testing.T, data []byte) []struct {
	kind    byte
	payload []byte
} {
	t.Helper()
	br := bufio.NewReader(bytes.NewReader(data))
	if err := model.ReadWireHeader(br); err != nil {
		t.Fatalf("response wire header: %v (body %q)", err, data)
	}
	var out []struct {
		kind    byte
		payload []byte
	}
	for {
		kind, payload, err := model.ReadFrame(br)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("read response frame: %v", err)
		}
		out = append(out, struct {
			kind    byte
			payload []byte
		}{kind, payload})
	}
}

// TestWireAssignMatchesJSON pins protocol parity: the same row assigned over
// JSON and over a binary frame yields identical cluster/similarity/epoch.
func TestWireAssignMatchesJSON(t *testing.T) {
	snap, rows, _ := trainModel(t, 300, 6, 3, 5)
	s, ts := newTestServer(t, Config{})
	if err := s.AddModel("m", snap); err != nil {
		t.Fatal(err)
	}

	for _, row := range rows[:20] {
		_, jdata := post(t, ts.URL+"/v1/assign", map[string]any{"model": "m", "row": row})
		var jr assignResponse
		if err := json.Unmarshal(jdata, &jr); err != nil {
			t.Fatal(err)
		}

		buf := wireStream(t)
		appendFrame(t, buf, model.FrameAssign, model.AppendAssignRequest(nil, "m", "", row))
		resp, data := postWire(t, ts.URL+"/v1/assign", buf.Bytes())
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("wire assign status %d: %s", resp.StatusCode, data)
		}
		if ct := resp.Header.Get("Content-Type"); ct != WireContentType {
			t.Fatalf("response Content-Type %q", ct)
		}
		frames := readFrames(t, data)
		if len(frames) != 1 || frames[0].kind != model.FrameResult {
			t.Fatalf("got %d frames, want one result", len(frames))
		}
		a, epoch, err := model.DecodeResult(frames[0].payload)
		if err != nil {
			t.Fatal(err)
		}
		if a.Cluster != jr.Cluster || a.Similarity != jr.Similarity || epoch != jr.Epoch {
			t.Fatalf("binary (%d, %v, %d) != json (%d, %v, %d)",
				a.Cluster, a.Similarity, epoch, jr.Cluster, jr.Similarity, jr.Epoch)
		}
	}
}

// TestWireAssignPipelined sends many frames on one request, with a bad one
// in the middle: results come back in order, the bad frame answers with an
// in-band error frame, and the stream keeps going afterwards.
func TestWireAssignPipelined(t *testing.T) {
	snap, rows, _ := trainModel(t, 300, 6, 3, 5)
	s, ts := newTestServer(t, Config{})
	if err := s.AddModel("m", snap); err != nil {
		t.Fatal(err)
	}

	const n = 10
	const badAt = 4 // frame 4 names a model that is not served
	buf := wireStream(t)
	for i := 0; i < n; i++ {
		name := "m"
		if i == badAt {
			name = "ghost"
		}
		appendFrame(t, buf, model.FrameAssign, model.AppendAssignRequest(nil, name, "", rows[i]))
	}
	resp, data := postWire(t, ts.URL+"/v1/assign", buf.Bytes())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	frames := readFrames(t, data)
	if len(frames) != n {
		t.Fatalf("got %d response frames, want %d", len(frames), n)
	}
	for i, f := range frames {
		if i == badAt {
			if f.kind != model.FrameError {
				t.Fatalf("frame %d kind %q, want error frame", i, f.kind)
			}
			code, msg, err := model.DecodeError(f.payload)
			if err != nil {
				t.Fatal(err)
			}
			if code != codeUnknownModel || msg == "" {
				t.Fatalf("error frame code %q msg %q, want %q", code, msg, codeUnknownModel)
			}
			continue
		}
		if f.kind != model.FrameResult {
			t.Fatalf("frame %d kind %q, want result", i, f.kind)
		}
		a, _, err := model.DecodeResult(f.payload)
		if err != nil {
			t.Fatal(err)
		}
		// Cross-check each against the JSON answer for the same row.
		_, jdata := post(t, ts.URL+"/v1/assign", map[string]any{"model": "m", "row": rows[i]})
		var jr assignResponse
		if err := json.Unmarshal(jdata, &jr); err != nil {
			t.Fatal(err)
		}
		if a.Cluster != jr.Cluster || a.Similarity != jr.Similarity {
			t.Fatalf("frame %d diverges from JSON", i)
		}
	}
}

// TestWireBatchMatchesJSON streams a batch as several row chunks and checks
// the reply: batch info with the pinned epoch, one results frame per input
// chunk, a clean end frame, and values identical to the JSON batch.
func TestWireBatchMatchesJSON(t *testing.T) {
	snap, rows, _ := trainModel(t, 300, 6, 3, 5)
	s, ts := newTestServer(t, Config{})
	if err := s.AddModel("m", snap); err != nil {
		t.Fatal(err)
	}

	batch := rows[:50]
	_, jdata := post(t, ts.URL+"/v1/assign/batch", map[string]any{"model": "m", "rows": batch})
	var jr batchResponse
	if err := json.Unmarshal(jdata, &jr); err != nil {
		t.Fatal(err)
	}

	chunks := [][][]int{batch[:7], batch[7:30], batch[30:]}
	buf := wireStream(t)
	appendFrame(t, buf, model.FrameBatchStart, model.AppendBatchStart(nil, "m"))
	for _, c := range chunks {
		appendFrame(t, buf, model.FrameRows, model.AppendRows(nil, c))
	}
	appendFrame(t, buf, model.FrameEnd, nil)

	resp, data := postWire(t, ts.URL+"/v1/assign/batch", buf.Bytes())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	frames := readFrames(t, data)
	if want := 1 + len(chunks) + 1; len(frames) != want {
		t.Fatalf("got %d frames, want %d (info + %d results + end)", len(frames), want, len(chunks))
	}
	if frames[0].kind != model.FrameBatchInfo {
		t.Fatalf("first frame kind %q, want batch info", frames[0].kind)
	}
	name, epoch, err := model.DecodeBatchInfo(frames[0].payload)
	if err != nil {
		t.Fatal(err)
	}
	if name != "m" || epoch != jr.Epoch {
		t.Fatalf("batch info (%q, %d), want (%q, %d)", name, epoch, "m", jr.Epoch)
	}
	if last := frames[len(frames)-1]; last.kind != model.FrameEnd {
		t.Fatalf("last frame kind %q, want end", last.kind)
	}
	var got []model.Assignment
	for i, f := range frames[1 : len(frames)-1] {
		if f.kind != model.FrameResults {
			t.Fatalf("frame %d kind %q, want results", i+1, f.kind)
		}
		n := len(got)
		if got, err = model.DecodeResults(f.payload, got); err != nil {
			t.Fatal(err)
		}
		if len(got)-n != len(chunks[i]) {
			t.Fatalf("chunk %d returned %d results, want %d", i, len(got)-n, len(chunks[i]))
		}
	}
	if len(got) != len(jr.Assignments) {
		t.Fatalf("binary batch returned %d assignments, JSON %d", len(got), len(jr.Assignments))
	}
	for i := range got {
		if got[i].Cluster != jr.Assignments[i].Cluster || got[i].Similarity != jr.Assignments[i].Similarity {
			t.Fatalf("row %d: binary %+v != json %+v", i, got[i], jr.Assignments[i])
		}
	}
}

// TestWireBatchUnknownModel rejects before any rows stream: the batch-start
// frame names an unserved model, so the reply is a plain HTTP 404 envelope.
func TestWireBatchUnknownModel(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	buf := wireStream(t)
	appendFrame(t, buf, model.FrameBatchStart, model.AppendBatchStart(nil, "ghost"))
	appendFrame(t, buf, model.FrameEnd, nil)
	resp, data := postWire(t, ts.URL+"/v1/assign/batch", buf.Bytes())
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404 (%s)", resp.StatusCode, data)
	}
	var env errorResponse
	if err := json.Unmarshal(data, &env); err != nil || env.Code != codeUnknownModel {
		t.Fatalf("envelope %s, want code %q", data, codeUnknownModel)
	}
}

// TestWireVersionMismatch pins the version-byte policy: a stream stamped
// with a future wire version is refused with 422 and the stable code, same
// rule as snapshot files.
func TestWireVersionMismatch(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var buf bytes.Buffer
	if err := model.WriteWireHeader(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] = model.WireVersion + 1 // corrupt the version byte

	for _, path := range []string{"/v1/assign", "/v1/assign/batch"} {
		resp, data := postWire(t, ts.URL+path, raw)
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("%s: status %d, want 422 (%s)", path, resp.StatusCode, data)
		}
		var env errorResponse
		if err := json.Unmarshal(data, &env); err != nil || env.Code != codeVersionMismatch {
			t.Fatalf("%s: envelope %s, want code %q", path, data, codeVersionMismatch)
		}
	}
}

// TestWireNotWire pins the garbage-input contract: a binary Content-Type
// with a non-wire body is a 400 bad_request, not a hang or a 500.
func TestWireNotWire(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := postWire(t, ts.URL+"/v1/assign", []byte(`{"model":"m"}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 (%s)", resp.StatusCode, data)
	}
	var env errorResponse
	if err := json.Unmarshal(data, &env); err != nil || env.Code != codeBadRequest {
		t.Fatalf("envelope %s, want code %q", data, codeBadRequest)
	}
}
