package server

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"mcdc/internal/model"
)

// Binary frame routing. The gateway routes binary traffic with the same
// keys as JSON — sessionKey / rowKey per assignment — so a row lands on the
// same backend regardless of protocol, and the deterministic frame codec
// means the merged response is byte-identical to a solo backend serving the
// whole stream. Two fast paths keep the common cases cheap: when every
// frame routes to one backend, the raw request bytes forward and the raw
// response bytes relay untouched.

// wireFrame is one parsed frame of a buffered stream.
type wireFrame struct {
	kind    byte
	payload []byte
}

// parseWireStream validates the header and splits a complete wire stream
// into frames. The payloads alias data.
func parseWireStream(data []byte) ([]wireFrame, error) {
	br := bufio.NewReader(bytes.NewReader(data))
	if err := model.ReadWireHeader(br); err != nil {
		return nil, err
	}
	var frames []wireFrame
	for {
		kind, payload, err := model.ReadFrame(br)
		if err == io.EOF {
			return frames, nil
		}
		if err != nil {
			return nil, err
		}
		frames = append(frames, wireFrame{kind: kind, payload: payload})
	}
}

// maxWireFailoverRounds bounds how many times a failed wire sub-stream may
// reroute before its remaining frames answer with in-band errors.
const maxWireFailoverRounds = 3

// handleAssignWire routes a pipelined binary assign stream. Each 'A' frame
// is routed independently (session id or model+row key, exactly like a JSON
// /assign); per-backend sub-streams fan out concurrently and the response
// frames merge back into request order. When a backend fails transiently,
// its frames recover per kind: stateless frames re-place along the ring
// chain, and a session whose group held exactly one of its frames fails
// over to a promoted replica and resends under the same request id — the
// backend's per-session replay numbering makes the redelivered frame id
// match, so the replay cache absorbs an ambiguous first delivery. A session
// with several frames in the failed group cannot be resent safely anywhere
// — not to a replica and not to the same backend: the backend applies
// frames as the body streams, so a severed exchange leaves an unknown
// prefix applied, and the one-deep replay cache only covers the last frame.
// Such sub-streams therefore get a single delivery attempt (no in-place
// doRetry) and their multi-frame sessions answer with in-band bad_gateway
// error frames instead of silently double-applying. A backend non-200
// (e.g. an admission shed) relays verbatim in sorted backend order,
// Retry-After included.
func (g *Gateway) handleAssignWire(w http.ResponseWriter, r *http.Request) {
	raw, ok := readBody(w, r)
	if !ok {
		return
	}
	frames, err := parseWireStream(raw)
	if err != nil {
		writeWireHeaderError(w, err)
		return
	}
	// Route every frame. A frame the gateway itself must answer (undecodable
	// payload, no routing key) gets its error frame now and occupies its
	// slot in the merged response — the same answer, byte for byte, the
	// owning backend would have produced.
	type slot struct {
		session string // "" for stateless frames
		key     string // stateless ring key
		reply   wireFrame
		done    bool
	}
	slots := make([]slot, len(frames))
	groups := make(map[string][]int)
	for i, f := range frames {
		if f.kind != model.FrameAssign {
			writeError(w, http.StatusBadRequest, codeBadRequest, "unexpected frame kind %q in assign stream", f.kind)
			return
		}
		modelName, session, row, derr := model.DecodeAssignRequest(f.payload)
		switch {
		case derr != nil:
			slots[i] = slot{done: true, reply: wireFrame{model.FrameError, model.AppendError(nil, codeBadRequest, derr.Error())}}
		case session != "":
			slots[i] = slot{session: session}
			b := g.placeSession(session)
			groups[b] = append(groups[b], i)
		case modelName != "":
			key := rowKey(modelName, row)
			slots[i] = slot{key: key}
			b := g.placeStateless(key)
			groups[b] = append(groups[b], i)
		default:
			slots[i] = slot{done: true, reply: wireFrame{model.FrameError, model.AppendError(nil, codeBadRequest, "request names neither a model nor a session")}}
		}
	}
	reqID := reqIDOf(r)

	for round := 0; len(groups) > 0; round++ {
		if round >= maxWireFailoverRounds {
			for _, idxs := range groups {
				for _, i := range idxs {
					slots[i].reply = wireFrame{model.FrameError, model.AppendError(nil, codeBadGateway, "no backend could serve the frame")}
					slots[i].done = true
				}
			}
			break
		}
		order := sortedKeys(groups)
		type result struct {
			status int
			data   []byte
			hdr    http.Header
			frames []wireFrame
			err    error
		}
		results := make(map[string]*result, len(order))
		var wg sync.WaitGroup
		var mu sync.Mutex
		for _, b := range order {
			wg.Add(1)
			go func(b string) {
				defer wg.Done()
				var body bytes.Buffer
				_ = model.WriteWireHeader(&body)
				multiFrame := false
				perSession := make(map[string]int)
				for _, i := range groups[b] {
					_ = model.WriteFrame(&body, model.FrameAssign, frames[i].payload)
					if s := slots[i].session; s != "" {
						if perSession[s]++; perSession[s] > 1 {
							multiFrame = true
						}
					}
				}
				res := &result{}
				if multiFrame {
					// A re-send of this sub-stream could double-apply: the
					// backend applies frames as the body streams, a severed
					// exchange leaves an unknown prefix applied, and the
					// one-deep replay cache only matches the last frame id of
					// each session. Single attempt; a transient failure marks
					// the backend down and falls to rerouteWireGroup, which
					// fails exactly the multi-frame sessions in-band and
					// recovers the rest.
					res.status, res.data, res.hdr, res.err = g.doCT(g.client, http.MethodPost, b, "/v1/assign", body.Bytes(), WireContentType, reqID)
					if res.err != nil {
						if _, transient := classifyTransient(res.err); transient {
							g.markDown(b)
						}
					}
				} else {
					res.status, res.data, res.hdr, res.err = g.doRetry(g.client, http.MethodPost, b, "/v1/assign", body.Bytes(), WireContentType, reqID)
				}
				if res.err == nil && res.status == http.StatusOK {
					res.frames, res.err = parseWireStream(res.data)
					if res.err == nil && len(res.frames) != len(groups[b]) {
						res.err = fmt.Errorf("%d response frames for %d assigns", len(res.frames), len(groups[b]))
					}
				}
				mu.Lock()
				results[b] = res
				mu.Unlock()
			}(b)
		}
		wg.Wait()

		next := make(map[string][]int)
		for _, b := range order {
			res := results[b]
			if res.err != nil {
				if _, transient := classifyTransient(res.err); !transient {
					writeError(w, http.StatusBadGateway, codeBadGateway, "backend %s: %v", b, res.err)
					return
				}
				g.rerouteWireGroup(b, groups[b], reqID, func(i int) (session, key string) {
					return slots[i].session, slots[i].key
				}, func(i int, nb string) {
					next[nb] = append(next[nb], i)
				}, func(i int, code, msg string) {
					slots[i].reply = wireFrame{model.FrameError, model.AppendError(nil, code, msg)}
					slots[i].done = true
				})
				continue
			}
			if res.status != http.StatusOK {
				relay(w, res.status, res.hdr, res.data)
				return
			}
			for j, i := range groups[b] {
				slots[i].reply = res.frames[j]
				slots[i].done = true
			}
		}
		for _, idxs := range next {
			sort.Ints(idxs)
		}
		groups = next
	}

	w.Header().Set("Content-Type", WireContentType)
	bw := bufio.NewWriter(w)
	_ = model.WriteWireHeader(bw)
	for i := range slots {
		_ = model.WriteFrame(bw, slots[i].reply.kind, slots[i].reply.payload)
	}
	_ = bw.Flush()
}

// rerouteWireGroup recovers the frames of one transiently failed wire
// sub-stream. failed is already marked down by the caller. For each frame:
// stateless → re-place along the chain; a session with exactly one frame in
// the group → promote a replica and requeue; a session with several frames →
// in-band error (the replay cache cannot disambiguate a partial apply).
func (g *Gateway) rerouteWireGroup(failed string, idxs []int, reqID string, info func(i int) (session, key string), requeue func(i int, backend string), fail func(i int, code, msg string)) {
	counts := make(map[string]int)
	for _, i := range idxs {
		if s, _ := info(i); s != "" {
			counts[s]++
		}
	}
	promoted := make(map[string]string)
	for _, i := range idxs {
		session, key := info(i)
		if session == "" {
			nb := g.placeStateless(key)
			if nb == "" || nb == failed {
				fail(i, codeBadGateway, "no backend could serve the frame")
				continue
			}
			requeue(i, nb)
			continue
		}
		if counts[session] > 1 {
			fail(i, codeBadGateway, fmt.Sprintf("backend %s failed mid-stream with multiple frames for session %q in flight; resend", failed, session))
			continue
		}
		nb, ok := promoted[session]
		if !ok {
			nb, ok = g.failoverSession(session, reqID, failed)
			if !ok {
				fail(i, codeBadGateway, fmt.Sprintf("session %q: owner %s unreachable and no replica could be promoted", session, failed))
				continue
			}
			promoted[session] = nb
		}
		requeue(i, nb)
	}
}

// handleAssignBatchWire scatters a binary batch stream. Rows route by the
// same rowKey as JSON batches; the response re-encodes one 'r' frame per
// original input chunk with results back in input order, so the merged
// stream is byte-identical to a solo backend's. Single-backend batches (and
// degenerate empty ones) forward raw and relay raw.
func (g *Gateway) handleAssignBatchWire(w http.ResponseWriter, r *http.Request) {
	raw, ok := readBody(w, r)
	if !ok {
		return
	}
	frames, err := parseWireStream(raw)
	if err != nil {
		writeWireHeaderError(w, err)
		return
	}
	if len(frames) == 0 || frames[0].kind != model.FrameBatchStart {
		writeError(w, http.StatusBadRequest, codeBadRequest, "batch stream must open with a batch-start frame")
		return
	}
	modelName, err := model.DecodeBatchStart(frames[0].payload)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, "%v", err)
		return
	}
	// Decode the chunks, preserving their boundaries: the response must
	// answer each input 'R' with one 'r', exactly as a solo backend streams.
	var chunks [][][]int
	for fi := 1; fi < len(frames); fi++ {
		f := frames[fi]
		switch f.kind {
		case model.FrameRows:
			rows, derr := model.DecodeRows(f.payload)
			if derr != nil {
				writeError(w, http.StatusBadRequest, codeBadRequest, "%v", derr)
				return
			}
			chunks = append(chunks, rows)
		case model.FrameEnd:
			if fi != len(frames)-1 {
				writeError(w, http.StatusBadRequest, codeBadRequest, "frames after the end frame")
				return
			}
		default:
			writeError(w, http.StatusBadRequest, codeBadRequest, "unexpected frame kind %q in batch stream", f.kind)
			return
		}
	}
	if frames[len(frames)-1].kind != model.FrameEnd {
		writeError(w, http.StatusBadRequest, codeBadRequest, "batch stream ended without an end frame")
		return
	}

	// Flatten for routing; chunk boundaries are recovered at re-encode time
	// by walking chunks in order.
	var rows [][]int
	for _, c := range chunks {
		rows = append(rows, c...)
	}
	reqID := reqIDOf(r)
	merged := make([]model.Assignment, len(rows))
	epoch, haveEpoch := 0, false
	pending := make([]int, len(rows))
	for i := range pending {
		pending[i] = i
	}
	var lastErr error
	// Rows are stateless, so a transiently failed sub-batch simply re-places
	// (the failure marked its backend down) and retries against the rest of
	// the fleet, exactly like the JSON batch path.
	maxRounds := len(g.backendList()) + 1
	for round := 0; len(pending) > 0; round++ {
		if round >= maxRounds {
			writeError(w, http.StatusBadGateway, codeBadGateway, "batch could not complete: %v", lastErr)
			return
		}
		groups := make(map[string][]int) // backend → flat row indices
		for _, i := range pending {
			b := g.placeStateless(rowKey(modelName, rows[i]))
			groups[b] = append(groups[b], i)
		}
		if round == 0 && len(groups) <= 1 {
			// One owner — or an empty batch, which any backend rejects the
			// same way. Forward raw; relay raw. A transient failure falls
			// through to the rerouting rounds.
			b := g.backendList()[0]
			for gb := range groups {
				b = gb
			}
			status, data, hdr, err := g.doRetry(g.client, http.MethodPost, b, "/v1/assign/batch", raw, WireContentType, reqID)
			if err == nil {
				relay(w, status, hdr, data)
				return
			}
			lastErr = fmt.Errorf("backend %s: %w", b, err)
			if _, transient := classifyTransient(err); !transient || len(groups) == 0 {
				writeError(w, http.StatusBadGateway, codeBadGateway, "backend %s: %v", b, err)
				return
			}
			continue
		}

		order := sortedKeys(groups)
		type result struct {
			status  int
			data    []byte
			hdr     http.Header
			epoch   int
			results []model.Assignment
			err     error
		}
		resultsBy := make(map[string]*result, len(order))
		var wg sync.WaitGroup
		var mu sync.Mutex
		for _, b := range order {
			wg.Add(1)
			go func(b string) {
				defer wg.Done()
				var body bytes.Buffer
				_ = model.WriteWireHeader(&body)
				_ = model.WriteFrame(&body, model.FrameBatchStart, model.AppendBatchStart(nil, modelName))
				sub := make([][]int, 0, len(groups[b]))
				for _, i := range groups[b] {
					sub = append(sub, rows[i])
				}
				_ = model.WriteFrame(&body, model.FrameRows, model.AppendRows(nil, sub))
				_ = model.WriteFrame(&body, model.FrameEnd, nil)
				res := &result{}
				res.status, res.data, res.hdr, res.err = g.doRetry(g.client, http.MethodPost, b, "/v1/assign/batch", body.Bytes(), WireContentType, reqID)
				if res.err == nil && res.status == http.StatusOK {
					res.epoch, res.results, res.err = parseBatchReply(res.data, len(groups[b]))
				}
				mu.Lock()
				resultsBy[b] = res
				mu.Unlock()
			}(b)
		}
		wg.Wait()

		var retry []int
		for _, b := range order {
			res := resultsBy[b]
			if res.err != nil {
				lastErr = fmt.Errorf("backend %s: %w", b, res.err)
				if _, transient := classifyTransient(res.err); transient {
					retry = append(retry, groups[b]...)
					continue
				}
				writeError(w, http.StatusBadGateway, codeBadGateway, "backend %s: %v", b, res.err)
				return
			}
			if res.status != http.StatusOK {
				relay(w, res.status, res.hdr, res.data)
				return
			}
			if !haveEpoch {
				epoch, haveEpoch = res.epoch, true
			}
			for j, i := range groups[b] {
				merged[i] = res.results[j]
			}
		}
		sort.Ints(retry)
		pending = retry
	}

	// Re-encode along the original chunk boundaries. The codec is
	// deterministic, so these are the bytes a solo backend would have sent.
	w.Header().Set("Content-Type", WireContentType)
	bw := bufio.NewWriter(w)
	_ = model.WriteWireHeader(bw)
	_ = model.WriteFrame(bw, model.FrameBatchInfo, model.AppendBatchInfo(nil, modelName, epoch))
	var buf []byte
	flat := 0
	for _, c := range chunks {
		if len(c) == 0 {
			continue // a solo backend skips empty chunks too
		}
		buf = model.AppendResults(buf[:0], merged[flat:flat+len(c)])
		flat += len(c)
		_ = model.WriteFrame(bw, model.FrameResults, buf)
	}
	_ = model.WriteFrame(bw, model.FrameEnd, nil)
	_ = bw.Flush()
}

// parseBatchReply decodes a backend's binary batch response — 'b' info,
// 'r' result frames, 'E' — expecting want results in total.
func parseBatchReply(data []byte, want int) (epoch int, results []model.Assignment, err error) {
	frames, err := parseWireStream(data)
	if err != nil {
		return 0, nil, err
	}
	if len(frames) == 0 || frames[0].kind != model.FrameBatchInfo {
		return 0, nil, fmt.Errorf("batch reply missing info frame")
	}
	if _, epoch, err = model.DecodeBatchInfo(frames[0].payload); err != nil {
		return 0, nil, err
	}
	for _, f := range frames[1:] {
		switch f.kind {
		case model.FrameResults:
			if results, err = model.DecodeResults(f.payload, results); err != nil {
				return 0, nil, err
			}
		case model.FrameEnd:
		case model.FrameError:
			code, msg, derr := model.DecodeError(f.payload)
			if derr != nil {
				return 0, nil, derr
			}
			return 0, nil, fmt.Errorf("backend error %s: %s", code, msg)
		default:
			return 0, nil, fmt.Errorf("unexpected frame kind %q in batch reply", f.kind)
		}
	}
	if len(results) != want {
		return 0, nil, fmt.Errorf("%d results for %d rows", len(results), want)
	}
	return epoch, results, nil
}

// forwardWire forwards raw frame bytes to one backend and relays the raw
// response — the byte-identity fast path.
func (g *Gateway) forwardWire(w http.ResponseWriter, backend, path string, body []byte, reqID string) {
	status, data, hdr, err := g.doCT(g.client, http.MethodPost, backend, path, body, WireContentType, reqID)
	if err != nil {
		writeError(w, http.StatusBadGateway, codeBadGateway, "backend %s: %v", backend, err)
		return
	}
	relay(w, status, hdr, data)
}

// writeWireHeaderError maps a request-stream parse failure to the
// pre-stream HTTP envelope, distinguishing version skew.
func writeWireHeaderError(w http.ResponseWriter, err error) {
	var verr *model.WireVersionError
	if errors.As(err, &verr) {
		writeError(w, http.StatusUnprocessableEntity, codeVersionMismatch, "%v", err)
		return
	}
	writeError(w, http.StatusBadRequest, codeBadRequest, "%v", err)
}

func sortedKeys(m map[string][]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
