package server

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestHistogramBinSchemeMatchesLoadHarness pins the cross-tool contract: the
// server histogram's bucket bounds are the same doubling ladder cmd/mcdcload
// reports (0.1ms doubling while < 120s), so a server-side exposition and a
// client-side load report bucket identical latencies identically.
func TestHistogramBinSchemeMatchesLoadHarness(t *testing.T) {
	var wantMs []float64
	for ms := 0.1; ms < 120_000; ms *= 2 {
		wantMs = append(wantMs, ms)
	}
	if len(wantMs) != histBins {
		t.Fatalf("mcdcload ladder has %d bounds, server histogram has %d", len(wantMs), histBins)
	}
	for i, ms := range wantMs {
		got, err := strconv.ParseFloat(histLe[i], 64)
		if err != nil {
			t.Fatalf("histLe[%d] = %q: %v", i, histLe[i], err)
		}
		want := ms / 1e3 // the exposition is in seconds
		if math.Abs(got-want)/want > 1e-9 {
			t.Errorf("bound %d: server %g s, load harness %g s", i, got, want)
		}
	}
}

// TestHistogramBinning pins edge binning: zero, exact bounds, just-past
// bounds, and overflow into +Inf.
func TestHistogramBinning(t *testing.T) {
	cases := []struct {
		d   time.Duration
		bin int
	}{
		{0, 0},
		{-time.Second, 0}, // clamped, never a panic or a lost sample
		{50 * time.Microsecond, 0},
		{100 * time.Microsecond, 0}, // exactly the first bound is inside it
		{100*time.Microsecond + time.Nanosecond, 1},                   // just past it
		{200 * time.Microsecond, 1},                                   // exactly on the second bound
		{300 * time.Microsecond, 2},                                   // between bounds rounds up
		{time.Duration(histMinNanos) << (histBins - 1), histBins - 1}, // exactly the last finite bound
		{time.Duration(histMinNanos)<<(histBins-1) + 1, histBins},     // overflow: +Inf
		{time.Hour, histBins},
	}
	for _, tc := range cases {
		var h histogram
		h.observe(tc.d)
		for i := range h.buckets {
			want := int64(0)
			if i == tc.bin {
				want = 1
			}
			if got := h.buckets[i].Load(); got != want {
				t.Errorf("observe(%v): bucket[%d] = %d, want %d", tc.d, i, got, want)
			}
		}
	}
}

// TestHistogramWriteTo pins the exposition: cumulative monotone buckets,
// +Inf == _count, _sum in seconds, and the labeled spelling.
func TestHistogramWriteTo(t *testing.T) {
	var h histogram
	h.observe(150 * time.Microsecond)
	h.observe(150 * time.Microsecond)
	h.observe(3 * time.Millisecond)
	h.observe(time.Hour) // +Inf

	var buf bytes.Buffer
	h.writeTo(&buf, "lat", "")
	out := buf.String()
	for _, want := range []string{
		`lat_bucket{le="0.0001"} 0`,
		`lat_bucket{le="0.0002"} 2`,
		`lat_bucket{le="0.0032"} 3`,
		`lat_bucket{le="+Inf"} 4`,
		"lat_count 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("unlabeled exposition missing %q:\n%s", want, out)
		}
	}
	var lastCum int64 = -1
	buckets := 0
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "lat_bucket{") {
			continue
		}
		buckets++
		v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("bucket line %q: %v", line, err)
		}
		if v < lastCum {
			t.Errorf("buckets not cumulative at %q (%d < %d)", line, v, lastCum)
		}
		lastCum = v
	}
	if buckets != histBins+1 {
		t.Errorf("exposition has %d bucket lines, want %d", buckets, histBins+1)
	}
	wantSum := float64(2*150*time.Microsecond+3*time.Millisecond+time.Hour) / 1e9
	if !strings.Contains(out, "lat_sum "+strconv.FormatFloat(wantSum, 'g', -1, 64)) {
		t.Errorf("exposition missing sum %g:\n%s", wantSum, out)
	}

	buf.Reset()
	h.writeTo(&buf, "lat", `stage="assign"`)
	labeled := buf.String()
	for _, want := range []string{
		`lat_bucket{stage="assign",le="+Inf"} 4`,
		`lat_sum{stage="assign"} `,
		`lat_count{stage="assign"} 4`,
	} {
		if !strings.Contains(labeled, want) {
			t.Errorf("labeled exposition missing %q:\n%s", want, labeled)
		}
	}
}

// TestHistogramObserveAllocFree pins the hot-path property: recording a
// latency sample allocates nothing, so instrumenting every assign keeps the
// serving path at 0 allocs/op.
func TestHistogramObserveAllocFree(t *testing.T) {
	var h histogram
	if n := testing.AllocsPerRun(1000, func() {
		h.observe(137 * time.Microsecond)
		h.observe(4 * time.Second)
	}); n != 0 {
		t.Fatalf("histogram.observe allocates %v times per run, want 0", n)
	}
}

// TestHistogramConcurrentObserve drives observations from many goroutines
// (run under -race in CI) and checks no sample is lost.
func TestHistogramConcurrentObserve(t *testing.T) {
	var h histogram
	const workers, per = 8, 1000
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < per; i++ {
				h.observe(time.Duration(w*i) * time.Microsecond)
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	if got := h.count(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
}
